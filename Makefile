# Convenience targets for the help reproduction.

GO ?= go

.PHONY: all test vet bench figs tables race stress soak chaos fuzz cover clean

all: test

# Tier-1: build, vet, plain tests, then a race-checked pass so the
# concurrent srvnet/faultnet paths are exercised on every PR. The
# chaos harness rides along as a small smoke (24 users); `make chaos`
# runs the full fleet.
test:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test ./... && $(GO) test -race ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Bench evidence loop: run the suite serially three times (separate
# passes, minutes apart, so a noisy-neighbor phase can't taint every
# sample of a benchmark — helpbench keeps each benchmark's best run),
# record BENCH_PR10.json, and fail if anything regressed >20% on ns/op
# or allocs/op against the checked-in pre-PR baseline (see
# docs/ARCHITECTURE.md, "Performance model").
bench:
	$(GO) test -p 1 -run '^$$' -bench=. -benchmem ./... | tee bench_output.txt
	$(GO) test -p 1 -run '^$$' -bench=. -benchmem ./... | tee -a bench_output.txt
	$(GO) test -p 1 -run '^$$' -bench=. -benchmem ./... | tee -a bench_output.txt
	$(GO) run ./cmd/helpbench -benchjson bench_output.txt -baseline BENCH_PR9.json -o BENCH_PR10.json

# Stress the actor model: the whole-system concurrency matrix, repeated
# under the race detector so queue/kill/streaming interleavings vary.
stress:
	$(GO) test -race -count=5 -run 'TestConcurrencyMatrix|TestOutputStreams|TestKill|TestExternalBackground|TestExit' ./internal/world ./internal/core

# Soak the multi-session daemon: the full stack (Manager behind the mux
# server on TCP) replaying loadgen gesture traces in concurrent waves
# under random injected crashes, race-checked, ending in a graceful
# drain and a goroutine-leak check. SOAK_SECONDS stretches the run.
soak:
	SOAK_SECONDS=$${SOAK_SECONDS:-20} $(GO) test -race -count=1 -v -run 'TestDaemonSoak' ./internal/sessiond

# Chaos: the full loadgen fleet (1,000+ simulated users, scripted
# network faults, deliberate overload) against an in-process daemon,
# race-checked, with every robustness invariant asserted afterward —
# no goroutine leaks, no cross-session bleed, byte-for-byte journal
# recovery, monotonic notify sequences, budgets respected, typed
# refusals. CHAOS_USERS resizes the fleet.
chaos:
	CHAOS_USERS=$${CHAOS_USERS:-1000} $(GO) test -race -count=1 -v -timeout 20m \
		-run 'TestChaosReplay|TestChaosOverload|TestDrainUnparksWaiters' ./internal/loadgen

figs:
	$(GO) run ./cmd/helpfigs -o figures

tables:
	$(GO) run ./cmd/helpbench

fuzz:
	$(GO) test -fuzz='FuzzParse$$' -fuzztime=30s ./internal/shell
	$(GO) test -fuzz='FuzzParseFile$$' -fuzztime=30s ./internal/cc
	$(GO) test -fuzz='FuzzAddress$$' -fuzztime=30s ./internal/text
	$(GO) test -fuzz='FuzzEditSequence$$' -fuzztime=30s ./internal/text
	$(GO) test -fuzz='FuzzLineIndex$$' -fuzztime=30s ./internal/text
	$(GO) test -fuzz='FuzzPagedBuffer$$' -fuzztime=30s ./internal/text
	$(GO) test -fuzz='FuzzJournalDecode$$' -fuzztime=30s ./internal/journal

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
