package report

import (
	"bytes"
	"strings"
	"testing"
)

const scrW, scrH = 120, 60

func TestClicksTable(t *testing.T) {
	var b bytes.Buffer
	if err := Clicks(&b, scrW, scrH); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"T1.", "fig5", "fig12", "KEYBOARD UNTOUCHED", "0 keystrokes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("clicks table missing %q", want)
		}
	}
	if strings.Contains(out, "claim violated") {
		t.Error("the keyboard claim must hold")
	}
}

func TestInteractionTable(t *testing.T) {
	var b bytes.Buffer
	if err := Interaction(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"help", "popup-ws", "typed-shell", "help-noauto",
		"open-file-by-pointing", "total help",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("interaction table missing %q", want)
		}
	}
	// help's total row must come before the others (sorted ascending).
	helpIdx := strings.Index(out, "total help ")
	popupIdx := strings.Index(out, "total popup-ws")
	if helpIdx < 0 || popupIdx < 0 || helpIdx > popupIdx {
		t.Error("help should rank first in the summary")
	}
}

func TestUsesGrepTable(t *testing.T) {
	var b bytes.Buffer
	if err := UsesGrep(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ident=n ") && !strings.Contains(out, "ident=n\t") {
		t.Errorf("missing ident=n row:\n%s", out)
	}
	if !strings.Contains(out, "uses=  4") {
		t.Errorf("n should have exactly 4 uses:\n%s", out)
	}
}

func TestSizeTable(t *testing.T) {
	var b bytes.Buffer
	// The test runs from the package dir; the repo root is two levels up.
	if err := Size(&b, "../.."); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"help core", "substrates", "4300 lines of C",
		"/help/cbr/decl", "UI references: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("size table missing %q", want)
		}
	}
	if strings.Contains(out, "UI references: 1") {
		t.Error("a tool script contains UI code")
	}
}

func TestPlacementTable(t *testing.T) {
	var b bytes.Buffer
	if err := Placement(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"help", "cascade", "stack", "n=32"} {
		if !strings.Contains(out, want) {
			t.Errorf("placement table missing %q", want)
		}
	}
}

func TestConnectivityTable(t *testing.T) {
	var b bytes.Buffer
	if err := Connectivity(&b, scrW, scrH); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "fig12") {
		t.Errorf("connectivity table missing steps:\n%s", out)
	}
}

func TestCountTokens(t *testing.T) {
	if got := CountTokens("a b\n c\n\n"); got != 3 {
		t.Errorf("CountTokens = %d", got)
	}
	if got := CountTokens(""); got != 0 {
		t.Errorf("empty = %d", got)
	}
}
