// Package report generates the evaluation tables of EXPERIMENTS.md. Each
// function reproduces one of the paper's quantified claims against the
// live system and writes a human-readable table; cmd/helpbench is a thin
// wrapper. Keeping the generators here makes every table's content
// testable.
package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/session"
	"repro/internal/world"
)

// Clicks (T1) replays the debugging session and reports the interaction
// cost of every step, checking that the keyboard stayed untouched.
func Clicks(w io.Writer, scrW, scrH int) error {
	fmt.Fprintln(w, "T1. Interaction cost per session step (paper: \"Through this entire")
	fmt.Fprintln(w, "    demo I haven't yet touched the keyboard.\")")
	fmt.Fprintln(w)
	s, err := session.New(scrW, scrH)
	if err != nil {
		return err
	}
	if err := s.RunDebugSession(); err != nil {
		return err
	}
	fmt.Fprintf(w, "    %-6s %-55s %8s %6s %6s\n", "step", "action", "presses", "keys", "travel")
	prevPresses, prevTravel := 0, 0
	for _, st := range s.Steps {
		fmt.Fprintf(w, "    %-6s %-55s %8d %6d %6d\n",
			st.Name, st.Desc, st.Metrics.Presses-prevPresses,
			st.Metrics.Keystrokes, st.Metrics.Travel-prevTravel)
		prevPresses = st.Metrics.Presses
		prevTravel = st.Metrics.Travel
	}
	last := s.Last().Metrics
	fmt.Fprintf(w, "\n    total: %d presses, %d keystrokes, %d cells of travel\n",
		last.Presses, last.Keystrokes, last.Travel)
	if last.Keystrokes == 0 {
		fmt.Fprintln(w, "    KEYBOARD UNTOUCHED — the paper's claim holds.")
	} else {
		fmt.Fprintln(w, "    KEYBOARD USED — claim violated!")
	}
	return nil
}

// Interaction (T2) prices the standard task suite under help, the pop-up
// window system, the typed shell, and the no-defaults ablation.
func Interaction(w io.Writer) error {
	fmt.Fprintln(w, "T2. Interaction cost per task: help vs a pop-up-menu window system")
	fmt.Fprintln(w, "    vs a typed shell, plus the ablation with help's automation")
	fmt.Fprintln(w, "    rules turned off.")
	fmt.Fprintln(w)
	costs := baseline.Table(baseline.StandardTasks())
	for _, t := range baseline.StandardTasks() {
		costs = append(costs, baseline.HelpCostNoDefaults(t))
	}
	sort.SliceStable(costs, func(i, j int) bool { return costs[i].Task < costs[j].Task })
	for _, c := range costs {
		fmt.Fprintln(w, "    "+c.String())
	}
	sums := baseline.Summary(costs)
	models := make([]string, 0, len(sums))
	for m := range sums {
		models = append(models, m)
	}
	sort.Slice(models, func(i, j int) bool { return sums[models[i]] < sums[models[j]] })
	fmt.Fprintln(w)
	for _, m := range models {
		fmt.Fprintf(w, "    total %-16s %4d gestures\n", m, sums[m])
	}
	return nil
}

// UsesGrep (T3) compares the C browser against grep on the paper's tree.
func UsesGrep(w io.Writer) error {
	fmt.Fprintln(w, "T3. uses vs grep on /usr/rob/src/help (paper: grep n would report")
	fmt.Fprintln(w, "    \"every occurrence of the letter n in the program\").")
	fmt.Fprintln(w)
	wld, err := world.Build(80, 24)
	if err != nil {
		return err
	}
	for _, ident := range []string{"n", "fn", "snarf", "pages", "textinsert", "lookup", "errs"} {
		res, err := baseline.UsesVsGrep(wld.FS, wld.Shell, world.SrcDir, ident)
		if err != nil {
			fmt.Fprintf(w, "    ident=%-10s (%v)\n", ident, err)
			continue
		}
		fmt.Fprintln(w, "    "+res.String())
	}
	return nil
}

// Size (T4) reports line counts and the zero-UI tool audit. root is the
// repository root for the Go line counts.
func Size(w io.Writer, root string) error {
	fmt.Fprintln(w, "T4. Code size (paper: help is \"4300 lines of C\"; applications need")
	fmt.Fprintln(w, "    no user-interface code at all).")
	fmt.Fprintln(w)
	groups := []struct {
		name string
		dirs []string
	}{
		{"help core (core+helpfs)", []string{"internal/core", "internal/helpfs"}},
		{"substrates", []string{
			"internal/geom", "internal/draw", "internal/text", "internal/frame",
			"internal/event", "internal/vfs", "internal/shell", "internal/userland",
			"internal/proc", "internal/adb", "internal/cc", "internal/mail",
			"internal/helptool", "internal/srvnet",
		}},
		{"evaluation", []string{"internal/world", "internal/session", "internal/baseline", "internal/report"}},
	}
	for _, g := range groups {
		total := 0
		for _, dir := range g.dirs {
			n, err := countGoLines(filepath.Join(root, dir))
			if err != nil {
				return err
			}
			total += n
		}
		fmt.Fprintf(w, "    %-26s %6d lines of Go (non-test)\n", g.name, total)
	}
	fmt.Fprintln(w, "    paper's help              ~4300 lines of C")
	fmt.Fprintln(w)

	wld, err := world.Build(80, 24)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "    tool scripts (no UI code in any of them):")
	for _, dir := range []string{"/help/edit", "/help/cbr", "/help/db", "/help/mail"} {
		ents, err := wld.FS.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			data, _ := wld.FS.ReadFile(dir + "/" + e.Name)
			lines := strings.Count(string(data), "\n")
			uiWords := 0
			for _, bad := range []string{"mouse", "kbd", "click", "screen", "pixel"} {
				if strings.Contains(string(data), bad) {
					uiWords++
				}
			}
			fmt.Fprintf(w, "      %-22s %3d lines, UI references: %d\n", dir+"/"+e.Name, lines, uiWords)
		}
	}
	return nil
}

func countGoLines(dir string) (int, error) {
	total := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return 0, err
		}
		total += strings.Count(string(data), "\n")
	}
	return total, nil
}

// Placement (T5) compares the placement heuristic against naive policies.
func Placement(w io.Writer) error {
	fmt.Fprintln(w, "T5. Window placement: the paper's heuristic vs naive policies")
	fmt.Fprintln(w, "    (column height 48, 30-line bodies).")
	fmt.Fprintln(w)
	for _, r := range baseline.PlacementSweep([]int{2, 4, 8, 16, 32}, 48, 30) {
		fmt.Fprintln(w, "    "+r.String())
	}
	return nil
}

// Connectivity (T7) counts pointable tokens on screen across the session.
func Connectivity(w io.Writer, scrW, scrH int) error {
	fmt.Fprintln(w, "T7. Connectivity: tokens on screen per session step (paper: \"a kind")
	fmt.Fprintln(w, "    of exponential connectivity results\"; compare Figure 4 to 11).")
	fmt.Fprintln(w)
	s, err := session.New(scrW, scrH)
	if err != nil {
		return err
	}
	if err := s.RunDebugSession(); err != nil {
		return err
	}
	for _, st := range s.Steps {
		n := CountTokens(st.Screen)
		bar := strings.Repeat("#", n/12)
		fmt.Fprintf(w, "    %-6s %4d tokens %s\n", st.Name, n, bar)
	}
	return nil
}

// CountTokens counts whitespace-separated tokens on a rendered screen,
// each "a potential command or argument for a command".
func CountTokens(screen string) int {
	n := 0
	for _, line := range strings.Split(screen, "\n") {
		n += len(strings.Fields(line))
	}
	return n
}

// Stats (T8) replays the debugging session and snapshots the
// observability registry — the same flat text a script reads from
// /mnt/help/stats — so a bench run records what the system did, not
// just how long it took.
func Stats(w io.Writer, scrW, scrH int) error {
	fmt.Fprintln(w, "T8. Observability snapshot after the debugging session")
	fmt.Fprintln(w, "    (the contents of /mnt/help/stats; histograms under /mnt/help/histo)")
	fmt.Fprintln(w)
	s, err := session.New(scrW, scrH)
	if err != nil {
		return err
	}
	if err := s.RunDebugSession(); err != nil {
		return err
	}
	for _, line := range strings.Split(strings.TrimSpace(s.H.Obs.StatsText()), "\n") {
		fmt.Fprintf(w, "    %s\n", line)
	}
	return nil
}
