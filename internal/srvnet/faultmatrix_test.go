package srvnet

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/vfs"
)

// The fault matrix: for every scripted faultnet scenario, the
// ReconnectingClient must either return the correct result after
// bounded retries or a typed ErrDegraded within its deadline — never a
// hang, never a goroutine leak. Run under -race via `make test`.

// matrixWorld serves a small namespace through a faulty listener and
// returns a tuned reconnecting client plus the server for cleanup.
func matrixWorld(t *testing.T, newScript func(i int) *faultnet.Script) (*ReconnectingClient, *Server, net.Listener) {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("the payload"))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultnet.WrapListener(l, newScript)
	srv := NewServer(fs)
	srv.IdleTimeout = 500 * time.Millisecond
	srv.WriteTimeout = 200 * time.Millisecond
	go srv.Serve(fl)
	rc := NewReconnectingClient(l.Addr().String())
	rc.OpTimeout = 150 * time.Millisecond
	rc.BackoffBase = time.Millisecond
	rc.BackoffCap = 10 * time.Millisecond
	return rc, srv, l
}

// matrixScenarios are the scripted failures of the acceptance criteria,
// injected into the server's first connection.
var matrixScenarios = []struct {
	name   string
	script func() *faultnet.Script
}{
	{"drop-response", func() *faultnet.Script {
		return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Drop})
	}},
	{"stall-response", func() *faultnet.Script {
		return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Stall})
	}},
	{"partial-response", func() *faultnet.Script {
		return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Partial})
	}},
	{"corrupt-frame", func() *faultnet.Script {
		return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Corrupt})
	}},
	{"close-mid-response", func() *faultnet.Script {
		return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Close})
	}},
	{"stall-request-read", func() *faultnet.Script {
		return faultnet.NewScript(faultnet.Fault{Op: "read", After: 0, Kind: faultnet.Stall})
	}},
	{"drop-then-corrupt", func() *faultnet.Script {
		return faultnet.NewScript(
			faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Drop},
			faultnet.Fault{Op: "write", After: 1, Kind: faultnet.Corrupt})
	}},
}

// TestFaultMatrixRecovers: only the first connection is faulty, so every
// scenario must end with the correct result after redial.
func TestFaultMatrixRecovers(t *testing.T) {
	for _, sc := range matrixScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			rc, srv, l := matrixWorld(t, func(i int) *faultnet.Script {
				if i == 0 {
					return sc.script()
				}
				return nil
			})
			defer l.Close()

			start := time.Now()
			data, err := rc.ReadFile("/d/f")
			if err != nil {
				t.Fatalf("err = %v", err)
			}
			if string(data) != "the payload" {
				t.Fatalf("data = %q", data)
			}
			if elapsed := time.Since(start); elapsed > 3*time.Second {
				t.Errorf("took %v", elapsed)
			}
			// The other idempotent ops work on the healthy connection.
			if ents, err := rc.ReadDir("/d"); err != nil || len(ents) != 1 {
				t.Errorf("readdir: %v %v", ents, err)
			}
			if _, err := rc.Stat("/d/f"); err != nil {
				t.Errorf("stat: %v", err)
			}
			rc.Close()
			l.Close()
			srv.Shutdown(shutdownCtx(t))
			waitGoroutines(t, base)
		})
	}
}

// TestFaultMatrixDegrades: every connection is faulty, so every scenario
// must end with a typed ErrDegraded within the deadline — not a hang.
func TestFaultMatrixDegrades(t *testing.T) {
	for _, sc := range matrixScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			proto := sc.script().Faults()[0]
			rc, srv, l := matrixWorld(t, func(i int) *faultnet.Script {
				// Enough repeated faults to outlast the retry budget.
				var faults []faultnet.Fault
				for k := 0; k < 8; k++ {
					f := proto
					f.After = k
					faults = append(faults, f)
				}
				return faultnet.NewScript(faults...)
			})
			defer l.Close()

			start := time.Now()
			_, err := rc.ReadFile("/d/f")
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("err = %v, want ErrDegraded", err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Errorf("degradation took %v", elapsed)
			}
			rc.Close()
			l.Close()
			srv.Shutdown(shutdownCtx(t))
			waitGoroutines(t, base)
		})
	}
}

// shutdownCtx bounds a test's server shutdown.
func shutdownCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestFaultMatrixGenerated sweeps pseudo-random scripts across seeds:
// whatever the script does, each operation must finish quickly with
// either the right answer or an error — and the namespace server must
// survive to serve a clean connection afterward.
func TestFaultMatrixGenerated(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		base := runtime.NumGoroutine()
		rc, srv, l := matrixWorld(t, func(i int) *faultnet.Script {
			return faultnet.Generate(seed*100+int64(i), 3, 6)
		})

		for op := 0; op < 6; op++ {
			start := time.Now()
			data, err := rc.ReadFile("/d/f")
			if err == nil && string(data) != "the payload" {
				t.Fatalf("seed %d op %d: wrong data %q with nil error", seed, op, data)
			}
			if err != nil && !errors.Is(err, ErrDegraded) && !retryable(err) {
				t.Fatalf("seed %d op %d: untyped terminal error %v", seed, op, err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("seed %d op %d: took %v", seed, op, elapsed)
			}
		}
		rc.Close()
		l.Close()
		srv.Shutdown(shutdownCtx(t))
		waitGoroutines(t, base)
	}
}
