package srvnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// ErrDegraded is returned once a retry budget is spent without reaching
// the server: the remote namespace is present but unusable, and the
// caller should degrade (report, fall back) rather than hang. Test with
// errors.Is; the wrapped message carries the last transport error.
var ErrDegraded = errors.New("srvnet: remote namespace degraded")

// State is the coarse health of a ReconnectingClient, reported through
// OnStateChange so a UI can surface degradation (help shows it in the
// Errors window) instead of freezing on a dead CPU server.
type State int

const (
	// StateConnected: the last operation reached the server.
	StateConnected State = iota
	// StateRetrying: a transport failure occurred; redials are in
	// progress.
	StateRetrying
	// StateDegraded: a retry budget was spent; operations are failing
	// with ErrDegraded.
	StateDegraded
)

// String names the state for reports.
func (s State) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateRetrying:
		return "retrying"
	case StateDegraded:
		return "degraded"
	}
	return "unknown"
}

// ReconnectingClient is a fault-tolerant remote namespace handle: a
// Client that redials on transport failure. Idempotent operations
// (ReadFile, ReadDir, Stat, Glob) retry with capped exponential backoff
// and deterministic jitter until the budget is spent, then return
// ErrDegraded. Mutating operations (WriteFile, AppendFile, MkdirAll,
// Remove) never retry after the request may have been sent — the
// protocol cannot distinguish a lost request from a lost reply — but do
// retry dial failures, where nothing has been sent.
//
// The zero configuration works against Addr; all fields must be set
// before the first operation.
type ReconnectingClient struct {
	// Addr is the server address for the default dialer.
	Addr string
	// DialFunc overrides how connections are made (tests inject
	// faultnet-wrapped connections here). Nil means Dial(Addr).
	DialFunc func() (*Client, error)
	// OpTimeout bounds each attempt's round trip. Zero means
	// DefaultWriteTimeout.
	OpTimeout time.Duration
	// MaxRetries is how many times an idempotent operation is retried
	// beyond the first attempt. Zero means 3; negative means none.
	MaxRetries int
	// BackoffBase and BackoffCap shape the exponential backoff between
	// retries: sleep i is min(cap, base<<(i-1)) halved plus jitter.
	// Zeroes mean 10ms and 1s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BusyBudget bounds the total time one operation spends waiting out
	// busy refusals (the server's retry-after hints). Busy waits are
	// charged here, not against MaxRetries: a server protecting itself
	// with admission control is alive, so the refusals must not count
	// toward the degradation threshold. Zero means 2s; negative
	// disables busy waiting (refusals degrade immediately).
	BusyBudget time.Duration
	// Seed makes the jitter deterministic. Zero means 1.
	Seed int64
	// Session, when set, names the session to attach to after every
	// dial: against a multiplexing server (NewMuxServer), a redial
	// transparently re-attaches, so reattach-after-disconnect needs no
	// caller involvement.
	Session string
	// OnStateChange, when set, is called on every health transition
	// with the state entered and the error that caused it (nil for
	// StateConnected). Called from the operation's goroutine.
	OnStateChange func(State, error)
	// CacheReads enables the generation-keyed read cache (see
	// Client.SetCache) on every dialed connection. Each redial starts
	// cold: a reconnect may attach to a recovered session whose
	// generations restart, so nothing cached survives the old
	// connection. Every such cold start counts as srvnet.cache.reset
	// and leaves a trace event, so a redial storm that keeps emptying
	// the cache is visible in /mnt/help/trace.
	CacheReads bool
	// PushInvalRoot, when set alongside CacheReads, arms push
	// invalidation (Client.StartPushInval) on every dialed connection,
	// long-polling PushInvalRoot+"/log"; the watcher dies with each
	// connection and is re-armed cold on redial.
	PushInvalRoot string

	// Obs, when set before the first operation, records retry counts
	// (srvnet.retries), redials (srvnet.redials), degradation entries
	// (srvnet.degraded), a trace event per health transition, and —
	// propagated into each dialed Client — per-RPC latency histograms.
	Obs *obs.Registry

	mu     sync.Mutex
	c      *Client
	rng    *rand.Rand
	state  State
	dialed bool // a connection has been established at least once
	closed bool // Close was called; operations fail with ErrClientClosed
}

// NewReconnectingClient returns a client for the server at addr with
// default timeouts, retries, and backoff.
func NewReconnectingClient(addr string) *ReconnectingClient {
	return &ReconnectingClient{Addr: addr}
}

func (r *ReconnectingClient) opTimeout() time.Duration {
	if r.OpTimeout > 0 {
		return r.OpTimeout
	}
	return DefaultWriteTimeout
}

func (r *ReconnectingClient) retries() int {
	if r.MaxRetries > 0 {
		return r.MaxRetries
	}
	if r.MaxRetries < 0 {
		return 0
	}
	return 3
}

// State reports the current health.
func (r *ReconnectingClient) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// setState records a health transition and notifies the observer.
func (r *ReconnectingClient) setState(s State, err error) {
	r.mu.Lock()
	changed := r.state != s
	r.state = s
	notify := r.OnStateChange
	r.mu.Unlock()
	if changed {
		if s == StateDegraded {
			r.Obs.Counter("srvnet.degraded").Inc()
		}
		r.Obs.Event("srvnet.state", s.String())
		if notify != nil {
			notify(s, err)
		}
	}
}

// client returns the live connection, dialing if needed.
func (r *ReconnectingClient) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClientClosed
	}
	if r.c != nil {
		return r.c, nil
	}
	dial := r.DialFunc
	if dial == nil {
		addr := r.Addr
		dial = func() (*Client, error) { return Dial(addr) }
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	c.Timeout = r.opTimeout()
	c.Obs = r.Obs
	if r.CacheReads {
		c.SetCache(true)
	}
	if r.Session != "" {
		if err := c.Attach(r.Session); err != nil {
			c.Close()
			return nil, fmt.Errorf("srvnet: attach %q: %w", r.Session, err)
		}
	}
	if r.dialed {
		r.Obs.Counter("srvnet.redials").Inc()
		if r.CacheReads {
			// The redial dropped every cached generation (the recovered
			// session may have restarted them): account for the cold
			// start so its cost is attributable.
			r.Obs.Counter("srvnet.cache.reset").Inc()
			r.Obs.Event("srvnet.cache", "reset on redial")
		}
	}
	if r.CacheReads && r.PushInvalRoot != "" {
		c.StartPushInval(r.PushInvalRoot)
	}
	r.dialed = true
	r.c = c
	return c, nil
}

// drop discards a connection after a transport failure, so the next
// attempt redials.
func (r *ReconnectingClient) drop(c *Client) {
	c.Close()
	r.mu.Lock()
	if r.c == c {
		r.c = nil
	}
	r.mu.Unlock()
}

// jitter returns a deterministic random duration in [0, max).
func (r *ReconnectingClient) jitter(max int64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rng == nil {
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		r.rng = rand.New(rand.NewSource(seed))
	}
	return time.Duration(r.rng.Int63n(max))
}

// backoff returns the i'th retry delay (i counts from 1): capped
// exponential with deterministic jitter in the upper half.
func (r *ReconnectingClient) backoff(i int) time.Duration {
	base := r.BackoffBase
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	cap := r.BackoffCap
	if cap <= 0 {
		cap = time.Second
	}
	d := base
	for k := 1; k < i; k++ {
		d *= 2
		if d >= cap {
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	return d/2 + r.jitter(int64(d)/2+1)
}

// busyBudget resolves the BusyBudget default.
func (r *ReconnectingClient) busyBudget() time.Duration {
	if r.BusyBudget > 0 {
		return r.BusyBudget
	}
	if r.BusyBudget < 0 {
		return 0
	}
	return 2 * time.Second
}

// busyWait honors one busy refusal: sleep the server's retry-after
// hint (the generic backoff base when it sent none) plus jitter,
// charging the wait against the busy budget. It reports false once the
// budget cannot cover the wait — time to degrade.
func (r *ReconnectingClient) busyWait(err error, spent *time.Duration) bool {
	hint, ok := vfs.RetryAfter(err)
	if !ok {
		hint = r.BackoffBase
		if hint <= 0 {
			hint = 10 * time.Millisecond
		}
	}
	d := hint + r.jitter(int64(hint)/2+1)
	if *spent+d > r.busyBudget() {
		return false
	}
	*spent += d
	r.Obs.Counter("srvnet.busywait").Inc()
	time.Sleep(d)
	return true
}

// retryable reports whether err is worth a redial: transport failures
// and peer-reported protocol violations are; errors the server actually
// answered with (vfs sentinels and other namespace errors) are not —
// the retry would just repeat them. Busy refusals never reach here:
// do intercepts them first and waits the server's hint instead.
func retryable(err error) bool {
	if errors.Is(err, ErrProto) {
		return true
	}
	var we *wireError
	if errors.As(err, &we) {
		return false // the server answered; retrying changes nothing
	}
	if vfs.IsPermanent(err) {
		return false
	}
	return true
}

// do runs call with the retry policy. Idempotent operations retry any
// retryable failure; mutating ones only dial failures — and busy
// refusals, which are safe for both: a refused request was answered,
// not applied, so waiting out the server's retry-after hint and
// resending risks no double write. Busy waits draw on BusyBudget, not
// the attempt counter: "server protecting itself" must not trip the
// "server gone" degradation threshold.
func (r *ReconnectingClient) do(idempotent bool, call func(*Client) error) error {
	attempts := r.retries() + 1
	var lastErr error
	var busySpent time.Duration
	degradeBusy := func(err error) error {
		err = fmt.Errorf("%w: busy past retry budget: %w", ErrDegraded, err)
		r.setState(StateDegraded, err)
		return err
	}
	for i := 0; i < attempts; {
		c, err := r.client()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				// Closed deliberately: redialing would resurrect a client
				// the caller already tore down.
				return err
			}
			if errors.Is(err, ErrDraining) {
				// The server is deliberately going away: redialing would
				// just storm a host trying to shut down. Degrade now.
				err = fmt.Errorf("%w: %w", ErrDegraded, err)
				r.setState(StateDegraded, err)
				return err
			}
			if errors.Is(err, vfs.ErrBusy) {
				// Refused at the door (conn table or session budget
				// full): the server is alive, wait its hint out.
				lastErr = err
				r.setState(StateRetrying, err)
				if !r.busyWait(err, &busySpent) {
					return degradeBusy(err)
				}
				continue
			}
			// Dial failure: nothing was sent, always retryable.
			lastErr = err
			r.setState(StateRetrying, err)
			i++
			if i < attempts {
				r.Obs.Counter("srvnet.retries").Inc()
				time.Sleep(r.backoff(i))
			}
			continue
		}
		err = call(c)
		if err == nil {
			r.setState(StateConnected, nil)
			return nil
		}
		if errors.Is(err, ErrDraining) {
			r.drop(c)
			err = fmt.Errorf("%w: %w", ErrDegraded, err)
			r.setState(StateDegraded, err)
			return err
		}
		if errors.Is(err, vfs.ErrBusy) {
			// An operation refused by a budget. A per-op refusal leaves
			// the connection healthy; a conn-level one (Seq-0 refusal)
			// poisoned it, so drop it and let the wait redial.
			if c.closedNow() {
				r.drop(c)
			}
			lastErr = err
			r.setState(StateRetrying, err)
			if !r.busyWait(err, &busySpent) {
				return degradeBusy(err)
			}
			continue
		}
		if !retryable(err) {
			// The server answered: the connection is healthy, the
			// operation is just wrong.
			r.setState(StateConnected, nil)
			return err
		}
		r.drop(c)
		lastErr = err
		if !idempotent {
			// The request may have been applied; surface the ambiguity
			// rather than risk a double write.
			r.setState(StateRetrying, err)
			return fmt.Errorf("srvnet: request outcome unknown (connection lost): %w", err)
		}
		r.setState(StateRetrying, err)
		i++
		if i < attempts {
			r.Obs.Counter("srvnet.retries").Inc()
			time.Sleep(r.backoff(i))
		}
	}
	err := fmt.Errorf("%w (after %d attempts): %v", ErrDegraded, attempts, lastErr)
	r.setState(StateDegraded, err)
	return err
}

// Close closes the underlying connection, if any, and marks the client
// closed: operations issued afterward fail with ErrClientClosed instead
// of silently redialing a client the caller tore down.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	c := r.c
	r.c = nil
	r.closed = true
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// ReadFiles reads several remote files in one pipelined batch: all the
// requests go out in a single write (cache hits never leave the
// machine), then the replies are collected. The result is positional;
// the first failure is returned after every reply has been drained, so
// the connection stays usable.
func (r *ReconnectingClient) ReadFiles(paths []string) (datas [][]byte, err error) {
	err = r.do(true, func(c *Client) error {
		b := c.NewBatch()
		futs := make([]*Future, len(paths))
		for i, p := range paths {
			futs[i] = b.ReadFile(p)
		}
		if err := b.Flush(); err != nil {
			return err
		}
		out := make([][]byte, len(paths))
		var first error
		for i, f := range futs {
			data, ferr := f.Data()
			if ferr != nil && first == nil {
				first = ferr
			}
			out[i] = data
		}
		if first != nil {
			return first
		}
		datas = out
		return nil
	})
	return datas, err
}

// ReadFile reads a remote file, retrying transport failures.
func (r *ReconnectingClient) ReadFile(path string) (data []byte, err error) {
	err = r.do(true, func(c *Client) error {
		data, err = c.ReadFile(path)
		return err
	})
	return data, err
}

// ReadDir lists a remote directory, retrying transport failures.
func (r *ReconnectingClient) ReadDir(path string) (ents []vfs.Info, err error) {
	err = r.do(true, func(c *Client) error {
		ents, err = c.ReadDir(path)
		return err
	})
	return ents, err
}

// Stat describes a remote file, retrying transport failures.
func (r *ReconnectingClient) Stat(path string) (info vfs.Info, err error) {
	err = r.do(true, func(c *Client) error {
		info, err = c.Stat(path)
		return err
	})
	return info, err
}

// ReadWait long-polls an event file (see Client.ReadWait), retrying
// transport failures. It is idempotent by construction — the resume seq
// means a retried poll re-delivers nothing it already returned — so a
// subscriber parked across a drop/redial resumes from its last seq with
// no events duplicated and any truly lost span surfaced as a "gap"
// event line.
func (r *ReconnectingClient) ReadWait(path string, since uint64, wait time.Duration) (data []byte, next uint64, err error) {
	err = r.do(true, func(c *Client) error {
		data, next, err = c.ReadWait(path, since, wait)
		return err
	})
	return data, next, err
}

// Glob expands a pattern remotely, retrying transport failures.
func (r *ReconnectingClient) Glob(pattern string) (names []string, err error) {
	err = r.do(true, func(c *Client) error {
		names, err = c.Glob(pattern)
		return err
	})
	return names, err
}

// WriteFile writes a remote file. Only dial failures are retried.
func (r *ReconnectingClient) WriteFile(path string, data []byte) error {
	return r.do(false, func(c *Client) error { return c.WriteFile(path, data) })
}

// AppendFile appends to a remote file. Only dial failures are retried.
func (r *ReconnectingClient) AppendFile(path string, data []byte) error {
	return r.do(false, func(c *Client) error { return c.AppendFile(path, data) })
}

// MkdirAll creates a remote directory tree. Only dial failures are
// retried.
func (r *ReconnectingClient) MkdirAll(path string) error {
	return r.do(false, func(c *Client) error { return c.MkdirAll(path) })
}

// Remove deletes a remote file or empty directory. Only dial failures
// are retried.
func (r *ReconnectingClient) Remove(path string) error {
	return r.do(false, func(c *Client) error { return c.Remove(path) })
}
