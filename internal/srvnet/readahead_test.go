package srvnet

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// TestReadaheadWindowed drives the per-connection readahead slot directly
// over a file several times the window size: a sequential sweep must cost
// one namespace read per window (not per chunk, and never the whole
// file), the slot must never hold more than one window, and backward
// seeks or generation bumps must re-read.
func TestReadaheadWindowed(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	body := make([]byte, 3*raWindow+12345)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	fs.WriteFile("/d/huge", body)
	reg := obs.New()
	ra := &readahead{}

	const chunk = 64 * 1024
	var got []byte
	for off := int64(0); ; {
		data, _, err := ra.readAt(fs, reg, "/d/huge", off, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			break
		}
		if len(ra.data) > raWindow {
			t.Fatalf("slot holds %d bytes, window is %d", len(ra.data), raWindow)
		}
		got = append(got, data...)
		off += int64(len(data))
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("sweep reassembled %d bytes, want %d", len(got), len(body))
	}
	stats := reg.StatsMap()
	if misses := stats["srvnet.readahead.miss"]; misses != 4 {
		t.Errorf("misses = %d, want 4 (one per window)", misses)
	}
	if hits := stats["srvnet.readahead.hit"]; hits < 40 {
		t.Errorf("hits = %d, want most chunks", hits)
	}

	// A backward seek outside the current window re-reads there.
	m0 := reg.StatsMap()["srvnet.readahead.miss"]
	data, _, err := ra.readAt(fs, reg, "/d/huge", 0, chunk)
	if err != nil || !bytes.Equal(data, body[:chunk]) {
		t.Fatalf("backward read = %d bytes err=%v", len(data), err)
	}
	if reg.StatsMap()["srvnet.readahead.miss"] != m0+1 {
		t.Errorf("backward seek did not miss")
	}

	// A generation bump invalidates even a covered range.
	fs.WriteFile("/d/huge", []byte("rewritten"))
	data, _, err = ra.readAt(fs, reg, "/d/huge", 0, chunk)
	if err != nil || string(data) != "rewritten" {
		t.Fatalf("post-write read = %q err=%v", data, err)
	}
}
