package srvnet

import (
	"sync"
	"time"

	"repro/internal/vfs"
)

// Batch queues several operations and pushes them onto the wire in a
// single buffered write, turning N round trips into one send followed
// by N (possibly coalesced) replies — explicit pipelining for callers
// that know their next few operations up front, like the repl's fetch
// command or ReconnectingClient.ReadFiles.
//
// Queue operations, call Flush, then collect each Future. Collecting a
// Future before Flush flushes implicitly. A Batch is not safe for
// concurrent use; the Futures it returns are collected independently.
type Batch struct {
	c       *Client
	mu      sync.Mutex
	queued  []*Future
	flushed bool
}

// Future is one queued operation's pending result. Exactly one of the
// typed accessors should be called, once, matching the operation.
type Future struct {
	b    *Batch
	op   string
	path string
	call *pendingCall // nil when resolved locally (cache hit) or failed at queue time
	resp response
	err  error
	done bool
}

// NewBatch starts an empty pipeline on the client.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// queue registers and encodes one request without flushing.
func (b *Batch) queue(req request) *Future {
	f := &Future{b: b, op: req.Op, path: req.Path}
	call, err := b.c.start(&req, false)
	if err != nil {
		f.err, f.done = err, true
		return f
	}
	f.call = call
	b.mu.Lock()
	b.queued = append(b.queued, f)
	b.flushed = false
	b.mu.Unlock()
	return f
}

// ReadFile queues a read. A cache hit resolves the Future locally with
// zero wire traffic.
func (b *Batch) ReadFile(path string) *Future {
	if b.c.cacheEnabled() {
		if data, ok := b.c.cacheGet(path); ok {
			b.c.Obs.Counter("srvnet.cache.hit").Inc()
			return &Future{op: "read", path: path, resp: response{Data: data}, done: true}
		}
		b.c.Obs.Counter("srvnet.cache.miss").Inc()
	}
	return b.queue(request{Op: "read", Path: path})
}

// Stat queues a stat.
func (b *Batch) Stat(path string) *Future {
	return b.queue(request{Op: "stat", Path: path})
}

// WriteFile queues a write, invalidating the path's cached entry.
func (b *Batch) WriteFile(path string, data []byte) *Future {
	b.c.cacheInvalidate(path)
	return b.queue(request{Op: "write", Path: path, Data: data})
}

// AppendFile queues an append, invalidating the path's cached entry.
func (b *Batch) AppendFile(path string, data []byte) *Future {
	b.c.cacheInvalidate(path)
	return b.queue(request{Op: "write", Path: path, Data: data, Append: true})
}

// Flush pushes every queued request onto the wire in one write.
func (b *Batch) Flush() error {
	b.mu.Lock()
	if b.flushed {
		b.mu.Unlock()
		return nil
	}
	b.flushed = true
	b.mu.Unlock()
	b.c.Obs.Counter("srvnet.batch.flushes").Inc()
	b.c.wmu.Lock()
	if to := b.c.timeout(); to > 0 {
		b.c.conn.SetWriteDeadline(time.Now().Add(to))
	}
	err := b.c.bw.Flush()
	b.c.wmu.Unlock()
	return err
}

// resolve collects the wire reply, flushing the batch first if the
// caller never did.
func (f *Future) resolve() {
	if f.done {
		return
	}
	f.done = true
	if f.b != nil {
		if err := f.b.Flush(); err != nil {
			// The failed flush poisoned the client; the pending call has
			// been (or is being) failed — collect that result.
		}
	}
	f.resp, f.err = f.b.c.wait(f.op, f.call)
	if f.err == nil && f.op == "read" {
		f.b.c.cachePut(f.path, f.resp.Gen, f.resp.Data)
	}
}

// Err waits for the operation and returns its error; the accessor for
// queued writes and appends.
func (f *Future) Err() error {
	f.resolve()
	return f.err
}

// Data waits for a queued read and returns its contents.
func (f *Future) Data() ([]byte, error) {
	f.resolve()
	return f.resp.Data, f.err
}

// Info waits for a queued stat and returns the file's Info.
func (f *Future) Info() (vfs.Info, error) {
	f.resolve()
	if f.err != nil {
		return vfs.Info{}, f.err
	}
	i := f.resp.Info
	if i == nil {
		return vfs.Info{}, f.err
	}
	if f.b != nil && f.b.c.cacheEnabled() {
		f.b.c.cacheNote(f.path, f.resp.Gen)
	}
	return vfs.Info{Name: i.Name, IsDir: i.IsDir, Size: i.Size, ModTime: i.ModTime, Gen: i.Gen}, nil
}
