package srvnet

import (
	"bufio"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/vfs"
	"repro/internal/world"
)

// The readwait surface: a remote subscriber parks on an event stream
// with zero polling traffic, resumes from its last seq across faults
// and redials, and feeds the client cache's push invalidation. Run
// under -race via `make test`.

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// parseEvents splits a readwait payload into events.
func parseEvents(t *testing.T, data []byte) []notify.Event {
	t.Helper()
	var evs []notify.Event
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			continue
		}
		ev, ok := notify.ParseLine(line)
		if !ok {
			t.Fatalf("unparseable event line %q", line)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestReadWaitDeliversEventWithoutPolling is the tentpole acceptance
// test: a remote subscriber blocked on /mnt/help/log receives a
// window-create event end to end, and the wire carries exactly one
// request for the whole wait — no polling.
func TestReadWaitDeliversEventWithoutPolling(t *testing.T) {
	base := runtime.NumGoroutine()
	w, err := world.Build(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(w.FS)
	go srv.Serve(l)
	c, cc := dialCounting(t, l.Addr().String())

	seq0 := w.Help.Notify.Seq()
	writes0 := cc.writes.Load()
	type result struct {
		evs  []notify.Event
		next uint64
		err  error
	}
	got := make(chan result, 1)
	go func() {
		data, next, err := c.ReadWait(world.MountRoot+"/log", seq0, 10*time.Second)
		if err != nil {
			got <- result{nil, next, err}
			return
		}
		got <- result{parseEvents(t, data), next, err}
	}()

	// The single readwait request goes out, then the client sits
	// silent: any further write while parked would be polling.
	waitFor(t, "readwait request sent", func() bool { return cc.writes.Load() > writes0 })
	sent := cc.writes.Load()
	time.Sleep(100 * time.Millisecond)
	if n := cc.writes.Load(); n != sent {
		t.Fatalf("client wrote %d frames while parked, want 0", n-sent)
	}

	w.Help.NewWindow()

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("ReadWait: %v", r.err)
		}
		found := false
		for _, ev := range r.evs {
			if ev.Kind == "new" {
				found = true
				if r.next < ev.Seq {
					t.Errorf("resume seq %d < event seq %d", r.next, ev.Seq)
				}
			}
		}
		if !found {
			t.Fatalf("no new-window event in %+v", r.evs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked readwait never woke on window create")
	}
	if n := cc.writes.Load(); n != sent {
		t.Errorf("wire writes for the whole wait = %d, want 1 request", n-writes0)
	}
	c.Close()
	l.Close()
	srv.Shutdown(shutdownCtx(t))
	waitGoroutines(t, base)
}

// TestPushInvalidationSkipsStat is the cache acceptance test: after a
// remote edit, the push-invalidated client serves the next read fresh
// off the wire without ever issuing a Stat revalidation.
func TestPushInvalidationSkipsStat(t *testing.T) {
	w, err := world.Build(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	win := w.Help.NewWindow()
	win.Body.SetString("v1")
	body := world.MountRoot + "/1/body"

	reader, _ := serve(t, w.FS)
	reg := obs.New()
	reader.Obs = reg
	reader.SetCache(true)
	stop := reader.StartPushInval(world.MountRoot)
	defer stop()
	// Let the invalidation stream park before anything changes.
	time.Sleep(50 * time.Millisecond)

	// Warm the cache: miss, then hit.
	if data, err := reader.ReadFile(body); err != nil || string(data) != "v1" {
		t.Fatalf("first read = %q err=%v", data, err)
	}
	if data, err := reader.ReadFile(body); err != nil || string(data) != "v1" {
		t.Fatalf("cached read = %q err=%v", data, err)
	}

	// A second machine edits the window through the file interface.
	writer, _ := serve(t, w.FS)
	if err := writer.WriteFile(body, []byte("v2")); err != nil {
		t.Fatal(err)
	}

	// The invalidation is pushed, not pulled: the counter moves with no
	// read traffic from this client.
	waitFor(t, "push invalidation", func() bool {
		return reg.Counter("srvnet.cache.pushinval").Load() > 0
	})
	data, err := reader.ReadFile(body)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read after push invalidation = %q err=%v, want fresh v2", data, err)
	}
	if n := reg.Histogram("srvnet.stat").Count(); n != 0 {
		t.Errorf("client issued %d Stat round trips, want 0", n)
	}
}

// TestReadWaitBudgetCoversServerPark: wait <= 0 delegates the park
// length to the server, whose cap can reach maxReadWait, so the
// client-side reply budget must cover the whole cap. Budgeting only the
// base timeout let a maximum-length empty poll on an idle session
// outlive the client timer and poison the connection — under defaults,
// StartPushInval killed an idle connection (and every in-flight call on
// it) roughly every 30 seconds.
func TestReadWaitBudgetCoversServerPark(t *testing.T) {
	c := &Client{Timeout: 50 * time.Millisecond}
	if got, want := c.readWaitBudget(0), 50*time.Millisecond+maxReadWait; got != want {
		t.Errorf("budget(0) = %v, want %v", got, want)
	}
	if got, want := c.readWaitBudget(2*time.Second), 50*time.Millisecond+2*time.Second; got != want {
		t.Errorf("budget(2s) = %v, want %v", got, want)
	}
	c.Timeout = -1 // "no timeout" must stay unbounded
	if got := c.readWaitBudget(0); got != 0 {
		t.Errorf("budget with no timeout = %v, want 0", got)
	}
}

// TestReadWaitIdleZeroWaitOutlivesClientTimeout drives the same bug end
// to end: an empty maximum-length poll (wait 0 on an idle bus) whose
// server park exceeds the client's base timeout must return as a normal
// empty poll, leaving the connection healthy — not trip the timer and
// poison it.
func TestReadWaitIdleZeroWaitOutlivesClientTimeout(t *testing.T) {
	fs := vfs.New()
	bus := notify.New()
	if err := fs.RegisterDevice("/log", notify.Device{Bus: bus}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	srv.IdleTimeout = 400 * time.Millisecond // server park cap = 200ms
	go srv.Serve(l)
	defer srv.Shutdown(shutdownCtx(t))
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 100 * time.Millisecond // shorter than the server's park

	data, _, err := c.ReadWait("/log", 0, 0)
	if err != nil {
		t.Fatalf("idle empty poll: %v", err)
	}
	if len(data) != 0 {
		t.Errorf("idle poll returned %q, want empty", data)
	}
	// The poll must not have poisoned the connection.
	if _, err := c.Stat("/log"); err != nil {
		t.Fatalf("connection dead after idle poll: %v", err)
	}
}

// TestPipelinedReadBehindParkedReadWaitFlushes: reply defers its flush
// while more requests sit in the queue, expecting the next reply to
// share it — but a readwait that parks emits nothing until its event
// arrives, so a reply batched behind it must be flushed at park time.
// It used to sit in the write buffer for the whole poll: a client
// pipelining any op behind a long poll (StartPushInval re-arming while
// another call is in flight) timed out and poisoned the connection.
func TestPipelinedReadBehindParkedReadWaitFlushes(t *testing.T) {
	fs := vfs.New()
	bus := notify.New()
	if err := fs.RegisterDevice("/log", notify.Device{Bus: bus}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	go srv.Serve(l)
	defer srv.Shutdown(shutdownCtx(t))
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One TCP write carries both frames, so the read's reply is written
	// while the readwait is already queued behind it.
	frames := `{"seq":1,"op":"read","path":"/log"}` + "\n" +
		`{"seq":2,"op":"readwait","path":"/log","off":0,"wait":60000}` + "\n"
	if _, err := conn.Write([]byte(frames)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read reply never flushed behind the parked readwait: %v", err)
	}
	if !strings.Contains(line, `"seq":1`) {
		t.Fatalf("first reply = %q, want seq 1", line)
	}
}

// TestPushInvalWatcherDeathDisablesCache: a push-invalidation stream
// the server refuses on a still-healthy connection must not die
// silently while the cache keeps serving — the failures are counted,
// retried, and when they persist the cache is disabled, so reads go
// back to the wire instead of trusting entries nothing invalidates.
func TestPushInvalWatcherDeathDisablesCache(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("x"))
	c, _ := serve(t, fs)
	reg := obs.New()
	c.Obs = reg
	c.SetCache(true)
	// No /nosuch/log exists: every poll is refused on a healthy conn.
	stop := c.StartPushInval("/nosuch")
	defer stop()

	waitFor(t, "watcher to disable the cache", func() bool { return !c.cacheEnabled() })
	if n := reg.Counter("srvnet.cache.pushinval.err").Load(); n == 0 {
		t.Error("watcher failures not counted")
	}
	// The refusals never poisoned the connection: plain ops still work.
	if data, err := c.ReadFile("/d/f"); err != nil || string(data) != "x" {
		t.Fatalf("read after watcher death = %q err=%v, want x", data, err)
	}
}

// TestReadWaitFaultMatrix is the satellite: a subscriber whose first
// connection drops, stalls, or dies mid-reply resumes from its last
// seq after the redial with no events duplicated or lost, and leaves
// no goroutines behind.
func TestReadWaitFaultMatrix(t *testing.T) {
	for _, sc := range matrixScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			fs := vfs.New()
			bus := notify.New()
			if err := fs.RegisterDevice("/log", notify.Device{Bus: bus}); err != nil {
				t.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			fl := faultnet.WrapListener(l, func(i int) *faultnet.Script {
				if i == 0 {
					return sc.script()
				}
				return nil
			})
			srv := NewServer(fs)
			srv.IdleTimeout = 500 * time.Millisecond
			srv.WriteTimeout = 200 * time.Millisecond
			go srv.Serve(fl)
			rc := NewReconnectingClient(l.Addr().String())
			rc.OpTimeout = 150 * time.Millisecond
			rc.BackoffBase = time.Millisecond
			rc.BackoffCap = 10 * time.Millisecond

			// Events 1..3 exist before the subscriber ever connects;
			// seq 1 is the anchor it resumes from.
			for i := 0; i < 3; i++ {
				bus.Publish(1, "body", "")
			}
			data, next, err := rc.ReadWait("/log", 1, 100*time.Millisecond)
			if err != nil {
				t.Fatalf("first ReadWait: %v", err)
			}
			var seqs []uint64
			for _, ev := range parseEvents(t, data) {
				seqs = append(seqs, ev.Seq)
			}
			bus.Publish(1, "body", "")
			bus.Publish(1, "body", "")
			data, _, err = rc.ReadWait("/log", next, 100*time.Millisecond)
			if err != nil {
				t.Fatalf("resumed ReadWait: %v", err)
			}
			for _, ev := range parseEvents(t, data) {
				seqs = append(seqs, ev.Seq)
			}
			want := []uint64{2, 3, 4, 5}
			if len(seqs) != len(want) {
				t.Fatalf("seqs = %v, want %v (dup or lost events)", seqs, want)
			}
			for i := range want {
				if seqs[i] != want[i] {
					t.Fatalf("seqs = %v, want %v", seqs, want)
				}
			}

			rc.Close()
			srv.Shutdown(shutdownCtx(t))
			waitGoroutines(t, base)
		})
	}
}

// TestCacheResetOnRedial is the satellite: dropping the cache on a
// redial bumps srvnet.cache.reset so operators can see churn.
func TestCacheResetOnRedial(t *testing.T) {
	rc, srv, l := matrixWorld(t, func(i int) *faultnet.Script {
		if i == 0 {
			return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Drop})
		}
		return nil
	})
	defer l.Close()
	defer srv.Shutdown(shutdownCtx(t))
	defer rc.Close()
	reg := obs.New()
	rc.Obs = reg
	rc.CacheReads = true

	// First op dials, hits the dropped reply, redials, succeeds.
	if _, err := rc.ReadFile("/d/f"); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("srvnet.cache.reset").Load(); n == 0 {
		t.Error("cache reset on redial not counted")
	}
}
