package srvnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// busyHub refuses the first `refusals` attaches with a typed busy error
// carrying a retry-after hint, then behaves like testHub. It models a
// daemon whose admission control is briefly saturated.
type busyHub struct {
	*testHub
	mu       sync.Mutex
	refusals int
	hint     time.Duration
	refused  int
}

func (h *busyHub) AttachSession(name string) (*vfs.FS, func(), error) {
	h.mu.Lock()
	if h.refused < h.refusals {
		h.refused++
		h.mu.Unlock()
		return nil, nil, &vfs.BusyError{Msg: "hub saturated", After: h.hint}
	}
	h.mu.Unlock()
	return h.testHub.AttachSession(name)
}

func (h *busyHub) refusedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.refused
}

// TestReconnectWaitsOutBusyRefusals: a busy refusal means "alive but
// protecting itself", so the client must wait the server's retry-after
// hint (jittered) and try again — without consuming redial attempts or
// tripping the degradation threshold.
func TestReconnectWaitsOutBusyRefusals(t *testing.T) {
	const refusals = 3
	hint := 30 * time.Millisecond
	hub := &busyHub{testHub: newTestHub(), refusals: refusals, hint: hint}
	addr, _ := muxServe(t, hub)

	reg := obs.New()
	r := NewReconnectingClient(addr)
	r.Session = "s"
	r.Obs = reg
	r.Seed = 7
	defer r.Close()

	start := time.Now()
	who, err := r.ReadFile("/d/who")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("ReadFile after busy refusals: %v", err)
	}
	if string(who) != "s" {
		t.Fatalf("who = %q, want s", who)
	}
	if got := hub.refusedCount(); got != refusals {
		t.Fatalf("hub refused %d attaches, want %d", got, refusals)
	}
	// Each refusal is waited out for at least the server's hint.
	if min := time.Duration(refusals) * hint; elapsed < min-10*time.Millisecond {
		t.Fatalf("op finished in %v; %d hints of %v should take at least ~%v", elapsed, refusals, hint, min)
	}
	// The waits were charged to the busy budget, not the retry counter:
	// busy must never advance the client toward ErrDegraded.
	if got := reg.Counter("srvnet.retries").Load(); got != 0 {
		t.Fatalf("srvnet.retries = %d after busy refusals, want 0", got)
	}
	if got := reg.Counter("srvnet.busywait").Load(); got != refusals {
		t.Fatalf("srvnet.busywait = %d, want %d", got, refusals)
	}
	if st := r.State(); st != StateConnected {
		t.Fatalf("state = %v after recovery, want connected", st)
	}
}

// TestReconnectBusyBudgetDegrades: once the busy budget cannot cover the
// next hinted wait, the client degrades with an error naming both
// conditions — degraded, and why (busy).
func TestReconnectBusyBudgetDegrades(t *testing.T) {
	hub := &busyHub{testHub: newTestHub(), refusals: 1 << 30, hint: 30 * time.Millisecond}
	addr, _ := muxServe(t, hub)

	reg := obs.New()
	r := NewReconnectingClient(addr)
	r.Session = "s"
	r.Obs = reg
	r.Seed = 7
	r.BusyBudget = 40 * time.Millisecond
	defer r.Close()

	_, err := r.ReadFile("/d/who")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, vfs.ErrBusy) {
		t.Fatalf("err = %v, should still identify as busy", err)
	}
	if got := reg.Counter("srvnet.retries").Load(); got != 0 {
		t.Fatalf("srvnet.retries = %d, want 0: busy must not consume redial attempts", got)
	}
	if st := r.State(); st != StateDegraded {
		t.Fatalf("state = %v, want degraded", st)
	}
}

// TestReconnectNegativeBusyBudgetDisablesWaiting: a negative budget opts
// out of busy waiting entirely — the first refusal degrades immediately,
// with no sleep.
func TestReconnectNegativeBusyBudgetDisablesWaiting(t *testing.T) {
	hub := &busyHub{testHub: newTestHub(), refusals: 1 << 30, hint: 50 * time.Millisecond}
	addr, _ := muxServe(t, hub)

	reg := obs.New()
	r := NewReconnectingClient(addr)
	r.Session = "s"
	r.Obs = reg
	r.BusyBudget = -1
	defer r.Close()

	start := time.Now()
	_, err := r.ReadFile("/d/who")
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, vfs.ErrBusy) {
		t.Fatalf("err = %v, want degraded busy", err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("degraded after %v; a disabled budget must not sleep out the hint", elapsed)
	}
	if got := reg.Counter("srvnet.busywait").Load(); got != 0 {
		t.Fatalf("srvnet.busywait = %d, want 0", got)
	}
}
