package srvnet

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/vfs"
)

// waitGoroutines waits for the goroutine count to drop back to base,
// failing the test with a stack dump if it does not.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<17)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutine leak: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestMalformedFrameGetsProtocolError is the regression test for the
// server silently dropping malformed JSON: the client must receive an
// explicit protocol-error reply before the connection closes.
func TestMalformedFrameGetsProtocolError(t *testing.T) {
	fs := vfs.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go NewServer(fs).Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no protocol-error reply: %v", err)
	}
	if resp.Code != codeProto || !strings.Contains(resp.Err, "malformed") {
		t.Errorf("reply = %+v", resp)
	}
	// The connection is closed afterward: the stream cannot be resynced.
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection stayed open after protocol error")
	}
}

// TestMalformedFrameSeenByClient: the same condition through the Client,
// which should surface ErrProto.
func TestMalformedFrameSeenByClient(t *testing.T) {
	fs := vfs.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go NewServer(fs).Serve(l)

	// Corrupt the client's first request frame in flight.
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(faultnet.WrapConn(raw, faultnet.NewScript(
		faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Corrupt})))
	c.Timeout = 2 * time.Second
	defer c.Close()
	_, err = c.ReadFile("/x")
	if !errors.Is(err, ErrProto) {
		t.Errorf("err = %v, want ErrProto", err)
	}
}

func TestVfsSentinelsSurviveTheWire(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	c, _ := serve(t, fs)
	if _, err := c.ReadFile("/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist", err)
	}
	if _, err := c.ReadFile("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Errorf("read dir: err = %v, want ErrIsDir", err)
	}
	if _, err := c.ReadDir("/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("readdir missing: err = %v, want ErrNotExist", err)
	}
	// The remote message text is preserved too.
	if _, err := c.ReadFile("/nope"); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("message lost: %v", err)
	}
}

// TestServeClosesConnectionsOnListenerClose is the regression test for
// the per-connection goroutine leak: closing the listener must close
// live connections and let their goroutines exit.
func TestServeClosesConnectionsOnListenerClose(t *testing.T) {
	base := runtime.NumGoroutine()
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	// Three connected clients, sitting idle after one op each.
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.ReadDir("/d"); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	if n := srv.ConnCount(); n != 3 {
		t.Fatalf("ConnCount = %d", n)
	}

	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if n := srv.ConnCount(); n != 0 {
		t.Errorf("ConnCount after close = %d", n)
	}
	// The clients see their connections die.
	for _, c := range clients {
		if _, err := c.ReadDir("/d"); err == nil {
			t.Error("op on killed connection succeeded")
		}
	}
	waitGoroutines(t, base)
}

func TestShutdownDrains(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs)
	go srv.Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteFile("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Both the listener and the connection are gone.
	if _, err := net.Dial("tcp", l.Addr().String()); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	if _, err := c.ReadFile("/d/f"); err == nil {
		t.Error("connection survived Shutdown")
	}
}

// TestShutdownForceClosesOnContextExpiry holds the server's namespace
// lock so a request stays in flight, then verifies an expired context
// force-closes rather than waiting forever.
func TestShutdownForceClosesOnContextExpiry(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs)
	go srv.Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 5 * time.Second

	srv.Locker().Lock() // request will block inside handle
	opDone := make(chan error, 1)
	go func() {
		_, err := c.ReadFile("/d/f")
		opDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the lock

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	srv.Locker().Unlock()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if err := <-opDone; err == nil {
		t.Error("in-flight op on force-closed connection succeeded")
	}
}

func TestBusyWhenFull(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	srv.MaxConns = 1
	go srv.Serve(l)

	c1, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.ReadDir("/d"); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.ReadDir("/d"); !errors.Is(err, ErrBusy) {
		t.Errorf("over-capacity err = %v, want ErrBusy", err)
	}
	// The first client still works.
	if _, err := c1.ReadDir("/d"); err != nil {
		t.Errorf("first client broken: %v", err)
	}
}

func TestIdleTimeoutClosesConnection(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	srv.IdleTimeout = 50 * time.Millisecond
	go srv.Serve(l)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadDir("/d"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for srv.ConnCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.ReadDir("/d"); err == nil {
		t.Error("op on reaped connection succeeded")
	}
}

// TestClientCloseDuringRPC is the regression test for Close racing an
// in-flight round trip: with the mutex taken by both, they serialize
// instead of interleaving on the connection (run under -race).
func TestClientCloseDuringRPC(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Stall the server's first response so the rpc is reliably in
	// flight when Close runs.
	fl := faultnet.WrapListener(l, func(i int) *faultnet.Script {
		return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Stall})
	})
	go NewServer(fs).Serve(fl)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 200 * time.Millisecond

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.ReadDir("/d") // times out or sees the close
	}()
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond)
		c.Close()
	}()
	wg.Wait()
	if _, err := c.ReadDir("/d"); !errors.Is(err, ErrClientClosed) {
		t.Errorf("op after Close: err = %v, want ErrClientClosed", err)
	}
}

// TestSeqMismatchPoisons drives the client against a fake server that
// answers with the wrong sequence number.
func TestSeqMismatchPoisons(t *testing.T) {
	cside, sside := net.Pipe()
	go func() {
		dec := json.NewDecoder(sside)
		enc := json.NewEncoder(sside)
		var req request
		if dec.Decode(&req) == nil {
			enc.Encode(response{Seq: req.Seq + 7})
		}
	}()
	c := NewClient(cside)
	c.Timeout = 2 * time.Second
	defer c.Close()
	_, err := c.ReadFile("/x")
	if !errors.Is(err, ErrProto) {
		t.Errorf("err = %v, want ErrProto", err)
	}
	if _, err := c.ReadFile("/x"); !errors.Is(err, ErrClientClosed) {
		t.Errorf("after poison: err = %v, want ErrClientClosed", err)
	}
}

func TestReconnectingClientRetriesAcrossRedial(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("payload"))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// First connection drops the first response; later ones are clean.
	fl := faultnet.WrapListener(l, func(i int) *faultnet.Script {
		if i == 0 {
			return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Drop})
		}
		return nil
	})
	go NewServer(fs).Serve(fl)

	var states []State
	rc := NewReconnectingClient(l.Addr().String())
	rc.OpTimeout = 100 * time.Millisecond
	rc.BackoffBase = time.Millisecond
	rc.OnStateChange = func(s State, err error) { states = append(states, s) }
	defer rc.Close()

	data, err := rc.ReadFile("/d/f")
	if err != nil || string(data) != "payload" {
		t.Fatalf("data=%q err=%v", data, err)
	}
	if len(states) < 2 || states[len(states)-1] != StateConnected {
		t.Errorf("states = %v", states)
	}
	sawRetry := false
	for _, s := range states {
		if s == StateRetrying {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Errorf("no retrying transition: %v", states)
	}
}

func TestReconnectingClientDegrades(t *testing.T) {
	// A server that is simply gone: listener opened to learn a port,
	// then closed.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var final State
	var finalErr error
	rc := NewReconnectingClient(addr)
	rc.OpTimeout = 50 * time.Millisecond
	rc.BackoffBase = time.Millisecond
	rc.BackoffCap = 5 * time.Millisecond
	rc.MaxRetries = 2
	rc.OnStateChange = func(s State, err error) { final, finalErr = s, err }
	defer rc.Close()

	start := time.Now()
	_, err = rc.ReadFile("/d/f")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("degradation took %v", elapsed)
	}
	if final != StateDegraded || finalErr == nil {
		t.Errorf("final state %v err %v", final, finalErr)
	}
	// Permanent errors still come back typed once the server returns.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot re-listen on %s: %v", addr, err)
	}
	defer l2.Close()
	go NewServer(vfs.New()).Serve(l2)
	if _, err := rc.ReadFile("/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("recovered read err = %v, want ErrNotExist", err)
	}
	if rc.State() != StateConnected {
		t.Errorf("state after recovery = %v", rc.State())
	}
}

func TestReconnectingClientDoesNotRetryWrites(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// The first connection drops its first response: an idempotent read
	// would retry and succeed, a write must refuse to guess.
	fl := faultnet.WrapListener(l, func(i int) *faultnet.Script {
		if i == 0 {
			return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Drop})
		}
		return nil
	})
	srv := NewServer(fs)
	go srv.Serve(fl)

	rc := NewReconnectingClient(l.Addr().String())
	rc.OpTimeout = 100 * time.Millisecond
	rc.BackoffBase = time.Millisecond
	defer rc.Close()

	err = rc.AppendFile("/d/log", []byte("once"))
	if err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("ambiguous write err = %v", err)
	}
	if !strings.Contains(err.Error(), "outcome unknown") {
		t.Errorf("err = %v", err)
	}
	// The append was applied exactly once server-side (the response,
	// not the request, was dropped) — proving no blind retry happened.
	// Direct namespace access coordinates through the server's lock.
	srv.Locker().Lock()
	data, _ := fs.ReadFile("/d/log")
	srv.Locker().Unlock()
	if string(data) != "once" {
		t.Errorf("server saw %q, want %q (blind retry?)", data, "once")
	}
	// Permanent errors pass through without retry burning the budget.
	if err := rc.WriteFile("/no/dir/f", []byte("x")); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("write to missing dir: %v", err)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	a := NewReconnectingClient("x")
	a.BackoffBase = 10 * time.Millisecond
	a.BackoffCap = 80 * time.Millisecond
	a.Seed = 7
	b := NewReconnectingClient("x")
	b.BackoffBase = 10 * time.Millisecond
	b.BackoffCap = 80 * time.Millisecond
	b.Seed = 7
	for i := 1; i <= 10; i++ {
		da, db := a.backoff(i), b.backoff(i)
		if da != db {
			t.Fatalf("attempt %d: %v != %v", i, da, db)
		}
		if da > 80*time.Millisecond {
			t.Fatalf("attempt %d: %v exceeds cap", i, da)
		}
		if da < 5*time.Millisecond {
			t.Fatalf("attempt %d: %v below base/2", i, da)
		}
	}
}
