package srvnet

// Hand-rolled header codec. The wire format is unchanged — one JSON
// object per line — but the hot path neither reflects nor allocates:
// headers are emitted append-style into a reused scratch buffer and
// parsed by a small scanner that knows the scalar fields. Anything the
// fast path does not recognize (string escapes, nested values like
// readdir entries, unknown keys, numbers with exponents) falls back to
// encoding/json for the whole line, so handcrafted peers and future
// fields keep working; the fallback is correctness-complete and merely
// slower. Profiles before this codec showed encoding/json taking ~37%
// of the pipelined round trip — more than the syscalls.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// maxHeader bounds one header line, so a peer that never sends a
// newline cannot grow the accumulation buffer without limit.
const maxHeader = 1 << 20

var errHeaderTooLong = errors.New("srvnet: header line exceeds limit")

// readLine returns one newline-terminated header line. The returned
// slice usually aliases the bufio buffer and is only valid until the
// next read. Bytes followed by EOF instead of a newline are a
// truncated frame: io.ErrUnexpectedEOF, matching what a JSON decoder
// would report mid-value.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == nil {
		return line, nil
	}
	if err == bufio.ErrBufferFull {
		// Header longer than the bufio buffer (a glob reply with many
		// names, say): accumulate. Rare enough that the copy is fine.
		buf := append([]byte(nil), line...)
		for {
			line, err = br.ReadSlice('\n')
			buf = append(buf, line...)
			if len(buf) > maxHeader {
				return nil, errHeaderTooLong
			}
			if err == nil {
				return buf, nil
			}
			if err != bufio.ErrBufferFull {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return nil, err
			}
		}
	}
	if err == io.EOF && len(line) > 0 {
		return nil, io.ErrUnexpectedEOF
	}
	return nil, err
}

// ---- emit ----

// plainString reports whether s can be emitted between bare quotes:
// printable ASCII with nothing JSON makes us escape. Anything else
// (control bytes, quotes, backslashes, non-ASCII that might not be
// valid UTF-8) goes through encoding/json instead.
func plainString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

func appendString(dst []byte, s string) []byte {
	if plainString(s) {
		dst = append(dst, '"')
		dst = append(dst, s...)
		return append(dst, '"')
	}
	b, _ := json.Marshal(s) // marshaling a string cannot fail
	return append(dst, b...)
}

// encodeReq emits req's header line (sans payload) onto dst, matching
// the struct's JSON tags and omitempty behavior.
func encodeReq(dst []byte, req *request) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, req.Seq, 10)
	dst = append(dst, `,"op":`...)
	dst = appendString(dst, req.Op)
	if req.Path != "" {
		dst = append(dst, `,"path":`...)
		dst = appendString(dst, req.Path)
	}
	if req.Append {
		dst = append(dst, `,"append":true`...)
	}
	if req.Pattern != "" {
		dst = append(dst, `,"pattern":`...)
		dst = appendString(dst, req.Pattern)
	}
	if req.Offset != 0 {
		dst = append(dst, `,"off":`...)
		dst = strconv.AppendInt(dst, req.Offset, 10)
	}
	if req.Count != 0 {
		dst = append(dst, `,"count":`...)
		dst = strconv.AppendInt(dst, req.Count, 10)
	}
	if req.Wait != 0 {
		dst = append(dst, `,"wait":`...)
		dst = strconv.AppendInt(dst, req.Wait, 10)
	}
	if req.N != 0 {
		dst = append(dst, `,"n":`...)
		dst = strconv.AppendInt(dst, req.N, 10)
	}
	if req.Sum != 0 {
		dst = append(dst, `,"sum":`...)
		dst = strconv.AppendUint(dst, uint64(req.Sum), 10)
	}
	return append(dst, '}', '\n')
}

// encodeResp emits resp's header line onto dst. Replies carrying
// nested values (readdir entries, glob names, stat info) take the
// encoding/json path — they are off the hot loop.
func encodeResp(dst []byte, resp *response) ([]byte, error) {
	if resp.Entries != nil || resp.Names != nil || resp.Info != nil {
		b, err := json.Marshal(resp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, b...)
		return append(dst, '\n'), nil
	}
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, resp.Seq, 10)
	if resp.Err != "" {
		dst = append(dst, `,"err":`...)
		dst = appendString(dst, resp.Err)
	}
	if resp.Code != "" {
		dst = append(dst, `,"code":`...)
		dst = appendString(dst, resp.Code)
	}
	if resp.Gen != 0 {
		dst = append(dst, `,"gen":`...)
		dst = strconv.AppendUint(dst, resp.Gen, 10)
	}
	if resp.Retry != 0 {
		dst = append(dst, `,"retry":`...)
		dst = strconv.AppendInt(dst, resp.Retry, 10)
	}
	if resp.N != 0 {
		dst = append(dst, `,"n":`...)
		dst = strconv.AppendInt(dst, resp.N, 10)
	}
	if resp.Sum != 0 {
		dst = append(dst, `,"sum":`...)
		dst = strconv.AppendUint(dst, uint64(resp.Sum), 10)
	}
	return append(dst, '}', '\n'), nil
}

// ---- parse ----

// scanner walks one header line. Failure of any step means "not the
// simple shape the fast path handles", never "malformed": the caller
// re-parses the line with encoding/json, which is the arbiter of
// validity.
type scanner struct {
	b []byte
	i int
}

func (s *scanner) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\r', '\n':
			s.i++
		default:
			return
		}
	}
}

func (s *scanner) eat(c byte) bool {
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// str scans a quoted string containing no escapes and returns its
// contents (aliasing the line).
func (s *scanner) str() ([]byte, bool) {
	if !s.eat('"') {
		return nil, false
	}
	start := s.i
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case '"':
			v := s.b[start:s.i]
			s.i++
			return v, true
		case '\\':
			return nil, false
		}
		s.i++
	}
	return nil, false
}

// num scans an integer literal. A '.', 'e', or 'E' at its end means a
// float — fast path declines.
func (s *scanner) num() (neg bool, v uint64, ok bool) {
	neg = s.eat('-')
	start := s.i
	for s.i < len(s.b) {
		c := s.b[s.i]
		if c >= '0' && c <= '9' {
			v = v*10 + uint64(c-'0')
			s.i++
			continue
		}
		if c == '.' || c == 'e' || c == 'E' {
			return false, 0, false
		}
		break
	}
	n := s.i - start
	// 19 digits always fit in a uint64; 20 may wrap silently.
	if n == 0 || n > 19 {
		return false, 0, false
	}
	return neg, v, true
}

func (s *scanner) lit(word string) bool {
	if len(s.b)-s.i < len(word) || string(s.b[s.i:s.i+len(word)]) != word {
		return false
	}
	s.i += len(word)
	return true
}

// field scans one `"key": value` pair, returning the key and a tagged
// value. kind is 's' (string, in sval), 'n' (number, in neg/num),
// 'b' (bool, in neg as the value), or 0 for null.
func (s *scanner) field() (key, sval []byte, kind byte, neg bool, num uint64, ok bool) {
	key, ok = s.str()
	if !ok {
		return
	}
	s.ws()
	if ok = s.eat(':'); !ok {
		return
	}
	s.ws()
	if s.i >= len(s.b) {
		ok = false
		return
	}
	switch c := s.b[s.i]; {
	case c == '"':
		sval, ok = s.str()
		kind = 's'
	case c == '-' || (c >= '0' && c <= '9'):
		neg, num, ok = s.num()
		kind = 'n'
	case c == 't':
		ok = s.lit("true")
		kind, neg = 'b', true
	case c == 'f':
		ok = s.lit("false")
		kind, neg = 'b', false
	case c == 'n':
		ok = s.lit("null")
		kind = 0
	default:
		// '[' or '{': a nested value the fast path does not model.
		ok = false
	}
	return
}

// object drives field over a whole header line, calling set for each
// pair; set returns false for a key (or value shape) it cannot place,
// sending the line to the fallback.
func (s *scanner) object(set func(key, sval []byte, kind byte, neg bool, num uint64) bool) bool {
	s.ws()
	if !s.eat('{') {
		return false
	}
	s.ws()
	if s.eat('}') {
		s.ws()
		return s.i == len(s.b)
	}
	for {
		s.ws()
		key, sval, kind, neg, num, ok := s.field()
		if !ok || !set(key, sval, kind, neg, num) {
			return false
		}
		s.ws()
		if s.eat(',') {
			continue
		}
		if s.eat('}') {
			s.ws()
			return s.i == len(s.b)
		}
		return false
	}
}

// internOp returns the shared spelling of a known op, avoiding a
// per-request string allocation for the whole standard vocabulary.
func internOp(b []byte) string {
	switch string(b) {
	case "read":
		return "read"
	case "readat":
		return "readat"
	case "readwait":
		return "readwait"
	case "write":
		return "write"
	case "readdir":
		return "readdir"
	case "stat":
		return "stat"
	case "glob":
		return "glob"
	case "mkdir":
		return "mkdir"
	case "remove":
		return "remove"
	case "attach":
		return "attach"
	}
	return string(b)
}

// internCode is internOp for the response code vocabulary.
func internCode(b []byte) string {
	switch string(b) {
	case codeNotExist:
		return codeNotExist
	case codeExist:
		return codeExist
	case codeIsDir:
		return codeIsDir
	case codeNotDir:
		return codeNotDir
	case codePerm:
		return codePerm
	case codeBadMode:
		return codeBadMode
	case codeProto:
		return codeProto
	case codeBusy:
		return codeBusy
	case codeDraining:
		return codeDraining
	case codeNoSess:
		return codeNoSess
	}
	return string(b)
}

func toInt64(neg bool, num uint64) (int64, bool) {
	if num > 1<<63-1 {
		return 0, false
	}
	if neg {
		return -int64(num), true
	}
	return int64(num), true
}

// parseReq fills req from a header line, reporting whether the fast
// path handled it; on false the caller must json.Unmarshal the line.
func parseReq(line []byte, req *request) bool {
	s := scanner{b: line}
	return s.object(func(key, sval []byte, kind byte, neg bool, num uint64) bool {
		if kind == 0 {
			return true // null: leave the zero value
		}
		switch string(key) {
		case "seq":
			if kind != 'n' || neg {
				return false
			}
			req.Seq = num
		case "op":
			if kind != 's' {
				return false
			}
			req.Op = internOp(sval)
		case "path":
			if kind != 's' {
				return false
			}
			req.Path = string(sval)
		case "append":
			if kind != 'b' {
				return false
			}
			req.Append = neg
		case "pattern":
			if kind != 's' {
				return false
			}
			req.Pattern = string(sval)
		case "off":
			v, ok := toInt64(neg, num)
			if kind != 'n' || !ok {
				return false
			}
			req.Offset = v
		case "count":
			v, ok := toInt64(neg, num)
			if kind != 'n' || !ok {
				return false
			}
			req.Count = v
		case "wait":
			v, ok := toInt64(neg, num)
			if kind != 'n' || !ok {
				return false
			}
			req.Wait = v
		case "n":
			v, ok := toInt64(neg, num)
			if kind != 'n' || !ok {
				return false
			}
			req.N = v
		case "sum":
			if kind != 'n' || neg || num > 1<<32-1 {
				return false
			}
			req.Sum = uint32(num)
		default:
			return false
		}
		return true
	})
}

// parseResp is parseReq for replies. Nested fields (entries, names,
// info) never match the fast path and fall through to encoding/json.
func parseResp(line []byte, resp *response) bool {
	s := scanner{b: line}
	return s.object(func(key, sval []byte, kind byte, neg bool, num uint64) bool {
		if kind == 0 {
			return true
		}
		switch string(key) {
		case "seq":
			if kind != 'n' || neg {
				return false
			}
			resp.Seq = num
		case "err":
			if kind != 's' {
				return false
			}
			resp.Err = string(sval)
		case "code":
			if kind != 's' {
				return false
			}
			resp.Code = internCode(sval)
		case "gen":
			if kind != 'n' || neg {
				return false
			}
			resp.Gen = num
		case "retry":
			v, ok := toInt64(neg, num)
			if kind != 'n' || !ok {
				return false
			}
			resp.Retry = v
		case "n":
			v, ok := toInt64(neg, num)
			if kind != 'n' || !ok {
				return false
			}
			resp.N = v
		case "sum":
			if kind != 'n' || neg || num > 1<<32-1 {
				return false
			}
			resp.Sum = uint32(num)
		default:
			return false
		}
		return true
	})
}

// decodeReq parses one header line into req (reset first), taking the
// fast path when it fits and encoding/json when it does not.
func decodeReq(line []byte, req *request) error {
	*req = request{}
	if parseReq(line, req) {
		return nil
	}
	*req = request{}
	if err := json.Unmarshal(line, req); err != nil {
		return fmt.Errorf("srvnet: decode request: %w", err)
	}
	return nil
}

func decodeResp(line []byte, resp *response) error {
	*resp = response{}
	if parseResp(line, resp) {
		return nil
	}
	*resp = response{}
	if err := json.Unmarshal(line, resp); err != nil {
		return fmt.Errorf("srvnet: decode response: %w", err)
	}
	return nil
}
