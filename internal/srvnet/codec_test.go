package srvnet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// The hand-rolled codec must be indistinguishable from encoding/json
// on the wire: everything it emits must re-parse identically through
// both paths, and anything it cannot fast-parse must land in the
// fallback with the same result.

func TestCodecRequestRoundTrip(t *testing.T) {
	cases := []request{
		{Seq: 1, Op: "read", Path: "/a/b"},
		{Seq: 1<<63 + 7, Op: "readat", Path: "/big", Offset: 4096, Count: 65536},
		{Seq: 2, Op: "write", Path: "/w", N: 9, Sum: 0xdeadbeef},
		{Seq: 3, Op: "write", Path: "/w", Append: true},
		{Seq: 4, Op: "glob", Pattern: "/d/*"},
		{Seq: 5, Op: "attach", Path: "sess-1"},
		{Seq: 6, Op: "custom-op", Path: ""},
		{Seq: 7, Op: "read", Path: `/quote"and\slash`}, // forces escape fallback
		{Seq: 8, Op: "read", Path: "/utf8/héllo"},      // non-ASCII goes through json.Marshal
		{Seq: 9, Op: "readat", Path: "/x", Offset: -1},
		{Seq: 10, Op: "readwait", Path: "/mnt/help/log", Offset: 42, Wait: 30000},
	}
	for _, want := range cases {
		line := encodeReq(nil, &want)
		if line[len(line)-1] != '\n' {
			t.Fatalf("%+v: no trailing newline", want)
		}
		// The emitted header must be plain JSON to any decoder.
		var viaJSON request
		if err := json.Unmarshal(line, &viaJSON); err != nil {
			t.Fatalf("%+v: emitted header is not JSON: %v\n%s", want, err, line)
		}
		if !reflect.DeepEqual(viaJSON, want) {
			t.Fatalf("json path: got %+v want %+v", viaJSON, want)
		}
		// And the fast parser (or its fallback) must agree.
		var got request
		if err := decodeReq(line, &got); err != nil {
			t.Fatalf("%+v: decodeReq: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fast path: got %+v want %+v", got, want)
		}
	}
}

func TestCodecResponseRoundTrip(t *testing.T) {
	cases := []response{
		{Seq: 1},
		{Seq: 2, Gen: 41, N: 1024, Sum: 7},
		{Seq: 3, Err: "srvnet: no such file", Code: codeNotExist},
		{Seq: 4, Names: []string{"/a", "/b"}},
		{Seq: 5, Entries: []entry{{Name: "f", Size: 3, ModTime: 9, Gen: 2}}},
		{Seq: 6, Info: &entry{Name: "x", IsDir: true}},
		{Err: "busy", Code: codeBusy}, // Seq 0 refusal frame
	}
	for _, want := range cases {
		line, err := encodeResp(nil, &want)
		if err != nil {
			t.Fatalf("%+v: encodeResp: %v", want, err)
		}
		var viaJSON response
		if err := json.Unmarshal(line, &viaJSON); err != nil {
			t.Fatalf("%+v: emitted header is not JSON: %v\n%s", want, err, line)
		}
		if !reflect.DeepEqual(viaJSON, want) {
			t.Fatalf("json path: got %+v want %+v", viaJSON, want)
		}
		var got response
		if err := decodeResp(line, &got); err != nil {
			t.Fatalf("%+v: decodeResp: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fast path: got %+v want %+v", got, want)
		}
	}
}

// TestCodecForeignHeaders feeds handcrafted frames a non-Go peer might
// emit: reordered keys, extra whitespace, floats, escapes, unknown
// fields. All must decode exactly as encoding/json would.
func TestCodecForeignHeaders(t *testing.T) {
	lines := []string{
		`{"op":"read","seq":12,"path":"/z"}`,
		`{ "seq" : 3 , "op" : "stat" , "path" : "/s" }`,
		`{"seq":1,"op":"read","path":"/esc\"aped"}`,
		`{"seq":1,"op":"read","future-field":true,"path":"/f"}`,
		`{"seq":1,"op":"read","path":null}`,
		`{"seq":1.0,"op":"read"}`,
		`{}`,
	}
	for _, l := range lines {
		var want, got request
		wantErr := json.Unmarshal([]byte(l+"\n"), &want)
		gotErr := decodeReq([]byte(l+"\n"), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: json=%v codec=%v", l, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: got %+v want %+v", l, got, want)
		}
	}
}

func TestReadLine(t *testing.T) {
	// A header longer than the bufio buffer accumulates across reads.
	long := `{"pad":"` + strings.Repeat("x", 100) + `"}` + "\n"
	br := bufio.NewReaderSize(strings.NewReader(long), 16)
	line, err := readLine(br)
	if err != nil || string(line) != long {
		t.Fatalf("long line: err=%v len=%d want %d", err, len(line), len(long))
	}

	// Bytes followed by EOF instead of a newline are a truncated frame.
	br = bufio.NewReader(strings.NewReader(`{"seq":1`))
	if _, err := readLine(br); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated line: err=%v want ErrUnexpectedEOF", err)
	}

	// A newline-free flood is cut off at maxHeader, not buffered forever.
	flood := io.MultiReader(
		bytes.NewReader(bytes.Repeat([]byte("y"), maxHeader+2)),
		strings.NewReader("\n"),
	)
	br = bufio.NewReaderSize(flood, 64)
	if _, err := readLine(br); !errors.Is(err, errHeaderTooLong) {
		t.Fatalf("flood: err=%v want errHeaderTooLong", err)
	}
}
