// Package srvnet exports a vfs namespace over a network connection,
// simulating the multi-machine Plan 9 environment of the paper's
// Discussion: "help could run on the terminal and make an invisible call
// to the CPU server, sending requests to run applications to the remote
// shell-like process."
//
// The protocol is a minimal file service in the spirit of 9P, carried as
// newline-delimited JSON messages: each request names an operation and a
// path and carries a sequence number; each response echoes the sequence
// number and carries data, directory entries, or an error. One request
// is served at a time per server (a mutex serializes namespace access),
// which matches help's single-threaded discipline.
//
// The call is only "invisible" if the protocol survives a flaky network,
// so the transport is hardened end to end:
//
//   - the server bounds idle connections and response writes with
//     deadlines, tracks every connection in a registry, replies with an
//     explicit protocol error to malformed frames instead of silently
//     disconnecting, and drains in-flight requests on Shutdown;
//   - error replies carry a machine-readable code, so vfs sentinel
//     errors survive the wire and errors.Is works remotely;
//   - Client bounds each round trip with a deadline and verifies the
//     response sequence number;
//   - ReconnectingClient (reconnect.go) adds automatic redial with
//     capped, jittered exponential backoff for idempotent operations,
//     degrading to a typed ErrDegraded instead of hanging when the
//     remote side is gone.
//
// With a Server wrapped around the world's namespace, a Client on
// another machine can drive the entire user interface through
// /mnt/help — create windows, fill bodies, send control messages — with
// no code beyond file operations, exactly the paper's model.
package srvnet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// Typed protocol-level errors. Test with errors.Is.
var (
	// ErrProto marks a protocol violation: a malformed frame reported
	// by the peer, or an out-of-sequence response. The connection is
	// not usable afterward.
	ErrProto = errors.New("srvnet: protocol error")
	// ErrBusy is the reply to a connection the server cannot take on:
	// the registry is full.
	ErrBusy = errors.New("srvnet: server busy")
	// ErrDraining is the reply once Shutdown has begun: the server is
	// deliberately going away, so clients should degrade immediately
	// instead of treating the condition as transient and redialing.
	ErrDraining = errors.New("srvnet: server draining")
	// ErrNoSession is the reply to an operation on a multiplexing server
	// before the connection has attached to a session.
	ErrNoSession = errors.New("srvnet: no session attached")
	// ErrClientClosed is returned by operations on a closed Client.
	ErrClientClosed = errors.New("srvnet: client closed")
)

// Server tuning defaults.
const (
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultMaxConns     = 64
)

// request is one wire operation.
type request struct {
	Seq     uint64 `json:"seq"`
	Op      string `json:"op"`
	Path    string `json:"path,omitempty"`
	Data    []byte `json:"data,omitempty"`
	Append  bool   `json:"append,omitempty"`
	Pattern string `json:"pattern,omitempty"`
}

// entry mirrors vfs.Info on the wire.
type entry struct {
	Name    string `json:"name"`
	IsDir   bool   `json:"isDir"`
	Size    int64  `json:"size"`
	ModTime int64  `json:"modTime"`
}

// response is one wire reply. Seq echoes the request's sequence number;
// a response the server cannot attribute to a request (a malformed
// frame, a busy rejection) carries Seq 0 and a Code of "proto" or
// "busy".
type response struct {
	Seq     uint64   `json:"seq"`
	Err     string   `json:"err,omitempty"`
	Code    string   `json:"code,omitempty"`
	Data    []byte   `json:"data,omitempty"`
	Entries []entry  `json:"entries,omitempty"`
	Names   []string `json:"names,omitempty"`
	Info    *entry   `json:"info,omitempty"`
}

// Wire error codes, mapping vfs sentinels (and protocol conditions)
// across the connection so clients can classify failures with errors.Is.
const (
	codeNotExist = "not-exist"
	codeExist    = "exist"
	codeIsDir    = "is-dir"
	codeNotDir   = "not-dir"
	codePerm     = "perm"
	codeBadMode  = "bad-mode"
	codeProto    = "proto"
	codeBusy     = "busy"
	codeDraining = "draining"
	codeNoSess   = "no-session"
)

var codeToErr = map[string]error{
	codeNotExist: vfs.ErrNotExist,
	codeExist:    vfs.ErrExist,
	codeIsDir:    vfs.ErrIsDir,
	codeNotDir:   vfs.ErrNotDir,
	codePerm:     vfs.ErrPerm,
	codeBadMode:  vfs.ErrBadMode,
	codeProto:    ErrProto,
	codeBusy:     ErrBusy,
	codeDraining: ErrDraining,
	codeNoSess:   ErrNoSession,
}

// codeOf maps a server-side error to its wire code; "" if none applies.
func codeOf(err error) string {
	switch {
	case errors.Is(err, vfs.ErrNotExist):
		return codeNotExist
	case errors.Is(err, vfs.ErrExist):
		return codeExist
	case errors.Is(err, vfs.ErrIsDir):
		return codeIsDir
	case errors.Is(err, vfs.ErrNotDir):
		return codeNotDir
	case errors.Is(err, vfs.ErrPerm):
		return codePerm
	case errors.Is(err, vfs.ErrBadMode):
		return codeBadMode
	case errors.Is(err, ErrDraining):
		return codeDraining
	case errors.Is(err, ErrBusy):
		return codeBusy
	case errors.Is(err, ErrNoSession):
		return codeNoSess
	}
	return ""
}

// wireError reconstructs a remote error on the client: the message is
// the server's, Unwrap restores the sentinel named by the wire code.
type wireError struct {
	msg  string
	base error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.base }

// errFromWire turns an error reply into a client-side error that keeps
// both the remote message and, when the code is known, the sentinel.
func errFromWire(msg, code string) error {
	if base, ok := codeToErr[code]; ok {
		return &wireError{msg: msg, base: base}
	}
	return errors.New(msg)
}

// Hub resolves attach handshakes for a server that multiplexes many
// session namespaces over one listener (NewMuxServer). AttachSession
// returns the session's namespace and a detach function the server
// calls when the connection leaves the session (re-attach or close).
// The returned namespace must be safe for concurrent use on its own —
// the server does not serialize across sessions in mux mode — which a
// core.Help SafeFS already is.
type Hub interface {
	AttachSession(name string) (fs *vfs.FS, detach func(), err error)
}

// Server exports one namespace, or — with a Hub — one namespace per
// attached session. The zero-value timeouts and limits are replaced by
// the Default* constants; set the fields before Serve to override them.
type Server struct {
	fs  *vfs.FS
	hub Hub
	mu  sync.Mutex

	// IdleTimeout bounds how long a connection may sit between
	// requests before the server closes it.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write.
	WriteTimeout time.Duration
	// MaxConns bounds concurrently served connections; connections
	// beyond it receive an ErrBusy reply and are closed.
	MaxConns int

	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	wg        sync.WaitGroup
	draining  bool
}

// NewServer wraps fs for serving. The mutex serializes all requests, so
// the namespace needs no locking of its own; anything else touching the
// same namespace concurrently must coordinate through Locker.
func NewServer(fs *vfs.FS) *Server {
	return &Server{
		fs:        fs,
		conns:     map[net.Conn]struct{}{},
		listeners: map[net.Listener]struct{}{},
	}
}

// NewMuxServer wraps a session hub for serving. Connections carry no
// namespace until they send an "attach" naming a session; the hub's
// namespaces serialize themselves, so requests on different sessions
// proceed in parallel.
func NewMuxServer(hub Hub) *Server {
	s := NewServer(nil)
	s.hub = hub
	return s
}

// Locker exposes the serialization lock so a host embedding the server
// (help's event loop) can take the same lock around its own namespace
// access.
func (s *Server) Locker() sync.Locker { return &s.mu }

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return DefaultIdleTimeout
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return DefaultWriteTimeout
}

func (s *Server) maxConns() int {
	if s.MaxConns > 0 {
		return s.MaxConns
	}
	return DefaultMaxConns
}

// register adds conn to the registry and reserves a goroutine slot. It
// reports false when the server is draining or full.
func (s *Server) register(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining || len(s.conns) >= s.maxConns() {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

// unregister removes conn, closes it, and releases its slot.
func (s *Server) unregister(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	conn.Close()
	s.wg.Done()
}

// closeConns force-closes every live connection.
func (s *Server) closeConns() {
	s.connMu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// ConnCount reports the number of live registered connections.
func (s *Server) ConnCount() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.draining
}

// Serve accepts connections until the listener closes. When it does,
// Serve closes every connection it accepted and waits for their
// goroutines to finish before returning, so no goroutine outlives the
// listener.
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.draining {
		s.connMu.Unlock()
		return ErrBusy
	}
	s.listeners[l] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.listeners, l)
		s.connMu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			// A listener closed out from under us takes its connections
			// with it — but when Shutdown closed it, the drain owns the
			// connections: they are being nudged so each can hear a typed
			// draining reply before closing, and force-closing here would
			// race that reply away.
			if !s.isDraining() {
				s.closeConns()
			}
			s.wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn handles one connection until EOF, idle timeout, protocol
// error, or server shutdown. A connection the server cannot take on
// receives one typed refusal — busy when the registry is full, draining
// when Shutdown has begun — and is closed.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.register(conn) {
		refusal := response{Err: ErrBusy.Error(), Code: codeBusy}
		if s.isDraining() {
			refusal = response{Err: ErrDraining.Error(), Code: codeDraining}
		}
		enc := json.NewEncoder(conn)
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		enc.Encode(refusal)
		conn.Close()
		return
	}
	defer s.unregister(conn)
	// In mux mode the connection's namespace is chosen by its attach
	// handshake; detach runs when the connection leaves the session.
	fs := s.fs
	var detach func()
	defer func() {
		if detach != nil {
			detach()
		}
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(s.idleTimeout()))
		var req request
		if err := dec.Decode(&req); err != nil {
			// EOF, a closed or timed-out connection: nothing to say —
			// unless the server is draining, in which case the timeout is
			// Shutdown's nudge and the client deserves to hear why its
			// connection is going away instead of a silent hangup.
			var ne net.Error
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, net.ErrClosed) || (errors.As(err, &ne) && ne.Timeout()) {
				if s.isDraining() {
					s.reply(conn, enc, response{Err: ErrDraining.Error(), Code: codeDraining})
				}
				return
			}
			// A malformed frame deserves an explicit reply before the
			// connection closes: the JSON stream cannot be resynced, but
			// the client learns why instead of seeing a silent hangup.
			s.reply(conn, enc, response{
				Err:  fmt.Sprintf("srvnet: malformed request: %v", err),
				Code: codeProto,
			})
			return
		}
		if s.isDraining() {
			// A request decoded after Shutdown began gets the typed
			// refusal so the client degrades instead of redialing.
			s.reply(conn, enc, response{Seq: req.Seq, Err: ErrDraining.Error(), Code: codeDraining})
			return
		}
		if req.Op == "attach" {
			resp := response{Seq: req.Seq}
			if s.hub == nil {
				resp.Err = "srvnet: server does not multiplex sessions"
				resp.Code = codeProto
			} else if nfs, ndetach, err := s.hub.AttachSession(req.Path); err != nil {
				resp.Err, resp.Code = err.Error(), codeOf(err)
			} else {
				if detach != nil {
					detach()
				}
				fs, detach = nfs, ndetach
			}
			if err := s.reply(conn, enc, resp); err != nil {
				return
			}
			continue
		}
		resp := s.handle(req, fs)
		resp.Seq = req.Seq
		if err := s.reply(conn, enc, resp); err != nil {
			return
		}
	}
}

// reply writes one response under the write deadline.
func (s *Server) reply(conn net.Conn, enc *json.Encoder, r response) error {
	conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
	return enc.Encode(r)
}

// Shutdown gracefully stops the server: it closes the listeners handed
// to Serve, stops accepting new connections, lets requests already in
// flight complete, and then closes their connections. If ctx expires
// first, remaining connections are force-closed and ctx's error is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.connMu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	// Nudge idle connections: an immediate read deadline makes their
	// blocked Decode return, while a request currently being handled
	// still gets its response written before the loop exits.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close without waiting: a handler blocked on the host's
		// namespace lock (Locker) must not deadlock Shutdown; it exits
		// when its next conn operation fails.
		s.closeConns()
		return ctx.Err()
	}
}

// handle performs one operation on fs. In single-namespace mode the
// server's mutex serializes all requests; in mux mode the per-session
// namespaces serialize themselves, so requests on different sessions
// proceed in parallel.
func (s *Server) handle(req request, fs *vfs.FS) response {
	if s.hub == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if fs == nil {
		return response{Err: ErrNoSession.Error(), Code: codeNoSess}
	}
	fail := func(err error) response { return response{Err: err.Error(), Code: codeOf(err)} }
	switch req.Op {
	case "read":
		data, err := fs.ReadFile(req.Path)
		if err != nil {
			return fail(err)
		}
		return response{Data: data}
	case "write":
		var err error
		if req.Append {
			err = fs.AppendFile(req.Path, req.Data)
		} else {
			err = fs.WriteFile(req.Path, req.Data)
		}
		if err != nil {
			return fail(err)
		}
		return response{}
	case "readdir":
		ents, err := fs.ReadDir(req.Path)
		if err != nil {
			return fail(err)
		}
		out := make([]entry, len(ents))
		for i, e := range ents {
			out[i] = entry{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime}
		}
		return response{Entries: out}
	case "stat":
		info, err := fs.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		return response{Info: &entry{Name: info.Name, IsDir: info.IsDir, Size: info.Size, ModTime: info.ModTime}}
	case "glob":
		return response{Names: fs.Glob(req.Pattern)}
	case "mkdir":
		if err := fs.MkdirAll(req.Path); err != nil {
			return fail(err)
		}
		return response{}
	case "remove":
		if err := fs.Remove(req.Path); err != nil {
			return fail(err)
		}
		return response{}
	}
	return response{Err: fmt.Sprintf("srvnet: unknown op %q", req.Op), Code: codeProto}
}

// Client is a remote namespace handle over one connection. Methods are
// safe for concurrent use; the mutex serializes round trips, and Close
// during a round trip waits for it to finish (the per-op Timeout bounds
// the wait).
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
	seq    uint64
	closed bool

	// Timeout bounds each round trip (write plus read). Zero means no
	// deadline — a dead server then hangs the call, so remote users
	// should set it (Dial does; ReconnectingClient always does).
	Timeout time.Duration

	// Obs, when set before first use, records a per-op round-trip
	// latency histogram (srvnet.read, srvnet.write, ...) in the
	// registry. ReconnectingClient propagates its own.
	Obs *obs.Registry
}

// Dial connects to a Server at addr with the default round-trip timeout.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.Timeout = DefaultWriteTimeout
	return c, nil
}

// NewClient wraps an established connection. No round-trip timeout is
// set; callers owning exotic transports set Timeout themselves.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}
}

// Close closes the connection. It takes the client mutex, so a Close
// racing an in-flight round trip waits for the round trip to finish
// rather than interleaving on the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// rpc performs one round trip: encode the request, decode the response,
// verify the echoed sequence number. A protocol-level failure (decode
// error, out-of-sequence or unattributable reply) poisons the
// connection: it is closed and further calls return ErrClientClosed.
func (c *Client) rpc(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return response{}, ErrClientClosed
	}
	if c.Obs != nil {
		// Failed round trips are observed too: a latency histogram that
		// hides the slow failures would understate what remote users pay.
		defer func(t0 time.Time, op string) {
			c.Obs.Histogram("srvnet." + op).Observe(time.Since(t0))
		}(time.Now(), req.Op)
	}
	c.seq++
	req.Seq = c.seq
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	if err := c.enc.Encode(req); err != nil {
		c.poison()
		return response{}, fmt.Errorf("srvnet: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.poison()
		return response{}, fmt.Errorf("srvnet: receive: %w", err)
	}
	if resp.Seq != req.Seq {
		// A Seq-0 error reply is the server refusing the frame itself
		// (malformed, busy): surface its message. Anything else is an
		// out-of-sequence response. Both end the connection.
		c.poison()
		if resp.Seq == 0 && resp.Err != "" {
			return response{}, errFromWire(resp.Err, resp.Code)
		}
		return response{}, fmt.Errorf("%w: response out of sequence (got %d, want %d)",
			ErrProto, resp.Seq, req.Seq)
	}
	if resp.Err != "" {
		return resp, errFromWire(resp.Err, resp.Code)
	}
	return resp, nil
}

// poison closes the connection after a transport-level failure. Caller
// holds c.mu.
func (c *Client) poison() {
	if !c.closed {
		c.closed = true
		c.conn.Close()
	}
}

// Attach selects the session this connection's subsequent operations
// apply to, on a server that multiplexes sessions (NewMuxServer). The
// server spawns the session on first attach; re-attaching switches the
// connection to another session.
func (c *Client) Attach(session string) error {
	_, err := c.rpc(request{Op: "attach", Path: session})
	return err
}

// ReadFile reads a remote file.
func (c *Client) ReadFile(path string) ([]byte, error) {
	resp, err := c.rpc(request{Op: "read", Path: path})
	return resp.Data, err
}

// WriteFile writes (replacing) a remote file.
func (c *Client) WriteFile(path string, data []byte) error {
	_, err := c.rpc(request{Op: "write", Path: path, Data: data})
	return err
}

// AppendFile appends to a remote file.
func (c *Client) AppendFile(path string, data []byte) error {
	_, err := c.rpc(request{Op: "write", Path: path, Data: data, Append: true})
	return err
}

// ReadDir lists a remote directory.
func (c *Client) ReadDir(path string) ([]vfs.Info, error) {
	resp, err := c.rpc(request{Op: "readdir", Path: path})
	if err != nil {
		return nil, err
	}
	out := make([]vfs.Info, len(resp.Entries))
	for i, e := range resp.Entries {
		out[i] = vfs.Info{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime}
	}
	return out, nil
}

// Stat describes a remote file.
func (c *Client) Stat(path string) (vfs.Info, error) {
	resp, err := c.rpc(request{Op: "stat", Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	return vfs.Info{Name: resp.Info.Name, IsDir: resp.Info.IsDir, Size: resp.Info.Size, ModTime: resp.Info.ModTime}, nil
}

// Glob expands a pattern remotely.
func (c *Client) Glob(pattern string) ([]string, error) {
	resp, err := c.rpc(request{Op: "glob", Pattern: pattern})
	return resp.Names, err
}

// MkdirAll creates a remote directory tree.
func (c *Client) MkdirAll(path string) error {
	_, err := c.rpc(request{Op: "mkdir", Path: path})
	return err
}

// Remove deletes a remote file or empty directory.
func (c *Client) Remove(path string) error {
	_, err := c.rpc(request{Op: "remove", Path: path})
	return err
}
