// Package srvnet exports a vfs namespace over a network connection,
// simulating the multi-machine Plan 9 environment of the paper's
// Discussion: "help could run on the terminal and make an invisible call
// to the CPU server, sending requests to run applications to the remote
// shell-like process."
//
// The protocol is a minimal file service in the spirit of 9P, carried as
// newline-delimited JSON messages: each request names an operation and a
// path; each response carries data, directory entries, or an error. One
// request is served at a time per server (a mutex serializes namespace
// access), which matches help's single-threaded discipline.
//
// With a Server wrapped around the world's namespace, a Client on
// another machine can drive the entire user interface through
// /mnt/help — create windows, fill bodies, send control messages — with
// no code beyond file operations, exactly the paper's model.
package srvnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/vfs"
)

// request is one wire operation.
type request struct {
	Op      string `json:"op"`
	Path    string `json:"path,omitempty"`
	Data    []byte `json:"data,omitempty"`
	Append  bool   `json:"append,omitempty"`
	Pattern string `json:"pattern,omitempty"`
}

// entry mirrors vfs.Info on the wire.
type entry struct {
	Name    string `json:"name"`
	IsDir   bool   `json:"isDir"`
	Size    int64  `json:"size"`
	ModTime int64  `json:"modTime"`
}

// response is one wire reply.
type response struct {
	Err     string   `json:"err,omitempty"`
	Data    []byte   `json:"data,omitempty"`
	Entries []entry  `json:"entries,omitempty"`
	Names   []string `json:"names,omitempty"`
	Info    *entry   `json:"info,omitempty"`
}

// Server exports one namespace.
type Server struct {
	fs *vfs.FS
	mu sync.Mutex
}

// NewServer wraps fs for serving. The mutex serializes all requests, so
// the namespace needs no locking of its own; anything else touching the
// same namespace concurrently must coordinate through Locker.
func NewServer(fs *vfs.FS) *Server {
	return &Server{fs: fs}
}

// Locker exposes the serialization lock so a host embedding the server
// (help's event loop) can take the same lock around its own namespace
// access.
func (s *Server) Locker() sync.Locker { return &s.mu }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn handles one connection until EOF.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle performs one operation under the lock.
func (s *Server) handle(req request) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	fail := func(err error) response { return response{Err: err.Error()} }
	switch req.Op {
	case "read":
		data, err := s.fs.ReadFile(req.Path)
		if err != nil {
			return fail(err)
		}
		return response{Data: data}
	case "write":
		var err error
		if req.Append {
			err = s.fs.AppendFile(req.Path, req.Data)
		} else {
			err = s.fs.WriteFile(req.Path, req.Data)
		}
		if err != nil {
			return fail(err)
		}
		return response{}
	case "readdir":
		ents, err := s.fs.ReadDir(req.Path)
		if err != nil {
			return fail(err)
		}
		out := make([]entry, len(ents))
		for i, e := range ents {
			out[i] = entry{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime}
		}
		return response{Entries: out}
	case "stat":
		info, err := s.fs.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		return response{Info: &entry{Name: info.Name, IsDir: info.IsDir, Size: info.Size, ModTime: info.ModTime}}
	case "glob":
		return response{Names: s.fs.Glob(req.Pattern)}
	case "mkdir":
		if err := s.fs.MkdirAll(req.Path); err != nil {
			return fail(err)
		}
		return response{}
	case "remove":
		if err := s.fs.Remove(req.Path); err != nil {
			return fail(err)
		}
		return response{}
	}
	return response{Err: fmt.Sprintf("srvnet: unknown op %q", req.Op)}
}

// Client is a remote namespace handle. It is safe for one goroutine; the
// underlying connection carries one request at a time.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	mu   sync.Mutex
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// rpc performs one round trip.
func (c *Client) rpc(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return response{}, err
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, err
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// ReadFile reads a remote file.
func (c *Client) ReadFile(path string) ([]byte, error) {
	resp, err := c.rpc(request{Op: "read", Path: path})
	return resp.Data, err
}

// WriteFile writes (replacing) a remote file.
func (c *Client) WriteFile(path string, data []byte) error {
	_, err := c.rpc(request{Op: "write", Path: path, Data: data})
	return err
}

// AppendFile appends to a remote file.
func (c *Client) AppendFile(path string, data []byte) error {
	_, err := c.rpc(request{Op: "write", Path: path, Data: data, Append: true})
	return err
}

// ReadDir lists a remote directory.
func (c *Client) ReadDir(path string) ([]vfs.Info, error) {
	resp, err := c.rpc(request{Op: "readdir", Path: path})
	if err != nil {
		return nil, err
	}
	out := make([]vfs.Info, len(resp.Entries))
	for i, e := range resp.Entries {
		out[i] = vfs.Info{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime}
	}
	return out, nil
}

// Stat describes a remote file.
func (c *Client) Stat(path string) (vfs.Info, error) {
	resp, err := c.rpc(request{Op: "stat", Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	return vfs.Info{Name: resp.Info.Name, IsDir: resp.Info.IsDir, Size: resp.Info.Size, ModTime: resp.Info.ModTime}, nil
}

// Glob expands a pattern remotely.
func (c *Client) Glob(pattern string) ([]string, error) {
	resp, err := c.rpc(request{Op: "glob", Pattern: pattern})
	return resp.Names, err
}

// MkdirAll creates a remote directory tree.
func (c *Client) MkdirAll(path string) error {
	_, err := c.rpc(request{Op: "mkdir", Path: path})
	return err
}

// Remove deletes a remote file or empty directory.
func (c *Client) Remove(path string) error {
	_, err := c.rpc(request{Op: "remove", Path: path})
	return err
}
