// Package srvnet exports a vfs namespace over a network connection,
// simulating the multi-machine Plan 9 environment of the paper's
// Discussion: "help could run on the terminal and make an invisible call
// to the CPU server, sending requests to run applications to the remote
// shell-like process."
//
// The protocol is a minimal file service in the spirit of 9P. Each
// frame is one newline-terminated JSON header line — the request's
// operation, path, and sequence number, or the response echoing that
// sequence number with directory entries or an error — followed, when
// the header's "n" field is nonzero, by n raw payload bytes whose
// CRC-32 rides in "sum". Keeping file contents out of the JSON spares
// the hot path both the base64 expansion and the byte-at-a-time string
// scan, while header-only control frames stay plain one-line JSON that
// any peer can speak; headers themselves go through a reflection-free
// codec (codec.go) that emits and scans the same JSON by hand. The call
// is only "invisible" if the wire path keeps up with the user
// interface, so the transport is built for throughput as well as fault
// tolerance:
//
//   - Requests are pipelined. The Client splits into a writer (callers
//     encode under a write mutex) and one dedicated reader goroutine
//     that matches replies to callers by sequence number, so any number
//     of requests can be in flight on one connection at once and replies
//     may arrive out of order. The Batch API queues several operations
//     and pushes them onto the wire in a single buffered write.
//   - The server decouples reading from execution: a per-connection
//     reader goroutine queues decoded requests (up to pipelineDepth)
//     while the executor runs earlier ones, and replies are coalesced
//     into batched flushes — the write buffer is only pushed to the
//     socket when the request queue momentarily drains.
//   - Every reply that names a target file piggybacks the file's edit
//     generation (vfs.Info.Gen, fed by text.Buffer.Gen for help
//     windows). A client-side cache keyed on those generations turns a
//     re-read of an unchanged file into a pure cache hit with zero wire
//     traffic; see Client.SetCache for the coherence rules.
//   - Sequential chunked reads ("readat") are served from a
//     per-connection readahead slot: the first chunk snapshots the whole
//     body once, later chunks slice it while the generation holds.
//
// The transport is hardened end to end: the server bounds idle
// connections and response writes with deadlines, tracks every
// connection in a registry, replies with an explicit protocol error to
// malformed frames, and drains in-flight requests on Shutdown; error
// replies carry a machine-readable code so vfs sentinel errors survive
// the wire and errors.Is works remotely; the Client bounds each round
// trip with a deadline (a sane default applies when none is set) and a
// Close during an in-flight call closes the connection out of band so
// nothing waits behind a hung peer; ReconnectingClient (reconnect.go)
// adds automatic redial with capped, jittered exponential backoff for
// idempotent operations, degrading to a typed ErrDegraded instead of
// hanging when the remote side is gone.
//
// With a Server wrapped around the world's namespace, a Client on
// another machine can drive the entire user interface through
// /mnt/help — create windows, fill bodies, send control messages — with
// no code beyond file operations, exactly the paper's model.
package srvnet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Typed protocol-level errors. Test with errors.Is.
var (
	// ErrProto marks a protocol violation: a malformed frame reported
	// by the peer, or an out-of-sequence response. The connection is
	// not usable afterward.
	ErrProto = errors.New("srvnet: protocol error")
	// ErrBusy is a transient server refusal: the connection registry,
	// the waiter budget, or a daemon resource budget is full. It wraps
	// vfs.ErrBusy so a refusal classifies the same on both sides of the
	// wire, and the reply may carry a retry-after hint (RetryAfter).
	ErrBusy = fmt.Errorf("srvnet: server busy: %w", vfs.ErrBusy)
	// ErrDraining is the reply once Shutdown has begun: the server is
	// deliberately going away, so clients should degrade immediately
	// instead of treating the condition as transient and redialing.
	ErrDraining = errors.New("srvnet: server draining")
	// ErrNoSession is the reply to an operation on a multiplexing server
	// before the connection has attached to a session.
	ErrNoSession = errors.New("srvnet: no session attached")
	// ErrClientClosed is returned by operations on a closed Client.
	ErrClientClosed = errors.New("srvnet: client closed")
)

// Server tuning defaults.
const (
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultMaxConns     = 64
	// DefaultRoundTrip bounds a Client round trip when the Timeout field
	// is left zero, so a dead peer fails the call instead of hanging it
	// forever.
	DefaultRoundTrip = 30 * time.Second
	// pipelineDepth is how many decoded requests may queue behind the
	// executor on one server connection before the reader blocks.
	pipelineDepth = 64
	// maxReadWait caps one readwait long poll server-side; together with
	// the idleTimeout/2 bound it keeps a parked subscriber's silence well
	// under the idle deadline, so the poll itself cannot look like a dead
	// peer.
	maxReadWait = 30 * time.Second
	// maxConnWaiters bounds parked readwait goroutines per connection; a
	// readwait beyond the cap is answered as an immediate poll instead of
	// parking, so a flooding client degrades to polling rather than
	// growing goroutines.
	maxConnWaiters = 16
	// DefaultMaxWaiters bounds parked readwait goroutines server-wide:
	// many clients each under their per-conn cap can still add up to
	// thousands of parked goroutines, so the server holds a global
	// budget too. Overflow degrades to an immediate poll, same as the
	// per-conn cap.
	DefaultMaxWaiters = 1024
	// DefaultRetryAfter is the retry-after hint a busy refusal carries
	// when the refusing budget did not name its own.
	DefaultRetryAfter = 250 * time.Millisecond
	// pushInvalFailureLimit bounds the consecutive readwait refusals the
	// push-invalidation watcher (StartPushInval) tolerates on a healthy
	// connection before concluding the feed is gone for good and
	// disabling the cache; retries back off exponentially from
	// pushInvalBackoff.
	pushInvalFailureLimit = 4
	pushInvalBackoff      = 25 * time.Millisecond
	// defaultReadChunk is the "readat" chunk size when the request
	// leaves Count zero.
	defaultReadChunk = 64 * 1024
	// wireBufSize sizes the bufio layers on both ends. Batched replies
	// only amortize syscalls if the writer can hold a pipeline window's
	// worth of frames before spilling; the stock 4 KiB buffer forces a
	// write every few 1 KiB payloads.
	wireBufSize = 64 * 1024
)

// request is one wire operation. Data rides outside the JSON header as
// a raw sidecar (see the framing helpers): N carries its length and Sum
// its checksum.
type request struct {
	Seq     uint64 `json:"seq"`
	Op      string `json:"op"`
	Path    string `json:"path,omitempty"`
	Data    []byte `json:"-"`
	Append  bool   `json:"append,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	// Offset and Count address a "readat" chunk. "readwait" reuses
	// Offset as the resume sequence number (the last event seq the
	// subscriber has seen).
	Offset int64 `json:"off,omitempty"`
	Count  int64 `json:"count,omitempty"`
	// Wait is a "readwait" long-poll bound in milliseconds; <= 0 asks
	// for the server's maximum.
	Wait int64 `json:"wait,omitempty"`
	// N and Sum frame the payload sidecar.
	N   int64  `json:"n,omitempty"`
	Sum uint32 `json:"sum,omitempty"`
}

// entry mirrors vfs.Info on the wire.
type entry struct {
	Name    string `json:"name"`
	IsDir   bool   `json:"isDir"`
	Size    int64  `json:"size"`
	ModTime int64  `json:"modTime"`
	Gen     uint64 `json:"gen,omitempty"`
}

// response is one wire reply. Seq echoes the request's sequence number;
// a response the server cannot attribute to a request (a malformed
// frame, a busy rejection) carries Seq 0 and a Code of "proto" or
// "busy". Gen, when nonzero, is the edit generation of the request's
// target file observed while serving it — the client cache keys on it.
type response struct {
	Seq     uint64   `json:"seq"`
	Err     string   `json:"err,omitempty"`
	Code    string   `json:"code,omitempty"`
	Data    []byte   `json:"-"`
	Entries []entry  `json:"entries,omitempty"`
	Names   []string `json:"names,omitempty"`
	Info    *entry   `json:"info,omitempty"`
	Gen     uint64   `json:"gen,omitempty"`
	// Retry, on a busy refusal, is the server's retry-after hint in
	// milliseconds: how long the refused client should wait (jittered)
	// before trying again.
	Retry int64 `json:"retry,omitempty"`
	// N and Sum frame the payload sidecar.
	N   int64  `json:"n,omitempty"`
	Sum uint32 `json:"sum,omitempty"`
}

// Framing: each message is one JSON header line followed, when N > 0,
// by N raw payload bytes. Keeping file contents out of the JSON saves
// both the base64 expansion and the byte-at-a-time string scan on the
// hot path — a read's payload costs a copy, not a parse — while the
// header stays line-delimited JSON, so control frames (refusals, error
// replies) remain plain one-line JSON messages. Sum is a CRC over the
// payload: raw bytes have no syntax to break, so without it a fault
// that flips a payload byte would deliver silently corrupted data.

// maxPayload bounds a sidecar read, so a corrupted header cannot ask
// the receiver to allocate gigabytes.
const maxPayload = 1 << 28

var errSum = errors.New("srvnet: payload checksum mismatch")

// frameReq emits req's header line and payload sidecar into bw. hdr is
// a reused scratch buffer for the header bytes; the (possibly regrown)
// buffer is returned for the caller to keep.
func frameReq(bw *bufio.Writer, hdr []byte, req *request) ([]byte, error) {
	req.N = int64(len(req.Data))
	req.Sum = 0
	if req.N > 0 {
		req.Sum = crc32.ChecksumIEEE(req.Data)
	}
	hdr = encodeReq(hdr[:0], req)
	if _, err := bw.Write(hdr); err != nil {
		return hdr, err
	}
	if req.N > 0 {
		if _, err := bw.Write(req.Data); err != nil {
			return hdr, err
		}
	}
	return hdr, nil
}

func frameResp(bw *bufio.Writer, hdr []byte, resp *response) ([]byte, error) {
	resp.N = int64(len(resp.Data))
	resp.Sum = 0
	if resp.N > 0 {
		resp.Sum = crc32.ChecksumIEEE(resp.Data)
	}
	hdr, err := encodeResp(hdr[:0], resp)
	if err != nil {
		return hdr, err
	}
	if _, err := bw.Write(hdr); err != nil {
		return hdr, err
	}
	if resp.N > 0 {
		if _, err := bw.Write(resp.Data); err != nil {
			return hdr, err
		}
	}
	return hdr, nil
}

// readPayload collects an N-byte sidecar and verifies its checksum.
func readPayload(br *bufio.Reader, n int64, sum uint32) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	if n > maxPayload {
		return nil, fmt.Errorf("srvnet: payload length %d exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(data) != sum {
		return nil, errSum
	}
	return data, nil
}

// readReq decodes one request frame: header line through the fast
// codec (codec.go), payload straight off the bufio.Reader. req is
// reset so a field absent from this header cannot inherit the previous
// frame's value.
func readReq(br *bufio.Reader, req *request) error {
	line, err := readLine(br)
	if err != nil {
		return err
	}
	if err := decodeReq(line, req); err != nil {
		return err
	}
	req.Data, err = readPayload(br, req.N, req.Sum)
	return err
}

func readResp(br *bufio.Reader, resp *response) error {
	line, err := readLine(br)
	if err != nil {
		return err
	}
	if err := decodeResp(line, resp); err != nil {
		return err
	}
	resp.Data, err = readPayload(br, resp.N, resp.Sum)
	return err
}

// Wire error codes, mapping vfs sentinels (and protocol conditions)
// across the connection so clients can classify failures with errors.Is.
const (
	codeNotExist = "not-exist"
	codeExist    = "exist"
	codeIsDir    = "is-dir"
	codeNotDir   = "not-dir"
	codePerm     = "perm"
	codeBadMode  = "bad-mode"
	codeProto    = "proto"
	codeBusy     = "busy"
	codeDraining = "draining"
	codeNoSess   = "no-session"
)

var codeToErr = map[string]error{
	codeNotExist: vfs.ErrNotExist,
	codeExist:    vfs.ErrExist,
	codeIsDir:    vfs.ErrIsDir,
	codeNotDir:   vfs.ErrNotDir,
	codePerm:     vfs.ErrPerm,
	codeBadMode:  vfs.ErrBadMode,
	codeProto:    ErrProto,
	codeBusy:     ErrBusy,
	codeDraining: ErrDraining,
	codeNoSess:   ErrNoSession,
}

// codeOf maps a server-side error to its wire code; "" if none applies.
func codeOf(err error) string {
	switch {
	case errors.Is(err, vfs.ErrNotExist):
		return codeNotExist
	case errors.Is(err, vfs.ErrExist):
		return codeExist
	case errors.Is(err, vfs.ErrIsDir):
		return codeIsDir
	case errors.Is(err, vfs.ErrNotDir):
		return codeNotDir
	case errors.Is(err, vfs.ErrPerm):
		return codePerm
	case errors.Is(err, vfs.ErrBadMode):
		return codeBadMode
	case errors.Is(err, ErrDraining):
		return codeDraining
	case errors.Is(err, vfs.ErrBusy):
		// ErrBusy wraps vfs.ErrBusy, so this covers both the wire
		// sentinel and typed budget refusals (vfs.BusyError).
		return codeBusy
	case errors.Is(err, ErrNoSession):
		return codeNoSess
	}
	return ""
}

// wireError reconstructs a remote error on the client: the message is
// the server's, Unwrap restores the sentinel named by the wire code,
// and retry keeps a busy reply's retry-after hint.
type wireError struct {
	msg   string
	base  error
	retry time.Duration
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.base }

// RetryAfter reports the server's retry-after hint (0: none), so
// vfs.RetryAfter works on remote refusals.
func (e *wireError) RetryAfter() time.Duration { return e.retry }

// errFromWire turns an error reply into a client-side error that keeps
// the remote message, the sentinel named by the wire code, and — on a
// busy refusal — the retry-after hint (retryMS, milliseconds).
func errFromWire(msg, code string, retryMS int64) error {
	if base, ok := codeToErr[code]; ok {
		return &wireError{msg: msg, base: base, retry: time.Duration(retryMS) * time.Millisecond}
	}
	return errors.New(msg)
}

// Hub resolves attach handshakes for a server that multiplexes many
// session namespaces over one listener (NewMuxServer). AttachSession
// returns the session's namespace and a detach function the server
// calls when the connection leaves the session (re-attach or close).
// The returned namespace must be safe for concurrent use on its own —
// the server does not serialize across sessions in mux mode — which a
// core.Help SafeFS already is.
type Hub interface {
	AttachSession(name string) (fs *vfs.FS, detach func(), err error)
}

// Server exports one namespace, or — with a Hub — one namespace per
// attached session. The zero-value timeouts and limits are replaced by
// the Default* constants; set the fields before Serve to override them.
type Server struct {
	fs  *vfs.FS
	hub Hub
	mu  sync.Mutex

	// IdleTimeout bounds how long a connection may sit between
	// requests before the server closes it.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write.
	WriteTimeout time.Duration
	// MaxConns bounds concurrently served connections; connections
	// beyond it receive an ErrBusy reply and are closed.
	MaxConns int
	// MaxWaiters bounds parked readwait goroutines across all
	// connections (DefaultMaxWaiters when zero; negative disables the
	// bound). A readwait beyond the budget is answered as an immediate
	// poll instead of parking.
	MaxWaiters int
	// RetryAfter is the retry-after hint stamped on busy refusals whose
	// cause carries no hint of its own (DefaultRetryAfter when zero).
	RetryAfter time.Duration
	// Obs, when set before Serve, records wire-path counters:
	// srvnet.readahead.hit / srvnet.readahead.miss for the sequential
	// read slot and srvnet.reply.batched for replies coalesced into a
	// later flush. Nil is a no-op.
	Obs *obs.Registry

	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	wg        sync.WaitGroup
	draining  bool

	// waiters counts parked readwait goroutines server-wide against
	// MaxWaiters; atomic so the readwait dispatch path takes no lock.
	waiters atomic.Int64
}

// NewServer wraps fs for serving. The mutex serializes all requests, so
// the namespace needs no locking of its own; anything else touching the
// same namespace concurrently must coordinate through Locker.
func NewServer(fs *vfs.FS) *Server {
	return &Server{
		fs:        fs,
		conns:     map[net.Conn]struct{}{},
		listeners: map[net.Listener]struct{}{},
	}
}

// NewMuxServer wraps a session hub for serving. Connections carry no
// namespace until they send an "attach" naming a session; the hub's
// namespaces serialize themselves, so requests on different sessions
// proceed in parallel.
func NewMuxServer(hub Hub) *Server {
	s := NewServer(nil)
	s.hub = hub
	return s
}

// Locker exposes the serialization lock so a host embedding the server
// (help's event loop) can take the same lock around its own namespace
// access.
func (s *Server) Locker() sync.Locker { return &s.mu }

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return DefaultIdleTimeout
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return DefaultWriteTimeout
}

func (s *Server) maxConns() int {
	if s.MaxConns > 0 {
		return s.MaxConns
	}
	return DefaultMaxConns
}

func (s *Server) maxWaiters() int {
	if s.MaxWaiters > 0 {
		return s.MaxWaiters
	}
	if s.MaxWaiters < 0 {
		return int(^uint(0) >> 1) // unbounded
	}
	return DefaultMaxWaiters
}

func (s *Server) retryAfter() time.Duration {
	if s.RetryAfter > 0 {
		return s.RetryAfter
	}
	return DefaultRetryAfter
}

// retryHintMS resolves the retry-after hint (in wire milliseconds) for
// a busy refusal: the refusing budget's own hint when err carries one,
// the server default otherwise.
func (s *Server) retryHintMS(err error) int64 {
	d := s.retryAfter()
	if hint, ok := vfs.RetryAfter(err); ok {
		d = hint
	}
	ms := int64(d / time.Millisecond)
	if ms <= 0 {
		ms = 1
	}
	return ms
}

// errResp fills an error reply's wire fields, stamping busy refusals
// with their retry-after hint.
func (s *Server) errResp(err error) response {
	resp := response{Err: err.Error(), Code: codeOf(err)}
	if resp.Code == codeBusy {
		resp.Retry = s.retryHintMS(err)
	}
	return resp
}

// acquireWaiter reserves one slot of the server-wide waiter budget,
// reporting false when the budget is exhausted.
func (s *Server) acquireWaiter() bool {
	max := int64(s.maxWaiters())
	for {
		n := s.waiters.Load()
		if n >= max {
			return false
		}
		if s.waiters.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (s *Server) releaseWaiter() { s.waiters.Add(-1) }

// WaiterCount reports parked readwait goroutines server-wide.
func (s *Server) WaiterCount() int { return int(s.waiters.Load()) }

// register adds conn to the registry and reserves a goroutine slot. It
// reports false when the server is draining or full.
func (s *Server) register(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining || len(s.conns) >= s.maxConns() {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

// unregister removes conn, closes it, and releases its slot.
func (s *Server) unregister(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	conn.Close()
	s.wg.Done()
}

// closeConns force-closes every live connection.
func (s *Server) closeConns() {
	s.connMu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// ConnCount reports the number of live registered connections.
func (s *Server) ConnCount() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.draining
}

// Serve accepts connections until the listener closes. When it does,
// Serve closes every connection it accepted and waits for their
// goroutines to finish before returning, so no goroutine outlives the
// listener.
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.draining {
		s.connMu.Unlock()
		return ErrBusy
	}
	s.listeners[l] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.listeners, l)
		s.connMu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			// A listener closed out from under us takes its connections
			// with it — but when Shutdown closed it, the drain owns the
			// connections: they are being nudged so each can hear a typed
			// draining reply before closing, and force-closing here would
			// race that reply away.
			if !s.isDraining() {
				s.closeConns()
			}
			s.wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// readItem is one unit from a connection's reader goroutine to its
// executor: either a decoded request or the error that ended reading.
type readItem struct {
	req request
	err error
}

// ServeConn handles one connection until EOF, idle timeout, protocol
// error, or server shutdown. A connection the server cannot take on
// receives one typed refusal — busy when the registry is full, draining
// when Shutdown has begun — and is closed.
//
// The connection is served by two goroutines: this one executes
// requests and writes replies, while a reader goroutine keeps decoding
// ahead so up to pipelineDepth requests queue while earlier ones run.
// Replies are encoded into a write buffer that is flushed only when the
// request queue momentarily drains, so a pipelined burst is answered in
// a few large writes instead of one write per reply.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.register(conn) {
		refusal := response{Err: ErrBusy.Error(), Code: codeBusy, Retry: s.retryHintMS(nil)}
		if s.isDraining() {
			refusal = response{Err: ErrDraining.Error(), Code: codeDraining}
		} else {
			s.Obs.Counter("srvnet.backpressure.refused.conn").Inc()
		}
		enc := json.NewEncoder(conn)
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		enc.Encode(refusal)
		conn.Close()
		return
	}
	defer s.unregister(conn)
	// In mux mode the connection's namespace is chosen by its attach
	// handshake; detach runs when the connection leaves the session.
	fs := s.fs
	var detach func()
	defer func() {
		if detach != nil {
			detach()
		}
	}()

	reqCh := make(chan readItem, pipelineDepth)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	// connDead is set by the reader the moment the connection proves
	// gone (EOF, reset, idle timeout), strictly before the error item is
	// queued. Requests already sitting in reqCh behind that point belong
	// to a peer that can no longer hear the answer; the executor skips
	// them instead of burning namespace time on abandoned work.
	var connDead atomic.Bool
	go func() {
		defer close(readerDone)
		br := bufio.NewReaderSize(conn, wireBufSize)
		var req request
		for {
			// The idle deadline bounds the gap between frames, so it only
			// needs re-arming when the next read will actually touch the
			// socket; buffered frames are the peer being anything but idle.
			if br.Buffered() == 0 {
				conn.SetReadDeadline(time.Now().Add(s.idleTimeout()))
			}
			if err := readReq(br, &req); err != nil {
				var ne net.Error
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
					errors.Is(err, net.ErrClosed) || (errors.As(err, &ne) && ne.Timeout()) {
					connDead.Store(true)
				}
				select {
				case reqCh <- readItem{err: err}:
				case <-stop:
				}
				return
			}
			select {
			case reqCh <- readItem{req: req}:
			case <-stop:
				return
			}
		}
	}()
	// Join the reader — and any parked readwait goroutines, which the
	// stop close unblocks — before unregistering so no goroutine
	// outlives the Serve loop's wait.
	var waiters sync.WaitGroup
	defer func() {
		close(stop)
		waiters.Wait()
		conn.Close()
		<-readerDone
	}()

	bw := bufio.NewWriterSize(conn, wireBufSize)
	// wmu serializes the write buffer between this executor and the
	// readwait waiter goroutines, which deliver their replies whenever
	// their events arrive.
	var wmu sync.Mutex
	noteWriteErr := s.noteWriteErr
	flushLocked := func() error {
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		err := bw.Flush()
		noteWriteErr(err)
		return err
	}
	flush := func() error {
		wmu.Lock()
		defer wmu.Unlock()
		return flushLocked()
	}
	// reply buffers one response, deferring the socket write while more
	// requests are already queued: their replies will share the flush.
	// out is the executor's scratch frame and hdr its header buffer,
	// both reused across requests. The write buffer is bounded: framing
	// a response can spill it to the socket once it fills, so the write
	// deadline is armed before every frame, not just at flush — a
	// stalled peer fails the spill within the write timeout instead of
	// hanging the executor mid-frame forever.
	var out response
	var hdr []byte
	emit := func() error {
		wmu.Lock()
		defer wmu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		var err error
		hdr, err = frameResp(bw, hdr, &out)
		noteWriteErr(err)
		return err
	}
	reply := func() error {
		wmu.Lock()
		defer wmu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		var err error
		if hdr, err = frameResp(bw, hdr, &out); err != nil {
			noteWriteErr(err)
			return err
		}
		if len(reqCh) > 0 {
			s.Obs.Counter("srvnet.reply.batched").Inc()
			return nil
		}
		return flushLocked()
	}

	// A readwait's path resolution must synchronize with whoever else
	// mutates the namespace (the wait itself parks outside any lock,
	// per the vfs.WaitDevice contract). A served fs that is already a
	// serialized view — the world export over the actor lock, a
	// mux-mode hub namespace — brings its own lock; only a bare fs
	// needs the executor's mutex wrapped around resolution. Replacing
	// an existing lock with s.mu here would strip the actor
	// serialization and race device registration.
	waitView := func(fs *vfs.FS) *vfs.FS { return fs }
	if s.hub == nil && fs != nil {
		sfs := fs.EnsureSerialized(&s.mu)
		waitView = func(*vfs.FS) *vfs.FS { return sfs }
	}
	waiterSlots := make(chan struct{}, maxConnWaiters)

	ra := &readahead{}
	for {
		item := <-reqCh
		if item.err != nil {
			flush()
			// EOF, a closed or timed-out connection: nothing to say —
			// unless the server is draining, in which case the timeout is
			// Shutdown's nudge and the client deserves to hear why its
			// connection is going away instead of a silent hangup.
			var ne net.Error
			if errors.Is(item.err, io.EOF) || errors.Is(item.err, io.ErrUnexpectedEOF) ||
				errors.Is(item.err, net.ErrClosed) || (errors.As(item.err, &ne) && ne.Timeout()) {
				if s.isDraining() {
					out = response{Err: ErrDraining.Error(), Code: codeDraining}
					emit()
					flush()
				}
				return
			}
			// A malformed frame deserves an explicit reply before the
			// connection closes: the JSON stream cannot be resynced, but
			// the client learns why instead of seeing a silent hangup.
			out = response{
				Err:  fmt.Sprintf("srvnet: malformed request: %v", item.err),
				Code: codeProto,
			}
			emit()
			flush()
			return
		}
		req := item.req
		if connDead.Load() {
			// The peer is provably gone; requests it pipelined before
			// dying are abandoned work. Skip them instead of spending
			// executor and namespace time on replies nobody will read.
			s.Obs.Counter("srvnet.backpressure.abandoned").Inc()
			continue
		}
		if s.isDraining() {
			// A request decoded after Shutdown began gets the typed
			// refusal so the client degrades instead of redialing.
			out = response{Seq: req.Seq, Err: ErrDraining.Error(), Code: codeDraining}
			emit()
			flush()
			return
		}
		if req.Op == "attach" {
			out = response{Seq: req.Seq}
			if s.hub == nil {
				out.Err = "srvnet: server does not multiplex sessions"
				out.Code = codeProto
			} else if nfs, ndetach, err := s.hub.AttachSession(req.Path); err != nil {
				out = s.errResp(err)
				out.Seq = req.Seq
			} else {
				if detach != nil {
					detach()
				}
				fs, detach = nfs, ndetach
				// The readahead slot belongs to the old namespace.
				*ra = readahead{}
			}
			if err := reply(); err != nil {
				return
			}
			continue
		}
		if req.Op == "readwait" {
			// A long poll must not hold the executor: requests pipelined
			// behind it keep flowing while the waiter parks on the event
			// device. The reply is written under wmu whenever it is ready.
			if fs == nil {
				out = response{Seq: req.Seq, Err: ErrNoSession.Error(), Code: codeNoSess}
				if err := reply(); err != nil {
					return
				}
				continue
			}
			wfs := waitView(fs)
			// Parking costs a goroutine, budgeted twice: per connection
			// (waiterSlots) and server-wide (acquireWaiter), so neither
			// one flooding client nor a thousand polite ones can grow
			// goroutines without bound.
			parked := false
			if s.acquireWaiter() {
				select {
				case waiterSlots <- struct{}{}:
					parked = true
				default:
					s.releaseWaiter()
				}
			}
			if parked {
				waiters.Add(1)
				go func(req request) {
					defer waiters.Done()
					defer s.releaseWaiter()
					defer func() { <-waiterSlots }()
					s.serveReadWait(req, wfs, stop, &wmu, bw, conn)
				}(req)
				// The parked waiter emits nothing until its event arrives,
				// so a reply batched behind this request (reply defers its
				// flush while more requests are queued) would sit in bw for
				// the whole poll. Flush it now unless another request is
				// already queued to pick it up.
				if len(reqCh) == 0 {
					if err := flush(); err != nil {
						return
					}
				}
			} else {
				// Waiter budget exhausted: degrade this subscriber to an
				// immediate poll instead of parking another goroutine.
				s.Obs.Counter("srvnet.backpressure.poll").Inc()
				resp := s.readWait(req, wfs, stop, time.Millisecond)
				out = resp
				out.Seq = req.Seq
				if err := reply(); err != nil {
					return
				}
			}
			continue
		}
		out = s.handle(req, fs, ra)
		out.Seq = req.Seq
		if err := reply(); err != nil {
			return
		}
	}
}

// noteWriteErr classifies a failed response write: a timeout is the
// slow-reader policy firing — the peer stopped draining its socket, the
// write buffer filled, and the connection is disconnected with the
// deadline error rather than buffering without bound.
func (s *Server) noteWriteErr(err error) {
	if err == nil {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.Obs.Counter("srvnet.backpressure.disconnect").Inc()
	}
}

// readWait performs one bounded wait for events past req.Offset on
// req.Path. Cancellation (the connection tearing down) surfaces as the
// error the device reports on stop.
func (s *Server) readWait(req request, fs *vfs.FS, stop <-chan struct{}, timeout time.Duration) response {
	data, next, err := fs.ReadWait(req.Path, uint64(req.Offset), stop, timeout)
	if err != nil {
		return response{Err: err.Error(), Code: codeOf(err)}
	}
	// Gen carries the resume seq: an empty timeout reply still tells the
	// subscriber where to resume, so the next poll cannot re-deliver.
	return response{Data: data, Gen: next}
}

// serveReadWait runs one parked readwait to completion on its own
// goroutine and delivers the reply under the connection's write mutex.
// A connection already tearing down (stop closed) swallows the reply:
// the peer is gone, and bw is about to die with the conn.
func (s *Server) serveReadWait(req request, fs *vfs.FS, stop <-chan struct{}, wmu *sync.Mutex, bw *bufio.Writer, conn net.Conn) {
	d := time.Duration(req.Wait) * time.Millisecond
	if max := s.readWaitCap(); d <= 0 || d > max {
		d = max
	}
	out := s.readWait(req, fs, stop, d)
	out.Seq = req.Seq
	wmu.Lock()
	defer wmu.Unlock()
	select {
	case <-stop:
		return
	default:
	}
	conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
	if _, err := frameResp(bw, nil, &out); err != nil {
		s.noteWriteErr(err)
		return
	}
	s.noteWriteErr(bw.Flush())
}

// readWaitCap bounds one long poll: half the idle timeout (so the
// client's silence while parked can never trip the idle deadline — it
// re-polls at least twice per idle window) and never more than
// maxReadWait.
func (s *Server) readWaitCap() time.Duration {
	max := s.idleTimeout() / 2
	if max > maxReadWait {
		max = maxReadWait
	}
	return max
}

// Shutdown gracefully stops the server: it closes the listeners handed
// to Serve, stops accepting new connections, lets requests already in
// flight complete, and then closes their connections. If ctx expires
// first, remaining connections are force-closed and ctx's error is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.connMu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	// Nudge idle connections: an immediate read deadline makes their
	// blocked Decode return, while a request currently being handled
	// still gets its response written before the loop exits.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close without waiting: a handler blocked on the host's
		// namespace lock (Locker) must not deadlock Shutdown; it exits
		// when its next conn operation fails.
		s.closeConns()
		return ctx.Err()
	}
}

// raWindow is how much a readahead miss pulls in: enough that a client
// streaming a file sequentially revisits the namespace once per megabyte
// rather than once per 64 KiB chunk, small enough that a connection
// walking a gigabyte log holds one window, not the log.
const raWindow = 1 << 20

// readahead is a per-connection slot for sequential chunked reads: the
// first "readat" of a file reads a raWindow-sized range once (one
// namespace visit, one device handle); later chunks slice the window as
// long as the file's generation has not moved and the range is covered,
// sliding the window forward on the first chunk past it. Files without
// a generation cannot be validated and are re-read per chunk.
//
// Earlier versions snapshotted the entire file here, which was simpler
// but meant a "readat" of the head of a gigabyte file materialized the
// whole thing server-side — exactly what the paged text engine exists
// to avoid.
type readahead struct {
	path string
	gen  uint64
	base int64 // file offset of data[0]
	data []byte
	eof  bool // data reaches end of file
}

// readAt serves one chunk through the slot.
func (ra *readahead) readAt(fs *vfs.FS, reg *obs.Registry, path string, off, count int64) ([]byte, uint64, error) {
	if count <= 0 {
		count = defaultReadChunk
	}
	if off < 0 {
		off = 0
	}
	covered := off >= ra.base &&
		(off+count <= ra.base+int64(len(ra.data)) || ra.eof)
	if ra.path == path && ra.gen != 0 && covered && fs.Gen(path) == ra.gen {
		reg.Counter("srvnet.readahead.hit").Inc()
	} else {
		window := count
		if window < raWindow {
			window = raWindow
		}
		data, gen, err := fs.ReadFileAt(path, off, window)
		if err != nil {
			ra.path = ""
			return nil, 0, err
		}
		ra.path, ra.gen, ra.base, ra.data = path, gen, off, data
		ra.eof = int64(len(data)) < window
		reg.Counter("srvnet.readahead.miss").Inc()
	}
	data := ra.data
	rel := off - ra.base
	if rel >= int64(len(data)) {
		return nil, ra.gen, nil
	}
	data = data[rel:]
	if count < int64(len(data)) {
		data = data[:count]
	}
	return data, ra.gen, nil
}

// handle performs one operation on fs. In single-namespace mode the
// server's mutex serializes all requests; in mux mode the per-session
// namespaces serialize themselves, so requests on different sessions
// proceed in parallel. Replies for operations that name a target file
// piggyback its edit generation, observed under the same lock as the
// operation, so client caches stay coherent with what they were told.
func (s *Server) handle(req request, fs *vfs.FS, ra *readahead) response {
	if s.hub == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if fs == nil {
		return response{Err: ErrNoSession.Error(), Code: codeNoSess}
	}
	fail := func(err error) response { return s.errResp(err) }
	switch req.Op {
	case "read":
		data, gen, err := fs.ReadFileGen(req.Path)
		if err != nil {
			return fail(err)
		}
		return response{Data: data, Gen: gen}
	case "readat":
		data, gen, err := ra.readAt(fs, s.Obs, req.Path, req.Offset, req.Count)
		if err != nil {
			return fail(err)
		}
		return response{Data: data, Gen: gen}
	case "write":
		var err error
		if req.Append {
			err = fs.AppendFile(req.Path, req.Data)
		} else {
			err = fs.WriteFile(req.Path, req.Data)
		}
		if err != nil {
			return fail(err)
		}
		return response{Gen: fs.Gen(req.Path)}
	case "readdir":
		ents, err := fs.ReadDir(req.Path)
		if err != nil {
			return fail(err)
		}
		out := make([]entry, len(ents))
		for i, e := range ents {
			out[i] = entry{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime, Gen: e.Gen}
		}
		return response{Entries: out}
	case "stat":
		info, err := fs.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		return response{
			Info: &entry{Name: info.Name, IsDir: info.IsDir, Size: info.Size, ModTime: info.ModTime, Gen: info.Gen},
			Gen:  info.Gen,
		}
	case "glob":
		return response{Names: fs.Glob(req.Pattern)}
	case "mkdir":
		if err := fs.MkdirAll(req.Path); err != nil {
			return fail(err)
		}
		return response{}
	case "remove":
		if err := fs.Remove(req.Path); err != nil {
			return fail(err)
		}
		return response{}
	}
	return response{Err: fmt.Sprintf("srvnet: unknown op %q", req.Op), Code: codeProto}
}

// pendingCall is one in-flight request awaiting its reply. Exactly one
// result is ever delivered per issued call — by the reader on a matched
// reply, or by poisonAll/Close on failure — always after the call has
// been removed from the pending map, so the buffered send never blocks
// and a received call can be recycled.
type pendingCall struct {
	ch chan callResult
}

type callResult struct {
	resp response
	err  error
}

// callPool recycles pendingCall structs (and their reply channels)
// across round trips: one fewer allocation per RPC on the hot path.
var callPool = sync.Pool{New: func() any { return &pendingCall{ch: make(chan callResult, 1)} }}

// timerPool recycles round-trip timers: time.NewTimer costs several
// allocations, paid otherwise on every call.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops and drains t so the next getTimer cannot see a stale
// firing.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// cacheEntry is one generation-keyed cached read.
type cacheEntry struct {
	gen  uint64
	data []byte
}

// Client is a remote namespace handle over one connection. Methods are
// safe for concurrent use, and — unlike a conventional RPC client — they
// do not serialize: any number of calls may be in flight at once. Each
// caller encodes its request under a write mutex and then parks on a
// per-call channel; a single reader goroutine decodes replies and hands
// each to its caller by sequence number, so replies may arrive in any
// order. Batch (batch.go) queues several operations into one buffered
// write for explicit pipelining.
type Client struct {
	conn net.Conn

	// wmu serializes request encoding; bw buffers frames so a Batch
	// goes out in one write, and hdr is the reused header scratch.
	wmu sync.Mutex
	bw  *bufio.Writer
	hdr []byte

	br *bufio.Reader // owned by the reader goroutine

	pmu      sync.Mutex
	pending  map[uint64]*pendingCall
	seq      uint64
	closed   bool
	closeErr error // server refusal to report after poison; nil means ErrClientClosed

	cmu   sync.Mutex
	cache map[string]cacheEntry // nil when caching is off

	// Timeout bounds each round trip (queueing, write, and reply). Zero
	// means DefaultRoundTrip — a dead server fails the call instead of
	// hanging it — and a negative value disables the bound for callers
	// owning exotic transports. A timed-out call poisons the
	// connection: the stream's state is unknown once a reply has been
	// abandoned.
	Timeout time.Duration

	// Obs, when set before first use, records a per-op round-trip
	// latency histogram (srvnet.read, srvnet.write, ...), cache traffic
	// (srvnet.cache.hit / srvnet.cache.miss / srvnet.cache.inval), and
	// the srvnet.inflight up/down counter. ReconnectingClient
	// propagates its own.
	Obs *obs.Registry
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection and starts its reader
// goroutine (it exits when the connection closes). Round trips are
// bounded by DefaultRoundTrip until Timeout says otherwise.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, wireBufSize),
		br:      bufio.NewReaderSize(conn, wireBufSize),
		pending: map[uint64]*pendingCall{},
	}
	go c.reader()
	return c
}

// timeout resolves the effective round-trip bound.
func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	if c.Timeout < 0 {
		return 0
	}
	return DefaultRoundTrip
}

// SetCache enables (or, with false, disables and empties) the
// generation-keyed read cache: a ReadFile whose cached generation still
// stands is served locally with zero wire traffic.
//
// Coherence rules: an entry is trusted until this client learns its
// generation moved — from the generation piggybacked on any later
// reply that names the file (a Stat is therefore an explicit
// revalidation), or from a mutation issued through this client, which
// invalidates the entry before it is sent. The cache dies with the
// connection: a ReconnectingClient starts every redial cold, because a
// reconnect may attach to a recovered session whose generations restart.
// Writes by other clients are only observed through those piggybacked
// generations, so a strictly-fresh reader should Stat first; files with
// no generation (gen 0) are never cached.
func (c *Client) SetCache(on bool) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if on {
		if c.cache == nil {
			c.cache = map[string]cacheEntry{}
		}
	} else {
		c.cache = nil
	}
}

// cacheGet returns a copy of the cached contents of path, if trusted.
// A closed (or poisoned) client never serves from cache: its entries
// belong to a connection that no longer exists, and the miss routes the
// caller to the wire, where the failure surfaces and a
// ReconnectingClient redials cold.
func (c *Client) cacheGet(path string) ([]byte, bool) {
	if c.closedNow() {
		return nil, false
	}
	c.cmu.Lock()
	ent, ok := c.cache[path]
	c.cmu.Unlock()
	if !ok {
		return nil, false
	}
	return append([]byte(nil), ent.data...), true
}

func (c *Client) cacheEnabled() bool {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.cache != nil
}

// closedNow reports whether the connection has been closed or poisoned.
func (c *Client) closedNow() bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.closed
}

// cachePut stores a read observed at generation gen; gen 0 means the
// file cannot be validated and is not cached.
func (c *Client) cachePut(path string, gen uint64, data []byte) {
	if gen == 0 {
		return
	}
	c.cmu.Lock()
	if c.cache != nil {
		c.cache[path] = cacheEntry{gen: gen, data: append([]byte(nil), data...)}
	}
	c.cmu.Unlock()
}

// cacheNote reconciles a piggybacked generation for path: a moved
// generation proves the cached entry stale.
func (c *Client) cacheNote(path string, gen uint64) {
	c.cmu.Lock()
	if ent, ok := c.cache[path]; ok && ent.gen != gen {
		delete(c.cache, path)
		c.cmu.Unlock()
		c.Obs.Counter("srvnet.cache.inval").Inc()
		return
	}
	c.cmu.Unlock()
}

// cacheInvalidate drops path unconditionally (a mutation is being
// issued through this client).
func (c *Client) cacheInvalidate(path string) {
	c.cmu.Lock()
	_, had := c.cache[path]
	if had {
		delete(c.cache, path)
	}
	c.cmu.Unlock()
	if had {
		c.Obs.Counter("srvnet.cache.inval").Inc()
	}
}

// cacheFlush empties the cache (the connection switched sessions).
func (c *Client) cacheFlush() {
	c.cmu.Lock()
	if c.cache != nil {
		c.cache = map[string]cacheEntry{}
	}
	c.cmu.Unlock()
}

// Close closes the connection out of band: it does not wait for
// in-flight round trips, so a Close behind a hung peer still returns
// promptly. Pending calls fail fast with ErrClientClosed as the closed
// connection unblocks them, and the reader goroutine exits.
func (c *Client) Close() error {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return nil
	}
	c.closed = true
	calls := c.pending
	c.pending = map[uint64]*pendingCall{}
	c.pmu.Unlock()
	err := c.conn.Close()
	for _, call := range calls {
		call.ch <- callResult{err: ErrClientClosed}
	}
	return err
}

// poisonAll ends the connection after a transport- or protocol-level
// failure: every pending call fails with err, and — when the failure
// was a typed server refusal (busy, draining) — closeErr is recorded so
// later calls report the refusal instead of a bare ErrClientClosed.
func (c *Client) poisonAll(err, closeErr error) {
	c.pmu.Lock()
	if !c.closed {
		c.closed = true
		c.closeErr = closeErr
		c.conn.Close()
	}
	calls := c.pending
	c.pending = map[uint64]*pendingCall{}
	c.pmu.Unlock()
	for _, call := range calls {
		call.ch <- callResult{err: err}
	}
}

// reader is the connection's single reply loop: it decodes responses
// and hands each to the caller parked on its sequence number. A reply
// that matches no pending call is a protocol violation (the old
// one-reply-per-round-trip "out of sequence" condition, generalized to
// pipelining) and poisons the connection; a Seq-0 reply is the server
// refusing the connection itself and is delivered to every caller.
func (c *Client) reader() {
	var resp response
	for {
		if err := readResp(c.br, &resp); err != nil {
			c.poisonAll(fmt.Errorf("srvnet: receive: %w", err), nil)
			return
		}
		if resp.Seq == 0 {
			var err error
			if resp.Err != "" {
				err = errFromWire(resp.Err, resp.Code, resp.Retry)
			} else {
				err = fmt.Errorf("%w: unattributable reply", ErrProto)
			}
			c.poisonAll(err, err)
			return
		}
		c.pmu.Lock()
		call, ok := c.pending[resp.Seq]
		if ok {
			delete(c.pending, resp.Seq)
		}
		c.pmu.Unlock()
		if !ok {
			c.poisonAll(fmt.Errorf("%w: response out of sequence (unexpected seq %d)",
				ErrProto, resp.Seq), nil)
			return
		}
		call.ch <- callResult{resp: resp}
	}
}

// start registers a call, assigns its sequence number, and encodes the
// request — flushing it onto the wire unless the caller is batching.
// On success the caller owns the returned pendingCall and must collect
// its result through wait.
func (c *Client) start(req *request, flush bool) (*pendingCall, error) {
	call := callPool.Get().(*pendingCall)
	c.wmu.Lock()
	c.pmu.Lock()
	if c.closed {
		err := c.closeErr
		c.pmu.Unlock()
		c.wmu.Unlock()
		callPool.Put(call)
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	c.seq++
	req.Seq = c.seq
	c.pending[req.Seq] = call
	c.pmu.Unlock()
	c.Obs.Counter("srvnet.inflight").Add(1)
	if flush {
		// Batched frames skip the per-call deadline: the socket write
		// happens at Batch.Flush (which sets it), and a write that hangs
		// anyway is bounded by wait's timer poisoning the connection.
		if to := c.timeout(); to > 0 {
			c.conn.SetWriteDeadline(time.Now().Add(to))
		}
	}
	var err error
	c.hdr, err = frameReq(c.bw, c.hdr, req)
	if err == nil && flush {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("srvnet: send: %w", err)
		c.poisonAll(err, nil)
		<-call.ch // poisonAll (ours or a concurrent one) delivered to every pending call
		callPool.Put(call)
		c.Obs.Counter("srvnet.inflight").Add(-1)
		return nil, err
	}
	return call, nil
}

// wait collects the reply for a call started by start. A round trip
// that outlives the timeout poisons the connection — an abandoned reply
// leaves the stream state unknown — and fails every other in-flight
// call with it.
func (c *Client) wait(op string, call *pendingCall) (response, error) {
	return c.waitWithin(op, call, c.timeout())
}

// waitWithin is wait with an explicit round-trip bound: long polls
// (ReadWait) stretch the default by their wait budget, so a legitimate
// empty poll is not mistaken for a dead peer.
func (c *Client) waitWithin(op string, call *pendingCall, to time.Duration) (response, error) {
	defer c.Obs.Counter("srvnet.inflight").Add(-1)
	var res callResult
	select {
	case res = <-call.ch:
		// Pipelined common case: the reply landed before the caller got
		// here, so no timer is armed at all.
		resp, err := res.resp, res.err
		callPool.Put(call)
		if err != nil {
			return response{}, err
		}
		if resp.Err != "" {
			return resp, errFromWire(resp.Err, resp.Code, resp.Retry)
		}
		return resp, nil
	default:
	}
	if to > 0 {
		timer := getTimer(to)
		select {
		case res = <-call.ch:
			putTimer(timer)
		case <-timer.C:
			timerPool.Put(timer) // fired and drained: ready for reuse
			err := fmt.Errorf("srvnet: %s: no reply within %v (peer dead or stalled)", op, to)
			c.poisonAll(err, nil)
			// The poison (ours, or a concurrent one that beat us to the
			// pending map) delivered a result; drain it so the call can
			// be recycled.
			<-call.ch
			callPool.Put(call)
			return response{}, err
		}
	} else {
		res = <-call.ch
	}
	resp, err := res.resp, res.err
	callPool.Put(call)
	if err != nil {
		return response{}, err
	}
	if resp.Err != "" {
		return resp, errFromWire(resp.Err, resp.Code, resp.Retry)
	}
	return resp, nil
}

// rpc performs one full round trip: pipelining-aware under the hood,
// but synchronous for the caller.
func (c *Client) rpc(req request) (response, error) {
	if c.Obs != nil {
		// Failed round trips are observed too: a latency histogram that
		// hides the slow failures would understate what remote users pay.
		defer func(t0 time.Time, op string) {
			c.Obs.Histogram("srvnet." + op).Observe(time.Since(t0))
		}(time.Now(), req.Op)
	}
	call, err := c.start(&req, true)
	if err != nil {
		return response{}, err
	}
	return c.wait(req.Op, call)
}

// Attach selects the session this connection's subsequent operations
// apply to, on a server that multiplexes sessions (NewMuxServer). The
// server spawns the session on first attach; re-attaching switches the
// connection to another session and empties the read cache, whose
// generations belonged to the old one.
func (c *Client) Attach(session string) error {
	_, err := c.rpc(request{Op: "attach", Path: session})
	if err == nil {
		c.cacheFlush()
	}
	return err
}

// ReadFile reads a remote file. With the cache enabled (SetCache), a
// file whose generation has not moved since the last read is served
// locally with zero wire traffic.
func (c *Client) ReadFile(path string) ([]byte, error) {
	cached := c.cacheEnabled()
	if cached {
		if data, ok := c.cacheGet(path); ok {
			c.Obs.Counter("srvnet.cache.hit").Inc()
			return data, nil
		}
		c.Obs.Counter("srvnet.cache.miss").Inc()
	}
	resp, err := c.rpc(request{Op: "read", Path: path})
	if err != nil {
		return resp.Data, err
	}
	if cached {
		c.cachePut(path, resp.Gen, resp.Data)
	}
	return resp.Data, nil
}

// ReadFileAt reads up to count bytes of a remote file from byte offset
// off (count <= 0 asks for the server's default chunk). A short or
// empty result means end of file. Sequential chunks are served from the
// server's per-connection readahead slot: the file is snapshotted once
// and sliced while its generation holds, so walking a large body costs
// one namespace visit, not one per chunk.
func (c *Client) ReadFileAt(path string, off, count int64) ([]byte, error) {
	resp, err := c.rpc(request{Op: "readat", Path: path, Offset: off, Count: count})
	return resp.Data, err
}

// ReadWait long-polls an event file: it blocks server-side until events
// past seq since exist on path (0 = from now), the wait budget expires,
// or the server's own cap cuts the poll short. It returns the event
// lines and the seq to resume from; an empty data with a nil error is
// the normal empty poll, and resuming from the returned seq guarantees
// no event is delivered twice or skipped (a bus overflow surfaces as a
// "gap" event line, not a silent loss). On a plain file the server
// degrades the call to an immediate read, so ReadWait is safe to point
// at any path. wait <= 0 asks for the server's maximum poll.
//
// The round trip is bounded by the client timeout plus the wait budget
// — a long poll is the one call where a silent server is healthy.
func (c *Client) ReadWait(path string, since uint64, wait time.Duration) (data []byte, next uint64, err error) {
	if wait < 0 {
		wait = 0
	}
	req := request{Op: "readwait", Path: path, Offset: int64(since), Wait: int64(wait / time.Millisecond)}
	if c.Obs != nil {
		defer func(t0 time.Time) {
			c.Obs.Histogram("srvnet.readwait").Observe(time.Since(t0))
		}(time.Now())
	}
	call, err := c.start(&req, true)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.waitWithin("readwait", call, c.readWaitBudget(wait))
	if err != nil {
		return nil, 0, err
	}
	return resp.Data, resp.Gen, nil
}

// readWaitBudget bounds one readwait round trip client-side: the base
// timeout plus the server's park. A wait <= 0 delegates the park length
// to the server, whose cap (readWaitCap) can reach maxReadWait — the
// budget must cover that whole cap, because the server's clock starts
// at receipt, strictly after the client's: budgeting only the base
// timeout would let a maximum-length empty poll on an idle session
// outlive the client timer and poison the connection.
func (c *Client) readWaitBudget(wait time.Duration) time.Duration {
	to := c.timeout()
	if to <= 0 {
		return 0
	}
	if wait <= 0 {
		wait = maxReadWait
	}
	return to + wait
}

// StartPushInval turns the session's event stream into cache coherence:
// a background goroutine long-polls root's event log (root+"/log",
// where root is the help mount, usually "/mnt/help") and drops cached
// entries the moment their windows change — so a cache hit needs no
// Stat round trip to be trusted fresh. Each push-driven drop counts as
// srvnet.cache.pushinval; a stream gap (the subscriber fell too far
// behind) flushes the whole cache, since anything could have changed in
// the lost span.
//
// The goroutine exits when the connection dies (Close, poison, server
// gone) or when the returned stop function is called — the cache dies
// with the connection either way, and a ReconnectingClient re-arms the
// watcher on the next dial. A readwait refused on a still-healthy
// connection (wrong root, server draining) must not kill the watcher
// silently while the cache keeps serving: each refusal flushes the
// cache (events may be going unheard) and counts as
// srvnet.cache.pushinval.err, then the poll is retried with backoff;
// refusals that persist past the retry budget disable the cache
// entirely and leave a trace event, because a cache with no
// invalidation feed is unbounded staleness.
//
// Invalidation is asynchronous: a read racing an edit may still see the
// old cached contents until the event lands, which is the same window a
// polling Stat would have.
func (c *Client) StartPushInval(root string) (stop func()) {
	log := vfs.Clean(root + "/log")
	done := make(chan struct{})
	var once sync.Once
	go func() {
		var since uint64
		failures := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			data, next, err := c.ReadWait(log, since, 0)
			if err != nil {
				if c.closedNow() {
					// Normal death: cacheGet refuses on a closed client,
					// so the unwatched cache cannot serve anyone.
					return
				}
				c.cacheFlush()
				c.Obs.Counter("srvnet.cache.pushinval.err").Inc()
				failures++
				if failures >= pushInvalFailureLimit {
					c.SetCache(false)
					c.Obs.Event("srvnet.cache", "push invalidation dead, cache disabled: "+err.Error())
					return
				}
				select {
				case <-done:
					return
				case <-time.After(pushInvalBackoff << (failures - 1)):
				}
				continue
			}
			failures = 0
			since = next
			c.applyPushEvents(root, data)
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// applyPushEvents folds a batch of event lines into the cache.
func (c *Client) applyPushEvents(root string, data []byte) {
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		ev, ok := notify.ParseLine(line)
		if !ok {
			continue
		}
		switch ev.Kind {
		case notify.KindGap:
			// Unknown events were lost; nothing cached can be trusted.
			c.cacheFlush()
			c.Obs.Counter("srvnet.cache.pushinval").Inc()
		case "body", "tag":
			// Detail is "gen <G>": the generation the window's file
			// reports after the change. A cached entry at any other
			// generation is stale. Events published before the bus was
			// armed carry no detail; gen stays 0 and the entry is
			// dropped unconditionally (assume stale).
			gen := uint64(0)
			if g, ok := strings.CutPrefix(ev.Detail, "gen "); ok {
				gen, _ = strconv.ParseUint(g, 10, 64)
			}
			c.pushInval(vfs.Clean(fmt.Sprintf("%s/%d/%s", root, ev.Window, ev.Kind)), gen)
		case "del":
			c.pushInval(vfs.Clean(fmt.Sprintf("%s/%d/body", root, ev.Window)), 0)
			c.pushInval(vfs.Clean(fmt.Sprintf("%s/%d/tag", root, ev.Window)), 0)
		}
	}
}

// pushInval drops path's cached entry if the pushed generation proves
// it stale (gen 0 means "unknown, drop unconditionally").
func (c *Client) pushInval(path string, gen uint64) {
	c.cmu.Lock()
	ent, ok := c.cache[path]
	stale := ok && (gen == 0 || ent.gen != gen)
	if stale {
		delete(c.cache, path)
	}
	c.cmu.Unlock()
	if stale {
		c.Obs.Counter("srvnet.cache.pushinval").Inc()
	}
}

// WriteFile writes (replacing) a remote file. The cached entry for the
// path, if any, is invalidated.
func (c *Client) WriteFile(path string, data []byte) error {
	c.cacheInvalidate(path)
	_, err := c.rpc(request{Op: "write", Path: path, Data: data})
	return err
}

// AppendFile appends to a remote file, invalidating its cached entry.
func (c *Client) AppendFile(path string, data []byte) error {
	c.cacheInvalidate(path)
	_, err := c.rpc(request{Op: "write", Path: path, Data: data, Append: true})
	return err
}

// ReadDir lists a remote directory. Piggybacked entry generations
// revalidate cached reads of the directory's files.
func (c *Client) ReadDir(path string) ([]vfs.Info, error) {
	resp, err := c.rpc(request{Op: "readdir", Path: path})
	if err != nil {
		return nil, err
	}
	out := make([]vfs.Info, len(resp.Entries))
	cached := c.cacheEnabled()
	for i, e := range resp.Entries {
		out[i] = vfs.Info{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime, Gen: e.Gen}
		if cached && !e.IsDir {
			c.cacheNote(vfs.Clean(path+"/"+e.Name), e.Gen)
		}
	}
	return out, nil
}

// Stat describes a remote file. The reply's generation revalidates the
// cached entry, so Stat-then-ReadFile is the strict-freshness idiom for
// cached clients.
func (c *Client) Stat(path string) (vfs.Info, error) {
	resp, err := c.rpc(request{Op: "stat", Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	if c.cacheEnabled() {
		c.cacheNote(path, resp.Gen)
	}
	return vfs.Info{Name: resp.Info.Name, IsDir: resp.Info.IsDir, Size: resp.Info.Size,
		ModTime: resp.Info.ModTime, Gen: resp.Info.Gen}, nil
}

// Glob expands a pattern remotely.
func (c *Client) Glob(pattern string) ([]string, error) {
	resp, err := c.rpc(request{Op: "glob", Pattern: pattern})
	return resp.Names, err
}

// MkdirAll creates a remote directory tree.
func (c *Client) MkdirAll(path string) error {
	_, err := c.rpc(request{Op: "mkdir", Path: path})
	return err
}

// Remove deletes a remote file or empty directory, invalidating its
// cached entry.
func (c *Client) Remove(path string) error {
	c.cacheInvalidate(path)
	_, err := c.rpc(request{Op: "remove", Path: path})
	return err
}
