package srvnet

import (
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/vfs"
	"repro/internal/world"
)

// serve starts a server over fs on a loopback listener and returns a
// connected client.
func serve(t *testing.T, fs *vfs.FS) (*Client, *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs)
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv
}

func TestReadWriteRoundTrip(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	c, _ := serve(t, fs)
	if err := c.WriteFile("/d/f", []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadFile("/d/f")
	if err != nil || string(data) != "over the wire" {
		t.Errorf("data=%q err=%v", data, err)
	}
	// The write really landed in the served namespace.
	local, _ := fs.ReadFile("/d/f")
	if string(local) != "over the wire" {
		t.Errorf("local=%q", local)
	}
}

func TestAppendRemote(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	c, _ := serve(t, fs)
	c.WriteFile("/d/log", []byte("a"))
	c.AppendFile("/d/log", []byte("b"))
	data, _ := c.ReadFile("/d/log")
	if string(data) != "ab" {
		t.Errorf("data=%q", data)
	}
}

func TestReadDirStatGlob(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/src")
	fs.WriteFile("/src/a.c", []byte("xx"))
	fs.WriteFile("/src/b.h", []byte("y"))
	c, _ := serve(t, fs)

	ents, err := c.ReadDir("/src")
	if err != nil || len(ents) != 2 || ents[0].Name != "a.c" {
		t.Errorf("ents=%v err=%v", ents, err)
	}
	info, err := c.Stat("/src/a.c")
	if err != nil || info.Size != 2 || info.IsDir {
		t.Errorf("info=%+v err=%v", info, err)
	}
	names, err := c.Glob("/src/*.c")
	if err != nil || len(names) != 1 || names[0] != "/src/a.c" {
		t.Errorf("glob=%v err=%v", names, err)
	}
}

func TestMkdirRemove(t *testing.T) {
	fs := vfs.New()
	c, _ := serve(t, fs)
	if err := c.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if !fs.IsDir("/a/b/c") {
		t.Error("remote mkdir ineffective")
	}
	c.WriteFile("/a/b/c/f", []byte("x"))
	if err := c.Remove("/a/b/c/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/b/c/f") {
		t.Error("remote remove ineffective")
	}
}

func TestErrorsCrossTheWire(t *testing.T) {
	fs := vfs.New()
	c, _ := serve(t, fs)
	if _, err := c.ReadFile("/nope"); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Errorf("err = %v", err)
	}
	if err := c.WriteFile("/no/dir/f", []byte("x")); err == nil {
		t.Error("write into missing dir should fail")
	}
}

func TestMultipleClients(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go NewServer(fs).Serve(l)
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	for i, c := range clients {
		name := "/d/f" + string(rune('a'+i))
		if err := c.WriteFile(name, []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	ents, _ := clients[0].ReadDir("/d")
	if len(ents) != 3 {
		t.Errorf("entries = %d", len(ents))
	}
}

// TestRemoteDrivesHelp is the paper's multi-machine scenario: a "CPU
// server process" (the client) drives help's user interface purely
// through the served /mnt/help files — creating a window, naming it, and
// filling it — while help itself lives on the "terminal" (the server
// side).
func TestRemoteDrivesHelp(t *testing.T) {
	w, err := world.Build(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := serve(t, w.FS)

	// Create a window by opening new/ctl (a single read does it).
	data, err := c.ReadFile(world.MountRoot + "/new/ctl")
	if err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(string(data))
	if id == "" {
		t.Fatal("no window id over the wire")
	}
	// Name it and append output, 9P-style.
	if err := c.WriteFile(world.MountRoot+"/"+id+"/ctl", []byte("name /remote/results\n")); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendFile(world.MountRoot+"/"+id+"/bodyapp", []byte("computed remotely\n")); err != nil {
		t.Fatal(err)
	}

	win := w.Help.WindowByName("/remote/results")
	if win == nil {
		t.Fatal("remote window not created on the terminal side")
	}
	if win.Body.String() != "computed remotely\n" {
		t.Errorf("body = %q", win.Body.String())
	}
	// And the index shows it to remote readers.
	idx, err := c.ReadFile(world.MountRoot + "/index")
	if err != nil || !strings.Contains(string(idx), "/remote/results") {
		t.Errorf("index = %q err=%v", idx, err)
	}
}

func TestUnknownOp(t *testing.T) {
	fs := vfs.New()
	c, _ := serve(t, fs)
	if _, err := c.rpc(request{Op: "bogus"}); err == nil {
		t.Error("unknown op should error")
	}
}

func TestServerStopsOnListenerClose(t *testing.T) {
	fs := vfs.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	l.Close()
	if err := <-done; err != nil && !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve returned %v", err)
	}
}

// TestConcurrentClientsStress hammers the server from several goroutines
// at once; the server's lock must keep the namespace consistent (run
// under -race in CI via `make race`).
func TestConcurrentClientsStress(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go NewServer(fs).Serve(l)

	const workers = 4
	const opsEach = 100
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			c, err := Dial(l.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			name := "/d/worker" + string(rune('a'+id))
			for i := 0; i < opsEach; i++ {
				if err := c.AppendFile(name, []byte{byte('0' + id)}); err != nil {
					errc <- err
					return
				}
				if _, err := c.ReadDir("/d"); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		name := "/d/worker" + string(rune('a'+w))
		data, err := fs.ReadFile(name)
		if err != nil || len(data) != opsEach {
			t.Errorf("%s: %d bytes, err %v", name, len(data), err)
		}
	}
}
