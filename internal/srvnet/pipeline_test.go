package srvnet

import (
	"bufio"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// The pipelining surface: multiple requests in flight on one
// connection, replies matched by sequence number in any order, batched
// sends, and the generation-keyed cache. Run under -race via `make
// test`; every test asserts the client reader goroutine does not leak.

// countingConn wraps a net.Conn and counts Write calls, so tests can
// prove an operation produced zero wire traffic.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// dialCounting connects a counting client to addr.
func dialCounting(t *testing.T, addr string) (*Client, *countingConn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cc := &countingConn{Conn: conn}
	c := NewClient(cc)
	t.Cleanup(func() { c.Close() })
	return c, cc
}

// TestOutOfOrderRepliesMatchCallers drives the client against a
// handcrafted peer that answers a pipelined pair in reverse order: each
// caller must still receive its own reply, matched by sequence number.
func TestOutOfOrderRepliesMatchCallers(t *testing.T) {
	base := runtime.NumGoroutine()
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		br := bufio.NewReader(server)
		bw := bufio.NewWriter(server)
		var reqs []request
		for len(reqs) < 2 {
			var req request
			if readReq(br, &req) != nil {
				return
			}
			reqs = append(reqs, req)
		}
		// Reverse order: the second request is answered first.
		for i := len(reqs) - 1; i >= 0; i-- {
			resp := response{Seq: reqs[i].Seq, Data: []byte(reqs[i].Path)}
			frameResp(bw, nil, &resp)
		}
		bw.Flush()
	}()

	c := NewClient(client)
	b := c.NewBatch()
	fa := b.ReadFile("/a")
	fb := b.ReadFile("/b")
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// Collect in issue order even though the wire order is reversed.
	if data, err := fa.Data(); err != nil || string(data) != "/a" {
		t.Fatalf("first future: data=%q err=%v", data, err)
	}
	if data, err := fb.Data(); err != nil || string(data) != "/b" {
		t.Fatalf("second future: data=%q err=%v", data, err)
	}
	c.Close()
	server.Close()
	<-done
	waitGoroutines(t, base)
}

// TestPipelinedInterleavedMatrix hammers one connection from many
// goroutines mixing reads, writes, stats, and batches; every reply must
// land with its own caller. The server's executor interleaves freely,
// so this is the out-of-order matrix at load.
func TestPipelinedInterleavedMatrix(t *testing.T) {
	base := runtime.NumGoroutine()
	fs := vfs.New()
	fs.MkdirAll("/d")
	c, srv := serve(t, fs)
	paths := []string{"/d/a", "/d/b", "/d/c", "/d/e"}
	for _, p := range paths {
		if err := c.WriteFile(p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p := paths[(g+i)%len(paths)]
				switch i % 3 {
				case 0:
					data, err := c.ReadFile(p)
					if err != nil {
						errCh <- err
						return
					}
					if string(data) != p {
						errCh <- errors.New("read " + p + " got " + string(data))
						return
					}
				case 1:
					if _, err := c.Stat(p); err != nil {
						errCh <- err
						return
					}
				case 2:
					b := c.NewBatch()
					futs := make([]*Future, len(paths))
					for j, bp := range paths {
						futs[j] = b.ReadFile(bp)
					}
					for j, f := range futs {
						data, err := f.Data()
						if err != nil {
							errCh <- err
							return
						}
						if string(data) != paths[j] {
							errCh <- errors.New("batch read " + paths[j] + " got " + string(data))
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	c.Close()
	srv.Shutdown(shutdownCtx(t))
	waitGoroutines(t, base)
}

// TestCloseUnblocksInFlightCall is the regression test for Close
// waiting behind a hung round trip: against a peer that never answers,
// Close must return promptly and fail the pending call fast.
func TestCloseUnblocksInFlightCall(t *testing.T) {
	base := runtime.NumGoroutine()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := l.Accept()
		if err == nil {
			accepted <- conn // held open, never answered
		}
	}()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = -1 // unbounded: only Close can end the call

	callErr := make(chan error, 1)
	go func() {
		_, err := c.ReadFile("/f")
		callErr <- err
	}()
	// Give the request time to be in flight before closing around it.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	c.Close()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Close took %v: it waited behind the in-flight call", d)
	}
	select {
	case err := <-callErr:
		if !errors.Is(err, ErrClientClosed) && err == nil {
			t.Fatalf("pending call: err = %v, want failure", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call still blocked after Close")
	}
	if conn := <-accepted; conn != nil {
		conn.Close()
	}
	waitGoroutines(t, base)
}

// TestDefaultTimeoutBoundsDeadPeer is the regression test for Timeout==0
// meaning "wait forever": the zero value must resolve to a real
// deadline, and a bounded client against a silent peer must fail the
// call rather than hang.
func TestDefaultTimeoutBoundsDeadPeer(t *testing.T) {
	c := &Client{}
	if got := c.timeout(); got != DefaultRoundTrip {
		t.Fatalf("zero Timeout resolves to %v, want DefaultRoundTrip (%v)", got, DefaultRoundTrip)
	}
	c.Timeout = -1
	if got := c.timeout(); got != 0 {
		t.Fatalf("negative Timeout resolves to %v, want 0 (unbounded)", got)
	}

	base := runtime.NumGoroutine()
	server, client := net.Pipe()
	defer server.Close()
	cl := NewClient(client)
	cl.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := cl.ReadFile("/f")
	if err == nil {
		t.Fatal("read against silent peer succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timed-out call took %v", d)
	}
	// The timeout poisoned the connection: later calls fail immediately.
	if _, err := cl.ReadFile("/f"); err == nil {
		t.Fatal("call after timeout poison succeeded")
	}
	cl.Close()
	server.Close()
	waitGoroutines(t, base)
}

// TestGenCacheHitIsZeroWireTraffic: with the cache on, re-reading an
// unchanged file must not touch the connection at all.
func TestGenCacheHitIsZeroWireTraffic(t *testing.T) {
	base := runtime.NumGoroutine()
	fs := vfs.New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("cached payload"))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	go srv.Serve(l)

	reg := obs.New()
	c, cc := dialCounting(t, l.Addr().String())
	c.Obs = reg
	c.SetCache(true)
	first, err := c.ReadFile("/d/f")
	if err != nil || string(first) != "cached payload" {
		t.Fatalf("first read: %q %v", first, err)
	}
	before := cc.writes.Load()
	second, err := c.ReadFile("/d/f")
	if err != nil || string(second) != "cached payload" {
		t.Fatalf("cached read: %q %v", second, err)
	}
	if after := cc.writes.Load(); after != before {
		t.Fatalf("cache hit wrote to the wire: %d -> %d writes", before, after)
	}
	if got := reg.StatsMap()["srvnet.cache.hit"]; got != 1 {
		t.Fatalf("srvnet.cache.hit = %d, want 1", got)
	}
	// The cached copy must be the caller's own: mutating it must not
	// poison later hits.
	second[0] = 'X'
	third, _ := c.ReadFile("/d/f")
	if string(third) != "cached payload" {
		t.Fatalf("cache corrupted by caller mutation: %q", third)
	}
	c.Close()
	srv.Shutdown(shutdownCtx(t))
	waitGoroutines(t, base)
}

// TestCacheRevalidatesThroughStat: the documented coherence idiom — a
// write by another client moves the generation; the cached client sees
// stale data until a Stat carries the new generation, which invalidates
// the entry and makes the next read fetch fresh bytes.
func TestCacheRevalidatesThroughStat(t *testing.T) {
	base := runtime.NumGoroutine()
	fs := vfs.New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("v1"))
	c, srv := serve(t, fs)
	c.SetCache(true)
	if data, _ := c.ReadFile("/d/f"); string(data) != "v1" {
		t.Fatalf("data = %q", data)
	}
	// Another writer moves the file under the cache.
	fs.WriteFile("/d/f", []byte("v2"))
	// Trust-until-told: the cached read is allowed to be stale.
	if data, _ := c.ReadFile("/d/f"); string(data) != "v1" {
		t.Fatalf("pre-revalidation read = %q, want cached v1", data)
	}
	// Stat piggybacks the moved generation and invalidates the entry.
	if _, err := c.Stat("/d/f"); err != nil {
		t.Fatal(err)
	}
	if data, _ := c.ReadFile("/d/f"); string(data) != "v2" {
		t.Fatalf("post-revalidation read = %q, want v2", data)
	}
	// A write through this client invalidates its own entry directly.
	if err := c.WriteFile("/d/f", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if data, _ := c.ReadFile("/d/f"); string(data) != "v3" {
		t.Fatalf("post-write read = %q, want v3", data)
	}
	c.Close()
	srv.Shutdown(shutdownCtx(t))
	waitGoroutines(t, base)
}

// TestCacheColdAfterReconnect: a gen-cached read must revalidate after
// a redial — the cache dies with the connection, so the first read on
// the new connection fetches fresh bytes even though the path was
// cached before the drop.
func TestCacheColdAfterReconnect(t *testing.T) {
	base := runtime.NumGoroutine()
	fs := vfs.New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("before"))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	go srv.Serve(l)

	r := &ReconnectingClient{Addr: l.Addr().String(), BackoffBase: time.Millisecond, CacheReads: true}
	if data, err := r.ReadFile("/d/f"); err != nil || string(data) != "before" {
		t.Fatalf("first read: %q %v", data, err)
	}
	// Prime the cache, then change the file while severing the
	// connection: a cache that survived the redial would serve "before".
	if data, _ := r.ReadFile("/d/f"); string(data) != "before" {
		t.Fatalf("cached read: %q", data)
	}
	fs.WriteFile("/d/f", []byte("after"))
	srv.closeConns()
	// The client learns of the severed connection asynchronously (its
	// reader must see the close), so poll: what must never happen is the
	// cache surviving the redial — once reads flow again, they are fresh.
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := r.ReadFile("/d/f")
		if err == nil && string(data) == "after" {
			break
		}
		if err == nil && string(data) != "before" {
			t.Fatalf("post-reconnect read = %q, want before (stale window) or after (fresh)", data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("still stale after reconnect: data=%q err=%v", data, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Close()
	srv.Shutdown(shutdownCtx(t))
	waitGoroutines(t, base)
}

// TestReconnectingClientClosed is the regression test for operations
// silently redialing after Close: they must fail with ErrClientClosed.
func TestReconnectingClientClosed(t *testing.T) {
	fs := vfs.New()
	fs.WriteFile("/f", []byte("x"))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	go srv.Serve(l)
	defer srv.Shutdown(shutdownCtx(t))

	r := NewReconnectingClient(l.Addr().String())
	if _, err := r.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFile("/f"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("read after Close: err = %v, want ErrClientClosed", err)
	}
	if err := r.WriteFile("/f", []byte("y")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("write after Close: err = %v, want ErrClientClosed", err)
	}
}

// TestBatchFlushIsOneWrite: a flushed batch of small requests reaches
// the socket as a single write.
func TestBatchFlushIsOneWrite(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	for _, p := range []string{"/d/a", "/d/b", "/d/c"} {
		fs.WriteFile(p, []byte(p))
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	go srv.Serve(l)
	defer srv.Shutdown(shutdownCtx(t))

	c, cc := dialCounting(t, l.Addr().String())
	before := cc.writes.Load()
	b := c.NewBatch()
	futs := []*Future{b.ReadFile("/d/a"), b.ReadFile("/d/b"), b.ReadFile("/d/c")}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := cc.writes.Load() - before; got != 1 {
		t.Fatalf("batch of 3 produced %d writes, want 1", got)
	}
	for i, f := range futs {
		p := []string{"/d/a", "/d/b", "/d/c"}[i]
		if data, err := f.Data(); err != nil || string(data) != p {
			t.Fatalf("future %d: %q %v", i, data, err)
		}
	}
}

// TestReadFilesPipelined: the ReconnectingClient batch read returns
// positional results and survives the fault matrix's healthy path.
func TestReadFilesPipelined(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/d")
	paths := []string{"/d/a", "/d/b", "/d/c"}
	for _, p := range paths {
		fs.WriteFile(p, []byte("body of "+p))
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(fs)
	go srv.Serve(l)
	defer srv.Shutdown(shutdownCtx(t))

	r := NewReconnectingClient(l.Addr().String())
	defer r.Close()
	datas, err := r.ReadFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		if string(datas[i]) != "body of "+p {
			t.Fatalf("datas[%d] = %q", i, datas[i])
		}
	}
	// A missing path fails the whole batch with the typed error, and the
	// connection stays usable afterward.
	if _, err := r.ReadFiles([]string{"/d/a", "/d/missing"}); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("batch with missing path: err = %v, want ErrNotExist", err)
	}
	if data, err := r.ReadFile("/d/a"); err != nil || string(data) != "body of /d/a" {
		t.Fatalf("read after failed batch: %q %v", data, err)
	}
}

// TestFaultMatrixPipelinedFrames re-runs the scripted fault matrix with
// pipelined frames: a faulty first connection must still end in the
// correct positional results after redial, and a fully-faulty world in
// a typed ErrDegraded — never a hang or a leak.
func TestFaultMatrixPipelinedFrames(t *testing.T) {
	paths := []string{"/d/f", "/d/f", "/d/f"}
	for _, sc := range matrixScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			rc, srv, l := matrixWorld(t, func(i int) *faultnet.Script {
				if i == 0 {
					return sc.script()
				}
				return nil
			})
			defer l.Close()
			datas, err := rc.ReadFiles(paths)
			if err != nil {
				t.Fatalf("err = %v", err)
			}
			for i := range paths {
				if string(datas[i]) != "the payload" {
					t.Fatalf("datas[%d] = %q", i, datas[i])
				}
			}
			rc.Close()
			l.Close()
			srv.Shutdown(shutdownCtx(t))
			waitGoroutines(t, base)
		})
	}
}

// TestReadFileAtUsesReadahead: sequential chunked reads hit the
// server's readahead slot after the first chunk snapshots the body.
func TestReadFileAtUsesReadahead(t *testing.T) {
	base := runtime.NumGoroutine()
	fs := vfs.New()
	fs.MkdirAll("/d")
	body := make([]byte, 10000)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	fs.WriteFile("/d/big", body)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := obs.New()
	srv := NewServer(fs)
	srv.Obs = reg
	go srv.Serve(l)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for off := int64(0); ; {
		chunk, err := c.ReadFileAt("/d/big", off, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 {
			break
		}
		got = append(got, chunk...)
		off += int64(len(chunk))
	}
	if string(got) != string(body) {
		t.Fatalf("chunked read reassembled %d bytes, want %d (mismatch)", len(got), len(body))
	}
	snap := reg.StatsMap()
	if snap["srvnet.readahead.miss"] != 1 {
		t.Fatalf("readahead.miss = %d, want 1", snap["srvnet.readahead.miss"])
	}
	if hits := snap["srvnet.readahead.hit"]; hits < 9 {
		t.Fatalf("readahead.hit = %d, want >= 9", hits)
	}
	// A write moves the generation: the slot must re-snapshot, not serve
	// the stale body.
	fs.WriteFile("/d/big", []byte("rewritten"))
	chunk, err := c.ReadFileAt("/d/big", 0, 100)
	if err != nil || string(chunk) != "rewritten" {
		t.Fatalf("post-write chunk = %q err=%v", chunk, err)
	}
	c.Close()
	srv.Shutdown(shutdownCtx(t))
	waitGoroutines(t, base)
}
