package srvnet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/vfs"
)

// testHub is a Hub over in-memory namespaces, one per session name,
// created on first attach. It counts attaches and live attachments so
// tests can assert detach bookkeeping.
type testHub struct {
	mu       sync.Mutex
	sessions map[string]*vfs.FS
	attaches map[string]int
	live     map[string]int
	err      error // when set, AttachSession fails with it
}

func newTestHub() *testHub {
	return &testHub{
		sessions: map[string]*vfs.FS{},
		attaches: map[string]int{},
		live:     map[string]int{},
	}
}

func (h *testHub) AttachSession(name string) (*vfs.FS, func(), error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return nil, nil, h.err
	}
	fs, ok := h.sessions[name]
	if !ok {
		fs = vfs.New()
		fs.MkdirAll("/d")
		fs.WriteFile("/d/who", []byte(name))
		h.sessions[name] = fs
	}
	h.attaches[name]++
	h.live[name]++
	detach := func() {
		h.mu.Lock()
		h.live[name]--
		h.mu.Unlock()
	}
	return fs, detach, nil
}

func (h *testHub) counts(name string) (attaches, live int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.attaches[name], h.live[name]
}

// muxServe starts a mux server over hub and returns its address.
func muxServe(t *testing.T, hub Hub) (string, *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewMuxServer(hub)
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	return l.Addr().String(), srv
}

func TestMuxAttachIsolatesSessions(t *testing.T) {
	hub := newTestHub()
	addr, _ := muxServe(t, hub)

	ca, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()

	// Before the handshake the connection has no namespace.
	if _, err := ca.ReadFile("/d/who"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("op before attach: err = %v, want ErrNoSession", err)
	}
	if err := ca.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if who, _ := ca.ReadFile("/d/who"); string(who) != "a" {
		t.Fatalf("who = %q, want a", who)
	}
	if err := ca.WriteFile("/d/f", []byte("private to a")); err != nil {
		t.Fatal(err)
	}

	cb, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	if err := cb.Attach("b"); err != nil {
		t.Fatal(err)
	}
	if who, _ := cb.ReadFile("/d/who"); string(who) != "b" {
		t.Fatalf("who = %q, want b", who)
	}
	// Session a's write must not be visible in session b.
	if _, err := cb.ReadFile("/d/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("cross-session read: err = %v, want ErrNotExist", err)
	}

	// Re-attaching switches the connection and detaches the old session.
	if err := ca.Attach("b"); err != nil {
		t.Fatal(err)
	}
	if data, _ := ca.ReadFile("/d/who"); string(data) != "b" {
		t.Fatalf("after re-attach who = %q, want b", data)
	}
	if _, live := hub.counts("a"); live != 0 {
		t.Fatalf("session a live attachments = %d after re-attach, want 0", live)
	}

	// Closing the connections releases the remaining attachments.
	ca.Close()
	cb.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, live := hub.counts("b"); live == 0 {
			break
		}
		if time.Now().After(deadline) {
			_, live := hub.counts("b")
			t.Fatalf("session b live attachments = %d after close, want 0", live)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMuxAttachErrorCrossesWire(t *testing.T) {
	hub := newTestHub()
	hub.err = fmt.Errorf("no room: %w", ErrBusy)
	addr, _ := muxServe(t, hub)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Attach("a"); !errors.Is(err, ErrBusy) {
		t.Fatalf("attach: err = %v, want ErrBusy", err)
	}
}

func TestAttachOnSingleNamespaceServerRefused(t *testing.T) {
	fs := vfs.New()
	c, _ := serve(t, fs)
	if err := c.Attach("a"); !errors.Is(err, ErrProto) {
		t.Fatalf("attach on non-mux server: err = %v, want ErrProto", err)
	}
}

// An idle connection nudged by Shutdown hears a typed draining error on
// its next operation instead of a silent hangup.
func TestShutdownNotifiesIdleConnection(t *testing.T) {
	fs := vfs.New()
	fs.WriteFile("/f", []byte("x"))
	c, srv := serve(t, fs)
	if _, err := c.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := c.ReadFile("/f"); !errors.Is(err, ErrDraining) {
		t.Fatalf("op after shutdown: err = %v, want ErrDraining", err)
	}
}

// A connection refused because the server is draining gets the draining
// code, not busy.
func TestConnectDuringDrainRefusedAsDraining(t *testing.T) {
	fs := vfs.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs)
	go srv.Serve(l)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The listener is closed, but ServeConn itself must also refuse with
	// the typed error for hosts that hand it connections directly. The
	// refusal is unsolicited (Seq 0), so read it straight off the wire.
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(server)
		close(done)
	}()
	defer client.Close()
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp response
	if err := json.NewDecoder(client).Decode(&resp); err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	if err := errFromWire(resp.Err, resp.Code, resp.Retry); !errors.Is(err, ErrDraining) {
		t.Fatalf("refusal: err = %v, want ErrDraining", err)
	}
	<-done
}

// ReconnectingClient must degrade immediately on a draining reply — no
// redial storm against a host trying to shut down.
func TestReconnectDegradesImmediatelyOnDrain(t *testing.T) {
	fs := vfs.New()
	fs.WriteFile("/f", []byte("x"))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs)
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })

	r := &ReconnectingClient{
		Addr:        l.Addr().String(),
		MaxRetries:  5,
		BackoffBase: 2 * time.Second, // a redial storm would be visible as a long stall
		BackoffCap:  2 * time.Second,
	}
	defer r.Close()
	if _, err := r.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = r.ReadFile("/f")
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDegraded wrapping ErrDraining", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("degrade took %v: the client retried instead of degrading immediately", d)
	}
	if got := r.State(); got != StateDegraded {
		t.Fatalf("state = %v, want degraded", got)
	}
}

// A redial against a mux server transparently re-attaches the session.
func TestReconnectReattachesSessionAfterDisconnect(t *testing.T) {
	hub := newTestHub()
	addr, srv := muxServe(t, hub)

	r := &ReconnectingClient{Addr: addr, Session: "a", BackoffBase: time.Millisecond}
	defer r.Close()
	if who, err := r.ReadFile("/d/who"); err != nil || string(who) != "a" {
		t.Fatalf("who = %q err = %v", who, err)
	}

	// Sever the connection out from under the client.
	srv.closeConns()

	if who, err := r.ReadFile("/d/who"); err != nil || string(who) != "a" {
		t.Fatalf("after reconnect: who = %q err = %v", who, err)
	}
	if attaches, _ := hub.counts("a"); attaches < 2 {
		t.Fatalf("attach count = %d, want >= 2 (one per dial)", attaches)
	}
}
