package geom

import (
	"testing"
	"testing/quick"
)

func TestPointAddSub(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
}

func TestPointIn(t *testing.T) {
	r := Rt(0, 0, 10, 5)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(9, 4), true},
		{Pt(10, 4), false}, // half-open on X
		{Pt(9, 5), false},  // half-open on Y
		{Pt(-1, 0), false},
		{Pt(5, 2), true},
	}
	for _, c := range cases {
		if got := c.p.In(r); got != c.want {
			t.Errorf("%v.In(%v) = %v, want %v", c.p, r, got, c.want)
		}
	}
}

func TestManhattan(t *testing.T) {
	if d := Pt(0, 0).Manhattan(Pt(3, -4)); d != 7 {
		t.Errorf("Manhattan = %d, want 7", d)
	}
	if d := Pt(2, 2).Manhattan(Pt(2, 2)); d != 0 {
		t.Errorf("Manhattan self = %d, want 0", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rt(1, 2, 4, 8)
	if r.Dx() != 3 || r.Dy() != 6 {
		t.Errorf("Dx,Dy = %d,%d", r.Dx(), r.Dy())
	}
	if r.Area() != 18 {
		t.Errorf("Area = %d", r.Area())
	}
	if r.Empty() {
		t.Error("Empty on non-empty rect")
	}
	if !Rt(3, 3, 3, 9).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if Rt(3, 3, 3, 9).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
}

func TestCanon(t *testing.T) {
	r := Rect{Pt(5, 7), Pt(1, 2)}.Canon()
	if r != Rt(1, 2, 5, 7) {
		t.Errorf("Canon = %v", r)
	}
}

func TestIntersect(t *testing.T) {
	a := Rt(0, 0, 10, 10)
	b := Rt(5, 5, 15, 15)
	if got := a.Intersect(b); got != Rt(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	c := Rt(20, 20, 30, 30)
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	if a.Overlaps(c) {
		t.Error("Overlaps on disjoint rects")
	}
	if !a.Overlaps(b) {
		t.Error("!Overlaps on overlapping rects")
	}
}

func TestUnion(t *testing.T) {
	a := Rt(0, 0, 2, 2)
	b := Rt(5, 5, 6, 6)
	if got := a.Union(b); got != Rt(0, 0, 6, 6) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty Union = %v", got)
	}
}

func TestContainsRect(t *testing.T) {
	a := Rt(0, 0, 10, 10)
	if !a.ContainsRect(Rt(2, 2, 8, 8)) {
		t.Error("ContainsRect inner")
	}
	if a.ContainsRect(Rt(2, 2, 11, 8)) {
		t.Error("ContainsRect overflowing")
	}
	if !a.ContainsRect(Rect{}) {
		t.Error("every rect contains the empty rect")
	}
	if !a.ContainsRect(a) {
		t.Error("rect contains itself")
	}
}

func TestTranslateInset(t *testing.T) {
	r := Rt(1, 1, 5, 5)
	if got := r.Translate(Pt(2, -1)); got != Rt(3, 0, 7, 4) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Inset(1); got != Rt(2, 2, 4, 4) {
		t.Errorf("Inset = %v", got)
	}
	if got := r.Inset(-1); got != Rt(0, 0, 6, 6) {
		t.Errorf("Inset(-1) = %v", got)
	}
}

func TestClamp(t *testing.T) {
	r := Rt(0, 0, 10, 10)
	cases := []struct{ in, want Point }{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-3, 5), Pt(0, 5)},
		{Pt(12, 12), Pt(9, 9)},
		{Pt(3, -1), Pt(3, 0)},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Clamp on an empty rect is the identity.
	if got := (Rect{}).Clamp(Pt(7, 8)); got != Pt(7, 8) {
		t.Errorf("empty Clamp = %v", got)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectProperties(t *testing.T) {
	f := func(ax0, ay0, adx, ady, bx0, by0, bdx, bdy uint8) bool {
		a := Rt(int(ax0), int(ay0), int(ax0)+int(adx%32), int(ay0)+int(ady%32))
		b := Rt(int(bx0), int(by0), int(bx0)+int(bdx%32), int(by0)+int(bdy%32))
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if !a.ContainsRect(i1) || !b.ContainsRect(i1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands; intersection area <= min area.
func TestUnionProperties(t *testing.T) {
	f := func(ax0, ay0, adx, ady, bx0, by0, bdx, bdy uint8) bool {
		a := Rt(int(ax0), int(ay0), int(ax0)+int(adx%32)+1, int(ay0)+int(ady%32)+1)
		b := Rt(int(bx0), int(by0), int(bx0)+int(bdx%32)+1, int(by0)+int(bdy%32)+1)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		i := a.Intersect(b)
		if i.Area() > a.Area() || i.Area() > b.Area() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a clamped point is always inside a non-empty rectangle.
func TestClampProperty(t *testing.T) {
	f := func(x0, y0, dx, dy uint8, px, py int16) bool {
		r := Rt(int(x0), int(y0), int(x0)+int(dx%40)+1, int(y0)+int(dy%40)+1)
		return r.Clamp(Pt(int(px), int(py))).In(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
