// Package geom provides integer points and rectangles for the character-cell
// display model used throughout the help reproduction.
//
// Coordinates are in character cells, not pixels: x grows rightward, y grows
// downward. Rectangles are half-open, containing points p with
// Min.X <= p.X < Max.X and Min.Y <= p.Y < Max.Y, following the Plan 9
// graphics convention the original help inherited from its bitmap library.
package geom

import "fmt"

// Point is an x, y coordinate pair in character cells.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// In reports whether p is inside r.
func (p Point) In(r Rect) bool {
	return r.Min.X <= p.X && p.X < r.Max.X && r.Min.Y <= p.Y && p.Y < r.Max.Y
}

// Eq reports whether p and q are the same point.
func (p Point) Eq(q Point) bool { return p == q }

// Manhattan returns the L1 distance between p and q, the natural measure of
// mouse travel on a cell grid.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// String formats the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Rect is a half-open rectangle [Min, Max).
type Rect struct {
	Min, Max Point
}

// Rt is shorthand for Rect{Pt(x0,y0), Pt(x1,y1)}.
func Rt(x0, y0, x1, y1 int) Rect { return Rect{Point{x0, y0}, Point{x1, y1}} }

// Dx returns the width of r.
func (r Rect) Dx() int { return r.Max.X - r.Min.X }

// Dy returns the height of r.
func (r Rect) Dy() int { return r.Max.Y - r.Min.Y }

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Area returns the number of cells in r, zero if empty.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.Dx() * r.Dy()
}

// Canon returns a canonical version of r with Min <= Max on both axes.
func (r Rect) Canon() Rect {
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// Intersect returns the largest rectangle contained in both r and s; the
// result is empty when they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	if r.Min.X < s.Min.X {
		r.Min.X = s.Min.X
	}
	if r.Min.Y < s.Min.Y {
		r.Min.Y = s.Min.Y
	}
	if r.Max.X > s.Max.X {
		r.Max.X = s.Max.X
	}
	if r.Max.Y > s.Max.Y {
		r.Max.Y = s.Max.Y
	}
	if r.Empty() {
		return Rect{}
	}
	return r
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	if r.Min.X > s.Min.X {
		r.Min.X = s.Min.X
	}
	if r.Min.Y > s.Min.Y {
		r.Min.Y = s.Min.Y
	}
	if r.Max.X < s.Max.X {
		r.Max.X = s.Max.X
	}
	if r.Max.Y < s.Max.Y {
		r.Max.Y = s.Max.Y
	}
	return r
}

// Overlaps reports whether r and s share any cell.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// ContainsRect reports whether every point of s is inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.Min.X <= s.Min.X && s.Max.X <= r.Max.X &&
		r.Min.Y <= s.Min.Y && s.Max.Y <= r.Max.Y
}

// Translate returns r moved by the vector p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.Min.Add(p), r.Max.Add(p)}
}

// Inset returns r shrunk by n cells on every side. Negative n grows r.
func (r Rect) Inset(n int) Rect {
	r.Min.X += n
	r.Min.Y += n
	r.Max.X -= n
	r.Max.Y -= n
	return r
}

// Clamp returns the point inside r nearest to p. Clamp on an empty
// rectangle returns p unchanged.
func (r Rect) Clamp(p Point) Point {
	if r.Empty() {
		return p
	}
	if p.X < r.Min.X {
		p.X = r.Min.X
	}
	if p.X >= r.Max.X {
		p.X = r.Max.X - 1
	}
	if p.Y < r.Min.Y {
		p.Y = r.Min.Y
	}
	if p.Y >= r.Max.Y {
		p.Y = r.Max.Y - 1
	}
	return p
}

// String formats the rectangle as "(x0,y0)-(x1,y1)".
func (r Rect) String() string {
	return fmt.Sprintf("%v-%v", r.Min, r.Max)
}
