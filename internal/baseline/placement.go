package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/shell"
	"repro/internal/vfs"
)

// PlacementResult summarizes the screen after opening n windows into one
// column under one placement policy.
type PlacementResult struct {
	Model       string
	N           int // windows opened
	VisibleTags int // windows whose tag row is on screen
	UsableWins  int // windows showing at least a tag plus two body rows
	HiddenWins  int // windows entirely covered
	NewestSpan  int // rows the most recent window shows
}

// String renders one row.
func (r PlacementResult) String() string {
	return fmt.Sprintf("%-10s n=%2d visible-tags=%2d usable=%2d hidden=%2d newest-span=%2d",
		r.Model, r.N, r.VisibleTags, r.UsableWins, r.HiddenWins, r.NewestSpan)
}

// PlacementHelp opens n windows (each with a body of bodyLines lines)
// into one column of a fresh help instance and measures the outcome of
// the paper's heuristic.
func PlacementHelp(n, colHeight, bodyLines int) PlacementResult {
	fs := vfs.New()
	sh := shell.New(fs)
	h := core.New(fs, sh, 40, colHeight+1)
	body := ""
	for i := 0; i < bodyLines; i++ {
		body += "line\n"
	}
	var wins []*core.Window
	for i := 0; i < n; i++ {
		w := h.NewWindowIn(0)
		w.Body.SetString(body)
		if i == 0 {
			h.SetCurrent(w, core.SubBody)
		}
		wins = append(wins, w)
	}
	res := PlacementResult{Model: "help", N: n}
	for _, w := range wins {
		span := h.VisibleSpan(w)
		switch {
		case span >= 3:
			res.VisibleTags++
			res.UsableWins++
		case span >= 1:
			res.VisibleTags++
		default:
			res.HiddenWins++
		}
	}
	res.NewestSpan = h.VisibleSpan(wins[len(wins)-1])
	return res
}

// PlacementNaive simulates two naive policies with the same visibility
// rule help's screen uses (a window shows from its top to the top of the
// next displayed window below it):
//
//	"cascade":  each window two rows below the previous, wrapping — the
//	            classic overlapping-WS default.
//	"stack":    every window at the top of the column — newest wins.
func PlacementNaive(model string, n, colHeight int) PlacementResult {
	tops := make([]int, n)
	for i := range tops {
		switch model {
		case "cascade":
			tops[i] = (i * 2) % colHeight
		case "stack":
			tops[i] = 0
		default:
			panic("baseline: unknown placement model " + model)
		}
	}
	res := PlacementResult{Model: model, N: n}
	spans := naiveSpans(tops, colHeight)
	for _, s := range spans {
		switch {
		case s >= 3:
			res.VisibleTags++
			res.UsableWins++
		case s >= 1:
			res.VisibleTags++
		default:
			res.HiddenWins++
		}
	}
	res.NewestSpan = spans[n-1]
	return res
}

// naiveSpans computes each window's visible rows under last-on-top
// stacking: a window is clipped by any *later* window whose top is at or
// above its own rows.
func naiveSpans(tops []int, colHeight int) []int {
	n := len(tops)
	spans := make([]int, n)
	for i := 0; i < n; i++ {
		bottom := colHeight
		covered := false
		for j := i + 1; j < n; j++ {
			if tops[j] <= tops[i] {
				covered = true
				break
			}
			if tops[j] < bottom {
				bottom = tops[j]
			}
		}
		if covered {
			spans[i] = 0
			continue
		}
		spans[i] = bottom - tops[i]
	}
	return spans
}

// PlacementSweep runs the experiment for several window counts under all
// policies.
func PlacementSweep(ns []int, colHeight, bodyLines int) []PlacementResult {
	var out []PlacementResult
	for _, n := range ns {
		out = append(out, PlacementHelp(n, colHeight, bodyLines))
		out = append(out, PlacementNaive("cascade", n, colHeight))
		out = append(out, PlacementNaive("stack", n, colHeight))
	}
	return out
}
