// Package baseline provides the comparison systems for the evaluation.
//
// The paper's claims are comparative: help's interface does common tasks
// in fewer, cheaper gestures than a traditional window system ("there are
// no pop-up menus because the gesture required to make them appear is
// wasted"; "it should never be necessary or even worthwhile to retype text
// that is already on the screen") and its semantic browser beats textual
// search ("If instead I had run the regular Unix command grep n ... I
// would have had to wade through every occurrence of the letter n").
//
// Two baselines are modeled:
//
//   - PopupWS: a 1991-vintage window system with click-to-type focus and
//     pop-up menus. Its costs follow directly from the paper's critique:
//     every interaction starts with a focus click; editing commands live
//     in a pop-up menu (press + drag to the item + release); text on
//     screen cannot be reused as input, so file names are retyped.
//   - TypedShell: a keyboard shell (the "holdover from the 1970s"): every
//     command and argument is typed in full.
//
// Help's own numbers are measured, not modeled: the live session replays
// the task through the real event pipeline and reads the metrics counters.
package baseline

import (
	"fmt"
	"strings"
)

// Cost is the interaction cost of one task under one model.
type Cost struct {
	Model      string
	Task       string
	Presses    int // mouse button-down transitions
	Keystrokes int // runes typed
	MenuTrips  int // pop-up menu invocations (PopupWS only)
}

// Gestures returns the total gesture count: presses plus keystrokes, the
// scalar the tables rank by.
func (c Cost) Gestures() int { return c.Presses + c.Keystrokes }

// String renders one row.
func (c Cost) String() string {
	return fmt.Sprintf("%-12s %-28s presses=%2d keys=%3d menus=%d total=%3d",
		c.Model, c.Task, c.Presses, c.Keystrokes, c.MenuTrips, c.Gestures())
}

// Task describes one benchmark task in terms both baselines can price.
type Task struct {
	Name string
	// FileName is the path involved, when the task opens or names a file.
	FileName string
	// Command is the command line a shell user would type.
	Command string
	// SelectionSpan is the swept selection length in characters for
	// editing tasks.
	SelectionSpan int
}

// StandardTasks is the suite used by the interaction table: the
// operations the paper's example session is built from.
func StandardTasks() []Task {
	return []Task{
		{Name: "open-file-by-pointing", FileName: "/usr/rob/src/help/dat.h"},
		{Name: "open-file-at-line", FileName: "/usr/rob/src/help/text.c:32"},
		{Name: "run-command-on-screen", Command: "headers"},
		{Name: "cut-selection", SelectionSpan: 12},
		{Name: "paste-selection", SelectionSpan: 12},
		{Name: "save-file", FileName: "/usr/rob/src/help/exec.c"},
	}
}

// PopupWS prices a task on the traditional window system. Assumptions,
// each traceable to the paper's critique:
//
//   - click-to-type: +1 press to focus the target window before anything
//     else ("help is not a 'click-to-type' system because that click is
//     wasted").
//   - pop-up menus: each command is a menu trip costing a press, a drag,
//     and a release over the menu — priced as 2 presses' worth of
//     button work (button down + up are one press in our accounting, the
//     drag is free) plus the trip itself.
//   - no reuse of screen text: file names are typed in a dialog, plus
//     Return.
//   - selections still sweep with the mouse: 1 press.
func PopupWS(t Task) Cost {
	c := Cost{Model: "popup-ws", Task: t.Name}
	c.Presses++ // click-to-type focus
	switch {
	case t.FileName != "" && strings.HasPrefix(t.Name, "open"):
		c.MenuTrips++ // File -> Open...
		c.Presses++   // the menu press
		c.Keystrokes += len(t.FileName) + 1
		if strings.Contains(t.FileName, ":") {
			// No file:line convention: open the dialog, then invoke a
			// goto-line command and type the number again.
			c.MenuTrips++
			c.Presses++
		}
	case t.Name == "save-file":
		c.MenuTrips++
		c.Presses++
	case t.Command != "":
		// A shell window inside the WS: focus, then type the command.
		c.Keystrokes += len(t.Command) + 1
	case t.SelectionSpan > 0:
		c.Presses++   // sweep the selection
		c.MenuTrips++ // Edit -> Cut / Paste
		c.Presses++
	}
	return c
}

// TypedShell prices a task on a plain keyboard shell: everything typed,
// ed/vi-style addressing for the line case.
func TypedShell(t Task) Cost {
	c := Cost{Model: "typed-shell", Task: t.Name}
	switch {
	case t.FileName != "":
		cmd := "vi " + t.FileName
		if i := strings.IndexByte(t.FileName, ':'); i >= 0 {
			// vi +32 file
			name, line := t.FileName[:i], t.FileName[i+1:]
			cmd = "vi +" + line + " " + name
		}
		if t.Name == "save-file" {
			cmd = ":w" // inside the editor
		}
		c.Keystrokes += len(cmd) + 1
	case t.Command != "":
		c.Keystrokes += len(t.Command) + 1
	case t.SelectionSpan > 0:
		// Editor keystrokes to mark and operate: roughly one per
		// character moved over, plus the operator.
		c.Keystrokes += t.SelectionSpan + 2
	}
	return c
}

// HelpCost prices a task under help's rules without running it — the
// analytic counterpart used in the table alongside measured values:
// pointing is one press, executing a visible word is one press, chorded
// cut/paste ride on the selection's press.
func HelpCost(t Task) Cost {
	c := Cost{Model: "help", Task: t.Name}
	switch {
	case strings.HasPrefix(t.Name, "open"):
		c.Presses = 2 // point at the name; middle-click Open
	case t.Command != "":
		c.Presses = 1 // middle-click the word on screen
	case t.Name == "cut-selection":
		c.Presses = 2 // sweep (1) + middle chord (1)
	case t.Name == "paste-selection":
		c.Presses = 2 // click the destination (1) + right chord (1)
	case t.Name == "save-file":
		c.Presses = 1 // middle-click Put! in the tag
	}
	return c
}

// Table prices the whole suite under all three models, help first.
func Table(tasks []Task) []Cost {
	var out []Cost
	for _, t := range tasks {
		out = append(out, HelpCost(t), PopupWS(t), TypedShell(t))
	}
	return out
}

// Summary totals gesture counts per model.
func Summary(costs []Cost) map[string]int {
	sums := map[string]int{}
	for _, c := range costs {
		sums[c.Model] += c.Gestures()
	}
	return sums
}

// HelpCostNoDefaults is the ablation of the paper's automation and
// defaults rules: help's mechanics with null-selection expansion,
// directory-context prepending, and file:line addressing all turned off.
// Pointing still works (a sweep is one press in our accounting, so the
// rule of brevity's chords don't change press counts), but everything the
// defaults used to fill in must be typed:
//
//   - a relative name on screen no longer resolves against the window's
//     tag, so the directory prefix is typed;
//   - name:line no longer positions the window, so a goto command is
//     executed and the line number typed again;
//   - a bare command name no longer finds the tool directory, so its
//     path is typed.
//
// The measured gap between this row and "help" is the value of the two
// rules ("minor changes to the heuristics often result in dramatic
// improvements to the feel of the system as a whole").
func HelpCostNoDefaults(t Task) Cost {
	c := HelpCost(t)
	c.Model = "help-noauto"
	switch {
	case strings.HasPrefix(t.Name, "open") && t.FileName != "":
		name := t.FileName
		if i := strings.IndexByte(name, ':'); i >= 0 {
			// Open, then execute a goto and retype the line number.
			c.Presses++
			c.Keystrokes += len(name[i+1:]) + 1
			name = name[:i]
		}
		// The directory context is gone: type the prefix.
		if i := strings.LastIndexByte(name, '/'); i > 0 {
			c.Keystrokes += i + 1
		}
	case t.Command != "":
		// The tool directory context is gone: type the path prefix the
		// stf window used to supply (e.g. "/help/mail/").
		c.Keystrokes += len("/help/mail/")
	}
	return c
}
