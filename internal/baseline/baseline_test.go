package baseline

import (
	"strings"
	"testing"

	"repro/internal/world"
)

func TestHelpBeatsBaselinesPerTask(t *testing.T) {
	for _, task := range StandardTasks() {
		h := HelpCost(task)
		p := PopupWS(task)
		s := TypedShell(task)
		if h.Gestures() > p.Gestures() {
			t.Errorf("%s: help %d gestures vs popup %d", task.Name, h.Gestures(), p.Gestures())
		}
		if h.Gestures() > s.Gestures() {
			t.Errorf("%s: help %d gestures vs shell %d", task.Name, h.Gestures(), s.Gestures())
		}
	}
}

func TestHelpNeverTypes(t *testing.T) {
	// The rule of no-retyping: help's costs for the suite involve no
	// keystrokes at all (every task operates on text already on screen).
	for _, task := range StandardTasks() {
		if HelpCost(task).Keystrokes != 0 {
			t.Errorf("%s: help model types", task.Name)
		}
	}
}

func TestPopupAssumptions(t *testing.T) {
	open := PopupWS(Task{Name: "open-file-by-pointing", FileName: "/a/b.c"})
	if open.MenuTrips < 1 {
		t.Error("popup open should use a menu")
	}
	if open.Keystrokes == 0 {
		t.Error("popup open retypes the file name")
	}
	// file:line costs an extra menu trip.
	atLine := PopupWS(Task{Name: "open-file-at-line", FileName: "/a/b.c:32"})
	if atLine.MenuTrips <= open.MenuTrips-0 && atLine.MenuTrips < 2 {
		t.Errorf("popup open-at-line menus = %d, want >= 2", atLine.MenuTrips)
	}
	cut := PopupWS(Task{Name: "cut-selection", SelectionSpan: 10})
	if cut.MenuTrips != 1 {
		t.Errorf("popup cut menus = %d", cut.MenuTrips)
	}
}

func TestTypedShellCosts(t *testing.T) {
	c := TypedShell(Task{Name: "run-command-on-screen", Command: "headers"})
	if c.Keystrokes != len("headers")+1 {
		t.Errorf("keystrokes = %d", c.Keystrokes)
	}
	atLine := TypedShell(Task{Name: "open-file-at-line", FileName: "/a/b.c:32"})
	if atLine.Keystrokes != len("vi +32 /a/b.c")+1 {
		t.Errorf("open-at-line keystrokes = %d", atLine.Keystrokes)
	}
}

func TestTableAndSummary(t *testing.T) {
	costs := Table(StandardTasks())
	if len(costs) != 3*len(StandardTasks()) {
		t.Fatalf("rows = %d", len(costs))
	}
	sums := Summary(costs)
	if !(sums["help"] < sums["popup-ws"] && sums["help"] < sums["typed-shell"]) {
		t.Errorf("summary = %v, help should win overall", sums)
	}
	// Rows render without panicking and carry the model names.
	for _, c := range costs {
		if !strings.Contains(c.String(), c.Model) {
			t.Errorf("row %q missing model", c.String())
		}
	}
}

func TestUsesVsGrepOnPaperTree(t *testing.T) {
	w, err := world.Build(80, 24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := UsesVsGrep(w.FS, w.Shell, world.SrcDir, "n")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's exact numbers: uses finds 4 true references to the
	// global n; grep matches every occurrence of the letter n.
	if res.UsesLines != 4 {
		t.Errorf("uses = %d, want 4", res.UsesLines)
	}
	if res.GrepLines <= 4*4 {
		t.Errorf("grep = %d lines, expected to dwarf uses' 4", res.GrepLines)
	}
	if p := res.GrepPrecision(); p > 0.25 {
		t.Errorf("grep precision = %.2f, expected far below 1", p)
	}
}

func TestUsesVsGrepUnknownIdent(t *testing.T) {
	w, err := world.Build(80, 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UsesVsGrep(w.FS, w.Shell, world.SrcDir, "zzznotthere"); err == nil {
		t.Error("unknown identifier should error")
	}
}

func TestUsesVsGrepPreciseIdent(t *testing.T) {
	// For a long, distinctive identifier grep does fine — the contrast is
	// the point: short names are where semantics beat text.
	w, err := world.Build(80, 24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := UsesVsGrep(w.FS, w.Shell, world.SrcDir, "textinsert")
	if err != nil {
		t.Fatal(err)
	}
	if res.GrepPrecision() < 0.9 {
		t.Errorf("textinsert grep precision = %.2f, expected near 1", res.GrepPrecision())
	}
}

func TestAblationNoDefaultsCostsMore(t *testing.T) {
	for _, task := range StandardTasks() {
		with := HelpCost(task)
		without := HelpCostNoDefaults(task)
		if without.Gestures() < with.Gestures() {
			t.Errorf("%s: ablation cheaper than full help (%d < %d)",
				task.Name, without.Gestures(), with.Gestures())
		}
		switch task.Name {
		case "open-file-by-pointing", "open-file-at-line", "run-command-on-screen":
			if without.Keystrokes == 0 {
				t.Errorf("%s: ablation should require typing", task.Name)
			}
		}
	}
	// The at-line task pays for the lost file:line integration.
	atLine := HelpCostNoDefaults(Task{Name: "open-file-at-line", FileName: "/a/b/c.c:32"})
	if atLine.Presses != 3 {
		t.Errorf("at-line presses = %d, want 3 (extra goto)", atLine.Presses)
	}
}
