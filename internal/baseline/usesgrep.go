package baseline

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/shell"
	"repro/internal/vfs"
)

// UsesGrepResult compares the C browser's uses query against grep for one
// identifier over one source tree — Table T3, reproducing the paper's
// "grep n /usr/rob/src/help/*.c ... every occurrence of the letter n".
type UsesGrepResult struct {
	Ident     string
	UsesLines int // coordinates the browser reports (all true references)
	GrepLines int // lines grep reports
	// GrepTruePositive counts grep lines that contain a true reference,
	// so precision = GrepTruePositive / GrepLines; uses is exact by
	// construction.
	GrepTruePositive int
}

// GrepPrecision returns grep's precision for the identifier.
func (r UsesGrepResult) GrepPrecision() float64 {
	if r.GrepLines == 0 {
		return 1
	}
	return float64(r.GrepTruePositive) / float64(r.GrepLines)
}

// String renders one comparison row.
func (r UsesGrepResult) String() string {
	return fmt.Sprintf("ident=%-8s uses=%3d grep=%4d grep-precision=%.2f",
		r.Ident, r.UsesLines, r.GrepLines, r.GrepPrecision())
}

// UsesVsGrep runs both tools over the .c and .h files of dir in fs for
// the given identifier.
func UsesVsGrep(fs *vfs.FS, sh *shell.Shell, dir, ident string) (UsesGrepResult, error) {
	res := UsesGrepResult{Ident: ident}

	// Collect the sources.
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return res, err
	}
	var files []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name, ".c") || strings.HasSuffix(e.Name, ".h") {
			files = append(files, e.Name)
		}
	}

	// The browser's answer.
	b := cc.NewBrowser()
	if err := parseRelative(b, fs, dir, files); err != nil {
		return res, err
	}
	sym := b.Lookup(ident)
	if sym == nil {
		return res, fmt.Errorf("baseline: no symbol %q", ident)
	}
	refs := b.Uses(sym, nil)
	trueCoords := map[string]bool{}
	for _, r := range refs {
		trueCoords[r.Coord.String()] = true
	}
	res.UsesLines = len(trueCoords)

	// grep's answer: every line containing the identifier's letters.
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = dir
	args := append([]string{"grep", "-n", ident}, files...)
	sh.RunCommand(ctx, args)
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if out.Len() == 0 {
		lines = nil
	}
	res.GrepLines = len(lines)
	for _, line := range lines {
		// grep -n output: file:line:text.
		parts := strings.SplitN(line, ":", 3)
		if len(parts) < 2 {
			continue
		}
		if trueCoords[parts[0]+":"+parts[1]] {
			res.GrepTruePositive++
		}
	}
	return res, nil
}

// parseRelative parses files (relative names) under dir, keeping the
// relative spelling so coordinates match grep's output.
func parseRelative(b *cc.Browser, fs *vfs.FS, dir string, files []string) error {
	ordered := append([]string(nil), files...)
	// Headers first so typedefs are known.
	var hs, cs []string
	for _, f := range ordered {
		if strings.HasSuffix(f, ".h") {
			hs = append(hs, f)
		} else {
			cs = append(cs, f)
		}
	}
	for _, f := range append(hs, cs...) {
		data, err := fs.ReadFile(vfs.Clean(dir + "/" + f))
		if err != nil {
			return err
		}
		if err := b.ParseFile(f, string(data)); err != nil {
			return err
		}
	}
	return nil
}
