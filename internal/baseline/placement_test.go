package baseline

import "testing"

func TestPlacementHelpKeepsTagsVisible(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		res := PlacementHelp(n, 48, 30)
		// The paper's contract: "Help attempts to make at least the tag
		// of a window fully visible; if this is impossible, it covers the
		// window completely." So every non-hidden window has a tag row,
		// and the newest window always gets a useful span.
		if res.VisibleTags+res.HiddenWins != n {
			t.Errorf("n=%d: tags=%d hidden=%d don't sum", n, res.VisibleTags, res.HiddenWins)
		}
		if res.NewestSpan < 3 {
			t.Errorf("n=%d: newest window span = %d, want >= 3", n, res.NewestSpan)
		}
	}
}

func TestPlacementStackDegenerates(t *testing.T) {
	res := PlacementNaive("stack", 8, 48)
	if res.VisibleTags != 1 {
		t.Errorf("stack visible tags = %d, want 1 (only the newest)", res.VisibleTags)
	}
	if res.HiddenWins != 7 {
		t.Errorf("stack hidden = %d", res.HiddenWins)
	}
}

func TestPlacementCascadeWrapsAndCovers(t *testing.T) {
	// Once the cascade wraps (n*2 > colHeight), earlier windows get
	// covered; with a tall column and few windows everything shows.
	small := PlacementNaive("cascade", 4, 48)
	if small.VisibleTags != 4 {
		t.Errorf("small cascade tags = %d", small.VisibleTags)
	}
	big := PlacementNaive("cascade", 30, 48)
	if big.HiddenWins == 0 {
		t.Error("wrapped cascade should cover windows")
	}
}

func TestPlacementHelpBeatsNaiveAtScale(t *testing.T) {
	n, colH := 12, 48
	help := PlacementHelp(n, colH, 30)
	stack := PlacementNaive("stack", n, colH)
	if help.VisibleTags <= stack.VisibleTags {
		t.Errorf("help tags=%d vs stack tags=%d", help.VisibleTags, stack.VisibleTags)
	}
}

func TestPlacementSweepShape(t *testing.T) {
	rows := PlacementSweep([]int{2, 4}, 48, 30)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	models := map[string]int{}
	for _, r := range rows {
		models[r.Model]++
		if r.String() == "" {
			t.Error("empty row rendering")
		}
	}
	if models["help"] != 2 || models["cascade"] != 2 || models["stack"] != 2 {
		t.Errorf("models = %v", models)
	}
}

func TestPlacementNaiveUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown model should panic")
		}
	}()
	PlacementNaive("bogus", 2, 10)
}
