package shell

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vfs"
)

// expandWords expands each word and concatenates the resulting fields.
func (sh *Shell) expandWords(ctx *Context, ws []word) ([]string, error) {
	var out []string
	for _, w := range ws {
		fields, err := sh.expandWord(ctx, w)
		if err != nil {
			return nil, err
		}
		out = append(out, fields...)
	}
	return out, nil
}

// expandWordsNoGlob expands words without filename generation — the form
// rc uses for patterns (switch arms and the ~ builtin), where * must stay
// a metacharacter for matching rather than expand against the namespace.
func (sh *Shell) expandWordsNoGlob(ctx *Context, ws []word) ([]string, error) {
	var out []string
	for _, w := range ws {
		fields, err := sh.expandWordNoGlob(ctx, w)
		if err != nil {
			return nil, err
		}
		out = append(out, fields...)
	}
	return out, nil
}

func (sh *Shell) expandWordNoGlob(ctx *Context, w word) ([]string, error) {
	fields, err := sh.expandFields(ctx, w)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		out = append(out, f.s)
	}
	return out, nil
}

// field is one expanded string plus whether glob metacharacters in it are
// live (they are dead in quoted segments).
type field struct {
	s    string
	glob bool
}

// expandWord expands one word to a list of fields following rc's rules:
// each segment yields a list; adjacent segments concatenate with pairwise
// distribution; unquoted fields containing metacharacters glob against
// the namespace.
func (sh *Shell) expandWord(ctx *Context, w word) ([]string, error) {
	fields, err := sh.expandFields(ctx, w)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, f := range fields {
		if f.glob && strings.ContainsAny(f.s, "*?[") {
			matches := sh.globField(ctx, f.s)
			if len(matches) > 0 {
				out = append(out, matches...)
				continue
			}
		}
		out = append(out, f.s)
	}
	return out, nil
}

// maxExpansion bounds the field count one word may expand to:
// concatenating list variables distributes (cartesian product), so a
// pathological word like $x$x$x$x with a long list would otherwise grow
// exponentially.
const maxExpansion = 4096

// expandFields performs segment expansion and distribution, deferring
// glob expansion to the caller.
func (sh *Shell) expandFields(ctx *Context, w word) ([]field, error) {
	fields := []field{{s: "", glob: false}}
	started := false
	for _, s := range w.segs {
		var parts []field
		switch s.kind {
		case segLit:
			parts = []field{{s: s.text, glob: true}}
		case segQuote:
			parts = []field{{s: s.text, glob: false}}
		case segVar:
			for _, v := range sh.varValue(ctx, s.text) {
				parts = append(parts, field{s: v, glob: false})
			}
		case segVarCnt:
			parts = []field{{s: strconv.Itoa(len(sh.varValue(ctx, s.text))), glob: false}}
		case segVarJoin:
			parts = []field{{s: strings.Join(sh.varValue(ctx, s.text), " "), glob: false}}
		case segSub:
			out, err := sh.captureSub(ctx, s.sub)
			if err != nil {
				return nil, err
			}
			for _, v := range strings.Fields(out) {
				parts = append(parts, field{s: v, glob: false})
			}
		default:
			return nil, fmt.Errorf("internal: bad segment kind %d", s.kind)
		}
		fields = distribute(fields, parts, started)
		if len(fields) > maxExpansion {
			return nil, fmt.Errorf("expansion too large (> %d fields)", maxExpansion)
		}
		started = true
	}
	return fields, nil
}

// distribute concatenates two field lists pairwise, rc-style: the
// cartesian product when lengths differ from one, with special handling
// for empty lists (an empty list annihilates the word, as in rc).
func distribute(a []field, b []field, started bool) []field {
	if !started {
		return b
	}
	if len(b) == 0 {
		// Concatenation with an empty list drops the word entirely.
		return nil
	}
	if len(a) == 0 {
		return nil
	}
	out := make([]field, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			out = append(out, field{s: x.s + y.s, glob: x.glob || y.glob})
		}
	}
	return out
}

// varValue resolves a variable, including the positional parameters.
func (sh *Shell) varValue(ctx *Context, name string) []string {
	if name == "*" {
		return ctx.Vars["*"]
	}
	if n, err := strconv.Atoi(name); err == nil && n > 0 {
		args := ctx.Vars["*"]
		if n <= len(args) {
			return []string{args[n-1]}
		}
		return nil
	}
	return ctx.Vars[name]
}

// captureSub runs a command substitution and returns its standard output.
func (sh *Shell) captureSub(ctx *Context, n node) (string, error) {
	var buf bytes.Buffer
	sub := *ctx
	sub.Stdout = &buf
	sh.exec(&sub, n)
	return buf.String(), nil
}

// globField expands glob metacharacters against the namespace, resolving
// relative patterns against the context directory but reporting them in
// the form they were written.
func (sh *Shell) globField(ctx *Context, pat string) []string {
	full := pat
	rel := false
	if !strings.HasPrefix(pat, "/") {
		full = vfs.Clean(ctx.Dir + "/" + pat)
		rel = true
	}
	matches := ctx.FS.Glob(full)
	if !rel {
		return matches
	}
	prefix := vfs.Clean(ctx.Dir)
	if prefix != "/" {
		prefix += "/"
	} else {
		prefix = "/"
	}
	out := make([]string, 0, len(matches))
	for _, m := range matches {
		out = append(out, strings.TrimPrefix(m, prefix))
	}
	return out
}

// ExpandGlobArg expands glob metacharacters in s against the namespace
// relative to ctx.Dir, for callers (like help's command execution) that
// have an argv rather than a script. It returns s itself when s has no
// metacharacters or nothing matches.
func (sh *Shell) ExpandGlobArg(ctx *Context, s string) []string {
	if !strings.ContainsAny(s, "*?[") {
		return []string{s}
	}
	if m := sh.globField(ctx, s); len(m) > 0 {
		return m
	}
	return []string{s}
}
