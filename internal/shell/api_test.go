package shell

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// Direct exercise of the exported API surface used by other packages.

func TestContextAccessors(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	ctx := sh.NewContext(&bytes.Buffer{}, &bytes.Buffer{})
	ctx.Set("list", []string{"a", "b"})
	if got := ctx.Get("list"); len(got) != 2 || got[0] != "a" {
		t.Errorf("Get = %v", got)
	}
	if got := ctx.Getenv("list"); got != "a b" {
		t.Errorf("Getenv = %q", got)
	}
	if ctx.Get("missing") != nil {
		t.Error("missing var should be nil")
	}
	// Set on a nil map allocates.
	bare := &Context{}
	bare.Set("x", []string{"1"})
	if bare.Getenv("x") != "1" {
		t.Error("Set on zero Context failed")
	}
	if sh.FS() != fs {
		t.Error("FS accessor mismatch")
	}
}

func TestRunCommandDirect(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.RunCommand(ctx, []string{"echo", "direct"}); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "direct\n" {
		t.Errorf("out = %q", out.String())
	}
	if status := sh.RunCommand(ctx, nil); status != 0 {
		t.Error("empty argv should be a no-op success")
	}
}

func TestIsProgram(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/bin")
	sh := New(fs)
	sh.RegisterProgram("/bin/tool", func(*Context, []string) int { return 0 })
	if !sh.IsProgram("/bin/tool") || !sh.IsProgram("/bin/../bin/tool") {
		t.Error("IsProgram should see the registration (cleaned)")
	}
	if sh.IsProgram("/bin/other") {
		t.Error("IsProgram false positive")
	}
}

func TestExpandGlobArg(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/src")
	fs.WriteFile("/src/a.c", nil)
	fs.WriteFile("/src/b.c", nil)
	sh := New(fs)
	ctx := sh.NewContext(&bytes.Buffer{}, &bytes.Buffer{})
	ctx.Dir = "/src"
	if got := sh.ExpandGlobArg(ctx, "*.c"); len(got) != 2 {
		t.Errorf("glob = %v", got)
	}
	if got := sh.ExpandGlobArg(ctx, "plain"); len(got) != 1 || got[0] != "plain" {
		t.Errorf("literal = %v", got)
	}
	if got := sh.ExpandGlobArg(ctx, "*.zz"); len(got) != 1 || got[0] != "*.zz" {
		t.Errorf("no-match = %v", got)
	}
}

func TestRedirectionErrors(t *testing.T) {
	for _, script := range []string{
		"echo x > /no/dir/f",  // create into missing dir
		"echo x >> /no/dir/f", // append into missing dir
		"cat < /ghost",        // read missing
		"echo x > /d",         // write onto a directory
	} {
		fs := vfs.New()
		fs.MkdirAll("/d")
		sh := New(fs)
		sh.Register("cat", func(ctx *Context, args []string) int { return 0 })
		var out bytes.Buffer
		ctx := sh.NewContext(&out, &out)
		if status := sh.Run(ctx, script); status == 0 {
			t.Errorf("%q should fail: %q", script, out.String())
		}
	}
}

func TestRelativeRedirection(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/work")
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = "/work"
	sh.Run(ctx, "echo rel > out.txt")
	data, err := fs.ReadFile("/work/out.txt")
	if err != nil || string(data) != "rel\n" {
		t.Errorf("relative redirect: %q err=%v", data, err)
	}
}

func TestMatchClassRanges(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"[a-z]", "m", true},
		{"[a-z]", "M", false},
		{"[^a-z]", "M", true},
		{"[!0-9]x", "ax", true},
		{"[", "x", false}, // unterminated class never matches
		{"a[b", "ab", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pat, c.s); got != c.want {
			t.Errorf("match(%q,%q) = %v", c.pat, c.s, got)
		}
	}
}

func TestTildeNoGlob(t *testing.T) {
	// The ~ builtin's patterns must not expand against the namespace,
	// even when files match.
	fs := vfs.New()
	fs.MkdirAll("/x")
	fs.WriteFile("/hit", nil) // "h*" would glob to /hit from /
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "if(~ hello h*) echo matched"); status != 0 ||
		out.String() != "matched\n" {
		t.Errorf("status=%d out=%q", status, out.String())
	}
}

func TestForEmptyList(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "for(i in) echo $i\necho done"); status != 0 {
		t.Fatalf("status=%d out=%q", status, out.String())
	}
	if out.String() != "done\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestNotOfBlock(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "! { false }"); status != 0 {
		t.Errorf("! of failing block should succeed: %d", status)
	}
}

func TestExitBuiltin(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "exit"); status != 0 {
		t.Errorf("bare exit status = %d", status)
	}
	if status := sh.Run(ctx, "exit failed"); status == 0 {
		t.Error("exit with message should be nonzero")
	}
}

func TestBindBuiltinErrors(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "bind /only"); status == 0 {
		t.Error("bind with one arg should fail")
	}
	if status := sh.Run(ctx, "bind /ghost /mnt"); status == 0 ||
		!strings.Contains(out.String(), "bind:") {
		t.Errorf("bind of missing source: %q", out.String())
	}
}

func TestWordRawForms(t *testing.T) {
	// raw() is used to recognize keywords; cover the variable spellings.
	prog, err := parse("fn f$x { echo }")
	// $ in a function name is unusual but raw() must render it.
	if err != nil {
		t.Skip("parser rejects; fine")
	}
	_ = prog
}

func TestCommandAfterAssignmentsRuns(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.Run(ctx, "a=1 b=2 echo $a$b")
	if out.String() != "12\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestExpansionExplosionBounded(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	// 20^4 = 160000 fields would explode; the shell must refuse.
	script := "x=(a b c d e f g h i j k l m n o p q r s t)\necho $x$x$x$x"
	if status := sh.Run(ctx, script); status == 0 {
		t.Errorf("oversized expansion should fail: %q", out.String())
	}
	if !strings.Contains(out.String(), "too large") {
		t.Errorf("diagnostic missing: %q", out.String())
	}
}
