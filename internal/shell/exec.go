package shell

import (
	"bytes"
	"strings"

	"repro/internal/vfs"
)

// maxLoopIterations bounds while loops: the interpreter is single-
// threaded inside help's event loop, so a runaway script would hang the
// screen. Real rc doesn't cap; a diagnostic beats a frozen UI here.
const maxLoopIterations = 100000

// exec evaluates a parsed node in ctx and returns its exit status.
func (sh *Shell) exec(ctx *Context, n node) int {
	// One kill check at the top covers every construct: loops, pipelines,
	// sequences, and nested scripts all re-enter exec per node, so a
	// killed command unwinds at the next command boundary.
	if ctx.Killed() {
		return 1
	}
	switch n := n.(type) {
	case seqNode:
		status := 0
		for _, c := range n.cmds {
			// "if not" runs only when the directly preceding if's
			// condition failed; any other command clears that state.
			if inn, ok := c.(ifNotNode); ok {
				if ctx.lastIfFailed {
					status = sh.exec(ctx, inn.body)
					ctx.Set("status", []string{statusString(status)})
				}
				ctx.lastIfFailed = false
				continue
			}
			status = sh.exec(ctx, c)
			if _, isIf := c.(ifNode); !isIf {
				ctx.lastIfFailed = false
			}
			ctx.Set("status", []string{statusString(status)})
		}
		return status

	case pipeNode:
		return sh.execPipe(ctx, n)

	case cmdNode:
		return sh.execCmd(ctx, n)

	case blockNode:
		restore, status := sh.applyRedirs(ctx, n.redirs)
		if status != 0 {
			return status
		}
		defer restore()
		return sh.exec(ctx, n.body)

	case assignNode:
		vals, err := sh.expandWords(ctx, n.values)
		if err != nil {
			ctx.Errorf("rc: %v", err)
			return 1
		}
		ctx.Set(n.name, vals)
		return 0

	case ifNode:
		if sh.exec(ctx, n.cond) == 0 {
			ctx.lastIfFailed = false
			return sh.exec(ctx, n.body)
		}
		ctx.lastIfFailed = true
		return 0

	case ifNotNode:
		// Reached only when not directly after an if (the seq handler
		// intercepts the paired case): nothing to do.
		return 0

	case whileNode:
		status := 0
		for i := 0; ; i++ {
			if i >= maxLoopIterations {
				ctx.Errorf("rc: while: loop exceeded %d iterations", maxLoopIterations)
				return 1
			}
			if sh.exec(ctx, n.cond) != 0 {
				return status
			}
			status = sh.exec(ctx, n.body)
		}

	case notNode:
		if sh.exec(ctx, n.cmd) == 0 {
			return 1
		}
		return 0

	case forNode:
		vals, err := sh.expandWords(ctx, n.values)
		if err != nil {
			ctx.Errorf("rc: %v", err)
			return 1
		}
		status := 0
		for _, v := range vals {
			ctx.Set(n.varName, []string{v})
			status = sh.exec(ctx, n.body)
		}
		return status

	case fnNode:
		sh.fnMu.Lock()
		sh.funcs[n.name] = n.body
		sh.fnMu.Unlock()
		return 0

	case bgNode:
		if ctx.Spawn == nil {
			// No process registry attached (profiles, nested tools run
			// inside the event loop): & degrades to synchronous execution.
			return sh.exec(ctx, n.cmd)
		}
		child := ctx.Clone()
		ctx.Spawn(n.label, child, func(c *Context) int { return sh.exec(c, n.cmd) })
		return 0

	case switchNode:
		subjects, err := sh.expandWordNoGlob(ctx, n.subject)
		if err != nil {
			ctx.Errorf("rc: %v", err)
			return 1
		}
		subject := strings.Join(subjects, " ")
		for _, arm := range n.cases {
			pats, err := sh.expandWordsNoGlob(ctx, arm.patterns)
			if err != nil {
				ctx.Errorf("rc: %v", err)
				return 1
			}
			for _, pat := range pats {
				if matchPattern(pat, subject) {
					return sh.exec(ctx, arm.body)
				}
			}
		}
		return 0

	case nil:
		return 0
	}
	ctx.Errorf("rc: internal: unknown node %T", n)
	return 1
}

func statusString(code int) string {
	if code == 0 {
		return ""
	}
	return "error"
}

// execPipe runs pipeline stages sequentially with buffered intermediates.
func (sh *Shell) execPipe(ctx *Context, p pipeNode) int {
	in := ctx.Stdin
	status := 0
	for i, stage := range p.stages {
		stageCtx := *ctx
		stageCtx.Stdin = in
		if i < len(p.stages)-1 {
			var buf bytes.Buffer
			stageCtx.Stdout = &buf
			status = sh.exec(&stageCtx, stage)
			in = bytes.NewReader(buf.Bytes())
		} else {
			status = sh.exec(&stageCtx, stage)
		}
	}
	return status
}

// execCmd expands and runs a simple command with its redirections.
func (sh *Shell) execCmd(ctx *Context, c cmdNode) int {
	var args []string
	var err error
	// The ~ builtin takes patterns, not file lists: suppress filename
	// generation for its arguments, as rc's grammar does.
	if len(c.words) > 0 && c.words[0].raw() == "~" {
		args, err = sh.expandWordsNoGlob(ctx, c.words)
	} else {
		args, err = sh.expandWords(ctx, c.words)
	}
	if err != nil {
		ctx.Errorf("rc: %v", err)
		return 1
	}
	restore, status := sh.applyRedirs(ctx, c.redirs)
	if status != 0 {
		return status
	}
	defer restore()
	if len(args) == 0 {
		return 0
	}
	return sh.invoke(ctx, args)
}

// applyRedirs rewires the context streams per the redirection list and
// returns a function restoring them (closing any opened files).
func (sh *Shell) applyRedirs(ctx *Context, redirs []redir) (restore func(), status int) {
	savedIn, savedOut := ctx.Stdin, ctx.Stdout
	var opened []*vfs.File
	restore = func() {
		for _, f := range opened {
			f.Close()
		}
		ctx.Stdin, ctx.Stdout = savedIn, savedOut
	}
	for _, r := range redirs {
		targets, err := sh.expandWord(ctx, r.target)
		if err != nil || len(targets) != 1 {
			ctx.Errorf("rc: bad redirection target")
			restore()
			return func() {}, 1
		}
		path := targets[0]
		if !strings.HasPrefix(path, "/") {
			path = vfs.Clean(ctx.Dir + "/" + path)
		}
		switch r.kind {
		case ">":
			f, err := ctx.FS.Create(path)
			if err != nil {
				ctx.Errorf("rc: %v", err)
				restore()
				return func() {}, 1
			}
			opened = append(opened, f)
			ctx.Stdout = f
		case ">>":
			if !ctx.FS.Exists(path) {
				if err := ctx.FS.WriteFile(path, nil); err != nil {
					ctx.Errorf("rc: %v", err)
					restore()
					return func() {}, 1
				}
			}
			f, err := ctx.FS.Open(path, vfs.OWRITE|vfs.OAPPEND)
			if err != nil {
				ctx.Errorf("rc: %v", err)
				restore()
				return func() {}, 1
			}
			opened = append(opened, f)
			ctx.Stdout = f
		case "<":
			f, err := ctx.FS.Open(path, vfs.OREAD)
			if err != nil {
				ctx.Errorf("rc: %v", err)
				restore()
				return func() {}, 1
			}
			opened = append(opened, f)
			ctx.Stdin = f
		}
	}
	return restore, 0
}
