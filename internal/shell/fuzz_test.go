package shell

import (
	"bytes"
	"testing"

	"repro/internal/vfs"
)

// FuzzParse throws arbitrary bytes at the rc parser and, when parsing
// succeeds, executes the program. Neither step may panic, and execution
// must terminate (the grammar has no unbounded loops).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"echo hello",
		"x=`{echo a b}\necho $x",
		"if(~ $x a*) echo y",
		"for(i in 1 2 3) echo $i",
		"fn g { echo $1 }\ng z",
		"switch(a){\ncase a\necho hit\n}",
		"{ echo a; echo b } | cat > /tmp/f",
		"echo 'quoted '' text' #comment",
		"echo $#list $\"list pre$list^post",
		"! true; false",
		"eval echo nested",
		"a=1 b=(x y) c=`{echo z} run $a $b $c",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := parse(src)
		if err != nil {
			return
		}
		fs := vfs.New()
		fs.MkdirAll("/tmp")
		sh := New(fs)
		sh.Register("cat", func(ctx *Context, args []string) int { return 0 })
		sh.Register("run", func(ctx *Context, args []string) int { return 0 })
		var out bytes.Buffer
		ctx := sh.NewContext(&out, &out)
		sh.exec(ctx, prog)
	})
}
