// Package shell implements the rc-subset command interpreter the help
// reproduction uses to run tools.
//
// The original help ran on Plan 9, whose shell is rc [Duff90]; the paper's
// applications — the C browser's decl, the debugger's stack, the mail
// commands — are "brief shell scripts, about a dozen lines each". This
// package interprets enough of rc to run those scripts against the vfs
// namespace:
//
//   - simple commands, pipelines, sequences (; and newline), blocks { }
//   - redirections  > file,  >> file,  < file
//   - variables (rc variables are lists): x=value, y=(a b c), $x, $"x, $#x
//   - command substitution `{ ... } splitting output on whitespace
//   - single-quoted strings with ” escaping, free concatenation inside a
//     word with rc's list-distribution rule
//   - glob expansion (*.c) against the vfs
//   - if(list) cmd, if not cmd, ! cmd, ~ subject patterns...
//   - for(v in list) cmd, while(list) cmd, switch(word){ case pat... }
//   - fn name { body } function definitions
//   - eval, echo, and a registry of built-in utilities (the userland)
//
// Commands resolve the way the paper requires: a name containing a slash
// runs the script or registered program at that path (relative to the
// context directory); otherwise functions, then builtins, then the search
// path ("if that command cannot be found locally, it will be searched for
// in the standard directory of program binaries").
//
// Pipelines run stages sequentially with buffered intermediate data. All
// tools here are deterministic transformers, so sequential semantics are
// observationally identical to concurrent pipes and keep the interpreter
// single-threaded like the rest of the reproduction.
package shell

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vfs"
)

// KillFlag is a cooperative cancellation flag shared between a running
// command and whoever launched it. The interpreter polls it at the top of
// every node evaluation, so setting it stops a script at the next command
// boundary — loops, pipelines, and nested scripts all observe it.
type KillFlag struct{ v atomic.Bool }

// Kill requests that the command carrying this flag stop.
func (k *KillFlag) Kill() { k.v.Store(true) }

// Killed reports whether Kill has been called.
func (k *KillFlag) Killed() bool { return k.v.Load() }

// Builtin is a command implemented in Go. It returns an exit status;
// 0 means success.
type Builtin func(ctx *Context, args []string) int

// Context carries the execution environment of one command: the namespace,
// variables, the working directory used to resolve relative paths, and the
// standard streams.
type Context struct {
	FS     *vfs.FS
	Sh     *Shell
	Dir    string
	Vars   map[string][]string
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer

	// Kill, when non-nil, is polled by the interpreter before every node:
	// once set the command unwinds with a failure status. It is a pointer
	// so pipeline stages (which copy the context by value) share one flag.
	Kill *KillFlag

	// Spawn, when non-nil, runs a backgrounded command (cmd &) off-loop:
	// it receives a display label, a cloned child context, and the thunk
	// to run. When nil, & degrades to synchronous execution — correct for
	// plain scripts and profiles that have no process registry attached.
	Spawn func(label string, ctx *Context, run func(*Context) int)

	// lastIfFailed supports rc's "if not": true when the immediately
	// preceding if's condition failed.
	lastIfFailed bool

	// depth counts nested script/function invocations, capped so a
	// self-calling function reports an error instead of exhausting the
	// stack (found by fuzzing).
	depth int
}

// maxCallDepth bounds script and function nesting.
const maxCallDepth = 100

// Clone returns a child context with a copy of the variables, sharing the
// streams and namespace, as when running a script.
func (c *Context) Clone() *Context {
	vars := make(map[string][]string, len(c.Vars))
	for k, v := range c.Vars {
		vars[k] = append([]string(nil), v...)
	}
	n := *c
	n.Vars = vars
	return &n
}

// Get returns the value of variable name, nil if unset.
func (c *Context) Get(name string) []string { return c.Vars[name] }

// Set assigns variable name.
func (c *Context) Set(name string, value []string) {
	if c.Vars == nil {
		c.Vars = map[string][]string{}
	}
	c.Vars[name] = value
}

// Killed reports whether this command has been asked to stop. Safe on a
// context with no kill flag attached.
func (c *Context) Killed() bool { return c.Kill != nil && c.Kill.Killed() }

// Getenv returns a variable as a single space-joined string, the form
// most tools want ($helpsel, $file, ...).
func (c *Context) Getenv(name string) string {
	return strings.Join(c.Vars[name], " ")
}

// Errorf writes a diagnostic to the context's standard error.
func (c *Context) Errorf(format string, args ...any) {
	fmt.Fprintf(c.Stderr, format+"\n", args...)
}

// Shell is an rc-subset interpreter bound to a namespace.
type Shell struct {
	fs        *vfs.FS
	contextFS *vfs.FS // namespace handed to new contexts; defaults to fs
	builtins  map[string]Builtin
	programs  map[string]Builtin // vfs path -> compiled-in program
	fnMu      sync.RWMutex       // guards funcs: commands run concurrently
	funcs     map[string]*blockNode
	// SearchPath is the list of directories searched for bare command
	// names, normally just /bin.
	SearchPath []string
}

// New returns a shell over fs with echo, eval, and flow-control helpers
// preinstalled. Register the userland with Register or RegisterProgram.
func New(fs *vfs.FS) *Shell {
	sh := &Shell{
		fs:         fs,
		contextFS:  fs,
		builtins:   map[string]Builtin{},
		programs:   map[string]Builtin{},
		funcs:      map[string]*blockNode{},
		SearchPath: []string{"/bin"},
	}
	sh.installCore()
	return sh
}

// FS returns the namespace the shell runs against.
func (sh *Shell) FS() *vfs.FS { return sh.fs }

// SetContextFS changes the namespace view handed to contexts created by
// NewContext. The core installs its serialized (locking) view here so
// commands running in their own goroutines synchronize with the event
// loop; setup-time registration keeps using the raw view.
func (sh *Shell) SetContextFS(fs *vfs.FS) { sh.contextFS = fs }

// Register installs a builtin command under a bare name.
func (sh *Shell) Register(name string, fn Builtin) { sh.builtins[name] = fn }

// Builtins returns the sorted names of registered builtins.
func (sh *Shell) Builtins() []string {
	names := make([]string, 0, len(sh.builtins))
	for n := range sh.builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterProgram installs a compiled-in program at a vfs path, creating a
// placeholder file so the directory listing shows it (tools are "files
// with names like /help/edit/stf ... collected in the appropriate
// directory"). Executing that path runs fn.
func (sh *Shell) RegisterProgram(path string, fn Builtin) error {
	path = vfs.Clean(path)
	sh.programs[path] = fn
	if !sh.fs.Exists(path) {
		if err := sh.fs.WriteFile(path, []byte("#program\n")); err != nil {
			return err
		}
	}
	return nil
}

// NewContext returns a fresh context writing to the given streams.
func (sh *Shell) NewContext(stdout, stderr io.Writer) *Context {
	return &Context{
		FS:     sh.contextFS,
		Sh:     sh,
		Dir:    "/",
		Vars:   map[string][]string{},
		Stdin:  bytes.NewReader(nil),
		Stdout: stdout,
		Stderr: stderr,
	}
}

// Run parses and executes an rc script in ctx. It returns the exit status
// of the last command, or 1 with a diagnostic on a parse error.
func (sh *Shell) Run(ctx *Context, script string) int {
	prog, err := parse(script)
	if err != nil {
		ctx.Errorf("rc: %v", err)
		return 1
	}
	return sh.exec(ctx, prog)
}

// RunCommand executes a single already-expanded argv.
func (sh *Shell) RunCommand(ctx *Context, args []string) int {
	if len(args) == 0 {
		return 0
	}
	return sh.invoke(ctx, args)
}

// invoke resolves and runs argv[0] with the paper's search rules.
func (sh *Shell) invoke(ctx *Context, args []string) int {
	name := args[0]

	// A name with a slash is a path. A relative one resolves against the
	// context dir, falling back to the search path — so "help/parse" finds
	// /bin/help/parse from any directory, as on Plan 9.
	if strings.Contains(name, "/") {
		if strings.HasPrefix(name, "/") {
			return sh.runPath(ctx, name, args)
		}
		local := vfs.Clean(ctx.Dir + "/" + name)
		if ctx.FS.Exists(local) || sh.programs[local] != nil {
			return sh.runPath(ctx, local, args)
		}
		for _, dir := range sh.SearchPath {
			cand := vfs.Clean(dir + "/" + name)
			if ctx.FS.Exists(cand) || sh.programs[cand] != nil {
				return sh.runPath(ctx, cand, args)
			}
		}
		return sh.runPath(ctx, local, args) // report the local miss
	}

	sh.fnMu.RLock()
	fn, ok := sh.funcs[name]
	sh.fnMu.RUnlock()
	if ok {
		return sh.runFunction(ctx, fn, args)
	}
	if b, ok := sh.builtins[name]; ok {
		return b(ctx, args)
	}
	// Search the standard directories of program binaries.
	for _, dir := range sh.SearchPath {
		path := vfs.Clean(dir + "/" + name)
		if ctx.FS.Exists(path) || sh.programs[path] != nil {
			return sh.runPath(ctx, path, args)
		}
	}
	ctx.Errorf("rc: %s: command not found", name)
	return 127
}

// runPath executes the program or script at an absolute vfs path.
func (sh *Shell) runPath(ctx *Context, path string, args []string) int {
	path = vfs.Clean(path)
	if prog, ok := sh.programs[path]; ok {
		return prog(ctx, args)
	}
	data, err := ctx.FS.ReadFile(path)
	if err != nil {
		ctx.Errorf("rc: %s: %v", path, err)
		return 127
	}
	child := ctx.Clone()
	child.depth = ctx.depth + 1
	if child.depth > maxCallDepth {
		ctx.Errorf("rc: %s: call depth exceeds %d", path, maxCallDepth)
		return 1
	}
	child.Set("0", []string{path})
	child.Set("*", args[1:])
	return sh.Run(child, string(data))
}

// runFunction executes a defined function with $* bound to the arguments.
func (sh *Shell) runFunction(ctx *Context, body *blockNode, args []string) int {
	child := ctx.Clone()
	child.depth = ctx.depth + 1
	if child.depth > maxCallDepth {
		ctx.Errorf("rc: %s: call depth exceeds %d", args[0], maxCallDepth)
		return 1
	}
	child.Set("0", args[:1])
	child.Set("*", args[1:])
	return sh.exec(child, body.body)
}

// installCore registers the interpreter-level builtins that belong to the
// shell itself rather than the userland.
func (sh *Shell) installCore() {
	sh.Register("echo", func(ctx *Context, args []string) int {
		fmt.Fprintln(ctx.Stdout, strings.Join(args[1:], " "))
		return 0
	})
	sh.Register("eval", func(ctx *Context, args []string) int {
		return sh.Run(ctx, strings.Join(args[1:], " "))
	})
	sh.Register("true", func(*Context, []string) int { return 0 })
	sh.Register("false", func(*Context, []string) int { return 1 })
	sh.Register("exit", func(ctx *Context, args []string) int {
		status := 0
		if len(args) > 1 && args[1] != "" {
			status = 1
		}
		return status
	})
	// ~ subject pattern...: rc's match builtin; exit 0 if any pattern
	// matches the subject with shell metacharacters.
	sh.Register("~", func(ctx *Context, args []string) int {
		if len(args) < 2 {
			return 1
		}
		subject := args[1]
		for _, pat := range args[2:] {
			if matchPattern(pat, subject) {
				return 0
			}
		}
		return 1
	})
	// bind [-a|-b] src mountpoint: compose the namespace, as in profiles.
	sh.Register("bind", func(ctx *Context, args []string) int {
		flag := vfs.Replace
		rest := args[1:]
		for len(rest) > 0 && strings.HasPrefix(rest[0], "-") {
			switch rest[0] {
			case "-a":
				flag = vfs.After
			case "-b":
				flag = vfs.Before
			default:
				// Unknown flags (-e, -c in profiles) are accepted and
				// treated as plain binds.
			}
			rest = rest[1:]
		}
		if len(rest) != 2 {
			ctx.Errorf("usage: bind [-a|-b] new old")
			return 1
		}
		if err := ctx.FS.Bind(rest[0], rest[1], flag); err != nil {
			ctx.Errorf("bind: %v", err)
			return 1
		}
		return 0
	})
}

// matchPattern implements rc's ~ matching: * ? [...] over the whole
// subject.
func matchPattern(pat, s string) bool {
	return matchHere([]rune(pat), []rune(s))
}

func matchHere(pat, s []rune) bool {
	for len(pat) > 0 {
		switch pat[0] {
		case '*':
			for i := len(s); i >= 0; i-- {
				if matchHere(pat[1:], s[i:]) {
					return true
				}
			}
			return false
		case '?':
			if len(s) == 0 {
				return false
			}
			pat, s = pat[1:], s[1:]
		case '[':
			end := 1
			for end < len(pat) && pat[end] != ']' {
				end++
			}
			if end >= len(pat) || len(s) == 0 {
				return false
			}
			if !matchClass(pat[1:end], s[0]) {
				return false
			}
			pat, s = pat[end+1:], s[1:]
		default:
			if len(s) == 0 || pat[0] != s[0] {
				return false
			}
			pat, s = pat[1:], s[1:]
		}
	}
	return len(s) == 0
}

func matchClass(class []rune, r rune) bool {
	neg := false
	if len(class) > 0 && (class[0] == '^' || class[0] == '!') {
		neg = true
		class = class[1:]
	}
	match := false
	for i := 0; i < len(class); i++ {
		if i+2 < len(class) && class[i+1] == '-' {
			if class[i] <= r && r <= class[i+2] {
				match = true
			}
			i += 2
			continue
		}
		if class[i] == r {
			match = true
		}
	}
	return match != neg
}

// IsProgram reports whether a compiled-in program is registered at path.
func (sh *Shell) IsProgram(path string) bool {
	_, ok := sh.programs[vfs.Clean(path)]
	return ok
}
