package shell

import (
	"fmt"
	"strings"
)

// ---- AST -------------------------------------------------------------------

type node interface{ isNode() }

// seqNode is a sequence of commands separated by ; or newline.
type seqNode struct{ cmds []node }

// pipeNode is a pipeline of stages connected left to right.
type pipeNode struct{ stages []node }

// cmdNode is a simple command: words plus redirections.
type cmdNode struct {
	words  []word
	redirs []redir
}

// blockNode is { seq } with optional redirections.
type blockNode struct {
	body   node
	redirs []redir
}

// assignNode is name=value or name=(list).
type assignNode struct {
	name   string
	values []word
}

// ifNode is if(cond) body.
type ifNode struct {
	cond node
	body node
}

// ifNotNode is rc's "if not body": runs body when the immediately
// preceding if's condition failed.
type ifNotNode struct {
	body node
}

// whileNode is while(cond) body.
type whileNode struct {
	cond node
	body node
}

// notNode is ! cmd.
type notNode struct{ cmd node }

// bgNode is cmd &: run the command in the background. label is the
// command's source text, kept for process listings.
type bgNode struct {
	cmd   node
	label string
}

// forNode is for(name in words) body.
type forNode struct {
	varName string
	values  []word
	body    node
}

// fnNode is fn name { body }.
type fnNode struct {
	name string
	body *blockNode
}

// switchNode is rc's switch(word){ case pat...; cmds ... }.
type switchNode struct {
	subject word
	cases   []switchCase
}

// switchCase is one arm: the patterns after "case" and the commands that
// follow until the next case or the closing brace.
type switchCase struct {
	patterns []word
	body     node
}

func (seqNode) isNode()    {}
func (switchNode) isNode() {}
func (ifNotNode) isNode()  {}
func (whileNode) isNode()  {}
func (pipeNode) isNode()   {}
func (cmdNode) isNode()    {}
func (blockNode) isNode()  {}
func (assignNode) isNode() {}
func (ifNode) isNode()     {}
func (notNode) isNode()    {}
func (bgNode) isNode()     {}
func (forNode) isNode()    {}
func (fnNode) isNode()     {}

// redir is one redirection.
type redir struct {
	kind   string // ">", ">>", "<"
	target word
}

// word is a concatenation of segments expanded and re-joined per rc rules.
type word struct{ segs []seg }

type segKind int

const (
	segLit     segKind = iota // unquoted literal text; glob metacharacters live
	segQuote                  // 'quoted' text; never globbed
	segVar                    // $name
	segVarCnt                 // $#name
	segVarJoin                // $"name
	segSub                    // `{ command } substitution
)

type seg struct {
	kind segKind
	text string // literal text or variable name
	sub  node   // parsed command for segSub
}

// raw returns the word's surface text, used to detect assignments.
func (w word) raw() string {
	var b strings.Builder
	for _, s := range w.segs {
		switch s.kind {
		case segLit, segQuote:
			b.WriteString(s.text)
		case segVar:
			b.WriteString("$" + s.text)
		case segVarCnt:
			b.WriteString("$#" + s.text)
		case segVarJoin:
			b.WriteString("$\"" + s.text)
		case segSub:
			b.WriteString("`{...}")
		}
	}
	return b.String()
}

// ---- Lexer ------------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokWord
	tokPipe   // |
	tokSemi   // ; or newline
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokGt     // >
	tokGtGt   // >>
	tokLt     // <
	tokBang   // !
	tokAmp    // &
)

type token struct {
	kind tokKind
	w    word
	pos  int
}

type lexer struct {
	src []rune
	pos int
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) rune {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

// next scans one token.
func (l *lexer) next() (token, error) {
	// Skip blanks and comments; newlines are significant.
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if r == ' ' || r == '\t' || r == '\r' {
			l.pos++
			continue
		}
		if r == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	switch r := l.src[l.pos]; r {
	case '\n', ';':
		l.pos++
		return token{kind: tokSemi, pos: start}, nil
	case '|':
		l.pos++
		return token{kind: tokPipe, pos: start}, nil
	case '{':
		l.pos++
		return token{kind: tokLBrace, pos: start}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case '>':
		if l.at(1) == '>' {
			l.pos += 2
			return token{kind: tokGtGt, pos: start}, nil
		}
		l.pos++
		return token{kind: tokGt, pos: start}, nil
	case '<':
		l.pos++
		return token{kind: tokLt, pos: start}, nil
	case '&':
		l.pos++
		return token{kind: tokAmp, pos: start}, nil
	case '!':
		// ! is a word char inside a word (Close!), but a bare ! followed
		// by whitespace is negation.
		if l.at(1) == ' ' || l.at(1) == '\t' {
			l.pos++
			return token{kind: tokBang, pos: start}, nil
		}
	}
	w, err := l.lexWord()
	if err != nil {
		return token{}, err
	}
	return token{kind: tokWord, w: w, pos: start}, nil
}

// isWordRune reports whether r can continue an unquoted word.
func isWordRune(r rune) bool {
	switch r {
	case 0, ' ', '\t', '\r', '\n', ';', '|', '{', '}', '(', ')', '>', '<', '#', '\'', '"', '&', '$', '`':
		return false
	}
	return true
}

// lexWord scans one word: a concatenation of literal runs, quoted strings,
// variable references, and command substitutions.
func (l *lexer) lexWord() (word, error) {
	var w word
	for {
		r := l.peekRune()
		switch {
		case r == '\'':
			text, err := l.lexQuote()
			if err != nil {
				return word{}, err
			}
			w.segs = append(w.segs, seg{kind: segQuote, text: text})
		case r == '"':
			text, err := l.lexDQuote()
			if err != nil {
				return word{}, err
			}
			w.segs = append(w.segs, seg{kind: segQuote, text: text})
		case r == '$':
			s, err := l.lexVar()
			if err != nil {
				return word{}, err
			}
			w.segs = append(w.segs, s)
		case r == '`':
			s, err := l.lexSub()
			if err != nil {
				return word{}, err
			}
			w.segs = append(w.segs, s)
		case r == '^':
			// rc's explicit concatenation operator: skip, segments
			// concatenate anyway.
			l.pos++
		case isWordRune(r):
			start := l.pos
			for isWordRune(l.peekRune()) && l.peekRune() != '^' {
				l.pos++
			}
			w.segs = append(w.segs, seg{kind: segLit, text: string(l.src[start:l.pos])})
		default:
			if len(w.segs) == 0 {
				return word{}, fmt.Errorf("unexpected character %q at %d", r, l.pos)
			}
			return w, nil
		}
	}
}

// lexQuote scans a 'single-quoted' string where ” is a literal quote.
func (l *lexer) lexQuote() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if r == '\'' {
			if l.at(1) == '\'' {
				b.WriteRune('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteRune(r)
		l.pos++
	}
	return "", fmt.Errorf("unterminated quote")
}

// lexDQuote scans a "double-quoted" string where "" is a literal quote,
// mirroring the single-quote rule. rc proper has no double quotes, but
// commands typed into help tags use them, and before they were lexed the
// quotes leaked into argv (echo "a b" ran with literal quote characters).
func (l *lexer) lexDQuote() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if r == '"' {
			if l.at(1) == '"' {
				b.WriteRune('"')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteRune(r)
		l.pos++
	}
	return "", fmt.Errorf("unterminated quote")
}

// lexVar scans $name, $#name, $"name, $*, $0..$9.
func (l *lexer) lexVar() (seg, error) {
	l.pos++ // $
	kind := segVar
	switch l.peekRune() {
	case '#':
		kind = segVarCnt
		l.pos++
	case '"':
		kind = segVarJoin
		l.pos++
	}
	if l.peekRune() == '*' {
		l.pos++
		return seg{kind: kind, text: "*"}, nil
	}
	start := l.pos
	for {
		r := l.peekRune()
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			l.pos++
			continue
		}
		break
	}
	if l.pos == start {
		return seg{}, fmt.Errorf("empty variable name at %d", l.pos)
	}
	return seg{kind: kind, text: string(l.src[start:l.pos])}, nil
}

// lexSub scans `{ command } into a parsed sub-program.
func (l *lexer) lexSub() (seg, error) {
	l.pos++ // backquote
	if l.peekRune() != '{' {
		return seg{}, fmt.Errorf("expected { after ` at %d", l.pos)
	}
	l.pos++
	depth := 1
	start := l.pos
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				body := string(l.src[start:l.pos])
				l.pos++
				sub, err := parse(body)
				if err != nil {
					return seg{}, fmt.Errorf("in `{...}: %v", err)
				}
				return seg{kind: segSub, sub: sub}, nil
			}
		case '\'':
			// Skip quoted text so braces inside quotes don't count.
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
		}
		l.pos++
	}
	return seg{}, fmt.Errorf("unterminated `{")
}

// ---- Parser -----------------------------------------------------------------

type parser struct {
	lex *lexer
	tok token
	err error
}

// parse compiles an rc script into its AST.
func parse(src string) (node, error) {
	p := &parser{lex: &lexer{src: []rune(src)}}
	p.advance()
	prog := p.parseSeq(tokEOF)
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("unexpected token at %d", p.tok.pos)
	}
	return prog, nil
}

// advance fetches the next token. Once any error is recorded the current
// token pins to EOF, so every parsing loop and recursion terminates — a
// stale token here once sent the parser into an infinite loop (found by
// fuzzing; regression seeds are in testdata).
func (p *parser) advance() {
	if p.err != nil {
		p.tok = token{kind: tokEOF, pos: p.tok.pos}
		return
	}
	t, err := p.lex.next()
	if err != nil {
		p.err = err
		p.tok = token{kind: tokEOF, pos: p.tok.pos}
		return
	}
	p.tok = t
}

func (p *parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

// parseSeq parses commands until the closing token (EOF or }or )).
func (p *parser) parseSeq(until tokKind) node {
	var cmds []node
	for p.err == nil {
		for p.err == nil && p.tok.kind == tokSemi {
			p.advance()
		}
		if p.tok.kind == until || p.tok.kind == tokEOF {
			break
		}
		startPos := p.tok.pos
		c := p.parseItem()
		if p.err != nil {
			break
		}
		// cmd &: wrap in a background node labeled with the command's
		// source text, and treat & as a command separator like ;.
		if p.tok.kind == tokAmp {
			label := strings.TrimSpace(string(p.lex.src[startPos:p.tok.pos]))
			c = bgNode{cmd: c, label: label}
			p.advance()
			cmds = append(cmds, c)
			continue
		}
		cmds = append(cmds, c)
		if p.tok.kind == tokSemi {
			p.advance()
		} else if p.tok.kind != until && p.tok.kind != tokEOF {
			p.fail("expected ; or newline at %d", p.tok.pos)
		}
	}
	return seqNode{cmds: cmds}
}

// parseItem parses one command: keyword forms, pipelines, assignments.
func (p *parser) parseItem() node {
	if p.tok.kind == tokWord && len(p.tok.w.segs) == 1 && p.tok.w.segs[0].kind == segLit {
		switch p.tok.w.segs[0].text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "fn":
			return p.parseFn()
		case "switch":
			return p.parseSwitch()
		case "while":
			return p.parseWhile()
		}
	}
	// Assignments: one or more leading name=... words, as rc allows
	// ("eval `{help/parse -c}" expands to several assignments on one
	// line). If a command follows the assignments it runs afterwards;
	// unlike rc we do not scope the assignments to that command.
	var assigns []node
	for p.err == nil && p.tok.kind == tokWord {
		a, ok := p.tryAssign()
		if !ok {
			break
		}
		assigns = append(assigns, a)
	}
	if len(assigns) > 0 {
		if p.tok.kind != tokWord && p.tok.kind != tokLBrace && p.tok.kind != tokBang {
			if len(assigns) == 1 {
				return assigns[0]
			}
			return seqNode{cmds: assigns}
		}
		cmd := p.parsePipeline()
		return seqNode{cmds: append(assigns, cmd)}
	}
	return p.parsePipeline()
}

// tryAssign recognizes name=value and name=(list).
func (p *parser) tryAssign() (node, bool) {
	w := p.tok.w
	if len(w.segs) == 0 || w.segs[0].kind != segLit {
		return nil, false
	}
	lit := w.segs[0].text
	eq := strings.IndexByte(lit, '=')
	if eq <= 0 {
		return nil, false
	}
	name := lit[:eq]
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '*') {
			return nil, false
		}
	}
	p.advance() // consume the assignment word
	rest := lit[eq+1:]
	var values []word
	var first word
	if rest != "" {
		first.segs = append(first.segs, seg{kind: segLit, text: rest})
	}
	first.segs = append(first.segs, w.segs[1:]...)
	if len(first.segs) > 0 {
		values = append(values, first)
	}
	// List assignment: name=(a b c).
	if len(values) == 0 && p.tok.kind == tokLParen {
		p.advance()
		for p.err == nil && p.tok.kind == tokWord {
			values = append(values, p.tok.w)
			p.advance()
		}
		if p.tok.kind != tokRParen {
			p.fail("expected ) in list assignment at %d", p.tok.pos)
			return nil, true
		}
		p.advance()
	}
	return assignNode{name: name, values: values}, true
}

func (p *parser) parseIf() node {
	p.advance() // if
	// rc's "if not": the else-branch of the preceding if.
	if p.tok.kind == tokWord && p.tok.w.raw() == "not" {
		p.advance()
		return ifNotNode{body: p.parseItem()}
	}
	if p.tok.kind != tokLParen {
		p.fail("expected ( after if at %d", p.tok.pos)
		return nil
	}
	p.advance()
	cond := p.parseSeq(tokRParen)
	if p.tok.kind != tokRParen {
		p.fail("expected ) closing if condition at %d", p.tok.pos)
		return nil
	}
	p.advance()
	body := p.parseItem()
	return ifNode{cond: cond, body: body}
}

// parseWhile parses while(cond) body.
func (p *parser) parseWhile() node {
	p.advance() // while
	if p.tok.kind != tokLParen {
		p.fail("expected ( after while at %d", p.tok.pos)
		return nil
	}
	p.advance()
	cond := p.parseSeq(tokRParen)
	if p.tok.kind != tokRParen {
		p.fail("expected ) closing while condition at %d", p.tok.pos)
		return nil
	}
	p.advance()
	body := p.parseItem()
	return whileNode{cond: cond, body: body}
}

func (p *parser) parseFor() node {
	p.advance() // for
	if p.tok.kind != tokLParen {
		p.fail("expected ( after for at %d", p.tok.pos)
		return nil
	}
	p.advance()
	if p.tok.kind != tokWord {
		p.fail("expected variable name in for at %d", p.tok.pos)
		return nil
	}
	name := p.tok.w.raw()
	p.advance()
	if !(p.tok.kind == tokWord && p.tok.w.raw() == "in") {
		p.fail("expected 'in' in for at %d", p.tok.pos)
		return nil
	}
	p.advance()
	var values []word
	for p.err == nil && p.tok.kind == tokWord {
		values = append(values, p.tok.w)
		p.advance()
	}
	if p.tok.kind != tokRParen {
		p.fail("expected ) closing for at %d", p.tok.pos)
		return nil
	}
	p.advance()
	body := p.parseItem()
	return forNode{varName: name, values: values, body: body}
}

func (p *parser) parseFn() node {
	p.advance() // fn
	if p.tok.kind != tokWord {
		p.fail("expected function name at %d", p.tok.pos)
		return nil
	}
	name := p.tok.w.raw()
	p.advance()
	if p.tok.kind != tokLBrace {
		p.fail("expected { after fn %s at %d", name, p.tok.pos)
		return nil
	}
	blk := p.parseBlock()
	b, _ := blk.(blockNode)
	return fnNode{name: name, body: &b}
}

// parseSwitch parses rc's switch statement:
//
//	switch(subject){
//	case pat [pat...]
//		commands
//	case *
//		commands
//	}
//
// Patterns match with the same rules as the ~ builtin; the first matching
// arm runs.
func (p *parser) parseSwitch() node {
	p.advance() // switch
	if p.tok.kind != tokLParen {
		p.fail("expected ( after switch at %d", p.tok.pos)
		return nil
	}
	p.advance()
	if p.tok.kind != tokWord {
		p.fail("expected switch subject at %d", p.tok.pos)
		return nil
	}
	subject := p.tok.w
	p.advance()
	if p.tok.kind != tokRParen {
		p.fail("expected ) after switch subject at %d", p.tok.pos)
		return nil
	}
	p.advance()
	if p.tok.kind != tokLBrace {
		p.fail("expected { in switch at %d", p.tok.pos)
		return nil
	}
	p.advance()
	sw := switchNode{subject: subject}
	// Skip separators to the first case.
	for p.err == nil && p.tok.kind == tokSemi {
		p.advance()
	}
	for p.err == nil && p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		if !(p.tok.kind == tokWord && p.tok.w.raw() == "case") {
			p.fail("expected 'case' in switch at %d", p.tok.pos)
			return nil
		}
		p.advance()
		var pats []word
		for p.err == nil && p.tok.kind == tokWord {
			pats = append(pats, p.tok.w)
			p.advance()
		}
		if len(pats) == 0 {
			p.fail("case with no patterns at %d", p.tok.pos)
			return nil
		}
		if p.tok.kind == tokSemi {
			p.advance()
		}
		// Body: commands until the next case or the closing brace.
		var cmds []node
		for p.err == nil {
			for p.err == nil && p.tok.kind == tokSemi {
				p.advance()
			}
			if p.tok.kind == tokRBrace || p.tok.kind == tokEOF {
				break
			}
			if p.tok.kind == tokWord && p.tok.w.raw() == "case" {
				break
			}
			cmds = append(cmds, p.parseItem())
			if p.tok.kind == tokSemi {
				p.advance()
			}
		}
		sw.cases = append(sw.cases, switchCase{patterns: pats, body: seqNode{cmds: cmds}})
	}
	if p.tok.kind != tokRBrace {
		p.fail("expected } closing switch at %d", p.tok.pos)
		return nil
	}
	p.advance()
	return sw
}

func (p *parser) parsePipeline() node {
	first := p.parseCommand()
	if p.err != nil {
		return nil
	}
	stages := []node{first}
	for p.tok.kind == tokPipe {
		p.advance()
		// Allow a newline after | for long pipelines, as rc does.
		for p.err == nil && p.tok.kind == tokSemi {
			p.advance()
		}
		stages = append(stages, p.parseCommand())
		if p.err != nil {
			return nil
		}
	}
	if len(stages) == 1 {
		return first
	}
	return pipeNode{stages: stages}
}

func (p *parser) parseCommand() node {
	switch p.tok.kind {
	case tokBang:
		p.advance()
		return notNode{cmd: p.parseCommand()}
	case tokLBrace:
		return p.parseBlock()
	case tokWord:
		return p.parseSimple()
	default:
		p.fail("expected command at %d", p.tok.pos)
		return nil
	}
}

func (p *parser) parseBlock() node {
	p.advance() // {
	body := p.parseSeq(tokRBrace)
	if p.tok.kind != tokRBrace {
		p.fail("expected } at %d", p.tok.pos)
		return nil
	}
	p.advance()
	blk := blockNode{body: body}
	blk.redirs = p.parseRedirs()
	return blk
}

func (p *parser) parseSimple() node {
	var cmd cmdNode
	for p.err == nil {
		switch p.tok.kind {
		case tokWord:
			cmd.words = append(cmd.words, p.tok.w)
			p.advance()
		case tokGt, tokGtGt, tokLt:
			cmd.redirs = append(cmd.redirs, p.parseRedir())
		default:
			return cmd
		}
	}
	return cmd
}

func (p *parser) parseRedirs() []redir {
	var rs []redir
	for p.tok.kind == tokGt || p.tok.kind == tokGtGt || p.tok.kind == tokLt {
		rs = append(rs, p.parseRedir())
	}
	return rs
}

func (p *parser) parseRedir() redir {
	kind := ">"
	switch p.tok.kind {
	case tokGtGt:
		kind = ">>"
	case tokLt:
		kind = "<"
	}
	p.advance()
	if p.tok.kind != tokWord {
		p.fail("expected file name after redirection at %d", p.tok.pos)
		return redir{}
	}
	r := redir{kind: kind, target: p.tok.w}
	p.advance()
	return r
}
