package shell

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// run executes a script in a fresh shell and returns stdout, stderr, status.
func run(t *testing.T, setup func(fs *vfs.FS, sh *Shell), script string) (string, string, int) {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.MkdirAll("/tmp")
	sh := New(fs)
	if setup != nil {
		setup(fs, sh)
	}
	var out, errb bytes.Buffer
	ctx := sh.NewContext(&out, &errb)
	status := sh.Run(ctx, script)
	return out.String(), errb.String(), status
}

func TestEcho(t *testing.T) {
	out, _, status := run(t, nil, "echo hello world")
	if out != "hello world\n" || status != 0 {
		t.Errorf("out=%q status=%d", out, status)
	}
}

func TestSequence(t *testing.T) {
	out, _, _ := run(t, nil, "echo a; echo b\necho c")
	if out != "a\nb\nc\n" {
		t.Errorf("out=%q", out)
	}
}

func TestSingleQuotes(t *testing.T) {
	out, _, _ := run(t, nil, "echo 'hello  world' 'it''s'")
	if out != "hello  world it's\n" {
		t.Errorf("out=%q", out)
	}
}

func TestComments(t *testing.T) {
	out, _, _ := run(t, nil, "# a comment\necho ok # trailing\n")
	if out != "ok # trailing\n" && out != "ok\n" {
		t.Errorf("out=%q", out)
	}
}

func TestVariables(t *testing.T) {
	out, _, _ := run(t, nil, "x=hello\necho $x world")
	if out != "hello world\n" {
		t.Errorf("out=%q", out)
	}
}

func TestListVariable(t *testing.T) {
	out, _, _ := run(t, nil, "x=(a b c)\necho $x\necho $#x")
	if out != "a b c\n3\n" {
		t.Errorf("out=%q", out)
	}
}

func TestJoinedVariable(t *testing.T) {
	out, _, _ := run(t, nil, `x=(a b c)
echo $"x!`)
	if out != "a b c!\n" {
		t.Errorf("out=%q", out)
	}
}

func TestUnsetVariableEmpty(t *testing.T) {
	out, _, _ := run(t, nil, "echo [$nothing]")
	// $nothing is an empty list; concatenation annihilates the word... but
	// here it is bracketed by literals so the whole word drops.
	if strings.TrimSpace(out) != "" {
		t.Errorf("out=%q", out)
	}
	out, _, _ = run(t, nil, "echo $#nothing")
	if out != "0\n" {
		t.Errorf("count out=%q", out)
	}
}

func TestConcatenation(t *testing.T) {
	out, _, _ := run(t, nil, "id=main\necho -i$id")
	if out != "-imain\n" {
		t.Errorf("out=%q", out)
	}
}

func TestConcatenationDistributes(t *testing.T) {
	out, _, _ := run(t, nil, "x=(a b)\necho pre$x")
	if out != "prea preb\n" {
		t.Errorf("out=%q", out)
	}
}

func TestCaretConcat(t *testing.T) {
	out, _, _ := run(t, nil, "x=world\necho hello^$x")
	if out != "helloworld\n" {
		t.Errorf("out=%q", out)
	}
}

func TestCommandSubstitution(t *testing.T) {
	out, _, _ := run(t, nil, "x=`{echo one two}\necho got $x end")
	if out != "got one two end\n" {
		t.Errorf("out=%q", out)
	}
}

func TestNestedSubstitution(t *testing.T) {
	out, _, _ := run(t, nil, "echo `{echo `{echo deep}}")
	if out != "deep\n" {
		t.Errorf("out=%q", out)
	}
}

func TestPipeline(t *testing.T) {
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		sh.Register("upper", func(ctx *Context, args []string) int {
			var buf bytes.Buffer
			buf.ReadFrom(ctx.Stdin)
			ctx.Stdout.Write([]byte(strings.ToUpper(buf.String())))
			return 0
		})
	}, "echo hello | upper")
	if out != "HELLO\n" {
		t.Errorf("out=%q", out)
	}
}

func TestThreeStagePipeline(t *testing.T) {
	rev := func(ctx *Context, args []string) int {
		var buf bytes.Buffer
		buf.ReadFrom(ctx.Stdin)
		s := strings.TrimSuffix(buf.String(), "\n")
		rs := []rune(s)
		for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
			rs[i], rs[j] = rs[j], rs[i]
		}
		ctx.Stdout.Write(append([]byte(string(rs)), '\n'))
		return 0
	}
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		sh.Register("rev", rev)
	}, "echo abc | rev | rev")
	if out != "abc\n" {
		t.Errorf("out=%q", out)
	}
}

func TestRedirectOut(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/tmp")
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.Run(ctx, "echo saved > /tmp/f")
	data, err := fs.ReadFile("/tmp/f")
	if err != nil || string(data) != "saved\n" {
		t.Errorf("file=%q err=%v", data, err)
	}
	if out.Len() != 0 {
		t.Errorf("stdout leaked: %q", out.String())
	}
	// Append.
	sh.Run(ctx, "echo more >> /tmp/f")
	data, _ = fs.ReadFile("/tmp/f")
	if string(data) != "saved\nmore\n" {
		t.Errorf("after append=%q", data)
	}
}

func TestRedirectIn(t *testing.T) {
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		fs.WriteFile("/tmp/in", []byte("from file"))
		sh.Register("cat0", func(ctx *Context, args []string) int {
			var buf bytes.Buffer
			buf.ReadFrom(ctx.Stdin)
			ctx.Stdout.Write(buf.Bytes())
			return 0
		})
	}, "cat0 < /tmp/in")
	if out != "from file" {
		t.Errorf("out=%q", out)
	}
}

func TestBlockRedirect(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/tmp")
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.Run(ctx, "{\necho a\necho b\n} > /tmp/blk")
	data, _ := fs.ReadFile("/tmp/blk")
	if string(data) != "a\nb\n" {
		t.Errorf("block output=%q", data)
	}
}

func TestGlobExpansion(t *testing.T) {
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		fs.MkdirAll("/src")
		fs.WriteFile("/src/a.c", nil)
		fs.WriteFile("/src/b.c", nil)
		fs.WriteFile("/src/c.h", nil)
	}, "echo /src/*.c")
	if out != "/src/a.c /src/b.c\n" {
		t.Errorf("out=%q", out)
	}
}

func TestGlobRelative(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/src")
	fs.WriteFile("/src/x.c", nil)
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = "/src"
	sh.Run(ctx, "echo *.c")
	if out.String() != "x.c\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestGlobNoMatchKeepsLiteral(t *testing.T) {
	out, _, _ := run(t, nil, "echo /none/*.c")
	if out != "/none/*.c\n" {
		t.Errorf("out=%q", out)
	}
}

func TestQuotedGlobNotExpanded(t *testing.T) {
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		fs.MkdirAll("/src")
		fs.WriteFile("/src/a.c", nil)
	}, "echo '/src/*.c'")
	if out != "/src/*.c\n" {
		t.Errorf("out=%q", out)
	}
}

func TestIf(t *testing.T) {
	out, _, _ := run(t, nil, "if(true) echo yes\nif(false) echo no")
	if out != "yes\n" {
		t.Errorf("out=%q", out)
	}
}

func TestIfNegated(t *testing.T) {
	out, _, _ := run(t, nil, "if(! false) echo inverted")
	if out != "inverted\n" {
		t.Errorf("out=%q", out)
	}
}

func TestMatchBuiltin(t *testing.T) {
	out, _, _ := run(t, nil, "if(~ hello h*) echo starts-with-h\nif(~ abc x* y?) echo no")
	if out != "starts-with-h\n" {
		t.Errorf("out=%q", out)
	}
}

func TestMatchClass(t *testing.T) {
	out, _, _ := run(t, nil, "if(~ a '[abc]') echo in-class\nif(~ z '[abc]') echo bad")
	if out != "in-class\n" {
		t.Errorf("out=%q", out)
	}
}

func TestFor(t *testing.T) {
	out, _, _ := run(t, nil, "for(i in x y z) echo item $i")
	if out != "item x\nitem y\nitem z\n" {
		t.Errorf("out=%q", out)
	}
}

func TestFn(t *testing.T) {
	out, _, _ := run(t, nil, "fn greet { echo hi $1 }\ngreet rob")
	if out != "hi rob\n" {
		t.Errorf("out=%q", out)
	}
}

func TestFnStar(t *testing.T) {
	out, _, _ := run(t, nil, "fn many { echo $#* args: $* }\nmany a b c")
	if out != "3 args: a b c\n" {
		t.Errorf("out=%q", out)
	}
}

func TestEval(t *testing.T) {
	out, _, _ := run(t, nil, "cmd='echo evaled'\neval $cmd")
	if out != "evaled\n" {
		t.Errorf("out=%q", out)
	}
}

func TestScriptExecution(t *testing.T) {
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		fs.MkdirAll("/help/db")
		fs.WriteFile("/help/db/stack", []byte("echo stack for $1\n"))
	}, "/help/db/stack 176153")
	if out != "stack for 176153\n" {
		t.Errorf("out=%q", out)
	}
}

func TestRelativeScriptUsesContextDir(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/help/mail")
	fs.WriteFile("/help/mail/headers", []byte("echo mail headers\n"))
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = "/help/mail"
	sh.Run(ctx, "headers/../headers") // relative path with a slash
	if out.String() != "mail headers\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestSearchPath(t *testing.T) {
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		fs.WriteFile("/bin/tool", []byte("echo tool ran\n"))
	}, "tool")
	if out != "tool ran\n" {
		t.Errorf("out=%q", out)
	}
}

func TestRegisterProgram(t *testing.T) {
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		fs.MkdirAll("/help/cbr")
		sh.RegisterProgram("/help/cbr/decl", func(ctx *Context, args []string) int {
			ctx.Stdout.Write([]byte("decl: " + strings.Join(args[1:], ",") + "\n"))
			return 0
		})
	}, "/help/cbr/decl n")
	if out != "decl: n\n" {
		t.Errorf("out=%q", out)
	}
}

func TestCommandNotFound(t *testing.T) {
	_, errs, status := run(t, nil, "nonesuch")
	if status != 127 || !strings.Contains(errs, "not found") {
		t.Errorf("status=%d errs=%q", status, errs)
	}
}

func TestScriptArgsIsolated(t *testing.T) {
	// Variables set in a script don't leak to the caller.
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.WriteFile("/bin/setter", []byte("leak=inside\necho $leak\n"))
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.Run(ctx, "setter\necho outer[$#leak]")
	if !strings.Contains(out.String(), "inside") {
		t.Errorf("script did not run: %q", out.String())
	}
	if !strings.Contains(out.String(), "outer[0]") {
		t.Errorf("variable leaked: %q", out.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"echo 'unterminated",
		"echo `{unclosed",
		"if true) echo x",
		"fn",
		"echo > ",
	} {
		_, errs, status := run(t, nil, bad)
		if status == 0 || errs == "" {
			t.Errorf("script %q: status=%d errs=%q, want failure", bad, status, errs)
		}
	}
}

func TestStatusVariable(t *testing.T) {
	out, _, _ := run(t, nil, "false\necho [$status]\ntrue\necho [$status]")
	if out != "[error]\n[]\n" {
		// Empty status makes the word vanish under rc rules with brackets
		// present; accept both renderings.
		if out != "[error]\n\n" {
			t.Errorf("out=%q", out)
		}
	}
}

// TestDeclScriptShapeOutput exercises the exact combination the paper's
// decl script relies on: eval over parse output producing several
// assignments, command substitution for the new window number, and a
// block redirected into a window file.
func TestDeclScriptShapeOutput(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/mnt/help/5")
	sh := New(fs)
	sh.Register("parse", func(ctx *Context, args []string) int {
		ctx.Stdout.Write([]byte("file=/src/help.c id=n line=35"))
		return 0
	})
	sh.Register("newwin", func(ctx *Context, args []string) int {
		ctx.Stdout.Write([]byte("5"))
		return 0
	})
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	status := sh.Run(ctx, "eval `{parse}\nx=`{newwin}\n{\necho $file:$line $id\n} > /mnt/help/$x/out\n")
	if status != 0 {
		t.Fatalf("status=%d out=%q", status, out.String())
	}
	data, err := fs.ReadFile("/mnt/help/5/out")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "/src/help.c:35 n\n" {
		t.Errorf("out file=%q", data)
	}
}

func TestBindBuiltin(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.MkdirAll("/home/bin")
	fs.WriteFile("/home/bin/extra", []byte("echo extra\n"))
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	status := sh.Run(ctx, "bind -a /home/bin /bin\nextra")
	if status != 0 || out.String() != "extra\n" {
		t.Errorf("status=%d out=%q", status, out.String())
	}
}

func TestPositionalParams(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.WriteFile("/bin/args", []byte("echo 0=$0 1=$1 2=$2 n=$#*\n"))
	sh := New(fs)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.Run(ctx, "args first second")
	if out.String() != "0=/bin/args 1=first 2=second n=2\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestPipelineAcrossNewline(t *testing.T) {
	out, _, _ := run(t, func(fs *vfs.FS, sh *Shell) {
		sh.Register("pass", func(ctx *Context, args []string) int {
			var buf bytes.Buffer
			buf.ReadFrom(ctx.Stdin)
			ctx.Stdout.Write(buf.Bytes())
			return 0
		})
	}, "echo joined |\npass")
	if out != "joined\n" {
		t.Errorf("out=%q", out)
	}
}

func TestBuiltinsListing(t *testing.T) {
	fs := vfs.New()
	sh := New(fs)
	names := sh.Builtins()
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	for _, n := range []string{"echo", "eval", "bind", "~", "true", "false"} {
		if !has(n) {
			t.Errorf("missing builtin %q", n)
		}
	}
}

func BenchmarkParseScript(b *testing.B) {
	script := "eval `{parse}\nx=`{cat /mnt/help/new/ctl}\n{\necho a\necho $dir/'\tClose!'\n} > /mnt/help/$x/ctl\n"
	for i := 0; i < b.N; i++ {
		if _, err := parse(script); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPipeline(b *testing.B) {
	fs := vfs.New()
	sh := New(fs)
	sh.Register("pass", func(ctx *Context, args []string) int {
		var buf bytes.Buffer
		buf.ReadFrom(ctx.Stdin)
		ctx.Stdout.Write(buf.Bytes())
		return 0
	})
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Reset()
		sh.Run(ctx, "echo data | pass | pass")
	}
}

func TestSwitch(t *testing.T) {
	out, _, status := run(t, nil, `service=terminal
switch($service){
case cpu
	echo on the cpu server
case terminal
	echo on the terminal
case *
	echo somewhere else
}`)
	if status != 0 || out != "on the terminal\n" {
		t.Errorf("status=%d out=%q", status, out)
	}
}

func TestSwitchDefaultArm(t *testing.T) {
	out, _, _ := run(t, nil, "x=odd\nswitch($x){\ncase a b\necho ab\ncase *\necho other\n}")
	if out != "other\n" {
		t.Errorf("out=%q", out)
	}
}

func TestSwitchNoMatchIsFine(t *testing.T) {
	out, _, status := run(t, nil, "switch(z){\ncase a\necho no\n}\necho after")
	if status != 0 || out != "after\n" {
		t.Errorf("status=%d out=%q", status, out)
	}
}

func TestSwitchMultipleCommandsPerArm(t *testing.T) {
	out, _, _ := run(t, nil, "switch(hit){\ncase hit\necho one\necho two\ncase *\necho never\n}")
	if out != "one\ntwo\n" {
		t.Errorf("out=%q", out)
	}
}

func TestSwitchParseErrors(t *testing.T) {
	for _, bad := range []string{
		"switch(x){\nnot-case\n}",
		"switch x { case a\necho y\n}",
		"switch(x){\ncase\necho y\n}",
		"switch(x){\ncase a\necho y",
	} {
		if _, _, status := run(t, nil, bad); status == 0 {
			t.Errorf("script %q should fail to parse", bad)
		}
	}
}

func TestWhile(t *testing.T) {
	out, _, status := run(t, func(fs *vfs.FS, sh *Shell) {
		count := 0
		sh.Register("threetimes", func(ctx *Context, args []string) int {
			count++
			if count > 3 {
				return 1
			}
			return 0
		})
	}, "while(threetimes) echo tick")
	if status != 0 || out != "tick\ntick\ntick\n" {
		t.Errorf("status=%d out=%q", status, out)
	}
}

func TestWhileNeverTrue(t *testing.T) {
	out, _, status := run(t, nil, "while(false) echo never\necho after")
	if status != 0 || out != "after\n" {
		t.Errorf("status=%d out=%q", status, out)
	}
}

func TestWhileRunawayCapped(t *testing.T) {
	_, errs, status := run(t, nil, "while(true) true")
	if status == 0 || !strings.Contains(errs, "iterations") {
		t.Errorf("runaway loop: status=%d errs=%q", status, errs)
	}
}

func TestIfNot(t *testing.T) {
	out, _, _ := run(t, nil, "if(false) echo then\nif not echo else-branch")
	if out != "else-branch\n" {
		t.Errorf("out=%q", out)
	}
	out, _, _ = run(t, nil, "if(true) echo then\nif not echo else-branch")
	if out != "then\n" {
		t.Errorf("out=%q", out)
	}
}

func TestIfNotClearedByInterveningCommand(t *testing.T) {
	out, _, _ := run(t, nil, "if(false) echo then\necho between\nif not echo stale")
	if out != "between\n" {
		t.Errorf("out=%q (if not must pair with the adjacent if)", out)
	}
}

func TestLexErrorWhileSkippingSeparators(t *testing.T) {
	// Regression for a fuzzer finding: a lexically invalid byte right
	// after a newline used to loop forever in the separator-skipping
	// paths. It must fail fast instead.
	for _, bad := range []string{"\n\x00", ";\x01", "echo a |\n\x00", "switch(x){\n\x00}"} {
		if _, _, status := run(t, nil, bad); status == 0 {
			t.Errorf("script %q should fail to parse", bad)
		}
	}
}

func TestRecursionCapped(t *testing.T) {
	// A self-calling function must error out, not blow the stack.
	_, errs, status := run(t, nil, "fn g { g }\ng")
	if status == 0 || !strings.Contains(errs, "depth") {
		t.Errorf("status=%d errs=%q", status, errs)
	}
	// Mutual recursion through scripts too.
	_, errs2, status2 := run(t, func(fs *vfs.FS, sh *Shell) {
		fs.WriteFile("/bin/a", []byte("b\n"))
		fs.WriteFile("/bin/b", []byte("a\n"))
	}, "a")
	if status2 == 0 || !strings.Contains(errs2, "depth") {
		t.Errorf("status=%d errs=%q", status2, errs2)
	}
}
