package text

import (
	"math/rand"
	"testing"
)

// checkLineIndex asserts that every line query answered from the
// incremental newline index agrees with a naive rescan of the contents.
func checkLineIndex(t *testing.T, b *Buffer) {
	t.Helper()
	s := []rune(b.String())
	var nl []int
	for i, r := range s {
		if r == '\n' {
			nl = append(nl, i)
		}
	}
	// NLines: count of lines, a trailing newline not starting a new one.
	wantN := 1
	if len(s) > 0 {
		wantN = len(nl) + 1
		if nl != nil && nl[len(nl)-1] == len(s)-1 {
			wantN = len(nl)
		}
	}
	if got := b.NLines(); got != wantN {
		t.Fatalf("NLines = %d, naive rescan says %d (%q)", got, wantN, string(s))
	}
	// LineAt: one more than the newlines strictly before the offset.
	line := 1
	for off := 0; off <= len(s); off++ {
		if got := b.LineAt(off); got != line {
			t.Fatalf("LineAt(%d) = %d, naive rescan says %d (%q)", off, got, line, string(s))
		}
		if off < len(s) && s[off] == '\n' {
			line++
		}
	}
	// LineStart / LineEnd for every line, plus addresses past the end.
	for ln := 1; ln <= line+2; ln++ {
		wantStart := len(s)
		if ln <= 1 {
			wantStart = 0
		} else if ln-2 < len(nl) {
			wantStart = nl[ln-2] + 1
		}
		if got := b.LineStart(ln); got != wantStart {
			t.Fatalf("LineStart(%d) = %d, naive rescan says %d (%q)", ln, got, wantStart, string(s))
		}
		wantEnd := wantStart
		for wantEnd < len(s) && s[wantEnd] != '\n' {
			wantEnd++
		}
		if got := b.LineEnd(ln); got != wantEnd {
			t.Fatalf("LineEnd(%d) = %d, naive rescan says %d (%q)", ln, got, wantEnd, string(s))
		}
	}
}

// applyIndexScript drives b through a byte-coded edit sequence, verifying
// the line index against a naive rescan after every operation.
func applyIndexScript(t *testing.T, b *Buffer, script []byte) {
	t.Helper()
	checkLineIndex(t, b)
	for i := 0; i+1 < len(script); i += 2 {
		op, arg := script[i]%6, int(script[i+1])
		switch op {
		case 0:
			b.Insert(arg%(b.Len()+1), "ab\ncd\n")
		case 1:
			b.Insert(arg%(b.Len()+1), "xyz")
		case 2:
			b.Insert(arg%(b.Len()+1), "\n")
		case 3:
			if b.Len() > 0 {
				off := arg % b.Len()
				b.Delete(off, arg%(b.Len()-off+1))
			}
		case 4:
			if !b.Undo() {
				b.Commit()
			}
		case 5:
			if !b.Redo() {
				b.Commit()
			}
		}
		checkLineIndex(t, b)
	}
}

// TestLineIndexProperty is the deterministic slice of the fuzz target: a
// seeded random walk of edits with the index checked after every step.
func TestLineIndexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		script := make([]byte, 60)
		rng.Read(script)
		initial := ""
		for i := 0; i < rng.Intn(100); i++ {
			initial += string(rune("a\nb\nc"[rng.Intn(5)]))
		}
		b := NewBuffer(initial)
		applyIndexScript(t, b, script)
	}
}

// FuzzLineIndex applies arbitrary edit scripts and asserts the incremental
// line index always agrees with a naive rescan: the equivalence proof for
// the cached answers.
func FuzzLineIndex(f *testing.F) {
	f.Add("line1\nline2\n", []byte{0, 3, 3, 7, 4, 0})
	f.Add("", []byte{2, 0, 2, 1, 3, 2})
	f.Add("no newline at all", []byte{1, 9, 3, 4, 5, 0})
	f.Add("\n\n\n", []byte{3, 1, 0, 0, 4, 0, 5, 0})
	f.Fuzz(func(t *testing.T, initial string, script []byte) {
		if len(initial) > 2048 || len(script) > 128 {
			return
		}
		b := NewBuffer(initial)
		applyIndexScript(t, b, script)
	})
}

// FuzzAddress resolves arbitrary address strings against arbitrary
// buffers; malformed addresses must error, never panic, and results must
// stay in range.
func FuzzAddress(f *testing.F) {
	f.Add("line1\nline2\n", "2")
	f.Add("hello", "#3")
	f.Add("find me", "/me/")
	f.Add("", "")
	f.Add("x", "#999")
	f.Add("x", "/missing/")
	f.Add("x", "notanaddr")
	f.Fuzz(func(t *testing.T, content, addr string) {
		if len(content) > 4096 || len(addr) > 64 {
			return
		}
		b := NewBuffer(content)
		q0, q1, err := b.Address(addr)
		if err != nil {
			return
		}
		if q0 < 0 || q1 < q0 || q1 > b.Len() {
			t.Fatalf("Address(%q) on %q = [%d,%d) out of [0,%d]", addr, content, q0, q1, b.Len())
		}
	})
}

// FuzzEditSequence applies a byte-coded edit script; the buffer must stay
// internally consistent and undo must restore the starting state.
func FuzzEditSequence(f *testing.F) {
	f.Add("seed text", []byte{0, 5, 1, 2, 2})
	f.Add("", []byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, initial string, script []byte) {
		if len(initial) > 1024 || len(script) > 256 {
			return
		}
		b := NewBuffer(initial)
		before := b.String()
		b.Commit()
		edits := 0
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]%3, int(script[i+1])
			switch op {
			case 0:
				b.Insert(arg%(b.Len()+1), "ab")
				edits++
			case 1:
				if b.Len() > 0 {
					off := arg % b.Len()
					n := arg % (b.Len() - off + 1)
					b.Delete(off, n)
					if n > 0 {
						edits++
					}
				}
			case 2:
				b.Commit()
			}
		}
		if b.Len() < 0 {
			t.Fatal("negative length")
		}
		for b.Undo() {
		}
		if b.String() != before {
			t.Fatalf("undo-all: %q != %q", b.String(), before)
		}
	})
}
