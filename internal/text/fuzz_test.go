package text

import "testing"

// FuzzAddress resolves arbitrary address strings against arbitrary
// buffers; malformed addresses must error, never panic, and results must
// stay in range.
func FuzzAddress(f *testing.F) {
	f.Add("line1\nline2\n", "2")
	f.Add("hello", "#3")
	f.Add("find me", "/me/")
	f.Add("", "")
	f.Add("x", "#999")
	f.Add("x", "/missing/")
	f.Add("x", "notanaddr")
	f.Fuzz(func(t *testing.T, content, addr string) {
		if len(content) > 4096 || len(addr) > 64 {
			return
		}
		b := NewBuffer(content)
		q0, q1, err := b.Address(addr)
		if err != nil {
			return
		}
		if q0 < 0 || q1 < q0 || q1 > b.Len() {
			t.Fatalf("Address(%q) on %q = [%d,%d) out of [0,%d]", addr, content, q0, q1, b.Len())
		}
	})
}

// FuzzEditSequence applies a byte-coded edit script; the buffer must stay
// internally consistent and undo must restore the starting state.
func FuzzEditSequence(f *testing.F) {
	f.Add("seed text", []byte{0, 5, 1, 2, 2})
	f.Add("", []byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, initial string, script []byte) {
		if len(initial) > 1024 || len(script) > 256 {
			return
		}
		b := NewBuffer(initial)
		before := b.String()
		b.Commit()
		edits := 0
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]%3, int(script[i+1])
			switch op {
			case 0:
				b.Insert(arg%(b.Len()+1), "ab")
				edits++
			case 1:
				if b.Len() > 0 {
					off := arg % b.Len()
					n := arg % (b.Len() - off + 1)
					b.Delete(off, n)
					if n > 0 {
						edits++
					}
				}
			case 2:
				b.Commit()
			}
		}
		if b.Len() < 0 {
			t.Fatal("negative length")
		}
		for b.Undo() {
		}
		if b.String() != before {
			t.Fatalf("undo-all: %q != %q", b.String(), before)
		}
	})
}
