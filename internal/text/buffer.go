// Package text implements the rune buffer underlying every help subwindow.
//
// A Buffer is a gap buffer of runes with an undo/redo log. Offsets are rune
// counts from the start of the buffer, matching the paper's model in which
// help passes applications "the file and character offset of the mouse
// position". The package also resolves the location syntax accepted by the
// Open command — :27 line numbers, and the "general locations" the paper
// mentions (:/pattern/ searches and :#offset character addresses), which we
// implement as one of the paper's future-work extensions.
package text

import (
	"errors"
	"fmt"
	"strings"
)

// Buffer is an editable sequence of runes.
//
// The zero value is an empty buffer ready to use. Buffer is not safe for
// concurrent use; help serializes all access through its event loop, as the
// original did.
type Buffer struct {
	// Gap buffer: runes[:gapStart] and runes[gapEnd:] hold the text.
	runes    []rune
	gapStart int
	gapEnd   int

	undo     []change
	redo     []change
	seq      int  // current transaction sequence number
	noUndo   bool // true while replaying undo/redo
	modified bool
}

// change records one primitive edit for the undo log.
type change struct {
	seq    int
	insert bool   // true: text was inserted at off; false: deleted
	off    int    // rune offset of the edit
	text   []rune // the inserted or deleted text
}

// NewBuffer returns a buffer initialized with the given text.
func NewBuffer(s string) *Buffer {
	b := &Buffer{}
	b.primInsert(0, []rune(s))
	b.undo = nil // initial content is not undoable
	b.modified = false
	return b
}

// Len returns the number of runes in the buffer.
func (b *Buffer) Len() int { return len(b.runes) - (b.gapEnd - b.gapStart) }

// Modified reports whether the buffer has been edited since the last call
// to SetClean. The help Put!/Get! commands use this to decide whether to
// show "Put!" in a window's tag.
func (b *Buffer) Modified() bool { return b.modified }

// SetClean marks the buffer unmodified, as after a Put! or Get!.
func (b *Buffer) SetClean() { b.modified = false }

// SetDirty marks the buffer modified without editing it, used by the file
// interface's "dirty" control message.
func (b *Buffer) SetDirty() { b.modified = true }

// moveGap positions the gap at rune offset off.
func (b *Buffer) moveGap(off int) {
	if off < b.gapStart {
		n := b.gapStart - off
		copy(b.runes[b.gapEnd-n:b.gapEnd], b.runes[off:b.gapStart])
		b.gapStart = off
		b.gapEnd -= n
	} else if off > b.gapStart {
		n := off - b.gapStart
		copy(b.runes[b.gapStart:], b.runes[b.gapEnd:b.gapEnd+n])
		b.gapStart += n
		b.gapEnd += n
	}
}

// grow ensures the gap has room for at least n more runes.
func (b *Buffer) grow(n int) {
	gap := b.gapEnd - b.gapStart
	if gap >= n {
		return
	}
	newCap := len(b.runes)*2 + n
	if newCap < 64 {
		newCap = 64 + n
	}
	nr := make([]rune, newCap)
	copy(nr, b.runes[:b.gapStart])
	tail := len(b.runes) - b.gapEnd
	copy(nr[newCap-tail:], b.runes[b.gapEnd:])
	b.gapEnd = newCap - tail
	b.runes = nr
}

// primInsert inserts without recording undo.
func (b *Buffer) primInsert(off int, rs []rune) {
	if off < 0 || off > b.Len() {
		panic(fmt.Sprintf("text: insert offset %d out of range [0,%d]", off, b.Len()))
	}
	b.grow(len(rs))
	b.moveGap(off)
	copy(b.runes[b.gapStart:], rs)
	b.gapStart += len(rs)
}

// primDelete deletes without recording undo and returns the removed runes.
func (b *Buffer) primDelete(off, n int) []rune {
	if off < 0 || n < 0 || off+n > b.Len() {
		panic(fmt.Sprintf("text: delete [%d,%d) out of range [0,%d]", off, off+n, b.Len()))
	}
	b.moveGap(off)
	removed := make([]rune, n)
	copy(removed, b.runes[b.gapEnd:b.gapEnd+n])
	b.gapEnd += n
	return removed
}

// Insert inserts s at rune offset off.
func (b *Buffer) Insert(off int, s string) {
	rs := []rune(s)
	if len(rs) == 0 {
		return
	}
	b.primInsert(off, rs)
	b.modified = true
	if !b.noUndo {
		b.undo = append(b.undo, change{seq: b.seq, insert: true, off: off, text: rs})
		b.redo = nil
	}
}

// Delete removes n runes starting at off and returns them as a string.
func (b *Buffer) Delete(off, n int) string {
	if n == 0 {
		return ""
	}
	removed := b.primDelete(off, n)
	b.modified = true
	if !b.noUndo {
		b.undo = append(b.undo, change{seq: b.seq, insert: false, off: off, text: removed})
		b.redo = nil
	}
	return string(removed)
}

// Replace substitutes the range [off, off+n) with s as a single undo step.
func (b *Buffer) Replace(off, n int, s string) {
	b.Commit()
	b.Delete(off, n)
	b.Insert(off, s)
	b.Commit()
}

// Commit marks a transaction boundary: edits made after Commit undo
// separately from edits made before it.
func (b *Buffer) Commit() { b.seq++ }

// Undo reverses the most recent transaction. It reports whether anything
// was undone.
func (b *Buffer) Undo() bool {
	if len(b.undo) == 0 {
		return false
	}
	b.noUndo = true
	defer func() { b.noUndo = false }()
	seq := b.undo[len(b.undo)-1].seq
	for len(b.undo) > 0 && b.undo[len(b.undo)-1].seq == seq {
		c := b.undo[len(b.undo)-1]
		b.undo = b.undo[:len(b.undo)-1]
		if c.insert {
			b.primDelete(c.off, len(c.text))
		} else {
			b.primInsert(c.off, c.text)
		}
		b.redo = append(b.redo, c)
	}
	b.modified = true
	return true
}

// Redo reapplies the most recently undone transaction. It reports whether
// anything was redone.
func (b *Buffer) Redo() bool {
	if len(b.redo) == 0 {
		return false
	}
	b.noUndo = true
	defer func() { b.noUndo = false }()
	seq := b.redo[len(b.redo)-1].seq
	for len(b.redo) > 0 && b.redo[len(b.redo)-1].seq == seq {
		c := b.redo[len(b.redo)-1]
		b.redo = b.redo[:len(b.redo)-1]
		if c.insert {
			b.primInsert(c.off, c.text)
		} else {
			b.primDelete(c.off, len(c.text))
		}
		b.undo = append(b.undo, c)
	}
	b.modified = true
	return true
}

// CanUndo reports whether Undo would do anything.
func (b *Buffer) CanUndo() bool { return len(b.undo) > 0 }

// CanRedo reports whether Redo would do anything.
func (b *Buffer) CanRedo() bool { return len(b.redo) > 0 }

// At returns the rune at offset off. It panics if off is out of range.
func (b *Buffer) At(off int) rune {
	if off < 0 || off >= b.Len() {
		panic(fmt.Sprintf("text: At(%d) out of range [0,%d)", off, b.Len()))
	}
	if off < b.gapStart {
		return b.runes[off]
	}
	return b.runes[off+(b.gapEnd-b.gapStart)]
}

// Slice returns the runes in [off, off+n) as a string, clamped to the
// buffer bounds.
func (b *Buffer) Slice(off, n int) string {
	if off < 0 {
		n += off
		off = 0
	}
	if off > b.Len() {
		return ""
	}
	if off+n > b.Len() {
		n = b.Len() - off
	}
	if n <= 0 {
		return ""
	}
	out := make([]rune, n)
	for i := 0; i < n; i++ {
		out[i] = b.At(off + i)
	}
	return string(out)
}

// String returns the whole buffer contents.
func (b *Buffer) String() string { return b.Slice(0, b.Len()) }

// SetString replaces the entire contents as a single undoable transaction,
// as the Get! command does.
func (b *Buffer) SetString(s string) {
	b.Replace(0, b.Len(), s)
}

// LineStart returns the offset of the first rune of 1-based line number ln.
// Lines past the end resolve to the buffer length.
func (b *Buffer) LineStart(ln int) int {
	if ln <= 1 {
		return 0
	}
	line := 1
	for off := 0; off < b.Len(); off++ {
		if b.At(off) == '\n' {
			line++
			if line == ln {
				return off + 1
			}
		}
	}
	return b.Len()
}

// LineEnd returns the offset just past the last rune of line ln, excluding
// the newline itself.
func (b *Buffer) LineEnd(ln int) int {
	off := b.LineStart(ln)
	for off < b.Len() && b.At(off) != '\n' {
		off++
	}
	return off
}

// LineAt returns the 1-based line number containing offset off.
func (b *Buffer) LineAt(off int) int {
	if off > b.Len() {
		off = b.Len()
	}
	line := 1
	for i := 0; i < off; i++ {
		if b.At(i) == '\n' {
			line++
		}
	}
	return line
}

// NLines returns the number of lines in the buffer. An empty buffer has
// one (empty) line; a trailing newline does not start a new line.
func (b *Buffer) NLines() int {
	if b.Len() == 0 {
		return 1
	}
	n := 1
	for i := 0; i < b.Len(); i++ {
		if b.At(i) == '\n' && i != b.Len()-1 {
			n++
		}
	}
	return n
}

// ErrNoMatch is returned by Address when a pattern search fails.
var ErrNoMatch = errors.New("text: no match")

// Address resolves the location syntax accepted after a file name:
//
//	27        line 27 (window positioned so the line is visible and selected)
//	#123      character (rune) offset 123
//	/pat/     first literal occurrence of pat, searching forward from 0
//
// It returns the rune range [q0, q1) to select.
func (b *Buffer) Address(addr string) (q0, q1 int, err error) {
	switch {
	case addr == "":
		return 0, 0, nil
	case addr[0] == '#':
		var off int
		if _, err := fmt.Sscanf(addr[1:], "%d", &off); err != nil {
			return 0, 0, fmt.Errorf("text: bad address %q", addr)
		}
		if off < 0 {
			off = 0
		}
		if off > b.Len() {
			off = b.Len()
		}
		return off, off, nil
	case addr[0] == '/':
		pat := strings.TrimPrefix(addr, "/")
		pat = strings.TrimSuffix(pat, "/")
		if pat == "" {
			return 0, 0, fmt.Errorf("text: empty pattern")
		}
		// Search rune-wise: a byte-level index could land inside a
		// multi-byte rune and produce offsets past the buffer.
		needle := []rune(pat)
		n := b.Len()
	search:
		for i := 0; i+len(needle) <= n; i++ {
			for j, r := range needle {
				if b.At(i+j) != r {
					continue search
				}
			}
			return i, i + len(needle), nil
		}
		return 0, 0, ErrNoMatch
	default:
		var ln int
		if _, err := fmt.Sscanf(addr, "%d", &ln); err != nil {
			return 0, 0, fmt.Errorf("text: bad address %q", addr)
		}
		if ln < 1 {
			ln = 1
		}
		return b.LineStart(ln), b.LineEnd(ln), nil
	}
}
