// Package text implements the rune buffer underlying every help subwindow.
//
// A Buffer is an editable rune sequence with an undo/redo log. Offsets are
// rune counts from the start of the buffer, matching the paper's model in
// which help passes applications "the file and character offset of the mouse
// position". Storage is pluggable behind the backing interface: small bodies
// live in the original in-memory gap buffer, while large files use a piece
// table over lazily paged-in file segments (see LoadPaged) so a gigabyte log
// costs memory proportional to what is being looked at, not to its size.
// The package also resolves the location syntax accepted by the Open
// command — :27 line numbers, and the "general locations" the paper
// mentions (:/pattern/ searches and :#offset character addresses), which we
// implement as one of the paper's future-work extensions.
package text

import (
	"errors"
	"fmt"
	"strings"
)

// Buffer is an editable sequence of runes.
//
// The zero value is an empty buffer ready to use. Buffer is not safe for
// concurrent use; help serializes all access through its event loop, as the
// original did.
type Buffer struct {
	back backing

	// mem is back when back is the resident gap buffer, else nil. It
	// exists so the per-rune hot path (Len, At — called once per cell
	// by every reflow) dispatches on a concrete type the compiler can
	// inline instead of paying two interface calls per rune.
	mem *memBacking

	// gen counts primitive edits (including undo/redo replay). Frames
	// compare it against the generation they laid out to decide whether
	// a relayout is needed.
	gen uint64

	undo   []change
	redo   []change
	seq    int  // current transaction sequence number
	noUndo bool // true while replaying undo/redo

	// Clean-state tracking for Modified: cleanLen is the undo-log length
	// at the last SetClean (or creation); cleanGone is set once that
	// state becomes unreachable — the redo history holding it was
	// truncated by a fresh edit, or SetDirty forced the buffer dirty.
	// Undoing back to exactly cleanLen entries restores Modified()==false.
	cleanLen  int
	cleanGone bool
	modified  bool

	// onSplice, when set, observes every primitive mutation — including
	// undo/redo replay and SetString — after it has been applied. The
	// session journal hangs off this hook: primInsert/primDelete are the
	// single choke point all edits funnel through, so one callback
	// captures every way a buffer can change.
	onSplice func(off, ndel int, ins string)

	// onMem, when set, observes the buffer's resident size moving. It is
	// installed into the backing, which fires it with signed rune deltas:
	// edits for the in-memory backing, and additionally page-in/eviction
	// for the paged backing. It is a slot separate from SetOnSplice so
	// memory accounting composes with the journal.
	onMem func(delta int)
}

// change records one primitive edit for the undo log.
type change struct {
	seq    int
	insert bool   // true: text was inserted at off; false: deleted
	off    int    // rune offset of the edit
	text   []rune // the inserted or deleted text
}

// NewBuffer returns a buffer initialized with the given text.
func NewBuffer(s string) *Buffer {
	m := newMemBacking()
	b := &Buffer{back: m, mem: m}
	b.primInsert(0, []rune(s))
	b.undo = nil // initial content is not undoable
	b.modified = false
	return b
}

// bk returns the storage engine, installing the in-memory one on first
// use so the zero-value Buffer stays ready to use.
func (b *Buffer) bk() backing {
	if b.back == nil {
		m := newMemBacking()
		b.back = m
		b.mem = m
	}
	return b.back
}

// Len returns the number of runes in the buffer.
func (b *Buffer) Len() int {
	if m := b.mem; m != nil {
		return m.length()
	}
	return b.bk().length()
}

// MemRunes returns the number of runes resident in process memory. For an
// in-memory buffer this equals Len; for a paged buffer it is the cached
// pages plus edits, which is what the session memory budget charges.
func (b *Buffer) MemRunes() int { return b.bk().memRunes() }

// Paged reports whether the buffer is backed by the paged piece table
// rather than the fully resident gap buffer.
func (b *Buffer) Paged() bool {
	_, ok := b.back.(*pagedBacking)
	return ok
}

// Modified reports whether the buffer differs from its state at the last
// call to SetClean. The help Put!/Get! commands use this to decide whether
// to show "Put!" in a window's tag; undoing every edit back to the clean
// state clears it again.
func (b *Buffer) Modified() bool { return b.modified }

// SetClean marks the buffer unmodified, as after a Put! or Get!. The
// current undo position becomes the clean state: Undo/Redo landing back on
// it restore Modified() == false.
func (b *Buffer) SetClean() {
	b.cleanLen = len(b.undo)
	b.cleanGone = false
	b.modified = false
}

// SetDirty marks the buffer modified without editing it, used by the file
// interface's "dirty" control message. No undo position counts as clean
// afterwards, until the next SetClean.
func (b *Buffer) SetDirty() {
	b.cleanGone = true
	b.modified = true
}

// recomputeModified derives the modified flag from the undo position: the
// buffer is clean exactly when the undo log is back at the length recorded
// by SetClean and that state is still reachable.
func (b *Buffer) recomputeModified() {
	b.modified = b.cleanGone || len(b.undo) != b.cleanLen
}

// Gen returns the buffer's edit generation: a counter bumped by every
// primitive edit, including undo/redo replay. Equal generations imply
// identical contents since the earlier observation, which is what frame
// damage checks rely on.
func (b *Buffer) Gen() uint64 { return b.gen }

// primInsert inserts without recording undo.
func (b *Buffer) primInsert(off int, rs []rune) {
	if off < 0 || off > b.Len() {
		panic(fmt.Sprintf("text: insert offset %d out of range [0,%d]", off, b.Len()))
	}
	b.bk().insert(off, rs)
	b.gen++
	if b.onSplice != nil {
		b.onSplice(off, 0, string(rs))
	}
}

// primDelete deletes without recording undo. The removed runes are
// materialized and returned only when want is true; undo replay of an
// insert and wholesale reloads pass false, which lets a paged backing
// drop piece references without faulting their pages in.
func (b *Buffer) primDelete(off, n int, want bool) []rune {
	if off < 0 || n < 0 || off+n > b.Len() {
		panic(fmt.Sprintf("text: delete [%d,%d) out of range [0,%d]", off, off+n, b.Len()))
	}
	removed := b.bk().remove(off, n, want)
	b.gen++
	if b.onSplice != nil {
		b.onSplice(off, n, "")
	}
	return removed
}

// Insert inserts s at rune offset off.
func (b *Buffer) Insert(off int, s string) {
	rs := []rune(s)
	if len(rs) == 0 {
		return
	}
	b.primInsert(off, rs)
	if !b.noUndo {
		if b.cleanLen > len(b.undo) {
			// The clean state lived in the redo history about to be
			// truncated; it is no longer reachable by Undo/Redo.
			b.cleanGone = true
		}
		b.undo = append(b.undo, change{seq: b.seq, insert: true, off: off, text: rs})
		b.redo = nil
	}
	b.recomputeModified()
}

// Delete removes n runes starting at off and returns them as a string.
func (b *Buffer) Delete(off, n int) string {
	if n == 0 {
		return ""
	}
	removed := b.primDelete(off, n, true)
	if !b.noUndo {
		if b.cleanLen > len(b.undo) {
			b.cleanGone = true
		}
		b.undo = append(b.undo, change{seq: b.seq, insert: false, off: off, text: removed})
		b.redo = nil
	}
	b.recomputeModified()
	return string(removed)
}

// Replace substitutes the range [off, off+n) with s as a single undo step.
func (b *Buffer) Replace(off, n int, s string) {
	b.Commit()
	b.Delete(off, n)
	b.Insert(off, s)
	b.Commit()
}

// Commit marks a transaction boundary: edits made after Commit undo
// separately from edits made before it.
func (b *Buffer) Commit() { b.seq++ }

// Undo reverses the most recent transaction. It reports whether anything
// was undone.
func (b *Buffer) Undo() bool {
	if len(b.undo) == 0 {
		return false
	}
	b.noUndo = true
	defer func() { b.noUndo = false }()
	seq := b.undo[len(b.undo)-1].seq
	for len(b.undo) > 0 && b.undo[len(b.undo)-1].seq == seq {
		c := b.undo[len(b.undo)-1]
		b.undo = b.undo[:len(b.undo)-1]
		if c.insert {
			b.primDelete(c.off, len(c.text), false)
		} else {
			b.primInsert(c.off, c.text)
		}
		b.redo = append(b.redo, c)
	}
	b.recomputeModified()
	return true
}

// Redo reapplies the most recently undone transaction. It reports whether
// anything was redone.
func (b *Buffer) Redo() bool {
	if len(b.redo) == 0 {
		return false
	}
	b.noUndo = true
	defer func() { b.noUndo = false }()
	seq := b.redo[len(b.redo)-1].seq
	for len(b.redo) > 0 && b.redo[len(b.redo)-1].seq == seq {
		c := b.redo[len(b.redo)-1]
		b.redo = b.redo[:len(b.redo)-1]
		if c.insert {
			b.primInsert(c.off, c.text)
		} else {
			b.primDelete(c.off, len(c.text), false)
		}
		b.undo = append(b.undo, c)
	}
	b.recomputeModified()
	return true
}

// CanUndo reports whether Undo would do anything.
func (b *Buffer) CanUndo() bool { return len(b.undo) > 0 }

// CanRedo reports whether Redo would do anything.
func (b *Buffer) CanRedo() bool { return len(b.redo) > 0 }

// At returns the rune at offset off. It panics if off is out of range.
func (b *Buffer) At(off int) rune {
	// Happy path only, kept small enough to inline into render loops;
	// everything else — paged backing, out-of-range panic — is atSlow.
	if m := b.mem; m != nil && off >= 0 {
		if off < m.gapStart {
			return m.runes[off]
		}
		if i := off + (m.gapEnd - m.gapStart); i < len(m.runes) {
			return m.runes[i]
		}
	}
	return b.atSlow(off)
}

func (b *Buffer) atSlow(off int) rune {
	if off < 0 || off >= b.Len() {
		panic(fmt.Sprintf("text: At(%d) out of range [0,%d)", off, b.Len()))
	}
	return b.bk().at(off)
}

// Slice returns the runes in [off, off+n) as a string, clamped to the
// buffer bounds.
func (b *Buffer) Slice(off, n int) string {
	if off < 0 {
		n += off
		off = 0
	}
	if off > b.Len() {
		return ""
	}
	if off+n > b.Len() {
		n = b.Len() - off
	}
	if n <= 0 {
		return ""
	}
	out := make([]rune, 0, n)
	out = b.bk().appendRange(out, off, n)
	return string(out)
}

// String returns the whole buffer contents.
func (b *Buffer) String() string { return b.Slice(0, b.Len()) }

// SetString replaces the entire contents as a single undoable transaction,
// as the Get! command does.
func (b *Buffer) SetString(s string) {
	b.Replace(0, b.Len(), s)
}

// SetOnSplice installs (or, with nil, removes) the splice observer: a
// callback invoked after every primitive mutation with the rune offset,
// the number of runes deleted there, and the runes inserted. Exactly one
// of ndel/ins is non-zero per call. The callback must not mutate the
// buffer.
func (b *Buffer) SetOnSplice(fn func(off, ndel int, ins string)) {
	b.onSplice = fn
}

// SetOnMem installs (or, with nil, removes) the resident-size observer:
// a callback invoked with signed rune deltas whenever the buffer's
// resident size moves — on every edit, and for paged buffers also on
// page-in and eviction. It is a slot separate from SetOnSplice so memory
// accounting composes with the journal. The callback must not mutate
// the buffer.
func (b *Buffer) SetOnMem(fn func(delta int)) {
	b.onMem = fn
	b.bk().setOnMem(fn)
}

// Load replaces the entire contents without recording undo and marks the
// buffer clean, as when a window adopts a file's contents wholesale. The
// undo and redo histories are discarded; the splice observer, if any,
// stays installed and sees the replacement as a delete plus an insert.
func (b *Buffer) Load(s string) {
	b.noUndo = true
	if n := b.Len(); n > 0 {
		b.primDelete(0, n, false)
	}
	if rs := []rune(s); len(rs) > 0 {
		b.primInsert(0, rs)
	}
	b.noUndo = false
	b.undo = nil
	b.redo = nil
	b.SetClean()
}

// swapBacking replaces the storage engine wholesale, with the same
// observable semantics as Load: the splice observer sees a delete of the
// old contents and an insert of the new, the generation bumps for each,
// residency accounting transfers from the old backing to the new, and the
// undo/redo histories are discarded with the buffer left clean.
//
// The insert half materializes the new contents as a string only when a
// splice observer is installed (the journal needs the text); without one,
// adopting a paged backing stays lazy.
func (b *Buffer) swapBacking(nb backing) {
	old := b.bk()
	oldLen := old.length()
	if oldLen > 0 {
		b.gen++
		if b.onSplice != nil {
			b.onSplice(0, oldLen, "")
		}
	}
	old.setOnMem(nil)
	if b.onMem != nil {
		if n := old.memRunes(); n != 0 {
			b.onMem(-n)
		}
	}
	b.back = nb
	b.mem, _ = nb.(*memBacking)
	if b.onMem != nil {
		if n := nb.memRunes(); n != 0 {
			b.onMem(n)
		}
	}
	nb.setOnMem(b.onMem)
	if nb.length() > 0 {
		b.gen++
		if b.onSplice != nil {
			b.onSplice(0, 0, b.String())
		}
	}
	b.undo = nil
	b.redo = nil
	b.SetClean()
}

// LoadPaged replaces the entire contents with a paged view of src, the
// piece-table analogue of Load: the file's bytes page in on demand as the
// buffer is read, with at most maxResident bytes of decoded text held
// resident at once (minimum one page). Building the view streams src once
// to index page boundaries and newlines — a byte scan, with no rune
// materialization — so line queries never touch unresident pages.
//
// On error the buffer is left unchanged. Edits, undo, generations, and
// splice observation behave identically to an in-memory buffer.
func (b *Buffer) LoadPaged(src Source, maxResident int64) error {
	nb, err := newPagedBacking(src, maxResident, defaultPageBytes)
	if err != nil {
		return err
	}
	b.swapBacking(nb)
	return nil
}

// AdoptClone replaces the contents with a structural clone of src's
// storage: pieces and indexes are copied, but file-backed page data is
// shared lazily rather than materialized, so cloning a paged gigabyte
// window costs the piece table, not the text. Undo history is not
// inherited and the buffer starts clean, exactly like Load.
func (b *Buffer) AdoptClone(src *Buffer) {
	b.swapBacking(src.back.clone())
}

// ApplySplice applies a journaled primitive mutation: delete ndel runes
// at off, then insert ins there. It bypasses the undo log and does not
// touch the modified flag — recovery replays clean-state transitions as
// separate records — and returns an error instead of panicking on an
// out-of-range splice, because a journal's word is not to be trusted.
func (b *Buffer) ApplySplice(off, ndel int, ins string) error {
	if off < 0 || ndel < 0 || off+ndel > b.Len() {
		return fmt.Errorf("text: splice [%d,%d) out of range [0,%d]", off, off+ndel, b.Len())
	}
	if ndel > 0 {
		b.primDelete(off, ndel, false)
	}
	if rs := []rune(ins); len(rs) > 0 {
		b.primInsert(off, rs)
	}
	return nil
}

// LineStart returns the offset of the first rune of 1-based line number ln.
// Lines past the end resolve to the buffer length. Line ln starts just
// after the (ln-1)th newline, so this is a direct index lookup.
func (b *Buffer) LineStart(ln int) int {
	if ln <= 1 {
		return 0
	}
	if ln-2 < b.bk().nNewlines() {
		return b.bk().newlineOff(ln-2) + 1
	}
	return b.Len()
}

// LineEnd returns the offset just past the last rune of line ln, excluding
// the newline itself: the first newline at or after the line's start.
func (b *Buffer) LineEnd(ln int) int {
	off := b.LineStart(ln)
	if i := b.bk().newlineIdx(off); i < b.bk().nNewlines() {
		return b.bk().newlineOff(i)
	}
	return b.Len()
}

// LineAt returns the 1-based line number containing offset off: one more
// than the number of newlines strictly before it.
func (b *Buffer) LineAt(off int) int {
	if off > b.Len() {
		off = b.Len()
	}
	return b.bk().newlineIdx(off) + 1
}

// NLines returns the number of lines in the buffer. An empty buffer has
// one (empty) line; a trailing newline does not start a new line.
func (b *Buffer) NLines() int {
	n := b.Len()
	if n == 0 {
		return 1
	}
	k := b.bk().nNewlines()
	if k > 0 && b.bk().newlineOff(k-1) == n-1 {
		return k // trailing newline: no extra line after it
	}
	return k + 1
}

// ErrNoMatch is returned by Address when a pattern search fails.
var ErrNoMatch = errors.New("text: no match")

// Address resolves the location syntax accepted after a file name:
//
//	27        line 27 (window positioned so the line is visible and selected)
//	#123      character (rune) offset 123
//	/pat/     first literal occurrence of pat, searching forward from 0
//
// It returns the rune range [q0, q1) to select.
func (b *Buffer) Address(addr string) (q0, q1 int, err error) {
	switch {
	case addr == "":
		return 0, 0, nil
	case addr[0] == '#':
		var off int
		if _, err := fmt.Sscanf(addr[1:], "%d", &off); err != nil {
			return 0, 0, fmt.Errorf("text: bad address %q", addr)
		}
		if off < 0 {
			off = 0
		}
		if off > b.Len() {
			off = b.Len()
		}
		return off, off, nil
	case addr[0] == '/':
		pat := strings.TrimPrefix(addr, "/")
		pat = strings.TrimSuffix(pat, "/")
		if pat == "" {
			return 0, 0, fmt.Errorf("text: empty pattern")
		}
		// Search rune-wise: a byte-level index could land inside a
		// multi-byte rune and produce offsets past the buffer.
		needle := []rune(pat)
		n := b.Len()
	search:
		for i := 0; i+len(needle) <= n; i++ {
			for j, r := range needle {
				if b.At(i+j) != r {
					continue search
				}
			}
			return i, i + len(needle), nil
		}
		return 0, 0, ErrNoMatch
	default:
		var ln int
		if _, err := fmt.Sscanf(addr, "%d", &ln); err != nil {
			return 0, 0, fmt.Errorf("text: bad address %q", addr)
		}
		if ln < 1 {
			ln = 1
		}
		return b.LineStart(ln), b.LineEnd(ln), nil
	}
}
