// Package text implements the rune buffer underlying every help subwindow.
//
// A Buffer is a gap buffer of runes with an undo/redo log. Offsets are rune
// counts from the start of the buffer, matching the paper's model in which
// help passes applications "the file and character offset of the mouse
// position". The package also resolves the location syntax accepted by the
// Open command — :27 line numbers, and the "general locations" the paper
// mentions (:/pattern/ searches and :#offset character addresses), which we
// implement as one of the paper's future-work extensions.
package text

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Buffer is an editable sequence of runes.
//
// The zero value is an empty buffer ready to use. Buffer is not safe for
// concurrent use; help serializes all access through its event loop, as the
// original did.
type Buffer struct {
	// Gap buffer: runes[:gapStart] and runes[gapEnd:] hold the text.
	runes    []rune
	gapStart int
	gapEnd   int

	// newlines is the line index: the offset of every '\n' in the text,
	// ascending. primInsert/primDelete maintain it incrementally, so the
	// line queries (LineStart, LineEnd, LineAt, NLines) are binary
	// searches or direct lookups instead of full buffer scans.
	newlines []int

	// gen counts primitive edits (including undo/redo replay). Frames
	// compare it against the generation they laid out to decide whether
	// a relayout is needed.
	gen uint64

	undo   []change
	redo   []change
	seq    int  // current transaction sequence number
	noUndo bool // true while replaying undo/redo

	// Clean-state tracking for Modified: cleanLen is the undo-log length
	// at the last SetClean (or creation); cleanGone is set once that
	// state becomes unreachable — the redo history holding it was
	// truncated by a fresh edit, or SetDirty forced the buffer dirty.
	// Undoing back to exactly cleanLen entries restores Modified()==false.
	cleanLen  int
	cleanGone bool
	modified  bool

	// onSplice, when set, observes every primitive mutation — including
	// undo/redo replay and SetString — after it has been applied. The
	// session journal hangs off this hook: primInsert/primDelete are the
	// single choke point all edits funnel through, so one callback
	// captures every way a buffer can change.
	onSplice func(off, ndel int, ins string)

	// onMem, when set, observes the buffer's resident size moving:
	// delta is the rune-count change of each primitive mutation.
	// Memory accounting hangs off this separate hook because the
	// journal owns onSplice — the two observers must not fight over
	// one slot.
	onMem func(delta int)
}

// change records one primitive edit for the undo log.
type change struct {
	seq    int
	insert bool   // true: text was inserted at off; false: deleted
	off    int    // rune offset of the edit
	text   []rune // the inserted or deleted text
}

// NewBuffer returns a buffer initialized with the given text.
func NewBuffer(s string) *Buffer {
	b := &Buffer{}
	b.primInsert(0, []rune(s))
	b.undo = nil // initial content is not undoable
	b.modified = false
	return b
}

// Len returns the number of runes in the buffer.
func (b *Buffer) Len() int { return len(b.runes) - (b.gapEnd - b.gapStart) }

// Modified reports whether the buffer differs from its state at the last
// call to SetClean. The help Put!/Get! commands use this to decide whether
// to show "Put!" in a window's tag; undoing every edit back to the clean
// state clears it again.
func (b *Buffer) Modified() bool { return b.modified }

// SetClean marks the buffer unmodified, as after a Put! or Get!. The
// current undo position becomes the clean state: Undo/Redo landing back on
// it restore Modified() == false.
func (b *Buffer) SetClean() {
	b.cleanLen = len(b.undo)
	b.cleanGone = false
	b.modified = false
}

// SetDirty marks the buffer modified without editing it, used by the file
// interface's "dirty" control message. No undo position counts as clean
// afterwards, until the next SetClean.
func (b *Buffer) SetDirty() {
	b.cleanGone = true
	b.modified = true
}

// recomputeModified derives the modified flag from the undo position: the
// buffer is clean exactly when the undo log is back at the length recorded
// by SetClean and that state is still reachable.
func (b *Buffer) recomputeModified() {
	b.modified = b.cleanGone || len(b.undo) != b.cleanLen
}

// Gen returns the buffer's edit generation: a counter bumped by every
// primitive edit, including undo/redo replay. Equal generations imply
// identical contents since the earlier observation, which is what frame
// damage checks rely on.
func (b *Buffer) Gen() uint64 { return b.gen }

// moveGap positions the gap at rune offset off.
func (b *Buffer) moveGap(off int) {
	if off < b.gapStart {
		n := b.gapStart - off
		copy(b.runes[b.gapEnd-n:b.gapEnd], b.runes[off:b.gapStart])
		b.gapStart = off
		b.gapEnd -= n
	} else if off > b.gapStart {
		n := off - b.gapStart
		copy(b.runes[b.gapStart:], b.runes[b.gapEnd:b.gapEnd+n])
		b.gapStart += n
		b.gapEnd += n
	}
}

// grow ensures the gap has room for at least n more runes.
func (b *Buffer) grow(n int) {
	gap := b.gapEnd - b.gapStart
	if gap >= n {
		return
	}
	newCap := len(b.runes)*2 + n
	if newCap < 64 {
		newCap = 64 + n
	}
	nr := make([]rune, newCap)
	copy(nr, b.runes[:b.gapStart])
	tail := len(b.runes) - b.gapEnd
	copy(nr[newCap-tail:], b.runes[b.gapEnd:])
	b.gapEnd = newCap - tail
	b.runes = nr
}

// primInsert inserts without recording undo.
func (b *Buffer) primInsert(off int, rs []rune) {
	if off < 0 || off > b.Len() {
		panic(fmt.Sprintf("text: insert offset %d out of range [0,%d]", off, b.Len()))
	}
	b.grow(len(rs))
	b.moveGap(off)
	copy(b.runes[b.gapStart:], rs)
	b.gapStart += len(rs)
	b.indexInsert(off, rs)
	b.gen++
	if b.onMem != nil && len(rs) > 0 {
		b.onMem(len(rs))
	}
	if b.onSplice != nil {
		b.onSplice(off, 0, string(rs))
	}
}

// primDelete deletes without recording undo and returns the removed runes.
func (b *Buffer) primDelete(off, n int) []rune {
	if off < 0 || n < 0 || off+n > b.Len() {
		panic(fmt.Sprintf("text: delete [%d,%d) out of range [0,%d]", off, off+n, b.Len()))
	}
	b.moveGap(off)
	removed := make([]rune, n)
	copy(removed, b.runes[b.gapEnd:b.gapEnd+n])
	b.gapEnd += n
	b.indexDelete(off, n)
	b.gen++
	if b.onMem != nil && n > 0 {
		b.onMem(-n)
	}
	if b.onSplice != nil {
		b.onSplice(off, n, "")
	}
	return removed
}

// indexInsert splices rs's newlines into the line index and shifts every
// later newline by len(rs). The shift is a bulk pass over the tail of the
// index, so an append to the end of the buffer costs only the scan of rs.
func (b *Buffer) indexInsert(off int, rs []rune) {
	count := 0
	for _, r := range rs {
		if r == '\n' {
			count++
		}
	}
	i := sort.SearchInts(b.newlines, off)
	if count > 0 {
		old := len(b.newlines)
		for len(b.newlines) < old+count {
			// Amortized growth; no temporary slice of the added offsets.
			b.newlines = append(b.newlines, 0)
		}
		copy(b.newlines[i+count:], b.newlines[i:old])
		idx := i
		for j, r := range rs {
			if r == '\n' {
				b.newlines[idx] = off + j
				idx++
			}
		}
		i += count
	}
	for k := i; k < len(b.newlines); k++ {
		b.newlines[k] += len(rs)
	}
}

// indexDelete drops newlines inside the deleted range [off, off+n) and
// shifts every later newline down by n.
func (b *Buffer) indexDelete(off, n int) {
	i := sort.SearchInts(b.newlines, off)
	j := sort.SearchInts(b.newlines, off+n)
	if i != j {
		copy(b.newlines[i:], b.newlines[j:])
		b.newlines = b.newlines[:len(b.newlines)-(j-i)]
	}
	for k := i; k < len(b.newlines); k++ {
		b.newlines[k] -= n
	}
}

// Insert inserts s at rune offset off.
func (b *Buffer) Insert(off int, s string) {
	rs := []rune(s)
	if len(rs) == 0 {
		return
	}
	b.primInsert(off, rs)
	if !b.noUndo {
		if b.cleanLen > len(b.undo) {
			// The clean state lived in the redo history about to be
			// truncated; it is no longer reachable by Undo/Redo.
			b.cleanGone = true
		}
		b.undo = append(b.undo, change{seq: b.seq, insert: true, off: off, text: rs})
		b.redo = nil
	}
	b.recomputeModified()
}

// Delete removes n runes starting at off and returns them as a string.
func (b *Buffer) Delete(off, n int) string {
	if n == 0 {
		return ""
	}
	removed := b.primDelete(off, n)
	if !b.noUndo {
		if b.cleanLen > len(b.undo) {
			b.cleanGone = true
		}
		b.undo = append(b.undo, change{seq: b.seq, insert: false, off: off, text: removed})
		b.redo = nil
	}
	b.recomputeModified()
	return string(removed)
}

// Replace substitutes the range [off, off+n) with s as a single undo step.
func (b *Buffer) Replace(off, n int, s string) {
	b.Commit()
	b.Delete(off, n)
	b.Insert(off, s)
	b.Commit()
}

// Commit marks a transaction boundary: edits made after Commit undo
// separately from edits made before it.
func (b *Buffer) Commit() { b.seq++ }

// Undo reverses the most recent transaction. It reports whether anything
// was undone.
func (b *Buffer) Undo() bool {
	if len(b.undo) == 0 {
		return false
	}
	b.noUndo = true
	defer func() { b.noUndo = false }()
	seq := b.undo[len(b.undo)-1].seq
	for len(b.undo) > 0 && b.undo[len(b.undo)-1].seq == seq {
		c := b.undo[len(b.undo)-1]
		b.undo = b.undo[:len(b.undo)-1]
		if c.insert {
			b.primDelete(c.off, len(c.text))
		} else {
			b.primInsert(c.off, c.text)
		}
		b.redo = append(b.redo, c)
	}
	b.recomputeModified()
	return true
}

// Redo reapplies the most recently undone transaction. It reports whether
// anything was redone.
func (b *Buffer) Redo() bool {
	if len(b.redo) == 0 {
		return false
	}
	b.noUndo = true
	defer func() { b.noUndo = false }()
	seq := b.redo[len(b.redo)-1].seq
	for len(b.redo) > 0 && b.redo[len(b.redo)-1].seq == seq {
		c := b.redo[len(b.redo)-1]
		b.redo = b.redo[:len(b.redo)-1]
		if c.insert {
			b.primInsert(c.off, c.text)
		} else {
			b.primDelete(c.off, len(c.text))
		}
		b.undo = append(b.undo, c)
	}
	b.recomputeModified()
	return true
}

// CanUndo reports whether Undo would do anything.
func (b *Buffer) CanUndo() bool { return len(b.undo) > 0 }

// CanRedo reports whether Redo would do anything.
func (b *Buffer) CanRedo() bool { return len(b.redo) > 0 }

// At returns the rune at offset off. It panics if off is out of range.
func (b *Buffer) At(off int) rune {
	if off < 0 || off >= b.Len() {
		panic(fmt.Sprintf("text: At(%d) out of range [0,%d)", off, b.Len()))
	}
	if off < b.gapStart {
		return b.runes[off]
	}
	return b.runes[off+(b.gapEnd-b.gapStart)]
}

// Slice returns the runes in [off, off+n) as a string, clamped to the
// buffer bounds.
func (b *Buffer) Slice(off, n int) string {
	if off < 0 {
		n += off
		off = 0
	}
	if off > b.Len() {
		return ""
	}
	if off+n > b.Len() {
		n = b.Len() - off
	}
	if n <= 0 {
		return ""
	}
	// Bulk path: at most two copies, the parts before and after the gap,
	// instead of a bounds-checked At call per rune.
	out := make([]rune, n)
	gap := b.gapEnd - b.gapStart
	switch end := off + n; {
	case end <= b.gapStart:
		copy(out, b.runes[off:end])
	case off >= b.gapStart:
		copy(out, b.runes[off+gap:end+gap])
	default:
		m := copy(out, b.runes[off:b.gapStart])
		copy(out[m:], b.runes[b.gapEnd:end+gap])
	}
	return string(out)
}

// String returns the whole buffer contents.
func (b *Buffer) String() string { return b.Slice(0, b.Len()) }

// SetString replaces the entire contents as a single undoable transaction,
// as the Get! command does.
func (b *Buffer) SetString(s string) {
	b.Replace(0, b.Len(), s)
}

// SetOnSplice installs (or, with nil, removes) the splice observer: a
// callback invoked after every primitive mutation with the rune offset,
// the number of runes deleted there, and the runes inserted. Exactly one
// of ndel/ins is non-zero per call. The callback must not mutate the
// buffer.
func (b *Buffer) SetOnSplice(fn func(off, ndel int, ins string)) {
	b.onSplice = fn
}

// SetOnMem installs (or, with nil, removes) the resident-size observer:
// a callback invoked after every primitive mutation with the buffer's
// rune-count delta. It is a slot separate from SetOnSplice so memory
// accounting composes with the journal. The callback must not mutate
// the buffer.
func (b *Buffer) SetOnMem(fn func(delta int)) {
	b.onMem = fn
}

// Load replaces the entire contents without recording undo and marks the
// buffer clean, as when a window adopts a file's contents wholesale. The
// undo and redo histories are discarded; the splice observer, if any,
// stays installed and sees the replacement as a delete plus an insert.
func (b *Buffer) Load(s string) {
	b.noUndo = true
	if n := b.Len(); n > 0 {
		b.primDelete(0, n)
	}
	if rs := []rune(s); len(rs) > 0 {
		b.primInsert(0, rs)
	}
	b.noUndo = false
	b.undo = nil
	b.redo = nil
	b.SetClean()
}

// ApplySplice applies a journaled primitive mutation: delete ndel runes
// at off, then insert ins there. It bypasses the undo log and does not
// touch the modified flag — recovery replays clean-state transitions as
// separate records — and returns an error instead of panicking on an
// out-of-range splice, because a journal's word is not to be trusted.
func (b *Buffer) ApplySplice(off, ndel int, ins string) error {
	if off < 0 || ndel < 0 || off+ndel > b.Len() {
		return fmt.Errorf("text: splice [%d,%d) out of range [0,%d]", off, off+ndel, b.Len())
	}
	if ndel > 0 {
		b.primDelete(off, ndel)
	}
	if rs := []rune(ins); len(rs) > 0 {
		b.primInsert(off, rs)
	}
	return nil
}

// LineStart returns the offset of the first rune of 1-based line number ln.
// Lines past the end resolve to the buffer length. Line ln starts just
// after the (ln-1)th newline, so this is a direct index lookup.
func (b *Buffer) LineStart(ln int) int {
	if ln <= 1 {
		return 0
	}
	if ln-2 < len(b.newlines) {
		return b.newlines[ln-2] + 1
	}
	return b.Len()
}

// LineEnd returns the offset just past the last rune of line ln, excluding
// the newline itself: the first newline at or after the line's start.
func (b *Buffer) LineEnd(ln int) int {
	off := b.LineStart(ln)
	if i := sort.SearchInts(b.newlines, off); i < len(b.newlines) {
		return b.newlines[i]
	}
	return b.Len()
}

// LineAt returns the 1-based line number containing offset off: one more
// than the number of newlines strictly before it.
func (b *Buffer) LineAt(off int) int {
	if off > b.Len() {
		off = b.Len()
	}
	return sort.SearchInts(b.newlines, off) + 1
}

// NLines returns the number of lines in the buffer. An empty buffer has
// one (empty) line; a trailing newline does not start a new line.
func (b *Buffer) NLines() int {
	n := b.Len()
	if n == 0 {
		return 1
	}
	k := len(b.newlines)
	if k > 0 && b.newlines[k-1] == n-1 {
		return k // trailing newline: no extra line after it
	}
	return k + 1
}

// ErrNoMatch is returned by Address when a pattern search fails.
var ErrNoMatch = errors.New("text: no match")

// Address resolves the location syntax accepted after a file name:
//
//	27        line 27 (window positioned so the line is visible and selected)
//	#123      character (rune) offset 123
//	/pat/     first literal occurrence of pat, searching forward from 0
//
// It returns the rune range [q0, q1) to select.
func (b *Buffer) Address(addr string) (q0, q1 int, err error) {
	switch {
	case addr == "":
		return 0, 0, nil
	case addr[0] == '#':
		var off int
		if _, err := fmt.Sscanf(addr[1:], "%d", &off); err != nil {
			return 0, 0, fmt.Errorf("text: bad address %q", addr)
		}
		if off < 0 {
			off = 0
		}
		if off > b.Len() {
			off = b.Len()
		}
		return off, off, nil
	case addr[0] == '/':
		pat := strings.TrimPrefix(addr, "/")
		pat = strings.TrimSuffix(pat, "/")
		if pat == "" {
			return 0, 0, fmt.Errorf("text: empty pattern")
		}
		// Search rune-wise: a byte-level index could land inside a
		// multi-byte rune and produce offsets past the buffer.
		needle := []rune(pat)
		n := b.Len()
	search:
		for i := 0; i+len(needle) <= n; i++ {
			for j, r := range needle {
				if b.At(i+j) != r {
					continue search
				}
			}
			return i, i + len(needle), nil
		}
		return 0, 0, ErrNoMatch
	default:
		var ln int
		if _, err := fmt.Sscanf(addr, "%d", &ln); err != nil {
			return 0, 0, fmt.Errorf("text: bad address %q", addr)
		}
		if ln < 1 {
			ln = 1
		}
		return b.LineStart(ln), b.LineEnd(ln), nil
	}
}
