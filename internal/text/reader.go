package text

import (
	"fmt"
	"io"
	"unicode/utf8"
)

// readerChunk is how many runes a ByteReader stages per backing fetch.
const readerChunk = 4096

// ByteReader adapts a Buffer to io.ReaderAt over its UTF-8 encoding, so
// the file interface can serve body bytes straight from piece slices
// without materializing String(). Sequential reads advance a cursor in
// O(bytes); a random seek costs one byte→rune resolution in the backing.
//
// The reader tracks the buffer's generation: any edit invalidates the
// cursor and the next read re-seeks, observing the current contents
// (reads through the file interface are live, matching the snapshot-free
// semantics a paged buffer can afford).
//
// ByteReader is not safe for concurrent use; like the Buffer itself it
// relies on the session's serialized event loop.
type ByteReader struct {
	b       *Buffer
	gen     uint64
	runeOff int   // next rune to encode
	byteOff int64 // byte offset the cursor corresponds to
	pending []byte
	pbuf    [utf8.UTFMax]byte

	chunk      []rune
	chunkStart int
}

// NewByteReader returns a reader positioned at byte offset 0.
func NewByteReader(b *Buffer) *ByteReader {
	return &ByteReader{b: b, gen: b.Gen(), chunkStart: -1}
}

// Size returns the buffer's UTF-8 encoded length in bytes.
func (r *ByteReader) Size() int64 { return r.b.bk().bytesTotal() }

// ReadAt implements io.ReaderAt: it fills p with the buffer's UTF-8
// encoding starting at byte offset off, returning io.EOF when the
// buffer ends before p is full.
func (r *ByteReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("text: negative read offset %d", off)
	}
	if g := r.b.Gen(); g != r.gen {
		r.gen = g
		r.chunk = nil
		r.chunkStart = -1
		r.byteOff = -1 // force a seek
		r.pending = nil
	}
	if off != r.byteOff {
		r.seek(off)
	}
	n := 0
	total := r.b.Len()
	for n < len(p) {
		if len(r.pending) > 0 {
			c := copy(p[n:], r.pending)
			n += c
			r.pending = r.pending[c:]
			continue
		}
		if r.runeOff >= total {
			break
		}
		sz := utf8.EncodeRune(r.pbuf[:], r.runeAt(r.runeOff))
		r.runeOff++
		if sz <= len(p)-n {
			copy(p[n:], r.pbuf[:sz])
			n += sz
		} else {
			c := copy(p[n:], r.pbuf[:sz])
			n += c
			r.pending = r.pbuf[c:sz]
		}
	}
	r.byteOff = off + int64(n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// seek positions the cursor at byte offset off. If off lands inside a
// multi-byte rune, the rune's remaining bytes become pending output.
func (r *ByteReader) seek(off int64) {
	runeOff, runeStart := r.b.bk().seekByte(off)
	r.runeOff = runeOff
	r.pending = nil
	if runeStart < off {
		sz := utf8.EncodeRune(r.pbuf[:], r.runeAt(runeOff))
		r.pending = r.pbuf[off-runeStart : sz]
		r.runeOff++
	}
}

// runeAt reads one rune through a staging chunk so sequential encoding
// costs one backing fetch per readerChunk runes.
func (r *ByteReader) runeAt(off int) rune {
	if r.chunkStart < 0 || off < r.chunkStart || off >= r.chunkStart+len(r.chunk) {
		n := readerChunk
		if total := r.b.Len(); off+n > total {
			n = total - off
		}
		r.chunk = r.b.bk().appendRange(r.chunk[:0], off, n)
		r.chunkStart = off
	}
	return r.chunk[off-r.chunkStart]
}
