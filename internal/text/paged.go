package text

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"unicode/utf8"
)

// Source provides random-access bytes for a paged buffer: typically a file
// pinned at one generation, so the view stays self-consistent even if the
// underlying file is replaced. ReadAt must be usable from the buffer's
// single-threaded context; Size is the fixed byte length of the content.
type Source interface {
	io.ReaderAt
	Size() int64
}

// defaultPageBytes is the page granularity for file-backed text: large
// enough that a screenful of a log touches one or two pages, small enough
// that residency control is fine-grained. Page boundaries always fall on
// rune boundaries.
const defaultPageBytes = 64 << 10

// scanChunk is the read granularity of the index-building byte scan.
const scanChunk = 256 << 10

// pageIndex is the immutable map of a source built by one streaming byte
// scan at attach time: for each fixed-size page, its starting byte offset
// (rune-aligned), and cumulative rune and newline counts. It is what lets
// line and offset queries run in O(log pages) without touching unresident
// pages, and it is shared — never copied — between clones.
type pageIndex struct {
	byteOff []int64 // len npages+1; raw source byte offset where page i starts
	cumR    []int   // len npages+1; runes before page i
	cumN    []int   // len npages+1; newlines before page i
	// cumE is the cumulative UTF-8 *encoded* length of the decoded runes
	// before page i. It differs from byteOff only when the source holds
	// invalid UTF-8 (each bad byte decodes to a 3-byte U+FFFD); raw
	// offsets address the source for paging, encoded offsets are the
	// byte space ByteReader and the file interface serve.
	cumE []int64
}

func (ix *pageIndex) npages() int { return len(ix.byteOff) - 1 }

// pageRunes returns the rune count of page no.
func (ix *pageIndex) pageRunes(no int) int { return ix.cumR[no+1] - ix.cumR[no] }

// pageOfRune returns the page containing file rune offset fr.
func (ix *pageIndex) pageOfRune(fr int) int {
	return sort.Search(ix.npages(), func(i int) bool { return ix.cumR[i+1] > fr })
}

// pageOfNewline returns the page containing the fnl-th file newline.
func (ix *pageIndex) pageOfNewline(fnl int) int {
	return sort.Search(ix.npages(), func(i int) bool { return ix.cumN[i+1] > fnl })
}

// pageOfEncByte returns the page containing encoded byte offset eb.
func (ix *pageIndex) pageOfEncByte(eb int64) int {
	return sort.Search(ix.npages(), func(i int) bool { return ix.cumE[i+1] > eb })
}

// buildPageIndex streams src once, decoding UTF-8 byte-wise (invalid bytes
// become one U+FFFD each, matching []rune(string)) and closing a page at
// the first rune boundary at or past pageBytes. No rune data is retained:
// the scan is the price of knowing NLines and byte↔rune mapping up front,
// and it runs at memcpy-like speed for ASCII-dominated content.
func buildPageIndex(src Source, pageBytes int) (*pageIndex, error) {
	size := src.Size()
	ix := &pageIndex{byteOff: []int64{0}, cumR: []int{0}, cumN: []int{0}, cumE: []int64{0}}
	var (
		runes, nls int   // running totals
		enc        int64 // running encoded length of the decoded runes
		curPage    int   // bytes accumulated in the open page
		pos        int64 // absolute offset of the next unread byte
		carry      []byte
		chunk      = make([]byte, scanChunk)
	)
	closePage := func() {
		// pos is the absolute offset of the next unconsumed byte, which
		// is exactly where the next page starts.
		ix.byteOff = append(ix.byteOff, pos)
		ix.cumR = append(ix.cumR, runes)
		ix.cumN = append(ix.cumN, nls)
		ix.cumE = append(ix.cumE, enc)
		curPage = 0
	}
	// decode consumes a window of the stream and reports bytes used; a
	// trailing partial rune is left unconsumed unless final is set.
	decode := func(buf []byte, final bool) int {
		i := 0
		for i < len(buf) {
			c := buf[i]
			if c < utf8.RuneSelf {
				// ASCII run, bounded by the page boundary.
				run := len(buf) - i
				if room := pageBytes - curPage; run > room {
					run = room
				}
				j := i
				lim := i + run
				for j < lim && buf[j] < utf8.RuneSelf {
					j++
				}
				if j > i {
					nls += bytes.Count(buf[i:j], []byte{'\n'})
					runes += j - i
					curPage += j - i
					pos += int64(j - i)
					enc += int64(j - i)
					i = j
					if curPage >= pageBytes {
						closePage()
					}
					continue
				}
				// run was clamped to zero by a full page
				if pageBytes-curPage == 0 {
					closePage()
					continue
				}
			}
			if !utf8.FullRune(buf[i:]) && !final {
				break // partial rune: wait for more bytes
			}
			r, sz := utf8.DecodeRune(buf[i:])
			runes++
			curPage += sz
			pos += int64(sz)
			if r == utf8.RuneError && sz == 1 {
				enc += int64(utf8.RuneLen(utf8.RuneError))
			} else {
				enc += int64(sz)
			}
			i += sz
			if curPage >= pageBytes {
				closePage()
			}
		}
		return i
	}
	var read int64
	for read < size {
		want := int64(len(chunk) - len(carry))
		if want > size-read {
			want = size - read
		}
		n, err := src.ReadAt(chunk[len(carry):int64(len(carry))+want], read)
		read += int64(n)
		buf := chunk[:len(carry)+n]
		used := decode(buf, read >= size)
		carry = carry[:0]
		carry = append(carry, buf[used:]...)
		copy(chunk, carry)
		if err != nil && err != io.EOF {
			return nil, err
		}
		if err == io.EOF && read < size {
			return nil, fmt.Errorf("text: paged source shrank: read %d of %d bytes", read, size)
		}
		if n == 0 && err == nil {
			return nil, fmt.Errorf("text: paged source returned no data at %d", read)
		}
	}
	if len(carry) > 0 {
		// Trailing partial rune at true EOF: invalid bytes, one rune each.
		decode(carry, true)
		carry = nil
	}
	if curPage > 0 {
		closePage()
	}
	if pos != size {
		return nil, fmt.Errorf("text: paged index scanned %d bytes, want %d", pos, size)
	}
	return ix, nil
}

// page is one decoded file segment: its runes plus the rune offsets of
// its newlines, linked into the cache's LRU list.
type page struct {
	no         int
	runes      []rune
	nlOff      []int32 // rune offsets of '\n' within the page, ascending
	prev, next *page
}

// pageCache holds decoded pages with LRU eviction under a resident-rune
// cap. The most recently touched page is never evicted, so a fault always
// leaves its page usable.
type pageCache struct {
	pages      map[int]*page
	head, tail *page // head = most recent
	totalRunes int
	capRunes   int
	onMem      func(delta int)
}

func newPageCache(capRunes int) *pageCache {
	return &pageCache{pages: make(map[int]*page), capRunes: capRunes}
}

func (c *pageCache) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		c.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		c.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (c *pageCache) pushFront(p *page) {
	p.next = c.head
	if c.head != nil {
		c.head.prev = p
	}
	c.head = p
	if c.tail == nil {
		c.tail = p
	}
}

func (c *pageCache) get(no int) *page {
	p := c.pages[no]
	if p == nil {
		return nil
	}
	if c.head != p {
		c.unlink(p)
		c.pushFront(p)
	}
	return p
}

// add inserts a freshly decoded page and evicts least-recently-used pages
// until the cache fits its cap again (always keeping the new page).
func (c *pageCache) add(p *page) {
	c.pages[p.no] = p
	c.pushFront(p)
	c.totalRunes += len(p.runes)
	if c.onMem != nil {
		c.onMem(len(p.runes))
	}
	for c.totalRunes > c.capRunes && c.tail != nil && c.tail != p {
		ev := c.tail
		c.unlink(ev)
		delete(c.pages, ev.no)
		c.totalRunes -= len(ev.runes)
		if c.onMem != nil {
			c.onMem(-len(ev.runes))
		}
	}
}

// piece is one span of the document: either a range of the immutable
// original file (identified by its file rune/byte/newline coordinates) or
// a range of the append-only add store.
type piece struct {
	add   bool
	n     int   // rune length
	nls   int   // newlines within the piece
	bytes int64 // UTF-8 encoded byte length

	// add pieces: start offset in the add store.
	off int

	// file pieces: coordinates of the piece start within the original.
	fr0  int   // file rune offset
	b0   int64 // file *encoded* byte offset (cumE space, not raw)
	fnl0 int   // file newline index
}

// pagedBacking is a piece table over src: the original file is never
// materialized wholesale; instead pieces reference byte ranges of it,
// decoded page-by-page on demand and cached under a resident-rune cap,
// while insertions accumulate in an append-only rune store. Structural
// metadata (piece prefix sums) is rebuilt per edit in O(pieces), which is
// bounded by edit count, not file size.
type pagedBacking struct {
	src       Source
	pageBytes int
	idx       *pageIndex
	cache     *pageCache

	pieces []piece
	cumR   []int   // len(pieces)+1 prefix rune counts
	cumN   []int   // prefix newline counts
	cumB   []int64 // prefix byte counts

	add    []rune
	addNls []int // offsets into add of every '\n', ascending (append-only)

	onMem func(delta int)

	// Sequential-access hints: the piece and page hit by the last
	// lookup, making per-rune rendering scans O(1) amortized.
	lastPiece int
	lastPage  int
}

// newPagedBacking indexes src and returns a backing with everything
// unresident. maxResident is a byte budget converted to a rune cap
// (4 bytes/rune, matching how sessions charge buffer memory); it is
// floored at one page so a fault can always complete.
func newPagedBacking(src Source, maxResident int64, pageBytes int) (*pagedBacking, error) {
	ix, err := buildPageIndex(src, pageBytes)
	if err != nil {
		return nil, err
	}
	capRunes := int(maxResident / 4)
	if capRunes < pageBytes {
		capRunes = pageBytes
	}
	pb := &pagedBacking{
		src:       src,
		pageBytes: pageBytes,
		idx:       ix,
		cache:     newPageCache(capRunes),
	}
	total := ix.cumR[ix.npages()]
	if total > 0 {
		pb.pieces = []piece{{
			n:     total,
			nls:   ix.cumN[ix.npages()],
			bytes: ix.cumE[ix.npages()],
		}}
	}
	pb.rebuildCums()
	return pb, nil
}

// rebuildCums recomputes the piece prefix sums after a structural edit.
func (pb *pagedBacking) rebuildCums() {
	if cap(pb.cumR) < len(pb.pieces)+1 {
		pb.cumR = make([]int, len(pb.pieces)+1)
		pb.cumN = make([]int, len(pb.pieces)+1)
		pb.cumB = make([]int64, len(pb.pieces)+1)
	} else {
		pb.cumR = pb.cumR[:len(pb.pieces)+1]
		pb.cumN = pb.cumN[:len(pb.pieces)+1]
		pb.cumB = pb.cumB[:len(pb.pieces)+1]
	}
	pb.cumR[0], pb.cumN[0], pb.cumB[0] = 0, 0, 0
	for i, pc := range pb.pieces {
		pb.cumR[i+1] = pb.cumR[i] + pc.n
		pb.cumN[i+1] = pb.cumN[i] + pc.nls
		pb.cumB[i+1] = pb.cumB[i] + pc.bytes
	}
	pb.lastPiece = 0
}

func (pb *pagedBacking) length() int { return pb.cumR[len(pb.pieces)] }

// findPiece returns the index of the piece containing rune offset off,
// which must satisfy 0 <= off < length. A one-entry hint makes sequential
// scans constant-time.
func (pb *pagedBacking) findPiece(off int) int {
	if h := pb.lastPiece; h < len(pb.pieces) {
		if pb.cumR[h] <= off && off < pb.cumR[h+1] {
			return h
		}
		if h+1 < len(pb.pieces) && pb.cumR[h+1] <= off && off < pb.cumR[h+2] {
			pb.lastPiece = h + 1
			return h + 1
		}
	}
	i := sort.Search(len(pb.pieces), func(k int) bool { return pb.cumR[k+1] > off })
	pb.lastPiece = i
	return i
}

// fault returns page no, decoding it from the source if unresident. A
// read failure (the pinned source is gone or shrank) degrades to a
// synthesized page of the indexed shape — the right newline count, the
// remainder U+FFFD — so the view stays structurally consistent; the
// source owner reports the condition out of band.
func (pb *pagedBacking) fault(no int) *page {
	if p := pb.cache.get(no); p != nil {
		return p
	}
	b0, b1 := pb.idx.byteOff[no], pb.idx.byteOff[no+1]
	buf := make([]byte, b1-b0)
	ok := true
	for got := 0; got < len(buf); {
		n, err := pb.src.ReadAt(buf[got:], b0+int64(got))
		got += n
		if err != nil || n == 0 {
			if got >= len(buf) && err == io.EOF {
				break
			}
			ok = false
			break
		}
	}
	p := &page{no: no}
	if ok {
		p.runes, p.nlOff = decodePage(buf)
	}
	if !ok || len(p.runes) != pb.idx.pageRunes(no) || len(p.nlOff) != pb.idx.cumN[no+1]-pb.idx.cumN[no] {
		p.runes, p.nlOff = synthPage(pb.idx.pageRunes(no), pb.idx.cumN[no+1]-pb.idx.cumN[no])
	}
	pb.cache.onMem = pb.onMem
	pb.cache.add(p)
	return p
}

// decodePage decodes one page's bytes into runes plus newline offsets.
// Page boundaries are rune-aligned, so the page decodes standalone with
// the same semantics as the index scan.
func decodePage(buf []byte) ([]rune, []int32) {
	runes := make([]rune, 0, len(buf))
	var nls []int32
	for i := 0; i < len(buf); {
		c := buf[i]
		if c < utf8.RuneSelf {
			if c == '\n' {
				nls = append(nls, int32(len(runes)))
			}
			runes = append(runes, rune(c))
			i++
			continue
		}
		r, sz := utf8.DecodeRune(buf[i:])
		runes = append(runes, r)
		i += sz
	}
	return runes, nls
}

// synthPage fabricates a page with nRunes runes of which the last nNls
// are newlines, used when the source cannot be read back: structurally
// consistent with the index even though the text is gone. Newlines sit at
// the end so a file whose last page ended in '\n' keeps its line count.
func synthPage(nRunes, nNls int) ([]rune, []int32) {
	runes := make([]rune, nRunes)
	nls := make([]int32, nNls)
	for i := range runes {
		if i >= nRunes-nNls {
			runes[i] = '\n'
			nls[i-(nRunes-nNls)] = int32(i)
		} else {
			runes[i] = utf8.RuneError
		}
	}
	return runes, nls
}

// pageFor faults the page containing file rune offset fr and returns it
// with fr's index within the page.
func (pb *pagedBacking) pageFor(fr int) (*page, int) {
	no := pb.lastPage
	if !(no < pb.idx.npages() && pb.idx.cumR[no] <= fr && fr < pb.idx.cumR[no+1]) {
		no = pb.idx.pageOfRune(fr)
		pb.lastPage = no
	}
	return pb.fault(no), fr - pb.idx.cumR[no]
}

func (pb *pagedBacking) at(off int) rune {
	i := pb.findPiece(off)
	pc := &pb.pieces[i]
	rel := off - pb.cumR[i]
	if pc.add {
		return pb.add[pc.off+rel]
	}
	pg, k := pb.pageFor(pc.fr0 + rel)
	return pg.runes[k]
}

func (pb *pagedBacking) appendRange(dst []rune, off, n int) []rune {
	for n > 0 {
		i := pb.findPiece(off)
		pc := &pb.pieces[i]
		rel := off - pb.cumR[i]
		take := pc.n - rel
		if take > n {
			take = n
		}
		if pc.add {
			dst = append(dst, pb.add[pc.off+rel:pc.off+rel+take]...)
			off += take
			n -= take
			continue
		}
		fr := pc.fr0 + rel
		for take > 0 {
			pg, k := pb.pageFor(fr)
			t := len(pg.runes) - k
			if t > take {
				t = take
			}
			dst = append(dst, pg.runes[k:k+t]...)
			fr += t
			off += t
			take -= t
			n -= t
		}
	}
	return dst
}

// fileStatAt returns the encoded byte offset and newline index of file
// rune offset fr. Page-boundary offsets answer from the index alone;
// interior offsets fault the page and scan up to one page of runes.
func (pb *pagedBacking) fileStatAt(fr int) (int64, int) {
	no := pb.idx.pageOfRune(fr)
	if fr == pb.idx.cumR[no] {
		return pb.idx.cumE[no], pb.idx.cumN[no]
	}
	pg := pb.fault(no)
	k := fr - pb.idx.cumR[no]
	b := pb.idx.cumE[no] + runesByteLen(pg.runes[:k])
	nl := pb.idx.cumN[no] + searchInt32(pg.nlOff, int32(k))
	return b, nl
}

// searchInt32 is sort.SearchInts for []int32: the number of elements
// strictly below x.
func searchInt32(a []int32, x int32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= x })
}

// countAddNls returns how many newlines the add store holds in [lo, hi).
func (pb *pagedBacking) countAddNls(lo, hi int) int {
	return sort.SearchInts(pb.addNls, hi) - sort.SearchInts(pb.addNls, lo)
}

// splitPiece splits piece i at piece-relative rune offset rel (0 < rel <
// n), producing two pieces covering the same text. Prefix sums are NOT
// rebuilt; callers do that once their structural edit is complete.
func (pb *pagedBacking) splitPiece(i, rel int) {
	pc := pb.pieces[i]
	var left, right piece
	if pc.add {
		leftNls := pb.countAddNls(pc.off, pc.off+rel)
		leftBytes := runesByteLen(pb.add[pc.off : pc.off+rel])
		left = piece{add: true, off: pc.off, n: rel, nls: leftNls, bytes: leftBytes}
		right = piece{add: true, off: pc.off + rel, n: pc.n - rel, nls: pc.nls - leftNls, bytes: pc.bytes - leftBytes}
	} else {
		cutB, cutNl := pb.fileStatAt(pc.fr0 + rel)
		left = piece{n: rel, nls: cutNl - pc.fnl0, bytes: cutB - pc.b0, fr0: pc.fr0, b0: pc.b0, fnl0: pc.fnl0}
		right = piece{n: pc.n - rel, nls: pc.nls - left.nls, bytes: pc.bytes - left.bytes,
			fr0: pc.fr0 + rel, b0: cutB, fnl0: cutNl}
	}
	pb.pieces = append(pb.pieces, piece{})
	copy(pb.pieces[i+2:], pb.pieces[i+1:])
	pb.pieces[i] = left
	pb.pieces[i+1] = right
}

// boundary ensures a piece boundary exists at rune offset off and returns
// the index of the piece starting there (len(pieces) for off == length).
// It rebuilds prefix sums when it splits.
func (pb *pagedBacking) boundary(off int) int {
	if off == pb.length() {
		return len(pb.pieces)
	}
	i := pb.findPiece(off)
	rel := off - pb.cumR[i]
	if rel == 0 {
		return i
	}
	pb.splitPiece(i, rel)
	pb.rebuildCums()
	return i + 1
}

func (pb *pagedBacking) insert(off int, rs []rune) {
	if len(rs) == 0 {
		return
	}
	nls := 0
	base := len(pb.add)
	for j, r := range rs {
		if r == '\n' {
			nls++
			pb.addNls = append(pb.addNls, base+j)
		}
	}
	blen := runesByteLen(rs)
	pb.add = append(pb.add, rs...)

	i := pb.boundary(off)
	// Coalesce sequential typing: extend a preceding add piece that ends
	// exactly at the old end of the add store.
	if i > 0 {
		if pc := &pb.pieces[i-1]; pc.add && pc.off+pc.n == base {
			pc.n += len(rs)
			pc.nls += nls
			pc.bytes += blen
			pb.rebuildCums()
			if pb.onMem != nil {
				pb.onMem(len(rs))
			}
			return
		}
	}
	np := piece{add: true, off: base, n: len(rs), nls: nls, bytes: blen}
	pb.pieces = append(pb.pieces, piece{})
	copy(pb.pieces[i+1:], pb.pieces[i:])
	pb.pieces[i] = np
	pb.rebuildCums()
	if pb.onMem != nil {
		pb.onMem(len(rs))
	}
}

func (pb *pagedBacking) remove(off, n int, want bool) []rune {
	if n == 0 {
		return nil
	}
	var removed []rune
	if want {
		removed = pb.appendRange(make([]rune, 0, n), off, n)
	}
	i := pb.boundary(off)
	j := pb.boundary(off + n)
	pb.pieces = append(pb.pieces[:i], pb.pieces[j:]...)
	pb.rebuildCums()
	// No residency change: pages stay cached until evicted and the add
	// store is append-only, so deleting pieces frees no resident runes.
	return removed
}

func (pb *pagedBacking) nNewlines() int { return pb.cumN[len(pb.pieces)] }

func (pb *pagedBacking) newlineOff(i int) int {
	p := sort.Search(len(pb.pieces), func(k int) bool { return pb.cumN[k+1] > i })
	pc := &pb.pieces[p]
	rel := i - pb.cumN[p] // rel-th newline within the piece
	if pc.add {
		start := sort.SearchInts(pb.addNls, pc.off)
		return pb.cumR[p] + (pb.addNls[start+rel] - pc.off)
	}
	fnl := pc.fnl0 + rel
	no := pb.idx.pageOfNewline(fnl)
	pg := pb.fault(no)
	k := int(pg.nlOff[fnl-pb.idx.cumN[no]])
	fr := pb.idx.cumR[no] + k
	return pb.cumR[p] + (fr - pc.fr0)
}

func (pb *pagedBacking) newlineIdx(off int) int {
	if off >= pb.length() {
		return pb.nNewlines()
	}
	i := pb.findPiece(off)
	pc := &pb.pieces[i]
	rel := off - pb.cumR[i]
	if rel == 0 {
		return pb.cumN[i]
	}
	if pc.add {
		return pb.cumN[i] + pb.countAddNls(pc.off, pc.off+rel)
	}
	fr := pc.fr0 + rel
	no := pb.idx.pageOfRune(fr)
	var fileNl int
	if fr == pb.idx.cumR[no] {
		fileNl = pb.idx.cumN[no]
	} else {
		pg := pb.fault(no)
		fileNl = pb.idx.cumN[no] + searchInt32(pg.nlOff, int32(fr-pb.idx.cumR[no]))
	}
	return pb.cumN[i] + (fileNl - pc.fnl0)
}

func (pb *pagedBacking) memRunes() int { return pb.cache.totalRunes + len(pb.add) }

func (pb *pagedBacking) setOnMem(fn func(int)) {
	pb.onMem = fn
	pb.cache.onMem = fn
}

func (pb *pagedBacking) bytesTotal() int64 { return pb.cumB[len(pb.pieces)] }

func (pb *pagedBacking) seekByte(off int64) (int, int64) {
	if off >= pb.bytesTotal() {
		return pb.length(), pb.bytesTotal()
	}
	i := sort.Search(len(pb.pieces), func(k int) bool { return pb.cumB[k+1] > off })
	pc := &pb.pieces[i]
	rel := off - pb.cumB[i]
	if pc.add {
		var bo int64
		for k := 0; k < pc.n; k++ {
			sz := utf8.RuneLen(pb.add[pc.off+k])
			if sz < 0 {
				sz = utf8.RuneLen(utf8.RuneError)
			}
			if bo+int64(sz) > rel {
				return pb.cumR[i] + k, pb.cumB[i] + bo
			}
			bo += int64(sz)
		}
		return pb.cumR[i] + pc.n, pb.cumB[i] + bo
	}
	fb := pc.b0 + rel
	no := pb.idx.pageOfEncByte(fb)
	pg := pb.fault(no)
	var bo int64 // encoded byte offset within the page
	target := fb - pb.idx.cumE[no]
	for k, r := range pg.runes {
		sz := utf8.RuneLen(r)
		if sz < 0 {
			sz = utf8.RuneLen(utf8.RuneError)
		}
		if bo+int64(sz) > target {
			fr := pb.idx.cumR[no] + k
			fByte := pb.idx.cumE[no] + bo
			return pb.cumR[i] + (fr - pc.fr0), pb.cumB[i] + (fByte - pc.b0)
		}
		bo += int64(sz)
	}
	// target was the page's end; the rune is the first of the next page.
	fr := pb.idx.cumR[no+1]
	return pb.cumR[i] + (fr - pc.fr0), pb.cumB[i] + (pb.idx.cumE[no+1] - pc.b0)
}

// clone copies the piece table and add store and shares the immutable
// source and page index; the page cache starts empty so each clone's
// residency is accounted to its own budget.
func (pb *pagedBacking) clone() backing {
	nb := &pagedBacking{
		src:       pb.src,
		pageBytes: pb.pageBytes,
		idx:       pb.idx,
		cache:     newPageCache(pb.cache.capRunes),
		pieces:    append([]piece(nil), pb.pieces...),
		add:       append([]rune(nil), pb.add...),
		addNls:    append([]int(nil), pb.addNls...),
	}
	nb.rebuildCums()
	return nb
}
