package text

import (
	"sort"
	"unicode/utf8"
)

// backing is the storage engine beneath a Buffer. The Buffer owns edit
// generations, undo, clean-state tracking, and the splice observer; the
// backing owns the runes themselves and the newline index. Two
// implementations exist: memBacking, the original gap buffer holding the
// whole text resident, and pagedBacking, a piece table over lazily
// paged-in file segments for bodies too large to materialize.
//
// Offsets are rune counts, as everywhere in this package. The newline
// index methods mirror what the line queries need: nNewlines is the
// total count, newlineOff(i) is the offset of the i-th (0-based)
// newline, and newlineIdx(off) is the number of newlines at offsets
// strictly below off — exactly sort.SearchInts over the full index,
// without requiring the index to be materialized as one slice.
type backing interface {
	length() int
	at(off int) rune
	// appendRange appends the runes in [off, off+n) to dst and returns
	// it. The range must be within bounds.
	appendRange(dst []rune, off, n int) []rune
	insert(off int, rs []rune)
	// remove deletes [off, off+n). The removed runes are returned only
	// when want is true; undo replay and wholesale reloads pass false so
	// a paged backing never materializes text nobody will look at.
	remove(off, n int, want bool) []rune

	nNewlines() int
	newlineOff(i int) int
	newlineIdx(off int) int

	// memRunes reports the resident rune count: everything held in
	// process memory right now. For memBacking this equals length; for
	// pagedBacking it is the cached pages plus the append store, which
	// moves on page-in and eviction, not only on edits.
	memRunes() int
	// setOnMem installs the residency observer, called with the signed
	// rune delta whenever memRunes changes — on edits for memBacking,
	// and additionally on fault/evict for pagedBacking.
	setOnMem(fn func(delta int))

	// bytesTotal is the UTF-8 encoded size of the full contents.
	bytesTotal() int64
	// seekByte locates the rune containing byte offset off, returning
	// its rune offset and the byte offset at which that rune starts.
	// Offsets at or past the end return (length, bytesTotal).
	seekByte(off int64) (runeOff int, runeStart int64)

	// clone returns an independent copy sharing only immutable state.
	clone() backing
}

// runesByteLen returns the UTF-8 encoded length of rs, matching what
// string(rs) would produce (invalid runes encode as U+FFFD).
func runesByteLen(rs []rune) int64 {
	var n int64
	for _, r := range rs {
		sz := utf8.RuneLen(r)
		if sz < 0 {
			sz = utf8.RuneLen(utf8.RuneError)
		}
		n += int64(sz)
	}
	return n
}

// memBacking is the original storage: a gap buffer of runes plus a flat
// sorted newline index. Everything is resident.
type memBacking struct {
	// Gap buffer: runes[:gapStart] and runes[gapEnd:] hold the text.
	runes    []rune
	gapStart int
	gapEnd   int

	// newlines is the line index: the offset of every '\n' in the text,
	// ascending. insert/remove maintain it incrementally, so the line
	// queries are binary searches or direct lookups instead of scans.
	newlines []int

	onMem func(delta int)
}

func newMemBacking() *memBacking { return &memBacking{} }

func (m *memBacking) length() int { return len(m.runes) - (m.gapEnd - m.gapStart) }

func (m *memBacking) at(off int) rune {
	if off < m.gapStart {
		return m.runes[off]
	}
	return m.runes[off+(m.gapEnd-m.gapStart)]
}

func (m *memBacking) appendRange(dst []rune, off, n int) []rune {
	// Bulk path: at most two copies, the parts before and after the gap.
	gap := m.gapEnd - m.gapStart
	switch end := off + n; {
	case end <= m.gapStart:
		dst = append(dst, m.runes[off:end]...)
	case off >= m.gapStart:
		dst = append(dst, m.runes[off+gap:end+gap]...)
	default:
		dst = append(dst, m.runes[off:m.gapStart]...)
		dst = append(dst, m.runes[m.gapEnd:end+gap]...)
	}
	return dst
}

// moveGap positions the gap at rune offset off.
func (m *memBacking) moveGap(off int) {
	if off < m.gapStart {
		n := m.gapStart - off
		copy(m.runes[m.gapEnd-n:m.gapEnd], m.runes[off:m.gapStart])
		m.gapStart = off
		m.gapEnd -= n
	} else if off > m.gapStart {
		n := off - m.gapStart
		copy(m.runes[m.gapStart:], m.runes[m.gapEnd:m.gapEnd+n])
		m.gapStart += n
		m.gapEnd += n
	}
}

// grow ensures the gap has room for at least n more runes.
func (m *memBacking) grow(n int) {
	gap := m.gapEnd - m.gapStart
	if gap >= n {
		return
	}
	newCap := len(m.runes)*2 + n
	if newCap < 64 {
		newCap = 64 + n
	}
	nr := make([]rune, newCap)
	copy(nr, m.runes[:m.gapStart])
	tail := len(m.runes) - m.gapEnd
	copy(nr[newCap-tail:], m.runes[m.gapEnd:])
	m.gapEnd = newCap - tail
	m.runes = nr
}

func (m *memBacking) insert(off int, rs []rune) {
	if len(rs) == 0 {
		return
	}
	m.grow(len(rs))
	m.moveGap(off)
	copy(m.runes[m.gapStart:], rs)
	m.gapStart += len(rs)
	m.indexInsert(off, rs)
	if m.onMem != nil {
		m.onMem(len(rs))
	}
}

func (m *memBacking) remove(off, n int, want bool) []rune {
	if n == 0 {
		return nil
	}
	m.moveGap(off)
	var removed []rune
	if want {
		removed = make([]rune, n)
		copy(removed, m.runes[m.gapEnd:m.gapEnd+n])
	}
	m.gapEnd += n
	m.indexDelete(off, n)
	if m.onMem != nil {
		m.onMem(-n)
	}
	return removed
}

// indexInsert splices rs's newlines into the line index and shifts every
// later newline by len(rs). The shift is a bulk pass over the tail of the
// index, so an append to the end of the buffer costs only the scan of rs.
func (m *memBacking) indexInsert(off int, rs []rune) {
	count := 0
	for _, r := range rs {
		if r == '\n' {
			count++
		}
	}
	i := sort.SearchInts(m.newlines, off)
	if count > 0 {
		old := len(m.newlines)
		for len(m.newlines) < old+count {
			// Amortized growth; no temporary slice of the added offsets.
			m.newlines = append(m.newlines, 0)
		}
		copy(m.newlines[i+count:], m.newlines[i:old])
		idx := i
		for j, r := range rs {
			if r == '\n' {
				m.newlines[idx] = off + j
				idx++
			}
		}
		i += count
	}
	for k := i; k < len(m.newlines); k++ {
		m.newlines[k] += len(rs)
	}
}

// indexDelete drops newlines inside the deleted range [off, off+n) and
// shifts every later newline down by n.
func (m *memBacking) indexDelete(off, n int) {
	i := sort.SearchInts(m.newlines, off)
	j := sort.SearchInts(m.newlines, off+n)
	if i != j {
		copy(m.newlines[i:], m.newlines[j:])
		m.newlines = m.newlines[:len(m.newlines)-(j-i)]
	}
	for k := i; k < len(m.newlines); k++ {
		m.newlines[k] -= n
	}
}

func (m *memBacking) nNewlines() int          { return len(m.newlines) }
func (m *memBacking) newlineOff(i int) int    { return m.newlines[i] }
func (m *memBacking) newlineIdx(off int) int  { return sort.SearchInts(m.newlines, off) }
func (m *memBacking) memRunes() int           { return m.length() }
func (m *memBacking) setOnMem(fn func(int))   { m.onMem = fn }

func (m *memBacking) bytesTotal() int64 {
	var total int64
	total += runesByteLen(m.runes[:m.gapStart])
	total += runesByteLen(m.runes[m.gapEnd:])
	return total
}

func (m *memBacking) seekByte(off int64) (int, int64) {
	var bo int64
	n := m.length()
	for ro := 0; ro < n; ro++ {
		sz := utf8.RuneLen(m.at(ro))
		if sz < 0 {
			sz = utf8.RuneLen(utf8.RuneError)
		}
		if bo+int64(sz) > off {
			return ro, bo
		}
		bo += int64(sz)
	}
	return n, bo
}

func (m *memBacking) clone() backing {
	n := m.length()
	out := make([]rune, n)
	copy(out, m.runes[:m.gapStart])
	copy(out[m.gapStart:], m.runes[m.gapEnd:])
	return &memBacking{
		runes:    out,
		gapStart: n,
		gapEnd:   n,
		newlines: append([]int(nil), m.newlines...),
	}
}
