package text

import (
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// byteSource is the trivial Source: a byte slice.
type byteSource []byte

func (s byteSource) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(s)) {
		return 0, io.EOF
	}
	n := copy(p, s[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (s byteSource) Size() int64 { return int64(len(s)) }

// failAfterSource serves the first `allow` ReadAt calls, then errors: it
// models a pinned file generation disappearing under a live window.
type failAfterSource struct {
	byteSource
	allow int
	calls int
}

func (s *failAfterSource) ReadAt(p []byte, off int64) (int, error) {
	s.calls++
	if s.calls > s.allow {
		return 0, errors.New("source gone")
	}
	return s.byteSource.ReadAt(p, off)
}

// newPagedBuffer builds a paged buffer over content with test-sized pages
// and a residency cap of capRunes runes.
func newPagedBuffer(t testing.TB, content string, capRunes, pageBytes int) *Buffer {
	t.Helper()
	pb, err := newPagedBacking(byteSource(content), int64(capRunes)*4, pageBytes)
	if err != nil {
		t.Fatalf("newPagedBacking: %v", err)
	}
	b := &Buffer{back: pb, gen: 1}
	return b
}

// checkSame asserts the two buffers are observably identical apart from
// their absolute generation values, whose deltas the caller tracks.
func checkSame(t *testing.T, mem, paged *Buffer) {
	t.Helper()
	if got, want := paged.Len(), mem.Len(); got != want {
		t.Fatalf("paged Len = %d, mem %d", got, want)
	}
	if got, want := paged.String(), mem.String(); got != want {
		t.Fatalf("paged String = %q, mem %q", got, want)
	}
	if got, want := paged.NLines(), mem.NLines(); got != want {
		t.Fatalf("paged NLines = %d, mem %d", got, want)
	}
	if got, want := paged.Modified(), mem.Modified(); got != want {
		t.Fatalf("paged Modified = %v, mem %v", got, want)
	}
	if got, want := paged.CanUndo(), mem.CanUndo(); got != want {
		t.Fatalf("paged CanUndo = %v, mem %v", got, want)
	}
	if got, want := paged.CanRedo(), mem.CanRedo(); got != want {
		t.Fatalf("paged CanRedo = %v, mem %v", got, want)
	}
	for ln := 1; ln <= mem.NLines()+1; ln++ {
		if got, want := paged.LineStart(ln), mem.LineStart(ln); got != want {
			t.Fatalf("paged LineStart(%d) = %d, mem %d", ln, got, want)
		}
		if got, want := paged.LineEnd(ln), mem.LineEnd(ln); got != want {
			t.Fatalf("paged LineEnd(%d) = %d, mem %d", ln, got, want)
		}
	}
	step := mem.Len()/16 + 1
	for off := 0; off <= mem.Len(); off += step {
		if got, want := paged.LineAt(off), mem.LineAt(off); got != want {
			t.Fatalf("paged LineAt(%d) = %d, mem %d", off, got, want)
		}
		if off < mem.Len() {
			if got, want := paged.At(off), mem.At(off); got != want {
				t.Fatalf("paged At(%d) = %q, mem %q", off, got, want)
			}
		}
	}
}

// checkReader asserts a ByteReader reproduces the buffer's UTF-8 encoding
// under sequential reads, odd-sized chunks, and random seeks.
func checkReader(t *testing.T, b *Buffer) {
	t.Helper()
	want := []byte(b.String())
	r := NewByteReader(b)
	if got := r.Size(); got != int64(len(want)) {
		t.Fatalf("reader Size = %d, want %d", got, len(want))
	}
	got := make([]byte, 0, len(want))
	buf := make([]byte, 7)
	for off := int64(0); ; {
		n, err := r.ReadAt(buf, off)
		got = append(got, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
	}
	if string(got) != string(want) {
		t.Fatalf("sequential reader bytes = %q, want %q", got, want)
	}
	rng := rand.New(rand.NewSource(int64(len(want))))
	for trial := 0; trial < 20 && len(want) > 0; trial++ {
		off := rng.Intn(len(want))
		n := rng.Intn(len(want)-off) + 1
		p := make([]byte, n)
		read, err := r.ReadAt(p, int64(off))
		if err != nil && err != io.EOF {
			t.Fatalf("reader at %d: %v", off, err)
		}
		if string(p[:read]) != string(want[off:off+read]) || (err == nil && read != n) {
			t.Fatalf("reader at %d = %q, want %q", off, p[:read], want[off:off+n])
		}
	}
}

// applyDiffScript drives identical edit scripts against a mem-backed and a
// paged buffer, asserting full observable equality — contents, line index,
// undo/redo, modified flag, and generation deltas — after every step.
func applyDiffScript(t *testing.T, mem, paged *Buffer, script []byte) {
	t.Helper()
	genM0, genP0 := mem.Gen(), paged.Gen()
	check := func() {
		t.Helper()
		if dm, dp := mem.Gen()-genM0, paged.Gen()-genP0; dm != dp {
			t.Fatalf("gen delta diverged: mem %d, paged %d", dm, dp)
		}
		checkSame(t, mem, paged)
	}
	check()
	for i := 0; i+1 < len(script); i += 2 {
		op, arg := script[i]%8, int(script[i+1])
		switch op {
		case 0:
			off := arg % (mem.Len() + 1)
			mem.Insert(off, "ab\ncd")
			paged.Insert(off, "ab\ncd")
		case 1:
			off := arg % (mem.Len() + 1)
			mem.Insert(off, "α\nβγ") // multi-byte runes cross page byte math
			paged.Insert(off, "α\nβγ")
		case 2:
			if mem.Len() > 0 {
				off := arg % mem.Len()
				n := arg % (mem.Len() - off + 1)
				dm := mem.Delete(off, n)
				dp := paged.Delete(off, n)
				if dm != dp {
					t.Fatalf("Delete(%d,%d): mem %q, paged %q", off, n, dm, dp)
				}
			}
		case 3:
			if mem.Undo() != paged.Undo() {
				t.Fatal("Undo availability diverged")
			}
		case 4:
			if mem.Redo() != paged.Redo() {
				t.Fatal("Redo availability diverged")
			}
		case 5:
			mem.Commit()
			paged.Commit()
		case 6:
			off := arg % (mem.Len() + 1)
			n := (arg / 2) % (mem.Len() - off + 1)
			mem.Replace(off, n, "R\n")
			paged.Replace(off, n, "R\n")
		case 7:
			if mem.Len() < 2000 {
				checkLineIndex(t, paged)
			}
		}
		check()
	}
	checkReader(t, paged)
}

func TestPagedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	alphabet := []rune("a\nb\ncδ")
	for trial := 0; trial < 40; trial++ {
		var sb strings.Builder
		for i := 0; i < rng.Intn(400); i++ {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		initial := sb.String()
		script := make([]byte, 80)
		rng.Read(script)
		pageBytes := 8 + rng.Intn(40)
		capRunes := 1 + rng.Intn(64)
		mem := NewBuffer(initial)
		paged := newPagedBuffer(t, initial, capRunes, pageBytes)
		applyDiffScript(t, mem, paged, script)
	}
}

// FuzzPagedBuffer is the differential equivalence proof between the two
// backings: arbitrary contents (including invalid UTF-8, which both sides
// must normalize identically) and arbitrary edit/undo/redo scripts, with
// tiny pages and a tiny residency cap so faults and evictions happen
// constantly.
func FuzzPagedBuffer(f *testing.F) {
	f.Add([]byte("line1\nline2\nline3\n"), []byte{0, 3, 2, 7, 3, 0, 4, 0})
	f.Add([]byte(""), []byte{0, 0, 1, 1, 6, 9})
	f.Add([]byte("αβγ\nδεζ"), []byte{1, 2, 2, 5, 3, 0, 7, 0})
	f.Add([]byte{0xff, 0xfe, 'a', '\n', 0xc3}, []byte{0, 1, 2, 2})
	f.Fuzz(func(t *testing.T, content []byte, script []byte) {
		if len(content) > 4096 || len(script) > 96 {
			return
		}
		pageBytes := 8
		if len(script) > 0 {
			pageBytes += int(script[0]) % 56
		}
		mem := NewBuffer(string(content))
		paged := newPagedBuffer(t, string(content), 32, pageBytes)
		applyDiffScript(t, mem, paged, script)
	})
}

// TestPagedEviction scans a body much larger than the residency cap and
// asserts pages are evicted — resident runes stay bounded — while every
// re-faulted page still decodes to the right text.
func TestPagedEviction(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		sb.WriteString("0123456789abcdef line content αβ\n")
	}
	content := sb.String()
	pageBytes := 64
	capRunes := 256
	b := newPagedBuffer(t, content, capRunes, pageBytes)

	want := []rune(string([]byte(content)))
	slack := pageBytes + 4 // one page may exceed the cap mid-fault
	for off := 0; off < b.Len(); off += 13 {
		if got := b.At(off); got != want[off] {
			t.Fatalf("At(%d) = %q, want %q", off, got, want[off])
		}
		if mr := b.MemRunes(); mr > capRunes+slack {
			t.Fatalf("resident runes %d exceed cap %d (+%d slack)", mr, capRunes, slack)
		}
	}
	pb := b.back.(*pagedBacking)
	if len(pb.cache.pages)*pageBytes >= len(content) {
		t.Fatalf("no eviction happened: %d pages resident for %d bytes", len(pb.cache.pages), len(content))
	}
	// Re-walk backwards: evicted pages must re-fault to identical text.
	for off := b.Len() - 1; off >= 0; off -= 7 {
		if got := b.At(off); got != want[off] {
			t.Fatalf("re-fault At(%d) = %q, want %q", off, got, want[off])
		}
	}
	if b.String() != string(want) {
		t.Fatal("full materialization after eviction diverged")
	}
}

// TestPagedOnMemAccounting asserts the SetOnMem deltas always sum to the
// buffer's resident size, across faults, evictions, and edits.
func TestPagedOnMemAccounting(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 120; i++ {
		sb.WriteString("some line of text αβγ\n")
	}
	b := newPagedBuffer(t, sb.String(), 128, 32)
	resident := 0
	b.SetOnMem(func(d int) { resident += d })
	if resident != 0 || b.MemRunes() != 0 {
		t.Fatalf("fresh paged buffer resident = %d/%d, want 0", resident, b.MemRunes())
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 300; step++ {
		switch rng.Intn(4) {
		case 0:
			b.At(rng.Intn(b.Len()))
		case 1:
			b.Insert(rng.Intn(b.Len()+1), "xy\n")
		case 2:
			if b.Len() > 0 {
				off := rng.Intn(b.Len())
				b.Delete(off, rng.Intn(b.Len()-off)%5)
			}
		case 3:
			b.LineAt(rng.Intn(b.Len() + 1))
		}
		if resident != b.MemRunes() {
			t.Fatalf("step %d: onMem sum %d != MemRunes %d", step, resident, b.MemRunes())
		}
	}
}

// TestPagedClone asserts AdoptClone is structural: the clone matches, the
// two evolve independently, and cloning does not materialize pages.
func TestPagedClone(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("clone me line\n")
	}
	orig := newPagedBuffer(t, sb.String(), 64, 32)
	orig.Insert(5, "EDIT")
	want := orig.String()

	clone := NewBuffer("old contents to discard")
	clone.AdoptClone(orig)
	if !clone.Paged() {
		t.Fatal("clone of a paged buffer should be paged")
	}
	if clone.MemRunes() > orig.back.(*pagedBacking).addLen() {
		t.Fatalf("clone resident %d runes before first read; cloning materialized pages", clone.MemRunes())
	}
	if clone.String() != want {
		t.Fatal("clone contents diverged")
	}
	if clone.Modified() {
		t.Fatal("fresh clone should be clean")
	}
	orig.Insert(0, "AAA")
	if clone.String() != want {
		t.Fatal("editing the original leaked into the clone")
	}
	clone.Insert(1, "zzz")
	if orig.String() == clone.String() {
		t.Fatal("editing the clone leaked into the original")
	}
}

// TestPagedSourceError: when the pinned source disappears mid-session,
// faults degrade to structurally consistent placeholder pages — same
// lengths, same newline counts — instead of panicking.
func TestPagedSourceError(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("line that will vanish\n")
	}
	content := sb.String()
	src := &failAfterSource{byteSource: byteSource(content), allow: 1 << 30}
	pb, err := newPagedBacking(src, 64*4, 32)
	if err != nil {
		t.Fatal(err)
	}
	b := &Buffer{back: pb, gen: 1}
	wantLen, wantLines := b.Len(), b.NLines()
	src.allow = src.calls // every future read fails
	// Touch everything: faults must synthesize, not panic.
	for off := 0; off < b.Len(); off += 11 {
		b.At(off)
	}
	if b.Len() != wantLen || b.NLines() != wantLines {
		t.Fatalf("degraded view changed shape: len %d→%d lines %d→%d", wantLen, b.Len(), wantLines, b.NLines())
	}
	checkLineIndex(t, b)
}

// TestSwapBackingSplice: adopting a paged backing must look like Load to
// the splice observer — a delete of the old text and an insert of the new
// — so the journal can replay it.
func TestSwapBackingSplice(t *testing.T) {
	b := NewBuffer("old text")
	var log []string
	b.SetOnSplice(func(off, ndel int, ins string) {
		log = append(log, strings.Join([]string{string(rune('0' + off%10)), string(rune('0' + ndel%10)), ins}, "|"))
	})
	if err := b.LoadPaged(byteSource("new\ncontents"), 1<<20); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("splice log = %v, want delete+insert", log)
	}
	if log[0] != "0|8|" {
		t.Fatalf("first splice %q, want delete of old text", log[0])
	}
	if log[1] != "0|0|new\ncontents" {
		t.Fatalf("second splice %q, want insert of new text", log[1])
	}
	if b.Modified() || b.CanUndo() {
		t.Fatal("LoadPaged must leave the buffer clean with no undo")
	}
}

// TestLoadPagedError: a source that fails during indexing leaves the
// buffer untouched.
func TestLoadPagedError(t *testing.T) {
	b := NewBuffer("keep me")
	src := &failAfterSource{byteSource: byteSource(strings.Repeat("x", 1<<20)), allow: 1}
	if err := b.LoadPaged(src, 1<<20); err == nil {
		t.Fatal("LoadPaged with failing source should error")
	}
	if b.String() != "keep me" || b.Paged() {
		t.Fatal("failed LoadPaged must leave the buffer unchanged")
	}
}

// TestByteReaderMidRune seeks into the middle of multi-byte runes.
func TestByteReaderMidRune(t *testing.T) {
	content := "aβ\n𝛾δe"
	for _, b := range []*Buffer{NewBuffer(content), newPagedBuffer(t, content, 8, 4)} {
		want := []byte(b.String())
		r := NewByteReader(b)
		for off := 0; off <= len(want); off++ {
			p := make([]byte, 3)
			n, err := r.ReadAt(p, int64(off))
			if err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(p[:n]) != string(want[off:min(off+3, len(want))]) {
				t.Fatalf("ReadAt(%d) = %q, want %q", off, p[:n], want[off:min(off+3, len(want))])
			}
		}
		// Reads observe live edits.
		b.Insert(0, "Ω")
		want = []byte(b.String())
		p := make([]byte, len(want))
		if n, _ := r.ReadAt(p, 0); string(p[:n]) != string(want) {
			t.Fatalf("post-edit read = %q, want %q", p[:n], want)
		}
	}
}

// addLen exposes the add-store size for the clone test.
func (pb *pagedBacking) addLen() int { return len(pb.add) }
