package text

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyBuffer(t *testing.T) {
	var b Buffer
	if b.Len() != 0 {
		t.Errorf("Len = %d", b.Len())
	}
	if b.String() != "" {
		t.Errorf("String = %q", b.String())
	}
	if b.Modified() {
		t.Error("zero buffer should be unmodified")
	}
	if b.NLines() != 1 {
		t.Errorf("NLines = %d, want 1", b.NLines())
	}
}

func TestNewBufferNotModified(t *testing.T) {
	b := NewBuffer("hello")
	if b.Modified() {
		t.Error("fresh buffer should be unmodified")
	}
	if b.CanUndo() {
		t.Error("initial content should not be undoable")
	}
	if b.String() != "hello" {
		t.Errorf("String = %q", b.String())
	}
}

func TestInsertDelete(t *testing.T) {
	b := NewBuffer("hello world")
	b.Insert(5, ",")
	if got := b.String(); got != "hello, world" {
		t.Errorf("after insert: %q", got)
	}
	if !b.Modified() {
		t.Error("insert should mark modified")
	}
	removed := b.Delete(5, 1)
	if removed != "," {
		t.Errorf("Delete returned %q", removed)
	}
	if got := b.String(); got != "hello world" {
		t.Errorf("after delete: %q", got)
	}
}

func TestInsertAtEnds(t *testing.T) {
	b := NewBuffer("bc")
	b.Insert(0, "a")
	b.Insert(3, "d")
	if got := b.String(); got != "abcd" {
		t.Errorf("got %q", got)
	}
}

func TestInsertEmptyNoop(t *testing.T) {
	b := NewBuffer("x")
	b.Insert(0, "")
	if b.Modified() {
		t.Error("empty insert should not modify")
	}
	if b.Delete(0, 0) != "" {
		t.Error("zero delete should return empty")
	}
}

func TestUnicode(t *testing.T) {
	b := NewBuffer("héllo")
	if b.Len() != 5 {
		t.Errorf("Len = %d, want 5 runes", b.Len())
	}
	if b.At(1) != 'é' {
		t.Errorf("At(1) = %q", b.At(1))
	}
	b.Insert(5, "…")
	if got := b.String(); got != "héllo…" {
		t.Errorf("got %q", got)
	}
}

func TestSlice(t *testing.T) {
	b := NewBuffer("abcdef")
	cases := []struct {
		off, n int
		want   string
	}{
		{0, 3, "abc"},
		{3, 3, "def"},
		{4, 10, "ef"}, // clamped
		{-2, 4, "ab"}, // negative start clamped
		{10, 3, ""},   // past end
		{2, 0, ""},    // zero length
		{0, 6, "abcdef"},
	}
	for _, c := range cases {
		if got := b.Slice(c.off, c.n); got != c.want {
			t.Errorf("Slice(%d,%d) = %q, want %q", c.off, c.n, got, c.want)
		}
	}
}

func TestUndoRedoSingle(t *testing.T) {
	b := NewBuffer("abc")
	b.Commit()
	b.Insert(3, "def")
	if !b.Undo() {
		t.Fatal("Undo returned false")
	}
	if got := b.String(); got != "abc" {
		t.Errorf("after undo: %q", got)
	}
	if !b.Redo() {
		t.Fatal("Redo returned false")
	}
	if got := b.String(); got != "abcdef" {
		t.Errorf("after redo: %q", got)
	}
}

func TestUndoTransaction(t *testing.T) {
	b := NewBuffer("hello")
	b.Replace(0, 5, "goodbye") // single transaction
	if got := b.String(); got != "goodbye" {
		t.Fatalf("after replace: %q", got)
	}
	b.Undo()
	if got := b.String(); got != "hello" {
		t.Errorf("after undo of replace: %q", got)
	}
	b.Redo()
	if got := b.String(); got != "goodbye" {
		t.Errorf("after redo of replace: %q", got)
	}
}

func TestUndoEmpty(t *testing.T) {
	var b Buffer
	if b.Undo() {
		t.Error("Undo on empty log should return false")
	}
	if b.Redo() {
		t.Error("Redo on empty log should return false")
	}
}

func TestRedoClearedByEdit(t *testing.T) {
	b := NewBuffer("a")
	b.Commit()
	b.Insert(1, "b")
	b.Undo()
	if !b.CanRedo() {
		t.Fatal("should be able to redo")
	}
	b.Insert(1, "c")
	if b.CanRedo() {
		t.Error("new edit should clear redo stack")
	}
}

func TestUndoSequence(t *testing.T) {
	b := NewBuffer("")
	for _, s := range []string{"one ", "two ", "three "} {
		b.Commit()
		b.Insert(b.Len(), s)
	}
	want := []string{"one two three ", "one two ", "one ", ""}
	for i := 1; i < len(want); i++ {
		b.Undo()
		if got := b.String(); got != want[i] {
			t.Errorf("undo %d: %q, want %q", i, got, want[i])
		}
	}
	for i := len(want) - 2; i >= 0; i-- {
		b.Redo()
		if got := b.String(); got != want[i] {
			t.Errorf("redo to %d: %q, want %q", i, got, want[i])
		}
	}
}

func TestLines(t *testing.T) {
	b := NewBuffer("first\nsecond\nthird")
	if b.NLines() != 3 {
		t.Errorf("NLines = %d", b.NLines())
	}
	if off := b.LineStart(1); off != 0 {
		t.Errorf("LineStart(1) = %d", off)
	}
	if off := b.LineStart(2); off != 6 {
		t.Errorf("LineStart(2) = %d", off)
	}
	if off := b.LineEnd(2); off != 12 {
		t.Errorf("LineEnd(2) = %d", off)
	}
	if off := b.LineStart(99); off != b.Len() {
		t.Errorf("LineStart(99) = %d, want Len", off)
	}
	if ln := b.LineAt(0); ln != 1 {
		t.Errorf("LineAt(0) = %d", ln)
	}
	if ln := b.LineAt(6); ln != 2 {
		t.Errorf("LineAt(6) = %d", ln)
	}
	if ln := b.LineAt(999); ln != 3 {
		t.Errorf("LineAt(999) = %d", ln)
	}
}

func TestNLinesTrailingNewline(t *testing.T) {
	if n := NewBuffer("a\nb\n").NLines(); n != 2 {
		t.Errorf("NLines with trailing newline = %d, want 2", n)
	}
	if n := NewBuffer("\n").NLines(); n != 1 {
		t.Errorf("NLines single newline = %d, want 1", n)
	}
}

func TestAddressLine(t *testing.T) {
	b := NewBuffer("aa\nbb\ncc")
	q0, q1, err := b.Address("2")
	if err != nil || q0 != 3 || q1 != 5 {
		t.Errorf("Address(2) = %d,%d,%v", q0, q1, err)
	}
	// Line numbers beyond the end clamp to buffer end.
	q0, q1, err = b.Address("9")
	if err != nil || q0 != b.Len() || q1 != b.Len() {
		t.Errorf("Address(9) = %d,%d,%v", q0, q1, err)
	}
	q0, q1, err = b.Address("0")
	if err != nil || q0 != 0 {
		t.Errorf("Address(0) = %d,%d,%v", q0, q1, err)
	}
}

func TestAddressOffset(t *testing.T) {
	b := NewBuffer("hello")
	q0, q1, err := b.Address("#3")
	if err != nil || q0 != 3 || q1 != 3 {
		t.Errorf("Address(#3) = %d,%d,%v", q0, q1, err)
	}
	q0, _, err = b.Address("#99")
	if err != nil || q0 != 5 {
		t.Errorf("Address(#99) = %d,%v, want clamp to 5", q0, err)
	}
}

func TestAddressPattern(t *testing.T) {
	b := NewBuffer("the quick brown fox")
	q0, q1, err := b.Address("/brown/")
	if err != nil || q0 != 10 || q1 != 15 {
		t.Errorf("Address(/brown/) = %d,%d,%v", q0, q1, err)
	}
	if _, _, err := b.Address("/absent/"); err != ErrNoMatch {
		t.Errorf("missing pattern err = %v", err)
	}
	if _, _, err := b.Address("//"); err == nil {
		t.Error("empty pattern should error")
	}
}

func TestAddressPatternUnicode(t *testing.T) {
	b := NewBuffer("héllo wörld")
	q0, q1, err := b.Address("/wörld/")
	if err != nil || q0 != 6 || q1 != 11 {
		t.Errorf("unicode pattern = %d,%d,%v (want rune offsets 6,11)", q0, q1, err)
	}
}

func TestAddressBad(t *testing.T) {
	b := NewBuffer("x")
	if _, _, err := b.Address("#x"); err == nil {
		t.Error("bad #addr should error")
	}
	if _, _, err := b.Address("zz"); err == nil {
		t.Error("bad line addr should error")
	}
	if q0, q1, err := b.Address(""); err != nil || q0 != 0 || q1 != 0 {
		t.Errorf("empty addr = %d,%d,%v", q0, q1, err)
	}
}

func TestSetString(t *testing.T) {
	b := NewBuffer("old stuff")
	b.SetString("new")
	if b.String() != "new" {
		t.Errorf("got %q", b.String())
	}
	b.Undo()
	if b.String() != "old stuff" {
		t.Errorf("undo of SetString: %q", b.String())
	}
}

func TestSetCleanModified(t *testing.T) {
	b := NewBuffer("x")
	b.Insert(1, "y")
	if !b.Modified() {
		t.Fatal("want modified")
	}
	b.SetClean()
	if b.Modified() {
		t.Fatal("want clean after SetClean")
	}
	b.Delete(0, 1)
	if !b.Modified() {
		t.Fatal("delete should re-modify")
	}
}

// Undoing every edit back to the last-clean state must restore
// Modified() == false, so the tag stops offering Put! for an unchanged
// file; redoing forward to the clean state must do the same.
func TestUndoToCleanRestoresUnmodified(t *testing.T) {
	b := NewBuffer("base")
	b.Insert(4, " one")
	b.Commit()
	b.SetClean() // as after a Put!
	b.Insert(8, " two")
	b.Commit()
	if !b.Modified() {
		t.Fatal("edit after SetClean must modify")
	}
	if !b.Undo() {
		t.Fatal("undo failed")
	}
	if b.Modified() {
		t.Errorf("undo back to clean state: Modified() = true, body %q", b.String())
	}
	if !b.Redo() {
		t.Fatal("redo failed")
	}
	if !b.Modified() {
		t.Error("redo past clean state must re-modify")
	}
	if !b.Undo() {
		t.Fatal("second undo failed")
	}
	if b.Modified() {
		t.Error("undo to clean a second time must be clean again")
	}
	// Undo past the clean state: older contents are modified too.
	if !b.Undo() {
		t.Fatal("undo past clean failed")
	}
	if !b.Modified() {
		t.Error("undo past the clean state must be modified")
	}
	// Redo forward onto the clean state again.
	if !b.Redo() {
		t.Fatal("redo to clean failed")
	}
	if b.Modified() {
		t.Error("redo forward to clean state must be clean")
	}
}

// A fresh edit truncates the redo history; if the clean state lived
// there, no undo position is clean any more.
func TestCleanStateLostByTruncatedRedo(t *testing.T) {
	b := NewBuffer("x")
	b.Insert(1, "a")
	b.Commit()
	b.Insert(2, "b")
	b.Commit()
	b.SetClean() // clean at "xab"
	b.Undo()     // back to "xa"; clean state now in redo
	b.Insert(2, "c")
	b.Commit() // redo truncated: "xab" unreachable
	for b.Undo() {
	}
	if !b.Modified() {
		t.Error("clean state was truncated; no undo position may be clean")
	}
	for b.Redo() {
	}
	if !b.Modified() {
		t.Error("clean state was truncated; no redo position may be clean")
	}
}

// SetDirty forces modified without an edit; undo cannot clean it.
func TestSetDirtySticksAcrossUndo(t *testing.T) {
	b := NewBuffer("x")
	b.Insert(1, "y")
	b.Commit()
	b.SetClean()
	b.SetDirty()
	if !b.Modified() {
		t.Fatal("SetDirty must modify")
	}
	b.Undo()
	if !b.Modified() {
		t.Error("undo must not clear a forced dirty state")
	}
	b.SetClean()
	if b.Modified() {
		t.Error("SetClean must clear a forced dirty state")
	}
}

// Gen must change whenever contents change, including via undo/redo, and
// hold still across queries: frames rely on it as a damage check.
func TestGenTracksEdits(t *testing.T) {
	b := NewBuffer("hello\nworld")
	g0 := b.Gen()
	_ = b.String()
	_ = b.NLines()
	_ = b.LineStart(2)
	if b.Gen() != g0 {
		t.Fatal("queries must not bump Gen")
	}
	b.Insert(0, "a")
	g1 := b.Gen()
	if g1 == g0 {
		t.Fatal("Insert must bump Gen")
	}
	b.Delete(0, 1)
	g2 := b.Gen()
	if g2 == g1 {
		t.Fatal("Delete must bump Gen")
	}
	b.Undo()
	if b.Gen() == g2 {
		t.Fatal("Undo must bump Gen")
	}
}

// Slice's bulk fast path must behave identically with the gap in every
// position relative to the requested range.
func TestSliceAcrossGap(t *testing.T) {
	const content = "0123456789"
	for gapAt := 0; gapAt <= len(content); gapAt++ {
		b := NewBuffer(content)
		// Position the gap by inserting and deleting at gapAt.
		b.Insert(gapAt, "X")
		b.Delete(gapAt, 1)
		if b.String() != content {
			t.Fatalf("setup: %q", b.String())
		}
		for off := 0; off <= len(content); off++ {
			for n := 0; n <= len(content)-off; n++ {
				if got, want := b.Slice(off, n), content[off:off+n]; got != want {
					t.Fatalf("gap@%d Slice(%d,%d) = %q, want %q", gapAt, off, n, got, want)
				}
			}
		}
	}
}

// Gap-buffer stress: random edits must match a reference []rune model.
func TestGapBufferAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuffer("")
	var model []rune
	alphabet := "abcdefghij\n"
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			off := rng.Intn(len(model) + 1)
			n := 1 + rng.Intn(5)
			var sb strings.Builder
			for j := 0; j < n; j++ {
				sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			s := sb.String()
			b.Insert(off, s)
			model = append(model[:off], append([]rune(s), model[off:]...)...)
		} else {
			off := rng.Intn(len(model))
			n := rng.Intn(len(model) - off + 1)
			got := b.Delete(off, n)
			want := string(model[off : off+n])
			if got != want {
				t.Fatalf("step %d: Delete returned %q, want %q", i, got, want)
			}
			model = append(model[:off], model[off+n:]...)
		}
		if b.Len() != len(model) {
			t.Fatalf("step %d: Len=%d model=%d", i, b.Len(), len(model))
		}
	}
	if b.String() != string(model) {
		t.Fatalf("final mismatch:\n%q\n%q", b.String(), model)
	}
}

// Property: undo is an exact inverse of a random transaction.
func TestUndoInverseProperty(t *testing.T) {
	f := func(initial string, off1 uint8, ins string, del uint8) bool {
		b := NewBuffer(initial)
		before := b.String()
		b.Commit()
		o := int(off1) % (b.Len() + 1)
		b.Insert(o, ins)
		d := int(del) % (b.Len() - o + 1)
		b.Delete(o, d)
		if !b.CanUndo() && (len(ins) > 0 || d > 0) {
			return false
		}
		if len(ins) == 0 && d == 0 {
			return b.String() == before
		}
		b.Undo()
		return b.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: undo followed by redo restores the edited state.
func TestRedoInverseProperty(t *testing.T) {
	f := func(initial, ins string, off uint8) bool {
		if len(ins) == 0 {
			return true
		}
		b := NewBuffer(initial)
		b.Commit()
		b.Insert(int(off)%(b.Len()+1), ins)
		after := b.String()
		b.Undo()
		b.Redo()
		return b.String() == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LineStart is monotone in the line number.
func TestLineStartMonotone(t *testing.T) {
	f := func(s string) bool {
		b := NewBuffer(s)
		prev := -1
		for ln := 1; ln <= b.NLines()+2; ln++ {
			off := b.LineStart(ln)
			if off < prev {
				return false
			}
			prev = off
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LineAt(LineStart(n)) == n for lines that exist.
func TestLineRoundTrip(t *testing.T) {
	f := func(s string) bool {
		b := NewBuffer(s)
		for ln := 1; ln <= b.NLines(); ln++ {
			start := b.LineStart(ln)
			if start < b.Len() && b.LineAt(start) != ln {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range should panic")
		}
	}()
	NewBuffer("ab").At(5)
}

func TestDeletePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Delete out of range should panic")
		}
	}()
	NewBuffer("ab").Delete(1, 5)
}

func BenchmarkInsertSequential(b *testing.B) {
	buf := NewBuffer("")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Insert(buf.Len(), "x")
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	buf := NewBuffer(strings.Repeat("hello world\n", 1000))
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Insert(rng.Intn(buf.Len()+1), "y")
	}
}

func BenchmarkDeleteInsertChurn(b *testing.B) {
	buf := NewBuffer(strings.Repeat("0123456789", 500))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * 37) % (buf.Len() - 10)
		buf.Delete(off, 5)
		buf.Insert(off, "abcde")
	}
}

func BenchmarkAddressLine(b *testing.B) {
	buf := NewBuffer(strings.Repeat("some line of text\n", 2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := buf.Address("1500"); err != nil {
			b.Fatal(err)
		}
	}
}
