// Package frame lays text out inside a rectangle of character cells,
// playing the role libframe played for the original help: it maintains the
// bijection between rune offsets in a buffer and positions on the screen,
// so that the mouse can be translated to "the file and character offset of
// the mouse position" and selections can be painted over laid-out text.
//
// A frame views a window of a text.Buffer starting at an origin offset and
// flowing forward until the rectangle is full. Long lines wrap; tabs expand
// to a fixed tab stop. Layout is recomputed explicitly via Reflow, which is
// cheap at terminal scale and keeps the data structure simple.
package frame

import (
	"repro/internal/draw"
	"repro/internal/geom"
	"repro/internal/text"
)

// DefaultTabWidth is the tab stop used when none is specified.
const DefaultTabWidth = 4

// Frame maps a region of a buffer onto a rectangle of cells.
type Frame struct {
	buf      *text.Buffer
	rect     geom.Rect
	org      int // rune offset of the first character displayed
	tabWidth int

	// layout state, valid after Reflow:
	// offAt[row][col] is the rune offset whose glyph (or tab/newline
	// expansion) occupies that cell, or -1 for cells past end of text.
	offAt   [][]int
	cells   []int // backing storage for offAt rows
	lineEnd []int // offset one past the last rune shown on each row
	maxOff  int   // one past the last offset laid out
	full    bool  // true if text continues past the bottom of the frame

	// gen is the buffer generation the layout was computed from; Reuse
	// compares it against the buffer's current generation to decide
	// whether the layout is still valid.
	gen uint64
}

// New returns a frame over buf occupying rect, showing text from offset
// org. The frame is laid out immediately.
func New(buf *text.Buffer, rect geom.Rect, org int) *Frame {
	f := &Frame{buf: buf, rect: rect, org: org, tabWidth: DefaultTabWidth}
	f.Reflow()
	return f
}

// Reuse returns a frame over buf occupying rect from origin org,
// recycling f when possible. If f already shows exactly that view of an
// unedited buffer — same buffer, rect, origin, and edit generation — it is
// returned untouched, skipping the relayout entirely; otherwise f (or a
// fresh frame, if f is nil or views another buffer) is reflowed in place,
// reusing its layout arrays. This is the damage check that lets a redraw
// cost nothing for windows whose view did not change.
func Reuse(f *Frame, buf *text.Buffer, rect geom.Rect, org int) *Frame {
	if f == nil || f.buf != buf {
		return New(buf, rect, org)
	}
	if f.rect == rect && f.org == org && f.gen == buf.Gen() {
		return f
	}
	f.rect = rect
	f.org = org
	f.Reflow()
	return f
}

// Rect returns the frame's rectangle.
func (f *Frame) Rect() geom.Rect { return f.rect }

// SetRect moves or resizes the frame and reflows.
func (f *Frame) SetRect(r geom.Rect) {
	f.rect = r
	f.Reflow()
}

// Org returns the rune offset of the first character displayed.
func (f *Frame) Org() int { return f.org }

// SetOrg scrolls the frame so offset org is the first displayed rune. The
// origin is clamped to the buffer and snapped back to a line start so rows
// always begin at the start of a logical line, matching help's behaviour.
func (f *Frame) SetOrg(org int) {
	if org < 0 {
		org = 0
	}
	if org > f.buf.Len() {
		org = f.buf.Len()
	}
	// Snap to the start of the containing line, via the buffer's line
	// index rather than a rune-by-rune walk backwards.
	org = f.buf.LineStart(f.buf.LineAt(org))
	f.org = org
	f.Reflow()
}

// ScrollToLine repositions the origin so 1-based line ln is the top line.
func (f *Frame) ScrollToLine(ln int) {
	f.org = f.buf.LineStart(ln)
	f.Reflow()
}

// ShowOffset scrolls minimally so offset off is visible. If off is already
// on screen nothing changes; otherwise the frame is repositioned with off's
// line placed a third of the way down, the heuristic help used so context
// is visible above the target.
func (f *Frame) ShowOffset(off int) {
	if off < 0 {
		off = 0
	}
	if off > f.buf.Len() {
		off = f.buf.Len()
	}
	if f.Visible(off) {
		return
	}
	ln := f.buf.LineAt(off)
	// Clamp against the real line count: offsets at the end of a buffer
	// with a trailing newline resolve to the phantom line after it, and
	// scrolling there (an address past EOF, like file.c:9999) would show
	// an empty frame beyond the last line.
	if max := f.buf.NLines(); ln > max {
		ln = max
	}
	top := ln - f.rect.Dy()/3
	if top < 1 {
		top = 1
	}
	f.ScrollToLine(top)
}

// MaxOff returns one past the last rune offset laid out in the frame.
func (f *Frame) MaxOff() int { return f.maxOff }

// Full reports whether text continues past the bottom of the frame.
func (f *Frame) Full() bool { return f.full }

// Visible reports whether offset off falls within the laid-out region.
// The end-of-text position counts as visible when the frame is not full.
func (f *Frame) Visible(off int) bool {
	if off < f.org {
		return false
	}
	if off < f.maxOff {
		return true
	}
	return off == f.maxOff && !f.full
}

// Reflow recomputes the layout from the current buffer contents. The
// layout arrays are reused across reflows of the same geometry, so a
// relayout allocates only when the frame grows.
func (f *Frame) Reflow() {
	w, h := f.rect.Dx(), f.rect.Dy()
	if len(f.cells) != w*h || len(f.offAt) != h {
		f.cells = make([]int, w*h)
		f.offAt = make([][]int, h)
		for i := range f.offAt {
			f.offAt[i] = f.cells[i*w : (i+1)*w]
		}
		f.lineEnd = make([]int, h)
	}
	for i := range f.cells {
		f.cells[i] = -1
	}
	for i := range f.lineEnd {
		f.lineEnd[i] = 0
	}
	f.gen = f.buf.Gen()
	if w <= 0 || h <= 0 {
		f.maxOff = f.org
		f.full = true
		return
	}
	off := f.org
	n := f.buf.Len()
	row, col := 0, 0
	for off < n {
		r := f.buf.At(off)
		switch r {
		case '\n':
			// The newline owns the rest of the row so a click past the
			// end of a line resolves to the newline's offset.
			for c := col; c < w; c++ {
				f.offAt[row][c] = off
			}
			f.lineEnd[row] = off
			row++
			col = 0
			off++
			if row >= h {
				f.maxOff = off
				f.full = off < n
				return
			}
			continue
		case '\t':
			next := (col/f.tabWidth + 1) * f.tabWidth
			if next > w {
				next = w
			}
			for c := col; c < next; c++ {
				f.offAt[row][c] = off
			}
			col = next
		default:
			f.offAt[row][col] = off
			col++
		}
		off++
		if col >= w {
			// Wrap long line.
			f.lineEnd[row] = off
			row++
			col = 0
			if row >= h {
				f.maxOff = off
				f.full = off < n
				return
			}
		}
	}
	// Text ended inside the frame.
	if row < h {
		f.lineEnd[row] = off
	}
	f.maxOff = off
	f.full = false
}

// PointOf returns the screen cell of rune offset off and whether the
// offset is visible. The end-of-text position maps to the cell after the
// final rune.
func (f *Frame) PointOf(off int) (geom.Point, bool) {
	if !f.Visible(off) {
		return geom.Point{}, false
	}
	w := f.rect.Dx()
	for row := range f.offAt {
		for col := 0; col < w; col++ {
			if f.offAt[row][col] == off {
				return f.rect.Min.Add(geom.Pt(col, row)), true
			}
		}
	}
	// off == maxOff: position after the last laid-out rune.
	if off == f.maxOff {
		row, col := f.endCell()
		return f.rect.Min.Add(geom.Pt(col, row)), true
	}
	return geom.Point{}, false
}

// endCell computes the row/col just past the final laid-out rune.
func (f *Frame) endCell() (row, col int) {
	w := f.rect.Dx()
	lastRow, lastCol := 0, -1
	for r := range f.offAt {
		for c := 0; c < w; c++ {
			if f.offAt[r][c] >= 0 && f.offAt[r][c] < f.maxOff {
				// Only count real glyph cells, and remember the last.
				if r > lastRow || (r == lastRow && c > lastCol) {
					lastRow, lastCol = r, c
				}
			}
		}
	}
	if lastCol == -1 {
		return 0, 0
	}
	// If the last rune was a newline the next position starts a new row.
	lastOff := f.offAt[lastRow][lastCol]
	if f.buf.Len() > lastOff && f.buf.At(lastOff) == '\n' {
		return lastRow + 1, 0
	}
	if lastCol+1 >= w {
		return lastRow + 1, 0
	}
	return lastRow, lastCol + 1
}

// OffsetOf translates a screen point to the rune offset under it, the
// fundamental mouse-to-text mapping. Points past the end of a line resolve
// to the line's newline; points below the text resolve to the end of the
// laid-out region; points outside the frame are clamped.
func (f *Frame) OffsetOf(p geom.Point) int {
	p = f.rect.Clamp(p)
	row := p.Y - f.rect.Min.Y
	col := p.X - f.rect.Min.X
	if row < 0 || row >= len(f.offAt) {
		return f.maxOff
	}
	if off := f.offAt[row][col]; off >= 0 {
		return off
	}
	// Blank area: walk left to the nearest laid-out cell on this row.
	for c := col; c >= 0; c-- {
		if off := f.offAt[row][c]; off >= 0 {
			// Click after text on a line lands just past its last rune.
			if f.buf.Len() > off && f.buf.At(off) != '\n' {
				return off + 1
			}
			return off
		}
	}
	// Entirely blank row: resolve to end of text if above it, else max.
	return f.maxOff
}

// Render paints the frame's text onto the screen with selection [q0,q1)
// highlighted using selAttr (draw.Reverse for the current selection,
// draw.Outline for others). A null selection (q0==q1) paints a one-cell
// tick at the insertion point when selAttr is draw.Reverse.
func (f *Frame) Render(s *draw.Screen, q0, q1 int, selAttr draw.Attr) {
	w := f.rect.Dx()
	for row := range f.offAt {
		for col := 0; col < w; col++ {
			p := f.rect.Min.Add(geom.Pt(col, row))
			off := f.offAt[row][col]
			if off < 0 {
				s.SetRune(p, ' ', draw.Plain)
				continue
			}
			r := f.buf.At(off)
			if r == '\n' || r == '\t' {
				r = ' '
			}
			attr := draw.Plain
			if q0 < q1 && off >= q0 && off < q1 {
				attr = selAttr
			}
			s.SetRune(p, r, attr)
		}
	}
	if q0 == q1 && selAttr == draw.Reverse {
		if p, ok := f.PointOf(q0); ok {
			c := s.At(p)
			s.Set(p, draw.Cell{R: c.R, Attr: draw.Reverse})
		}
	}
}

// Lines returns the number of rows in the frame's rectangle.
func (f *Frame) Lines() int { return f.rect.Dy() }

// VisibleLines returns how many rows currently contain text.
func (f *Frame) VisibleLines() int {
	n := 0
	for r := range f.offAt {
		if f.offAt[r][0] >= 0 || f.rowHasText(r) {
			n++
		}
	}
	return n
}

func (f *Frame) rowHasText(r int) bool {
	for _, off := range f.offAt[r] {
		if off >= 0 {
			return true
		}
	}
	return false
}
