package frame

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/draw"
	"repro/internal/geom"
	"repro/internal/text"
)

func newFrame(s string, w, h int) (*text.Buffer, *Frame) {
	b := text.NewBuffer(s)
	return b, New(b, geom.Rt(0, 0, w, h), 0)
}

func TestLayoutSimple(t *testing.T) {
	_, f := newFrame("ab\ncd", 10, 5)
	p, ok := f.PointOf(0)
	if !ok || p != geom.Pt(0, 0) {
		t.Errorf("PointOf(0) = %v,%v", p, ok)
	}
	p, ok = f.PointOf(3) // 'c'
	if !ok || p != geom.Pt(0, 1) {
		t.Errorf("PointOf(3) = %v,%v", p, ok)
	}
	if f.Full() {
		t.Error("frame should not be full")
	}
	if f.MaxOff() != 5 {
		t.Errorf("MaxOff = %d", f.MaxOff())
	}
}

func TestLayoutWrap(t *testing.T) {
	_, f := newFrame("abcdefgh", 4, 3)
	p, ok := f.PointOf(4) // 'e' wraps to second row
	if !ok || p != geom.Pt(0, 1) {
		t.Errorf("PointOf(4) = %v,%v", p, ok)
	}
	if f.Full() {
		t.Error("8 chars in 4x3 should fit")
	}
}

func TestLayoutFull(t *testing.T) {
	_, f := newFrame("a\nb\nc\nd\ne\n", 10, 3)
	if !f.Full() {
		t.Error("5 lines in 3 rows should be full")
	}
	if f.MaxOff() != 6 { // "a\nb\nc\n" = 6 runes
		t.Errorf("MaxOff = %d, want 6", f.MaxOff())
	}
	if f.Visible(7) {
		t.Error("offset 7 should not be visible")
	}
}

func TestTabExpansion(t *testing.T) {
	_, f := newFrame("\tx", 12, 2)
	p, ok := f.PointOf(1) // 'x' after a 4-wide tab
	if !ok || p != geom.Pt(4, 0) {
		t.Errorf("PointOf(1) = %v,%v, want (4,0)", p, ok)
	}
	// Clicking anywhere in the tab expansion resolves to the tab offset.
	for x := 0; x < 4; x++ {
		if off := f.OffsetOf(geom.Pt(x, 0)); off != 0 {
			t.Errorf("OffsetOf(%d,0) = %d, want 0", x, off)
		}
	}
}

func TestOffsetOfPastLineEnd(t *testing.T) {
	_, f := newFrame("ab\ncdef", 10, 4)
	// Click far past "ab" should land on the newline offset (2).
	if off := f.OffsetOf(geom.Pt(8, 0)); off != 2 {
		t.Errorf("OffsetOf past line end = %d, want 2", off)
	}
	// Click below all text resolves to max offset.
	if off := f.OffsetOf(geom.Pt(3, 3)); off != f.MaxOff() {
		t.Errorf("OffsetOf below text = %d, want %d", off, f.MaxOff())
	}
}

func TestOffsetOfClamps(t *testing.T) {
	_, f := newFrame("hello", 10, 2)
	if off := f.OffsetOf(geom.Pt(-5, -5)); off != 0 {
		t.Errorf("clamped NW = %d", off)
	}
	if off := f.OffsetOf(geom.Pt(99, 99)); off != f.MaxOff() {
		t.Errorf("clamped SE = %d, want %d", off, f.MaxOff())
	}
}

func TestSetOrgSnapsToLineStart(t *testing.T) {
	b, f := newFrame("first\nsecond\nthird\n", 10, 2)
	f.SetOrg(8) // middle of "second"
	if f.Org() != 6 {
		t.Errorf("Org = %d, want 6 (start of 'second')", f.Org())
	}
	_ = b
	if p, ok := f.PointOf(6); !ok || p != geom.Pt(0, 0) {
		t.Errorf("PointOf(6) = %v,%v", p, ok)
	}
}

func TestSetOrgClamps(t *testing.T) {
	_, f := newFrame("ab", 5, 2)
	f.SetOrg(-3)
	if f.Org() != 0 {
		t.Errorf("Org = %d", f.Org())
	}
	f.SetOrg(100)
	if f.Org() > 2 {
		t.Errorf("Org = %d", f.Org())
	}
}

func TestScrollToLine(t *testing.T) {
	var lines []string
	for i := 0; i < 20; i++ {
		lines = append(lines, strings.Repeat("x", 3))
	}
	_, f := newFrame(strings.Join(lines, "\n"), 10, 5)
	f.ScrollToLine(10)
	wantOrg := text.NewBuffer(strings.Join(lines, "\n")).LineStart(10)
	if f.Org() != wantOrg {
		t.Errorf("Org = %d, want %d", f.Org(), wantOrg)
	}
}

func TestShowOffsetNoopWhenVisible(t *testing.T) {
	_, f := newFrame("a\nb\nc", 10, 5)
	f.ShowOffset(2)
	if f.Org() != 0 {
		t.Errorf("ShowOffset of visible text moved org to %d", f.Org())
	}
}

func TestShowOffsetScrolls(t *testing.T) {
	content := strings.Repeat("line\n", 50)
	b, f := newFrame(content, 10, 5)
	target := b.LineStart(40)
	f.ShowOffset(target)
	if !f.Visible(target) {
		t.Error("target not visible after ShowOffset")
	}
	if f.Org() == 0 {
		t.Error("frame did not scroll")
	}
}

func TestRenderPlain(t *testing.T) {
	_, f := newFrame("hi\nthere", 8, 3)
	s := draw.NewScreen(8, 3)
	f.Render(s, 0, 0, draw.Plain)
	if got := s.Line(0); got != "hi" {
		t.Errorf("row 0 = %q", got)
	}
	if got := s.Line(1); got != "there" {
		t.Errorf("row 1 = %q", got)
	}
}

func TestRenderSelection(t *testing.T) {
	_, f := newFrame("hello", 8, 1)
	s := draw.NewScreen(8, 1)
	f.Render(s, 1, 4, draw.Reverse)
	for x := 0; x < 5; x++ {
		want := draw.Plain
		if x >= 1 && x < 4 {
			want = draw.Reverse
		}
		if got := s.At(geom.Pt(x, 0)).Attr; got != want {
			t.Errorf("attr at %d = %v, want %v", x, got, want)
		}
	}
}

func TestRenderNullSelectionTick(t *testing.T) {
	_, f := newFrame("abc", 8, 1)
	s := draw.NewScreen(8, 1)
	f.Render(s, 2, 2, draw.Reverse)
	if got := s.At(geom.Pt(2, 0)).Attr; got != draw.Reverse {
		t.Errorf("tick attr = %v", got)
	}
	// Outline null selections draw no tick.
	s2 := draw.NewScreen(8, 1)
	f.Render(s2, 2, 2, draw.Outline)
	if got := s2.At(geom.Pt(2, 0)).Attr; got != draw.Plain {
		t.Errorf("outline null tick attr = %v", got)
	}
}

func TestRenderAfterEdit(t *testing.T) {
	b, f := newFrame("old", 8, 1)
	b.SetString("new text")
	f.Reflow()
	s := draw.NewScreen(8, 1)
	f.Render(s, 0, 0, draw.Plain)
	if got := s.Line(0); got != "new text" {
		t.Errorf("after edit = %q", got)
	}
}

func TestEmptyFrame(t *testing.T) {
	_, f := newFrame("", 5, 3)
	if f.MaxOff() != 0 || f.Full() {
		t.Errorf("empty: MaxOff=%d Full=%v", f.MaxOff(), f.Full())
	}
	if off := f.OffsetOf(geom.Pt(2, 2)); off != 0 {
		t.Errorf("OffsetOf on empty = %d", off)
	}
	p, ok := f.PointOf(0)
	if !ok || p != geom.Pt(0, 0) {
		t.Errorf("PointOf(0) on empty = %v,%v", p, ok)
	}
}

func TestZeroSizeFrame(t *testing.T) {
	b := text.NewBuffer("xyz")
	f := New(b, geom.Rt(0, 0, 0, 0), 0)
	if !f.Full() {
		t.Error("zero-size frame should report full")
	}
	if f.MaxOff() != 0 {
		t.Errorf("MaxOff = %d", f.MaxOff())
	}
}

func TestPointOfEndOfText(t *testing.T) {
	_, f := newFrame("ab", 5, 2)
	p, ok := f.PointOf(2)
	if !ok || p != geom.Pt(2, 0) {
		t.Errorf("PointOf(end) = %v,%v", p, ok)
	}
	// After a newline, the end position starts a new row.
	_, f2 := newFrame("ab\n", 5, 3)
	p, ok = f2.PointOf(3)
	if !ok || p != geom.Pt(0, 1) {
		t.Errorf("PointOf(end after newline) = %v,%v", p, ok)
	}
}

func TestVisibleLines(t *testing.T) {
	_, f := newFrame("a\nb", 5, 4)
	if n := f.VisibleLines(); n != 2 {
		t.Errorf("VisibleLines = %d", n)
	}
}

func TestTranslatedRect(t *testing.T) {
	b := text.NewBuffer("hi")
	f := New(b, geom.Rt(3, 2, 10, 5), 0)
	p, ok := f.PointOf(0)
	if !ok || p != geom.Pt(3, 2) {
		t.Errorf("PointOf(0) in offset frame = %v,%v", p, ok)
	}
	if off := f.OffsetOf(geom.Pt(4, 2)); off != 1 {
		t.Errorf("OffsetOf = %d", off)
	}
}

// Property: PointOf and OffsetOf are inverse for every visible offset.
func TestOffsetPointBijection(t *testing.T) {
	f := func(s string, w8, h8 uint8) bool {
		w := int(w8%20) + 2
		h := int(h8%10) + 1
		b := text.NewBuffer(s)
		fr := New(b, geom.Rt(0, 0, w, h), 0)
		for off := 0; off < fr.MaxOff(); off++ {
			p, ok := fr.PointOf(off)
			if !ok {
				return false
			}
			if got := fr.OffsetOf(p); got != off {
				// Tabs and newlines own multiple cells; OffsetOf on the
				// first cell must still return the owning offset.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: every OffsetOf result is within [org, maxOff].
func TestOffsetOfInRange(t *testing.T) {
	f := func(s string, x, y int8) bool {
		b := text.NewBuffer(s)
		fr := New(b, geom.Rt(0, 0, 8, 4), 0)
		off := fr.OffsetOf(geom.Pt(int(x), int(y)))
		return off >= 0 && off <= fr.MaxOff()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkReflow(b *testing.B) {
	buf := text.NewBuffer(strings.Repeat("the quick brown fox jumps\n", 200))
	f := New(buf, geom.Rt(0, 0, 80, 40), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reflow()
	}
}

func BenchmarkOffsetOf(b *testing.B) {
	buf := text.NewBuffer(strings.Repeat("some text here\n", 100))
	f := New(buf, geom.Rt(0, 0, 80, 40), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.OffsetOf(geom.Pt(i%80, i%40))
	}
}

// Reuse must hand back the same frame untouched when nothing it depends
// on (buffer contents, rect, origin) has changed, and reflow in place —
// same pointer, fresh layout — when something has.
func TestReuseIdentity(t *testing.T) {
	b := text.NewBuffer("one\ntwo\nthree\nfour\n")
	f := Reuse(nil, b, geom.Rt(0, 0, 10, 3), 0)
	if f == nil {
		t.Fatal("Reuse(nil) returned nil")
	}
	if g := Reuse(f, b, geom.Rt(0, 0, 10, 3), 0); g != f {
		t.Error("unchanged buffer/rect/org: Reuse returned a new frame")
	}

	b.Insert(0, "zero\n")
	g := Reuse(f, b, geom.Rt(0, 0, 10, 3), 0)
	if g != f {
		t.Error("edited buffer: Reuse should reflow in place, not reallocate")
	}
	if off := g.OffsetOf(geom.Pt(0, 0)); off != 0 {
		t.Errorf("after reflow row 0 starts at %d, want 0", off)
	}
	if _, ok := g.PointOf(b.LineStart(2)); !ok {
		t.Error("line 2 ('one') not visible after reflow")
	}

	// Origin change relays out even when the buffer is untouched.
	org := b.LineStart(2)
	g = Reuse(f, b, geom.Rt(0, 0, 10, 3), org)
	if g.Org() != org {
		t.Errorf("Org = %d, want %d", g.Org(), org)
	}
	if got := g.OffsetOf(geom.Pt(0, 0)); got != org {
		t.Errorf("top-left offset %d, want new org %d", got, org)
	}

	// Rect change relays out too.
	g = Reuse(g, b, geom.Rt(0, 0, 3, 3), org)
	if g.Rect() != geom.Rt(0, 0, 3, 3) {
		t.Errorf("rect not updated: %v", g.Rect())
	}

	// A different buffer gets a fresh frame: cached layout is meaningless.
	b2 := text.NewBuffer("other\n")
	h := Reuse(g, b2, geom.Rt(0, 0, 10, 3), 0)
	if h == g {
		t.Error("different buffer must get a fresh frame")
	}
}

// Reuse after an edit must agree cell-for-cell with a frame built from
// scratch over the same state.
func TestReuseMatchesFresh(t *testing.T) {
	b := text.NewBuffer(strings.Repeat("alpha beta gamma\n", 8))
	f := Reuse(nil, b, geom.Rt(0, 0, 12, 5), 0)
	for i, edit := range []func(){
		func() { b.Insert(0, "INS ") },
		func() { b.Delete(5, 7) },
		func() { b.Insert(b.Len(), "\ntail line") },
		func() { b.Undo() },
	} {
		edit()
		f = Reuse(f, b, geom.Rt(0, 0, 12, 5), 0)
		fresh := New(b, geom.Rt(0, 0, 12, 5), 0)
		for y := 0; y < 5; y++ {
			for x := 0; x < 12; x++ {
				got := f.OffsetOf(geom.Pt(x, y))
				want := fresh.OffsetOf(geom.Pt(x, y))
				if got != want {
					t.Fatalf("edit %d: cell (%d,%d) offset %d, fresh frame says %d", i, x, y, got, want)
				}
			}
		}
		if f.MaxOff() != fresh.MaxOff() {
			t.Fatalf("edit %d: MaxOff %d vs fresh %d", i, f.MaxOff(), fresh.MaxOff())
		}
	}
}

// ShowOffset clamps phantom line addresses (file.c:9999) to the last
// real line instead of scrolling into empty space.
func TestShowOffsetPastEOFClamps(t *testing.T) {
	b := text.NewBuffer(strings.Repeat("line\n", 40))
	f := New(b, geom.Rt(0, 0, 10, 5), 0)
	f.ShowOffset(b.Len())
	if f.Org() >= b.Len() {
		t.Errorf("org %d scrolled past the last line (len %d)", f.Org(), b.Len())
	}
	if !f.Visible(b.LineStart(40)) {
		t.Error("last real line not visible after addressing EOF")
	}
}
