// Package userland provides the Unix-flavored utilities the help paper's
// session depends on — cat, grep, cp, sed, ls, wc and friends — implemented
// as shell builtins over the vfs namespace, plus the mk build tool used in
// Figure 12 ("execute mk in /help/cbr to compile the program").
//
// The utilities implement the subsets the paper exercises rather than full
// POSIX behaviour; each doc comment states the supported flags. grep in
// particular matters to the evaluation: Table T3 compares the C browser's
// uses command against "the regular Unix command grep n /usr/rob/src/help/*.c",
// which reports "every occurrence of the letter n in the program".
package userland

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/shell"
	"repro/internal/vfs"
)

// Install registers every utility in sh.
func Install(sh *shell.Shell) {
	sh.Register("cat", Cat)
	sh.Register("cp", Cp)
	sh.Register("grep", Grep)
	sh.Register("ls", Ls)
	sh.Register("lc", Ls) // Plan 9's columnated ls; same output here
	sh.Register("sed", Sed)
	sh.Register("wc", Wc)
	sh.Register("sort", Sort)
	sh.Register("uniq", Uniq)
	sh.Register("head", Head)
	sh.Register("tail", Tail)
	sh.Register("touch", Touch)
	sh.Register("rm", Rm)
	sh.Register("mkdir", Mkdir)
	sh.Register("date", Date)
	sh.Register("sleep", Sleep)
	sh.Register("mk", Mk)
	sh.Register("mktouched", MkTouched)
	sh.Register("fortune", Fortune)
	sh.Register("news", News)
	sh.Register("cpp", Cpp)
	sh.Register("tee", Tee)
	sh.Register("basename", Basename)
}

// resolvePath makes a command argument absolute against the context dir.
func resolvePath(ctx *shell.Context, p string) string {
	if strings.HasPrefix(p, "/") {
		return vfs.Clean(p)
	}
	return vfs.Clean(ctx.Dir + "/" + p)
}

// Cat concatenates files (or standard input with no arguments).
func Cat(ctx *shell.Context, args []string) int {
	if len(args) == 1 {
		io.Copy(ctx.Stdout, ctx.Stdin)
		return 0
	}
	status := 0
	for _, a := range args[1:] {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, a))
		if err != nil {
			ctx.Errorf("cat: %v", err)
			status = 1
			continue
		}
		ctx.Stdout.Write(data)
	}
	return status
}

// Cp copies one file to another: cp from to.
func Cp(ctx *shell.Context, args []string) int {
	if len(args) != 3 {
		ctx.Errorf("usage: cp from to")
		return 1
	}
	data, err := ctx.FS.ReadFile(resolvePath(ctx, args[1]))
	if err != nil {
		ctx.Errorf("cp: %v", err)
		return 1
	}
	dst := resolvePath(ctx, args[2])
	if ctx.FS.IsDir(dst) {
		base := args[1]
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		dst = vfs.Clean(dst + "/" + base)
	}
	if err := ctx.FS.WriteFile(dst, data); err != nil {
		ctx.Errorf("cp: %v", err)
		return 1
	}
	return 0
}

const (
	// grepParallelMin is the file size above which grep stops reading the
	// whole file and instead scans fixed ranges through FS.ReadFileAt, so
	// a gigabyte log costs a few chunks of memory, not the file.
	grepParallelMin = 4 << 20
	// grepChunk is the scan unit for such files; each chunk is an
	// independent job for the worker pool.
	grepChunk = 1 << 20
)

type grepOpts struct {
	numbers, namesOnly, count, invert bool
	re                                *regexp.Regexp
}

// grepLine is one matched line of a chunk; rel is its 0-based index among
// the lines owned by that chunk, resolved to a global line number once
// every chunk's newline count is known.
type grepLine struct {
	rel  int
	text []byte
}

// grepChunkRes is what scanning one chunk of a large file yields.
type grepChunkRes struct {
	lines []grepLine
	n     int // matched (or, with -v, non-matched) owned lines
	nl    int // newlines inside the chunk range, prefix-summed for -n
	preNl int // newlines between the range start and the first owned line
	err   error
}

// grepNextLine cuts the line starting at start out of data, returning it
// without its terminator (a trailing \r\n or \n) and the start of the next
// line, mirroring bufio.ScanLines.
func grepNextLine(data []byte, start int) ([]byte, int) {
	line := data[start:]
	next := len(data)
	if j := bytes.IndexByte(line, '\n'); j >= 0 {
		line = line[:j]
		next = start + j + 1
	}
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, next
}

func writeGrepLine(out *bytes.Buffer, o *grepOpts, name string, showName bool, ln int, line []byte) {
	if showName {
		out.WriteString(name)
		out.WriteByte(':')
	}
	if o.numbers {
		out.WriteString(strconv.Itoa(ln))
		out.WriteByte(':')
	}
	out.Write(line)
	out.WriteByte('\n')
}

// grepScanAll greps one in-memory body (small files and stdin).
func grepScanAll(o *grepOpts, name string, data []byte, showName bool, out *bytes.Buffer) bool {
	ln, n := 0, 0
	for start := 0; start < len(data); {
		var line []byte
		line, start = grepNextLine(data, start)
		ln++
		if o.re.Match(line) == o.invert {
			continue
		}
		n++
		if o.namesOnly {
			fmt.Fprintln(out, name)
			return true
		}
		if o.count {
			continue
		}
		writeGrepLine(out, o, name, showName, ln, line)
	}
	if o.count {
		prefix := ""
		if showName {
			prefix = name + ":"
		}
		fmt.Fprintln(out, prefix+strconv.Itoa(n))
	}
	return n > 0
}

// grepLineTail reads forward from off until a newline or EOF: the rest of
// a line that started inside one chunk but runs past its end.
func grepLineTail(ctx *shell.Context, path string, off, size int64) ([]byte, error) {
	var tail []byte
	for off < size {
		n := int64(grepChunk)
		if off+n > size {
			n = size - off
		}
		b, _, err := ctx.FS.ReadFileAt(path, off, n)
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			break
		}
		if j := bytes.IndexByte(b, '\n'); j >= 0 {
			return append(tail, b[:j]...), nil
		}
		tail = append(tail, b...)
		off += int64(len(b))
	}
	return tail, nil
}

// grepScanChunk greps chunk ci of a large file. A chunk owns the lines
// that start inside its range [lo, hi); it reads one byte before lo to
// decide whether lo itself starts a line, and reads past hi to finish a
// line that spans the boundary. Line numbers cannot be assigned yet —
// they need the newline counts of every earlier chunk — so matches are
// reported by index among the chunk's owned lines.
func grepScanChunk(ctx *shell.Context, o *grepOpts, path string, size int64, ci int) grepChunkRes {
	lo := int64(ci) * grepChunk
	hi := lo + grepChunk
	if hi > size {
		hi = size
	}
	readStart := lo
	if lo > 0 {
		readStart = lo - 1
	}
	slab, _, err := ctx.FS.ReadFileAt(path, readStart, hi-readStart)
	if err != nil {
		return grepChunkRes{err: err}
	}
	if int64(len(slab)) < hi-readStart {
		return grepChunkRes{err: fmt.Errorf("%s: file shrank during scan", path)}
	}
	var res grepChunkRes
	first := 0
	if lo > 0 {
		j := bytes.IndexByte(slab, '\n')
		if j < 0 {
			// The whole range is the middle of a line owned by an
			// earlier chunk.
			return res
		}
		first = j + 1
		if j > 0 {
			res.preNl = 1
		}
		res.nl = bytes.Count(slab[1:], nlByte)
	} else {
		res.nl = bytes.Count(slab, nlByte)
	}
	rel := 0
	for start := first; readStart+int64(start) < hi; {
		var line []byte
		if j := bytes.IndexByte(slab[start:], '\n'); j >= 0 {
			line = slab[start : start+j]
			start += j + 1
		} else {
			tail, err := grepLineTail(ctx, path, readStart+int64(len(slab)), size)
			if err != nil {
				res.err = err
				return res
			}
			line = append(append([]byte{}, slab[start:]...), tail...)
			start = len(slab)
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		rel++
		if o.re.Match(line) == o.invert {
			continue
		}
		res.n++
		if !o.namesOnly && !o.count {
			res.lines = append(res.lines, grepLine{rel: rel - 1, text: line})
		}
	}
	return res
}

var nlByte = []byte{'\n'}

// grepFile is the per-argument unit of work and output.
type grepFile struct {
	display string
	path    string
	size    int64          // chunked scan when > 0
	chunks  []grepChunkRes // one per chunk, filled by workers
	out     bytes.Buffer
	hit     bool
	err     error
}

// Grep searches files (or stdin) for a regular expression. Supported
// flags: -n (line numbers), -i (case fold), -l (names only), -c (count),
// -v (invert). With more than one file, or with -n, matches are prefixed
// with the file name — the behaviour the uses-vs-grep comparison needs.
//
// The scan is parallel: one worker per CPU sweeps the argument list, and
// files above grepParallelMin are further split into chunk jobs read via
// FS.ReadFileAt, so big logs grep at bounded memory. Output is assembled
// in argument order regardless of which worker finishes first.
func Grep(ctx *shell.Context, args []string) int {
	var numbers, fold, namesOnly, count, invert bool
	rest := args[1:]
	for len(rest) > 0 && strings.HasPrefix(rest[0], "-") && len(rest[0]) > 1 {
		for _, f := range rest[0][1:] {
			switch f {
			case 'n':
				numbers = true
			case 'i':
				fold = true
			case 'l':
				namesOnly = true
			case 'c':
				count = true
			case 'v':
				invert = true
			default:
				ctx.Errorf("grep: unknown flag -%c", f)
				return 2
			}
		}
		rest = rest[1:]
	}
	if len(rest) == 0 {
		ctx.Errorf("usage: grep [-nilcv] pattern [file ...]")
		return 2
	}
	pat := rest[0]
	if fold {
		pat = "(?i)" + pat
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		ctx.Errorf("grep: %v", err)
		return 2
	}
	o := &grepOpts{numbers: numbers, namesOnly: namesOnly, count: count, invert: invert, re: re}
	names := rest[1:]
	if len(names) == 0 {
		data, err := io.ReadAll(ctx.Stdin)
		if err != nil {
			ctx.Errorf("grep: %v", err)
			return 2
		}
		var out bytes.Buffer
		hit := grepScanAll(o, "<stdin>", data, false, &out)
		ctx.Stdout.Write(out.Bytes())
		if hit {
			return 0
		}
		return 1
	}

	showName := len(names) > 1 || numbers
	files := make([]*grepFile, len(names))
	var jobs []func()
	for i, name := range names {
		f := &grepFile{display: name, path: resolvePath(ctx, name)}
		files[i] = f
		info, err := ctx.FS.Stat(f.path)
		if err == nil && !info.IsDir && info.Size >= grepParallelMin {
			f.size = info.Size
			nchunks := int((info.Size + grepChunk - 1) / grepChunk)
			f.chunks = make([]grepChunkRes, nchunks)
			for ci := 0; ci < nchunks; ci++ {
				ci := ci
				jobs = append(jobs, func() {
					f.chunks[ci] = grepScanChunk(ctx, o, f.path, f.size, ci)
				})
			}
			continue
		}
		// Small files, devices, directories and stat failures all take
		// the whole-read path, which produces the canonical errors.
		jobs = append(jobs, func() {
			data, err := ctx.FS.ReadFile(f.path)
			if err != nil {
				f.err = err
				return
			}
			f.hit = grepScanAll(o, f.display, data, showName, &f.out)
		})
	}

	// Every job writes a distinct slot (f.out/f.err of its file, or one
	// chunks[ci]), so the pool needs no locking.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobc := make(chan func())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobc {
				job()
			}
		}()
	}
	for _, job := range jobs {
		jobc <- job
	}
	close(jobc)
	wg.Wait()

	matched := false
	for _, f := range files {
		if f.err != nil {
			ctx.Errorf("grep: %v", f.err)
			continue
		}
		if f.chunks != nil {
			grepAssemble(o, f, showName)
			if f.err != nil {
				ctx.Errorf("grep: %v", f.err)
				continue
			}
		}
		matched = matched || f.hit
		ctx.Stdout.Write(f.out.Bytes())
	}
	if matched {
		return 0
	}
	return 1
}

// grepAssemble merges a chunked file's per-chunk results in order,
// turning chunk-relative match indices into global line numbers via a
// running prefix sum of newline counts.
func grepAssemble(o *grepOpts, f *grepFile, showName bool) {
	prefix := 0
	n := 0
	for i := range f.chunks {
		c := &f.chunks[i]
		if c.err != nil {
			f.err = c.err
			return
		}
		for _, ml := range c.lines {
			writeGrepLine(&f.out, o, f.display, showName, prefix+c.preNl+ml.rel+1, ml.text)
		}
		n += c.n
		prefix += c.nl
	}
	f.hit = n > 0
	if o.namesOnly {
		f.out.Reset()
		if f.hit {
			fmt.Fprintln(&f.out, f.display)
		}
		return
	}
	if o.count {
		prefixStr := ""
		if showName {
			prefixStr = f.display + ":"
		}
		fmt.Fprintln(&f.out, prefixStr+strconv.Itoa(n))
	}
}

// Ls lists a directory (or the context directory), one entry per line with
// directories slash-suffixed, matching help's directory-window rendering.
func Ls(ctx *shell.Context, args []string) int {
	dirs := args[1:]
	if len(dirs) == 0 {
		dirs = []string{ctx.Dir}
	}
	status := 0
	for _, d := range dirs {
		p := resolvePath(ctx, d)
		if !ctx.FS.IsDir(p) {
			if ctx.FS.Exists(p) {
				fmt.Fprintln(ctx.Stdout, d)
				continue
			}
			ctx.Errorf("ls: %s: does not exist", d)
			status = 1
			continue
		}
		ents, err := ctx.FS.ReadDir(p)
		if err != nil {
			ctx.Errorf("ls: %v", err)
			status = 1
			continue
		}
		for _, e := range ents {
			suffix := ""
			if e.IsDir {
				suffix = "/"
			}
			fmt.Fprintln(ctx.Stdout, e.Name+suffix)
		}
	}
	return status
}

// Sed implements the subset the paper's scripts use:
//
//	sed Nq          print the first N lines then quit ("sed 1q")
//	sed -n Np       print only line N
//	sed s/a/b/g?    substitute (first or all occurrences per line)
func Sed(ctx *shell.Context, args []string) int {
	quiet := false
	rest := args[1:]
	if len(rest) > 0 && rest[0] == "-n" {
		quiet = true
		rest = rest[1:]
	}
	if len(rest) == 0 {
		ctx.Errorf("usage: sed [-n] script [file]")
		return 1
	}
	script := rest[0]
	var in io.Reader = ctx.Stdin
	if len(rest) > 1 {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, rest[1]))
		if err != nil {
			ctx.Errorf("sed: %v", err)
			return 1
		}
		in = strings.NewReader(string(data))
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	// Nq form.
	if strings.HasSuffix(script, "q") {
		if n, err := strconv.Atoi(strings.TrimSuffix(script, "q")); err == nil {
			for i := 0; i < n && sc.Scan(); i++ {
				fmt.Fprintln(ctx.Stdout, sc.Text())
			}
			return 0
		}
	}
	// Np form.
	if strings.HasSuffix(script, "p") {
		if n, err := strconv.Atoi(strings.TrimSuffix(script, "p")); err == nil {
			ln := 0
			for sc.Scan() {
				ln++
				if ln == n || !quiet {
					fmt.Fprintln(ctx.Stdout, sc.Text())
				}
				if ln == n && quiet {
					break
				}
			}
			return 0
		}
	}
	// s/a/b/ form.
	if strings.HasPrefix(script, "s") && len(script) > 1 {
		delim := string(script[1])
		parts := strings.Split(script[2:], delim)
		if len(parts) < 2 {
			ctx.Errorf("sed: bad substitution %q", script)
			return 1
		}
		re, err := regexp.Compile(parts[0])
		if err != nil {
			ctx.Errorf("sed: %v", err)
			return 1
		}
		global := len(parts) > 2 && strings.Contains(parts[2], "g")
		for sc.Scan() {
			line := sc.Text()
			if global {
				line = re.ReplaceAllString(line, parts[1])
			} else if loc := re.FindStringIndex(line); loc != nil {
				line = line[:loc[0]] + re.ReplaceAllString(line[loc[0]:loc[1]], parts[1]) + line[loc[1]:]
			}
			fmt.Fprintln(ctx.Stdout, line)
		}
		return 0
	}
	ctx.Errorf("sed: unsupported script %q", script)
	return 1
}

// Wc counts lines, words, and bytes of files or stdin.
func Wc(ctx *shell.Context, args []string) int {
	countOne := func(name string, data []byte) {
		lines := strings.Count(string(data), "\n")
		words := len(strings.Fields(string(data)))
		if name != "" {
			fmt.Fprintf(ctx.Stdout, "%7d %7d %7d %s\n", lines, words, len(data), name)
		} else {
			fmt.Fprintf(ctx.Stdout, "%7d %7d %7d\n", lines, words, len(data))
		}
	}
	if len(args) == 1 {
		data, _ := io.ReadAll(ctx.Stdin)
		countOne("", data)
		return 0
	}
	status := 0
	for _, a := range args[1:] {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, a))
		if err != nil {
			ctx.Errorf("wc: %v", err)
			status = 1
			continue
		}
		countOne(a, data)
	}
	return status
}

// Sort sorts input lines lexically. Flag -r reverses.
func Sort(ctx *shell.Context, args []string) int {
	reverse := len(args) > 1 && args[1] == "-r"
	data, _ := io.ReadAll(ctx.Stdin)
	lines := splitLines(string(data))
	sort.Strings(lines)
	if reverse {
		for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
			lines[i], lines[j] = lines[j], lines[i]
		}
	}
	for _, l := range lines {
		fmt.Fprintln(ctx.Stdout, l)
	}
	return 0
}

// Uniq drops adjacent duplicate lines.
func Uniq(ctx *shell.Context, args []string) int {
	data, _ := io.ReadAll(ctx.Stdin)
	prev, first := "", true
	for _, l := range splitLines(string(data)) {
		if first || l != prev {
			fmt.Fprintln(ctx.Stdout, l)
		}
		prev, first = l, false
	}
	return 0
}

// Head prints the first N lines (default 10): head [-n N] [file].
func Head(ctx *shell.Context, args []string) int {
	n := 10
	rest := args[1:]
	if len(rest) >= 2 && rest[0] == "-n" {
		if v, err := strconv.Atoi(rest[1]); err == nil {
			n = v
		}
		rest = rest[2:]
	}
	var in io.Reader = ctx.Stdin
	if len(rest) > 0 {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, rest[0]))
		if err != nil {
			ctx.Errorf("head: %v", err)
			return 1
		}
		in = strings.NewReader(string(data))
	}
	sc := bufio.NewScanner(in)
	for i := 0; i < n && sc.Scan(); i++ {
		fmt.Fprintln(ctx.Stdout, sc.Text())
	}
	return 0
}

// Tail prints the last N lines (default 10): tail [-n N] [file].
func Tail(ctx *shell.Context, args []string) int {
	n := 10
	rest := args[1:]
	if len(rest) >= 2 && rest[0] == "-n" {
		if v, err := strconv.Atoi(rest[1]); err == nil {
			n = v
		}
		rest = rest[2:]
	}
	var data []byte
	if len(rest) > 0 {
		var err error
		data, err = ctx.FS.ReadFile(resolvePath(ctx, rest[0]))
		if err != nil {
			ctx.Errorf("tail: %v", err)
			return 1
		}
	} else {
		data, _ = io.ReadAll(ctx.Stdin)
	}
	lines := splitLines(string(data))
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	for _, l := range lines {
		fmt.Fprintln(ctx.Stdout, l)
	}
	return 0
}

// Touch creates files or bumps their modification stamp.
func Touch(ctx *shell.Context, args []string) int {
	status := 0
	for _, a := range args[1:] {
		p := resolvePath(ctx, a)
		data, err := ctx.FS.ReadFile(p)
		if err != nil {
			data = nil
		}
		if err := ctx.FS.WriteFile(p, data); err != nil {
			ctx.Errorf("touch: %v", err)
			status = 1
		}
	}
	return status
}

// Rm removes files.
func Rm(ctx *shell.Context, args []string) int {
	status := 0
	for _, a := range args[1:] {
		if err := ctx.FS.Remove(resolvePath(ctx, a)); err != nil {
			ctx.Errorf("rm: %v", err)
			status = 1
		}
	}
	return status
}

// Mkdir creates directories (always with parents, like mkdir -p).
func Mkdir(ctx *shell.Context, args []string) int {
	status := 0
	for _, a := range args[1:] {
		if a == "-p" {
			continue
		}
		if err := ctx.FS.MkdirAll(resolvePath(ctx, a)); err != nil {
			ctx.Errorf("mkdir: %v", err)
			status = 1
		}
	}
	return status
}

// Date prints the session date. The reproduction is deterministic: it
// prints the $date variable when set, else the date of the paper's
// recorded session, so golden screenshots are stable.
func Date(ctx *shell.Context, args []string) int {
	d := ctx.Getenv("date")
	if d == "" {
		d = "Tue Apr 16 19:30:00 EDT 1991"
	}
	fmt.Fprintln(ctx.Stdout, d)
	return 0
}

// Sleep pauses for the given number of seconds (fractions allowed),
// waking early when the command is killed. It exists so tests and users
// have a deliberately slow command that still answers Kill promptly.
func Sleep(ctx *shell.Context, args []string) int {
	if len(args) < 2 {
		ctx.Errorf("usage: sleep seconds")
		return 1
	}
	secs, err := strconv.ParseFloat(args[1], 64)
	if err != nil || secs < 0 {
		ctx.Errorf("sleep: bad interval %q", args[1])
		return 1
	}
	deadline := time.Now().Add(time.Duration(secs * float64(time.Second)))
	for time.Now().Before(deadline) {
		if ctx.Killed() {
			return 1
		}
		remain := time.Until(deadline)
		if remain > 5*time.Millisecond {
			remain = 5 * time.Millisecond
		}
		time.Sleep(remain)
	}
	return 0
}

// Fortune prints an aphorism from /lib/fortunes (first line), or a default.
func Fortune(ctx *shell.Context, args []string) int {
	if data, err := ctx.FS.ReadFile("/lib/fortunes"); err == nil {
		lines := splitLines(string(data))
		if len(lines) > 0 {
			fmt.Fprintln(ctx.Stdout, lines[0])
			return 0
		}
	}
	fmt.Fprintln(ctx.Stdout, "Simplicity is the ultimate sophistication.")
	return 0
}

// News prints /lib/news if present, the way terminals did at login.
func News(ctx *shell.Context, args []string) int {
	data, err := ctx.FS.ReadFile("/lib/news")
	if err != nil {
		return 0
	}
	ctx.Stdout.Write(data)
	return 0
}

// Cpp is the C preprocessor stage of the browser pipeline. The stripped
// compiler in this reproduction tokenizes raw source directly, so cpp is
// an identity filter that skips -D/-I style flags and cats its input file
// (or stdin), preserving the paper's pipeline shape
// "cpp $cppflags $file | help/rcc ...".
func Cpp(ctx *shell.Context, args []string) int {
	var file string
	for _, a := range args[1:] {
		if strings.HasPrefix(a, "-") {
			continue
		}
		file = a
	}
	if file == "" {
		io.Copy(ctx.Stdout, ctx.Stdin)
		return 0
	}
	data, err := ctx.FS.ReadFile(resolvePath(ctx, file))
	if err != nil {
		ctx.Errorf("cpp: %v", err)
		return 1
	}
	ctx.Stdout.Write(data)
	return 0
}

// Tee copies stdin to stdout and to each named file.
func Tee(ctx *shell.Context, args []string) int {
	data, _ := io.ReadAll(ctx.Stdin)
	ctx.Stdout.Write(data)
	status := 0
	for _, a := range args[1:] {
		if err := ctx.FS.WriteFile(resolvePath(ctx, a), data); err != nil {
			ctx.Errorf("tee: %v", err)
			status = 1
		}
	}
	return status
}

// Basename prints the final element of each path argument.
func Basename(ctx *shell.Context, args []string) int {
	for _, a := range args[1:] {
		b := a
		if i := strings.LastIndexByte(b, '/'); i >= 0 {
			b = b[i+1:]
		}
		fmt.Fprintln(ctx.Stdout, b)
	}
	return 0
}

// splitLines splits on newlines, dropping a trailing empty field.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
