// Package userland provides the Unix-flavored utilities the help paper's
// session depends on — cat, grep, cp, sed, ls, wc and friends — implemented
// as shell builtins over the vfs namespace, plus the mk build tool used in
// Figure 12 ("execute mk in /help/cbr to compile the program").
//
// The utilities implement the subsets the paper exercises rather than full
// POSIX behaviour; each doc comment states the supported flags. grep in
// particular matters to the evaluation: Table T3 compares the C browser's
// uses command against "the regular Unix command grep n /usr/rob/src/help/*.c",
// which reports "every occurrence of the letter n in the program".
package userland

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/shell"
	"repro/internal/vfs"
)

// Install registers every utility in sh.
func Install(sh *shell.Shell) {
	sh.Register("cat", Cat)
	sh.Register("cp", Cp)
	sh.Register("grep", Grep)
	sh.Register("ls", Ls)
	sh.Register("lc", Ls) // Plan 9's columnated ls; same output here
	sh.Register("sed", Sed)
	sh.Register("wc", Wc)
	sh.Register("sort", Sort)
	sh.Register("uniq", Uniq)
	sh.Register("head", Head)
	sh.Register("tail", Tail)
	sh.Register("touch", Touch)
	sh.Register("rm", Rm)
	sh.Register("mkdir", Mkdir)
	sh.Register("date", Date)
	sh.Register("sleep", Sleep)
	sh.Register("mk", Mk)
	sh.Register("mktouched", MkTouched)
	sh.Register("fortune", Fortune)
	sh.Register("news", News)
	sh.Register("cpp", Cpp)
	sh.Register("tee", Tee)
	sh.Register("basename", Basename)
}

// resolvePath makes a command argument absolute against the context dir.
func resolvePath(ctx *shell.Context, p string) string {
	if strings.HasPrefix(p, "/") {
		return vfs.Clean(p)
	}
	return vfs.Clean(ctx.Dir + "/" + p)
}

// Cat concatenates files (or standard input with no arguments).
func Cat(ctx *shell.Context, args []string) int {
	if len(args) == 1 {
		io.Copy(ctx.Stdout, ctx.Stdin)
		return 0
	}
	status := 0
	for _, a := range args[1:] {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, a))
		if err != nil {
			ctx.Errorf("cat: %v", err)
			status = 1
			continue
		}
		ctx.Stdout.Write(data)
	}
	return status
}

// Cp copies one file to another: cp from to.
func Cp(ctx *shell.Context, args []string) int {
	if len(args) != 3 {
		ctx.Errorf("usage: cp from to")
		return 1
	}
	data, err := ctx.FS.ReadFile(resolvePath(ctx, args[1]))
	if err != nil {
		ctx.Errorf("cp: %v", err)
		return 1
	}
	dst := resolvePath(ctx, args[2])
	if ctx.FS.IsDir(dst) {
		base := args[1]
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		dst = vfs.Clean(dst + "/" + base)
	}
	if err := ctx.FS.WriteFile(dst, data); err != nil {
		ctx.Errorf("cp: %v", err)
		return 1
	}
	return 0
}

// Grep searches files (or stdin) for a regular expression. Supported
// flags: -n (line numbers), -i (case fold), -l (names only), -c (count),
// -v (invert). With more than one file, or with -n, matches are prefixed
// with the file name — the behaviour the uses-vs-grep comparison needs.
func Grep(ctx *shell.Context, args []string) int {
	var numbers, fold, namesOnly, count, invert bool
	rest := args[1:]
	for len(rest) > 0 && strings.HasPrefix(rest[0], "-") && len(rest[0]) > 1 {
		for _, f := range rest[0][1:] {
			switch f {
			case 'n':
				numbers = true
			case 'i':
				fold = true
			case 'l':
				namesOnly = true
			case 'c':
				count = true
			case 'v':
				invert = true
			default:
				ctx.Errorf("grep: unknown flag -%c", f)
				return 2
			}
		}
		rest = rest[1:]
	}
	if len(rest) == 0 {
		ctx.Errorf("usage: grep [-nilcv] pattern [file ...]")
		return 2
	}
	pat := rest[0]
	if fold {
		pat = "(?i)" + pat
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		ctx.Errorf("grep: %v", err)
		return 2
	}
	files := rest[1:]
	matched := false
	scan := func(name string, r io.Reader, showName bool) {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		ln := 0
		n := 0
		for sc.Scan() {
			ln++
			hit := re.MatchString(sc.Text())
			if hit == invert {
				continue
			}
			matched = true
			n++
			if namesOnly {
				fmt.Fprintln(ctx.Stdout, name)
				return
			}
			if count {
				continue
			}
			prefix := ""
			if showName {
				prefix = name + ":"
			}
			if numbers {
				prefix += strconv.Itoa(ln) + ":"
			}
			fmt.Fprintln(ctx.Stdout, prefix+sc.Text())
		}
		if count {
			prefix := ""
			if showName {
				prefix = name + ":"
			}
			fmt.Fprintln(ctx.Stdout, prefix+strconv.Itoa(n))
		}
	}
	if len(files) == 0 {
		scan("<stdin>", ctx.Stdin, false)
	} else {
		showName := len(files) > 1 || numbers
		for _, f := range files {
			data, err := ctx.FS.ReadFile(resolvePath(ctx, f))
			if err != nil {
				ctx.Errorf("grep: %v", err)
				continue
			}
			scan(f, strings.NewReader(string(data)), showName)
		}
	}
	if matched {
		return 0
	}
	return 1
}

// Ls lists a directory (or the context directory), one entry per line with
// directories slash-suffixed, matching help's directory-window rendering.
func Ls(ctx *shell.Context, args []string) int {
	dirs := args[1:]
	if len(dirs) == 0 {
		dirs = []string{ctx.Dir}
	}
	status := 0
	for _, d := range dirs {
		p := resolvePath(ctx, d)
		if !ctx.FS.IsDir(p) {
			if ctx.FS.Exists(p) {
				fmt.Fprintln(ctx.Stdout, d)
				continue
			}
			ctx.Errorf("ls: %s: does not exist", d)
			status = 1
			continue
		}
		ents, err := ctx.FS.ReadDir(p)
		if err != nil {
			ctx.Errorf("ls: %v", err)
			status = 1
			continue
		}
		for _, e := range ents {
			suffix := ""
			if e.IsDir {
				suffix = "/"
			}
			fmt.Fprintln(ctx.Stdout, e.Name+suffix)
		}
	}
	return status
}

// Sed implements the subset the paper's scripts use:
//
//	sed Nq          print the first N lines then quit ("sed 1q")
//	sed -n Np       print only line N
//	sed s/a/b/g?    substitute (first or all occurrences per line)
func Sed(ctx *shell.Context, args []string) int {
	quiet := false
	rest := args[1:]
	if len(rest) > 0 && rest[0] == "-n" {
		quiet = true
		rest = rest[1:]
	}
	if len(rest) == 0 {
		ctx.Errorf("usage: sed [-n] script [file]")
		return 1
	}
	script := rest[0]
	var in io.Reader = ctx.Stdin
	if len(rest) > 1 {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, rest[1]))
		if err != nil {
			ctx.Errorf("sed: %v", err)
			return 1
		}
		in = strings.NewReader(string(data))
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	// Nq form.
	if strings.HasSuffix(script, "q") {
		if n, err := strconv.Atoi(strings.TrimSuffix(script, "q")); err == nil {
			for i := 0; i < n && sc.Scan(); i++ {
				fmt.Fprintln(ctx.Stdout, sc.Text())
			}
			return 0
		}
	}
	// Np form.
	if strings.HasSuffix(script, "p") {
		if n, err := strconv.Atoi(strings.TrimSuffix(script, "p")); err == nil {
			ln := 0
			for sc.Scan() {
				ln++
				if ln == n || !quiet {
					fmt.Fprintln(ctx.Stdout, sc.Text())
				}
				if ln == n && quiet {
					break
				}
			}
			return 0
		}
	}
	// s/a/b/ form.
	if strings.HasPrefix(script, "s") && len(script) > 1 {
		delim := string(script[1])
		parts := strings.Split(script[2:], delim)
		if len(parts) < 2 {
			ctx.Errorf("sed: bad substitution %q", script)
			return 1
		}
		re, err := regexp.Compile(parts[0])
		if err != nil {
			ctx.Errorf("sed: %v", err)
			return 1
		}
		global := len(parts) > 2 && strings.Contains(parts[2], "g")
		for sc.Scan() {
			line := sc.Text()
			if global {
				line = re.ReplaceAllString(line, parts[1])
			} else if loc := re.FindStringIndex(line); loc != nil {
				line = line[:loc[0]] + re.ReplaceAllString(line[loc[0]:loc[1]], parts[1]) + line[loc[1]:]
			}
			fmt.Fprintln(ctx.Stdout, line)
		}
		return 0
	}
	ctx.Errorf("sed: unsupported script %q", script)
	return 1
}

// Wc counts lines, words, and bytes of files or stdin.
func Wc(ctx *shell.Context, args []string) int {
	countOne := func(name string, data []byte) {
		lines := strings.Count(string(data), "\n")
		words := len(strings.Fields(string(data)))
		if name != "" {
			fmt.Fprintf(ctx.Stdout, "%7d %7d %7d %s\n", lines, words, len(data), name)
		} else {
			fmt.Fprintf(ctx.Stdout, "%7d %7d %7d\n", lines, words, len(data))
		}
	}
	if len(args) == 1 {
		data, _ := io.ReadAll(ctx.Stdin)
		countOne("", data)
		return 0
	}
	status := 0
	for _, a := range args[1:] {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, a))
		if err != nil {
			ctx.Errorf("wc: %v", err)
			status = 1
			continue
		}
		countOne(a, data)
	}
	return status
}

// Sort sorts input lines lexically. Flag -r reverses.
func Sort(ctx *shell.Context, args []string) int {
	reverse := len(args) > 1 && args[1] == "-r"
	data, _ := io.ReadAll(ctx.Stdin)
	lines := splitLines(string(data))
	sort.Strings(lines)
	if reverse {
		for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
			lines[i], lines[j] = lines[j], lines[i]
		}
	}
	for _, l := range lines {
		fmt.Fprintln(ctx.Stdout, l)
	}
	return 0
}

// Uniq drops adjacent duplicate lines.
func Uniq(ctx *shell.Context, args []string) int {
	data, _ := io.ReadAll(ctx.Stdin)
	prev, first := "", true
	for _, l := range splitLines(string(data)) {
		if first || l != prev {
			fmt.Fprintln(ctx.Stdout, l)
		}
		prev, first = l, false
	}
	return 0
}

// Head prints the first N lines (default 10): head [-n N] [file].
func Head(ctx *shell.Context, args []string) int {
	n := 10
	rest := args[1:]
	if len(rest) >= 2 && rest[0] == "-n" {
		if v, err := strconv.Atoi(rest[1]); err == nil {
			n = v
		}
		rest = rest[2:]
	}
	var in io.Reader = ctx.Stdin
	if len(rest) > 0 {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, rest[0]))
		if err != nil {
			ctx.Errorf("head: %v", err)
			return 1
		}
		in = strings.NewReader(string(data))
	}
	sc := bufio.NewScanner(in)
	for i := 0; i < n && sc.Scan(); i++ {
		fmt.Fprintln(ctx.Stdout, sc.Text())
	}
	return 0
}

// Tail prints the last N lines (default 10): tail [-n N] [file].
func Tail(ctx *shell.Context, args []string) int {
	n := 10
	rest := args[1:]
	if len(rest) >= 2 && rest[0] == "-n" {
		if v, err := strconv.Atoi(rest[1]); err == nil {
			n = v
		}
		rest = rest[2:]
	}
	var data []byte
	if len(rest) > 0 {
		var err error
		data, err = ctx.FS.ReadFile(resolvePath(ctx, rest[0]))
		if err != nil {
			ctx.Errorf("tail: %v", err)
			return 1
		}
	} else {
		data, _ = io.ReadAll(ctx.Stdin)
	}
	lines := splitLines(string(data))
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	for _, l := range lines {
		fmt.Fprintln(ctx.Stdout, l)
	}
	return 0
}

// Touch creates files or bumps their modification stamp.
func Touch(ctx *shell.Context, args []string) int {
	status := 0
	for _, a := range args[1:] {
		p := resolvePath(ctx, a)
		data, err := ctx.FS.ReadFile(p)
		if err != nil {
			data = nil
		}
		if err := ctx.FS.WriteFile(p, data); err != nil {
			ctx.Errorf("touch: %v", err)
			status = 1
		}
	}
	return status
}

// Rm removes files.
func Rm(ctx *shell.Context, args []string) int {
	status := 0
	for _, a := range args[1:] {
		if err := ctx.FS.Remove(resolvePath(ctx, a)); err != nil {
			ctx.Errorf("rm: %v", err)
			status = 1
		}
	}
	return status
}

// Mkdir creates directories (always with parents, like mkdir -p).
func Mkdir(ctx *shell.Context, args []string) int {
	status := 0
	for _, a := range args[1:] {
		if a == "-p" {
			continue
		}
		if err := ctx.FS.MkdirAll(resolvePath(ctx, a)); err != nil {
			ctx.Errorf("mkdir: %v", err)
			status = 1
		}
	}
	return status
}

// Date prints the session date. The reproduction is deterministic: it
// prints the $date variable when set, else the date of the paper's
// recorded session, so golden screenshots are stable.
func Date(ctx *shell.Context, args []string) int {
	d := ctx.Getenv("date")
	if d == "" {
		d = "Tue Apr 16 19:30:00 EDT 1991"
	}
	fmt.Fprintln(ctx.Stdout, d)
	return 0
}

// Sleep pauses for the given number of seconds (fractions allowed),
// waking early when the command is killed. It exists so tests and users
// have a deliberately slow command that still answers Kill promptly.
func Sleep(ctx *shell.Context, args []string) int {
	if len(args) < 2 {
		ctx.Errorf("usage: sleep seconds")
		return 1
	}
	secs, err := strconv.ParseFloat(args[1], 64)
	if err != nil || secs < 0 {
		ctx.Errorf("sleep: bad interval %q", args[1])
		return 1
	}
	deadline := time.Now().Add(time.Duration(secs * float64(time.Second)))
	for time.Now().Before(deadline) {
		if ctx.Killed() {
			return 1
		}
		remain := time.Until(deadline)
		if remain > 5*time.Millisecond {
			remain = 5 * time.Millisecond
		}
		time.Sleep(remain)
	}
	return 0
}

// Fortune prints an aphorism from /lib/fortunes (first line), or a default.
func Fortune(ctx *shell.Context, args []string) int {
	if data, err := ctx.FS.ReadFile("/lib/fortunes"); err == nil {
		lines := splitLines(string(data))
		if len(lines) > 0 {
			fmt.Fprintln(ctx.Stdout, lines[0])
			return 0
		}
	}
	fmt.Fprintln(ctx.Stdout, "Simplicity is the ultimate sophistication.")
	return 0
}

// News prints /lib/news if present, the way terminals did at login.
func News(ctx *shell.Context, args []string) int {
	data, err := ctx.FS.ReadFile("/lib/news")
	if err != nil {
		return 0
	}
	ctx.Stdout.Write(data)
	return 0
}

// Cpp is the C preprocessor stage of the browser pipeline. The stripped
// compiler in this reproduction tokenizes raw source directly, so cpp is
// an identity filter that skips -D/-I style flags and cats its input file
// (or stdin), preserving the paper's pipeline shape
// "cpp $cppflags $file | help/rcc ...".
func Cpp(ctx *shell.Context, args []string) int {
	var file string
	for _, a := range args[1:] {
		if strings.HasPrefix(a, "-") {
			continue
		}
		file = a
	}
	if file == "" {
		io.Copy(ctx.Stdout, ctx.Stdin)
		return 0
	}
	data, err := ctx.FS.ReadFile(resolvePath(ctx, file))
	if err != nil {
		ctx.Errorf("cpp: %v", err)
		return 1
	}
	ctx.Stdout.Write(data)
	return 0
}

// Tee copies stdin to stdout and to each named file.
func Tee(ctx *shell.Context, args []string) int {
	data, _ := io.ReadAll(ctx.Stdin)
	ctx.Stdout.Write(data)
	status := 0
	for _, a := range args[1:] {
		if err := ctx.FS.WriteFile(resolvePath(ctx, a), data); err != nil {
			ctx.Errorf("tee: %v", err)
			status = 1
		}
	}
	return status
}

// Basename prints the final element of each path argument.
func Basename(ctx *shell.Context, args []string) int {
	for _, a := range args[1:] {
		b := a
		if i := strings.LastIndexByte(b, '/'); i >= 0 {
			b = b[i+1:]
		}
		fmt.Fprintln(ctx.Stdout, b)
	}
	return 0
}

// splitLines splits on newlines, dropping a trailing empty field.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
