package userland

import (
	"bytes"
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"repro/internal/shell"
	"repro/internal/vfs"
)

// grepRef is a trivially-correct sequential grep used as the oracle for
// the parallel chunked scanner.
func grepRef(o *grepOpts, name string, data []byte, showName bool) (string, bool) {
	var out bytes.Buffer
	hit := grepScanAll(o, name, data, showName, &out)
	return out.String(), hit
}

// bigGrepBody builds a body comfortably above grepParallelMin whose lines
// exercise the chunk machinery: ordinary lines, matches placed at random,
// a handful of giant lines that span several chunks, \r\n endings, and no
// trailing newline at EOF.
func bigGrepBody(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var b bytes.Buffer
	b.Grow(grepParallelMin + 2*grepChunk)
	i := 0
	for b.Len() < grepParallelMin+grepChunk {
		switch rng.Intn(20) {
		case 0:
			fmt.Fprintf(&b, "needle line %d\n", i)
		case 1:
			fmt.Fprintf(&b, "crlf needle %d\r\n", i)
		case 2:
			// A line longer than a chunk, sometimes matching.
			tag := "hay"
			if rng.Intn(2) == 0 {
				tag = "needle"
			}
			b.WriteString(tag)
			b.Write(bytes.Repeat([]byte{'x'}, grepChunk+grepChunk/2))
			b.WriteByte('\n')
		default:
			fmt.Fprintf(&b, "line %d of plain hay without the word\n", i)
		}
		i++
	}
	b.WriteString("needle at EOF with no newline")
	return b.Bytes()
}

func grepEnv(t testing.TB, body []byte) (*shell.Shell, *shell.Context, *bytes.Buffer) {
	fs := vfs.New()
	fs.MkdirAll("/tmp")
	fs.WriteFile("/tmp/big", body)
	fs.WriteFile("/tmp/small", []byte("one needle\ntwo hay\n"))
	sh := shell.New(fs)
	Install(sh)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	return sh, ctx, &out
}

// TestGrepChunkedMatchesSequential runs every flag combination that
// changes the output shape over a multi-chunk file and compares the
// parallel scan against the in-memory oracle.
func TestGrepChunkedMatchesSequential(t *testing.T) {
	body := bigGrepBody(t)
	for _, flags := range []string{"", "-n", "-c", "-l", "-vc", "-nv"} {
		sh, ctx, out := grepEnv(t, body)
		cmd := "grep " + flags + " needle /tmp/big"
		status := sh.Run(ctx, cmd)

		o := &grepOpts{
			numbers:   strings.Contains(flags, "n"),
			namesOnly: strings.Contains(flags, "l"),
			count:     strings.Contains(flags, "c"),
			invert:    strings.Contains(flags, "v"),
		}
		o.re = mustRe(t, "needle")
		want, hit := grepRef(o, "/tmp/big", body, o.numbers)
		wantStatus := 1
		if hit {
			wantStatus = 0
		}
		if status != wantStatus {
			t.Errorf("%s: status = %d, want %d", cmd, status, wantStatus)
		}
		if got := out.String(); got != want {
			t.Errorf("%s: output diverges from sequential oracle (%d vs %d bytes)",
				cmd, len(got), len(want))
			gl := strings.SplitAfter(got, "\n")
			wl := strings.SplitAfter(want, "\n")
			for i := 0; i < len(gl) && i < len(wl); i++ {
				if gl[i] != wl[i] {
					t.Fatalf("first divergence at output line %d:\n got %q\nwant %q", i+1, trunc(gl[i]), trunc(wl[i]))
				}
			}
		}
	}
}

func trunc(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}

func mustRe(t testing.TB, pat string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(pat)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

// TestGrepMixedSizesOrdered greps a big and a small file together and
// checks the output keeps argument order with name prefixes.
func TestGrepMixedSizesOrdered(t *testing.T) {
	body := bigGrepBody(t)
	sh, ctx, out := grepEnv(t, body)
	status := sh.Run(ctx, "grep -c needle /tmp/big /tmp/small /tmp/missing")
	if status != 0 {
		t.Errorf("status = %d", status)
	}
	s := out.String()
	bigAt := strings.Index(s, "/tmp/big:")
	smallAt := strings.Index(s, "/tmp/small:1")
	errAt := strings.Index(s, "grep:")
	if bigAt < 0 || smallAt < 0 || errAt < 0 {
		t.Fatalf("missing pieces in output:\n%s", trunc(s))
	}
	if !(bigAt < smallAt) {
		t.Errorf("big/small out of order:\n%s", trunc(s))
	}
}
