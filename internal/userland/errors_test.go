package userland

import (
	"strings"
	"testing"
)

// Error-path and edge-case coverage for the utilities: wrong usage, bad
// arguments, missing files — each must fail with a diagnostic, not crash.

func TestCpErrors(t *testing.T) {
	_, sh, ctx, out := env(t)
	if status := sh.Run(ctx, "cp onlyone"); status == 0 {
		t.Error("cp with one arg should fail")
	}
	out.Reset()
	if status := sh.Run(ctx, "cp /tmp/ghost /tmp/dst"); status == 0 ||
		!strings.Contains(out.String(), "cp:") {
		t.Errorf("cp of missing file: %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "echo x > /tmp/a; cp /tmp/a /no/such/dir/b"); status == 0 {
		t.Errorf("cp into missing dir should fail: %q", out.String())
	}
}

func TestLsErrors(t *testing.T) {
	fs, sh, ctx, out := env(t)
	if status := sh.Run(ctx, "ls /ghost"); status == 0 ||
		!strings.Contains(out.String(), "does not exist") {
		t.Errorf("ls missing dir: %q", out.String())
	}
	// ls of a plain file prints the name.
	fs.WriteFile("/tmp/f", nil)
	out.Reset()
	sh.Run(ctx, "ls /tmp/f")
	if out.String() != "/tmp/f\n" {
		t.Errorf("ls file: %q", out.String())
	}
}

func TestWcStdinAndMissing(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "echo one two | wc")
	fields := strings.Fields(out.String())
	if len(fields) != 3 || fields[0] != "1" || fields[1] != "2" {
		t.Errorf("wc stdin: %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "wc /ghost"); status == 0 {
		t.Errorf("wc of missing file should fail: %q", out.String())
	}
}

func TestHeadTailDefaultsAndFiles(t *testing.T) {
	fs, sh, ctx, out := env(t)
	var b strings.Builder
	for i := 0; i < 15; i++ {
		b.WriteString("line\n")
	}
	fs.WriteFile("/tmp/f", []byte(b.String()))
	sh.Run(ctx, "head /tmp/f")
	if strings.Count(out.String(), "line\n") != 10 {
		t.Errorf("head default: %d lines", strings.Count(out.String(), "line\n"))
	}
	out.Reset()
	sh.Run(ctx, "tail /tmp/f")
	if strings.Count(out.String(), "line\n") != 10 {
		t.Errorf("tail default: %d lines", strings.Count(out.String(), "line\n"))
	}
	out.Reset()
	if status := sh.Run(ctx, "head /ghost"); status == 0 {
		t.Error("head of missing file should fail")
	}
	if status := sh.Run(ctx, "tail /ghost"); status == 0 {
		t.Error("tail of missing file should fail")
	}
}

func TestRmMkdirErrors(t *testing.T) {
	fs, sh, ctx, out := env(t)
	if status := sh.Run(ctx, "rm /ghost"); status == 0 ||
		!strings.Contains(out.String(), "rm:") {
		t.Errorf("rm missing: %q", out.String())
	}
	// mkdir -p flag is accepted and ignored.
	out.Reset()
	if status := sh.Run(ctx, "mkdir -p /deep/tree"); status != 0 {
		t.Errorf("mkdir -p failed: %q", out.String())
	}
	if !fs.IsDir("/deep/tree") {
		t.Error("mkdir did not create")
	}
	// mkdir over an existing file fails.
	fs.WriteFile("/tmp/file", nil)
	out.Reset()
	if status := sh.Run(ctx, "mkdir /tmp/file/sub"); status == 0 {
		t.Errorf("mkdir through a file should fail: %q", out.String())
	}
}

func TestSedUnsupportedAndErrors(t *testing.T) {
	_, sh, ctx, out := env(t)
	if status := sh.Run(ctx, "echo x | sed y/z/"); status == 0 {
		t.Errorf("unsupported sed script should fail: %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "echo x | sed s/a"); status == 0 {
		t.Errorf("bad substitution should fail: %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "sed 1q /ghost"); status == 0 {
		t.Errorf("sed on missing file should fail: %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "sed"); status == 0 {
		t.Error("sed with no script should fail")
	}
	// Invalid regexp in s///.
	out.Reset()
	if status := sh.Run(ctx, "echo x | sed 's/[/y/'"); status == 0 {
		t.Errorf("bad regexp should fail: %q", out.String())
	}
}

func TestGrepBadFlagAndPattern(t *testing.T) {
	_, sh, ctx, out := env(t)
	if status := sh.Run(ctx, "grep -z pat"); status != 2 {
		t.Errorf("bad flag status: %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "echo x | grep '['"); status != 2 {
		t.Errorf("bad pattern status: %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "grep"); status != 2 {
		t.Error("grep with no pattern should fail with usage")
	}
}

func TestFortuneDefault(t *testing.T) {
	_, sh, ctx, out := env(t)
	// No /lib/fortunes: the built-in aphorism prints.
	sh.Run(ctx, "fortune")
	if !strings.Contains(out.String(), "Simplicity") {
		t.Errorf("fortune default: %q", out.String())
	}
	// An empty fortunes file also falls back.
	fs := ctx.FS
	fs.MkdirAll("/lib")
	fs.WriteFile("/lib/fortunes", nil)
	out.Reset()
	sh.Run(ctx, "fortune")
	if strings.TrimSpace(out.String()) == "" {
		t.Error("fortune printed nothing")
	}
}

func TestCppStdinAndMissing(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "echo src | cpp -DX")
	if out.String() != "src\n" {
		t.Errorf("cpp stdin: %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "cpp /ghost.c"); status == 0 {
		t.Error("cpp of missing file should fail")
	}
}

func TestTeeErrors(t *testing.T) {
	_, sh, ctx, out := env(t)
	if status := sh.Run(ctx, "echo x | tee /no/dir/f"); status == 0 {
		t.Errorf("tee into missing dir should fail: %q", out.String())
	}
}

func TestTouchError(t *testing.T) {
	_, sh, ctx, out := env(t)
	if status := sh.Run(ctx, "touch /no/dir/f"); status == 0 {
		t.Errorf("touch into missing dir should fail: %q", out.String())
	}
}

func TestMkfileTargetsAndExpand(t *testing.T) {
	mf, err := ParseMkfile("V=x\nall: $V.o\n\techo $V and $$ and $1notvar\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := mf.Targets(); len(got) != 1 || got[0] != "all" {
		t.Errorf("Targets = %v", got)
	}
	if mf.Rules[0].Prereqs[0] != "x.o" {
		t.Errorf("prereq = %v", mf.Rules[0].Prereqs)
	}
	// Recipe expansion happens at run time: check directly.
	if got := mf.expand("echo $V and $$ tail"); got != "echo x and $$ tail" {
		t.Errorf("expand = %q", got)
	}
	// Unset variables expand to nothing.
	if got := mf.expand("$unset!"); got != "!" {
		t.Errorf("unset expand = %q", got)
	}
}

func TestMkMissingMkfile(t *testing.T) {
	_, sh, ctx, out := env(t)
	ctx.Dir = "/tmp"
	if status := sh.Run(ctx, "mk"); status == 0 {
		t.Errorf("mk without mkfile should fail: %q", out.String())
	}
}

func TestMkRecipeFailureStops(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/p")
	fs.WriteFile("/p/src", []byte("s"))
	fs.WriteFile("/p/mkfile", []byte("out: src\n\tcp /ghost out\n\techo never\n"))
	ctx.Dir = "/p"
	if status := sh.Run(ctx, "mk"); status == 0 {
		t.Errorf("failing recipe should fail mk: %q", out.String())
	}
	if strings.Contains(out.String(), "never") {
		t.Error("recipe continued after failure")
	}
}

func TestMkTouchedUsage(t *testing.T) {
	_, sh, ctx, out := env(t)
	if status := sh.Run(ctx, "mktouched"); status == 0 {
		t.Error("mktouched with no args should fail")
	}
	out.Reset()
	fs := ctx.FS
	fs.MkdirAll("/p")
	fs.WriteFile("/p/mkfile", []byte("a: b\n\techo x\n"))
	ctx.Dir = "/p"
	if status := sh.Run(ctx, "mktouched notanumber"); status == 0 {
		t.Errorf("bad timestamp should fail: %q", out.String())
	}
}

func TestSplitLinesEdges(t *testing.T) {
	if got := splitLines(""); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := splitLines("\n"); len(got) != 1 || got[0] != "" {
		t.Errorf("lone newline = %v", got)
	}
	if got := splitLines("a\nb"); len(got) != 2 {
		t.Errorf("no trailing newline = %v", got)
	}
}
