package userland

import (
	"fmt"
	"strings"

	"repro/internal/shell"
	"repro/internal/vfs"
)

// Mkfile is a parsed build description: Plan 9 mk syntax restricted to
// what the paper's session needs — plain rules with colon-separated
// targets and prerequisites, tab-indented recipe lines, `var=value`
// definitions and `$var` references.
type Mkfile struct {
	Rules []*Rule
	Vars  map[string]string
}

// Rule is one build rule.
type Rule struct {
	Targets []string
	Prereqs []string
	Recipe  []string
}

// ParseMkfile parses mkfile text.
func ParseMkfile(src string) (*Mkfile, error) {
	mf := &Mkfile{Vars: map[string]string{}}
	var cur *Rule
	for ln, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, "\t") {
			if cur == nil {
				return nil, fmt.Errorf("mkfile:%d: recipe outside rule", ln+1)
			}
			cur.Recipe = append(cur.Recipe, strings.TrimPrefix(line, "\t"))
			continue
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			cur = nil
			continue
		}
		if i := strings.Index(trimmed, "="); i > 0 && !strings.Contains(trimmed[:i], ":") && !strings.ContainsAny(trimmed[:i], " \t") {
			mf.Vars[trimmed[:i]] = strings.TrimSpace(trimmed[i+1:])
			cur = nil
			continue
		}
		i := strings.Index(trimmed, ":")
		if i < 0 {
			return nil, fmt.Errorf("mkfile:%d: expected rule or assignment", ln+1)
		}
		r := &Rule{
			Targets: strings.Fields(mf.expand(trimmed[:i])),
			Prereqs: strings.Fields(mf.expand(trimmed[i+1:])),
		}
		if len(r.Targets) == 0 {
			return nil, fmt.Errorf("mkfile:%d: rule without target", ln+1)
		}
		mf.Rules = append(mf.Rules, r)
		cur = r
	}
	return mf, nil
}

// expand substitutes $var references using the mkfile's variables.
func (mf *Mkfile) expand(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '$' {
			b.WriteByte(s[i])
			continue
		}
		j := i + 1
		for j < len(s) && (isIdent(s[j])) {
			j++
		}
		if j == i+1 {
			b.WriteByte('$')
			continue
		}
		name := s[i+1 : j]
		b.WriteString(mf.Vars[name])
		i = j - 1
	}
	return b.String()
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// ruleFor finds the rule producing target, nil if none.
func (mf *Mkfile) ruleFor(target string) *Rule {
	for _, r := range mf.Rules {
		for _, t := range r.Targets {
			if t == target {
				return r
			}
		}
	}
	return nil
}

// Targets returns every target defined in the mkfile, in rule order.
func (mf *Mkfile) Targets() []string {
	var out []string
	for _, r := range mf.Rules {
		out = append(out, r.Targets...)
	}
	return out
}

// mtimeOf returns the logical mtime of path, or -1 if it does not exist.
func mtimeOf(ctx *shell.Context, p string) int64 {
	info, err := ctx.FS.Stat(resolvePath(ctx, p))
	if err != nil {
		return -1
	}
	return info.ModTime
}

// build brings target up to date, returning (rebuilt, status).
func (mf *Mkfile) build(ctx *shell.Context, target string, visiting map[string]bool) (bool, int) {
	if visiting[target] {
		ctx.Errorf("mk: dependency cycle through %s", target)
		return false, 1
	}
	visiting[target] = true
	defer delete(visiting, target)

	r := mf.ruleFor(target)
	if r == nil {
		if mtimeOf(ctx, target) < 0 {
			ctx.Errorf("mk: don't know how to make %s", target)
			return false, 1
		}
		return false, 0 // leaf source file
	}
	prereqRebuilt := false
	for _, p := range r.Prereqs {
		rb, status := mf.build(ctx, p, visiting)
		if status != 0 {
			return false, status
		}
		prereqRebuilt = prereqRebuilt || rb
	}
	tm := mtimeOf(ctx, target)
	stale := tm < 0 || prereqRebuilt
	for _, p := range r.Prereqs {
		if mtimeOf(ctx, p) > tm {
			stale = true
		}
	}
	if !stale {
		return false, 0
	}
	for _, line := range r.Recipe {
		line = mf.expand(line)
		fmt.Fprintln(ctx.Stdout, line)
		if status := ctx.Sh.Run(ctx, line); status != 0 {
			ctx.Errorf("mk: recipe for %s failed", target)
			return false, status
		}
	}
	// Recipes whose commands are pure echoes (as in the demo mkfile)
	// may not touch the target; stamp it so the build converges.
	if mtimeOf(ctx, target) <= tm {
		data, err := ctx.FS.ReadFile(resolvePath(ctx, target))
		if err != nil {
			data = nil
		}
		ctx.FS.WriteFile(resolvePath(ctx, target), data)
	}
	return true, 0
}

// loadMkfile reads and parses the mkfile in the context directory (or the
// file named by -f).
func loadMkfile(ctx *shell.Context, args []string) (*Mkfile, []string, int) {
	file := "mkfile"
	rest := args[1:]
	var targets []string
	for i := 0; i < len(rest); i++ {
		if rest[i] == "-f" && i+1 < len(rest) {
			file = rest[i+1]
			i++
			continue
		}
		targets = append(targets, rest[i])
	}
	path := resolvePath(ctx, file)
	if !ctx.FS.Exists(path) {
		// The paper's source directory calls its build file "mk"; accept
		// that spelling when no mkfile exists.
		alt := resolvePath(ctx, "mk")
		if ctx.FS.Exists(alt) {
			path = alt
		}
	}
	src, err := ctx.FS.ReadFile(path)
	if err != nil {
		ctx.Errorf("mk: %v", err)
		return nil, nil, 1
	}
	mf, err := ParseMkfile(string(src))
	if err != nil {
		ctx.Errorf("mk: %v", err)
		return nil, nil, 1
	}
	return mf, targets, 0
}

// Mk is the build tool: mk [-f mkfile] [target ...]. With no target it
// builds the first rule's first target.
func Mk(ctx *shell.Context, args []string) int {
	mf, targets, status := loadMkfile(ctx, args)
	if status != 0 {
		return status
	}
	if len(targets) == 0 {
		if len(mf.Rules) == 0 {
			return 0
		}
		targets = mf.Rules[0].Targets[:1]
	}
	for _, t := range targets {
		rebuilt, status := mf.build(ctx, t, map[string]bool{})
		if status != 0 {
			return status
		}
		if !rebuilt {
			fmt.Fprintf(ctx.Stdout, "mk: '%s' is up to date\n", t)
		}
	}
	return 0
}

// MkTouched is the paper's proposed inversion of make ("a tool that ...
// sees what source files have been modified and builds the targets that
// depend on them"): given a logical timestamp, it finds every source
// modified since then and rebuilds exactly the targets that transitively
// depend on one.
//
// Usage: mktouched [-f mkfile] since
func MkTouched(ctx *shell.Context, args []string) int {
	if len(args) < 2 {
		ctx.Errorf("usage: mktouched [-f mkfile] since")
		return 1
	}
	since := args[len(args)-1]
	mf, _, status := loadMkfile(ctx, args[:len(args)-1])
	if status != 0 {
		return status
	}
	var sinceT int64
	if _, err := fmt.Sscanf(since, "%d", &sinceT); err != nil {
		ctx.Errorf("mktouched: bad timestamp %q", since)
		return 1
	}
	targets := TouchedTargets(ctx, mf, sinceT)
	if len(targets) == 0 {
		fmt.Fprintln(ctx.Stdout, "mktouched: nothing modified")
		return 0
	}
	for _, t := range targets {
		fmt.Fprintf(ctx.Stdout, "mktouched: rebuilding %s\n", t)
		if _, status := mf.build(ctx, t, map[string]bool{}); status != 0 {
			return status
		}
	}
	return 0
}

// TouchedTargets computes which targets transitively depend on any file
// modified after since, in rule order.
func TouchedTargets(ctx *shell.Context, mf *Mkfile, since int64) []string {
	touched := func(p string) bool {
		info, err := ctx.FS.Stat(vfs.Clean(resolvePath(ctx, p)))
		return err == nil && info.ModTime > since
	}
	// dependsOnTouched memoizes whether a node's transitive inputs are
	// touched.
	memo := map[string]int{} // 0 unknown, 1 yes, 2 no
	var visit func(string, map[string]bool) bool
	visit = func(node string, path map[string]bool) bool {
		if v, ok := memo[node]; ok {
			return v == 1
		}
		if path[node] {
			return false
		}
		path[node] = true
		defer delete(path, node)
		r := mf.ruleFor(node)
		if r == nil {
			res := touched(node)
			if res {
				memo[node] = 1
			} else {
				memo[node] = 2
			}
			return res
		}
		for _, p := range r.Prereqs {
			if visit(p, path) {
				memo[node] = 1
				return true
			}
		}
		memo[node] = 2
		return false
	}
	var out []string
	seen := map[string]bool{}
	for _, r := range mf.Rules {
		for _, t := range r.Targets {
			if seen[t] {
				continue
			}
			seen[t] = true
			if visit(t, map[string]bool{}) {
				out = append(out, t)
			}
		}
	}
	return out
}
