package userland

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/shell"
	"repro/internal/vfs"
)

// env builds a shell with the userland installed and a scratch world.
func env(t *testing.T) (*vfs.FS, *shell.Shell, *shell.Context, *bytes.Buffer) {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.MkdirAll("/tmp")
	sh := shell.New(fs)
	Install(sh)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	return fs, sh, ctx, &out
}

func TestCat(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.WriteFile("/tmp/a", []byte("one\n"))
	fs.WriteFile("/tmp/b", []byte("two\n"))
	sh.Run(ctx, "cat /tmp/a /tmp/b")
	if out.String() != "one\ntwo\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestCatStdin(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "echo via stdin | cat")
	if out.String() != "via stdin\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestCatMissing(t *testing.T) {
	_, sh, ctx, out := env(t)
	status := sh.Run(ctx, "cat /tmp/ghost")
	if status == 0 || !strings.Contains(out.String(), "cat:") {
		t.Errorf("status=%d out=%q", status, out.String())
	}
}

func TestCp(t *testing.T) {
	fs, sh, ctx, _ := env(t)
	fs.WriteFile("/tmp/src", []byte("data"))
	sh.Run(ctx, "cp /tmp/src /tmp/dst")
	if got, _ := fs.ReadFile("/tmp/dst"); string(got) != "data" {
		t.Errorf("dst=%q", got)
	}
}

func TestCpIntoDir(t *testing.T) {
	fs, sh, ctx, _ := env(t)
	fs.MkdirAll("/tmp/d")
	fs.WriteFile("/tmp/src", []byte("x"))
	sh.Run(ctx, "cp /tmp/src /tmp/d")
	if got, _ := fs.ReadFile("/tmp/d/src"); string(got) != "x" {
		t.Errorf("copied=%q", got)
	}
}

func TestGrepBasic(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.WriteFile("/tmp/f", []byte("alpha\nbeta\ngamma\n"))
	status := sh.Run(ctx, "grep ta /tmp/f")
	if status != 0 || out.String() != "beta\n" {
		t.Errorf("status=%d out=%q", status, out.String())
	}
}

func TestGrepLineNumbers(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.WriteFile("/tmp/f", []byte("a\nmatch\nc\n"))
	sh.Run(ctx, "grep -n match /tmp/f")
	if out.String() != "/tmp/f:2:match\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestGrepMultipleFilesShowsNames(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/src")
	fs.WriteFile("/src/a.c", []byte("int n;\n"))
	fs.WriteFile("/src/b.c", []byte("no match\nn = 0;\n"))
	sh.Run(ctx, "grep n /src/*.c")
	got := out.String()
	if !strings.Contains(got, "/src/a.c:int n;") || !strings.Contains(got, "/src/b.c:n = 0;") {
		t.Errorf("out=%q", got)
	}
	// grep on the letter n also matches "no match" — the imprecision the
	// paper contrasts with uses.
	if !strings.Contains(got, "no match") {
		t.Errorf("grep should match every occurrence of the letter: %q", got)
	}
}

func TestGrepInvertCountNames(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.WriteFile("/tmp/f", []byte("yes\nno\nyes\n"))
	sh.Run(ctx, "grep -c yes /tmp/f")
	if out.String() != "2\n" {
		t.Errorf("count out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "grep -v yes /tmp/f")
	if out.String() != "no\n" {
		t.Errorf("invert out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "grep -l yes /tmp/f")
	if out.String() != "/tmp/f\n" {
		t.Errorf("names out=%q", out.String())
	}
}

func TestGrepNoMatchStatus(t *testing.T) {
	fs, sh, ctx, _ := env(t)
	fs.WriteFile("/tmp/f", []byte("x\n"))
	if status := sh.Run(ctx, "grep zzz /tmp/f"); status != 1 {
		t.Errorf("status=%d, want 1", status)
	}
}

func TestGrepCaseFold(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.WriteFile("/tmp/f", []byte("Hello\n"))
	sh.Run(ctx, "grep -i hello /tmp/f")
	if out.String() != "Hello\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestLs(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/d/sub")
	fs.WriteFile("/d/file.c", nil)
	sh.Run(ctx, "ls /d")
	if out.String() != "file.c\nsub/\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestLsDefaultDir(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/work")
	fs.WriteFile("/work/a", nil)
	ctx.Dir = "/work"
	sh.Run(ctx, "ls")
	if out.String() != "a\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestSed1q(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "{ echo first; echo second } | sed 1q")
	if out.String() != "first\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestSedPrintLine(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "{ echo a; echo b; echo c } | sed -n 2p")
	if out.String() != "b\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestSedSubstitute(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "echo aaa | sed s/a/b/")
	if out.String() != "baa\n" {
		t.Errorf("out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "echo aaa | sed s/a/b/g")
	if out.String() != "bbb\n" {
		t.Errorf("global out=%q", out.String())
	}
}

func TestWc(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.WriteFile("/tmp/f", []byte("one two\nthree\n"))
	sh.Run(ctx, "wc /tmp/f")
	fields := strings.Fields(out.String())
	if len(fields) != 4 || fields[0] != "2" || fields[1] != "3" || fields[2] != "14" {
		t.Errorf("out=%q", out.String())
	}
}

func TestSortUniq(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "{ echo b; echo a; echo b } | sort")
	if out.String() != "a\nb\nb\n" {
		t.Errorf("sort out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "{ echo b; echo a; echo b } | sort | uniq")
	if out.String() != "a\nb\n" {
		t.Errorf("uniq out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "{ echo a; echo b } | sort -r")
	if out.String() != "b\na\n" {
		t.Errorf("sort -r out=%q", out.String())
	}
}

func TestHeadTail(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "{ echo 1; echo 2; echo 3 } | head -n 2")
	if out.String() != "1\n2\n" {
		t.Errorf("head out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "{ echo 1; echo 2; echo 3 } | tail -n 2")
	if out.String() != "2\n3\n" {
		t.Errorf("tail out=%q", out.String())
	}
}

func TestTouchRmMkdir(t *testing.T) {
	fs, sh, ctx, _ := env(t)
	sh.Run(ctx, "mkdir /newdir\ntouch /newdir/f")
	if !fs.Exists("/newdir/f") {
		t.Fatal("touch did not create")
	}
	before, _ := fs.Stat("/newdir/f")
	sh.Run(ctx, "touch /newdir/f")
	after, _ := fs.Stat("/newdir/f")
	if after.ModTime <= before.ModTime {
		t.Error("touch did not bump mtime")
	}
	sh.Run(ctx, "rm /newdir/f")
	if fs.Exists("/newdir/f") {
		t.Error("rm did not remove")
	}
}

func TestDateDeterministic(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "date")
	if !strings.Contains(out.String(), "1991") {
		t.Errorf("out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "date=yesterday\ndate")
	if out.String() != "yesterday\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestCppPassThrough(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.WriteFile("/tmp/x.c", []byte("int main(){}\n"))
	sh.Run(ctx, "cpp -DX=1 /tmp/x.c")
	if out.String() != "int main(){}\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestTee(t *testing.T) {
	fs, sh, ctx, out := env(t)
	sh.Run(ctx, "echo data | tee /tmp/copy")
	if out.String() != "data\n" {
		t.Errorf("stdout=%q", out.String())
	}
	if got, _ := fs.ReadFile("/tmp/copy"); string(got) != "data\n" {
		t.Errorf("file=%q", got)
	}
}

func TestBasename(t *testing.T) {
	_, sh, ctx, out := env(t)
	sh.Run(ctx, "basename /usr/rob/src/help/dat.h plain")
	if out.String() != "dat.h\nplain\n" {
		t.Errorf("out=%q", out.String())
	}
}

func TestFortuneAndNews(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/lib")
	fs.WriteFile("/lib/fortunes", []byte("pithy\nsecond\n"))
	fs.WriteFile("/lib/news", []byte("the news\n"))
	sh.Run(ctx, "fortune\nnews")
	if out.String() != "pithy\nthe news\n" {
		t.Errorf("out=%q", out.String())
	}
}

// ---- mk ---------------------------------------------------------------------

func TestParseMkfile(t *testing.T) {
	mf, err := ParseMkfile("CC=vc\nall: a.o b.o\n\tcombine\n\na.o: a.c\n\t$CC a.c\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Rules) != 2 {
		t.Fatalf("rules = %d", len(mf.Rules))
	}
	if mf.Vars["CC"] != "vc" {
		t.Errorf("CC = %q", mf.Vars["CC"])
	}
	r := mf.Rules[1]
	if r.Targets[0] != "a.o" || r.Prereqs[0] != "a.c" || r.Recipe[0] != "$CC a.c" {
		t.Errorf("rule = %+v", r)
	}
}

func TestParseMkfileErrors(t *testing.T) {
	if _, err := ParseMkfile("\trecipe without rule\n"); err == nil {
		t.Error("recipe outside rule should fail")
	}
	if _, err := ParseMkfile("just some words\n"); err == nil {
		t.Error("non-rule line should fail")
	}
}

func TestMkBuildsStaleTarget(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/proj")
	fs.WriteFile("/proj/a.c", []byte("src"))
	fs.WriteFile("/proj/mkfile", []byte("a.o: a.c\n\tcp a.c a.o\n"))
	ctx.Dir = "/proj"
	if status := sh.Run(ctx, "mk"); status != 0 {
		t.Fatalf("mk failed: %s", out.String())
	}
	if got, _ := fs.ReadFile("/proj/a.o"); string(got) != "src" {
		t.Errorf("a.o=%q", got)
	}
	// Second run: up to date.
	out.Reset()
	sh.Run(ctx, "mk")
	if !strings.Contains(out.String(), "up to date") {
		t.Errorf("second mk out=%q", out.String())
	}
	// Touch the source; mk rebuilds.
	out.Reset()
	sh.Run(ctx, "touch a.c\nmk")
	if !strings.Contains(out.String(), "cp a.c a.o") {
		t.Errorf("rebuild out=%q", out.String())
	}
}

func TestMkTransitive(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/p")
	fs.WriteFile("/p/x.c", []byte("1"))
	fs.WriteFile("/p/mkfile", []byte("prog: x.o\n\tcp x.o prog\nx.o: x.c\n\tcp x.c x.o\n"))
	ctx.Dir = "/p"
	if status := sh.Run(ctx, "mk"); status != 0 {
		t.Fatalf("mk: %s", out.String())
	}
	if got, _ := fs.ReadFile("/p/prog"); string(got) != "1" {
		t.Errorf("prog=%q", got)
	}
}

func TestMkMissingSource(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/p")
	fs.WriteFile("/p/mkfile", []byte("prog: ghost.c\n\techo never\n"))
	ctx.Dir = "/p"
	if status := sh.Run(ctx, "mk"); status == 0 {
		t.Errorf("mk with missing source should fail: %s", out.String())
	}
}

func TestMkCycle(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/p")
	fs.WriteFile("/p/mkfile", []byte("a: b\n\techo a\nb: a\n\techo b\n"))
	ctx.Dir = "/p"
	if status := sh.Run(ctx, "mk a"); status == 0 {
		t.Errorf("cycle should fail: %s", out.String())
	}
}

func TestMkNamedTargetAndF(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/p")
	fs.WriteFile("/p/src", []byte("s"))
	fs.WriteFile("/p/build.mk", []byte("first: src\n\tcp src first\nsecond: src\n\tcp src second\n"))
	ctx.Dir = "/p"
	if status := sh.Run(ctx, "mk -f build.mk second"); status != 0 {
		t.Fatalf("mk: %s", out.String())
	}
	if fs.Exists("/p/first") {
		t.Error("mk built the wrong target")
	}
	if !fs.Exists("/p/second") {
		t.Error("named target not built")
	}
}

func TestMkTouched(t *testing.T) {
	fs, sh, ctx, out := env(t)
	fs.MkdirAll("/p")
	fs.WriteFile("/p/a.c", []byte("a"))
	fs.WriteFile("/p/b.c", []byte("b"))
	fs.WriteFile("/p/mkfile", []byte("a.o: a.c\n\tcp a.c a.o\nb.o: b.c\n\tcp b.c b.o\n"))
	ctx.Dir = "/p"
	sh.Run(ctx, "mk a.o\nmk b.o")
	stamp := fs.Now()
	// Modify only b.c: mktouched must rebuild b.o and not a.o.
	fs.WriteFile("/p/b.c", []byte("b2"))
	out.Reset()
	if status := sh.Run(ctx, "mktouched "+itoa(stamp)); status != 0 {
		t.Fatalf("mktouched: %s", out.String())
	}
	if strings.Contains(out.String(), "rebuilding a.o") {
		t.Errorf("a.o rebuilt unnecessarily: %s", out.String())
	}
	if !strings.Contains(out.String(), "rebuilding b.o") {
		t.Errorf("b.o not rebuilt: %s", out.String())
	}
	if got, _ := fs.ReadFile("/p/b.o"); string(got) != "b2" {
		t.Errorf("b.o=%q", got)
	}
	// Nothing modified since now.
	out.Reset()
	sh.Run(ctx, "mktouched "+itoa(fs.Now()))
	if !strings.Contains(out.String(), "nothing modified") {
		t.Errorf("out=%q", out.String())
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func BenchmarkGrepLargeFile(b *testing.B) {
	fs := vfs.New()
	fs.MkdirAll("/tmp")
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString("some line of source text with variable names\n")
	}
	fs.WriteFile("/tmp/big", []byte(sb.String()))
	sh := shell.New(fs)
	Install(sh)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Reset()
		sh.Run(ctx, "grep variable /tmp/big")
	}
}

func BenchmarkMkUpToDate(b *testing.B) {
	fs := vfs.New()
	fs.MkdirAll("/p")
	fs.WriteFile("/p/a.c", []byte("x"))
	fs.WriteFile("/p/mkfile", []byte("a.o: a.c\n\tcp a.c a.o\n"))
	sh := shell.New(fs)
	Install(sh)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = "/p"
	sh.Run(ctx, "mk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Reset()
		sh.Run(ctx, "mk")
	}
}
