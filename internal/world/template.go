package world

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/helpfs"
	"repro/internal/mail"
	"repro/internal/shell"
	"repro/internal/userland"
	"repro/internal/vfs"

	"repro/internal/adb"
	"repro/internal/core"
)

// sharedRoots are the read-only parts of the world every session sees
// identically: the tool binaries, libraries, system sources, network
// stubs, and the /help tool tree. The template seals them once; each
// session grafts the sealed subtrees (by reference, no copy) and
// union-binds them behind a private member, so a session can shadow a
// shared file locally but never mutate it.
var sharedRoots = []string{"/bin", "/lib", "/sys", "/net", "/help"}

// privateRoots are the mutable, per-session parts: the user's home and
// source tree (pre-built, so sessions skip the initial mk), the
// scratch space, the mailbox, and the device directory. The template
// snapshots them once and replays the snapshot into every session.
var privateRoots = []string{"/usr", "/tmp", "/mail", "/dev"}

// Template is a pre-built world from which sessions are mass-produced:
// one shared sealed namespace plus a snapshot of the private parts.
// Building the template costs one full Build (sources, mailbox, the
// initial mk); stamping a session out of it costs two orders of
// magnitude less, which is what lets one daemon host thousands.
type Template struct {
	fs   *vfs.FS
	priv []vfs.DumpEntry
}

// NewTemplate builds the master world and prepares it for sharing.
func NewTemplate() (*Template, error) {
	base, err := Build(80, 24)
	if err != nil {
		return nil, err
	}
	for _, r := range sharedRoots {
		if err := base.FS.Seal(r); err != nil {
			return nil, fmt.Errorf("template: seal %s: %w", r, err)
		}
	}
	if err := base.FS.Seal("/mnt/term"); err != nil {
		return nil, fmt.Errorf("template: seal /mnt/term: %w", err)
	}
	entries, _ := base.FS.Dump()
	var priv []vfs.DumpEntry
	for _, e := range entries {
		for _, r := range privateRoots {
			if e.Path == r || strings.HasPrefix(e.Path, r+"/") {
				priv = append(priv, e)
				break
			}
		}
	}
	return &Template{fs: base.FS, priv: priv}, nil
}

// NewSession stamps out an independent world on a w x h screen: a fresh
// namespace with the template's shared subtrees grafted read-only and
// its private subtrees replayed as session-owned copies, a fresh shell,
// process table, help instance, and file service. Sessions share no
// mutable state with each other or with the template; the sealed
// shared nodes are safe to read from any number of sessions at once.
func (t *Template) NewSession(w, h int) (*World, error) {
	fs := vfs.New()
	sh := shell.New(fs)
	userland.Install(sh)
	cc.Install(sh)

	// Private overlay members first, so unions resolve (and creations
	// land) there before falling through to the sealed template.
	for _, r := range sharedRoots {
		if err := fs.MkdirAll(r); err != nil {
			return nil, err
		}
		shared := "/shared" + r
		if err := fs.Graft(shared, t.fs, r); err != nil {
			return nil, err
		}
		if err := fs.Bind(shared, r, vfs.After); err != nil {
			return nil, err
		}
	}
	if err := fs.MkdirAll("/mnt"); err != nil {
		return nil, err
	}
	if err := fs.Graft("/mnt/term", t.fs, "/mnt/term"); err != nil {
		return nil, err
	}

	for _, e := range t.priv {
		if e.Dir {
			if err := fs.MkdirAll(e.Path); err != nil {
				return nil, err
			}
		} else if err := fs.WriteFile(e.Path, e.Data); err != nil {
			return nil, err
		}
	}

	table, err := installProcs(fs)
	if err != nil {
		return nil, err
	}
	adb.Install(sh, table)
	installCompilers(sh)

	hlp := core.New(fs, sh, w, h)
	svc, err := helpfs.Attach(hlp, fs, MountRoot)
	if err != nil {
		return nil, err
	}
	// The tool files already exist in the shared tree; these calls only
	// register the per-shell programs behind them.
	if err := installTools(sh); err != nil {
		return nil, err
	}
	if err := mail.Install(sh, MboxPath, MountRoot); err != nil {
		return nil, err
	}
	safe := hlp.SafeFS()
	sh.SetContextFS(safe)
	return &World{FS: safe, Shell: sh, Help: hlp, Procs: table, Svc: svc}, nil
}
