package world

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfile"
	"repro/internal/journal"
)

// countFS counts every byte written through it, so the reference run
// can learn the exact on-medium position of each step boundary.
type countFS struct {
	inner journal.Fsys
	n     *int64
}

func (c countFS) Create(name string) (journal.File, error) {
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return countFile{f: f, n: c.n}, nil
}
func (c countFS) ReadFile(name string) ([]byte, error)  { return c.inner.ReadFile(name) }
func (c countFS) Rename(oldname, newname string) error  { return c.inner.Rename(oldname, newname) }
func (c countFS) Remove(name string) error              { return c.inner.Remove(name) }
func (c countFS) List() ([]string, error)               { return c.inner.List() }

type countFile struct {
	f journal.File
	n *int64
}

func (c countFile) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	atomic.AddInt64(c.n, int64(n))
	return n, err
}
func (c countFile) Sync() error  { return c.f.Sync() }
func (c countFile) Close() error { return c.f.Close() }

// recoverFingerprint captures the journaled session state through the
// exported surface: focus, snarf, and every window's tag, body,
// selections and flags, plus the rendered screen.
func recoverFingerprint(h *core.Help) string {
	h.Render()
	var b strings.Builder
	cw, cs := h.Current()
	cid := 0
	if cw != nil {
		cid = cw.ID
	}
	fmt.Fprintf(&b, "cur=%d.%d snarf=%q\n", cid, cs, h.Snarf())
	for _, w := range h.Windows() {
		fmt.Fprintf(&b, "win %d hidden=%v dir=%v mod=%v sel=%v tag=%q body=%q\n",
			w.ID, w.Hidden(), w.IsDir, w.Body.Modified(), w.Sel, w.Tag.String(), w.Body.String())
	}
	b.WriteString(h.Screen().String())
	return b.String()
}

// recoverySteps is the scripted session: each step drives the world
// through a different journaled surface — commands, direct opens, the
// file interface — so a crash can land between any two kinds of
// mutation.
func recoverySteps() []func(t *testing.T, w *World) {
	return []func(t *testing.T, w *World){
		func(t *testing.T, w *World) {
			if _, err := w.Help.OpenFile(SrcDir+"/exec.c", "252"); err != nil {
				t.Fatal(err)
			}
		},
		func(t *testing.T, w *World) {
			win := w.Help.WindowByName(SrcDir + "/exec.c")
			w.Help.Execute(win, "Snarf")
		},
		func(t *testing.T, w *World) {
			win, err := w.Help.OpenFile(SrcDir+"/help.c", "")
			if err != nil {
				t.Fatal(err)
			}
			win.SetSelection(core.SubBody, 0, 0)
			w.Help.SetCurrent(win, core.SubBody)
			w.Help.Execute(win, "Paste")
		},
		func(t *testing.T, w *World) {
			win := w.Help.WindowByName(SrcDir + "/help.c")
			w.Help.Execute(win, "echo crash recovery drill")
		},
		func(t *testing.T, w *World) {
			// Through the file interface: the paper's programming surface.
			win := w.Help.WindowByName(SrcDir + "/help.c")
			body := fmt.Sprintf("%s/%d/body", MountRoot, win.ID)
			if err := w.FS.WriteFile(body, []byte("rewritten through /mnt/help\n")); err != nil {
				t.Fatal(err)
			}
		},
		func(t *testing.T, w *World) {
			win := w.Help.WindowByName(SrcDir + "/exec.c")
			w.Help.Execute(win, "Close!")
		},
	}
}

// runScripted boots a world, journals it into jfs, runs the scripted
// session calling after(k) once step k's records are flushed, and
// returns the world.
func runScripted(t *testing.T, jfs journal.Fsys, after func(step int, w *World)) *World {
	t.Helper()
	w, err := Build(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	jw, err := journal.Open(jfs, journal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	w.Help.AttachJournal(jw, 1<<20)
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if after != nil {
		after(-1, w) // boundary after attach: checkpoint durable, no ops
	}
	for k, step := range recoverySteps() {
		step(t, w)
		if err := jw.Flush(); err != nil {
			t.Fatal(err)
		}
		if after != nil {
			after(k, w)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCrashRecoveryEndToEnd kills the machine (via the faultfile
// injector) at every step boundary and at torn mid-record points, then
// recovers a fresh world from whatever survived. At a step boundary the
// recovered session must match that step's golden fingerprint exactly;
// at a torn point recovery must still produce a working session from
// the surviving prefix.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	// Reference run: learn the byte position and fingerprint of every
	// step boundary.
	var written int64
	ref := journal.NewMemFS()
	var bounds []int64
	var goldens []string
	w := runScripted(t, countFS{inner: ref, n: &written}, func(step int, w *World) {
		bounds = append(bounds, atomic.LoadInt64(&written))
		goldens = append(goldens, "")
		if step >= 0 {
			goldens[len(goldens)-1] = recoverFingerprint(w.Help)
		}
	})
	if w.Help.PanicCount() != 0 {
		t.Fatalf("reference run recovered %d panics", w.Help.PanicCount())
	}

	for k := range bounds {
		if goldens[k] == "" {
			continue // the attach boundary has no golden
		}
		mem := journal.NewMemFS()
		crash := faultfile.CrashAfterBytes(mem, bounds[k])
		runScripted(t, crash, nil)
		if k < len(bounds)-1 && !crash.Crashed() {
			t.Fatalf("boundary %d: crash never triggered", k)
		}

		w2, err := Build(120, 40)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Boot(); err != nil {
			t.Fatal(err)
		}
		res, err := core.RecoverSession(w2.Help, mem)
		if err != nil {
			t.Fatalf("boundary %d: recovery failed: %v", k, err)
		}
		if got := recoverFingerprint(w2.Help); got != goldens[k] {
			t.Fatalf("boundary %d (after %d ops): recovered world differs from golden\n--- golden ---\n%s\n--- recovered ---\n%s",
				k, res.Ops, goldens[k], got)
		}
		if w2.Help.PanicCount() != 0 {
			t.Fatalf("boundary %d: %d recovered panics", k, w2.Help.PanicCount())
		}
	}

	// Torn points: a few bytes shy of each boundary the final record is
	// incomplete. Recovery must discard it and still hand back a session.
	for k := 1; k < len(bounds); k++ {
		cut := bounds[k] - 3
		if cut <= bounds[0] {
			continue // inside the checkpoint: nothing recoverable yet
		}
		mem := journal.NewMemFS()
		crash := faultfile.CrashAfterBytes(mem, cut)
		runScripted(t, crash, nil)

		w2, err := Build(120, 40)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Boot(); err != nil {
			t.Fatal(err)
		}
		if _, err := core.RecoverSession(w2.Help, mem); err != nil {
			t.Fatalf("torn cut at %d: recovery failed: %v", cut, err)
		}
		// The surviving session is live: it accepts further work.
		win := w2.Help.Windows()
		if len(win) == 0 {
			t.Fatalf("torn cut at %d: recovered an empty world", cut)
		}
		w2.Help.Execute(win[0], "echo still alive")
		if !strings.Contains(w2.Help.Errors().Body.String(), "still alive") {
			t.Fatalf("torn cut at %d: recovered session not functional", cut)
		}
		if w2.Help.PanicCount() != 0 {
			t.Fatalf("torn cut at %d: %d recovered panics", cut, w2.Help.PanicCount())
		}
	}
}
