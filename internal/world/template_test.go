package world

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/vfs"
)

// TestTemplateSessionsAreIsolated stamps two sessions from one template
// and checks they share the read-only world but nothing mutable.
func TestTemplateSessionsAreIsolated(t *testing.T) {
	tmpl, err := NewTemplate()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := tmpl.NewSession(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tmpl.NewSession(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Boot(); err != nil {
		t.Fatal(err)
	}

	// Both see the shared tool tree, through the union.
	for _, s := range []*World{s1, s2} {
		b, err := s.FS.ReadFile("/help/edit/stf")
		if err != nil || !strings.Contains(string(b), "Cut Paste Snarf") {
			t.Fatalf("shared read = %q, %v", b, err)
		}
	}

	// Private mutations stay private.
	if err := s1.FS.WriteFile("/usr/rob/tmp/note", []byte("session one")); err != nil {
		t.Fatal(err)
	}
	if s2.FS.Exists("/usr/rob/tmp/note") {
		t.Fatal("private write visible in the other session")
	}
	win := s1.Help.Windows()[0]
	s1.Help.Execute(win, "echo marker-one")
	if strings.Contains(s2.Help.ErrorsText(), "marker-one") {
		t.Fatal("command output leaked between sessions")
	}

	// The shared tree itself cannot be mutated through any session.
	if err := s1.FS.WriteFile("/shared/bin/help/parse", []byte("x")); !errors.Is(err, vfs.ErrPerm) {
		t.Fatalf("shared write: err = %v, want ErrPerm", err)
	}
	// But a session may shadow a shared name in its private member,
	// once the private directory exists to receive the file...
	if err := s1.FS.MkdirAll("/help/edit"); err != nil {
		t.Fatal(err)
	}
	if err := s1.FS.WriteFile("/help/edit/stf", []byte("shadowed\n")); err != nil {
		t.Fatal(err)
	}
	if b, _ := s1.FS.ReadFile("/help/edit/stf"); string(b) != "shadowed\n" {
		t.Fatalf("shadow read = %q", b)
	}
	// ...without the other session noticing.
	if b, _ := s2.FS.ReadFile("/help/edit/stf"); !strings.Contains(string(b), "Cut Paste Snarf") {
		t.Fatalf("s2 sees shadow: %q", b)
	}

	// The session's own tools work: the mail tool reads the private mbox.
	s1.Help.Execute(win, "/help/mail/headers")
	s1.Help.WaitIdle()
	if s1.Help.WindowByName(MboxPath) == nil {
		t.Fatal("mail headers did not open the mailbox window")
	}
}

// TestTemplateSessionJournalRoundTrip journals a template-stamped
// session and recovers it into a fresh one: snapshots must carry only
// private state (the sealed graft is reconstructed by the template),
// and the recovered session must match byte for byte.
func TestTemplateSessionJournalRoundTrip(t *testing.T) {
	tmpl, err := NewTemplate()
	if err != nil {
		t.Fatal(err)
	}
	s, err := tmpl.NewSession(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	mem := journal.NewMemFS()
	jw, err := journal.Open(mem, journal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Help.AttachJournal(jw, 1<<20)

	win, err := s.Help.OpenFile(SrcDir+"/exec.c", "252")
	if err != nil {
		t.Fatal(err)
	}
	s.Help.Execute(win, "Snarf")
	s.Help.Execute(win, "echo journal drill")
	s.Help.WaitIdle()
	golden := recoverFingerprint(s.Help)
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := tmpl.NewSession(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Boot(); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RecoverSession(s2.Help, mem); err != nil {
		t.Fatal(err)
	}
	if got := recoverFingerprint(s2.Help); got != golden {
		t.Fatalf("recovered session differs\n--- golden ---\n%s\n--- recovered ---\n%s", golden, got)
	}
}
