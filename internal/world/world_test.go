package world

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
)

func build(t *testing.T) *World {
	t.Helper()
	w, err := Build(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// lineOf returns 1-based line of the first occurrence of needle.
func lineOf(content, needle string) int {
	idx := strings.Index(content, needle)
	if idx < 0 {
		return -1
	}
	return strings.Count(content[:idx], "\n") + 1
}

// TestPaperCoordinates pins every source coordinate the figures cite.
func TestPaperCoordinates(t *testing.T) {
	w := build(t)
	read := func(p string) string {
		data, err := w.FS.ReadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		return string(data)
	}
	cases := []struct {
		file   string
		needle string
		line   int
	}{
		{SrcDir + "/dat.h", "uchar *n;", 136},
		{SrcDir + "/help.c", `n = "a test string";`, 35},
		{SrcDir + "/exec.c", "c->fn(0, 0, 0, 0);", 101},
		{SrcDir + "/exec.c", "if(lookup(&cmd))", 207},
		{SrcDir + "/exec.c", "n = 0;", 213},
		{SrcDir + "/exec.c", "errs((uchar*)n);", 252},
		{SrcDir + "/text.c", "n = strlen((char*)s);", 32},
		{SrcDir + "/errs.c", "textinsert(1, &p->body, s, p->body.nchars, 1);", 34},
		{SrcDir + "/ctrl.c", "for(;;){", 320},
		{SrcDir + "/ctrl.c", "execute(t, p0, p1);", 331},
		{"/sys/src/libc/port/strlen.c", "return strchr(s, 0) - s;", 7},
		{"/sys/src/libc/mips/strchr.s", "MOVW\t0(R3), R5", 34},
	}
	for _, c := range cases {
		if got := lineOf(read(c.file), c.needle); got != c.line {
			t.Errorf("%s: %q at line %d, want %d", c.file, c.needle, got, c.line)
		}
	}
}

func TestSourceTreeComplete(t *testing.T) {
	w := build(t)
	for name := range sourceFiles() {
		if !w.FS.Exists(SrcDir + "/" + name) {
			t.Errorf("missing %s", name)
		}
	}
}

func TestBootScreen(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	// Figure 4: Boot window plus the four tool windows.
	if len(w.Help.Windows()) != 5 {
		t.Errorf("windows after boot = %d", len(w.Help.Windows()))
	}
	screen := w.Help.Screen().String()
	for _, want := range []string{
		"help/Boot", "Exit",
		"/help/edit/stf", "/help/cbr/stf", "/help/db/stf", "/help/mail/stf",
		"headers messages delete reread send",
		"stack", "Cut Paste Snarf",
	} {
		if !strings.Contains(screen, want) {
			t.Errorf("boot screen missing %q:\n%s", want, screen)
		}
	}
}

func TestProcessTable(t *testing.T) {
	w := build(t)
	p := w.Procs.Get(176153)
	if p == nil || p.State != "Broken" {
		t.Fatalf("crashed process = %+v", p)
	}
	banner := p.CrashBanner()
	// The banner must match Sean's mail verbatim.
	mbox, _ := w.FS.ReadFile(MboxPath)
	for _, line := range strings.Split(strings.TrimSpace(banner), "\n") {
		if !strings.Contains(string(mbox), line) {
			t.Errorf("mailbox missing crash line %q", line)
		}
	}
	if !w.FS.Exists("/proc/176153/status") {
		t.Error("/proc not mounted")
	}
}

// selectWord points help's current selection at the first occurrence of
// word in win's body and exports it as $helpsel would be.
func selectWord(t *testing.T, w *World, win *core.Window, word string) {
	t.Helper()
	body := win.Body.String()
	off := strings.Index(body, word)
	if off < 0 {
		t.Fatalf("%q not in window %d body", word, win.ID)
	}
	q := len([]rune(body[:off])) + 1
	win.SetSelection(core.SubBody, q, q)
	w.Help.SetCurrent(win, core.SubBody)
}

func TestDebuggerStackTool(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	// Open Sean's mail content in a window (simulating Figure 6 state).
	msg := w.Help.NewWindow()
	msg.Body.SetString("i tried your new help and got this:\nhelp 176153: user TLB miss (load or fetch) badvaddr=0x0\n")
	selectWord(t, w, msg, "176153")

	// Execute "stack" in the db tool window context.
	stf := w.Help.WindowByName("/help/db/stf")
	if stf == nil {
		t.Fatal("db tool window missing")
	}
	w.Help.Execute(stf, "stack")

	// A traceback window appears, named into the source directory.
	var stackWin *core.Window
	for _, win := range w.Help.Windows() {
		if strings.Contains(win.Tag.String(), "stack") && strings.Contains(win.Tag.String(), SrcDir) {
			stackWin = win
		}
	}
	if stackWin == nil {
		t.Fatalf("no stack window; errors: %q", w.Help.Errors().Body.String())
	}
	body := stackWin.Body.String()
	for _, want := range []string{
		"last exception: TLB miss (load or fetch)",
		"/sys/src/libc/mips/strchr.s:34 strchr+0x68? MOVW 0(R3),R5",
		"strlen(s=0x0) called from textinsert+0x30 text.c:32",
		"textinsert(sel=0x1,t=0x40e60,s=0x0,q0=0xd,full=0x1) called from errs+0xe8 errs.c:34",
		"errs(s=0x0) called from Xdie2+0x14 exec.c:252",
		"execute(t=0x3ebbc,p0=0x2,p1=0x2) called from control+0x430 ctrl.c:331",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("stack window missing %q:\n%s", want, body)
		}
	}
	// The window's context is the source dir, so Open on "text.c:32"
	// resolves there (Figure 8).
	if stackWin.Dir() != SrcDir {
		t.Errorf("stack window dir = %q", stackWin.Dir())
	}
}

func TestOpenFromStackTrace(t *testing.T) {
	w := build(t)
	stack := w.Help.NewWindow()
	stack.Tag.SetString(SrcDir + "/\t176153 stack\tClose!")
	stack.Tag.SetClean()
	stack.Body.SetString("strlen(s=0x0) called from textinsert+0x30 text.c:32\n")
	// Point at "text.c:32" and Open: two button clicks in the paper.
	selectWord(t, w, stack, "ext.c:32")
	w.Help.Execute(stack, "Open")
	opened := w.Help.WindowByName(SrcDir + "/text.c")
	if opened == nil {
		t.Fatalf("text.c not opened; errors: %q", w.Help.Errors().Body.String())
	}
	ln := opened.Body.LineAt(opened.Sel[core.SubBody].Q0)
	if ln != 32 {
		t.Errorf("opened at line %d, want 32", ln)
	}
	if got := opened.SelectedText(core.SubBody); !strings.Contains(got, "strlen((char*)s)") {
		t.Errorf("selected %q", got)
	}
}

func TestUsesToolFindsFourCoordinates(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	// Open exec.c and point at the n in "errs((uchar*)n);" (Figure 9→10).
	execWin, err := w.Help.OpenFile(SrcDir+"/exec.c", "252")
	if err != nil {
		t.Fatal(err)
	}
	body := execWin.Body.String()
	off := strings.Index(body, "errs((uchar*)n)")
	q := len([]rune(body[:off+len("errs((uchar*)")]))
	execWin.SetSelection(core.SubBody, q, q)
	w.Help.SetCurrent(execWin, core.SubBody)

	cbr := w.Help.WindowByName("/help/cbr/stf")
	w.Help.Execute(cbr, "uses")

	usesWin := w.Help.WindowByName(SrcDir + "/uses")
	if usesWin == nil {
		t.Fatalf("no uses window; errors: %q", w.Help.Errors().Body.String())
	}
	got := strings.TrimSpace(usesWin.Body.String())
	lines := strings.Split(got, "\n")
	if len(lines) != 4 {
		t.Fatalf("uses found %d coordinates, want 4 (paper Figure 10):\n%s", len(lines), got)
	}
	want := []string{"dat.h:136", "exec.c:213", "exec.c:252", "help.c:35"}
	for i, wline := range want {
		if lines[i] != wline {
			t.Errorf("uses line %d = %q, want %q", i, lines[i], wline)
		}
	}
}

func TestDeclTool(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	execWin, err := w.Help.OpenFile(SrcDir+"/exec.c", "252")
	if err != nil {
		t.Fatal(err)
	}
	body := execWin.Body.String()
	off := strings.Index(body, "errs((uchar*)n)")
	q := len([]rune(body[:off+len("errs((uchar*)")]))
	execWin.SetSelection(core.SubBody, q, q)
	w.Help.SetCurrent(execWin, core.SubBody)

	cbr := w.Help.WindowByName("/help/cbr/stf")
	w.Help.Execute(cbr, "decl")
	declWin := w.Help.WindowByName(SrcDir + "/decl")
	if declWin == nil {
		t.Fatalf("no decl window; errors: %q", w.Help.Errors().Body.String())
	}
	if got := strings.TrimSpace(declWin.Body.String()); got != "dat.h:136" {
		t.Errorf("decl = %q, want dat.h:136", got)
	}
}

func TestSrcTool(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	execWin, _ := w.Help.OpenFile(SrcDir+"/exec.c", "")
	body := execWin.Body.String()
	off := strings.Index(body, "errs((uchar*)n)")
	q := len([]rune(body[:off+2]))
	execWin.SetSelection(core.SubBody, q, q) // inside "errs"
	w.Help.SetCurrent(execWin, core.SubBody)
	cbr := w.Help.WindowByName("/help/cbr/stf")
	w.Help.Execute(cbr, "src")
	srcWin := w.Help.WindowByName(SrcDir + "/src")
	if srcWin == nil {
		t.Fatalf("no src window; errors: %q", w.Help.Errors().Body.String())
	}
	if got := strings.TrimSpace(srcWin.Body.String()); got != "errs.c:28" {
		t.Errorf("src = %q, want errs.c:28 (definition of errs)", got)
	}
}

func TestMkToolCompiles(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	// Select something in exec.c so $helpsel points into the source dir,
	// then run mk from the browser tool — Figure 12.
	execWin, _ := w.Help.OpenFile(SrcDir+"/exec.c", "")
	selectWord(t, w, execWin, "lookup")
	cbr := w.Help.WindowByName("/help/cbr/stf")
	// Each run creates a fresh output window ("when windows are cheap and
	// easy to use why not just create a window for every process?"), so
	// look at the newest one named .../mk after each run.
	latestMk := func() *core.Window {
		var mk *core.Window
		for _, win := range w.Help.Windows() {
			if win.FileName() == SrcDir+"/mk" {
				mk = win
			}
		}
		return mk
	}
	// The world ships pre-built, so the first mk is up to date.
	w.Help.Execute(cbr, "mk")
	mkWin := latestMk()
	if mkWin == nil {
		t.Fatalf("no mk window; errors: %q", w.Help.Errors().Body.String())
	}
	if !strings.Contains(mkWin.Body.String(), "up to date") {
		t.Errorf("pre-built tree should be up to date:\n%s", mkWin.Body.String())
	}
	if !w.FS.Exists(SrcDir + "/v.out") {
		t.Error("link output missing")
	}
	// Touch exec.c (as the Cut+Put! of the session does) and re-run: only
	// exec.v recompiles, as Figure 12 shows.
	data, _ := w.FS.ReadFile(SrcDir + "/exec.c")
	w.FS.WriteFile(SrcDir+"/exec.c", data)
	w.Help.Execute(cbr, "mk")
	final := latestMk().Body.String()
	if !strings.Contains(final, "vc -w exec.c") {
		t.Errorf("mk did not recompile exec.c after touch:\n%s", final)
	}
	if !strings.Contains(final, "vl help.v clik.v ctrl.v dat.v errs.v exec.v") {
		t.Errorf("mk output missing link step:\n%s", final)
	}
	if strings.Contains(final, "vc -w help.c") {
		t.Errorf("mk recompiled unrelated help.c:\n%s", final)
	}
}

func TestGrepFromSourceWindow(t *testing.T) {
	// "grep '^main' /sys/src/cmd/help/*.c" flavour: external command with
	// a glob, run in the window's directory context.
	w := build(t)
	execWin, _ := w.Help.OpenFile(SrcDir+"/exec.c", "")
	w.Help.Execute(execWin, "grep -n Xdie1 *.c")
	errs := w.Help.Errors().Body.String()
	if !strings.Contains(errs, "exec.c:") {
		t.Errorf("grep output = %q", errs)
	}
	// grep matches prototypes and calls alike — the imprecision uses
	// avoids.
	if strings.Count(errs, "exec.c:") < 2 {
		t.Errorf("grep should find several occurrences: %q", errs)
	}
}

func TestMailHeadersViaToolWindow(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	mailStf := w.Help.WindowByName("/help/mail/stf")
	w.Help.Execute(mailStf, "headers")
	hw := w.Help.WindowByName(MboxPath)
	if hw == nil {
		t.Fatalf("headers window missing; errors: %q", w.Help.Errors().Body.String())
	}
	body := hw.Body.String()
	if !strings.Contains(body, "2 sean Tue Apr 16 19:26 EDT") {
		t.Errorf("headers = %q", body)
	}
	if lines := strings.Count(body, "\n"); lines != 7 {
		t.Errorf("header lines = %d, want 7", lines)
	}
}

func TestMailMessagesFromHeaderLine(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	mailStf := w.Help.WindowByName("/help/mail/stf")
	w.Help.Execute(mailStf, "headers")
	hw := w.Help.WindowByName(MboxPath)
	selectWord(t, w, hw, "sean")
	w.Help.Execute(mailStf, "messages")
	var msg *core.Window
	for _, win := range w.Help.Windows() {
		if strings.HasPrefix(win.Tag.String(), "From sean") {
			msg = win
		}
	}
	if msg == nil {
		t.Fatalf("message window missing; errors: %q", w.Help.Errors().Body.String())
	}
	if !strings.Contains(msg.Body.String(), "user TLB miss") {
		t.Errorf("message body = %q", msg.Body.String())
	}
}

func TestHelpSelProgram(t *testing.T) {
	w := build(t)
	win := w.Help.NewWindow()
	win.Body.SetString("process 176153 is broken")
	selectWord(t, w, win, "176153")
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:%d,%d", win.ID,
		win.Sel[core.SubBody].Q0, win.Sel[core.SubBody].Q1)})
	if status := w.Shell.RunCommand(ctx, []string{"help/sel"}); status != 0 {
		t.Fatalf("help/sel failed: %s", out.String())
	}
	if strings.TrimSpace(out.String()) != "176153" {
		t.Errorf("help/sel = %q", out.String())
	}
}

func TestHelpParseProgram(t *testing.T) {
	w := build(t)
	win, err := w.Help.OpenFile(SrcDir+"/exec.c", "")
	if err != nil {
		t.Fatal(err)
	}
	body := win.Body.String()
	off := strings.Index(body, "n = 0;")
	q := len([]rune(body[:off]))
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:%d,%d", win.ID, q, q)})
	if status := w.Shell.RunCommand(ctx, []string{"help/parse"}); status != 0 {
		t.Fatalf("help/parse failed: %s", out.String())
	}
	got := out.String()
	for _, want := range []string{"file=exec.c", "id=n", "line=213", "dir=" + SrcDir, "files=("} {
		if !strings.Contains(got, want) {
			t.Errorf("parse output missing %q: %q", want, got)
		}
	}
}

func TestProfileRuns(t *testing.T) {
	// The profile of Figure 1 runs verbatim: binds, fn, switch, fortune.
	w := build(t)
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Set("home", []string{"/usr/rob"})
	ctx.Set("cputype", []string{"mips"})
	ctx.Set("service", []string{"terminal"})
	data, _ := w.FS.ReadFile(Profile)
	status := w.Shell.Run(ctx, string(data))
	if status != 0 {
		t.Errorf("profile status=%d out=%q", status, out.String())
	}
	if strings.Contains(out.String(), "bind:") {
		t.Errorf("profile binds failed: %q", out.String())
	}
	if !strings.Contains(out.String(), "Simplicity") {
		t.Errorf("fortune missing: %q", out.String())
	}
	// The terminal arm ran: the prompt variable is set.
	if ctx.Getenv("site") != "plan9" {
		t.Errorf("switch arm did not run; site=%q", ctx.Getenv("site"))
	}
	// And the namespace composition is visible: $home/tmp now backs /tmp.
	w.FS.WriteFile("/tmp/scratch", []byte("x"))
	if !w.FS.Exists("/usr/rob/tmp/scratch") {
		t.Error("bind -e $home/tmp /tmp not effective")
	}
}

// TestBrowseSweep runs the browser over every file-scope symbol in the
// tree: every global and defined function must be declared inside the
// tree and queryable through the uses pipeline.
func TestBrowseSweep(t *testing.T) {
	w := build(t)
	var files []string
	ents, _ := w.FS.ReadDir(SrcDir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name, ".c") || strings.HasSuffix(e.Name, ".h") {
			files = append(files, e.Name)
		}
	}
	b := cc.NewBrowser()
	for _, f := range files {
		if strings.HasSuffix(f, ".h") {
			data, _ := w.FS.ReadFile(SrcDir + "/" + f)
			if err := b.ParseFile(f, string(data)); err != nil {
				t.Fatalf("%s: %v", f, err)
			}
		}
	}
	for _, f := range files {
		if strings.HasSuffix(f, ".c") {
			data, _ := w.FS.ReadFile(SrcDir + "/" + f)
			if err := b.ParseFile(f, string(data)); err != nil {
				t.Fatalf("%s: %v", f, err)
			}
		}
	}
	globals := b.Globals()
	if len(globals) < 5 {
		t.Fatalf("globals = %d, tree too thin", len(globals))
	}
	for _, g := range globals {
		if g.Decl.IsZero() {
			t.Errorf("global %s has no declaration", g.Name)
		}
		if len(b.Uses(g, nil)) == 0 {
			t.Errorf("global %s has no references", g.Name)
		}
	}
	fns := b.Functions()
	if len(fns) < 10 {
		t.Errorf("defined functions = %d, expected the whole tree", len(fns))
	}
	for _, f := range fns {
		if !strings.HasSuffix(f.Decl.File, ".c") {
			t.Errorf("function %s defined in %s", f.Name, f.Decl.File)
		}
	}
}

// TestOpenEverySourceFile opens all sixteen tree files through the UI
// path and verifies window naming, directory context, and tag commands.
func TestOpenEverySourceFile(t *testing.T) {
	w := build(t)
	ents, _ := w.FS.ReadDir(SrcDir)
	opened := 0
	for _, e := range ents {
		if e.IsDir {
			continue
		}
		win, err := w.Help.OpenFile(SrcDir+"/"+e.Name, "")
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		opened++
		if win.Dir() != SrcDir {
			t.Errorf("%s: dir = %q", e.Name, win.Dir())
		}
		if !strings.Contains(win.Tag.String(), "Close!") {
			t.Errorf("%s: tag = %q", e.Name, win.Tag.String())
		}
	}
	if opened < 15 {
		t.Errorf("opened only %d files", opened)
	}
	// All windows coexist; every one is either visible or tabbed.
	for _, win := range w.Help.Windows() {
		if span := w.Help.VisibleSpan(win); span < 0 {
			t.Errorf("window %d span %d", win.ID, span)
		}
	}
}

// TestGoDeclClosesTheLoop exercises the paper's planned improvement to
// the browser: godecl finds the declaration and opens it directly, so
// with a single command the declaration's file appears positioned at the
// right line.
func TestGoDeclClosesTheLoop(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	execWin, err := w.Help.OpenFile(SrcDir+"/exec.c", "252")
	if err != nil {
		t.Fatal(err)
	}
	body := execWin.Body.String()
	off := strings.Index(body, "errs((uchar*)n)")
	q := len([]rune(body[:off+len("errs((uchar*)")]))
	execWin.SetSelection(core.SubBody, q, q)
	w.Help.SetCurrent(execWin, core.SubBody)

	cbr := w.Help.WindowByName("/help/cbr/stf")
	w.Help.Execute(cbr, "godecl")

	datWin := w.Help.WindowByName(SrcDir + "/dat.h")
	if datWin == nil {
		t.Fatalf("declaration window not opened; errors: %q", w.Help.Errors().Body.String())
	}
	if ln := datWin.Body.LineAt(datWin.Sel[core.SubBody].Q0); ln != 136 {
		t.Errorf("declaration selected at line %d, want 136", ln)
	}
	if got := datWin.SelectedText(core.SubBody); got != "uchar *n;" {
		t.Errorf("selected %q", got)
	}
}

func TestHelpBufProgram(t *testing.T) {
	w := build(t)
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	if status := w.Shell.Run(ctx, "echo piped through | help/buf"); status != 0 {
		t.Fatalf("help/buf: %s", out.String())
	}
	if out.String() != "piped through\n" {
		t.Errorf("out = %q", out.String())
	}
}

func TestHelpSelNonNullSelection(t *testing.T) {
	// A non-null selection prints literally — "the resulting text is then
	// exactly what is selected".
	w := build(t)
	win := w.Help.NewWindow()
	win.Body.SetString("take THIS PART exactly")
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:5,14", win.ID)})
	if status := w.Shell.RunCommand(ctx, []string{"help/sel"}); status != 0 {
		t.Fatalf("help/sel: %s", out.String())
	}
	if strings.TrimSpace(out.String()) != "THIS PART" {
		t.Errorf("out = %q", out.String())
	}
}

func TestHelpSelEmpty(t *testing.T) {
	w := build(t)
	win := w.Help.NewWindow()
	win.Body.SetString("   ")
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:1,1", win.ID)})
	if status := w.Shell.RunCommand(ctx, []string{"help/sel"}); status == 0 {
		t.Error("empty expansion should fail")
	}
}

func TestHelpParseDirectoryWindow(t *testing.T) {
	// Parsing a selection in a directory window: dir is the directory
	// itself, file is empty.
	w := build(t)
	win, err := w.Help.OpenFile(SrcDir, "")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:0,0", win.ID)})
	if status := w.Shell.RunCommand(ctx, []string{"help/parse"}); status != 0 {
		t.Fatalf("help/parse: %s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "dir="+SrcDir) {
		t.Errorf("dir missing: %q", got)
	}
	if !strings.Contains(got, "file= ") && !strings.Contains(got, "file=\t") && !strings.Contains(got, "file= id") {
		// file is empty for a directory window.
		if strings.Contains(got, "file=.") {
			t.Errorf("directory window should have empty file: %q", got)
		}
	}
}

func TestHelpParseNoTagName(t *testing.T) {
	// A window with no file name contexts at /.
	w := build(t)
	win := w.Help.NewWindow()
	win.Body.SetString("bare window body")
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:0,0", win.ID)})
	if status := w.Shell.RunCommand(ctx, []string{"help/parse"}); status != 0 {
		t.Fatalf("help/parse: %s", out.String())
	}
	if !strings.Contains(out.String(), "dir=/") {
		t.Errorf("out = %q", out.String())
	}
}

func TestPaperGrepCommand(t *testing.T) {
	// The paper's exact external-command example: "if one selects with
	// the middle button the text grep '^main' /sys/src/cmd/help/*.c the
	// traditional command will be executed" (adapted to the tree's real
	// location).
	w := build(t)
	win, _ := w.Help.OpenFile(SrcDir+"/help.c", "")
	w.Help.Execute(win, "grep -n '^main' *.c")
	errs := w.Help.Errors().Body.String()
	if !strings.Contains(errs, "help.c:29:main(int argc, char *argv[])") {
		t.Errorf("grep output = %q", errs)
	}
	// The anchored pattern must not match call sites or comments.
	if strings.Contains(errs, "ctrl.c") {
		t.Errorf("anchored grep matched too much: %q", errs)
	}
}
