package world

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/srvnet"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrencyMatrix is the whole-system check that the core really
// is off the critical path: while a slow external command streams its
// output, the file interface answers locally and over the wire, the
// process table reports the command, and Kill terminates it — all
// without the event loop blocking, and without leaking goroutines.
func TestConcurrencyMatrix(t *testing.T) {
	before := runtime.NumGoroutine()

	w, err := Build(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := srvnet.NewServer(w.FS)
	go srv.Serve(l)
	client, err := srvnet.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	win, err := w.Help.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}

	// A slow command that streams: first chunk immediately, the rest
	// never (until killed).
	w.Help.Start(win, "echo first chunk; sleep 600; echo second chunk")
	waitUntil(t, "first chunk in Errors", func() bool {
		return strings.Contains(w.Help.ErrorsText(), "first chunk\n")
	})

	// Mid-command: output is streaming, not buffered to completion.
	if procs := w.Help.Procs(); len(procs) != 1 || procs[0].State != "running" {
		t.Fatalf("procs mid-command = %+v", procs)
	}
	if got := w.Help.ErrorsText(); strings.Contains(got, "second chunk\n") {
		t.Fatalf("errors = %q, output was not streamed", got)
	}

	// The local file interface answers while the command runs.
	index, err := w.FS.ReadFile(MountRoot + "/index")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(index), "/usr/rob/lib/profile") {
		t.Errorf("index = %q", index)
	}
	procsFile, err := w.FS.ReadFile(MountRoot + "/procs")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(procsFile), "echo first chunk; sleep 600; echo second chunk") ||
		!strings.Contains(string(procsFile), "running") {
		t.Errorf("procs file = %q", procsFile)
	}

	// The remote namespace answers too: the same files over the wire.
	remoteIndex, err := client.ReadFile(MountRoot + "/index")
	if err != nil {
		t.Fatal(err)
	}
	if string(remoteIndex) != string(index) {
		t.Errorf("remote index = %q, local = %q", remoteIndex, index)
	}
	if err := client.WriteFile(MountRoot+"/ctl", []byte("open /usr/rob/src/help/help.c\n")); err != nil {
		t.Fatal(err)
	}
	if w.Help.WindowByName("/usr/rob/src/help/help.c") == nil {
		t.Fatal("remote open did not create a window")
	}

	// The event loop itself is live: a gesture-driven builtin runs to
	// completion while the command sleeps.
	w.Help.Execute(win, "New")

	// Kill terminates the command and the registry drains.
	w.Help.Execute(win, fmt.Sprintf("Kill %d", w.Help.Procs()[0].ID))
	w.Help.WaitIdle()
	if procs := w.Help.Procs(); len(procs) != 0 {
		t.Fatalf("procs after Kill = %+v", procs)
	}
	got := w.Help.ErrorsText()
	if !strings.Contains(got, "killed\n") {
		t.Errorf("errors = %q, want kill report", got)
	}
	if strings.Contains(got, "second chunk\n") {
		t.Errorf("errors = %q, killed command still printed", got)
	}
	procsFile, err = w.FS.ReadFile(MountRoot + "/procs")
	if err != nil {
		t.Fatal(err)
	}
	if len(procsFile) != 0 {
		t.Errorf("procs file after Kill = %q", procsFile)
	}

	client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// No goroutine leaks: the command goroutine, the queue drainer, and
	// the server's connections must all have wound down.
	waitUntil(t, "goroutines to drain", func() bool {
		runtime.Gosched()
		return runtime.NumGoroutine() <= before+2
	})
}
