// Package world constructs the complete environment of the paper's
// session: the help source tree at /usr/rob/src/help (with every source
// coordinate the figures cite), the tool directories /help/edit, /help/cbr,
// /help/db and /help/mail, the helper programs under /bin/help, the
// crashed help process 176153 that Sean's mail reports, the mailbox, and
// the user's profile — then boots a help instance over it all.
package world

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/adb"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/helpfs"
	"repro/internal/mail"
	"repro/internal/proc"
	"repro/internal/shell"
	"repro/internal/userland"
	"repro/internal/vfs"
)

// Paths of the demo world.
const (
	MboxPath  = "/mail/box/rob/mbox"
	MountRoot = "/mnt/help"
	Profile   = "/usr/rob/lib/profile"
)

// World is a fully provisioned help environment.
type World struct {
	FS    *vfs.FS
	Shell *shell.Shell
	Help  *core.Help
	Procs *proc.Table
	Svc   *helpfs.Service
}

// Build provisions the namespace, the substrate services, and a help
// instance on a w x h screen. Call Boot to open the initial windows.
func Build(w, h int) (*World, error) {
	fs := vfs.New()
	sh := shell.New(fs)
	userland.Install(sh)
	cc.Install(sh)

	for _, dir := range []string{
		"/bin/help", "/tmp", "/lib", "/usr/rob/lib", "/usr/rob/tmp",
		"/usr/rob/bin/rc", "/usr/rob/bin/mips",
		"/help/edit", "/help/cbr", "/help/db", "/help/mail",
		"/mail/box/rob", "/sys/src/libc/mips", "/sys/src/libc/port",
		"/net/dk", "/mnt/term/mnt/8.5", "/dev",
	} {
		if err := fs.MkdirAll(dir); err != nil {
			return nil, err
		}
	}
	if err := installSources(fs); err != nil {
		return nil, err
	}
	if err := installLibc(fs); err != nil {
		return nil, err
	}
	if err := installEtc(fs); err != nil {
		return nil, err
	}
	if err := installMbox(fs); err != nil {
		return nil, err
	}

	table, err := installProcs(fs)
	if err != nil {
		return nil, err
	}
	adb.Install(sh, table)
	installCompilers(sh)

	// Ship the tree pre-built: the crashed help binary the demo examines
	// was obviously compiled once, and Figure 12's mk then recompiles
	// only the edited exec.c.
	var mkOut bytes.Buffer
	mkCtx := sh.NewContext(&mkOut, &mkOut)
	mkCtx.Dir = SrcDir
	if status := userland.Mk(mkCtx, []string{"mk"}); status != 0 {
		return nil, fmt.Errorf("world: initial build failed: %s", mkOut.String())
	}

	hlp := core.New(fs, sh, w, h)
	svc, err := helpfs.Attach(hlp, fs, MountRoot)
	if err != nil {
		return nil, err
	}
	if err := installTools(sh); err != nil {
		return nil, err
	}
	if err := mail.Install(sh, MboxPath, MountRoot); err != nil {
		return nil, err
	}
	// Everything outside the event loop — command goroutines, tests,
	// srvnet exports — goes through the serialized namespace view so
	// device handlers always run under the actor lock. The raw fs stays
	// captured above only by setup-time code.
	safe := hlp.SafeFS()
	sh.SetContextFS(safe)
	return &World{FS: safe, Shell: sh, Help: hlp, Procs: table, Svc: svc}, nil
}

// Boot opens the initial screen of Figure 4: the Boot window in the left
// column and the tool files loaded "into the right hand column of its
// initially two-column screen".
func (w *World) Boot() error {
	boot := w.Help.NewWindowIn(0)
	boot.Tag.SetString("help/Boot\tExit")
	boot.Tag.SetClean()

	for _, tool := range []string{
		"/help/edit/stf", "/help/cbr/stf", "/help/db/stf", "/help/mail/stf",
	} {
		win, err := w.Help.OpenFile(tool, "")
		if err != nil {
			return err
		}
		w.Help.MoveWindowToColumn(win, 1)
	}
	w.Help.Render()
	return nil
}

// installLibc writes the two libc sources the crash traceback points into.
func installLibc(fs *vfs.FS) error {
	strchr := `/*
 * strchr for the MIPS: scan words when aligned.
 */
TEXT	strchr(SB), $0
	MOVW	c+4(FP), R4
	MOVW	s+0(FP), R3
	BEQ	R4, _null
	AND	$3, R3, R5
	BNE	R5, _unaligned
_aligned:
	MOVW	$0xff000000, R6
	MOVW	$0x00ff0000, R7
_loop:
	/* fetch the next word of the string */
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	NOOP
	MOVW	0(R3), R5
	BEQ	R5, _out
	JMP	_loop
_out:
	RET
`
	if err := fs.WriteFile("/sys/src/libc/mips/strchr.s", []byte(strchr)); err != nil {
		return err
	}
	strlen := `#include <u.h>
#include <libc.h>

long
strlen(char *s)
{
	return strchr(s, 0) - s;
}
`
	return fs.WriteFile("/sys/src/libc/port/strlen.c", []byte(strlen))
}

// installEtc writes the profile of Figure 1 and the library files.
func installEtc(fs *vfs.FS) error {
	profile := `bind -e $home/tmp /tmp
bind -a $home/bin/rc /bin
bind -a $home/bin/$cputype /bin
fn x { if(! ~ $#* 0) $* }
switch($service){
case terminal
	bind -a /net/dk /net
	prompt=('% ' '	')
	site=plan9
case cpu
	bind -a /net/dk /net
	bind -b /mnt/term/mnt/8.5 /dev
	news
}
fortune
`
	if err := fs.WriteFile(Profile, []byte(profile)); err != nil {
		return err
	}
	if err := fs.WriteFile("/lib/fortunes",
		[]byte("Simplicity does not precede complexity, but follows it.\n")); err != nil {
		return err
	}
	return fs.WriteFile("/lib/news", []byte("help file server now at /mnt/help\n"))
}

// installMbox writes the seven-message mailbox of Figure 5. Sean's report
// quotes the exact crash banner of process 176153.
func installMbox(fs *vfs.FS) error {
	msgs := []mail.Message{
		{From: "chk@alias.com", Date: "Tue Apr 16 19:30 EDT",
			Body: "rob,\nany chance of a help paper preprint?\n"},
		{From: "sean", Date: "Tue Apr 16 19:26 EDT",
			Body: "i tried your new help and got this:\n" +
				"help 176153: user TLB miss (load or fetch) badvaddr=0x0\n" +
				"help 176153: status=0xfb0c pc=0x18df4 sp=0x3f4e8\n"},
		{From: "attunix!rrg", Date: "Tue Apr 16 19:03 EDT 1991",
			Body: "Subject: UNIX in song & verse\n\nRob,\nThe UKUUG are collecting old-time\nverses about UNIX before they\ndisappear from the minds of those\nwho know them.\n"},
		{From: "knight%MRCO.CARLETON.CA@mitvma.mit.edu", Date: "Tue Apr 16 19:01 EDT",
			Body: "please add me to the sam mailing list\n"},
		{From: "deutsch%PARCPLACE.COM@mitvma.mit.edu", Date: "Tue Apr 16 18:54 EDT",
			Body: "re: window system performance\n"},
		{From: "howard", Date: "Tue Apr 16 15:02 EDT",
			Body: "lunch tomorrow?\n"},
		{From: "deutsch%PARCPLACE.COM@mitvma.mit.edu", Date: "Tue Apr 16 12:52 EDT",
			Body: "window system performance numbers attached\n"},
	}
	return fs.WriteFile(MboxPath, []byte(mail.FormatMbox(msgs)))
}

// installProcs builds the process table with the crashed help 176153,
// carrying the exact stack of Figure 7, and mounts /proc.
func installProcs(fs *vfs.FS) (*proc.Table, error) {
	table := proc.NewTable()
	table.Add(&proc.Proc{PID: 1, Cmd: "init", State: proc.StateSleep})
	table.Add(&proc.Proc{PID: 92, Cmd: "rc", State: proc.StateSleep})
	crashed := table.Add(&proc.Proc{PID: 176153, Cmd: "help", SrcDir: SrcDir})
	crashed.Crash(
		proc.Fault{
			Note:  "user TLB miss (load or fetch)",
			File:  "/sys/src/libc/mips/strchr.s",
			Line:  34,
			Func:  "strchr",
			Off:   0x68,
			Instr: "MOVW 0(R3),R5",
		},
		proc.Regs{PC: 0x18df4, SP: 0x3f4e8, Status: 0xfb0c, BadVAddr: 0},
		paperStack(),
	)
	if err := table.Mount(fs); err != nil {
		return nil, fmt.Errorf("world: mounting /proc: %w", err)
	}
	return table, nil
}

// paperStack reproduces Figure 7's traceback frame by frame.
func paperStack() []proc.Frame {
	v := func(name string, val uint64) proc.Var { return proc.Var{Name: name, Value: val} }
	return []proc.Frame{
		{Func: "strchr", Args: []proc.Var{v("c", 0x3c), v("s", 0)},
			CallerSym: "strlen", CallerOff: 0x1c,
			File: "/sys/src/libc/port/strlen.c", Line: 7},
		{Func: "strlen", Args: []proc.Var{v("s", 0)},
			CallerSym: "textinsert", CallerOff: 0x30,
			File: "text.c", Line: 32},
		{Func: "textinsert",
			Args:      []proc.Var{v("sel", 1), v("t", 0x40e60), v("s", 0), v("q0", 0xd), v("full", 1)},
			CallerSym: "errs", CallerOff: 0xe8,
			File: "errs.c", Line: 34,
			Locals: []proc.Var{v("n", 0x3d7cc)}},
		{Func: "errs", Args: []proc.Var{v("s", 0)},
			CallerSym: "Xdie2", CallerOff: 0x14,
			File: "exec.c", Line: 252,
			Locals: []proc.Var{v("p", 0x40d88)}},
		{Func: "Xdie2",
			CallerSym: "lookup", CallerOff: 0xc4,
			File: "exec.c", Line: 101},
		{Func: "lookup", Args: []proc.Var{v("s", 0x40be8)},
			CallerSym: "execute", CallerOff: 0x50,
			File: "exec.c", Line: 207,
			Locals: []proc.Var{v("i", 0x1f), v("n", 0x4c5bf)}},
		{Func: "execute", Args: []proc.Var{v("t", 0x3ebbc), v("p0", 2), v("p1", 2)},
			CallerSym: "control", CallerOff: 0x430,
			File: "ctrl.c", Line: 331},
		{Func: "control",
			CallerSym: "control", CallerOff: 0,
			File: "ctrl.c", Line: 320,
			Locals: []proc.Var{
				v("t", 0x3ebbc), v("op", 0), v("n", 0x10), v("p", 0x10),
				v("dclick", 0x10), v("p0", 2), v("obut", 0),
			}},
	}
}

// installCompilers registers the Plan 9 compiler drivers the mkfile runs:
// vc compiles foo.c to foo.v (object text derived from the source so
// rebuilds are observable), vl links objects into v.out.
func installCompilers(sh *shell.Shell) {
	sh.Register("vc", func(ctx *shell.Context, args []string) int {
		status := 0
		for _, a := range args[1:] {
			if strings.HasPrefix(a, "-") || !strings.HasSuffix(a, ".c") {
				continue
			}
			src := a
			if !strings.HasPrefix(src, "/") {
				src = vfs.Clean(ctx.Dir + "/" + src)
			}
			data, err := ctx.FS.ReadFile(src)
			if err != nil {
				ctx.Errorf("vc: %v", err)
				status = 1
				continue
			}
			obj := strings.TrimSuffix(src, ".c") + ".v"
			body := fmt.Sprintf("object %s (%d bytes of source)\n", a, len(data))
			if err := ctx.FS.WriteFile(obj, []byte(body)); err != nil {
				ctx.Errorf("vc: %v", err)
				status = 1
			}
		}
		return status
	})
	sh.Register("vl", func(ctx *shell.Context, args []string) int {
		var objs []string
		for _, a := range args[1:] {
			if strings.HasPrefix(a, "-") || !strings.HasSuffix(a, ".v") {
				continue
			}
			objs = append(objs, a)
		}
		var b strings.Builder
		b.WriteString("v.out: linked from " + strings.Join(objs, " ") + "\n")
		for _, o := range objs {
			p := o
			if !strings.HasPrefix(p, "/") {
				p = vfs.Clean(ctx.Dir + "/" + p)
			}
			data, err := ctx.FS.ReadFile(p)
			if err != nil {
				ctx.Errorf("vl: %v", err)
				return 1
			}
			b.Write(data)
		}
		out := vfs.Clean(ctx.Dir + "/v.out")
		if err := ctx.FS.WriteFile(out, []byte(b.String())); err != nil {
			ctx.Errorf("vl: %v", err)
			return 1
		}
		return 0
	})
}

// installTools writes the tool files of Figure 4 and the scripts behind
// them, plus the /bin/help helper programs (parse, sel, buf) that let a
// dozen-line script become a browser command.
func installTools(sh *shell.Shell) error {
	fs := sh.FS()
	// Tool files may already be provided by a sealed shared namespace
	// (the multi-session daemon grafts one template /help into every
	// session); then only the per-shell program registrations matter.
	write := func(p string, data []byte) error {
		if fs.Exists(p) {
			return nil
		}
		return fs.WriteFile(p, data)
	}

	// The edit tool: builtins listed as plain text; executing any word
	// runs the built-in of that name.
	if err := write("/help/edit/stf", []byte(
		"Open\nPattern \"\nText ' '\nCut Paste Snarf\nWrite New\nUndo Redo\nSend Clone!\n")); err != nil {
		return err
	}
	// The C browser tool. godecl is the paper's planned refinement of
	// decl: it opens the declaration directly ("a future change to help
	// will be to close this loop so the Open operation also happens
	// automatically").
	if err := write("/help/cbr/stf", []byte(
		"Open mk src decl godecl uses *.c\n")); err != nil {
		return err
	}
	// The debugger tool.
	if err := write("/help/db/stf", []byte(
		"ps pc regs broke\nstack kstack nextkstack\n")); err != nil {
		return err
	}

	// help/parse: examines $helpsel and emits variable assignments for
	// eval, exactly the paper's "help/parse ... establishes another set
	// of environment variables, file, id, and line, describing what the
	// user is pointing at" — plus dir and the dir's source list, which
	// the original got from its build context.
	if err := sh.RegisterProgram("/bin/help/parse", parseProgram); err != nil {
		return err
	}
	// help/sel: prints the selected text (or the word at the selection).
	if err := sh.RegisterProgram("/bin/help/sel", selProgram); err != nil {
		return err
	}
	// help/buf: buffers stdin to stdout, keeping pipelines to window
	// files from interleaving.
	if err := sh.RegisterProgram("/bin/help/buf", bufProgram); err != nil {
		return err
	}
	// help/rcc: the stripped compiler, reachable by the path the paper's
	// scripts use; it forwards to the rcc builtin from the cc package.
	if err := sh.RegisterProgram("/bin/help/rcc", func(ctx *shell.Context, args []string) int {
		return ctx.Sh.RunCommand(ctx, append([]string{"rcc"}, args[1:]...))
	}); err != nil {
		return err
	}

	// The C browser scripts, each following the decl script in the paper:
	// parse the selection, make a window, run the stripped compiler.
	declScript := `eval ` + "`" + `{help/parse}
x=` + "`" + `{cat /mnt/help/new/ctl}
echo name $dir/decl > /mnt/help/$x/ctl
cpp $cppflags $dir/$file |
help/rcc -w -g -d -D$dir -i$id -n$line -f$file $files |
sed 1q > /mnt/help/$x/bodyapp
`
	if err := write("/help/cbr/decl", []byte(declScript)); err != nil {
		return err
	}
	usesScript := `eval ` + "`" + `{help/parse}
x=` + "`" + `{cat /mnt/help/new/ctl}
echo name $dir/uses > /mnt/help/$x/ctl
cpp $cppflags $dir/$file |
help/rcc -w -g -u -D$dir -i$id -n$line -f$file $files > /mnt/help/$x/bodyapp
`
	if err := write("/help/cbr/uses", []byte(usesScript)); err != nil {
		return err
	}
	srcScript := `eval ` + "`" + `{help/parse}
x=` + "`" + `{cat /mnt/help/new/ctl}
echo name $dir/src > /mnt/help/$x/ctl
help/rcc -w -g -s -D$dir -i$id $files > /mnt/help/$x/bodyapp
`
	if err := write("/help/cbr/src", []byte(srcScript)); err != nil {
		return err
	}
	godeclScript := `eval ` + "`" + `{help/parse}
coord=` + "`" + `{cpp $cppflags $dir/$file | help/rcc -w -g -d -D$dir -i$id -n$line -f$file $files | sed 1q}
echo open $dir/$coord > /mnt/help/ctl
`
	if err := write("/help/cbr/godecl", []byte(godeclScript)); err != nil {
		return err
	}
	mkScript := `eval ` + "`" + `{help/parse}
x=` + "`" + `{cat /mnt/help/new/ctl}
echo name $dir/mk > /mnt/help/$x/ctl
help/mkin $dir > /mnt/help/$x/bodyapp
`
	if err := write("/help/cbr/mk", []byte(mkScript)); err != nil {
		return err
	}
	// help/mkin dir: run mk with the named directory as context.
	if err := sh.RegisterProgram("/bin/help/mkin", func(ctx *shell.Context, args []string) int {
		if len(args) < 2 {
			ctx.Errorf("usage: help/mkin dir [target]")
			return 1
		}
		sub := ctx.Clone()
		sub.Dir = args[1]
		return userland.Mk(sub, append([]string{"mk"}, args[2:]...))
	}); err != nil {
		return err
	}

	// The debugger scripts: "the commands in /help/db package the most
	// important functions of adb as easy-to-use operations."
	dbWindowed := func(name, req string) string {
		return `pid=` + "`" + `{help/sel}
if(~ $#pid 0) pid=$1
x=` + "`" + `{cat /mnt/help/new/ctl}
srcdir=` + "`" + `{adb $pid src}
echo tag $srcdir/'	'$pid' ` + name + `	Close!' > /mnt/help/$x/ctl
adb $pid '` + req + `' > /mnt/help/$x/bodyapp
`
	}
	if err := write("/help/db/stack", []byte(dbWindowed("stack", "$c"))); err != nil {
		return err
	}
	if err := write("/help/db/kstack", []byte(dbWindowed("kstack", "$c"))); err != nil {
		return err
	}
	if err := write("/help/db/regs", []byte(dbWindowed("regs", "$r"))); err != nil {
		return err
	}
	if err := write("/help/db/pc", []byte(dbWindowed("pc", "$p"))); err != nil {
		return err
	}
	if err := write("/help/db/nextkstack", []byte("broke | sed 1q\n")); err != nil {
		return err
	}
	// ps and broke are adb-table builtins already; the script names just
	// forward so the words in the stf file resolve in the tool directory.
	if err := write("/help/db/ps", []byte("ps\n")); err != nil {
		return err
	}
	return write("/help/db/broke", []byte("broke\n"))
}
