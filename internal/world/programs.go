package world

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/helptool"
	"repro/internal/shell"
	"repro/internal/vfs"
)

// parseProgram is /bin/help/parse: it examines $helpsel and prints shell
// assignments describing what the user is pointing at, for consumption by
// "eval `{help/parse}". Output:
//
//	file=exec.c id=n line=213 dir=/usr/rob/src/help files=(dat.h ... xtrn.c)
//
// file is the window's file name relative to dir; id is the selected text
// (a null selection expands to the surrounding identifier); line is the
// 1-based line of the selection; files lists the C sources and headers in
// dir, the browser's input.
func parseProgram(ctx *shell.Context, args []string) int {
	sel, err := helptool.ParseHelpsel(ctx)
	if err != nil {
		ctx.Errorf("%v", err)
		return 1
	}
	name, err := helptool.TagFileName(ctx, helptool.DefaultRoot, sel.Win)
	if err != nil {
		ctx.Errorf("help/parse: %v", err)
		return 1
	}
	body, err := helptool.ReadBody(ctx, helptool.DefaultRoot, sel.Win)
	if err != nil {
		ctx.Errorf("help/parse: %v", err)
		return 1
	}
	dir, file := splitDir(name)
	line, _ := helptool.LineAt(body, sel.Q0)
	id := selectedText(body, sel)

	var files []string
	if ents, err := ctx.FS.ReadDir(dir); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name, ".c") || strings.HasSuffix(e.Name, ".h") {
				files = append(files, e.Name)
			}
		}
	}
	sort.Strings(files)
	fmt.Fprintf(ctx.Stdout, "file=%s id=%s line=%d dir=%s files=(%s)\n",
		file, id, line, dir, strings.Join(files, " "))
	return 0
}

// splitDir splits a window file name into its directory context and the
// relative file name. A directory window is its own context.
func splitDir(name string) (dir, file string) {
	if name == "" {
		return "/", ""
	}
	if strings.HasSuffix(name, "/") {
		return vfs.Clean(name), ""
	}
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return vfs.Clean(name[:i+1]), name[i+1:]
	}
	return "/", name
}

// selectedText returns the selection's text, expanding a null selection to
// the surrounding identifier — the paper's automation rule applied on the
// application side.
func selectedText(body string, sel helptool.Sel) string {
	if sel.Q1 > sel.Q0 {
		runes := []rune(body)
		q0, q1 := sel.Q0, sel.Q1
		if q0 > len(runes) {
			q0 = len(runes)
		}
		if q1 > len(runes) {
			q1 = len(runes)
		}
		return string(runes[q0:q1])
	}
	return helptool.WordAt(body, sel.Q0)
}

// selProgram is /bin/help/sel: it prints the selected text (expanding a
// null selection to the surrounding word), the one-line helper the
// debugger scripts use to pick up the process number the user points at.
func selProgram(ctx *shell.Context, args []string) int {
	sel, body, err := helptool.SelWindowBody(ctx, helptool.DefaultRoot)
	if err != nil {
		ctx.Errorf("%v", err)
		return 1
	}
	s := selectedText(body, sel)
	if s == "" {
		return 1
	}
	fmt.Fprintln(ctx.Stdout, s)
	return 0
}

// bufProgram is /bin/help/buf: it copies standard input to standard
// output in one gulp, so pipelines writing window files deliver their
// text in a single write.
func bufProgram(ctx *shell.Context, args []string) int {
	data, err := io.ReadAll(ctx.Stdin)
	if err != nil {
		ctx.Errorf("help/buf: %v", err)
		return 1
	}
	ctx.Stdout.Write(data)
	return 0
}
