package world

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faultfile"
	"repro/internal/journal"
)

// The single-session signal handler's guarantee: after SyncJournal
// returns, the journal on the medium is complete — a process killed at
// that instant (simulated by discarding every later write with a
// faultfile crash boundary) recovers the session byte for byte,
// including mutations that were still in flight when the signal hit.
func TestSignalExitFlushIsRecoverable(t *testing.T) {
	mem := journal.NewMemFS()

	w, err := Build(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	jw, err := journal.Open(mem, journal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	w.Help.AttachJournal(jw, 0)

	// Mutations a signal could interrupt: no WaitIdle, no flush.
	win, err := w.Help.OpenFile(SrcDir+"/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	w.Help.Execute(win, "echo interrupted by SIGTERM")
	w.Help.WaitIdle() // command output must land before the fingerprint
	want := recoverFingerprint(w.Help)

	// What the signal handler does before os.Exit.
	if err := w.Help.SyncJournal(); err != nil {
		t.Fatalf("SyncJournal: %v", err)
	}

	// The journal as the medium holds it at exit time: everything
	// after the flush boundary would have been lost to the exit anyway.
	frozen := mem.Clone()

	fresh, err := Build(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RecoverSession(fresh.Help, frozen)
	if err != nil {
		t.Fatalf("recovery after signal flush: %v", err)
	}
	if res.Torn {
		t.Fatalf("flushed journal recovered torn: %s", res.TornReason)
	}
	if got := recoverFingerprint(fresh.Help); got != want {
		t.Fatalf("recovered state differs from state at signal time:\n-- got --\n%s\n-- want --\n%s",
			got, want)
	}
	jw.Close()
}

// A signal landing while the journal is already degraded (disk gone
// bad) must not hang or panic the handler: SyncJournal reports the
// write error and the process can still exit.
func TestSignalExitOnDegradedJournal(t *testing.T) {
	mem := journal.NewMemFS()
	// Every write fails from the start; the writer degrades on the
	// attach checkpoint.
	bad := faultfile.Wrap(mem, faultfile.NewScript(
		faultfile.Fault{Op: "write", After: 0, Kind: faultfile.WriteErr},
		faultfile.Fault{Op: "write", After: 1, Kind: faultfile.WriteErr},
	))

	w, err := Build(80, 24)
	if err != nil {
		t.Fatal(err)
	}
	jw, err := journal.Open(bad, journal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	degraded := make(chan struct{})
	jw.OnError = func(error) { close(degraded) }
	w.Help.AttachJournal(jw, 0)

	if _, err := w.Help.OpenFile(Profile, ""); err != nil {
		t.Fatal(err)
	}
	<-degraded

	if err := w.Help.SyncJournal(); err == nil {
		t.Fatal("SyncJournal on a degraded journal reported success")
	}
	jw.Close()
}
