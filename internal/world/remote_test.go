package world

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/srvnet"
)

// TestRemoteDegradationReachesErrorsWindow is the graceful-degradation
// flow of examples/remote: a reconnecting client drives help over the
// wire; when the CPU server dies, the client degrades with a typed
// error and the failure is reported in help's Errors window instead of
// freezing the UI.
func TestRemoteDegradationReachesErrorsWindow(t *testing.T) {
	w, err := Build(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := srvnet.NewServer(w.FS)
	go srv.Serve(l)

	rc := srvnet.NewReconnectingClient(l.Addr().String())
	rc.OpTimeout = 100 * time.Millisecond
	rc.BackoffBase = time.Millisecond
	rc.BackoffCap = 10 * time.Millisecond
	rc.MaxRetries = 2
	// The wiring of examples/remote: client health lands in the Errors
	// window through core's fault reporting.
	rc.OnStateChange = func(s srvnet.State, err error) {
		w.Help.ReportFault("remote ("+s.String()+")", err)
	}
	defer rc.Close()

	// Healthy: drive the UI over the wire, as in the paper's scenario.
	data, err := rc.ReadFile(MountRoot + "/new/ctl")
	if err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(string(data))
	if err := rc.WriteFile(MountRoot+"/"+id+"/ctl", []byte("name /remote/x\n")); err != nil {
		t.Fatal(err)
	}
	if w.Help.WindowByName("/remote/x") == nil {
		t.Fatal("remote window not created")
	}

	// The CPU server dies.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// The client degrades instead of hanging...
	start := time.Now()
	_, err = rc.ReadFile(MountRoot + "/index")
	if !errors.Is(err, srvnet.ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("degradation took %v", elapsed)
	}
	// ...and the degraded state is visible in the Errors window.
	errs := w.Help.Errors().Body.String()
	if !strings.Contains(errs, "remote (degraded)") ||
		!strings.Contains(errs, "degraded") {
		t.Errorf("Errors window = %q", errs)
	}
}
