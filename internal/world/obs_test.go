package world

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/srvnet"
)

// TestObserveScriptReadsInstruments is the acceptance demonstration for
// the observability layer: a plain shell script — the checked-in
// examples/observe/observe.rc, no Go, no metrics API — reads operation
// counts, a latency histogram, and the span trace purely through file
// reads on /mnt/help.
func TestObserveScriptReadsInstruments(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	h := w.Help

	// Generate activity on every instrumented layer: a file open (body
	// reads), an executed command (exec span + histogram), typed text,
	// and renders.
	if _, err := h.OpenFile(Profile, ""); err != nil {
		t.Fatal(err)
	}
	scratch := h.NewWindowIn(0)
	scratch.Body.SetString("echo measured")
	h.Render()
	from, _ := h.FindBody(scratch, "echo")
	to, _ := h.FindBody(scratch, "measured")
	to.X += len("measured")
	h.HandleAll(event.Sweep(event.Middle, from, to))
	h.HandleAll(event.Type("x"))
	h.Render()

	script, err := os.ReadFile("../../examples/observe/observe.rc")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	if status := w.Shell.Run(ctx, string(script)); status != 0 {
		t.Fatalf("observe.rc status=%d\n%s", status, out.String())
	}
	got := out.String()

	// Op counts from the stats file: every layer reports.
	for _, want := range []string{
		"core.gestures", "core.renders", "core.exec.external",
		"core.presses", "core.keystrokes",
		"helpfs.body.opens", "helpfs.body.reads", "helpfs.ctl.writes",
		"vfs.lookup",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output missing %q", want)
		}
	}
	// The render histogram: bucket lines in the le_us scheme.
	if !strings.Contains(got, "== render histogram ==") ||
		!strings.Contains(got, "le_us") ||
		!strings.Contains(got, "count") {
		t.Errorf("histogram section missing or empty:\n%s", got)
	}
	// The trace: at least the exec span for "echo measured".
	trace := got[strings.Index(got, "== trace =="):]
	if !strings.Contains(trace, "exec") {
		t.Errorf("trace section has no exec span:\n%s", trace)
	}
	if t.Failed() {
		t.Logf("full output:\n%s", got)
	}
}

// TestFaultsLandInTrace wires srvnet's fault reporting through the span
// log: when the remote server dies and the reconnecting client degrades,
// the state transitions and the reported fault must be readable as span
// lines in /mnt/help/trace — the post-mortem is a file, like everything
// else.
func TestFaultsLandInTrace(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := srvnet.NewServer(w.FS)
	go srv.Serve(l)

	rc := srvnet.NewReconnectingClient(l.Addr().String())
	rc.OpTimeout = 100 * time.Millisecond
	rc.BackoffBase = time.Millisecond
	rc.BackoffCap = 10 * time.Millisecond
	rc.MaxRetries = 2
	rc.Obs = w.Help.Obs
	rc.OnStateChange = func(s srvnet.State, err error) {
		w.Help.ReportFault("remote ("+s.String()+")", err)
	}
	defer rc.Close()

	// Healthy traffic first, so the per-RPC histogram has samples.
	if _, err := rc.ReadFile(MountRoot + "/index"); err != nil {
		t.Fatal(err)
	}

	// The server dies; the client degrades.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := rc.ReadFile(MountRoot + "/index"); !errors.Is(err, srvnet.ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}

	// The whole story is in the trace file: the state machine's
	// transitions and the fault core reported, as span lines.
	data, err := w.FS.ReadFile(MountRoot + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	trace := string(data)
	for _, want := range []string{"srvnet.state", "degraded", "fault", "remote (degraded)"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}

	// The per-RPC histograms were created after attach; a resync makes
	// them readable as files too.
	if err := w.Svc.SyncHistograms(); err != nil {
		t.Fatal(err)
	}
	histo, err := w.FS.ReadFile(MountRoot + "/histo/srvnet.read")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(histo), "count") {
		t.Errorf("srvnet.read histogram = %q", histo)
	}

	// Degradation counters moved.
	stats, err := w.FS.ReadFile(MountRoot + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stats), "srvnet.degraded 1") {
		t.Errorf("stats missing srvnet.degraded 1:\n%s", stats)
	}
}

// TestMetricsConcurrentWithEventLoop reads Metrics and the stats
// registry from other goroutines while the event loop runs — the
// situation of a remote process catting /mnt/help/stats mid-session.
// Under -race this pins the satellite fix: interaction counters are
// atomics, not plain ints.
func TestMetricsConcurrentWithEventLoop(t *testing.T) {
	w := build(t)
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	h := w.Help

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := h.Metrics()
				if m.Presses < 0 || m.Keystrokes < 0 {
					t.Error("negative metrics")
					return
				}
				_ = h.Obs.StatsText()
			}
		}()
	}

	scratch := h.NewWindowIn(0)
	scratch.Body.SetString("date")
	h.Render()
	for i := 0; i < 25; i++ {
		p, ok := h.FindBody(scratch, "date")
		if !ok {
			t.Fatal("date not visible")
		}
		h.HandleAll(event.Click(event.Middle, p))
		h.HandleAll(event.Type("x"))
		h.Render()
	}
	close(stop)
	wg.Wait()

	m := h.Metrics()
	if m.Presses == 0 || m.Keystrokes == 0 || m.Commands == 0 {
		t.Errorf("metrics did not advance: %+v", m)
	}
}
