package world

import (
	"fmt"
	"strings"

	"repro/internal/vfs"
)

// srcBuilder assembles a source file line by line with padding so that the
// coordinates the paper's figures rely on land exactly: dat.h:136 declares
// the global n, help.c:35 initializes it, exec.c:213 is Xdie1's fatal
// clear, exec.c:252 is Xdie2's errs(n) call, text.c:32 is the strlen call
// that crashed, and so on.
type srcBuilder struct {
	lines []string
}

func (b *srcBuilder) add(lines ...string) {
	b.lines = append(b.lines, lines...)
}

// padTo appends filler comment lines until the next added line will be
// the given 1-based line number.
func (b *srcBuilder) padTo(target int) {
	for len(b.lines) < target-1 {
		b.lines = append(b.lines, fmt.Sprintf("/* %d */", len(b.lines)+1))
	}
	if len(b.lines) != target-1 {
		panic(fmt.Sprintf("world: padTo(%d) but already at line %d", target, len(b.lines)+1))
	}
}

func (b *srcBuilder) String() string {
	return strings.Join(b.lines, "\n") + "\n"
}

// SrcDir is where the help source tree lives, as in the paper.
const SrcDir = "/usr/rob/src/help"

// sourceFiles returns the complete help source tree, keyed by file name.
func sourceFiles() map[string]string {
	return map[string]string{
		"dat.h":  datH(),
		"fns.h":  fnsH(),
		"help.c": helpC(),
		"exec.c": execC(),
		"text.c": textC(),
		"errs.c": errsC(),
		"ctrl.c": ctrlC(),
		"clik.c": clikC(),
		"dat.c":  datC(),
		"file.c": fileC(),
		"page.c": pageC(),
		"pick.c": pickC(),
		"proc.c": procC(),
		"scrl.c": scrlC(),
		"util.c": utilC(),
		"xtrn.c": xtrnC(),
		"mkfile": mkfileText(),
	}
}

// installSources writes the tree under SrcDir.
func installSources(fs *vfs.FS) error {
	if err := fs.MkdirAll(SrcDir); err != nil {
		return err
	}
	for name, content := range sourceFiles() {
		if err := fs.WriteFile(SrcDir+"/"+name, []byte(content)); err != nil {
			return err
		}
	}
	return nil
}

// datH builds dat.h: the typedefs shown in Figure 3 and the global
// declarations, with "uchar *n;" landing on line 136 (Figure 10's
// ./dat.h:136).
func datH() string {
	var b srcBuilder
	b.add(
		"/*",
		" * help: central data structures.",
		" */",
		"",
		"typedef struct Addr\tAddr;",
		"typedef struct Client\tClient;",
		"typedef struct Page\tPage;",
		"typedef struct Proc\tProc;",
		"typedef struct String\tString;",
		"typedef struct Text\tText;",
		"typedef struct Dir\tDir;",
		"typedef struct Rectangle\tRectangle;",
		"",
		"enum",
		"{",
		"\tNCOL\t= 2,",
		"\tTAGH\t= 1,",
		"\tMAXSNARF = 32*1024,",
		"};",
		"",
		"struct Addr",
		"{",
		"\tint\ttype;",
		"\tint\tpos;",
		"\tAddr\t*next;",
		"};",
		"",
		"struct String",
		"{",
		"\tuchar\t*s;",
		"\tint\tn;",
		"\tint\tsize;",
		"};",
		"",
		"struct Text",
		"{",
		"\tuchar\t*base;",
		"\tint\tnchars;",
		"\tint\torg;",
		"\tint\tq0;",
		"\tint\tq1;",
		"\tPage\t*page;",
		"\tText\t*next;",
		"};",
		"",
		"struct Page",
		"{",
		"\tint\tid;",
		"\tText\ttag;",
		"\tText\tbody;",
		"\tPage\t*next;",
		"\tint\ttop;",
		"\tint\thidden;",
		"};",
		"",
		"struct Client",
		"{",
		"\tint\tfid;",
		"\tPage\t*page;",
		"\tClient\t*next;",
		"};",
		"",
		"struct Proc",
		"{",
		"\tint\tpid;",
		"\tchar\t*cmd;",
		"\tProc\t*next;",
		"};",
		"",
		"/*",
		" * Address types for the general location syntax: a line number,",
		" * a character offset, or a literal pattern.",
		" */",
		"enum",
		"{",
		"\tALINE\t= 0,",
		"\tACHAR\t= 1,",
		"\tAPATT\t= 2,",
		"};",
		"",
		"enum",
		"{",
		"\tBLEFT\t= 1,",
		"\tBMIDDLE\t= 2,",
		"\tBRIGHT\t= 4,",
		"};",
		"",
		"enum",
		"{",
		"\tTABWIDTH = 4,",
		"\tMINVIS\t= 3,",
		"\tMAXTAG\t= 256,",
		"};",
	)
	b.padTo(128)
	b.add(
		"/*",
		" * Globals. The error-report string n is shared by the X command",
		" * handlers in exec.c; see errs.c for how it reaches the screen.",
		" */",
		"extern Page\t*pages;",
		"extern Client\t*clients;",
		"extern int\tnpage;",
	)
	// Line 136 exactly: the global the whole debugging demo revolves on.
	b.padTo(136)
	b.add("uchar *n;")
	b.add(
		"extern int\tfn;",
		"extern char\t*snarf;",
	)
	return b.String()
}

// fnsH declares the cross-file functions.
func fnsH() string {
	var b srcBuilder
	b.add(
		"/*",
		" * help: function prototypes.",
		" */",
		"void\terrs(uchar*);",
		"void\ttextinsert(int, Text*, uchar*, int, int);",
		"void\tstrinsert(Text*, uchar*, int, int);",
		"void\tnewsel(Text*);",
		"void\tfrinsert(Text*, uchar**, int);",
		"void\tcontrol(void);",
		"int\texecute(Text*, int, int);",
		"int\tlookup(String*);",
		"Page*\tfindopen1(Page*, char*);",
		"Page*\tnewpage(void);",
		"void\tscrollto(Text*, int);",
		"int\tpick(Text*, int);",
		"void\tutilinit(void);",
		"int\txtrn(String*);",
	)
	return b.String()
}

// helpC builds help.c: the includes of Figure 3 and main() with the
// initialization "n = \"a test string\";" on line 35 (Figure 11's
// help.c:35).
func helpC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"int\tmouseslave;",
		"int\tkbdslave;",
		"int\tfn;",
		"char\t*snarf;",
		"Page\t*pages;",
		"Client\t*clients;",
		"int\tnpage;",
		"",
		"void",
		"usage(void)",
		"{",
		"\tfprint(2, \"usage: help [-f font]\\n\");",
		"\texits(\"usage\");",
		"}",
		"",
	)
	b.padTo(28)
	b.add(
		"void",
		"main(int argc, char *argv[])",
		"{",
		"\tDir d;",
		"\tRectangle r;",
		"",
	)
	// Line 35 exactly: the initialization the uses query surfaces.
	b.padTo(35)
	b.add(
		"\tn = \"a test string\";",
		"\tif(access(\"/mnt/help/new\", 0) == 0){",
		"\t\tfprint(2, \"help: already running\\n\");",
		"\t\texits(\"running\");",
		"\t}",
		"\tfn = 0;",
		"\tARGBEGIN{",
		"\tcase 'f':",
		"\t\tfn = 1;",
		"\t\tbreak;",
		"\tdefault:",
		"\t\tusage();",
		"\t}ARGEND",
		"\tutilinit();",
		"\tcontrol();",
		"}",
	)
	return b.String()
}

// execC builds exec.c: lookup ending at line 101 (the Xdie2 dispatch),
// execute calling lookup at line 207, Xdie1 clearing n at line 213, Xdie2
// passing n to errs at line 252, and findopen1 with its Again: label
// (Figure 9).
func execC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Command dispatch: built-in names bind to X* handlers; anything",
		" * else is passed to the external command machinery in xtrn.c.",
		" */",
		"",
		"void\tXcut(int, char**, Page*, Text*);",
		"void\tXpaste(int, char**, Page*, Text*);",
		"void\tXopen(int, char**, Page*, Text*);",
		"void\tXdie1(int, char**, Page*, Text*);",
		"void\tXdie2(int, char**, Page*, Text*);",
		"",
		"struct Cmd",
		"{",
		"\tchar\t*name;",
		"\tvoid\t(*fn)(int, char**, Page*, Text*);",
		"};",
		"",
		"struct Cmd cmdtab[] = {",
		"\t{ \"Cut\",\tXcut },",
		"\t{ \"Paste\",\tXpaste },",
		"\t{ \"Open\",\tXopen },",
		"\t{ \"Die1\",\tXdie1 },",
		"\t{ \"Die2\",\tXdie2 },",
		"\t{ 0,\t0 },",
		"};",
		"",
		"/*",
		" * Split the executed text into fields, in place.",
		" */",
		"int",
		"fields(uchar *s, uchar **argv, int maxargs)",
		"{",
		"\tint argc;",
		"",
		"\targc = 0;",
		"\twhile(*s && argc < maxargs){",
		"\t\twhile(*s == ' ' || *s == '\\t')",
		"\t\t\t*s++ = 0;",
		"\t\tif(*s == 0)",
		"\t\t\tbreak;",
		"\t\targv[argc] = s;",
		"\t\targc = argc + 1;",
		"\t\twhile(*s && *s != ' ' && *s != '\\t')",
		"\t\t\ts++;",
		"\t}",
		"\treturn argc;",
		"}",
		"",
		"/*",
		" * Is the word a built-in? By convention capitalized commands",
		" * are built-in functions.",
		" */",
		"int",
		"isbuiltin(uchar *s)",
		"{",
		"\tif(*s >= 'A' && *s <= 'Z')",
		"\t\treturn 1;",
		"\treturn 0;",
		"}",
		"",
		"/*",
		" * Window operations end in an exclamation mark and take no",
		" * arguments.",
		" */",
		"int",
		"iswinop(uchar *s)",
		"{",
		"\twhile(*s)",
		"\t\ts++;",
		"\treturn s[-1] == '!';",
		"}",
		"",
	)
	b.padTo(91)
	b.add(
		"int",
		"lookup(String *s)",
		"{",
		"\tstruct Cmd *c;",
		"",
		"\tfor(c = cmdtab; c->name; c++)",
		"\t\tif(strcmp(c->name, (char*)s->s) == 0){",
	)
	// Line 101 is the dispatch call per the stack trace:
	// "Xdie2() called from lookup+0xc4 exec.c:101".
	b.padTo(101)
	b.add(
		"\t\t\tc->fn(0, 0, 0, 0);",
		"\t\t\treturn 1;",
		"\t\t}",
		"\treturn 0;",
		"}",
		"",
		"/*",
		" * The context rules: a command that does not begin with a slash",
		" * runs in the directory taken from the tag line of the window",
		" * containing it; if it cannot be found there, the standard",
		" * directory of program binaries is searched.",
		" */",
		"static char*",
		"dirof(Page *p)",
		"{",
		"\tchar *s;",
		"\tchar *slash;",
		"",
		"\ts = (char*)p->tag.base;",
		"\tslash = 0;",
		"\twhile(*s && *s != ' ' && *s != '\\t'){",
		"\t\tif(*s == '/')",
		"\t\t\tslash = s;",
		"\t\ts++;",
		"\t}",
		"\tif(slash == 0)",
		"\t\treturn \"/\";",
		"\treturn slash;",
		"}",
		"",
		"static int",
		"absolute(char *name)",
		"{",
		"\treturn name[0] == '/';",
		"}",
		"",
		"/*",
		" * Expand a null selection to the word around it; a non-null",
		" * selection is always taken literally.",
		" */",
		"static int",
		"expand(Text *t, int q0, int q1, int *p0, int *p1)",
		"{",
		"\tif(q1 > q0){",
		"\t\t*p0 = q0;",
		"\t\t*p1 = q1;",
		"\t\treturn 0;",
		"\t}",
		"\treturn clickexpand(t, q0, p0, p1);",
		"}",
		"",
		"int\tclickexpand(Text*, int, int*, int*);",
		"",
	)
	b.padTo(195)
	b.add(
		"int",                              // 195
		"execute(Text *t, int p0, int p1)", // 196
		"{",                                // 197
		"\tString cmd;",                    // 198
		"\tint i;",                         // 199
		"\tint n;",                         // 200
		"",                                 // 201
		"\ti = 0;",                         // 202
		"\tn = i;",                         // 203
		"\tcmd.s = t->base + p0;",          // 204
		"\tcmd.n = p1 - p0;",               // 205
		"\tUSED(n);",                       // 206
		"\tif(lookup(&cmd))",               // 207: the call in the trace
		"\t\treturn 1;",                    // 208
		"}",                                // 209
		"void",                             // 210
		"Xdie1(int argc, char *argv[], Page *page, Text *curt)", // 211
		"{",        // 212
		"\tn = 0;", // 213: the fatal clear the uses query uncovers
		"}",        // 214
		"",         // 215
	)
	if got := len(b.lines); got != 215 {
		panic(fmt.Sprintf("exec.c: Xdie1 block ends at line %d, want 215", got))
	}
	b.padTo(249)
	b.add(
		"void",
		"Xdie2(int argc, char *argv[], Page *page, Text *curt)",
		"{",
	)
	// line 252: the read that crashed.
	b.add("\terrs((uchar*)n);")
	b.add(
		"}",
		"",
		"/*",
		" * Exact match",
		" */",
		"Page*",
		"findopen1(Page *p, char *name)",
		"{",
		"\tchar *s;",
		"\tint n;",
		"\tPage *q;",
		"",
		"Again:",
		"\tif(p == 0)",
		"\t\treturn p;",
		"\ts = (char*)p->tag.base;",
		"\tn = p->tag.nchars;",
		"\tif(n > 0 && strncmp(s, name, n) == 0)",
		"\t\treturn p;",
		"\tq = p->next;",
		"\tp = q;",
		"\tgoto Again;",
		"}",
	)
	return b.String()
}

// textC builds text.c: textinsert with the crashing strlen call on line
// 32 (Figure 8), operating on a local n that shadows the global — which
// is exactly why uses shows four coordinates and not five.
func textC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Body text management: insertion, selection, and redisplay.",
		" */",
		"",
		"void",
		"newsel(Text *t)",
		"{",
		"\tt->q1 = t->q0;",
		"}",
		"",
	)
	b.padTo(24)
	b.add(
		"void",
		"textinsert(int sel, Text *t, uchar *s, int q0, int full)",
		"{",
		"\tint n;",
		"\tint p0;",
		"",
		"\tif(sel)",
		"\t\tnewsel(t);",
	)
	// Line 32: "n = strlen((char*)s);" — strlen(s=0x0) is the crash.
	b.padTo(32)
	b.add(
		"\tn = strlen((char*)s);",
		"\tstrinsert(t, s, n, q0);",
		"\tp0 = q0-t->org;",
		"\tif(p0 < 0)",
		"\t\tt->org += n;",
		"\telse if(p0 <= t->nchars)",
		"\t\tfrinsert(t, &s, p0);",
		"\tt->q0 = q0;",
		"\tif(!full)",
		"\t\tscrollto(t, q0);",
		"}",
		"",
		"void",
		"strinsert(Text *t, uchar *s, int count, int q0)",
		"{",
		"\tUSED(s);",
		"\tt->nchars += count;",
		"\tt->q0 = q0 + count;",
		"}",
		"",
		"void",
		"frinsert(Text *t, uchar **s, int p0)",
		"{",
		"\tUSED(s);",
		"\tt->org = p0;",
		"}",
	)
	return b.String()
}

// errsC builds errs.c: the error reporter whose textinsert call at line
// 34 appears in the stack trace ("called from errs+0xe8 errs.c:34").
func errsC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Route diagnostics to the Errors page, creating it on demand.",
		" */",
		"",
		"static Page *errpage;",
		"",
		"static Page*",
		"geterrpage(void)",
		"{",
		"\tif(errpage == 0)",
		"\t\terrpage = newpage();",
		"\treturn errpage;",
		"}",
		"",
	)
	b.padTo(27)
	b.add(
		"void",
		"errs(uchar *s)",
		"{",
		"\tPage *p;",
		"",
		"\tp = geterrpage();",
	)
	b.padTo(34)
	b.add(
		"\ttextinsert(1, &p->body, s, p->body.nchars, 1);",
		"}",
	)
	return b.String()
}

// ctrlC builds ctrl.c: the main event loop, with control's loop head at
// line 320 and the execute call at line 331, matching the stack's
// "execute(t=0x3ebbc,p0=0x2,p1=0x2) called from control+0x430 ctrl.c:331".
func ctrlC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * The control loop: read mouse and keyboard, maintain selections,",
		" * and hand middle-button sweeps to execute().",
		" */",
		"",
		"static int\tobut;",
		"static int\tdclick;",
		"static int\tmx;",
		"static int\tmy;",
		"",
		"/*",
		" * The rules the interface follows: brevity (no wasted gestures),",
		" * no retyping (text on the screen is input), automation (the",
		" * machine fills in the details), defaults (the smallest action",
		" * does the most useful thing).",
		" */",
		"",
		"enum",
		"{",
		"\tSELNONE\t= 0,",
		"\tSELECTING = 1,",
		"\tEXECUTING = 2,",
		"\tDRAGGING = 3,",
		"};",
		"",
		"static int\tmstate;",
		"",
		"/*",
		" * Track a left-button sweep: the selection is the text between",
		" * the point where the button is pressed and where it is released.",
		" */",
		"static void",
		"track(Text *t, int q0)",
		"{",
		"\tt->q0 = q0;",
		"\tt->q1 = q0;",
		"\tmstate = SELECTING;",
		"}",
		"",
		"static void",
		"extend(Text *t, int q)",
		"{",
		"\tif(q < t->q0)",
		"\t\tt->q0 = q;",
		"\telse",
		"\t\tt->q1 = q;",
		"}",
		"",
		"/*",
		" * Chords: while the left button is held, clicking the middle",
		" * executes Cut and clicking the right executes Paste. These are",
		" * the most common editing commands and it is convenient not to",
		" * move the mouse to execute them.",
		" */",
		"static void",
		"chord(Text *t, int buttons)",
		"{",
		"\tif(buttons & BMIDDLE)",
		"\t\tcutsel(t);",
		"\tif(buttons & BRIGHT)",
		"\t\tpastesel(t);",
		"}",
		"",
		"void",
		"cutsel(Text *t)",
		"{",
		"\tint len;",
		"",
		"\tlen = t->q1 - t->q0;",
		"\tif(len <= 0)",
		"\t\treturn;",
		"\tif(len >= MAXSNARF)",
		"\t\tlen = MAXSNARF - 1;",
		"\tmemmove(snarf, t->base + t->q0, len);",
		"\tsnarf[len] = 0;",
		"\tstrdelete(t, t->q0, t->q1);",
		"}",
		"",
		"void",
		"pastesel(Text *t)",
		"{",
		"\tint len;",
		"",
		"\tlen = strlen(snarf);",
		"\tstrdelete(t, t->q0, t->q1);",
		"\tstrinsert(t, (uchar*)snarf, len, t->q0);",
		"}",
		"",
		"void",
		"strdelete(Text *t, int q0, int q1)",
		"{",
		"\tif(q1 <= q0)",
		"\t\treturn;",
		"\tmemmove(t->base + q0, t->base + q1, t->nchars - q1);",
		"\tt->nchars -= q1 - q0;",
		"\tt->q1 = q0;",
		"\tt->q0 = q0;",
		"}",
		"",
		"/*",
		" * The tower of small black squares along the left edge of each",
		" * column: clicking one makes the corresponding window fully",
		" * visible, from the tag to the bottom of the column.",
		" */",
		"static void",
		"tabhit(int y)",
		"{",
		"\tPage *p;",
		"\tint i;",
		"",
		"\ti = 0;",
		"\tfor(p = pages; p; p = p->next){",
		"\t\tif(i == y){",
		"\t\t\treveal(p);",
		"\t\t\treturn;",
		"\t\t}",
		"\t\ti++;",
		"\t}",
		"}",
		"",
		"void",
		"reveal(Page *p)",
		"{",
		"\tPage *q;",
		"",
		"\tp->hidden = 0;",
		"\tfor(q = pages; q; q = q->next)",
		"\t\tif(q != p && q->top >= p->top)",
		"\t\t\tq->hidden = 1;",
		"}",
		"",
		"/*",
		" * Drag a window by its tag with the right button; help then does",
		" * whatever local rearrangement is necessary to drop the window to",
		" * its new location, keeping at least the tag visible or covering",
		" * the window completely.",
		" */",
		"static void",
		"drag(Page *p, int y)",
		"{",
		"\tPage *q;",
		"",
		"\tp->top = y;",
		"\tp->hidden = 0;",
		"\tfor(q = pages; q; q = q->next){",
		"\t\tif(q == p)",
		"\t\t\tcontinue;",
		"\t\tif(q->top == y)",
		"\t\t\tq->top = y + 1;",
		"\t}",
		"}",
		"",
		"/*",
		" * Typing: typed text replaces the selection in the subwindow",
		" * under the mouse. Typing does not execute commands; newline is",
		" * just a character.",
		" */",
		"static void",
		"key(Text *t, int c)",
		"{",
		"\tuchar buf[2];",
		"",
		"\tstrdelete(t, t->q0, t->q1);",
		"\tbuf[0] = c;",
		"\tbuf[1] = 0;",
		"\tstrinsert(t, buf, 1, t->q0);",
		"\tt->q0++;",
		"\tt->q1 = t->q0;",
		"}",
		"",
		"static int",
		"mousehit(int x, int y)",
		"{",
		"\tmx = x;",
		"\tmy = y;",
		"\treturn pick(0, y);",
		"}",
		"",
	)
	b.padTo(310)
	b.add(
		"void",
		"control(void)",
		"{",
		"\tText *t;",
		"\tint op;",
		"\tint n;",
		"\tint p;",
		"\tint p0;",
		"\tint p1;",
		"",
	)
	b.padTo(320)
	b.add(
		"\tfor(;;){",
		"\t\tt = pick(0, 0) ? 0 : 0;",
		"\t\top = 0;",
		"\t\tn = 0;",
		"\t\tp = 0;",
		"\t\tp0 = 0;",
		"\t\tp1 = 0;",
		"\t\tif(op == obut)",
		"\t\t\tcontinue;",
		"\t\tif(dclick)",
		"\t\t\tp1 = p0;",
	)
	b.padTo(331)
	b.add(
		"\t\texecute(t, p0, p1);",
		"\t}",
		"}",
	)
	return b.String()
}

// clikC builds clik.c: click and double-click resolution.
func clikC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Click expansion: a null selection grows to the word around it.",
		" */",
		"",
		"static int",
		"alnum(int c)",
		"{",
		"\tif(c >= 'a' && c <= 'z')",
		"\t\treturn 1;",
		"\tif(c >= 'A' && c <= 'Z')",
		"\t\treturn 1;",
		"\tif(c >= '0' && c <= '9')",
		"\t\treturn 1;",
		"\treturn c == '_';",
		"}",
		"",
		"int",
		"clickexpand(Text *t, int q0, int *p0, int *p1)",
		"{",
		"\tint a;",
		"\tint b;",
		"",
		"\ta = q0;",
		"\tb = q0;",
		"\twhile(a > 0 && alnum(t->base[a-1]))",
		"\t\ta--;",
		"\twhile(b < t->nchars && alnum(t->base[b]))",
		"\t\tb++;",
		"\t*p0 = a;",
		"\t*p1 = b;",
		"\treturn b > a;",
		"}",
	)
	return b.String()
}

// datC builds dat.c: shared tables.
func datC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Shared tables: built-in command names shown in tags, and the",
		" * characters accepted in a file name expansion.",
		" */",
		"",
		"char *tagcmds[] = {",
		"\t\"Close!\",",
		"\t\"Put!\",",
		"\t\"Get!\",",
		"\t0,",
		"};",
		"",
		"char fnamechars[] = \"abcdefghijklmnopqrstuvwxyz\"",
		"\t\"ABCDEFGHIJKLMNOPQRSTUVWXYZ\"",
		"\t\"0123456789._-+/:#\";",
	)
	return b.String()
}

// fileC builds file.c: the string routines window of Figure 1.
func fileC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" *	string routines",
		" */",
		"",
		"String*",
		"strnew(int size)",
		"{",
		"\tString *s;",
		"",
		"\ts = malloc(sizeof(String));",
		"\ts->s = malloc(size);",
		"\ts->n = 0;",
		"\ts->size = size;",
		"\treturn s;",
		"}",
		"",
		"void",
		"strgrow(String *s, int delta)",
		"{",
		"\ts->size += delta;",
		"\ts->s = realloc(s->s, s->size);",
		"}",
		"",
		"void",
		"strfree(String *s)",
		"{",
		"\tfree(s->s);",
		"\tfree(s);",
		"}",
	)
	return b.String()
}

// pageC builds page.c: window creation and the placement heuristic.
func pageC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Page (window) management: creation and automatic placement.",
		" * The rule: tag goes below the lowest visible text; else cover",
		" * half the lowest page; else take the bottom quarter of the",
		" * column, hiding what no longer fits.",
		" */",
		"",
		"Page*",
		"newpage(void)",
		"{",
		"\tPage *p;",
		"",
		"\tp = malloc(sizeof(Page));",
		"\tp->id = ++npage;",
		"\tp->next = pages;",
		"\tp->hidden = 0;",
		"\tpages = p;",
		"\treturn p;",
		"}",
		"",
		"int",
		"lowestused(Page *col)",
		"{",
		"\tPage *p;",
		"\tint low;",
		"",
		"\tlow = 0;",
		"\tfor(p = col; p; p = p->next)",
		"\t\tif(!p->hidden && p->top > low)",
		"\t\t\tlow = p->top;",
		"\treturn low;",
		"}",
	)
	return b.String()
}

// pickC builds pick.c: hit testing.
func pickC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Locate the page and subwindow under the mouse.",
		" */",
		"",
		"int",
		"pick(Text *t, int y)",
		"{",
		"\tPage *p;",
		"",
		"\tUSED(t);",
		"\tfor(p = pages; p; p = p->next){",
		"\t\tif(p->hidden)",
		"\t\t\tcontinue;",
		"\t\tif(y >= p->top)",
		"\t\t\treturn p->id;",
		"\t}",
		"\treturn 0;",
		"}",
	)
	return b.String()
}

// procC builds proc.c: client process bookkeeping.
func procC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Track the processes serving the help file interface.",
		" */",
		"",
		"static Proc *procs;",
		"",
		"void",
		"procadd(int pid, char *cmd)",
		"{",
		"\tProc *p;",
		"",
		"\tp = malloc(sizeof(Proc));",
		"\tp->pid = pid;",
		"\tp->cmd = cmd;",
		"\tp->next = procs;",
		"\tprocs = p;",
		"}",
		"",
		"int",
		"procdead(int pid)",
		"{",
		"\tProc *p;",
		"",
		"\tfor(p = procs; p; p = p->next)",
		"\t\tif(p->pid == pid)",
		"\t\t\treturn 0;",
		"\treturn 1;",
		"}",
	)
	return b.String()
}

// scrlC builds scrl.c: scrolling.
func scrlC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Scrolling: keep the selection visible with a third of the",
		" * window as context above it.",
		" */",
		"",
		"void",
		"scrollto(Text *t, int q)",
		"{",
		"\tint third;",
		"",
		"\tthird = t->nchars/3;",
		"\tif(q < t->org || q > t->org + t->nchars)",
		"\t\tt->org = q - third;",
		"\tif(t->org < 0)",
		"\t\tt->org = 0;",
		"}",
	)
	return b.String()
}

// utilC builds util.c.
func utilC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Small utilities shared across the program.",
		" */",
		"",
		"void",
		"utilinit(void)",
		"{",
		"\tsnarf = malloc(MAXSNARF);",
		"\tsnarf[0] = 0;",
		"}",
		"",
		"int",
		"max(int a, int b)",
		"{",
		"\tif(a > b)",
		"\t\treturn a;",
		"\treturn b;",
		"}",
		"",
		"int",
		"min(int a, int b)",
		"{",
		"\tif(a < b)",
		"\t\treturn a;",
		"\treturn b;",
		"}",
	)
	return b.String()
}

// xtrnC builds xtrn.c: external command execution.
func xtrnC() string {
	var b srcBuilder
	b.add(
		"#include <u.h>",
		"#include <libc.h>",
		"#include <libg.h>",
		"#include <libframe.h>",
		"#include \"dat.h\"",
		"#include \"fns.h\"",
		"",
		"/*",
		" * Run an external command: prepend the window's directory when",
		" * the name is relative, else fall back to /bin; wire standard",
		" * output and error to the Errors page.",
		" */",
		"",
		"int",
		"xtrn(String *cmd)",
		"{",
		"\tchar *dir;",
		"\tchar *name;",
		"",
		"\tname = (char*)cmd->s;",
		"\tdir = \"/\";",
		"\tif(name[0] != '/')",
		"\t\tdir = name;",
		"\tUSED(dir);",
		"\treturn 0;",
		"}",
	)
	return b.String()
}

// mkfileText builds the mkfile whose run appears in Figure 12: editing
// exec.c and executing mk recompiles just exec.v and relinks.
func mkfileText() string {
	objs := []string{
		"help.v", "clik.v", "ctrl.v", "dat.v", "errs.v", "exec.v", "file.v",
		"page.v", "pick.v", "proc.v", "scrl.v", "text.v", "util.v", "xtrn.v",
	}
	var b strings.Builder
	b.WriteString("OFILES=" + strings.Join(objs, " ") + "\n\n")
	b.WriteString("v.out: $OFILES\n")
	b.WriteString("\tvl $OFILES /mips/lib/libframe.a -lg -lregexp -ldmalloc\n\n")
	for _, o := range objs {
		src := strings.TrimSuffix(o, ".v") + ".c"
		b.WriteString(o + ": " + src + " dat.h fns.h\n")
		b.WriteString("\tvc -w " + src + "\n\n")
	}
	return b.String()
}
