// Package adb reproduces the primitive debugger the paper wraps: "this
// pops up a window containing the traceback as reported by adb, a
// primitive debugger, under the auspices of /help/db/stack."
//
// adb operates on the simulated process table. The package exposes both a
// Go API (Stack, PSListing, ...) and an Install function registering the
// adb shell builtin, which the dozen-line /help/db scripts wrap: "Adb has
// a notoriously cryptic input language; the commands in /help/db package
// the most important functions of adb as easy-to-use operations ... while
// hiding the rebarbative syntax."
package adb

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/proc"
	"repro/internal/shell"
)

// Stack renders the symbolized traceback of a process in the format the
// paper's Figure 7 shows: the fault line, the faulting instruction, then
// one line per frame with "called from" coordinates and indented locals.
func Stack(p *proc.Proc) string {
	var b strings.Builder
	if p.Fault != nil {
		note := p.Fault.Note
		note = strings.TrimPrefix(note, "user ")
		fmt.Fprintf(&b, "last exception: %s\n", note)
		fmt.Fprintf(&b, "%s:%d %s+%#x? %s\n",
			p.Fault.File, p.Fault.Line, p.Fault.Func, p.Fault.Off, p.Fault.Instr)
	}
	for _, f := range p.Stack {
		fmt.Fprintf(&b, "%s called from %s+%#x %s:%d\n",
			f.ArgString(), f.CallerSym, f.CallerOff, f.File, f.Line)
		for _, l := range f.Locals {
			fmt.Fprintf(&b, "\t%s = %#x\n", l.Name, l.Value)
		}
	}
	return b.String()
}

// Regs renders the register set.
func Regs(p *proc.Proc) string {
	return fmt.Sprintf("pc\t%#x\nsp\t%#x\nstatus\t%#x\nbadvaddr\t%#x\n",
		p.Regs.PC, p.Regs.SP, p.Regs.Status, p.Regs.BadVAddr)
}

// PC renders the program counter with its symbol, e.g.
// "0x18df4 strchr+0x68".
func PC(p *proc.Proc) string {
	if p.Fault != nil {
		return fmt.Sprintf("%#x %s+%#x\n", p.Regs.PC, p.Fault.Func, p.Fault.Off)
	}
	return fmt.Sprintf("%#x\n", p.Regs.PC)
}

// PSListing renders the process table, one "pid cmd state" line per
// process.
func PSListing(t *proc.Table) string {
	var b strings.Builder
	for _, p := range t.List() {
		fmt.Fprintf(&b, "%8d %-12s %s\n", p.PID, p.Cmd, p.State)
	}
	return b.String()
}

// BrokeListing lists broken processes, the `broke` tool: one pid per line
// so the output can be pointed at with the mouse.
func BrokeListing(t *proc.Table) string {
	var b strings.Builder
	for _, p := range t.Broken() {
		fmt.Fprintf(&b, "%d %s\n", p.PID, p.Cmd)
	}
	return b.String()
}

// Install registers the adb, ps, and broke builtins against the table.
//
// adb usage (deliberately cryptic, as the original):
//
//	adb <pid> $c     stack trace
//	adb <pid> $r     registers
//	adb <pid> $p     program counter
//	adb <pid> src    source directory from the symbol table
func Install(sh *shell.Shell, table *proc.Table) {
	sh.Register("adb", func(ctx *shell.Context, args []string) int {
		if len(args) < 3 {
			ctx.Errorf("usage: adb pid ($c|$r|$p)")
			return 1
		}
		pid, err := strconv.Atoi(args[1])
		if err != nil {
			ctx.Errorf("adb: bad pid %q", args[1])
			return 1
		}
		p := table.Get(pid)
		if p == nil {
			ctx.Errorf("adb: no process %d", pid)
			return 1
		}
		switch args[2] {
		case "$c", "c":
			fmt.Fprint(ctx.Stdout, Stack(p))
		case "$r", "r":
			fmt.Fprint(ctx.Stdout, Regs(p))
		case "$p", "p":
			fmt.Fprint(ctx.Stdout, PC(p))
		case "src":
			// The source directory from the binary's symbol table; the
			// db scripts use it as the traceback window's context.
			fmt.Fprintln(ctx.Stdout, p.SrcDir)
		default:
			ctx.Errorf("adb: unknown request %q", args[2])
			return 1
		}
		return 0
	})
	sh.Register("ps", func(ctx *shell.Context, args []string) int {
		fmt.Fprint(ctx.Stdout, PSListing(table))
		return 0
	})
	sh.Register("broke", func(ctx *shell.Context, args []string) int {
		fmt.Fprint(ctx.Stdout, BrokeListing(table))
		return 0
	})
}
