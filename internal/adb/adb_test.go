package adb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/proc"
	"repro/internal/shell"
	"repro/internal/vfs"
)

// brokenHelp builds the paper's crashed help process 176153.
func brokenHelp() (*proc.Table, *proc.Proc) {
	tb := proc.NewTable()
	p := tb.Add(&proc.Proc{PID: 176153, Cmd: "help"})
	p.Crash(
		proc.Fault{
			Note: "user TLB miss (load or fetch)", File: "/sys/src/libc/mips/strchr.s",
			Line: 34, Func: "strchr", Off: 0x68, Instr: "MOVW 0(R3),R5",
		},
		proc.Regs{PC: 0x18df4, SP: 0x3f4e8, Status: 0xfb0c, BadVAddr: 0},
		[]proc.Frame{
			{Func: "strchr", Args: []proc.Var{{Name: "c", Value: 0x3c}, {Name: "s", Value: 0}},
				CallerSym: "strlen", CallerOff: 0x1c, File: "/sys/src/libc/port/strlen.c", Line: 7},
			{Func: "strlen", Args: []proc.Var{{Name: "s", Value: 0}},
				CallerSym: "textinsert", CallerOff: 0x30, File: "text.c", Line: 32},
			{Func: "textinsert", Args: []proc.Var{{Name: "sel", Value: 1}, {Name: "t", Value: 0x40e60}, {Name: "s", Value: 0}, {Name: "q0", Value: 0xd}, {Name: "full", Value: 1}},
				CallerSym: "errs", CallerOff: 0xe8, File: "errs.c", Line: 34,
				Locals: []proc.Var{{Name: "n", Value: 0x3d7cc}}},
			{Func: "errs", Args: []proc.Var{{Name: "s", Value: 0}},
				CallerSym: "Xdie2", CallerOff: 0x14, File: "exec.c", Line: 252,
				Locals: []proc.Var{{Name: "p", Value: 0x40d88}}},
			{Func: "Xdie2",
				CallerSym: "lookup", CallerOff: 0xc4, File: "exec.c", Line: 101},
		},
	)
	return tb, p
}

func TestStackFormat(t *testing.T) {
	_, p := brokenHelp()
	out := Stack(p)
	wantLines := []string{
		"last exception: TLB miss (load or fetch)",
		"/sys/src/libc/mips/strchr.s:34 strchr+0x68? MOVW 0(R3),R5",
		"strchr(c=0x3c,s=0x0) called from strlen+0x1c /sys/src/libc/port/strlen.c:7",
		"strlen(s=0x0) called from textinsert+0x30 text.c:32",
		"textinsert(sel=0x1,t=0x40e60,s=0x0,q0=0xd,full=0x1) called from errs+0xe8 errs.c:34",
		"\tn = 0x3d7cc",
		"errs(s=0x0) called from Xdie2+0x14 exec.c:252",
		"\tp = 0x40d88",
		"Xdie2() called from lookup+0xc4 exec.c:101",
	}
	got := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("lines = %d, want %d:\n%s", len(got), len(wantLines), out)
	}
	for i, w := range wantLines {
		if got[i] != w {
			t.Errorf("line %d = %q, want %q", i, got[i], w)
		}
	}
}

func TestRegsAndPC(t *testing.T) {
	_, p := brokenHelp()
	regs := Regs(p)
	for _, want := range []string{"pc\t0x18df4", "sp\t0x3f4e8", "status\t0xfb0c", "badvaddr\t0x0"} {
		if !strings.Contains(regs, want) {
			t.Errorf("regs missing %q:\n%s", want, regs)
		}
	}
	if got := PC(p); got != "0x18df4 strchr+0x68\n" {
		t.Errorf("PC = %q", got)
	}
	healthy := &proc.Proc{PID: 1, Cmd: "x", Regs: proc.Regs{PC: 0x1000}}
	if got := PC(healthy); got != "0x1000\n" {
		t.Errorf("healthy PC = %q", got)
	}
}

func TestPSAndBrokeListings(t *testing.T) {
	tb, _ := brokenHelp()
	tb.Add(&proc.Proc{PID: 5, Cmd: "rc"})
	ps := PSListing(tb)
	if !strings.Contains(ps, "176153") || !strings.Contains(ps, "rc") {
		t.Errorf("ps = %q", ps)
	}
	broke := BrokeListing(tb)
	if broke != "176153 help\n" {
		t.Errorf("broke = %q", broke)
	}
}

func TestAdbBuiltin(t *testing.T) {
	tb, _ := brokenHelp()
	fs := vfs.New()
	sh := shell.New(fs)
	Install(sh, tb)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)

	if status := sh.Run(ctx, "adb 176153 '$c'"); status != 0 {
		t.Fatalf("adb status=%d out=%q", status, out.String())
	}
	if !strings.Contains(out.String(), "textinsert(sel=0x1") {
		t.Errorf("stack out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "adb 176153 '$r'")
	if !strings.Contains(out.String(), "pc\t0x18df4") {
		t.Errorf("regs out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "broke")
	if out.String() != "176153 help\n" {
		t.Errorf("broke out=%q", out.String())
	}
	out.Reset()
	sh.Run(ctx, "ps")
	if !strings.Contains(out.String(), "Broken") {
		t.Errorf("ps out=%q", out.String())
	}
}

func TestAdbErrors(t *testing.T) {
	tb := proc.NewTable()
	fs := vfs.New()
	sh := shell.New(fs)
	Install(sh, tb)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "adb"); status == 0 {
		t.Error("adb with no args should fail")
	}
	if status := sh.Run(ctx, "adb notanumber '$c'"); status == 0 {
		t.Error("adb with bad pid should fail")
	}
	if status := sh.Run(ctx, "adb 7 '$c'"); status == 0 {
		t.Error("adb with missing pid should fail")
	}
	if status := sh.Run(ctx, "adb 7 '$z'"); status == 0 {
		t.Error("adb with unknown request should fail")
	}
}

func TestAdbSrcRequest(t *testing.T) {
	tb, p := brokenHelp()
	p.SrcDir = "/usr/rob/src/help"
	fs := vfs.New()
	sh := shell.New(fs)
	Install(sh, tb)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "adb 176153 src"); status != 0 {
		t.Fatalf("adb src: %s", out.String())
	}
	if strings.TrimSpace(out.String()) != "/usr/rob/src/help" {
		t.Errorf("src = %q", out.String())
	}
}
