package event

import (
	"testing"

	"repro/internal/geom"
)

// feed runs events through a machine and collects completed gestures.
func feed(m *Machine, evs []Event) []Gesture {
	var out []Gesture
	for _, e := range evs {
		if e.Mouse == nil {
			continue
		}
		if g, done := m.Put(*e.Mouse); done {
			out = append(out, g)
		}
	}
	return out
}

func TestClickGesture(t *testing.T) {
	var m Machine
	gs := feed(&m, Click(Left, geom.Pt(3, 4)))
	if len(gs) != 1 {
		t.Fatalf("gestures = %d", len(gs))
	}
	g := gs[0]
	if g.Button != Left || g.Start != geom.Pt(3, 4) || g.End != geom.Pt(3, 4) {
		t.Errorf("gesture = %+v", g)
	}
	if !g.IsClick() {
		t.Error("plain click should be IsClick")
	}
	if m.Presses != 1 {
		t.Errorf("Presses = %d", m.Presses)
	}
}

func TestSweepGesture(t *testing.T) {
	var m Machine
	gs := feed(&m, Sweep(Middle, geom.Pt(0, 0), geom.Pt(5, 0)))
	if len(gs) != 1 {
		t.Fatalf("gestures = %d", len(gs))
	}
	g := gs[0]
	if g.Button != Middle || g.Start != geom.Pt(0, 0) || g.End != geom.Pt(5, 0) {
		t.Errorf("gesture = %+v", g)
	}
	if g.IsClick() {
		t.Error("sweep should not be IsClick")
	}
	if m.Presses != 1 {
		t.Errorf("Presses = %d, sweep is one press", m.Presses)
	}
}

func TestCutChord(t *testing.T) {
	var m Machine
	gs := feed(&m, ChordClick(Left, geom.Pt(2, 2), Middle))
	if len(gs) != 1 {
		t.Fatalf("gestures = %d", len(gs))
	}
	g := gs[0]
	if g.Button != Left {
		t.Errorf("primary = %v", ButtonName(g.Button))
	}
	if len(g.Chords) != 1 || g.Chords[0].Button != Middle {
		t.Errorf("chords = %+v", g.Chords)
	}
	if m.Presses != 2 {
		t.Errorf("Presses = %d, want 2 (left + middle)", m.Presses)
	}
}

func TestCutPasteChord(t *testing.T) {
	var m Machine
	gs := feed(&m, ChordClick(Left, geom.Pt(1, 1), Middle, Right))
	g := gs[0]
	if len(g.Chords) != 2 ||
		g.Chords[0].Button != Middle || g.Chords[1].Button != Right {
		t.Errorf("chords = %+v", g.Chords)
	}
	if m.Presses != 3 {
		t.Errorf("Presses = %d", m.Presses)
	}
}

func TestSweepChordHelper(t *testing.T) {
	var m Machine
	gs := feed(&m, SweepChord(Left, geom.Pt(0, 0), geom.Pt(4, 0), Middle))
	g := gs[0]
	if g.Start != geom.Pt(0, 0) || g.End != geom.Pt(4, 0) {
		t.Errorf("sweep = %v..%v", g.Start, g.End)
	}
	if len(g.Chords) != 1 || g.Chords[0].Button != Middle {
		t.Errorf("chords = %+v", g.Chords)
	}
}

func TestDragPath(t *testing.T) {
	var m Machine
	gs := feed(&m, Drag(Right, geom.Pt(0, 0), geom.Pt(10, 10), geom.Pt(5, 5)))
	g := gs[0]
	if g.Button != Right {
		t.Errorf("button = %v", ButtonName(g.Button))
	}
	if g.End != geom.Pt(10, 10) {
		t.Errorf("End = %v", g.End)
	}
	if len(g.Path) == 0 || g.Path[0] != geom.Pt(5, 5) {
		t.Errorf("Path = %v", g.Path)
	}
}

func TestTravelAccounting(t *testing.T) {
	var m Machine
	feed(&m, Click(Left, geom.Pt(0, 0)))
	feed(&m, Click(Left, geom.Pt(3, 4)))
	if m.Travel != 7 {
		t.Errorf("Travel = %d, want 7", m.Travel)
	}
}

func TestNoGestureOnIdleMove(t *testing.T) {
	var m Machine
	_, done := m.Put(Mouse{Pt: geom.Pt(5, 5), Buttons: 0})
	if done {
		t.Error("idle move completed a gesture")
	}
	if m.InProgress() {
		t.Error("idle move started a gesture")
	}
}

func TestGestureInProgress(t *testing.T) {
	var m Machine
	m.Put(Mouse{Pt: geom.Pt(0, 0), Buttons: Left})
	if !m.InProgress() {
		t.Error("press should start a gesture")
	}
	m.Put(Mouse{Pt: geom.Pt(0, 0), Buttons: 0})
	if m.InProgress() {
		t.Error("release should end the gesture")
	}
}

func TestTwoSequentialGestures(t *testing.T) {
	var m Machine
	gs := feed(&m, append(Click(Left, geom.Pt(1, 1)), Click(Middle, geom.Pt(2, 2))...))
	if len(gs) != 2 {
		t.Fatalf("gestures = %d", len(gs))
	}
	if gs[0].Button != Left || gs[1].Button != Middle {
		t.Errorf("buttons = %v, %v", gs[0].Button, gs[1].Button)
	}
	if m.Presses != 2 {
		t.Errorf("Presses = %d", m.Presses)
	}
}

func TestSimultaneousPressCountsChord(t *testing.T) {
	var m Machine
	// Left and middle go down in the same state: left is primary (low bit),
	// middle is a chord.
	m.Put(Mouse{Pt: geom.Pt(0, 0), Buttons: Left | Middle})
	g, done := m.Put(Mouse{Pt: geom.Pt(0, 0), Buttons: 0})
	if !done {
		t.Fatal("gesture should complete")
	}
	if g.Button != Left {
		t.Errorf("primary = %v", ButtonName(g.Button))
	}
	if len(g.Chords) != 1 || g.Chords[0].Button != Middle {
		t.Errorf("chords = %+v", g.Chords)
	}
	if m.Presses != 2 {
		t.Errorf("Presses = %d", m.Presses)
	}
}

func TestTypeHelper(t *testing.T) {
	evs := Type("hi")
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kbd == nil || evs[0].Kbd.R != 'h' || evs[1].Kbd.R != 'i' {
		t.Errorf("events = %+v", evs)
	}
}

func TestStream(t *testing.T) {
	var s Stream
	s.Push(Click(Left, geom.Pt(0, 0)), Type("a"))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	e, ok := s.Next()
	if !ok || e.Mouse == nil {
		t.Errorf("first = %+v, %v", e, ok)
	}
	s.Next()
	e, ok = s.Next()
	if !ok || e.Kbd == nil || e.Kbd.R != 'a' {
		t.Errorf("third = %+v, %v", e, ok)
	}
	if _, ok := s.Next(); ok {
		t.Error("empty stream returned an event")
	}
}

func TestButtonName(t *testing.T) {
	if ButtonName(Left) != "left" || ButtonName(Middle) != "middle" ||
		ButtonName(Right) != "right" || ButtonName(0) != "none" {
		t.Error("ButtonName mismatch")
	}
}

func TestPathTrimsReleasePoint(t *testing.T) {
	var m Machine
	gs := feed(&m, Sweep(Left, geom.Pt(0, 0), geom.Pt(3, 0)))
	if len(gs[0].Path) != 0 {
		t.Errorf("simple sweep Path = %v, want trimmed", gs[0].Path)
	}
}

func BenchmarkMachineClick(b *testing.B) {
	var m Machine
	evs := Click(Left, geom.Pt(10, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range evs {
			m.Put(*e.Mouse)
		}
	}
}

func BenchmarkMachineChord(b *testing.B) {
	var m Machine
	evs := ChordClick(Left, geom.Pt(1, 1), Middle, Right)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range evs {
			m.Put(*e.Mouse)
		}
	}
}
