// Package event models the input devices of the help reproduction: a
// three-button mouse and a keyboard.
//
// Raw mouse states (a button bitmask plus a position) are folded by a
// Machine into Gestures — a press, an optional drag path, optional chorded
// clicks of other buttons while the primary is held, and a release. This is
// exactly the structure help's interface is built from: the left button
// sweeps selections, the middle button sweeps text to execute, the right
// button drags windows, and chording middle or right while the left is held
// invokes Cut and Paste ("the most common editing commands and it is
// convenient not to move the mouse to execute them").
//
// Events can be synthesized by the script helpers (Click, Sweep,
// ChordClick, Type), which is how the repository replays the paper's
// session deterministically and counts interaction cost.
package event

import "repro/internal/geom"

// Mouse button bits.
const (
	Left   = 1 << iota // selects text: the object of an action
	Middle             // selects text defining the action to execute
	Right              // controls the placement of windows
)

// ButtonName returns a human-readable name for a button bit.
func ButtonName(b int) string {
	switch b {
	case Left:
		return "left"
	case Middle:
		return "middle"
	case Right:
		return "right"
	}
	return "none"
}

// Mouse is one raw mouse state: the buttons currently held and the pointer
// position, the same shape a Plan 9 mouse file delivers.
type Mouse struct {
	Pt      geom.Point
	Buttons int
}

// Kbd is one typed rune. In help "typing does not execute commands:
// newline is just a character".
type Kbd struct {
	R rune
}

// Event is a raw input event: either a Mouse state or a Kbd rune.
type Event struct {
	Mouse *Mouse
	Kbd   *Kbd
}

// MouseEvent wraps a raw mouse state as an Event.
func MouseEvent(m Mouse) Event { return Event{Mouse: &m} }

// KbdEvent wraps a typed rune as an Event.
func KbdEvent(r rune) Event { return Event{Kbd: &Kbd{R: r}} }

// Chord is a click of a secondary button while the primary is held.
type Chord struct {
	Button int        // Middle (Cut) or Right (Paste) in help's bindings
	At     geom.Point // pointer position when the chord button went down
}

// Gesture is one complete mouse interaction: primary button press, drag,
// optional chords, and release of all buttons.
type Gesture struct {
	Button int          // the primary (first-pressed) button
	Start  geom.Point   // where the primary button went down
	End    geom.Point   // pointer position at final release
	Path   []geom.Point // intermediate drag positions, if any
	Chords []Chord      // secondary clicks while the primary was held
}

// IsClick reports whether the gesture was a plain click: no drag, no chord.
func (g Gesture) IsClick() bool {
	return g.Start == g.End && len(g.Chords) == 0 && len(g.Path) == 0
}

// Machine folds raw mouse states into gestures.
//
// A gesture begins when any button goes down with no gesture in progress
// and ends when all buttons are released. Additional button presses during
// the gesture are recorded as chords. Presses counts every button-down
// transition ever seen, the "button clicks" currency the paper's prose uses
// ("two button clicks", "a total of three clicks of the middle button").
type Machine struct {
	active  bool
	gesture Gesture
	buttons int // buttons currently held

	// Presses is the cumulative number of button-down transitions.
	Presses int
	// Travel is cumulative pointer movement in cells (Manhattan).
	Travel int

	last    geom.Point
	tracked bool
}

// Put feeds one raw mouse state to the machine. When the state completes a
// gesture, Put returns it with done=true.
func (m *Machine) Put(ms Mouse) (g Gesture, done bool) {
	if m.tracked {
		m.Travel += m.last.Manhattan(ms.Pt)
	}
	m.last, m.tracked = ms.Pt, true

	pressed := ms.Buttons &^ m.buttons
	m.Presses += countBits(pressed)

	if !m.active {
		if ms.Buttons == 0 {
			return Gesture{}, false
		}
		m.active = true
		m.gesture = Gesture{Button: lowBit(ms.Buttons), Start: ms.Pt, End: ms.Pt}
		// Simultaneous extra buttons at gesture start count as chords.
		for _, b := range []int{Left, Middle, Right} {
			if b != m.gesture.Button && ms.Buttons&b != 0 {
				m.gesture.Chords = append(m.gesture.Chords, Chord{Button: b, At: ms.Pt})
			}
		}
		m.buttons = ms.Buttons
		return Gesture{}, false
	}

	// Gesture in progress.
	for _, b := range []int{Left, Middle, Right} {
		if pressed&b != 0 && b != m.gesture.Button {
			m.gesture.Chords = append(m.gesture.Chords, Chord{Button: b, At: ms.Pt})
		}
	}
	if ms.Pt != m.gesture.End {
		m.gesture.Path = append(m.gesture.Path, ms.Pt)
	}
	m.gesture.End = ms.Pt
	m.buttons = ms.Buttons

	if ms.Buttons == 0 {
		m.active = false
		g = m.gesture
		// A pure move to the release point is not a drag; trim the final
		// path entry if it equals End.
		if n := len(g.Path); n > 0 && g.Path[n-1] == g.End {
			g.Path = g.Path[:n-1]
		}
		m.gesture = Gesture{}
		return g, true
	}
	return Gesture{}, false
}

// InProgress reports whether a gesture is currently being tracked.
func (m *Machine) InProgress() bool { return m.active }

// Current returns a snapshot of the gesture in progress, if any — the
// hook help uses to underline text being swept for execution while the
// middle button is still down.
func (m *Machine) Current() (Gesture, bool) {
	if !m.active {
		return Gesture{}, false
	}
	return m.gesture, true
}

func countBits(v int) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func lowBit(v int) int { return v & -v }

// ---- Script helpers -------------------------------------------------------

// Click synthesizes a press and release of button b at p.
func Click(b int, p geom.Point) []Event {
	return []Event{
		MouseEvent(Mouse{Pt: p, Buttons: b}),
		MouseEvent(Mouse{Pt: p, Buttons: 0}),
	}
}

// Sweep synthesizes a press of b at from, a drag, and a release at to.
func Sweep(b int, from, to geom.Point) []Event {
	return []Event{
		MouseEvent(Mouse{Pt: from, Buttons: b}),
		MouseEvent(Mouse{Pt: to, Buttons: b}),
		MouseEvent(Mouse{Pt: to, Buttons: 0}),
	}
}

// ChordClick synthesizes: press primary at p, click each chord button in
// order while the primary stays down, then release everything. With
// primary=Left and chords=[Middle] this is help's Cut chord; [Right] is
// Paste; [Middle, Right] is the cut-and-paste ("remember the text in the
// cut buffer for later pasting").
func ChordClick(primary int, p geom.Point, chords ...int) []Event {
	evs := []Event{MouseEvent(Mouse{Pt: p, Buttons: primary})}
	for _, c := range chords {
		evs = append(evs,
			MouseEvent(Mouse{Pt: p, Buttons: primary | c}),
			MouseEvent(Mouse{Pt: p, Buttons: primary}),
		)
	}
	evs = append(evs, MouseEvent(Mouse{Pt: p, Buttons: 0}))
	return evs
}

// SweepChord synthesizes a sweep of the primary button from from to to with
// chord clicks at the end of the sweep before release.
func SweepChord(primary int, from, to geom.Point, chords ...int) []Event {
	evs := []Event{
		MouseEvent(Mouse{Pt: from, Buttons: primary}),
		MouseEvent(Mouse{Pt: to, Buttons: primary}),
	}
	for _, c := range chords {
		evs = append(evs,
			MouseEvent(Mouse{Pt: to, Buttons: primary | c}),
			MouseEvent(Mouse{Pt: to, Buttons: primary}),
		)
	}
	evs = append(evs, MouseEvent(Mouse{Pt: to, Buttons: 0}))
	return evs
}

// Drag synthesizes a press of b at from, movement through via, and release
// at to — the right-button window-drag gesture.
func Drag(b int, from geom.Point, to geom.Point, via ...geom.Point) []Event {
	evs := []Event{MouseEvent(Mouse{Pt: from, Buttons: b})}
	for _, p := range via {
		evs = append(evs, MouseEvent(Mouse{Pt: p, Buttons: b}))
	}
	evs = append(evs,
		MouseEvent(Mouse{Pt: to, Buttons: b}),
		MouseEvent(Mouse{Pt: to, Buttons: 0}),
	)
	return evs
}

// Type synthesizes keyboard events for each rune of s.
func Type(s string) []Event {
	evs := make([]Event, 0, len(s))
	for _, r := range s {
		evs = append(evs, KbdEvent(r))
	}
	return evs
}

// Stream is a FIFO queue of events, used to script sessions.
type Stream struct {
	evs []Event
}

// Push appends events to the stream.
func (s *Stream) Push(evs ...[]Event) {
	for _, batch := range evs {
		s.evs = append(s.evs, batch...)
	}
}

// Next pops the next event; ok is false when the stream is empty.
func (s *Stream) Next() (Event, bool) {
	if len(s.evs) == 0 {
		return Event{}, false
	}
	e := s.evs[0]
	s.evs = s.evs[1:]
	return e, true
}

// Len returns the number of queued events.
func (s *Stream) Len() int { return len(s.evs) }
