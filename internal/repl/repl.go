// Package repl implements the command language of cmd/help: a small
// textual stand-in for the mouse, so the reproduced system can be driven
// from a terminal (or a test) line by line. Every command translates to
// the same events a pointing device would produce.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/geom"
	"repro/internal/srvnet"
)

// Usage describes the command language, printed by the help command.
const Usage = `commands:
  screen                 render the screen
  windows                list windows (id, name, span)
  open PATH[:ADDR]       Open a file or directory
  point ID TEXT          left-click inside TEXT in window ID's body
  sweep ID FROM TO       left-sweep from FROM to TO in the body
  exec ID WORD           middle-click WORD in window ID's body
  tag ID WORD            middle-click WORD in window ID's tag
  type TEXT              type TEXT at the mouse position
  tab ID                 click window ID's tab (reveal)
  procs                  list running external commands (id, window, runtime, state, name)
  kill [ID|WORD]...      kill running commands (all of them with no argument)
  watch ID CMD...        run CMD now and again whenever window ID's body changes
  fetch PATH...          read remote files in one pipelined batch (needs -remote)
  metrics                show interaction counters and the stats registry
  help                   this message
  quit`

// REPL drives one help instance.
type REPL struct {
	H   *core.Help
	Out io.Writer
	// Echo controls whether the screen renders after mutating commands.
	Echo bool
	// Remote, when set, is a connection to another machine's namespace
	// (cmd/help -remote): the fetch command pipelines reads through it.
	Remote *srvnet.ReconnectingClient
}

// New returns a REPL over h writing to out, echoing screens.
func New(h *core.Help, out io.Writer) *REPL {
	return &REPL{H: h, Out: out, Echo: true}
}

// Run reads commands from r until EOF or Exit.
func (r *REPL) Run(in io.Reader) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(r.Out, "> ")
	for sc.Scan() {
		if err := r.Command(sc.Text()); err != nil {
			fmt.Fprintln(r.Out, "! "+err.Error())
		}
		if r.H.Exited() {
			return
		}
		fmt.Fprint(r.Out, "> ")
	}
}

// Command executes one line of the command language.
func (r *REPL) Command(line string) error {
	h := r.H
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return nil
	}
	winArg := func(i int) (*core.Window, error) {
		if len(fields) <= i {
			return nil, fmt.Errorf("missing window id")
		}
		id, err := strconv.Atoi(fields[i])
		if err != nil {
			return nil, fmt.Errorf("bad window id %q", fields[i])
		}
		w := h.Window(id)
		if w == nil {
			return nil, fmt.Errorf("no window %d", id)
		}
		return w, nil
	}
	show := func() {
		if !r.Echo {
			return
		}
		h.Render()
		fmt.Fprint(r.Out, h.Screen().String())
	}
	// Middle-click execution is asynchronous; give quick commands a
	// bounded chance to finish so the echoed screen shows their output,
	// while a long-running command leaves the prompt responsive (see
	// procs and kill).
	settle := func() { h.WaitIdleFor(2 * time.Second) }

	switch fields[0] {
	case "quit", "exit":
		if ws := h.Windows(); len(ws) > 0 {
			h.Execute(ws[0], "Exit")
		} else {
			h.Execute(h.NewWindow(), "Exit")
		}
	case "help":
		fmt.Fprintln(r.Out, Usage)
	case "screen":
		h.Render()
		fmt.Fprint(r.Out, h.Screen().String())
	case "windows":
		for _, w := range h.Windows() {
			fmt.Fprintf(r.Out, "%3d %-40s span=%d hidden=%v\n",
				w.ID, w.FileName(), h.VisibleSpan(w), w.Hidden())
		}
	case "metrics":
		m := h.Metrics()
		fmt.Fprintf(r.Out, "presses=%d keystrokes=%d travel=%d commands=%d\n",
			m.Presses, m.Keystrokes, m.Travel, m.Commands)
		// The full registry — the same flat text /mnt/help/stats serves.
		fmt.Fprint(r.Out, h.Obs.StatsText())
	case "open":
		if len(fields) < 2 {
			return fmt.Errorf("usage: open PATH[:ADDR]")
		}
		name, addr := core.SplitAddr(fields[1])
		if _, err := h.OpenFile(name, addr); err != nil {
			return err
		}
		show()
	case "point":
		w, err := winArg(1)
		if err != nil {
			return err
		}
		p, err := r.find(w, strings.Join(fields[2:], " "))
		if err != nil {
			return err
		}
		h.HandleAll(event.Click(event.Left, p))
		show()
	case "sweep":
		w, err := winArg(1)
		if err != nil {
			return err
		}
		if len(fields) < 4 {
			return fmt.Errorf("usage: sweep ID FROM TO")
		}
		h.Render()
		p0, ok0 := h.FindBody(w, fields[2])
		p1, ok1 := h.FindBody(w, fields[3])
		if !ok0 || !ok1 {
			return fmt.Errorf("sweep endpoints not visible")
		}
		p1.X += len(fields[3])
		h.HandleAll(event.Sweep(event.Left, p0, p1))
		show()
	case "exec":
		w, err := winArg(1)
		if err != nil {
			return err
		}
		p, err := r.find(w, strings.Join(fields[2:], " "))
		if err != nil {
			return err
		}
		h.HandleAll(event.Click(event.Middle, p))
		settle()
		show()
	case "tag":
		w, err := winArg(1)
		if err != nil {
			return err
		}
		h.Render()
		p, ok := h.FindTag(w, strings.Join(fields[2:], " "))
		if !ok {
			return fmt.Errorf("word not in tag")
		}
		p.X++
		h.HandleAll(event.Click(event.Middle, p))
		settle()
		show()
	case "type":
		text := strings.TrimPrefix(line, "type ")
		h.HandleAll(event.Type(text))
		show()
	case "tab":
		w, err := winArg(1)
		if err != nil {
			return err
		}
		p, ok := h.TabPoint(w)
		if !ok {
			return fmt.Errorf("no tab for window %d", w.ID)
		}
		h.HandleAll(event.Click(event.Left, p))
		show()
	case "fetch":
		if r.Remote == nil {
			return fmt.Errorf("fetch: no remote namespace (start with -remote ADDR)")
		}
		if len(fields) < 2 {
			return fmt.Errorf("usage: fetch PATH...")
		}
		paths := fields[1:]
		datas, err := r.Remote.ReadFiles(paths)
		if err != nil {
			return err
		}
		for i, p := range paths {
			fmt.Fprintf(r.Out, "== %s (%d bytes)\n", p, len(datas[i]))
			fmt.Fprint(r.Out, string(datas[i]))
			if len(datas[i]) > 0 && datas[i][len(datas[i])-1] != '\n' {
				fmt.Fprintln(r.Out)
			}
		}
	case "procs":
		procs := h.Procs()
		if len(procs) == 0 {
			fmt.Fprintln(r.Out, "no commands running")
			break
		}
		for _, p := range procs {
			fmt.Fprintf(r.Out, "%3d win=%d %8s %-7s %s\n",
				p.ID, p.WinID, p.Runtime.Round(time.Millisecond), p.State, p.Name)
		}
	case "kill":
		ws := h.Windows()
		if len(ws) == 0 {
			return fmt.Errorf("no windows")
		}
		h.Execute(ws[0], strings.Join(append([]string{"Kill"}, fields[1:]...), " "))
		settle()
		show()
	case "watch":
		w, err := winArg(1)
		if err != nil {
			return err
		}
		if len(fields) < 3 {
			return fmt.Errorf("usage: watch ID CMD...")
		}
		h.Execute(w, "Watch "+strings.Join(fields[2:], " "))
		settle()
		show()
	default:
		return fmt.Errorf("unknown command %q (try help)", fields[0])
	}
	return nil
}

// find locates text in a window body, one cell in so word expansion has
// an anchor.
func (r *REPL) find(w *core.Window, text string) (geom.Point, error) {
	r.H.Render()
	pt, ok := r.H.FindBody(w, text)
	if !ok {
		return geom.Point{}, fmt.Errorf("text %q not visible in window %d", text, w.ID)
	}
	pt.X++
	return pt, nil
}
