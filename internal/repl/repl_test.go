package repl

import (
	"bytes"
	"net"
	"strconv"
	"strings"
	"testing"

	"repro/internal/srvnet"
	"repro/internal/vfs"
	"repro/internal/world"
)

func newREPL(t *testing.T) (*REPL, *bytes.Buffer, *world.World) {
	t.Helper()
	w, err := world.Build(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	r := New(w.Help, &out)
	r.Echo = false // keep test output small
	return r, &out, w
}

func TestOpenAndWindows(t *testing.T) {
	r, out, _ := newREPL(t)
	if err := r.Command("open " + world.SrcDir + "/exec.c:213"); err != nil {
		t.Fatal(err)
	}
	if err := r.Command("windows"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exec.c") {
		t.Errorf("windows output = %q", out.String())
	}
}

func TestPointAndExecDriveTheSession(t *testing.T) {
	r, _, w := newREPL(t)
	// Find the mail tool window id.
	mail := w.Help.WindowByName("/help/mail/stf")
	if mail == nil {
		t.Fatal("mail stf missing")
	}
	if err := r.Command("exec " + itoa(mail.ID) + " headers"); err != nil {
		t.Fatal(err)
	}
	if w.Help.WindowByName(world.MboxPath) == nil {
		t.Fatal("headers window missing")
	}
	hw := w.Help.WindowByName(world.MboxPath)
	if err := r.Command("point " + itoa(hw.ID) + " sean"); err != nil {
		t.Fatal(err)
	}
	if err := r.Command("exec " + itoa(mail.ID) + " messages"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, win := range w.Help.Windows() {
		if strings.HasPrefix(win.Tag.String(), "From sean") {
			found = true
		}
	}
	if !found {
		t.Error("messages window missing")
	}
}

func TestTypeCommand(t *testing.T) {
	r, _, w := newREPL(t)
	scratch := w.Help.NewWindowIn(0)
	if err := r.Command("point " + itoa(scratch.ID) + " "); err != nil {
		t.Fatal(err)
	}
	if err := r.Command("type hello repl"); err != nil {
		t.Fatal(err)
	}
	if scratch.Body.String() != "hello repl" {
		t.Errorf("body = %q", scratch.Body.String())
	}
}

func TestMetricsAndScreen(t *testing.T) {
	r, out, _ := newREPL(t)
	if err := r.Command("metrics"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "presses=") {
		t.Errorf("metrics = %q", out.String())
	}
	out.Reset()
	if err := r.Command("screen"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "help/Boot") {
		t.Error("screen output missing boot window")
	}
}

func TestHelpAndErrors(t *testing.T) {
	r, out, _ := newREPL(t)
	if err := r.Command("help"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "point ID TEXT") {
		t.Errorf("usage = %q", out.String())
	}
	for _, bad := range []string{
		"nonsense", "open", "point", "point 999 x", "point abc x",
		"sweep 1", "tab 999", "exec 1 notinthere",
	} {
		if err := r.Command(bad); err == nil {
			t.Errorf("%q should error", bad)
		}
	}
	if err := r.Command(""); err != nil {
		t.Error("empty line should be a no-op")
	}
}

func TestTagCommand(t *testing.T) {
	r, _, w := newREPL(t)
	if err := r.Command("open " + world.SrcDir + "/dat.h"); err != nil {
		t.Fatal(err)
	}
	win := w.Help.WindowByName(world.SrcDir + "/dat.h")
	if err := r.Command("tag " + itoa(win.ID) + " Close!"); err != nil {
		t.Fatal(err)
	}
	if w.Help.WindowByName(world.SrcDir+"/dat.h") != nil {
		t.Error("Close! via tag command did not close")
	}
}

func TestRunUntilQuit(t *testing.T) {
	r, out, w := newREPL(t)
	r.Run(strings.NewReader("windows\nquit\n"))
	if !w.Help.Exited() {
		t.Error("quit did not exit")
	}
	if !strings.Contains(out.String(), "help/Boot") {
		t.Errorf("windows listing missing: %q", out.String())
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// fetch pipelines reads through the remote namespace; without one it
// reports a usable error instead of panicking.
func TestFetchRemoteFiles(t *testing.T) {
	r, out, _ := newREPL(t)
	if err := r.Command("fetch /f"); err == nil || !strings.Contains(err.Error(), "no remote") {
		t.Fatalf("fetch without remote: err = %v", err)
	}

	fs := vfs.New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a", []byte("alpha\n"))
	fs.WriteFile("/d/b", []byte("beta\n"))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srvnet.NewServer(fs).Serve(l)

	r.Remote = srvnet.NewReconnectingClient(l.Addr().String())
	defer r.Remote.Close()
	if err := r.Command("fetch /d/a /d/b"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"== /d/a (6 bytes)", "alpha", "== /d/b (5 bytes)", "beta"} {
		if !strings.Contains(got, want) {
			t.Fatalf("fetch output missing %q:\n%s", want, got)
		}
	}
	if err := r.Command("fetch /d/missing"); err == nil {
		t.Fatal("fetch of missing path succeeded")
	}
}
