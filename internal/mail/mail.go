// Package mail is the mail substrate behind Figures 5 and 6: an mbox
// parser and the /help/mail tool programs (headers, messages, delete,
// reread, send) that Sean Dorward's originals provided.
//
// The tools contain no user-interface code. They drive help entirely
// through the /mnt/help file interface and the $helpsel environment
// variable: headers builds a window listing the mailbox, messages applied
// to a header line pops the message text into a new window, delete removes
// the message the user is pointing at, and so on.
package mail

import (
	"fmt"
	"strings"
)

// Message is one mail message.
type Message struct {
	From string // sender address
	Date string // date string from the separator line
	Body string // message text, without the separator
}

// ParseMbox splits classic mbox text: messages begin at lines of the form
// "From sender date".
func ParseMbox(src string) []Message {
	var msgs []Message
	var cur *Message
	var body []string
	flush := func() {
		if cur != nil {
			cur.Body = strings.Join(body, "\n")
			msgs = append(msgs, *cur)
		}
		cur = nil
		body = nil
	}
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, "From ") {
			flush()
			rest := strings.TrimPrefix(line, "From ")
			from, date := rest, ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				from, date = rest[:i], strings.TrimSpace(rest[i+1:])
			}
			cur = &Message{From: from, Date: date}
			continue
		}
		if cur != nil {
			body = append(body, line)
		}
	}
	flush()
	for i := range msgs {
		msgs[i].Body = strings.TrimRight(msgs[i].Body, "\n")
	}
	return msgs
}

// FormatMbox renders messages back to mbox text.
func FormatMbox(msgs []Message) string {
	var b strings.Builder
	for _, m := range msgs {
		fmt.Fprintf(&b, "From %s %s\n", m.From, m.Date)
		b.WriteString(strings.TrimRight(m.Body, "\n"))
		b.WriteString("\n")
	}
	return b.String()
}

// HeaderLine renders the one-line summary shown in the headers window:
// "1 chk@alias.com Tue Apr 16 19:30 EDT".
func HeaderLine(i int, m Message) string {
	return fmt.Sprintf("%d %s %s", i+1, m.From, m.Date)
}

// Headers renders the whole headers listing.
func Headers(msgs []Message) string {
	var b strings.Builder
	for i, m := range msgs {
		b.WriteString(HeaderLine(i, m))
		b.WriteByte('\n')
	}
	return b.String()
}

// MessageWindow renders a message the way Figure 6 shows it: the
// separator restated as the first line, then the body.
func MessageWindow(m Message) string {
	return fmt.Sprintf("From %s %s\n%s\n", m.From, m.Date, strings.TrimRight(m.Body, "\n"))
}

// HeaderIndex parses the message number at the start of a header line,
// returning -1 if the line is not a header.
func HeaderIndex(line string) int {
	line = strings.TrimSpace(line)
	i := strings.IndexAny(line, " \t")
	if i <= 0 {
		return -1
	}
	var n int
	if _, err := fmt.Sscanf(line[:i], "%d", &n); err != nil || n < 1 {
		return -1
	}
	return n - 1
}
