package mail

import (
	"fmt"
	"strings"

	"repro/internal/helptool"
	"repro/internal/shell"
)

// Install registers the mail tool programs under /help/mail in sh, bound
// to the mailbox at mboxPath with the help file service mounted at root.
// The tool file /help/mail/stf lists the available commands, exactly as in
// Figure 4: "headers messages delete reread send".
func Install(sh *shell.Shell, mboxPath, root string) error {
	fs := sh.FS()
	// The tool file may already be present — e.g. provided by a sealed
	// shared namespace in the multi-session daemon — in which case only
	// the per-shell program registrations below are needed.
	if !fs.Exists("/help/mail/stf") {
		if err := fs.MkdirAll("/help/mail"); err != nil {
			return err
		}
		if err := fs.WriteFile("/help/mail/stf",
			[]byte("headers messages delete reread send\n")); err != nil {
			return err
		}
	}
	register := func(name string, fn shell.Builtin) error {
		return sh.RegisterProgram("/help/mail/"+name, fn)
	}
	if err := register("headers", headersCmd(mboxPath, root)); err != nil {
		return err
	}
	if err := register("messages", messagesCmd(mboxPath, root)); err != nil {
		return err
	}
	if err := register("delete", deleteCmd(mboxPath, root)); err != nil {
		return err
	}
	if err := register("reread", headersCmd(mboxPath, root)); err != nil {
		return err
	}
	return register("send", sendCmd(mboxPath, root))
}

// loadMbox reads and parses the mailbox.
func loadMbox(ctx *shell.Context, mboxPath string) ([]Message, error) {
	data, err := ctx.FS.ReadFile(mboxPath)
	if err != nil {
		return nil, fmt.Errorf("mail: %v", err)
	}
	return ParseMbox(string(data)), nil
}

// headersWindowID finds the window already labeled with the mailbox, or
// creates one. It consults the index file, not internal state — the tools
// see help only through the file interface.
func headersWindowID(ctx *shell.Context, mboxPath, root string) (int, error) {
	index, err := ctx.FS.ReadFile(root + "/index")
	if err == nil {
		for _, line := range strings.Split(string(index), "\n") {
			parts := strings.SplitN(line, "\t", 2)
			if len(parts) == 2 && strings.HasPrefix(parts[1], mboxPath) {
				var id int
				if _, err := fmt.Sscanf(parts[0], "%d", &id); err == nil {
					return id, nil
				}
			}
		}
	}
	id, err := helptool.NewWindow(ctx, root)
	if err != nil {
		return 0, err
	}
	if err := helptool.Ctl(ctx, root, id, "name "+mboxPath); err != nil {
		return 0, err
	}
	return id, nil
}

// headersCmd creates (or refreshes) the mailbox headers window, Figure 5:
// "Headers creates a new window containing the headers of my mail
// messages, and labels it /mail/box/rob/mbox."
func headersCmd(mboxPath, root string) shell.Builtin {
	return func(ctx *shell.Context, args []string) int {
		msgs, err := loadMbox(ctx, mboxPath)
		if err != nil {
			ctx.Errorf("%v", err)
			return 1
		}
		id, err := headersWindowID(ctx, mboxPath, root)
		if err != nil {
			ctx.Errorf("mail: %v", err)
			return 1
		}
		if err := helptool.WriteBody(ctx, root, id, Headers(msgs)); err != nil {
			ctx.Errorf("mail: %v", err)
			return 1
		}
		helptool.Ctl(ctx, root, id, "clean")
		return 0
	}
}

// selectedMessage resolves $helpsel to the message whose header line the
// user is pointing at ("just pointing with the left button anywhere in the
// header line will do").
func selectedMessage(ctx *shell.Context, mboxPath, root string) (int, []Message, error) {
	msgs, err := loadMbox(ctx, mboxPath)
	if err != nil {
		return 0, nil, err
	}
	sel, body, err := helptool.SelWindowBody(ctx, root)
	if err != nil {
		return 0, nil, err
	}
	_, line := helptool.LineAt(body, sel.Q0)
	idx := HeaderIndex(line)
	if idx < 0 || idx >= len(msgs) {
		return 0, nil, fmt.Errorf("mail: selection is not on a header line")
	}
	return idx, msgs, nil
}

// messagesCmd pops the selected message into a new window, Figure 6.
func messagesCmd(mboxPath, root string) shell.Builtin {
	return func(ctx *shell.Context, args []string) int {
		idx, msgs, err := selectedMessage(ctx, mboxPath, root)
		if err != nil {
			ctx.Errorf("%v", err)
			return 1
		}
		m := msgs[idx]
		id, err := helptool.NewWindow(ctx, root)
		if err != nil {
			ctx.Errorf("mail: %v", err)
			return 1
		}
		// The message window is labeled with the sender, as in Figure 6.
		helptool.Ctl(ctx, root, id, "tag From "+m.From+"\tClose!")
		if err := helptool.WriteBody(ctx, root, id, MessageWindow(m)); err != nil {
			ctx.Errorf("mail: %v", err)
			return 1
		}
		return 0
	}
}

// deleteCmd removes the selected message from the mailbox and refreshes
// the headers window.
func deleteCmd(mboxPath, root string) shell.Builtin {
	return func(ctx *shell.Context, args []string) int {
		idx, msgs, err := selectedMessage(ctx, mboxPath, root)
		if err != nil {
			ctx.Errorf("%v", err)
			return 1
		}
		msgs = append(msgs[:idx], msgs[idx+1:]...)
		if err := ctx.FS.WriteFile(mboxPath, []byte(FormatMbox(msgs))); err != nil {
			ctx.Errorf("mail: %v", err)
			return 1
		}
		return headersCmd(mboxPath, root)(ctx, args)
	}
}

// sendCmd appends the selected window's body to the outgoing spool as a
// message from the local user; a real transport is outside the paper's
// demo, which pointedly stops "because to answer his mail I'd have to
// type something".
func sendCmd(mboxPath, root string) shell.Builtin {
	return func(ctx *shell.Context, args []string) int {
		sel, body, err := helptool.SelWindowBody(ctx, root)
		if err != nil {
			ctx.Errorf("mail: %v", err)
			return 1
		}
		_ = sel
		out := mboxPath + ".out"
		date := ctx.Getenv("date")
		if date == "" {
			date = "Tue Apr 16 19:30:00 EDT 1991"
		}
		entry := fmt.Sprintf("From %s %s\n%s\n", userOf(ctx), date, strings.TrimRight(body, "\n"))
		if err := ctx.FS.AppendFile(out, []byte(entry)); err != nil {
			ctx.Errorf("mail: %v", err)
			return 1
		}
		fmt.Fprintf(ctx.Stdout, "message queued in %s\n", out)
		return 0
	}
}

func userOf(ctx *shell.Context) string {
	if u := ctx.Getenv("user"); u != "" {
		return u
	}
	return "rob"
}
