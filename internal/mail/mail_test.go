package mail

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/helpfs"
	"repro/internal/shell"
	"repro/internal/userland"
	"repro/internal/vfs"
)

const sampleMbox = `From chk@alias.com Tue Apr 16 19:30 EDT
hello rob
From sean Tue Apr 16 19:26 EDT
i tried your new help and got this:
help 176153: user TLB miss (load or fetch) badvaddr=0x0
help 176153: status=0xfb0c pc=0x18df4 sp=0x3f4e8
From attunix!rrg Tue Apr 16 19:03 EDT 1991
verses about UNIX
`

func TestParseMbox(t *testing.T) {
	msgs := ParseMbox(sampleMbox)
	if len(msgs) != 3 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if msgs[0].From != "chk@alias.com" || msgs[0].Date != "Tue Apr 16 19:30 EDT" {
		t.Errorf("msg0 = %+v", msgs[0])
	}
	if msgs[1].From != "sean" {
		t.Errorf("msg1 from = %q", msgs[1].From)
	}
	if !strings.Contains(msgs[1].Body, "TLB miss") {
		t.Errorf("msg1 body = %q", msgs[1].Body)
	}
	if msgs[2].From != "attunix!rrg" {
		t.Errorf("msg2 from = %q", msgs[2].From)
	}
}

func TestParseMboxEmpty(t *testing.T) {
	if got := ParseMbox(""); len(got) != 0 {
		t.Errorf("empty mbox = %v", got)
	}
	if got := ParseMbox("no separator here\n"); len(got) != 0 {
		t.Errorf("headerless mbox = %v", got)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	msgs := ParseMbox(sampleMbox)
	again := ParseMbox(FormatMbox(msgs))
	if len(again) != len(msgs) {
		t.Fatalf("round trip lost messages: %d -> %d", len(msgs), len(again))
	}
	for i := range msgs {
		if msgs[i].From != again[i].From || msgs[i].Body != again[i].Body {
			t.Errorf("message %d mismatch: %+v vs %+v", i, msgs[i], again[i])
		}
	}
}

func TestHeadersRendering(t *testing.T) {
	msgs := ParseMbox(sampleMbox)
	h := Headers(msgs)
	want := "1 chk@alias.com Tue Apr 16 19:30 EDT\n2 sean Tue Apr 16 19:26 EDT\n3 attunix!rrg Tue Apr 16 19:03 EDT 1991\n"
	if h != want {
		t.Errorf("headers = %q", h)
	}
}

func TestHeaderIndex(t *testing.T) {
	cases := []struct {
		line string
		want int
	}{
		{"2 sean Tue Apr 16 19:26 EDT", 1},
		{"  7 someone Mon", 6},
		{"not a header", -1},
		{"", -1},
		{"0 bad", -1},
	}
	for _, c := range cases {
		if got := HeaderIndex(c.line); got != c.want {
			t.Errorf("HeaderIndex(%q) = %d, want %d", c.line, got, c.want)
		}
	}
}

func TestMessageWindow(t *testing.T) {
	m := Message{From: "sean", Date: "Tue Apr 16 19:26 EDT", Body: "text"}
	if got := MessageWindow(m); got != "From sean Tue Apr 16 19:26 EDT\ntext\n" {
		t.Errorf("MessageWindow = %q", got)
	}
}

// mailWorld wires help + helpfs + the mail tools over a sample mailbox.
func mailWorld(t *testing.T) (*core.Help, *shell.Shell, *vfs.FS) {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.MkdirAll("/mail/box/rob")
	fs.WriteFile("/mail/box/rob/mbox", []byte(sampleMbox))
	sh := shell.New(fs)
	userland.Install(sh)
	h := core.New(fs, sh, 80, 24)
	if _, err := helpfs.Attach(h, fs, "/mnt/help"); err != nil {
		t.Fatal(err)
	}
	if err := Install(sh, "/mail/box/rob/mbox", "/mnt/help"); err != nil {
		t.Fatal(err)
	}
	return h, sh, fs
}

func TestHeadersTool(t *testing.T) {
	h, sh, _ := mailWorld(t)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = "/help/mail"
	if status := sh.RunCommand(ctx, []string{"/help/mail/headers"}); status != 0 {
		t.Fatalf("headers failed: %s", out.String())
	}
	w := h.WindowByName("/mail/box/rob/mbox")
	if w == nil {
		t.Fatal("headers window missing")
	}
	if !strings.Contains(w.Body.String(), "2 sean Tue Apr 16 19:26 EDT") {
		t.Errorf("headers body = %q", w.Body.String())
	}
	// Running headers again reuses the window.
	sh.RunCommand(ctx, []string{"/help/mail/headers"})
	if len(h.Windows()) != 1 {
		t.Errorf("windows = %d after second headers", len(h.Windows()))
	}
}

// selectHeader points the selection at message i's header line.
func selectHeader(t *testing.T, h *core.Help, ctx *shell.Context, i int) {
	t.Helper()
	w := h.WindowByName("/mail/box/rob/mbox")
	if w == nil {
		t.Fatal("no headers window")
	}
	body := w.Body.String()
	needle := fmt.Sprintf("%d ", i+1)
	off := strings.Index(body, needle)
	if off < 0 {
		t.Fatalf("header %d not found in %q", i+1, body)
	}
	q := len([]rune(body[:off])) + 2 // anywhere in the line
	w.SetSelection(core.SubBody, q, q)
	h.SetCurrent(w, core.SubBody)
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:%d,%d", w.ID, q, q)})
}

func TestMessagesTool(t *testing.T) {
	h, sh, _ := mailWorld(t)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.RunCommand(ctx, []string{"/help/mail/headers"})
	selectHeader(t, h, ctx, 1) // Sean's mail
	if status := sh.RunCommand(ctx, []string{"/help/mail/messages"}); status != 0 {
		t.Fatalf("messages failed: %s", out.String())
	}
	var msgWin *core.Window
	for _, w := range h.Windows() {
		if strings.HasPrefix(w.Tag.String(), "From sean") {
			msgWin = w
		}
	}
	if msgWin == nil {
		t.Fatal("message window missing")
	}
	if !strings.Contains(msgWin.Body.String(), "user TLB miss") {
		t.Errorf("message body = %q", msgWin.Body.String())
	}
}

func TestMessagesWithoutSelection(t *testing.T) {
	_, sh, _ := mailWorld(t)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.RunCommand(ctx, []string{"/help/mail/messages"}); status == 0 {
		t.Error("messages without $helpsel should fail")
	}
}

func TestDeleteTool(t *testing.T) {
	h, sh, fs := mailWorld(t)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.RunCommand(ctx, []string{"/help/mail/headers"})
	selectHeader(t, h, ctx, 0)
	if status := sh.RunCommand(ctx, []string{"/help/mail/delete"}); status != 0 {
		t.Fatalf("delete failed: %s", out.String())
	}
	data, _ := fs.ReadFile("/mail/box/rob/mbox")
	if strings.Contains(string(data), "chk@alias.com") {
		t.Error("deleted message still in mbox")
	}
	// Headers window refreshed: sean is now message 1.
	w := h.WindowByName("/mail/box/rob/mbox")
	if !strings.HasPrefix(w.Body.String(), "1 sean") {
		t.Errorf("refreshed headers = %q", w.Body.String())
	}
}

func TestSendTool(t *testing.T) {
	h, sh, fs := mailWorld(t)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	// Compose in a fresh window.
	draft := h.NewWindow()
	draft.Body.SetString("dear sean, fixed\n")
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:0,0", draft.ID)})
	if status := sh.RunCommand(ctx, []string{"/help/mail/send"}); status != 0 {
		t.Fatalf("send failed: %s", out.String())
	}
	data, err := fs.ReadFile("/mail/box/rob/mbox.out")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "dear sean, fixed") {
		t.Errorf("outgoing = %q", data)
	}
	if !strings.HasPrefix(string(data), "From rob ") {
		t.Errorf("outgoing separator = %q", data)
	}
}

func TestToolFileListsCommands(t *testing.T) {
	_, _, fs := mailWorld(t)
	data, err := fs.ReadFile("/help/mail/stf")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "headers messages delete reread send\n" {
		t.Errorf("stf = %q", data)
	}
}

func TestRereadTool(t *testing.T) {
	h, sh, fs := mailWorld(t)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.RunCommand(ctx, []string{"/help/mail/headers"})
	// Another message arrives; reread refreshes the same window.
	data, _ := fs.ReadFile("/mail/box/rob/mbox")
	fs.WriteFile("/mail/box/rob/mbox", append(data,
		[]byte("From newguy Tue Apr 16 20:00 EDT\nlate mail\n")...))
	if status := sh.RunCommand(ctx, []string{"/help/mail/reread"}); status != 0 {
		t.Fatalf("reread: %s", out.String())
	}
	w := h.WindowByName("/mail/box/rob/mbox")
	if !strings.Contains(w.Body.String(), "4 newguy") {
		t.Errorf("reread body = %q", w.Body.String())
	}
	if len(h.Windows()) != 1 {
		t.Errorf("windows = %d", len(h.Windows()))
	}
}

func TestHeadersMissingMailbox(t *testing.T) {
	_, sh, fs := mailWorld(t)
	fs.Remove("/mail/box/rob/mbox")
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.RunCommand(ctx, []string{"/help/mail/headers"}); status == 0 {
		t.Error("headers with no mailbox should fail")
	}
}

func TestDeleteWithSelectionOffHeader(t *testing.T) {
	h, sh, _ := mailWorld(t)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	sh.RunCommand(ctx, []string{"/help/mail/headers"})
	// Selection in some other window that is not a header line.
	w := h.NewWindow()
	w.Body.SetString("not a header")
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:0,0", w.ID)})
	if status := sh.RunCommand(ctx, []string{"/help/mail/delete"}); status == 0 {
		t.Errorf("delete off a header line should fail: %s", out.String())
	}
}

func TestSendUsesUserVariable(t *testing.T) {
	h, sh, fs := mailWorld(t)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Set("user", []string{"sean"})
	ctx.Set("date", []string{"Wed Apr 17 09:00 EDT"})
	draft := h.NewWindow()
	draft.Body.SetString("reply text")
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:0,0", draft.ID)})
	if status := sh.RunCommand(ctx, []string{"/help/mail/send"}); status != 0 {
		t.Fatalf("send: %s", out.String())
	}
	data, _ := fs.ReadFile("/mail/box/rob/mbox.out")
	if !strings.HasPrefix(string(data), "From sean Wed Apr 17 09:00 EDT\n") {
		t.Errorf("outgoing = %q", data)
	}
}
