package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/srvnet"
	"repro/internal/vfs"
	"repro/internal/world"
)

// Config parameterizes one replay run.
type Config struct {
	// Addr is the daemon's srvnet address. Required unless NewClient is
	// set.
	Addr string
	// Users is the number of simulated users, each with its own
	// reconnecting client and goroutine. Default 1.
	Users int
	// Sessions is the number of distinct session names the users spread
	// over (round-robin), so replay exercises both session reuse and
	// isolation. Default: one session per user.
	Sessions int
	// Iterations repeats the trace per user. Default 1.
	Iterations int
	// ThinkScale multiplies each op's recorded think time, jittered
	// ±50% per user. Zero disables think time entirely (replay at full
	// speed); use 1 for recorded pacing.
	ThinkScale float64
	// Seed makes the jitter and think randomness reproducible. Each
	// user derives its own rng from Seed+user.
	Seed int64
	// Trace is the script each user replays. Default: DefaultTrace().
	Trace *Trace
	// SessionPrefix names the sessions: <prefix><k>. Default "load".
	SessionPrefix string
	// NewClient overrides client construction (tests inject fault
	// wrappers or tuned budgets). The default dials Addr with the
	// user's session and Obs.
	NewClient func(user int, session string) *srvnet.ReconnectingClient
	// Obs, when set, is handed to default-constructed clients.
	Obs *obs.Registry
	// BusyBudget is passed to default-constructed clients: how long one
	// op waits out typed busy refusals before degrading.
	BusyBudget time.Duration
}

// Stats is what the fleet observed, summed across users. Busy,
// Draining, and Degraded are expected citizens of an overloaded or
// shutting-down daemon, counted apart from Errors (protocol or I/O
// failures a healthy run must not produce).
type Stats struct {
	Ops            int64 // operations attempted
	Windows        int64 // windows created
	Busy           int64 // typed busy refusals (vfs.ErrBusy)
	Draining       int64 // typed draining refusals
	Degraded       int64 // ops the client gave up on in degraded state
	Errors         int64 // everything else
	SeqRegressions int64 // readwait resume sequence moved backward
	FirstError     error // first hard error, for the postmortem
}

func (s *Stats) String() string {
	return fmt.Sprintf("ops=%d windows=%d busy=%d draining=%d degraded=%d errors=%d seqregress=%d",
		s.Ops, s.Windows, s.Busy, s.Draining, s.Degraded, s.Errors, s.SeqRegressions)
}

func (s *Stats) merge(o *Stats) {
	s.Ops += o.Ops
	s.Windows += o.Windows
	s.Busy += o.Busy
	s.Draining += o.Draining
	s.Degraded += o.Degraded
	s.Errors += o.Errors
	s.SeqRegressions += o.SeqRegressions
	if s.FirstError == nil {
		s.FirstError = o.FirstError
	}
}

// Replay runs the configured fleet to completion and returns the summed
// stats. The returned error covers configuration problems only; what
// the daemon did to the fleet is reported in Stats.
func Replay(cfg Config) (*Stats, error) {
	if cfg.Addr == "" && cfg.NewClient == nil {
		return nil, fmt.Errorf("loadgen: Config.Addr or Config.NewClient required")
	}
	if cfg.Users <= 0 {
		cfg.Users = 1
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = cfg.Users
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if cfg.Trace == nil {
		cfg.Trace = DefaultTrace()
	}
	if cfg.SessionPrefix == "" {
		cfg.SessionPrefix = "load"
	}
	newClient := cfg.NewClient
	if newClient == nil {
		newClient = func(user int, session string) *srvnet.ReconnectingClient {
			c := srvnet.NewReconnectingClient(cfg.Addr)
			c.Session = session
			c.Obs = cfg.Obs
			c.Seed = cfg.Seed + int64(user) + 1
			c.BusyBudget = cfg.BusyBudget
			return c
		}
	}

	var (
		mu    sync.Mutex
		total Stats
		wg    sync.WaitGroup
	)
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			session := cfg.SessionPrefix + strconv.Itoa(u%cfg.Sessions)
			st := runUser(cfg, u, session, newClient(u, session))
			mu.Lock()
			total.merge(st)
			mu.Unlock()
		}(u)
	}
	wg.Wait()
	return &total, nil
}

// user is one simulated user's replay state.
type user struct {
	id     int
	client *srvnet.ReconnectingClient
	rng    *rand.Rand
	scale  float64
	st     Stats
	win    string            // current window id ($W), "" if none
	seqs   map[string]uint64 // readwait resume seq per path
	iter   int
}

func runUser(cfg Config, id int, session string, c *srvnet.ReconnectingClient) *Stats {
	u := &user{
		id:     id,
		client: c,
		rng:    rand.New(rand.NewSource(cfg.Seed + int64(id)*7919 + 1)),
		scale:  cfg.ThinkScale,
		seqs:   map[string]uint64{},
	}
	defer c.Close()
	for it := 0; it < cfg.Iterations; it++ {
		u.iter = it
		for _, op := range cfg.Trace.Ops {
			u.think(op.Think)
			u.record(u.run(op))
		}
	}
	return &u.st
}

// think sleeps the op's scaled think time, jittered ±50% so a thousand
// users do not march in lockstep.
func (u *user) think(d time.Duration) {
	if u.scale <= 0 || d <= 0 {
		return
	}
	d = time.Duration(float64(d) * u.scale)
	d = d/2 + time.Duration(u.rng.Int63n(int64(d)+1))
	time.Sleep(d)
}

// record classifies one op's outcome into the stats.
func (u *user) record(err error) {
	u.st.Ops++
	switch {
	case err == nil:
	case errors.Is(err, vfs.ErrBusy):
		u.st.Busy++
		if errors.Is(err, srvnet.ErrDegraded) {
			u.st.Degraded++
		}
	case errors.Is(err, srvnet.ErrDraining):
		u.st.Draining++
	case errors.Is(err, srvnet.ErrDegraded):
		u.st.Degraded++
	default:
		u.st.Errors++
		if u.st.FirstError == nil {
			u.st.FirstError = fmt.Errorf("user %d: %w", u.id, err)
		}
	}
}

// expand substitutes $W/$U/$I, creating the window on demand when the
// op references $W before any newwin.
func (u *user) expand(s string) (string, error) {
	if strings.Contains(s, "$W") {
		if u.win == "" {
			if err := u.newWindow(); err != nil {
				return "", err
			}
		}
		s = strings.ReplaceAll(s, "$W", u.win)
	}
	s = strings.ReplaceAll(s, "$U", strconv.Itoa(u.id))
	s = strings.ReplaceAll(s, "$I", strconv.Itoa(u.iter))
	return s, nil
}

// resolve expands placeholders and anchors relative paths under the
// session's /mnt/help.
func (u *user) resolve(p string) (string, error) {
	p, err := u.expand(p)
	if err != nil {
		return "", err
	}
	if p == "." {
		return world.MountRoot, nil
	}
	if !strings.HasPrefix(p, "/") {
		p = world.MountRoot + "/" + p
	}
	return p, nil
}

// newWindow creates a window through new/ctl, whose read returns the
// new window's id — the paper's "opens /mnt/help/new/ctl ... may then
// read from that file the name of the window created".
func (u *user) newWindow() error {
	data, err := u.client.ReadFile(world.MountRoot + "/new/ctl")
	if err != nil {
		return err
	}
	id := strings.TrimSpace(string(data))
	if id == "" {
		return fmt.Errorf("loadgen: new/ctl returned no window id")
	}
	u.win = id
	u.st.Windows++
	return nil
}

func (u *user) run(op Op) error {
	if op.Verb == "newwin" {
		return u.newWindow()
	}
	path, err := u.resolve(op.Path)
	if err != nil {
		return err
	}
	switch op.Verb {
	case "read":
		_, err = u.client.ReadFile(path)
	case "readdir":
		_, err = u.client.ReadDir(path)
	case "readwait":
		var next uint64
		_, next, err = u.client.ReadWait(path, u.seqs[path], 100*time.Millisecond)
		if err == nil {
			if next < u.seqs[path] {
				u.st.SeqRegressions++
			}
			u.seqs[path] = next
		}
	case "write", "ctl":
		var data string
		if data, err = u.expand(op.Data); err == nil {
			err = u.client.WriteFile(path, []byte(data))
		}
		if op.Verb == "ctl" && err == nil && strings.Contains(op.Data, "delete") &&
			strings.HasPrefix(op.Path, "$W") {
			u.win = ""
		}
	case "append":
		var data string
		if data, err = u.expand(op.Data); err == nil {
			err = u.client.AppendFile(path, []byte(data))
		}
	case "remove":
		err = u.client.Remove(path)
	default:
		return fmt.Errorf("loadgen: unknown verb %q", op.Verb)
	}
	return err
}
