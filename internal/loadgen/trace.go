// Package loadgen records and replays gesture traces against a help
// daemon over srvnet: the load generator the overload work is validated
// with. A Trace is a small textual script of namespace operations — the
// wire-visible shadow of a user's session — either written by hand,
// taken from DefaultTrace, or recovered from a session's event log
// (RecordLog). Replay drives N simulated users over the wire, each with
// its own reconnecting client, randomized think time, and per-user
// window state, and reports what the fleet observed: operation counts,
// typed busy refusals, degradations, and notify-sequence regressions.
package loadgen

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Op is one step of a trace.
//
// Verbs and their operands:
//
//	newwin            create a window (reads new/ctl), making it $W
//	read <path>       read a file
//	readdir <path>    list a directory
//	readwait <path>   block for events past the last seen sequence
//	write <path> <q>  replace a file's contents
//	append <path> <q> append to a file
//	ctl <path> <q>    write a control message (an alias of write that
//	                  reads as intent in traces)
//	remove <path>     remove a file
//
// Paths are relative to the session's /mnt/help unless they begin with
// "/". The placeholders $W (current window id, creating one on demand),
// $U (user index), and $I (iteration) are substituted in paths and
// payloads at replay time. Payloads <q> are Go-quoted strings.
type Op struct {
	Think time.Duration // think time before the op (scaled by Replay)
	Verb  string
	Path  string
	Data  string
}

// Trace is a replayable operation script, one user-session's worth.
type Trace struct {
	Ops []Op
}

// knownVerbs gates ParseTrace so a typo fails at parse time, not midway
// through a thousand-user replay.
var knownVerbs = map[string]bool{
	"newwin": true, "read": true, "readdir": true, "readwait": true,
	"write": true, "append": true, "ctl": true, "remove": true,
}

func verbTakesData(verb string) bool {
	switch verb {
	case "write", "append", "ctl":
		return true
	}
	return false
}

// ParseTrace reads the textual trace format, one op per line:
//
//	<think_ms> <verb> [path] [quoted-data]
//
// Blank lines and lines starting with # are skipped.
func ParseTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := parseOpLine(line)
		if err != nil {
			return nil, fmt.Errorf("loadgen: trace line %d: %w", lineno, err)
		}
		t.Ops = append(t.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: trace: %w", err)
	}
	if len(t.Ops) == 0 {
		return nil, fmt.Errorf("loadgen: trace is empty")
	}
	return t, nil
}

func parseOpLine(line string) (Op, error) {
	rest := line
	word := func() string {
		rest = strings.TrimLeft(rest, " \t")
		i := strings.IndexAny(rest, " \t")
		if i < 0 {
			w := rest
			rest = ""
			return w
		}
		w := rest[:i]
		rest = rest[i:]
		return w
	}
	ms, err := strconv.Atoi(word())
	if err != nil {
		return Op{}, fmt.Errorf("bad think time: %v", err)
	}
	op := Op{Think: time.Duration(ms) * time.Millisecond, Verb: word()}
	if !knownVerbs[op.Verb] {
		return Op{}, fmt.Errorf("unknown verb %q", op.Verb)
	}
	if op.Verb != "newwin" {
		op.Path = word()
		if op.Path == "" {
			return Op{}, fmt.Errorf("%s needs a path", op.Verb)
		}
	}
	if verbTakesData(op.Verb) {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return Op{}, fmt.Errorf("%s needs a quoted payload", op.Verb)
		}
		data, err := strconv.Unquote(rest)
		if err != nil {
			return Op{}, fmt.Errorf("bad payload %s: %v", rest, err)
		}
		op.Data = data
	}
	return op, nil
}

// Text renders the trace back into the parseable format, so recorded
// traces round-trip through files.
func (t *Trace) Text() string {
	var b bytes.Buffer
	b.WriteString("# helpload trace\n")
	for _, op := range t.Ops {
		fmt.Fprintf(&b, "%d %s", op.Think.Milliseconds(), op.Verb)
		if op.Path != "" {
			b.WriteByte(' ')
			b.WriteString(op.Path)
		}
		if verbTakesData(op.Verb) {
			b.WriteByte(' ')
			b.WriteString(strconv.Quote(op.Data))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultTrace is a plausible editing session: make a window, name it,
// type into its body in a few bursts, read the result back, check the
// session log, and close the window so replayed users do not accumulate
// state across iterations.
func DefaultTrace() *Trace {
	return &Trace{Ops: []Op{
		{Think: 50 * time.Millisecond, Verb: "newwin"},
		{Think: 20 * time.Millisecond, Verb: "ctl", Path: "$W/ctl", Data: "name /u$U/draft\n"},
		{Think: 80 * time.Millisecond, Verb: "append", Path: "$W/bodyapp", Data: "user $U iteration $I\n"},
		{Think: 60 * time.Millisecond, Verb: "append", Path: "$W/bodyapp", Data: "the quick brown fox jumps over the lazy dog\n"},
		{Think: 30 * time.Millisecond, Verb: "read", Path: "$W/body"},
		{Think: 10 * time.Millisecond, Verb: "readdir", Path: "."},
		{Think: 20 * time.Millisecond, Verb: "readwait", Path: "log"},
		{Think: 40 * time.Millisecond, Verb: "write", Path: "$W/body", Data: "rewritten by user $U, iteration $I\n"},
		{Think: 20 * time.Millisecond, Verb: "read", Path: "$W/tag"},
		{Think: 30 * time.Millisecond, Verb: "ctl", Path: "$W/ctl", Data: "delete\n"},
	}}
}

// RecordLog recovers a replayable trace from a session event log (the
// /mnt/help/log stream of "seq window kind detail" lines, the PR 8
// observability surface). The log records gestures, not payloads — a
// body event carries the buffer's new generation, not the typed text —
// so payloads are synthesized; what replays is the session's *shape*:
// window lifecycle and the sequence and interleaving of edits. Events
// on windows whose creation predates the log are folded onto the
// trace's own window. think gives each replayed op a uniform think
// time (the log carries no timestamps).
func RecordLog(data []byte, think time.Duration) (*Trace, error) {
	t := &Trace{}
	known := map[string]bool{} // recorded window id -> created in-log
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		// seq window kind [detail]
		f := strings.SplitN(line, " ", 4)
		if len(f) < 3 {
			continue
		}
		win, kind := f[1], f[2]
		switch kind {
		case "new":
			known[win] = true
			t.Ops = append(t.Ops, Op{Think: think, Verb: "newwin"})
		case "body":
			t.Ops = append(t.Ops, Op{Think: think, Verb: "append",
				Path: "$W/bodyapp", Data: "replayed edit (u$U i$I)\n"})
		case "tag":
			t.Ops = append(t.Ops, Op{Think: think, Verb: "read", Path: "$W/tag"})
		case "del":
			if known[win] {
				delete(known, win)
				t.Ops = append(t.Ops, Op{Think: think, Verb: "ctl",
					Path: "$W/ctl", Data: "delete\n"})
			}
		default:
			// limit, gap, exec, attach...: daemon- or command-level
			// events with no wire-replayable gesture.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: record: %w", err)
	}
	if len(t.Ops) == 0 {
		return nil, fmt.Errorf("loadgen: log contains no replayable gestures")
	}
	return t, nil
}
