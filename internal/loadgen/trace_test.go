package loadgen

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := DefaultTrace()
	parsed, err := ParseTrace(strings.NewReader(orig.Text()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parsed.Text(), orig.Text(); got != want {
		t.Fatalf("round trip changed the trace:\n-- want --\n%s\n-- got --\n%s", want, got)
	}
	if len(parsed.Ops) != len(orig.Ops) {
		t.Fatalf("round trip: %d ops, want %d", len(parsed.Ops), len(orig.Ops))
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",                      // empty
		"50 frobnicate $W/body", // unknown verb
		"x read log",            // bad think time
		"10 write $W/body",      // missing payload
		"10 write $W/body hi",   // unquoted payload
		"10 read",               // missing path
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) accepted garbage", bad)
		}
	}
}

func TestParseTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n  \n25 read log\n"
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 1 || tr.Ops[0].Verb != "read" || tr.Ops[0].Think != 25*time.Millisecond {
		t.Fatalf("parsed %+v", tr.Ops)
	}
}

func TestRecordLogMapsGestures(t *testing.T) {
	log := strings.Join([]string{
		"1 0 attach load0",
		"2 3 new",
		"3 3 body gen 1",
		"4 3 tag gen 2",
		"5 7 body gen 9", // window 7 predates the log: folds onto $W
		"6 3 del /u/draft",
		"7 0 gap 3 missed", // not replayable
	}, "\n")
	tr, err := RecordLog([]byte(log), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var verbs []string
	for _, op := range tr.Ops {
		verbs = append(verbs, op.Verb)
	}
	want := []string{"newwin", "append", "read", "append", "ctl"}
	if strings.Join(verbs, ",") != strings.Join(want, ",") {
		t.Fatalf("verbs = %v, want %v", verbs, want)
	}
	for _, op := range tr.Ops {
		if op.Think != 10*time.Millisecond {
			t.Fatalf("op %+v: think not applied", op)
		}
	}
	// The recorded trace must itself be parseable.
	if _, err := ParseTrace(strings.NewReader(tr.Text())); err != nil {
		t.Fatalf("recorded trace does not round-trip: %v", err)
	}
}

func TestRecordLogRejectsEmpty(t *testing.T) {
	if _, err := RecordLog([]byte("1 0 gap 5 missed\n"), 0); err == nil {
		t.Fatal("RecordLog accepted a log with no gestures")
	}
}
