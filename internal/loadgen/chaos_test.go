// Chaos harness: replay a fleet of recorded-gesture users against a
// real in-process daemon — multi-session manager behind the mux wire
// server — under scripted network faults, then assert the overload
// work's invariants: no goroutine leaks, no cross-session bleed,
// journals recover byte for byte, notify sequences never regress, and
// every budget refusal is typed.
//
// `make chaos` runs the full fleet (CHAOS_USERS, default 1000); plain
// `go test` (tier-1) runs the same harness as a small smoke.
package loadgen_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/journal"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/sessiond"
	"repro/internal/srvnet"
	"repro/internal/vfs"
	"repro/internal/world"
)

var (
	tmplOnce sync.Once
	tmpl     *world.Template
	tmplErr  error
)

func sharedTemplate(t testing.TB) *world.Template {
	t.Helper()
	tmplOnce.Do(func() { tmpl, tmplErr = world.NewTemplate() })
	if tmplErr != nil {
		t.Fatal(tmplErr)
	}
	return tmpl
}

func waitUntil(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// daemon is one in-process help daemon: manager, wire server, journals
// retained for post-drain recovery checks.
type daemon struct {
	reg  *obs.Registry
	mgr  *sessiond.Manager
	srv  *srvnet.Server
	addr string

	mu       sync.Mutex
	journals map[string]*journal.MemFS
}

func (d *daemon) journalFS(name string) (journal.Fsys, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fs, ok := d.journals[name]; ok {
		return fs, nil
	}
	fs := journal.NewMemFS()
	d.journals[name] = fs
	return fs, nil
}

func (d *daemon) journalNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.journals))
	for n := range d.journals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// startDaemon builds the daemon over the shared template. modCfg and
// modSrv tune budgets; scripts injects per-connection faultnet scripts.
func startDaemon(t testing.TB, modCfg func(*sessiond.Config), modSrv func(*srvnet.Server),
	scripts func(i int) *faultnet.Script) *daemon {
	t.Helper()
	tm := sharedTemplate(t)
	d := &daemon{reg: obs.New(), journals: map[string]*journal.MemFS{}}
	cfg := sessiond.Config{
		Width: 60, Height: 20,
		Obs:       d.reg,
		Fsync:     journal.SyncNever, // MemFS: no disk to lose
		JournalFS: d.journalFS,
		Build: func(name string, w, h int) (*world.World, error) {
			return tm.NewSession(w, h)
		},
	}
	if modCfg != nil {
		modCfg(&cfg)
	}
	d.mgr = sessiond.NewManager(cfg)
	d.srv = srvnet.NewMuxServer(d.mgr)
	d.srv.Obs = d.reg
	if modSrv != nil {
		modSrv(d.srv)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.addr = l.Addr().String()
	var serveL net.Listener = l
	if scripts != nil {
		serveL = faultnet.WrapListener(l, scripts)
	}
	go d.srv.Serve(serveL)
	return d
}

// shutdown drains the daemon the way cmd/help does: wire first, then
// sessions, both within the budget.
func (d *daemon) shutdown(t testing.TB, budget time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		t.Fatalf("server shutdown: %v", err)
	}
	if err := d.mgr.Drain(ctx); err != nil {
		t.Fatalf("session drain: %v", err)
	}
}

// fingerprint reads every window's tag and body through fs, a
// serialization-safe byte-for-byte digest of the session's visible
// state.
func fingerprint(t testing.TB, fs *vfs.FS) string {
	t.Helper()
	ents, err := fs.ReadDir(world.MountRoot)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	var ids []int
	for _, e := range ents {
		if id, err := strconv.Atoi(e.Name); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		tag, err := fs.ReadFile(fmt.Sprintf("%s/%d/tag", world.MountRoot, id))
		if err != nil {
			t.Fatalf("fingerprint tag %d: %v", id, err)
		}
		body, err := fs.ReadFile(fmt.Sprintf("%s/%d/body", world.MountRoot, id))
		if err != nil {
			t.Fatalf("fingerprint body %d: %v", id, err)
		}
		fmt.Fprintf(&b, "== %d tag %d\n%s\n== %d body %d\n%s\n", id, len(tag), tag, id, len(body), body)
	}
	return b.String()
}

func chaosUsers(t *testing.T) int {
	if s := os.Getenv("CHAOS_USERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_USERS %q", s)
		}
		return n
	}
	// Tier-1 (`make test`) runs the same harness as a small smoke; the
	// full fleet is `make chaos`, which sets CHAOS_USERS.
	return 24
}

// TestChaosReplay is the headline run: a fleet of users replaying the
// default gesture trace over faulty connections, with every invariant
// checked after the dust settles.
func TestChaosReplay(t *testing.T) {
	sharedTemplate(t) // build outside the goroutine baseline
	runtime.GC()
	before := runtime.NumGoroutine()

	users := chaosUsers(t)
	sessions := users / 4
	if sessions < 2 {
		sessions = 2
	}
	iterations := 2

	var (
		scriptMu sync.Mutex
		scripts  []*faultnet.Script
	)
	const maxBytes = 64 << 20
	d := startDaemon(t,
		func(c *sessiond.Config) {
			c.MaxSessions = sessions + 4
			c.MaxBytes = maxBytes
			c.MaxSessionBytes = 4 << 20
			c.MaxTotalProcs = 64
		},
		func(s *srvnet.Server) {
			s.MaxConns = 4*users + 16
			// Scripted read stalls park until the read deadline; a short
			// idle timeout keeps them from outliving the drain budget.
			s.IdleTimeout = 5 * time.Second
		},
		func(i int) *faultnet.Script {
			// Every third connection runs under a seeded fault script;
			// the rest are clean so the fleet as a whole makes progress.
			if i%3 != 0 {
				return nil
			}
			sc := faultnet.Generate(int64(1000+i), 2, 60)
			scriptMu.Lock()
			scripts = append(scripts, sc)
			scriptMu.Unlock()
			return sc
		})

	st, err := loadgen.Replay(loadgen.Config{
		Addr:       d.addr,
		Users:      users,
		Sessions:   sessions,
		Iterations: iterations,
		Seed:       42,
		Obs:        d.reg,
		BusyBudget: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replay: %s", st)

	// Invariant: notify sequences never regress.
	if st.SeqRegressions != 0 {
		t.Fatalf("notify sequence regressed %d times", st.SeqRegressions)
	}
	// Invariant: hard errors only on faulted connections. A fired fault
	// can fail the op in flight and poison the attach that follows, so
	// allow a small multiple.
	scriptMu.Lock()
	fired := 0
	for _, sc := range scripts {
		fired += sc.Fired()
	}
	scriptMu.Unlock()
	if limit := int64(4*fired + 8); st.Errors > limit {
		t.Fatalf("%d hard errors (> %d allowed for %d fired faults): first: %v",
			st.Errors, limit, fired, st.FirstError)
	}
	// Invariant: the fleet made real progress.
	if min := int64(users) * int64(iterations); st.Ops < min {
		t.Fatalf("fleet attempted %d ops, want >= %d", st.Ops, min)
	}
	// Invariant: budgets respected at rest.
	if got := d.mgr.MemBytes(); got > maxBytes {
		t.Fatalf("daemon.budget.bytes %d exceeds budget %d", got, maxBytes)
	}

	// Invariant: no cross-session bleed. Stamp every session with its
	// own name, then read them all back.
	type stamped struct {
		name   string
		fs     *vfs.FS
		detach func()
	}
	var stamps []stamped
	for i := 0; i < sessions; i++ {
		name := "load" + strconv.Itoa(i)
		fs, detach, err := d.mgr.AttachSession(name)
		if err != nil {
			t.Fatalf("attach %s for bleed check: %v", name, err)
		}
		if err := fs.WriteFile("/tmp/chaos-marker", []byte(name)); err != nil {
			t.Fatalf("stamp %s: %v", name, err)
		}
		stamps = append(stamps, stamped{name, fs, detach})
	}
	for _, s := range stamps {
		got, err := s.fs.ReadFile("/tmp/chaos-marker")
		if err != nil || string(got) != s.name {
			t.Fatalf("session %s marker = %q, %v: state bled across sessions", s.name, got, err)
		}
	}

	// Capture each live session's visible state, then drain and prove
	// the journals reproduce it byte for byte.
	prints := map[string]string{}
	for _, s := range stamps {
		prints[s.name] = fingerprint(t, s.fs)
	}
	for _, s := range stamps {
		s.detach()
	}
	d.shutdown(t, 60*time.Second)

	for _, name := range d.journalNames() {
		want, ok := prints[name]
		if !ok {
			continue
		}
		w2, err := sharedTemplate(t).NewSession(60, 20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RecoverSession(w2.Help, d.journals[name]); err != nil {
			t.Fatalf("recover %s: %v", name, err)
		}
		if got := fingerprint(t, w2.FS); got != want {
			t.Fatalf("session %s did not recover byte-for-byte:\n-- live --\n%s\n-- recovered --\n%s", name, want, got)
		}
	}

	// Invariant: everything parked was released.
	if n := d.srv.WaiterCount(); n != 0 {
		t.Fatalf("%d waiters still parked after shutdown", n)
	}
	// Invariant: no goroutine leaks.
	waitUntil(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+4
	})
}

// TestChaosOverload drives a deliberately tiny daemon past its budgets
// and proves the refusals are typed (ErrBusy with retry-after), the
// slow-reader policy disconnects stalled peers, and exhausted waiter
// budgets degrade to polls — the overload scenario of the acceptance
// criteria.
func TestChaosOverload(t *testing.T) {
	sharedTemplate(t)
	runtime.GC()
	before := runtime.NumGoroutine()

	d := startDaemon(t,
		func(c *sessiond.Config) {
			c.MaxBytes = 96 * 1024
			c.MaxSessionBytes = 64 * 1024
			c.RetryAfter = 20 * time.Millisecond
		},
		func(s *srvnet.Server) {
			s.MaxWaiters = 1
			s.WriteTimeout = 50 * time.Millisecond
		},
		func(i int) *faultnet.Script {
			// Half the connections stall a server-side response write:
			// the slow-reader policy must disconnect them rather than
			// buffer forever.
			if i%2 == 0 {
				return nil
			}
			return faultnet.NewScript(faultnet.Fault{Op: "write", After: 4, Kind: faultnet.Stall})
		})

	big := strings.Repeat("m", 16*1024)
	trace := &loadgen.Trace{Ops: []loadgen.Op{
		{Verb: "newwin"},
		{Verb: "write", Path: "$W/body", Data: big},
		{Verb: "readwait", Path: "log"},
		{Verb: "read", Path: "$W/body"},
		{Verb: "readwait", Path: "log"},
		{Verb: "ctl", Path: "$W/ctl", Data: "delete\n"},
	}}

	st, err := loadgen.Replay(loadgen.Config{
		Addr:       d.addr,
		Users:      12,
		Sessions:   6,
		Iterations: 3,
		Seed:       7,
		Trace:      trace,
		Obs:        d.reg,
		BusyBudget: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overload replay: %s", st)

	if st.Busy == 0 {
		t.Fatal("overloaded daemon produced no typed busy refusals")
	}
	stats := d.reg.StatsMap()
	if stats["daemon.budget.refused.mem"] == 0 && stats["core.mem.refused"] == 0 {
		t.Fatalf("no memory-budget refusals counted: %v", stats)
	}
	if stats["srvnet.backpressure.disconnect"] == 0 {
		t.Fatal("stalled readers were never disconnected (slow-reader policy)")
	}
	if stats["srvnet.backpressure.poll"] == 0 {
		t.Fatal("waiter budget exhaustion never degraded a readwait to a poll")
	}
	if st.SeqRegressions != 0 {
		t.Fatalf("notify sequence regressed %d times", st.SeqRegressions)
	}

	d.shutdown(t, 30*time.Second)
	waitUntil(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+4
	})
}

// TestDrainUnparksWaiters proves the drain story for parked long polls:
// clients blocked in readwait on /mnt/help/log and a window's event
// file are all released with the typed draining error, within the drain
// budget, leaking nothing.
func TestDrainUnparksWaiters(t *testing.T) {
	sharedTemplate(t)
	runtime.GC()
	before := runtime.NumGoroutine()

	d := startDaemon(t, nil, nil, nil)

	const parked = 6
	results := make(chan error, parked)
	var clients []*srvnet.ReconnectingClient
	for i := 0; i < parked; i++ {
		c := srvnet.NewReconnectingClient(d.addr)
		c.Session = "drain" + strconv.Itoa(i%2)
		clients = append(clients, c)
		path := world.MountRoot + "/log"
		if i%2 == 1 {
			// Half park on a window event file instead of the session log.
			winID, err := c.ReadFile(world.MountRoot + "/new/ctl")
			if err != nil {
				t.Fatalf("new window: %v", err)
			}
			path = world.MountRoot + "/" + strings.TrimSpace(string(winID)) + "/event"
		}
		go func(c *srvnet.ReconnectingClient, path string) {
			// Wait far past the drain budget: only the drain can free us.
			_, _, err := c.ReadWait(path, ^uint64(0)>>1, 25*time.Second)
			results <- err
		}(c, path)
	}
	waitUntil(t, "clients to park", func() bool { return d.srv.WaiterCount() == parked })

	start := time.Now()
	d.shutdown(t, 10*time.Second)

	for i := 0; i < parked; i++ {
		select {
		case err := <-results:
			if !errors.Is(err, srvnet.ErrDraining) {
				t.Fatalf("parked waiter returned %v, want ErrDraining", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d still parked %v after drain", i, time.Since(start))
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v, over the budget", elapsed)
	}
	if n := d.srv.WaiterCount(); n != 0 {
		t.Fatalf("WaiterCount = %d after drain", n)
	}
	for _, c := range clients {
		c.Close()
	}
	waitUntil(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+4
	})
}
