package journal

import (
	"errors"
	"strconv"
	"testing"
)

func TestLockExcludesSecondHolder(t *testing.T) {
	mem := NewMemFS()
	l1, err := AcquireLock(mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireLock(mem); !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire: err = %v, want ErrLocked", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireLock(mem)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	l2.Release()
	l2.Release() // idempotent
}

func TestLockStealsFromDeadHolder(t *testing.T) {
	mem := NewMemFS()
	// A pid far above any kernel's pid_max: the holder cannot be alive.
	mem.WriteFile(LockName, []byte(strconv.Itoa(1<<30)+"\n"))
	l, err := AcquireLock(mem)
	if err != nil {
		t.Fatalf("acquire over stale lock: %v", err)
	}
	l.Release()
}

func TestLockCoexistsWithJournal(t *testing.T) {
	mem := NewMemFS()
	l, err := AcquireLock(mem)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	w, err := Open(mem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(&Op{Kind: OpSplice, Win: 1, Str1: "x"})
	w.Checkpoint([]byte("snap"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Load(mem)
	if err != nil {
		t.Fatalf("Load with lockfile present: %v", err)
	}
	if string(st.Checkpoint) != "snap" {
		t.Fatalf("checkpoint = %q", st.Checkpoint)
	}
}
