package journal

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Policy selects when the Writer calls fsync.
type Policy int

const (
	// SyncBatch fsyncs once per group-committed batch (the default):
	// bounded data loss (the last batch) at interactive cost.
	SyncBatch Policy = iota
	// SyncAlways fsyncs after every record. Maximum durability.
	SyncAlways
	// SyncNever leaves syncing to the operating system.
	SyncNever
)

// ParsePolicy maps the -journal-fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want batch, always, or never)", s)
}

// Config parameterizes a Writer.
type Config struct {
	Fsync Policy
	// QueueSize bounds the append queue; 0 means a default. Appends
	// beyond a full queue block briefly rather than drop.
	QueueSize int
}

// item is one unit of work for the background writer goroutine.
type item struct {
	rec  []byte // framed record to append, if non-nil
	ckpt []byte // checkpoint payload, if non-nil
	gen  uint64 // checkpoint generation
	done chan error
	quit bool
}

// Writer is the group-commit journal appender. Append and Checkpoint
// enqueue and return immediately; a single goroutine drains the queue
// in batches, writes, and fsyncs per the configured Policy. After the
// first write or sync error the Writer goes degraded: it keeps
// draining (counting drops) so the session stays interactive, and
// reports the error once via OnError.
type Writer struct {
	fsys Fsys
	cfg  Config

	// OnError, if set before the first Append, is called once from the
	// writer goroutine when the journal goes degraded.
	OnError func(error)

	mu     sync.Mutex // orders gen assignment with queue insertion
	gen    uint64     // last assigned generation
	closed bool
	crash  int // crash-report sequence

	// errMu guards failed, and nothing else. It must stay separate
	// from mu: an Append can block on a full queue while holding mu,
	// and the drain goroutine reads failed on its way to freeing queue
	// slots — sharing one lock would deadlock the pair.
	errMu  sync.Mutex
	failed error

	ch   chan item
	done chan struct{}

	// Writer-goroutine state.
	seg     File
	segBase uint64
	base    uint64 // generation of the last durable checkpoint

	// Observability handles; nil-safe when unset.
	obsAppends *obs.Counter
	obsBytes   *obs.Counter
	obsBatches *obs.Counter
	obsFsyncs  *obs.Counter
	obsCkpts   *obs.Counter
	obsDrops   *obs.Counter
	obsErrors  *obs.Counter
	obsBatchH  *obs.Histogram
}

// Open creates a Writer over an existing (possibly non-empty) journal
// directory. Generation numbering continues from the highest number
// found anywhere in the directory — scanned leniently, so that opening
// after a crash-with-torn-tail still works — which keeps generations
// monotonic across restarts and lets recovery trust "greater gen wins".
func Open(fsys Fsys, cfg Config) (*Writer, error) {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4096
	}
	w := &Writer{
		fsys: fsys,
		cfg:  cfg,
		ch:   make(chan item, cfg.QueueSize),
		done: make(chan struct{}),
	}
	maxGen, err := scanMaxGen(fsys)
	if err != nil {
		return nil, err
	}
	w.gen = maxGen
	w.base = maxGen
	go w.run()
	return w, nil
}

// SetObs installs observability counters under the journal.* prefix.
func (w *Writer) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	w.obsAppends = r.Counter("journal.appends")
	w.obsBytes = r.Counter("journal.bytes")
	w.obsBatches = r.Counter("journal.batches")
	w.obsFsyncs = r.Counter("journal.fsyncs")
	w.obsCkpts = r.Counter("journal.checkpoints")
	w.obsDrops = r.Counter("journal.drops")
	w.obsErrors = r.Counter("journal.errors")
	w.obsBatchH = r.Histogram("journal.batch")
}

// Append stamps op with the next generation and enqueues it. It never
// blocks on disk; it can block briefly if the queue is full (the
// writer goroutine is strictly faster than interactive input in
// practice). Returns the assigned generation.
func (w *Writer) Append(op *Op) uint64 {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.obsDrops.Inc()
		return 0
	}
	w.gen++
	op.Gen = w.gen
	rec := EncodeOp(op)
	w.ch <- item{rec: rec}
	g := op.Gen
	w.mu.Unlock()
	w.obsAppends.Inc()
	w.obsBytes.Add(int64(len(rec)))
	return g
}

// Checkpoint enqueues a full-session snapshot. When the writer
// goroutine reaches it, every record appended before this call has
// been written; the snapshot is written atomically (tmp+rename) and
// all older segments are deleted. Asynchronous, like Append.
func (w *Writer) Checkpoint(payload []byte) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	g := w.gen
	w.ch <- item{ckpt: payload, gen: g}
	w.mu.Unlock()
}

// Flush blocks until everything enqueued so far is written (and synced
// under SyncBatch/SyncAlways), returning the degraded error if any.
func (w *Writer) Flush() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	it := item{done: make(chan error, 1)}
	w.ch <- it
	w.mu.Unlock()
	return <-it.done
}

// Close flushes, stops the writer goroutine, and closes the segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	it := item{done: make(chan error, 1), quit: true}
	w.ch <- it
	w.mu.Unlock()
	err := <-it.done
	<-w.done
	return err
}

// Err reports the degraded-state error, nil while healthy.
func (w *Writer) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.failed
}

// WriteCrashReport writes a numbered crash-NNN.txt next to the journal
// and returns its name. Called on the panic-recovery path, so it is
// deliberately direct (not queued) and swallows nothing.
func (w *Writer) WriteCrashReport(report []byte) (string, error) {
	w.mu.Lock()
	w.crash++
	name := fmt.Sprintf("crash-%03d.txt", w.crash)
	w.mu.Unlock()
	f, err := w.fsys.Create(name)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(report); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	return name, f.Close()
}

// run is the writer goroutine: drain the queue, group-commit batches.
func (w *Writer) run() {
	defer close(w.done)
	for it := range w.ch {
		batch := []item{it}
		// Group commit: take everything already queued.
	drain:
		for {
			select {
			case more := <-w.ch:
				batch = append(batch, more)
			default:
				break drain
			}
		}
		t0 := time.Now()
		var buf []byte
		flushBuf := func() {
			if len(buf) == 0 {
				return
			}
			w.writeBatch(buf)
			buf = buf[:0]
		}
		quit := false
		for _, b := range batch {
			switch {
			case b.rec != nil:
				buf = append(buf, b.rec...)
				if w.cfg.Fsync == SyncAlways {
					flushBuf()
				}
			case b.ckpt != nil:
				flushBuf()
				w.checkpoint(b.gen, b.ckpt)
			case b.done != nil:
				flushBuf()
				w.syncSeg()
				b.done <- w.getFailed()
				if b.quit {
					quit = true
				}
			}
		}
		flushBuf()
		if w.cfg.Fsync != SyncNever {
			w.syncSeg()
		}
		w.obsBatches.Inc()
		if w.obsBatchH != nil {
			w.obsBatchH.Observe(time.Since(t0))
		}
		if quit {
			if w.seg != nil {
				w.seg.Close()
				w.seg = nil
			}
			return
		}
	}
}

func (w *Writer) getFailed() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.failed
}

// fail flips the Writer into degraded mode on the first error.
func (w *Writer) fail(err error) {
	w.errMu.Lock()
	first := w.failed == nil
	if first {
		w.failed = err
	}
	w.errMu.Unlock()
	w.obsErrors.Inc()
	if first && w.OnError != nil {
		// Off the writer goroutine: the handler may itself append to
		// the journal (fault reports edit the Errors window), and a
		// full queue would otherwise deadlock the drain loop.
		go w.OnError(err)
	}
}

// ensureSeg opens the current segment, creating it with its header if
// this is the first record since the last checkpoint.
func (w *Writer) ensureSeg() bool {
	if w.seg != nil {
		return true
	}
	name := segmentName(w.base)
	f, err := w.fsys.Create(name)
	if err != nil {
		w.fail(fmt.Errorf("journal: create %s: %w", name, err))
		return false
	}
	if _, err := f.Write(appendSegmentHeader(nil, w.base)); err != nil {
		f.Close()
		w.fail(fmt.Errorf("journal: write %s header: %w", name, err))
		return false
	}
	w.seg = f
	w.segBase = w.base
	return true
}

func (w *Writer) writeBatch(buf []byte) {
	if w.getFailed() != nil {
		w.obsDrops.Inc()
		return
	}
	if !w.ensureSeg() {
		w.obsDrops.Inc()
		return
	}
	if _, err := w.seg.Write(buf); err != nil {
		w.fail(fmt.Errorf("journal: append: %w", err))
		return
	}
	if w.cfg.Fsync == SyncAlways {
		w.syncSeg()
	}
}

func (w *Writer) syncSeg() {
	if w.seg == nil || w.getFailed() != nil {
		return
	}
	if err := w.seg.Sync(); err != nil {
		w.fail(fmt.Errorf("journal: fsync: %w", err))
		return
	}
	w.obsFsyncs.Inc()
}

// checkpoint writes the snapshot atomically, rotates to a fresh
// segment base, and compacts: once the new checkpoint is durable,
// every existing segment holds only generations at or below gen and
// is deleted. A crash anywhere before the rename leaves the previous
// checkpoint + segments fully intact.
func (w *Writer) checkpoint(gen uint64, payload []byte) {
	if w.getFailed() != nil {
		return
	}
	const tmp = "checkpoint.tmp"
	f, err := w.fsys.Create(tmp)
	if err != nil {
		w.fail(fmt.Errorf("journal: checkpoint: %w", err))
		return
	}
	if _, err := f.Write(encodeCheckpoint(gen, payload)); err != nil {
		f.Close()
		w.fail(fmt.Errorf("journal: checkpoint write: %w", err))
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		w.fail(fmt.Errorf("journal: checkpoint fsync: %w", err))
		return
	}
	if err := f.Close(); err != nil {
		w.fail(fmt.Errorf("journal: checkpoint close: %w", err))
		return
	}
	if err := w.fsys.Rename(tmp, "checkpoint"); err != nil {
		w.fail(fmt.Errorf("journal: checkpoint rename: %w", err))
		return
	}
	if w.seg != nil {
		w.seg.Close()
		w.seg = nil
	}
	w.base = gen
	// Compaction: every record written so far has gen <= the new
	// checkpoint's, so all existing segments are stale.
	if names, err := w.fsys.List(); err == nil {
		for _, name := range names {
			if _, ok := parseSegmentName(name); ok {
				w.fsys.Remove(name)
			}
		}
	}
	w.obsCkpts.Inc()
	if w.cfg.Fsync == SyncAlways || w.cfg.Fsync == SyncBatch {
		w.obsFsyncs.Inc()
	}
}

// scanMaxGen finds the highest generation recorded anywhere in the
// directory. Lenient by design: torn tails and even corrupt middles
// must not stop a new Writer from picking a safely-larger generation.
func scanMaxGen(fsys Fsys) (uint64, error) {
	names, err := fsys.List()
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, name := range names {
		if name == "checkpoint" {
			if b, err := fsys.ReadFile(name); err == nil {
				if gen, _, err := decodeCheckpoint(b); err == nil && gen > max {
					max = gen
				}
			}
			continue
		}
		base, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		if base > max {
			max = base
		}
		b, err := fsys.ReadFile(name)
		if err != nil {
			continue
		}
		for _, op := range scanOps(b) {
			if op.Gen > max {
				max = op.Gen
			}
		}
	}
	return max, nil
}

// scanOps decodes as many well-formed records as possible, ignoring
// any damage. Used only for generation scanning, never for replay.
func scanOps(seg []byte) []Op {
	var ops []Op
	ends := RecordEnds(seg)
	if len(ends) == 0 {
		return nil
	}
	for i := 1; i < len(ends); i++ {
		payload := seg[ends[i-1]+recHeaderLen : ends[i]]
		if op, err := decodeOpPayload(payload); err == nil {
			ops = append(ops, op)
		}
	}
	return ops
}
