package journal

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// LockName is the lockfile guarding a journal directory. One holder at
// a time: two daemons opening the same session state would interleave
// segments and corrupt both.
const LockName = "journal.lock"

// ErrLocked reports that another live process holds the journal
// directory. Test with errors.Is.
var ErrLocked = errors.New("journal: directory locked")

// ExclusiveFsys is implemented by backends whose Create can be atomic
// with an existence check. Both DirFS (O_EXCL) and MemFS implement it;
// a backend that does not gets a best-effort check-then-create.
type ExclusiveFsys interface {
	CreateExclusive(name string) (File, error)
}

// DirLock is a held journal-directory lock.
type DirLock struct {
	fsys Fsys
	pid  int
}

// AcquireLock takes the directory lock, writing the holder's pid into
// the lockfile. A lockfile whose recorded pid no longer names a live
// process is stale — the previous daemon died without releasing — and
// is stolen. A live holder (including this process, which covers two
// managers opened over one directory) yields ErrLocked with the pid in
// the message.
func AcquireLock(fsys Fsys) (*DirLock, error) {
	pid := os.Getpid()
	for attempt := 0; attempt < 3; attempt++ {
		f, err := createExclusive(fsys, LockName)
		if err == nil {
			if _, werr := f.Write([]byte(strconv.Itoa(pid) + "\n")); werr != nil {
				f.Close()
				fsys.Remove(LockName)
				return nil, werr
			}
			f.Sync()
			if cerr := f.Close(); cerr != nil {
				fsys.Remove(LockName)
				return nil, cerr
			}
			return &DirLock{fsys: fsys, pid: pid}, nil
		}
		holder, rerr := lockHolder(fsys)
		if rerr != nil {
			// Raced with a concurrent release; try again.
			continue
		}
		if holder > 0 && holder != pid && !pidAlive(holder) {
			fsys.Remove(LockName)
			continue
		}
		return nil, fmt.Errorf("%w by pid %d", ErrLocked, holder)
	}
	return nil, ErrLocked
}

// Release gives the lock up. Safe to call more than once.
func (l *DirLock) Release() error {
	if l == nil || l.fsys == nil {
		return nil
	}
	fsys := l.fsys
	l.fsys = nil
	if err := fsys.Remove(LockName); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

func createExclusive(fsys Fsys, name string) (File, error) {
	if ex, ok := fsys.(ExclusiveFsys); ok {
		return ex.CreateExclusive(name)
	}
	names, err := fsys.List()
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if n == name {
			return nil, fmt.Errorf("journal: %s: %w", name, os.ErrExist)
		}
	}
	return fsys.Create(name)
}

func lockHolder(fsys Fsys) (int, error) {
	b, err := fsys.ReadFile(LockName)
	if err != nil {
		return 0, err
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0, nil // unreadable holder: treat as unknown but present
	}
	return pid, nil
}

// pidAlive reports whether pid names a live process: signal 0 probes
// existence without delivering anything. EPERM means alive but owned
// by someone else.
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}
