package journal

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func sampleOps() []Op {
	return []Op{
		{Kind: OpSplice, Win: 3, Sub: 1, P0: 10, P1: 4, Str1: "héllo\nwörld"},
		{Kind: OpClean, Win: 3, Flag: true},
		{Kind: OpSelect, Win: 2, Sub: 0, P0: 0, P1: 99},
		{Kind: OpCurrent, Win: 7, Sub: 1},
		{Kind: OpSnarf, Str1: strings.Repeat("snarf ", 100)},
		{Kind: OpNewWin, Win: 9, Flag: true},
		{Kind: OpCloseWin, Win: 9},
		{Kind: OpPlace, Win: 3, P0: 1, P1: 12, P2: 3},
		{Kind: OpScroll, Win: 3, P0: 42},
		{Kind: OpColSplit, P0: 60},
		{Kind: OpFile, P0: 1, P1: 0, Str1: "/usr/rob/file", Str2: "contents\x00with\xffbytes"},
	}
}

func TestOpRoundTrip(t *testing.T) {
	for i, op := range sampleOps() {
		op.Gen = uint64(i + 1)
		payload := appendOpPayload(nil, &op)
		got, err := decodeOpPayload(payload)
		if err != nil {
			t.Fatalf("op %d: decode: %v", i, err)
		}
		if got != op {
			t.Fatalf("op %d: round trip\n got %+v\nwant %+v", i, got, op)
		}
	}
}

// Negative ints must survive (window coords can go negative transiently).
func TestOpRoundTripNegative(t *testing.T) {
	op := Op{Kind: OpPlace, Gen: 5, Win: 1, P0: -1, P1: -200, P2: -3}
	got, err := decodeOpPayload(appendOpPayload(nil, &op))
	if err != nil {
		t.Fatal(err)
	}
	if got != op {
		t.Fatalf("got %+v want %+v", got, op)
	}
}

// Every truncation of a valid payload must fail cleanly, never panic.
func TestDecodeOpPayloadTruncated(t *testing.T) {
	op := Op{Kind: OpSplice, Gen: 77, Win: 1, Sub: 1, P0: 5, P1: 2, Str1: "abc", Str2: "xy"}
	payload := appendOpPayload(nil, &op)
	for n := 0; n < len(payload); n++ {
		if _, err := decodeOpPayload(payload[:n]); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", n, len(payload))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

func TestDecodeOpPayloadMalformed(t *testing.T) {
	op := Op{Kind: OpSnarf, Gen: 1, Str1: "hello"}
	good := appendOpPayload(nil, &op)

	bad := append([]byte(nil), good...)
	bad[0] = 200 // unknown kind
	if _, err := decodeOpPayload(bad); err == nil {
		t.Fatal("unknown kind decoded cleanly")
	}

	trailing := append(append([]byte(nil), good...), 0xff)
	if _, err := decodeOpPayload(trailing); err == nil {
		t.Fatal("trailing bytes decoded cleanly")
	}

	// A string length pointing past the buffer.
	op2 := Op{Kind: OpSnarf, Gen: 1}
	short := appendOpPayload(nil, &op2)
	short[len(short)-2] = 0x7f // str1 length = 127, but no bytes follow
	if _, err := decodeOpPayload(short); err == nil {
		t.Fatal("oversized string length decoded cleanly")
	}
}

func writeOps(t *testing.T, fs Fsys, ops []Op) *Writer {
	t.Helper()
	w, err := Open(fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ops {
		w.Append(&ops[i])
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWriterReaderRoundTrip(t *testing.T) {
	fs := NewMemFS()
	ops := sampleOps()
	w := writeOps(t, fs, ops)
	defer w.Close()

	st, err := Load(fs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn {
		t.Fatalf("unexpected torn tail: %s", st.TornReason)
	}
	if len(st.Ops) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(st.Ops), len(ops))
	}
	for i, got := range st.Ops {
		if got.Gen != uint64(i+1) {
			t.Fatalf("op %d: gen %d, want %d", i, got.Gen, i+1)
		}
		want := ops[i]
		want.Gen = got.Gen
		if got != want {
			t.Fatalf("op %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if st.MaxGen != uint64(len(ops)) {
		t.Fatalf("MaxGen %d, want %d", st.MaxGen, len(ops))
	}
}

func TestLoadEmpty(t *testing.T) {
	if _, err := Load(NewMemFS()); !errors.Is(err, ErrNoState) {
		t.Fatalf("got %v, want ErrNoState", err)
	}
}

// A crash can tear the journal at any byte. Every truncation of the
// final segment must load as a clean prefix (possibly with Torn set) —
// never a panic, never an error, never a resurrected torn record.
func TestTornTailEveryByte(t *testing.T) {
	fs := NewMemFS()
	ops := sampleOps()
	w := writeOps(t, fs, ops)
	w.Close()

	seg, err := fs.ReadFile(segmentName(0))
	if err != nil {
		t.Fatal(err)
	}
	ends := RecordEnds(seg)
	if len(ends) != len(ops)+1 {
		t.Fatalf("RecordEnds found %d boundaries, want %d", len(ends), len(ops)+1)
	}
	isEnd := make(map[int]bool, len(ends))
	for _, e := range ends {
		isEnd[e] = true
	}
	for n := 0; n <= len(seg); n++ {
		cut := fs.Clone()
		cut.WriteFile(segmentName(0), seg[:n])
		st, err := Load(cut)
		if err != nil {
			t.Fatalf("cut at %d: %v", n, err)
		}
		// Ops = number of whole records that fit below the cut.
		want := 0
		for _, e := range ends {
			if e <= n && e > segHeaderLen {
				want++
			}
		}
		if len(st.Ops) != want {
			t.Fatalf("cut at %d: got %d ops, want %d", n, len(st.Ops), want)
		}
		// Torn exactly when the cut lands mid-header or mid-record.
		if wantTorn := !isEnd[n]; st.Torn != wantTorn {
			t.Fatalf("cut at %d: Torn=%v, want %v", n, st.Torn, wantTorn)
		}
	}
}

func TestCorruptMidFile(t *testing.T) {
	fs := NewMemFS()
	ops := sampleOps()
	w := writeOps(t, fs, ops)
	w.Close()

	seg, _ := fs.ReadFile(segmentName(0))
	ends := RecordEnds(seg)

	// Flip a byte inside the FIRST record's payload: CRC fails mid-file.
	bad := append([]byte(nil), seg...)
	bad[ends[0]+recHeaderLen] ^= 0xff
	fs.WriteFile(segmentName(0), bad)
	if _, err := Load(fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file bit flip: got %v, want ErrCorrupt", err)
	}

	// An absurd record length is corruption, not a tear.
	bad = append([]byte(nil), seg...)
	bad[ends[0]+3] = 0xff // length |= 0xff000000 > MaxRecord
	fs.WriteFile(segmentName(0), bad)
	if _, err := Load(fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd length: got %v, want ErrCorrupt", err)
	}

	// Bad segment magic.
	bad = append([]byte(nil), seg...)
	bad[0] = 'X'
	fs.WriteFile(segmentName(0), bad)
	if _, err := Load(fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

// A CRC mismatch on the final record of the final segment is treated as
// a torn in-place write and discarded.
func TestTornFinalChecksum(t *testing.T) {
	fs := NewMemFS()
	ops := sampleOps()
	w := writeOps(t, fs, ops)
	w.Close()

	seg, _ := fs.ReadFile(segmentName(0))
	bad := append([]byte(nil), seg...)
	bad[len(bad)-1] ^= 0xff
	fs.WriteFile(segmentName(0), bad)
	st, err := Load(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Torn {
		t.Fatal("final-record checksum mismatch not reported as torn")
	}
	if len(st.Ops) != len(ops)-1 {
		t.Fatalf("got %d ops, want %d", len(st.Ops), len(ops)-1)
	}
}

func TestCheckpointCompaction(t *testing.T) {
	fs := NewMemFS()
	w, err := Open(fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := 0; i < 5; i++ {
		w.Append(&Op{Kind: OpScroll, Win: 1, P0: i})
	}
	w.Checkpoint([]byte("snapshot-at-5"))
	w.Append(&Op{Kind: OpScroll, Win: 1, P0: 99})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	names, _ := fs.List()
	var segs []string
	for _, n := range names {
		if _, ok := parseSegmentName(n); ok {
			segs = append(segs, n)
		}
	}
	if len(segs) != 1 || segs[0] != segmentName(5) {
		t.Fatalf("after checkpoint: segments %v, want [%s]", segs, segmentName(5))
	}

	st, err := Load(fs)
	if err != nil {
		t.Fatal(err)
	}
	if st.CkptGen != 5 || string(st.Checkpoint) != "snapshot-at-5" {
		t.Fatalf("checkpoint gen %d payload %q", st.CkptGen, st.Checkpoint)
	}
	if len(st.Ops) != 1 || st.Ops[0].P0 != 99 || st.Ops[0].Gen != 6 {
		t.Fatalf("replay tail %+v", st.Ops)
	}
}

// Stale segments from before the checkpoint (simulating a crash between
// rename and compaction) must be ignored by Load.
func TestLoadIgnoresPreCheckpointSegments(t *testing.T) {
	fs := NewMemFS()
	w, err := Open(fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.Append(&Op{Kind: OpScroll, Win: 1, P0: i})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	stale, _ := fs.ReadFile(segmentName(0))
	w.Checkpoint([]byte("ckpt"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Resurrect the stale pre-checkpoint segment.
	fs.WriteFile(segmentName(0), stale)
	st, err := Load(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Ops) != 0 {
		t.Fatalf("stale segment replayed: %+v", st.Ops)
	}
}

func TestGenerationContinuesAcrossReopen(t *testing.T) {
	fs := NewMemFS()
	w := writeOps(t, fs, sampleOps())
	w.Close()

	w2, err := Open(fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	g := w2.Append(&Op{Kind: OpScroll, Win: 1})
	if g != uint64(len(sampleOps())+1) {
		t.Fatalf("reopened gen %d, want %d", g, len(sampleOps())+1)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if st, err := Load(fs); err != nil {
		t.Fatal(err)
	} else if st.MaxGen != g {
		t.Fatalf("MaxGen %d, want %d", st.MaxGen, g)
	}
}

// Reopening after a torn tail must also keep generations monotonic: the
// torn record's generation is gone, but scanning is lenient.
func TestReopenAfterTornTail(t *testing.T) {
	fs := NewMemFS()
	w := writeOps(t, fs, sampleOps())
	w.Close()
	seg, _ := fs.ReadFile(segmentName(0))
	fs.WriteFile(segmentName(0), seg[:len(seg)-3])

	w2, err := Open(fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if g := w2.Append(&Op{Kind: OpScroll, Win: 1}); g < uint64(len(sampleOps())) {
		t.Fatalf("gen %d reused after torn tail", g)
	}
}

func TestPolicies(t *testing.T) {
	for _, pol := range []Policy{SyncBatch, SyncAlways, SyncNever} {
		fs := NewMemFS()
		w, err := Open(fs, Config{Fsync: pol})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			w.Append(&Op{Kind: OpScroll, Win: 1, P0: i})
		}
		if err := w.Close(); err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
		st, err := Load(fs)
		if err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
		if len(st.Ops) != 10 {
			t.Fatalf("policy %d: %d ops", pol, len(st.Ops))
		}
	}
}

// A sustained burst that overruns the queue must only apply
// backpressure, never deadlock. This is a regression test: Append
// blocks on a full queue while holding the gen-ordering mutex, so the
// drain goroutine must never need that mutex to free queue slots.
func TestAppendBackpressureNoDeadlock(t *testing.T) {
	fs := NewMemFS()
	w, err := Open(fs, Config{QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			w.Append(&Op{Kind: OpSplice, Win: 1, Sub: 1, P0: i, Str1: "burst line\n"})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("appends deadlocked against the drain goroutine")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Load(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Ops) != n {
		t.Fatalf("%d ops survived the burst, want %d", len(st.Ops), n)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"batch": SyncBatch, "always": SyncAlways, "never": SyncNever, "": SyncBatch} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// failFS passes everything through until armed, then fails all writes.
type failFS struct {
	*MemFS
	fail bool
}

type failFile struct {
	File
	fs *failFS
}

func (f *failFS) Create(name string) (File, error) {
	inner, err := f.MemFS.Create(name)
	if err != nil {
		return nil, err
	}
	return failFile{File: inner, fs: f}, nil
}

func (f failFile) Write(p []byte) (int, error) {
	if f.fs.fail {
		return 0, fmt.Errorf("disk on fire")
	}
	return f.File.Write(p)
}

func TestWriterDegraded(t *testing.T) {
	fs := &failFS{MemFS: NewMemFS()}
	w, err := Open(fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	reported := make(chan error, 1)
	w.OnError = func(err error) { reported <- err }

	w.Append(&Op{Kind: OpScroll, Win: 1})
	if err := w.Flush(); err != nil {
		t.Fatalf("healthy flush: %v", err)
	}

	fs.fail = true
	w.Append(&Op{Kind: OpScroll, Win: 1})
	if err := w.Flush(); err == nil {
		t.Fatal("degraded flush returned nil")
	}
	if err := <-reported; err == nil {
		t.Fatal("OnError got nil")
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after failure")
	}
	// Still alive: appends drain without blocking or panicking.
	for i := 0; i < 100; i++ {
		w.Append(&Op{Kind: OpScroll, Win: 1, P0: i})
	}
	w.Flush()
}

func TestWriteCrashReport(t *testing.T) {
	fs := NewMemFS()
	w, err := Open(fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	name, err := w.WriteCrashReport([]byte("panic: boom"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "crash-001.txt" {
		t.Fatalf("first report named %q", name)
	}
	if b, err := fs.ReadFile(name); err != nil || string(b) != "panic: boom" {
		t.Fatalf("report contents %q, %v", b, err)
	}
	if name2, _ := w.WriteCrashReport(nil); name2 != "crash-002.txt" {
		t.Fatalf("second report named %q", name2)
	}
}

func TestAppendAfterClose(t *testing.T) {
	fs := NewMemFS()
	w, _ := Open(fs, Config{})
	w.Close()
	if g := w.Append(&Op{Kind: OpScroll}); g != 0 {
		t.Fatalf("append after close returned gen %d", g)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush after close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCheckpointCorruptIsError(t *testing.T) {
	fs := NewMemFS()
	w, _ := Open(fs, Config{})
	w.Append(&Op{Kind: OpScroll, Win: 1})
	w.Checkpoint([]byte("payload"))
	w.Flush()
	w.Close()

	b, _ := fs.ReadFile("checkpoint")
	b[len(b)-1] ^= 0xff
	fs.WriteFile("checkpoint", b)
	if _, err := Load(fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt checkpoint: got %v, want ErrCorrupt", err)
	}
}
