package journal

import (
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at every decoding surface a
// crash can expose: op payloads, whole segments (both mid-sequence and
// final), checkpoints, and the boundary scanner. The property under
// test is absolute: no input panics, and any op that decodes survives
// an encode/decode round trip unchanged (nothing is half-believed).
func FuzzJournalDecode(f *testing.F) {
	for _, op := range []Op{
		{Kind: OpSplice, Gen: 1, Win: 2, Sub: 1, P0: 3, P1: 4, Str1: "hello"},
		{Kind: OpSnarf, Gen: 9, Str1: "snarf", Str2: "aux"},
		{Kind: OpFile, Gen: 1 << 40, P0: 2, Str1: "/a/b"},
	} {
		f.Add(appendOpPayload(nil, &op))
		seg := appendSegmentHeader(nil, 0)
		f.Add(appendRecord(seg, appendOpPayload(nil, &op)))
		f.Add(encodeCheckpoint(op.Gen, appendOpPayload(nil, &op)))
	}
	f.Add([]byte(segMagic))
	f.Add([]byte(ckptMagic))

	f.Fuzz(func(t *testing.T, b []byte) {
		if op, err := decodeOpPayload(b); err == nil {
			// Varints may arrive non-minimally encoded, so compare ops,
			// not bytes.
			got, err := decodeOpPayload(appendOpPayload(nil, &op))
			if err != nil || got != op {
				t.Fatalf("round trip diverged: %+v -> %+v (%v)", op, got, err)
			}
		}
		decodeSegment("wal-00000000000000000000.log", b, true)
		decodeSegment("wal-00000000000000000000.log", b, false)
		decodeCheckpoint(b)
		for _, e := range RecordEnds(b) {
			if e < segHeaderLen || e > len(b) {
				t.Fatalf("RecordEnds offset %d out of range", e)
			}
		}

		// A fuzzed byte string must also survive the full store path:
		// treat b as a segment tail grafted onto a valid journal.
		fs := NewMemFS()
		w, err := Open(fs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		w.Append(&Op{Kind: OpScroll, Win: 1})
		w.Flush()
		w.Close()
		seg, _ := fs.ReadFile(segmentName(0))
		fs.WriteFile(segmentName(0), append(seg, b...))
		Load(fs) // must not panic, any error is fine
	})
}
