// Package journal provides the write-ahead log behind crash-safe help
// sessions. The design follows classic database recovery split into a
// help-sized shape:
//
//   - Every session mutation is an Op — a small, self-describing record
//     (splice, selection, window placement, snarf, file write, ...)
//     stamped with a strictly increasing generation number.
//   - Ops are framed on disk as [4-byte length][4-byte CRC32][payload]
//     and appended to segment files named wal-<gen>.log, where <gen> is
//     the generation of the checkpoint the segment follows.
//   - Periodically the whole session (vfs contents, windows, layout,
//     selections, snarf) is snapshotted into a checkpoint file, written
//     atomically via tmp+rename; older segments are then deleted
//     (compaction), so the journal's size is bounded by one checkpoint
//     plus the tail of ops since.
//   - Recovery = decode checkpoint, replay ops with generation greater
//     than the checkpoint's, in order. A torn final record (power cut
//     mid-append) is detected by the length/CRC framing and discarded;
//     corruption anywhere else is reported as ErrCorrupt, never
//     replayed and never panicking.
//
// The Writer batches appends through a single background goroutine
// (group commit) so the interactive event loop never blocks on fsync.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// OpKind enumerates the record types the session journal uses. The
// values are part of the on-disk format; append only.
type OpKind byte

const (
	// OpSplice: body/tag text edit. Win/Sub locate the buffer, P0 is
	// the rune offset, P1 the number of runes deleted, Str1 the runes
	// inserted.
	OpSplice OpKind = 1
	// OpClean: the buffer's Modified flag changed. Flag true = clean.
	OpClean OpKind = 2
	// OpSelect: selection changed. Win/Sub, P0=q0, P1=q1.
	OpSelect OpKind = 3
	// OpCurrent: the current (focus) window/subwindow changed.
	OpCurrent OpKind = 4
	// OpSnarf: the snarf buffer changed. Str1 is the new contents.
	OpSnarf OpKind = 5
	// OpNewWin: window Win was created. Str1 is the tag line, Flag is
	// IsDir.
	OpNewWin OpKind = 6
	// OpCloseWin: window Win was closed.
	OpCloseWin OpKind = 7
	// OpPlace: window Win moved: P0=column index, P1=top row,
	// P2 packs hidden (bit 0) and IsDir (bit 1).
	OpPlace OpKind = 8
	// OpScroll: window Win's body origin changed to P0.
	OpScroll OpKind = 9
	// OpColSplit: the column split moved; P0 is column 0's right edge.
	OpColSplit OpKind = 10
	// OpFile: a namespace mutation. P0 is a vfs mutation kind
	// (write/append/remove/mkdir/bind), Str1 the path (or bind
	// source), Str2 the written bytes (or bind mountpoint), P1 the
	// bind flag.
	OpFile OpKind = 11
	// OpErrors: the Errors window identity changed; Win is the new
	// Errors window's id, 0 for none.
	OpErrors OpKind = 12
)

// Op is one journal record. The fields are a superset; each kind uses
// the subset documented on its constant. Gen is assigned by the Writer.
type Op struct {
	Kind OpKind
	Gen  uint64
	Win  int
	Sub  int
	P0   int
	P1   int
	P2   int
	Flag bool
	Str1 string
	Str2 string
}

// File-format constants. Magic numbers lead every file so recovery can
// tell a torn header from a foreign file.
const (
	segMagic  = "HELPWAL1"
	ckptMagic = "HELPCKP1"

	segHeaderLen  = 16 // magic + base generation
	recHeaderLen  = 8  // length + CRC32
	ckptHeaderLen = 24 // magic + generation + length + CRC32

	// MaxRecord bounds a single record's payload. Anything larger in a
	// length header is corruption, not a real record; the bound keeps a
	// flipped length bit from provoking a giant allocation.
	MaxRecord = 1 << 26
)

// ErrCorrupt reports a journal that is damaged somewhere other than
// the final record of the final segment. Torn final records are
// expected after a crash and are silently discarded; mid-file damage
// means the medium lied and recovery must not guess.
var ErrCorrupt = errors.New("journal: corrupt")

// ErrNoState reports an empty journal directory: nothing to recover.
var ErrNoState = errors.New("journal: no checkpoint or segments")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendOpPayload encodes op (including its generation) onto dst.
func appendOpPayload(dst []byte, op *Op) []byte {
	dst = append(dst, byte(op.Kind))
	dst = binary.AppendUvarint(dst, op.Gen)
	dst = binary.AppendVarint(dst, int64(op.Win))
	dst = binary.AppendVarint(dst, int64(op.Sub))
	dst = binary.AppendVarint(dst, int64(op.P0))
	dst = binary.AppendVarint(dst, int64(op.P1))
	dst = binary.AppendVarint(dst, int64(op.P2))
	if op.Flag {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(op.Str1)))
	dst = append(dst, op.Str1...)
	dst = binary.AppendUvarint(dst, uint64(len(op.Str2)))
	dst = append(dst, op.Str2...)
	return dst
}

// decoder is a bounds-checked cursor over a record payload.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: bad %s", ErrCorrupt, what)
	}
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(what)
		return 0
	}
	c := d.b[d.off]
	d.off++
	return c
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint(what string) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 || v < int64(-1<<31) || v > int64(1<<31) {
		d.fail(what)
		return 0
	}
	d.off += n
	return int(v)
}

func (d *decoder) str(what string) string {
	if d.err != nil {
		return ""
	}
	n := d.uvarint(what + " length")
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// decodeOpPayload decodes a record payload produced by appendOpPayload.
// It never panics; malformed input yields an error wrapping ErrCorrupt.
func decodeOpPayload(b []byte) (Op, error) {
	d := decoder{b: b}
	var op Op
	op.Kind = OpKind(d.byte("kind"))
	op.Gen = d.uvarint("gen")
	op.Win = d.varint("win")
	op.Sub = d.varint("sub")
	op.P0 = d.varint("p0")
	op.P1 = d.varint("p1")
	op.P2 = d.varint("p2")
	op.Flag = d.byte("flag") != 0
	op.Str1 = d.str("str1")
	op.Str2 = d.str("str2")
	if d.err == nil && d.off != len(d.b) {
		d.fail("trailing bytes")
	}
	if d.err != nil {
		return Op{}, d.err
	}
	if op.Kind < OpSplice || op.Kind > OpErrors {
		return Op{}, fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, op.Kind)
	}
	return op, nil
}

// appendRecord frames payload onto dst: length, CRC32-C, payload.
func appendRecord(dst, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// EncodeOp frames op as a complete on-disk record. The byte sequence a
// given op produces is independent of batching, which is what makes a
// journal byte stream deterministic for a given session script.
func EncodeOp(op *Op) []byte {
	return appendRecord(nil, appendOpPayload(nil, op))
}

// segmentName returns the file name for the segment holding ops after
// checkpoint generation base.
func segmentName(base uint64) string {
	return fmt.Sprintf("wal-%020d.log", base)
}

// parseSegmentName extracts the base generation from a segment name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(digits) == 0 {
		return 0, false
	}
	base, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// appendSegmentHeader writes the segment file header: magic plus the
// base generation, so a renamed file can't masquerade as a segment.
func appendSegmentHeader(dst []byte, base uint64) []byte {
	dst = append(dst, segMagic...)
	var g [8]byte
	binary.LittleEndian.PutUint64(g[:], base)
	return append(dst, g[:]...)
}

// encodeCheckpoint frames a checkpoint payload: magic, generation,
// length, CRC32-C, payload.
func encodeCheckpoint(gen uint64, payload []byte) []byte {
	buf := make([]byte, 0, ckptHeaderLen+len(payload))
	buf = append(buf, ckptMagic...)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], gen)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeCheckpoint validates and splits a checkpoint file.
func decodeCheckpoint(b []byte) (gen uint64, payload []byte, err error) {
	if len(b) < ckptHeaderLen {
		return 0, nil, fmt.Errorf("%w: checkpoint truncated", ErrCorrupt)
	}
	if string(b[:8]) != ckptMagic {
		return 0, nil, fmt.Errorf("%w: checkpoint magic", ErrCorrupt)
	}
	gen = binary.LittleEndian.Uint64(b[8:16])
	n := binary.LittleEndian.Uint32(b[16:20])
	sum := binary.LittleEndian.Uint32(b[20:24])
	if uint64(n) != uint64(len(b)-ckptHeaderLen) {
		return 0, nil, fmt.Errorf("%w: checkpoint length", ErrCorrupt)
	}
	payload = b[ckptHeaderLen:]
	if crc32.Checksum(payload, crcTable) != sum {
		return 0, nil, fmt.Errorf("%w: checkpoint checksum", ErrCorrupt)
	}
	return gen, payload, nil
}

// RecordEnds returns every byte offset in a segment file that is a
// whole-record boundary: the end of the header, then the end of each
// well-formed record. Crash-matrix tests truncate at (and between)
// these offsets. Scanning stops at the first malformed record.
func RecordEnds(seg []byte) []int {
	var ends []int
	if len(seg) < segHeaderLen || string(seg[:8]) != segMagic {
		return ends
	}
	off := segHeaderLen
	ends = append(ends, off)
	for off+recHeaderLen <= len(seg) {
		n := int(binary.LittleEndian.Uint32(seg[off : off+4]))
		sum := binary.LittleEndian.Uint32(seg[off+4 : off+8])
		if n > MaxRecord || off+recHeaderLen+n > len(seg) {
			break
		}
		payload := seg[off+recHeaderLen : off+recHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		off += recHeaderLen + n
		ends = append(ends, off)
	}
	return ends
}
