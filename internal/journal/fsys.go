package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Fsys is the small slice of a filesystem the journal needs. Keeping
// it an interface lets tests run against an in-memory implementation
// and lets the faultfile injector sit between the Writer and the disk.
type Fsys interface {
	// Create truncates-or-creates name for writing.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// List returns the file names in the directory, sorted.
	List() ([]string, error)
}

// File is an open journal file.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// dirFS is the os-backed Fsys rooted at a directory.
type dirFS struct {
	dir string
}

// DirFS returns an Fsys rooted at dir, creating it if needed.
func DirFS(dir string) (Fsys, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return dirFS{dir: dir}, nil
}

func (d dirFS) Create(name string) (File, error) {
	return os.Create(filepath.Join(d.dir, name))
}

func (d dirFS) CreateExclusive(name string) (File, error) {
	return os.OpenFile(filepath.Join(d.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
}

func (d dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d dirFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(d.dir, oldname), filepath.Join(d.dir, newname))
}

func (d dirFS) Remove(name string) error {
	return os.Remove(filepath.Join(d.dir, name))
}

func (d dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MemFS is an in-memory Fsys for tests and benchmarks. All methods are
// safe for concurrent use (the Writer's goroutine writes while tests
// read).
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory journal directory.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

type memFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) CreateExclusive(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		return nil, fmt.Errorf("journal: %s: %w", name, os.ErrExist)
	}
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("journal: %s: %w", name, os.ErrNotExist)
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("journal: %s: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = b
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("journal: %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// WriteFile installs contents wholesale — a test helper for building
// truncated or bit-flipped journals.
func (m *MemFS) WriteFile(name string, b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), b...)
}

// Clone returns an independent deep copy of the directory, so a test
// can snapshot a journal mid-session and mutate the copy.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for name, b := range m.files {
		c.files[name] = append([]byte(nil), b...)
	}
	return c
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("journal: %s: write on closed file", f.name)
	}
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
