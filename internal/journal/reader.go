package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/obs"
)

// State is what Load recovers: the newest checkpoint plus the ordered
// tail of ops to replay on top of it.
type State struct {
	// CkptGen is the checkpoint's generation; ops in Ops all have
	// strictly greater generations.
	CkptGen uint64
	// Checkpoint is the snapshot payload; nil when no checkpoint
	// exists (then Ops is the whole history — unused by help, which
	// always checkpoints on attach, but Load supports it).
	Checkpoint []byte
	// Ops is the replay tail, generations strictly increasing.
	Ops []Op
	// MaxGen is the highest generation seen (CkptGen if no ops).
	MaxGen uint64
	// Torn reports that the final record of the final segment was
	// incomplete and has been discarded — the expected signature of a
	// crash mid-append, not an error.
	Torn bool
	// TornReason says what was wrong with the discarded tail.
	TornReason string
}

// Load reads and validates the journal. Rules:
//
//   - The checkpoint file, if present, must decode exactly; it is
//     written atomically, so any damage is ErrCorrupt.
//   - Only segments with base >= the checkpoint generation are
//     replayed; older ones are pre-compaction leftovers and ignored.
//   - Within the segment sequence, every record must frame and decode
//     exactly, except that the final segment may end mid-record: that
//     tail is reported via Torn and discarded, never replayed.
//   - Generations must be strictly increasing across the replayed
//     sequence and greater than the checkpoint's; a violation is
//     ErrCorrupt (it means records from different eras got mixed).
//
// Load never panics on any input.
func Load(fsys Fsys) (*State, error) {
	names, err := fsys.List()
	if err != nil {
		return nil, err
	}
	st := &State{}
	haveCkpt := false
	var segs []string
	for _, name := range names {
		if name == "checkpoint" {
			b, err := fsys.ReadFile(name)
			if err != nil {
				return nil, err
			}
			gen, payload, err := decodeCheckpoint(b)
			if err != nil {
				return nil, err
			}
			st.CkptGen = gen
			st.Checkpoint = payload
			st.MaxGen = gen
			haveCkpt = true
			continue
		}
		if _, ok := parseSegmentName(name); ok {
			segs = append(segs, name)
		}
	}
	if !haveCkpt && len(segs) == 0 {
		return nil, ErrNoState
	}
	// List is sorted and segment names are fixed-width decimal, so
	// lexical order is generation order.
	live := segs[:0]
	for _, name := range segs {
		base, _ := parseSegmentName(name)
		if base >= st.CkptGen {
			live = append(live, name)
		}
	}
	prevGen := st.CkptGen
	for i, name := range live {
		isLast := i == len(live)-1
		b, err := fsys.ReadFile(name)
		if err != nil {
			return nil, err
		}
		ops, torn, reason, err := decodeSegment(name, b, isLast)
		if err != nil {
			return nil, err
		}
		if torn {
			st.Torn = true
			st.TornReason = reason
		}
		for i := range ops {
			op := &ops[i]
			if op.Gen <= prevGen {
				return nil, fmt.Errorf("%w: %s: generation %d not after %d", ErrCorrupt, name, op.Gen, prevGen)
			}
			prevGen = op.Gen
			st.Ops = append(st.Ops, *op)
		}
	}
	if prevGen > st.MaxGen {
		st.MaxGen = prevGen
	}
	return st, nil
}

// decodeSegment walks one segment. A short or damaged tail is legal
// only when isLast (a crash can tear only the end of the journal);
// anywhere else it is ErrCorrupt.
func decodeSegment(name string, seg []byte, isLast bool) (ops []Op, torn bool, reason string, err error) {
	tear := func(what string) ([]Op, bool, string, error) {
		if isLast {
			return ops, true, what, nil
		}
		return nil, false, "", fmt.Errorf("%w: %s: %s in non-final segment", ErrCorrupt, name, what)
	}
	if len(seg) < segHeaderLen {
		return tear("truncated header")
	}
	if string(seg[:8]) != segMagic {
		return nil, false, "", fmt.Errorf("%w: %s: bad segment magic", ErrCorrupt, name)
	}
	base := binary.LittleEndian.Uint64(seg[8:16])
	if nameBase, _ := parseSegmentName(name); nameBase != base {
		return nil, false, "", fmt.Errorf("%w: %s: header generation %d does not match name", ErrCorrupt, name, base)
	}
	off := segHeaderLen
	for off < len(seg) {
		if off+recHeaderLen > len(seg) {
			return tear("torn record header")
		}
		n := int(binary.LittleEndian.Uint32(seg[off : off+4]))
		sum := binary.LittleEndian.Uint32(seg[off+4 : off+8])
		if n > MaxRecord {
			// An absurd length is a flipped bit, not a torn write.
			return nil, false, "", fmt.Errorf("%w: %s: record length %d", ErrCorrupt, name, n)
		}
		if off+recHeaderLen+n > len(seg) {
			return tear("torn record body")
		}
		payload := seg[off+recHeaderLen : off+recHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			// A checksum mismatch on the final record could be a torn
			// in-place write; mid-file it is corruption.
			if off+recHeaderLen+n == len(seg) {
				return tear("checksum mismatch on final record")
			}
			return nil, false, "", fmt.Errorf("%w: %s: record checksum", ErrCorrupt, name)
		}
		op, derr := decodeOpPayload(payload)
		if derr != nil {
			return nil, false, "", fmt.Errorf("%s: %w", name, derr)
		}
		ops = append(ops, op)
		off += recHeaderLen + n
	}
	return ops, false, "", nil
}

// ReplayTimer wraps the journal.replay latency histogram so recovery
// can report how long a replay took without importing obs at call
// sites that may not have a registry.
type ReplayTimer struct {
	h  *obs.Histogram
	t0 time.Time
}

// StartReplay begins timing a recovery replay. r may be nil.
func StartReplay(r *obs.Registry) ReplayTimer {
	t := ReplayTimer{t0: time.Now()}
	if r != nil {
		t.h = r.Histogram("journal.replay")
	}
	return t
}

// Done records the elapsed replay time and returns it.
func (t ReplayTimer) Done() time.Duration {
	d := time.Since(t.t0)
	t.h.Observe(d)
	return d
}
