package session

import (
	"strings"
	"testing"
)

func TestFigure1(t *testing.T) {
	st, err := Figure(1, scrW, scrH)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"/usr/rob/src/help/", // the directory tag, with the final slash
		"errs.c",
		"file.c",
		"string routines",
		"UNIX in song & verse",
	} {
		if !strings.Contains(st.Screen, want) {
			t.Errorf("figure 1 missing %q", want)
		}
	}
}

func TestFigure2(t *testing.T) {
	// Figure 2 is a mid-gesture capture: the middle button is still down
	// over "Cut", which renders underlined, and the selection to be cut
	// is still on screen in outline.
	st, err := Figure(2, scrW, scrH)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Screen, "/usr/rob/lib/profile") {
		t.Error("figure 2 missing profile window")
	}
	if !strings.Contains(st.Attrs, "UUU") {
		t.Error("figure 2: swept command word not underlined")
	}
	if !strings.Contains(st.Screen, "bind -a /net/dk") {
		t.Error("figure 2: the selection should still be visible mid-sweep")
	}
	if !strings.Contains(st.Attrs, "R") {
		t.Error("figure 2: the current selection should paint in reverse video")
	}
}

func TestFigure2Release(t *testing.T) {
	// After release the Cut executes: reproduce via the session driver.
	s, err := New(scrW, scrH)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.H.OpenFile("/usr/rob/lib/profile", ""); err != nil {
		t.Fatal(err)
	}
	prof, err := s.Window("/usr/rob/lib/profile")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelectSweep(prof, "bind -a /net/dk", "prompt"); err != nil {
		t.Fatal(err)
	}
	edit, _ := s.Window("/help/edit/stf")
	if err := s.ExecSweep(edit, "Cut", "Cut"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prof.Body.String(), "bind -a /net/dk\n\tprompt") {
		t.Error("Cut did not remove the selection")
	}
	if !strings.Contains(prof.Tag.String(), "Put!") {
		t.Error("modified window should show Put! in the tag")
	}
}

func TestFigure3(t *testing.T) {
	st, err := Figure(3, scrW, scrH)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"/usr/rob/src/help/help.c",
		"/usr/rob/src/help/dat.h",
		"typedef struct Text",
	} {
		if !strings.Contains(st.Screen, want) {
			t.Errorf("figure 3 missing %q", want)
		}
	}
	// Figure 3's total interaction: type the path once, then two Opens
	// driven by pointing — no retyping of dat.h.
	if st.Metrics.Keystrokes == 0 {
		t.Error("figure 3 involves typing the path")
	}
}

func TestAllFiguresRender(t *testing.T) {
	for n := 1; n <= 12; n++ {
		st, err := Figure(n, scrW, scrH)
		if err != nil {
			t.Errorf("figure %d: %v", n, err)
			continue
		}
		if strings.TrimSpace(st.Screen) == "" {
			t.Errorf("figure %d: empty screen", n)
		}
	}
}

func TestFigureOutOfRange(t *testing.T) {
	if _, err := Figure(0, scrW, scrH); err == nil {
		t.Error("figure 0 should fail")
	}
	if _, err := Figure(13, scrW, scrH); err == nil {
		t.Error("figure 13 should fail")
	}
}
