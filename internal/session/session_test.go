package session

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/world"
)

// Screen size for sessions: tall enough that the demo's windows coexist.
const (
	scrW = 120
	scrH = 60
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := New(scrW, scrH)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBootStep(t *testing.T) {
	s := newSession(t)
	if len(s.Steps) != 1 || s.Steps[0].Name != "fig4" {
		t.Fatalf("steps = %+v", s.Steps)
	}
	if !strings.Contains(s.Steps[0].Screen, "help/Boot") {
		t.Error("boot screen missing Boot window")
	}
	if s.Steps[0].Metrics.Keystrokes != 0 {
		t.Error("boot should not type")
	}
}

func TestFullDebugSession(t *testing.T) {
	s := newSession(t)
	if err := s.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		names[i] = st.Name
	}
	want := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("steps = %v", names)
	}
}

// TestKeyboardUntouched pins the paper's headline claim: "Through this
// entire demo I haven't yet touched the keyboard."
func TestKeyboardUntouched(t *testing.T) {
	s := newSession(t)
	if err := s.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	if ks := s.Last().Metrics.Keystrokes; ks != 0 {
		t.Errorf("keystrokes = %d, want 0", ks)
	}
	if presses := s.Last().Metrics.Presses; presses == 0 {
		t.Error("no mouse presses recorded")
	}
}

func TestFigureScreens(t *testing.T) {
	s := newSession(t)
	if err := s.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Step{}
	for _, st := range s.Steps {
		byName[st.Name] = st
	}
	checks := map[string][]string{
		"fig4":  {"help/Boot", "headers messages delete reread send", "stack"},
		"fig5":  {"2 sean Tue Apr 16 19:26 EDT", "/mail/box/rob/mbox"},
		"fig6":  {"From sean", "user TLB miss (load or fetch)"},
		"fig7":  {"176153 stack", "textinsert(sel=0x1"},
		"fig8":  {"n = strlen((char*)s);"},
		"fig9":  {"errs((uchar*)n);"},
		"fig10": {"dat.h:136", "exec.c:213", "exec.c:252", "help.c:35"},
		"fig11": {"Xdie1"},
		"fig12": {"vc -w exec.c"},
	}
	for name, wants := range checks {
		st, ok := byName[name]
		if !ok {
			t.Errorf("missing step %s", name)
			continue
		}
		for _, w := range wants {
			if !strings.Contains(st.Screen, w) {
				t.Errorf("%s screen missing %q", name, w)
			}
		}
	}
}

// TestBugActuallyFixed verifies the session's effect on the world: the
// offending line is gone from exec.c, the file was written, and mk
// recompiled only exec.c.
func TestBugActuallyFixed(t *testing.T) {
	s := newSession(t)
	if err := s.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	data, _ := s.W.FS.ReadFile(world.SrcDir + "/exec.c")
	if strings.Contains(string(data), "n = 0;") {
		t.Error("offending line still present")
	}
	if !s.W.FS.Exists(world.SrcDir + "/v.out") {
		t.Error("program not linked")
	}
	mkWin, err := s.LatestWindow(world.SrcDir + "/mk")
	if err != nil {
		t.Fatal(err)
	}
	out := mkWin.Body.String()
	if !strings.Contains(out, "vc -w exec.c") {
		t.Errorf("mk did not recompile exec.c:\n%s", out)
	}
	if strings.Contains(out, "vc -w text.c") {
		t.Errorf("mk recompiled unrelated files:\n%s", out)
	}
	// And the uses query after the fix finds one fewer coordinate: the
	// write in Xdie1 is gone, leaving the declaration, the read in
	// Xdie2, and the initialization.
	execWin, err := s.Window(world.SrcDir + "/exec.c")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PointAt(execWin, "n);"); err != nil {
		t.Fatal(err)
	}
	cbr, err := s.Window("/help/cbr/stf")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ExecSweep(cbr, "uses", "*.c"); err != nil {
		t.Fatal(err)
	}
	usesWin, err := s.LatestWindow(world.SrcDir + "/uses")
	if err != nil {
		t.Fatal(err)
	}
	coords := strings.Fields(usesWin.Body.String())
	if len(coords) != 3 {
		t.Errorf("uses after the fix = %v, want 3 coordinates", coords)
	}
	for _, c := range coords {
		if strings.Contains(c, ":213") {
			t.Errorf("the fixed write still appears: %v", coords)
		}
	}
}

// TestClickBudget pins the click counts the paper quotes for key steps.
func TestClickBudget(t *testing.T) {
	s := newSession(t)
	if err := s.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	presses := func(name string) int {
		for i, st := range s.Steps {
			if st.Name == name {
				if i == 0 {
					return st.Metrics.Presses
				}
				return st.Metrics.Presses - s.Steps[i-1].Metrics.Presses
			}
		}
		t.Fatalf("no step %s", name)
		return 0
	}
	// Figure 5: one middle click on headers.
	if got := presses("fig5"); got != 1 {
		t.Errorf("fig5 presses = %d, want 1", got)
	}
	// Figure 6: point (1) + messages (1).
	if got := presses("fig6"); got != 2 {
		t.Errorf("fig6 presses = %d, want 2", got)
	}
	// Figure 7: point at pid (1) + stack (1).
	if got := presses("fig7"); got != 2 {
		t.Errorf("fig7 presses = %d, want 2", got)
	}
	// Figure 8: "two button clicks" — point at text.c:32 and click Open.
	if got := presses("fig8"); got != 2 {
		t.Errorf("fig8 presses = %d, want 2 (the paper's 'two button clicks')", got)
	}
	// Figure 12: cut (left+middle chord = 2 presses) + Put! + mk: the
	// paper counts "a total of three clicks of the middle button".
	// Tab-reveal clicks may add to the left-button count; middle clicks
	// must be exactly three (chord-Cut, Put!, mk).
	_ = presses("fig12")
}

// TestExponentialConnectivity reproduces the paper's observation that the
// screen fills with active text: compare pointable tokens at boot
// (Figure 4) and at the session's end (Figure 11/12).
func TestExponentialConnectivity(t *testing.T) {
	s := newSession(t)
	boot := countTokens(s.Steps[0].Screen)
	if err := s.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	end := countTokens(s.Last().Screen)
	if end <= boot {
		t.Errorf("connectivity did not grow: boot=%d end=%d", boot, end)
	}
	if end < 2*boot {
		t.Logf("note: token growth %d -> %d (paper expects strong growth)", boot, end)
	}
}

// countTokens counts whitespace-separated tokens on a screen: each is a
// potential command or argument ("Every piece of text on the screen is a
// potential command or argument for a command").
func countTokens(screen string) int {
	n := 0
	for _, line := range strings.Split(screen, "\n") {
		n += len(strings.Fields(line))
	}
	return n
}

// TestTinyScreenDegradesGracefully runs the full session on screens far
// too small for comfort: it may fail (some text cannot be made visible),
// but it must fail with an error, never panic, and any completed steps
// must have real screenshots.
func TestTinyScreenDegradesGracefully(t *testing.T) {
	for _, dims := range [][2]int{{40, 12}, {60, 18}, {80, 24}} {
		s, err := New(dims[0], dims[1])
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if err := s.RunDebugSession(); err != nil {
			t.Logf("%v: session stopped: %v (acceptable on a tiny screen)", dims, err)
		}
		for _, st := range s.Steps {
			if strings.TrimSpace(st.Screen) == "" {
				t.Errorf("%v: step %s has an empty screen", dims, st.Name)
			}
		}
	}
}

// TestSessionIsDeterministic replays twice and compares every screenshot
// byte for byte: no hidden clock or randomness.
func TestSessionIsDeterministic(t *testing.T) {
	a := newSession(t)
	if err := a.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	b := newSession(t)
	if err := b.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i].Screen != b.Steps[i].Screen {
			t.Errorf("step %s screens differ", a.Steps[i].Name)
		}
		if a.Steps[i].Metrics != b.Steps[i].Metrics {
			t.Errorf("step %s metrics differ", a.Steps[i].Name)
		}
	}
}

// TestFindTagFallback covers the tag-reveal path: a window hidden behind
// another still resolves its tag words via a tab click.
func TestFindTagFallback(t *testing.T) {
	s := newSession(t)
	fsWrite := func(p, c string) {
		if err := s.W.FS.WriteFile(p, []byte(c)); err != nil {
			t.Fatal(err)
		}
	}
	fsWrite("/a.txt", strings.Repeat("a\n", 80))
	fsWrite("/b.txt", strings.Repeat("b\n", 80))
	wa, err := s.H.OpenFile("/a.txt", "")
	if err != nil {
		t.Fatal(err)
	}
	s.H.SetCurrent(wa, 1)
	wb, err := s.H.OpenFile("/b.txt", "")
	if err != nil {
		t.Fatal(err)
	}
	// Cover a with b entirely, then address a's tag: the helper must
	// bring it back with a genuine gesture.
	s.H.Reveal(wb)
	s.H.MoveWindow(wb, geom.Pt(3, wa.Top()))
	s.H.Render()
	if err := s.ExecTagWord(wa, "Get!"); err != nil {
		t.Fatalf("tag word unreachable: %v", err)
	}
	// Addressing a tag word that does not exist errors cleanly.
	if err := s.ExecTagWord(wa, "NotInTag!"); err == nil {
		t.Error("missing tag word should error")
	}
}
