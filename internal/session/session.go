// Package session replays the paper's worked example — Figures 1 through
// 12 — against a live help instance, using nothing but synthesized mouse
// gestures. It is the harness behind the headline claim: "Through this
// entire demo I haven't yet touched the keyboard."
//
// Every primitive goes through the real event pipeline (event.Machine →
// core gesture dispatch), so the recorded metrics — button presses, mouse
// travel, keystrokes — measure the interface the user would actually
// operate, not a shortcut API.
package session

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/geom"
	"repro/internal/world"
)

// Step is one recorded stage of a session.
type Step struct {
	Name    string
	Desc    string
	Screen  string       // rendered screenshot after the step
	Attrs   string       // the attribute plane (selection/underline codes)
	Metrics core.Metrics // cumulative interaction metrics
	// Delta is the interaction cost of this step alone (Metrics minus
	// the previous step's), so golden tests pin per-step accounting —
	// a regression that double counts a press shows up in the exact
	// step that regressed.
	Delta core.Metrics
}

// Session drives a help world by mouse.
type Session struct {
	W     *world.World
	H     *core.Help
	Steps []Step
}

// New builds a booted world on a w x h screen and records the boot step
// (Figure 4).
func New(w, h int) (*Session, error) {
	wld, err := world.Build(w, h)
	if err != nil {
		return nil, err
	}
	if err := wld.Boot(); err != nil {
		return nil, err
	}
	s := &Session{W: wld, H: wld.Help}
	s.Snapshot("fig4", "the screen after booting: tools loaded into the right column")
	return s, nil
}

// Snapshot records the current screen, the cumulative metrics, and the
// per-step delta against the previous snapshot. It waits for in-flight
// commands first, so snapshots are deterministic even though gesture
// execution is asynchronous.
func (s *Session) Snapshot(name, desc string) {
	s.H.WaitIdle()
	s.H.Render()
	m := s.H.Metrics()
	var prev core.Metrics
	if len(s.Steps) > 0 {
		prev = s.Steps[len(s.Steps)-1].Metrics
	}
	s.Steps = append(s.Steps, Step{
		Name:    name,
		Desc:    desc,
		Screen:  s.H.Screen().String(),
		Attrs:   s.H.Screen().AttrString(),
		Metrics: m,
		Delta: core.Metrics{
			Presses:    m.Presses - prev.Presses,
			Travel:     m.Travel - prev.Travel,
			Keystrokes: m.Keystrokes - prev.Keystrokes,
			Commands:   m.Commands - prev.Commands,
		},
	})
}

// Last returns the most recent step.
func (s *Session) Last() Step {
	return s.Steps[len(s.Steps)-1]
}

// findBody locates substr in win's body on screen, revealing the window
// with a genuine tab click when it is covered or truncated.
func (s *Session) findBody(win *core.Window, substr string) (geom.Point, error) {
	s.H.Render()
	if p, ok := s.H.FindBody(win, substr); ok {
		return p, nil
	}
	// Covered or scrolled out: click the window's tab to reveal it fully.
	tab, ok := s.H.TabPoint(win)
	if !ok {
		return geom.Point{}, fmt.Errorf("session: window %d has no tab", win.ID)
	}
	s.H.HandleAll(event.Click(event.Left, tab))
	s.H.Render()
	if p, ok := s.H.FindBody(win, substr); ok {
		return p, nil
	}
	// Still cramped: the window sits near the column bottom, so do what a
	// user would — drag its tag to the middle of the column with the
	// right button, then click its tab so it owns the screen down to the
	// column bottom.
	if tagPt, ok := s.H.FindTag(win, ""); ok {
		colR := s.H.ColumnRect(s.H.ColumnIndexOf(win))
		target := geom.Pt(tagPt.X, colR.Min.Y+colR.Dy()/3)
		s.H.HandleAll(event.Drag(event.Right, tagPt, target))
		s.H.Render()
		if tab2, ok := s.H.TabPoint(win); ok {
			s.H.HandleAll(event.Click(event.Left, tab2))
			s.H.Render()
		}
		if p, ok := s.H.FindBody(win, substr); ok {
			return p, nil
		}
	}
	return geom.Point{}, fmt.Errorf("session: %q not visible in window %d (%s)",
		substr, win.ID, win.FileName())
}

// findTag locates substr in win's tag, revealing the window if necessary.
func (s *Session) findTag(win *core.Window, substr string) (geom.Point, error) {
	s.H.Render()
	if p, ok := s.H.FindTag(win, substr); ok {
		return p, nil
	}
	tab, ok := s.H.TabPoint(win)
	if !ok {
		return geom.Point{}, fmt.Errorf("session: window %d has no tab", win.ID)
	}
	s.H.HandleAll(event.Click(event.Left, tab))
	s.H.Render()
	if p, ok := s.H.FindTag(win, substr); ok {
		return p, nil
	}
	return geom.Point{}, fmt.Errorf("session: %q not in tag of window %d", substr, win.ID)
}

// PointAt left-clicks inside the first occurrence of substr in win's body
// ("just pointing with the left button anywhere in the header line will
// do"), leaving a null selection there.
func (s *Session) PointAt(win *core.Window, substr string) error {
	p, err := s.findBody(win, substr)
	if err != nil {
		return err
	}
	// Land one cell into the token so word expansion has an anchor.
	p.X++
	s.H.HandleAll(event.Click(event.Left, p))
	return nil
}

// ExecWord middle-clicks the word substr in win's body, executing it.
func (s *Session) ExecWord(win *core.Window, substr string) error {
	p, err := s.findBody(win, substr)
	if err != nil {
		return err
	}
	p.X++
	s.H.HandleAll(event.Click(event.Middle, p))
	s.H.WaitIdle()
	return nil
}

// ExecTagWord middle-clicks the word substr in win's tag (Close!, Put!).
func (s *Session) ExecTagWord(win *core.Window, substr string) error {
	p, err := s.findTag(win, substr)
	if err != nil {
		return err
	}
	p.X++
	s.H.HandleAll(event.Click(event.Middle, p))
	s.H.WaitIdle()
	return nil
}

// ExecSweep sweeps from the start of from to the end of to (both in win's
// body) with the middle button, executing the swept text — "executing
// uses *.c by sweeping both 'words' with the middle button".
func (s *Session) ExecSweep(win *core.Window, from, to string) error {
	p0, err := s.findBody(win, from)
	if err != nil {
		return err
	}
	s.H.Render()
	p1, ok := s.H.FindBody(win, to)
	if !ok {
		return fmt.Errorf("session: sweep target %q not visible", to)
	}
	p1.X += len([]rune(to))
	s.H.HandleAll(event.Sweep(event.Middle, p0, p1))
	s.H.WaitIdle()
	return nil
}

// SelectSweep sweeps a left-button selection from the start of from to
// the start of to.
func (s *Session) SelectSweep(win *core.Window, from, to string) error {
	p0, err := s.findBody(win, from)
	if err != nil {
		return err
	}
	s.H.Render()
	p1, ok := s.H.FindBody(win, to)
	if !ok {
		return fmt.Errorf("session: sweep target %q not visible", to)
	}
	s.H.HandleAll(event.Sweep(event.Left, p0, p1))
	return nil
}

// CutLine selects win's body line containing substr — from the line's
// left edge to the start of the next line — and cuts it with the
// left-hold/middle-click chord.
func (s *Session) CutLine(win *core.Window, substr string) error {
	p, err := s.findBody(win, substr)
	if err != nil {
		return err
	}
	f := bodyRectLeft(s, win)
	start := geom.Pt(f, p.Y)
	end := geom.Pt(f, p.Y+1)
	s.H.HandleAll(event.SweepChord(event.Left, start, end, event.Middle))
	return nil
}

// bodyRectLeft returns the x of the first body text cell of win.
func bodyRectLeft(s *Session, win *core.Window) int {
	s.H.Render()
	if p, ok := s.H.FindBody(win, ""); ok {
		return p.X
	}
	return 0
}

// Window finds an open window by its file name.
func (s *Session) Window(name string) (*core.Window, error) {
	w := s.H.WindowByName(name)
	if w == nil {
		return nil, fmt.Errorf("session: no window named %s (errors: %q)",
			name, s.H.Errors().Body.String())
	}
	return w, nil
}

// WindowWithTag finds a window whose tag contains substr.
func (s *Session) WindowWithTag(substr string) (*core.Window, error) {
	for _, w := range s.H.Windows() {
		if strings.Contains(w.Tag.String(), substr) {
			return w, nil
		}
	}
	return nil, fmt.Errorf("session: no window with tag containing %q", substr)
}

// LatestWindow returns the newest window whose file name matches name.
func (s *Session) LatestWindow(name string) (*core.Window, error) {
	var found *core.Window
	for _, w := range s.H.Windows() {
		if w.FileName() == name {
			found = w
		}
	}
	if found == nil {
		return nil, fmt.Errorf("session: no window named %s", name)
	}
	return found, nil
}
