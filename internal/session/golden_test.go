package session

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden screenshots")

// TestBootScreenGolden locks the exact boot screen (Figure 4). The render
// is fully deterministic — no clock, no randomness — so any drift means a
// real change to layout or world content. Regenerate intentionally with:
//
//	go test ./internal/session -run Golden -update
func TestBootScreenGolden(t *testing.T) {
	s, err := New(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Steps[0].Screen
	path := filepath.Join("testdata", "fig4.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("boot screen drifted from golden; run with -update if intentional.\ngot:\n%s", got)
	}
}

// TestFigureGoldens locks the two screens that exercise the deepest
// stacks: the adb traceback (Figure 7) and the uses query (Figure 10).
func TestFigureGoldens(t *testing.T) {
	s, err := New(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig7", "fig10"} {
		var got string
		for _, st := range s.Steps {
			if st.Name == name {
				got = st.Screen
			}
		}
		if got == "" {
			t.Fatalf("no step %s", name)
		}
		path := filepath.Join("testdata", name+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create)", err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from golden; run with -update if intentional", name)
		}
	}
}

// TestMetricsDeltaGolden locks the per-step interaction accounting of
// the full debugging session. The event pipeline is deterministic, so
// any drift in a step's presses/travel/keystrokes/commands delta is an
// accounting regression (double count, lost mirror into the atomics),
// caught at the exact step that moved.
func TestMetricsDeltaGolden(t *testing.T) {
	s, err := New(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunDebugSession(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, st := range s.Steps {
		fmt.Fprintf(&b, "%s presses=%d travel=%d keystrokes=%d commands=%d\n",
			st.Name, st.Delta.Presses, st.Delta.Travel, st.Delta.Keystrokes, st.Delta.Commands)
	}
	got := b.String()
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("per-step metrics drifted from golden; run with -update if intentional.\ngot:\n%s", got)
	}
}
