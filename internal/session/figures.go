package session

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/world"
)

// Figure regenerates the screenshot of one of the paper's figures (1-12)
// on a w x h screen. Figures 4-12 are successive snapshots of the
// debugging session; figures 1-3 are the small introductory scenarios.
func Figure(n, w, h int) (Step, error) {
	switch n {
	case 1:
		return figure1(w, h)
	case 2:
		return figure2(w, h)
	case 3:
		return figure3(w, h)
	case 4, 5, 6, 7, 8, 9, 10, 11, 12:
		s, err := New(w, h)
		if err != nil {
			return Step{}, err
		}
		if n > 4 {
			if err := s.RunDebugSession(); err != nil {
				return Step{}, err
			}
		}
		name := fmt.Sprintf("fig%d", n)
		for _, st := range s.Steps {
			if st.Name == name {
				return st, nil
			}
		}
		return Step{}, fmt.Errorf("session: no step %s", name)
	}
	return Step{}, fmt.Errorf("session: no figure %d (paper has 1-12)", n)
}

// figure1 rebuilds Figure 1: "A small help screen showing two columns of
// windows. ... The directory /usr/rob/src/help has been Opened and, from
// there, the source files errs.c and file.c."
func figure1(w, h int) (Step, error) {
	wld, err := world.Build(w, h)
	if err != nil {
		return Step{}, err
	}
	s := &Session{W: wld, H: wld.Help}

	// The mail window in the top left of the figure.
	mick := s.H.NewWindowIn(0)
	mick.Tag.SetString("From mick\tClose!")
	mick.Tag.SetClean()
	mick.Body.SetString(
		".com!cs.bbk.ac.uk!localhost!cs.bbk.ac.uk!mick Fri Apr 12 14:48:23 EDT 1991\n" +
			"Subject: UNIX in song & verse\n\nRob,\n\n" +
			"The UKUUG are collecting old-time\nverses about UNIX before they\n" +
			"disappear from the minds of those\nwho know them.\n")
	mick.Body.SetClean()

	// Open the directory into the right column.
	dirWin, err := s.H.OpenFile(world.SrcDir, "")
	if err != nil {
		return Step{}, err
	}
	s.H.MoveWindowToColumn(dirWin, 1)

	// From the directory window, point at the source files and Open: the
	// directory name in the tag supplies the context.
	for _, f := range []string{"errs.c", "file.c"} {
		if err := s.PointAt(dirWin, f); err != nil {
			return Step{}, err
		}
		s.H.Execute(dirWin, "Open")
	}
	// file.c ("string routines") reads better in the left column, as in
	// the figure.
	if fw := s.H.WindowByName(world.SrcDir + "/file.c"); fw != nil {
		s.H.MoveWindowToColumn(fw, 0)
	}
	// Leave the current selection in the bottom-left window, as printed.
	if fw := s.H.WindowByName(world.SrcDir + "/file.c"); fw != nil {
		if err := s.PointAt(fw, "string routines"); err != nil {
			return Step{}, err
		}
	}
	s.Snapshot("fig1", "two columns; directory opened, then errs.c and file.c from it")
	return s.Last(), nil
}

// figure2 rebuilds Figure 2: "Executing Cut by sweeping the word while
// holding down the middle mouse button" over a selection in the profile.
func figure2(w, h int) (Step, error) {
	s, err := New(w, h)
	if err != nil {
		return Step{}, err
	}
	if _, err := s.H.OpenFile(world.Profile, ""); err != nil {
		return Step{}, err
	}
	prof, err := s.Window(world.Profile)
	if err != nil {
		return Step{}, err
	}
	// Select a line of the profile with the left button.
	if err := s.SelectSweep(prof, "bind -a /net/dk", "prompt"); err != nil {
		return Step{}, err
	}
	// Execute Cut by sweeping the word in the edit tool with the middle
	// button. The figure captures the moment mid-sweep, with the swept
	// text underlined; we snapshot there, then release to finish.
	edit, err := s.Window("/help/edit/stf")
	if err != nil {
		return Step{}, err
	}
	s.H.Render()
	p0, ok := s.H.FindBody(edit, "Cut")
	if !ok {
		return Step{}, fmt.Errorf("session: Cut not visible in edit tool")
	}
	p1 := p0
	p1.X += len("Cut")
	s.H.HandleAll([]event.Event{
		event.MouseEvent(event.Mouse{Pt: p0, Buttons: event.Middle}),
		event.MouseEvent(event.Mouse{Pt: p1, Buttons: event.Middle}),
	})
	s.Snapshot("fig2", "executing Cut by sweeping the word with the middle button (swept text underlined)")
	mid := s.Last()
	// Release: the sweep executes and the selection is cut.
	s.H.HandleAll([]event.Event{event.MouseEvent(event.Mouse{Pt: p1, Buttons: 0})})
	return mid, nil
}

// figure3 rebuilds Figure 3: "After typing the full path name of help.c,
// the selection is automatically the null string at the end of the file
// name, so just click Open ... Next, after pointing into dat.h, Open will
// get /usr/rob/src/help/dat.h."
func figure3(w, h int) (Step, error) {
	s, err := New(w, h)
	if err != nil {
		return Step{}, err
	}
	// Type the full path into a fresh window (the one keyboard use in
	// these scenarios; the paper's point is what happens *after* typing).
	scratch := s.H.NewWindowIn(0)
	s.H.Render()
	p, ok := s.H.FindBody(scratch, "")
	if !ok {
		return Step{}, fmt.Errorf("session: scratch window has no body")
	}
	s.H.HandleAll(event.Click(event.Left, p))
	s.H.HandleAll(event.Type(world.SrcDir + "/help.c"))

	// The selection is the null string at the end of the name: just click
	// Open.
	edit, err := s.Window("/help/edit/stf")
	if err != nil {
		return Step{}, err
	}
	if err := s.ExecWord(edit, "Open"); err != nil {
		return Step{}, err
	}
	helpWin, err := s.Window(world.SrcDir + "/help.c")
	if err != nil {
		return Step{}, err
	}
	// Point into dat.h and Open: the defaults grab the whole name and the
	// tag's directory supplies the context.
	if err := s.PointAt(helpWin, "dat.h"); err != nil {
		return Step{}, err
	}
	if err := s.ExecWord(edit, "Open"); err != nil {
		return Step{}, err
	}
	datWin, err := s.Window(world.SrcDir + "/dat.h")
	if err != nil {
		return Step{}, err
	}
	// Bring the new window fully into view (a tab click), as the figure
	// shows it.
	if _, err := s.findBody(datWin, "typedef struct Text"); err != nil {
		return Step{}, err
	}
	s.Snapshot("fig3", "opening help.c by typed path, then dat.h by pointing")
	return s.Last(), nil
}
