package session

import (
	"fmt"
	"strings"

	"repro/internal/world"
)

// RunDebugSession replays the paper's worked example end to end, recording
// a snapshot per figure:
//
//	F5  execute headers in the mail tool
//	F6  point at Sean's header line, execute messages
//	F7  point at the process number, execute stack in the debugger tool
//	F8  point at text.c:32 in the trace, execute Open
//	F9  Close! the text.c window; point at exec.c:252, Open
//	F10 point at the variable n, sweep uses *.c in the C browser
//	F11 Open help.c:35, then exec.c:213 — the jackpot
//	F12 Cut the offending line, Put!, execute mk — the program rebuilds
//
// The whole run uses only the mouse; RunDebugSession returns an error if
// any step cannot be performed.
func (s *Session) RunDebugSession() error {
	// --- Figure 5: read my mail -------------------------------------------
	mailStf, err := s.Window("/help/mail/stf")
	if err != nil {
		return err
	}
	if err := s.ExecWord(mailStf, "headers"); err != nil {
		return fmt.Errorf("fig5: %w", err)
	}
	mbox, err := s.Window(world.MboxPath)
	if err != nil {
		return fmt.Errorf("fig5: %w", err)
	}
	s.Snapshot("fig5", "after executing mail/headers")

	// --- Figure 6: Sean's message -----------------------------------------
	if err := s.PointAt(mbox, "sean"); err != nil {
		return fmt.Errorf("fig6: %w", err)
	}
	if err := s.ExecWord(mailStf, "messages"); err != nil {
		return fmt.Errorf("fig6: %w", err)
	}
	msgWin, err := s.WindowWithTag("From sean")
	if err != nil {
		return fmt.Errorf("fig6: %w", err)
	}
	s.Snapshot("fig6", "after applying messages to the header line of Sean's mail")

	// --- Figure 7: the broken process's stack -----------------------------
	if err := s.PointAt(msgWin, "176153"); err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	dbStf, err := s.Window("/help/db/stf")
	if err != nil {
		return err
	}
	if err := s.ExecWord(dbStf, "stack"); err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	stackWin, err := s.WindowWithTag("176153 stack")
	if err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	s.Snapshot("fig7", "after applying db/stack to the broken process")

	// --- Figure 8: open text.c at the crash line --------------------------
	if err := s.PointAt(stackWin, "text.c:32"); err != nil {
		return fmt.Errorf("fig8: %w", err)
	}
	editStf, err := s.Window("/help/edit/stf")
	if err != nil {
		return err
	}
	if err := s.ExecWord(editStf, "Open"); err != nil {
		return fmt.Errorf("fig8: %w", err)
	}
	textWin, err := s.Window(world.SrcDir + "/text.c")
	if err != nil {
		return fmt.Errorf("fig8: %w", err)
	}
	s.Snapshot("fig8", "after Opening text.c at line 32")

	// --- Figure 9: close text.c, open exec.c at Xdie2 ----------------------
	if err := s.ExecTagWord(textWin, "Close!"); err != nil {
		return fmt.Errorf("fig9: %w", err)
	}
	if err := s.PointAt(stackWin, "exec.c:252"); err != nil {
		return fmt.Errorf("fig9: %w", err)
	}
	if err := s.ExecWord(editStf, "Open"); err != nil {
		return fmt.Errorf("fig9: %w", err)
	}
	execWin, err := s.Window(world.SrcDir + "/exec.c")
	if err != nil {
		return fmt.Errorf("fig9: %w", err)
	}
	s.Snapshot("fig9", "after Opening exec.c at line 252")

	// --- Figure 10: all uses of n ------------------------------------------
	if err := s.PointAt(execWin, "n);"); err != nil {
		return fmt.Errorf("fig10: %w", err)
	}
	cbrStf, err := s.Window("/help/cbr/stf")
	if err != nil {
		return err
	}
	if err := s.ExecSweep(cbrStf, "uses", "*.c"); err != nil {
		return fmt.Errorf("fig10: %w", err)
	}
	usesWin, err := s.Window(world.SrcDir + "/uses")
	if err != nil {
		return fmt.Errorf("fig10: %w", err)
	}
	s.Snapshot("fig10", "after finding all uses of n")

	// --- Figure 11: the initialization, then the culprit write -------------
	if err := s.PointAt(usesWin, "help.c:35"); err != nil {
		return fmt.Errorf("fig11: %w", err)
	}
	if err := s.ExecWord(editStf, "Open"); err != nil {
		return fmt.Errorf("fig11: %w", err)
	}
	if _, err := s.Window(world.SrcDir + "/help.c"); err != nil {
		return fmt.Errorf("fig11: %w", err)
	}
	if err := s.PointAt(usesWin, "exec.c:213"); err != nil {
		return fmt.Errorf("fig11: %w", err)
	}
	if err := s.ExecWord(editStf, "Open"); err != nil {
		return fmt.Errorf("fig11: %w", err)
	}
	s.Snapshot("fig11", "the writing of n on line exec.c:213")

	// --- Figure 12: cut the line, write the file, compile ------------------
	if err := s.CutLine(execWin, "n = 0;"); err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	if err := s.ExecTagWord(execWin, "Put!"); err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	if err := s.ExecWord(cbrStf, "mk"); err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	if _, err := s.LatestWindow(world.SrcDir + "/mk"); err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	s.Snapshot("fig12", "after the program is compiled")

	// Sanity: the bug really is gone from the file on disk.
	data, err := s.W.FS.ReadFile(world.SrcDir + "/exec.c")
	if err != nil {
		return err
	}
	if strings.Contains(string(data), "n = 0;") {
		return fmt.Errorf("fig12: the offending line survived the edit")
	}
	return nil
}
