package vfs

import (
	"errors"
	"testing"
)

func buildShared(t *testing.T) *FS {
	t.Helper()
	fs := New()
	if err := fs.MkdirAll("/shared/bin"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/shared/bin/tool", []byte("#!tool\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Seal("/shared"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestSealRefusesMutation(t *testing.T) {
	fs := buildShared(t)

	wantPerm := func(what string, err error) {
		t.Helper()
		if !errors.Is(err, ErrPerm) {
			t.Errorf("%s: err = %v, want ErrPerm", what, err)
		}
	}
	wantPerm("overwrite", fs.WriteFile("/shared/bin/tool", []byte("x")))
	wantPerm("create", fs.WriteFile("/shared/bin/new", []byte("x")))
	wantPerm("mkdir", fs.MkdirAll("/shared/lib"))
	wantPerm("append", fs.AppendFile("/shared/bin/tool", []byte("x")))
	wantPerm("remove", fs.Remove("/shared/bin/tool"))
	wantPerm("device", fs.RegisterDevice("/shared/bin/dev", nil))
	_, err := fs.Create("/shared/bin/tool")
	wantPerm("create-trunc", err)
	_, err = fs.Open("/shared/bin/tool", OWRITE|OTRUNC)
	wantPerm("open-trunc", err)
	f, err := fs.Open("/shared/bin/tool", OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Write([]byte("x"))
	wantPerm("file-write", err)
	f.Close()

	// Reads still work, and the content is untouched.
	b, err := fs.ReadFile("/shared/bin/tool")
	if err != nil || string(b) != "#!tool\n" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if ents, err := fs.ReadDir("/shared/bin"); err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
}

func TestGraftSharesSealedSubtree(t *testing.T) {
	shared := buildShared(t)

	private := New()
	if err := private.MkdirAll("/bin"); err != nil {
		t.Fatal(err)
	}
	if err := private.Graft("/shared/bin", shared, "/shared/bin"); err != nil {
		t.Fatal(err)
	}
	// Union: private /bin shadows the shared toolchain behind it.
	if err := private.Bind("/shared/bin", "/bin", After); err != nil {
		t.Fatal(err)
	}

	b, err := private.ReadFile("/bin/tool")
	if err != nil || string(b) != "#!tool\n" {
		t.Fatalf("grafted read = %q, %v", b, err)
	}
	// Writes land in the private member, never the shared one.
	if err := private.WriteFile("/bin/local", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if shared.Exists("/shared/bin/local") {
		t.Fatal("write leaked into the shared tree")
	}
	// Writing a shared name through the union shadows it in the private
	// member; the shared tree is untouched.
	if err := private.WriteFile("/bin/tool", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if b, _ := private.ReadFile("/bin/tool"); string(b) != "mine" {
		t.Fatalf("shadowed read = %q", b)
	}
	if b, _ := shared.ReadFile("/shared/bin/tool"); string(b) != "#!tool\n" {
		t.Fatalf("shared tree mutated: %q", b)
	}
	// Writing the grafted path directly (no private member in front) is
	// refused.
	if err := private.WriteFile("/shared/bin/tool", []byte("x")); !errors.Is(err, ErrPerm) {
		t.Fatalf("write to grafted file: err = %v, want ErrPerm", err)
	}

	// Grafting an unsealed subtree is a refused data race.
	loose := New()
	if err := loose.MkdirAll("/x"); err != nil {
		t.Fatal(err)
	}
	if err := private.Graft("/loose", loose, "/x"); !errors.Is(err, ErrPerm) {
		t.Fatalf("graft unsealed: err = %v, want ErrPerm", err)
	}
}
