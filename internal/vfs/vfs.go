// Package vfs is the namespace substrate of the help reproduction: an
// in-memory hierarchical file system with Plan 9-style bind operations and
// synthetic (device) files.
//
// The original help lives in Plan 9, where "the standard currency" is
// files and file servers: help itself is a file server, tools are plain
// files in directories, and the session's whole world — source trees,
// mailboxes, /bin — is a composed namespace. This package reproduces the
// parts of that model help exercises:
//
//   - a rooted tree of directories and regular files,
//   - Bind with replace/before/after flags building union directories,
//   - synthetic files backed by a Device, used by helpfs to expose
//     /mnt/help/N/{tag,body,ctl,bodyapp} exactly as the paper describes,
//   - the usual operations: open, create, read, write, stat, readdir,
//     remove, plus glob expansion for the shell.
//
// Paths are slash-separated and absolute ("/usr/rob/src/help").
//
// Concurrency: an FS returned by New is an unlocked view — safe from one
// goroutine, or from many if the caller holds its own lock around every
// operation. Serialized(lk) returns a second view of the same namespace
// that takes lk around every operation, including device handler
// invocations; help hands that view to command goroutines and remote
// servers while the event loop keeps using the raw view under the same
// lock.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Errors returned by namespace operations. They are wrapped with the
// offending path; test with errors.Is.
var (
	ErrNotExist = errors.New("file does not exist")
	ErrExist    = errors.New("file already exists")
	ErrIsDir    = errors.New("is a directory")
	ErrNotDir   = errors.New("not a directory")
	ErrPerm     = errors.New("permission denied")
	ErrBadMode  = errors.New("bad open mode")
	// ErrBusy is a transient refusal: the operation was rejected by a
	// resource budget (admission control, memory, procs, waiters), not
	// because it is invalid. Callers should back off and retry; a
	// BusyError in the chain may carry the server's retry-after hint.
	ErrBusy = errors.New("resource temporarily unavailable")
)

// BusyError is a typed transient refusal carrying the refusing budget's
// retry-after hint. It unwraps to ErrBusy so errors.Is(err, ErrBusy)
// works everywhere, and exposes RetryAfter for transports that forward
// the hint to clients.
type BusyError struct {
	Msg   string        // which budget refused, human-readable
	After time.Duration // suggested wait before retrying (0: none)
}

func (e *BusyError) Error() string {
	if e.Msg == "" {
		return ErrBusy.Error()
	}
	return e.Msg + ": " + ErrBusy.Error()
}

func (e *BusyError) Unwrap() error { return ErrBusy }

// RetryAfter reports the refusing budget's suggested wait.
func (e *BusyError) RetryAfter() time.Duration { return e.After }

// RetryAfter extracts a retry-after hint from anywhere in err's chain.
// The second result reports whether a hint was present.
func RetryAfter(err error) (time.Duration, bool) {
	var h interface{ RetryAfter() time.Duration }
	if errors.As(err, &h) {
		if d := h.RetryAfter(); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// Open modes.
const (
	OREAD   = 0      // open for reading
	OWRITE  = 1      // open for writing
	ORDWR   = 2      // open for reading and writing
	OTRUNC  = 1 << 4 // truncate on open
	OAPPEND = 1 << 5 // all writes append
)

// Bind flags, mirroring Plan 9's MREPL, MBEFORE, MAFTER.
type BindFlag int

const (
	Replace BindFlag = iota // the new directory replaces the old
	Before                  // the new directory is searched first
	After                   // the new directory is searched last
)

// Info describes a file, as returned by Stat and ReadDir.
type Info struct {
	Name  string // final path element
	IsDir bool
	Size  int64 // length in bytes; 0 for directories and devices
	// ModTime is a logical modification time: the namespace keeps a
	// monotonic counter bumped on every mutation, which is all tools like
	// mk need to order builds. Devices and directories report 0.
	ModTime int64
	// Gen is the file's edit generation: a per-file monotonic counter
	// that moves exactly when the contents change. Regular files derive
	// it from their mtime stamp; devices report it when their backing
	// implements GenDevice (help windows expose text.Buffer.Gen this
	// way). Zero means "no generation": the file cannot be cached by
	// generation. srvnet piggybacks Gen on wire replies so remote
	// clients can cache reads and skip round trips.
	Gen uint64
}

// Device is the backing implementation of a synthetic file. Each Open of
// the file gets its own handle, so devices can carry per-open state (the
// way reading /mnt/help/new/ctl returns the name of the window that this
// particular open created).
type Device interface {
	OpenDevice(mode int) (DeviceFile, error)
}

// DeviceFile is one open handle on a device.
type DeviceFile interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Close() error
}

// GenDevice is an optional Device extension: a device that can report
// an edit generation for its contents (a counter that moves exactly
// when the contents change). Gen is called under the same lock as the
// file operation that triggered it, so implementations may touch the
// state their reads touch. A device that does not implement GenDevice
// reports generation 0, meaning "uncacheable".
type GenDevice interface {
	Gen() uint64
}

// WaitDevice is an optional Device extension for event-stream files: a
// blocking, cancelable, resumable read mode. Unlike every other device
// op, ReadWait is called WITHOUT the namespace lock held — a read that
// parks under the lock would stall the whole session — so
// implementations must synchronize on their own state only (the notify
// bus does). since is the last sequence number the caller has seen (0
// for "from now"); the call blocks until events past it exist, stop
// closes, or timeout (if > 0) expires, and returns the event bytes plus
// the sequence number to resume from. A timeout returns empty data and
// no error: the normal empty long poll. A wrapper device that cannot
// forward the wait returns ErrNotWaitable and the caller falls back to
// a plain snapshot read.
type WaitDevice interface {
	ReadWait(since uint64, stop <-chan struct{}, timeout time.Duration) (data []byte, next uint64, err error)
}

// ErrNotWaitable reports that a device reached through WaitDevice
// cannot actually block; FS.ReadWait degrades to ReadFileGen on it.
var ErrNotWaitable = errors.New("device read cannot block")

// node is one entry in the real (pre-bind) tree.
type node struct {
	name     string
	dir      bool
	data     []byte
	children map[string]*node
	device   Device
	mtime    int64
	// sealed marks the node immutable. Sealed subtrees may be shared
	// between namespaces (see Graft) whose views are serialized by
	// different locks; immutability is what makes that safe.
	sealed bool
}

// fsState is the namespace itself, shared by every view of it. Keeping
// the mutable fields behind one pointer is what makes views cheap and
// coherent: a bind or clock tick through one view is visible through all.
type fsState struct {
	root *node
	// binds maps a canonical mountpoint path to the ordered union of
	// source paths searched there.
	binds map[string][]string
	// clock is the logical time source for modification stamps.
	clock int64
	// lookups and bindsCtr count namespace traffic when an obs registry
	// is installed; nil counters are no-ops, keeping lookup alloc-free.
	lookups  *obs.Counter
	bindsCtr *obs.Counter
	// onMutate, when set, observes successful non-device mutations;
	// see SetOnMutate in dump.go.
	onMutate func(kind MutKind, p string, data []byte, aux string, flag int)
}

// FS is a view onto an in-memory file system with a bind table. The view
// from New is unlocked; Serialized derives a locking view of the same
// state.
type FS struct {
	st *fsState
	// lk, when non-nil, is held around every operation of this view.
	lk sync.Locker
}

func (fs *FS) lock() {
	if fs.lk != nil {
		fs.lk.Lock()
	}
}

func (fs *FS) unlock() {
	if fs.lk != nil {
		fs.lk.Unlock()
	}
}

// Serialized returns a view of the same namespace whose every operation
// — reads, writes, opens, and the device handler calls they trigger —
// runs while holding lk. State is fully shared with fs: a mutation
// through either view is immediately visible through the other.
func (fs *FS) Serialized(lk sync.Locker) *FS {
	return &FS{st: fs.st, lk: lk}
}

// EnsureSerialized returns fs itself when its operations already run
// under a lock, and a Serialized view over lk when fs is bare. Callers
// that need mutual exclusion with the namespace's other users must not
// blindly re-wrap: replacing an existing lock would silently drop the
// serialization the namespace was exported with.
func (fs *FS) EnsureSerialized(lk sync.Locker) *FS {
	if fs.lk != nil {
		return fs
	}
	return fs.Serialized(lk)
}

// SetObs installs (or, with nil, removes) observability counters for
// the namespace: vfs.lookup, the path walk under every operation, and
// vfs.bind.
func (fs *FS) SetObs(r *obs.Registry) {
	fs.lock()
	defer fs.unlock()
	if r == nil {
		fs.st.lookups, fs.st.bindsCtr = nil, nil
		return
	}
	fs.st.lookups = r.Counter("vfs.lookup")
	fs.st.bindsCtr = r.Counter("vfs.bind")
}

// tick advances and returns the logical clock.
func (fs *FS) tick() int64 {
	fs.st.clock++
	return fs.st.clock
}

// Now returns the current logical time without advancing it.
func (fs *FS) Now() int64 {
	fs.lock()
	defer fs.unlock()
	return fs.st.clock
}

// New returns an empty file system containing only the root directory.
func New() *FS {
	return &FS{st: &fsState{
		root:  &node{name: "/", dir: true, children: map[string]*node{}},
		binds: map[string][]string{},
	}}
}

// Clean canonicalizes p to an absolute, cleaned path.
func Clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// split breaks a cleaned absolute path into elements; "/" yields nil.
func split(p string) []string {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	return strings.Split(p[1:], "/")
}

// lookup finds the node at real path p, without bind translation. The
// path is walked segment by segment in place: this sits under every file
// operation, so it must not allocate.
func (fs *FS) lookup(p string) (*node, error) {
	fs.st.lookups.Inc()
	p = Clean(p)
	n := fs.st.root
	for i := 1; i < len(p); {
		end := len(p)
		if j := strings.IndexByte(p[i:], '/'); j >= 0 {
			end = i + j
		}
		elem := p[i:end]
		i = end + 1
		if !n.dir {
			return nil, fmt.Errorf("%s: %w", p, ErrNotDir)
		}
		child, ok := n.children[elem]
		if !ok {
			return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
		}
		n = child
	}
	return n, nil
}

// resolve translates p through the bind table, returning the ordered,
// deduplicated list of real candidate paths to try. The longest bound
// prefix wins; resolution chains through nested binds up to a fixed depth.
// A union member equal to the mountpoint itself (the common before/after
// case) terminates rather than re-expanding.
func (fs *FS) resolve(p string) []string {
	var out []string
	fs.resolveInto(Clean(p), 0, &out)
	return out
}

// appendUnique adds p to out unless already present. The candidate list is
// tiny (bounded by union fan-out times bind depth), so a linear scan
// replaces the dedup map the resolver used to allocate per call.
func appendUnique(out *[]string, p string) {
	for _, q := range *out {
		if q == p {
			return
		}
	}
	*out = append(*out, p)
}

func (fs *FS) resolveInto(p string, depth int, out *[]string) {
	prefix, sources := fs.longestBind(p)
	if prefix == "" || depth >= 8 {
		appendUnique(out, p)
		return
	}
	rest := strings.TrimPrefix(p, prefix)
	for _, src := range sources {
		np := Clean(src + rest)
		if np == p {
			appendUnique(out, np)
			continue
		}
		fs.resolveInto(np, depth+1, out)
	}
}

// longestBind finds the longest mountpoint that is a prefix of p.
func (fs *FS) longestBind(p string) (string, []string) {
	best := ""
	for mp := range fs.st.binds {
		if mp == p || strings.HasPrefix(p, mp+"/") || (mp == "/" && p != "/") {
			if len(mp) > len(best) {
				best = mp
			}
		}
	}
	if best == "" {
		return "", nil
	}
	// Guard against the degenerate self-bind producing no progress.
	srcs := fs.st.binds[best]
	if len(srcs) == 1 && srcs[0] == best {
		return "", nil
	}
	return best, srcs
}

// find locates the first existing node for path p after bind translation.
func (fs *FS) find(p string) (*node, error) {
	p = Clean(p)
	if prefix, _ := fs.longestBind(p); prefix == "" {
		// No bind covers p: skip building the candidate list.
		return fs.lookup(p)
	}
	var firstErr error
	for _, c := range fs.resolve(p) {
		n, err := fs.lookup(c)
		if err == nil {
			return n, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	return nil, firstErr
}

// Bind attaches the directory (or file) at src to mountpoint mp. With
// Replace, lookups of mp resolve only in src. With Before/After, src is
// unioned with the existing resolution order.
func (fs *FS) Bind(src, mp string, flag BindFlag) error {
	fs.lock()
	defer fs.unlock()
	return fs.bind(src, mp, flag)
}

func (fs *FS) bind(src, mp string, flag BindFlag) error {
	fs.st.bindsCtr.Inc()
	src, mp = Clean(src), Clean(mp)
	if _, err := fs.find(src); err != nil {
		return fmt.Errorf("bind %s: %w", src, err)
	}
	switch flag {
	case Replace:
		fs.st.binds[mp] = []string{src}
	case Before:
		cur := fs.st.binds[mp]
		if len(cur) == 0 {
			cur = []string{mp}
		}
		fs.st.binds[mp] = append([]string{src}, cur...)
	case After:
		cur := fs.st.binds[mp]
		if len(cur) == 0 {
			cur = []string{mp}
		}
		fs.st.binds[mp] = append(cur, src)
	default:
		return fmt.Errorf("bind: bad flag %d", flag)
	}
	fs.mutated(MutBind, src, nil, mp, int(flag))
	return nil
}

// Unbind removes all binds at mountpoint mp.
func (fs *FS) Unbind(mp string) {
	fs.lock()
	defer fs.unlock()
	delete(fs.st.binds, Clean(mp))
}

// sealErr is the uniform refusal for mutations under a seal: a wrapped
// ErrPerm so callers that already degrade on permission errors (the
// shell, the wire protocol) degrade visibly here too.
func sealErr(p string) error {
	return fmt.Errorf("%s: sealed: %w", p, ErrPerm)
}

// Seal marks the subtree rooted at p immutable: every write, create,
// truncate, append, remove, or device registration under it fails with
// a permission error. Sealing is how a namespace is prepared for
// sharing — a sealed subtree can be grafted into many namespaces and
// read concurrently without any lock coordination between them.
// Sealing is permanent for the life of the tree.
func (fs *FS) Seal(p string) error {
	fs.lock()
	defer fs.unlock()
	n, err := fs.find(p)
	if err != nil {
		return err
	}
	sealTree(n)
	return nil
}

func sealTree(n *node) {
	n.sealed = true
	for _, c := range n.children {
		sealTree(c)
	}
}

// Graft mounts the sealed subtree at srcPath in src's namespace at
// mountpoint mp in this one, by reference: no copy is made, the two
// namespaces share the nodes. The source subtree must already be
// sealed — sharing mutable nodes between namespaces serialized by
// different locks would be a data race. The mountpoint's parent is
// created as needed; an existing file at mp is an error.
func (fs *FS) Graft(mp string, src *FS, srcPath string) error {
	fs.lock()
	defer fs.unlock()
	srcN, err := src.lookup(Clean(srcPath))
	if err != nil {
		return fmt.Errorf("graft %s: %w", srcPath, err)
	}
	if !srcN.sealed {
		return fmt.Errorf("graft %s: source not sealed: %w", srcPath, ErrPerm)
	}
	mp = Clean(mp)
	if err := fs.mkdirAll(path.Dir(mp)); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(mp)
	if err != nil {
		return err
	}
	if parent.sealed {
		return sealErr(mp)
	}
	if _, ok := parent.children[base]; ok {
		return fmt.Errorf("graft %s: %w", mp, ErrExist)
	}
	parent.children[base] = srcN
	return nil
}

// MkdirAll creates directory p and any missing parents. It is a no-op if p
// already exists as a directory.
func (fs *FS) MkdirAll(p string) error {
	fs.lock()
	defer fs.unlock()
	return fs.mkdirAll(p)
}

func (fs *FS) mkdirAll(p string) error {
	n := fs.st.root
	made := false
	for _, elem := range split(p) {
		child, ok := n.children[elem]
		if !ok {
			if n.sealed {
				return sealErr(p)
			}
			child = &node{name: elem, dir: true, children: map[string]*node{}}
			n.children[elem] = child
			made = true
		} else if !child.dir {
			return fmt.Errorf("%s: %w", p, ErrNotDir)
		}
		n = child
	}
	if made {
		fs.mutated(MutMkdir, p, nil, "", 0)
	}
	return nil
}

// parentOf returns the directory node that should contain the final
// element of p, creating nothing. Bind translation applies: creation goes
// to the first union member whose parent exists.
func (fs *FS) parentOf(p string) (*node, string, error) {
	p = Clean(p)
	if p == "/" {
		return nil, "", fmt.Errorf("/: %w", ErrExist)
	}
	var firstErr error
	for _, c := range fs.resolve(p) {
		dir, base := path.Split(c)
		n, err := fs.lookup(Clean(dir))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !n.dir {
			return nil, "", fmt.Errorf("%s: %w", dir, ErrNotDir)
		}
		return n, base, nil
	}
	return nil, "", firstErr
}

// WriteFile creates or truncates the regular file at p with data.
func (fs *FS) WriteFile(p string, data []byte) error {
	fs.lock()
	defer fs.unlock()
	return fs.writeFile(p, data)
}

func (fs *FS) writeFile(p string, data []byte) error {
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	child, ok := parent.children[base]
	if ok {
		if child.dir {
			return fmt.Errorf("%s: %w", p, ErrIsDir)
		}
		if child.sealed {
			return sealErr(p)
		}
		if child.device != nil {
			return fs.writeDevice(child, data)
		}
		child.data = append(child.data[:0], data...)
		child.mtime = fs.tick()
		fs.mutated(MutWrite, p, data, "", 0)
		return nil
	}
	if parent.sealed {
		return sealErr(p)
	}
	parent.children[base] = &node{name: base, data: append([]byte(nil), data...), mtime: fs.tick()}
	fs.mutated(MutWrite, p, data, "", 0)
	return nil
}

func (fs *FS) writeDevice(n *node, data []byte) error {
	h, err := n.device.OpenDevice(OWRITE | OTRUNC)
	if err != nil {
		return err
	}
	_, werr := h.WriteAt(data, 0)
	// Device writes commit at Close (helpfs applies buffered writes
	// there, after its admission checks), so a dropped Close error
	// would silently discard a refused write.
	cerr := h.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// genOf reports n's edit generation: the per-file mtime stamp for
// regular files, the device's own counter for GenDevice-backed
// synthetic files, 0 (uncacheable) for directories and plain devices.
func genOf(n *node) uint64 {
	if n.dir {
		return 0
	}
	if n.device != nil {
		if gd, ok := n.device.(GenDevice); ok {
			return gd.Gen()
		}
		return 0
	}
	return uint64(n.mtime)
}

// Gen reports the edit generation of the file at p, 0 if the path does
// not resolve or the file carries no generation.
func (fs *FS) Gen(p string) uint64 {
	fs.lock()
	defer fs.unlock()
	n, err := fs.find(p)
	if err != nil {
		return 0
	}
	return genOf(n)
}

// ReadFile returns the full contents of the file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	fs.lock()
	defer fs.unlock()
	data, _, err := fs.readFileGen(p)
	return data, err
}

// ReadFileGen returns the contents of the file at p together with its
// edit generation, observed atomically under the namespace lock (a gen
// of 0 means the file carries none). One lookup serves both, which is
// what the wire server's gen piggybacking rides on.
func (fs *FS) ReadFileGen(p string) ([]byte, uint64, error) {
	fs.lock()
	defer fs.unlock()
	return fs.readFileGen(p)
}

func (fs *FS) readFileGen(p string) ([]byte, uint64, error) {
	n, err := fs.find(p)
	if err != nil {
		return nil, 0, err
	}
	if n.dir {
		return nil, 0, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	gen := genOf(n)
	if n.device != nil {
		data, err := fs.readDevice(n)
		return data, gen, err
	}
	return append([]byte(nil), n.data...), gen, nil
}

// ReadFileAt returns up to count bytes of the file at p starting at
// byte offset off, plus the file's generation. A short (or empty)
// result means the read reached end of file. count <= 0 reads to the
// end.
//
// Regular files copy only the requested range — this is the page-in
// path for paged text buffers, where materializing a gigabyte to serve
// 64 KiB would defeat the point. Devices open a handle and read at the
// requested offset, so a device that supports random access serves the
// range directly; handles that ignore the offset still behave as
// before because the read loop fills from off onward.
func (fs *FS) ReadFileAt(p string, off, count int64) ([]byte, uint64, error) {
	if off < 0 {
		off = 0
	}
	fs.lock()
	n, err := fs.find(p)
	if err != nil {
		fs.unlock()
		return nil, 0, err
	}
	if n.dir {
		fs.unlock()
		return nil, 0, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	gen := genOf(n)
	if n.device == nil {
		var out []byte
		if off < int64(len(n.data)) {
			end := int64(len(n.data))
			if count > 0 && off+count < end {
				end = off + count
			}
			out = append([]byte(nil), n.data[off:end]...)
		}
		fs.unlock()
		return out, gen, nil
	}
	data, err := fs.readDeviceAt(n, off, count)
	fs.unlock()
	return data, gen, err
}

// readDeviceAt reads [off, off+count) from a device through one handle.
// count <= 0 drains from off to EOF.
func (fs *FS) readDeviceAt(n *node, off, count int64) ([]byte, error) {
	h, err := n.device.OpenDevice(OREAD)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	var out []byte
	if count > 0 {
		out = make([]byte, count)
		got := int64(0)
		for got < count {
			k, err := h.ReadAt(out[got:], off+got)
			got += int64(k)
			if err == io.EOF || (err == nil && k == 0) {
				break
			}
			if err != nil {
				return out[:got], err
			}
		}
		return out[:got], nil
	}
	bufp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bufp)
	buf := *bufp
	for {
		k, err := h.ReadAt(buf, off)
		out = append(out, buf[:k]...)
		off += int64(k)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if k == 0 {
			return out, nil
		}
	}
}

// ReadWait is the blocking read entry point for event-stream files: a
// long poll. The path is resolved under the namespace lock; if its
// device implements WaitDevice the wait itself happens OUTSIDE the
// lock, parked on the device's own synchronization, until events past
// seq since arrive, stop closes, or timeout expires. On anything else
// — a regular file, a snapshot device — it degrades to a plain
// ReadFileGen, returning the contents and generation immediately, so a
// remote long poll on an arbitrary path is simply a read. Like every
// device entry point it is panic-guarded: a handler bug becomes an
// error on this call, not a dead process.
func (fs *FS) ReadWait(p string, since uint64, stop <-chan struct{}, timeout time.Duration) (data []byte, next uint64, err error) {
	fs.lock()
	n, ferr := fs.find(p)
	if ferr != nil {
		fs.unlock()
		return nil, 0, ferr
	}
	if n.dir {
		fs.unlock()
		return nil, 0, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	wd, waitable := n.device.(WaitDevice)
	fs.unlock()
	if waitable {
		defer func() {
			if r := recover(); r != nil {
				data, next, err = nil, 0, fmt.Errorf("%s: readwait: internal error: %v", p, r)
			}
		}()
		data, next, err = wd.ReadWait(since, stop, timeout)
		if !errors.Is(err, ErrNotWaitable) {
			return data, next, err
		}
	}
	return fs.ReadFileGen(p)
}

// chunkPool recycles the scratch buffer readDevice drains handles
// through: device reads sit on the remote read hot path, and the chunk
// never escapes, so reusing it cuts one allocation per device read.
var chunkPool = sync.Pool{New: func() any { b := make([]byte, 4096); return &b }}

func (fs *FS) readDevice(n *node) ([]byte, error) {
	h, err := n.device.OpenDevice(OREAD)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	var out []byte
	bufp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bufp)
	buf := *bufp
	off := int64(0)
	for {
		k, err := h.ReadAt(buf, off)
		out = append(out, buf[:k]...)
		off += int64(k)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if k == 0 {
			return out, nil
		}
	}
}

// AppendFile appends data to the file at p, creating it if necessary.
func (fs *FS) AppendFile(p string, data []byte) error {
	fs.lock()
	defer fs.unlock()
	n, err := fs.find(p)
	if errors.Is(err, ErrNotExist) {
		return fs.writeFile(p, data)
	}
	if err != nil {
		return err
	}
	if n.dir {
		return fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	if n.device != nil {
		h, err := n.device.OpenDevice(OWRITE | OAPPEND)
		if err != nil {
			return err
		}
		_, werr := h.WriteAt(data, -1)
		// As in writeDevice: the append commits (and may be refused)
		// at Close.
		cerr := h.Close()
		if werr != nil {
			return werr
		}
		return cerr
	}
	if n.sealed {
		return sealErr(p)
	}
	n.data = append(n.data, data...)
	n.mtime = fs.tick()
	fs.mutated(MutAppend, p, data, "", 0)
	return nil
}

// RegisterDevice installs a synthetic file backed by dev at path p,
// creating parent directories as needed.
func (fs *FS) RegisterDevice(p string, dev Device) error {
	fs.lock()
	defer fs.unlock()
	p = Clean(p)
	if err := fs.mkdirAll(path.Dir(p)); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if parent.sealed {
		return sealErr(p)
	}
	parent.children[base] = &node{name: base, device: dev}
	return nil
}

// RemoveDevice removes the synthetic file at p if present.
func (fs *FS) RemoveDevice(p string) {
	fs.lock()
	defer fs.unlock()
	_ = fs.remove(p)
}

// Stat describes the file at p.
func (fs *FS) Stat(p string) (Info, error) {
	fs.lock()
	defer fs.unlock()
	n, err := fs.find(p)
	if err != nil {
		return Info{}, err
	}
	name := path.Base(Clean(p))
	return Info{Name: name, IsDir: n.dir, Size: int64(len(n.data)), ModTime: n.mtime, Gen: genOf(n)}, nil
}

// Exists reports whether p names an existing file or directory.
func (fs *FS) Exists(p string) bool {
	fs.lock()
	defer fs.unlock()
	return fs.exists(p)
}

func (fs *FS) exists(p string) bool {
	_, err := fs.find(p)
	return err == nil
}

// IsDir reports whether p names an existing directory.
func (fs *FS) IsDir(p string) bool {
	fs.lock()
	defer fs.unlock()
	n, err := fs.find(p)
	return err == nil && n.dir
}

// ReadDir lists the entries of directory p in sorted order. For union
// mountpoints, entries from every member are merged; the first member
// providing a name wins.
func (fs *FS) ReadDir(p string) ([]Info, error) {
	fs.lock()
	defer fs.unlock()
	return fs.readDir(p)
}

func (fs *FS) readDir(p string) ([]Info, error) {
	seen := map[string]bool{}
	var out []Info
	found := false
	var firstErr error
	for _, c := range fs.resolve(p) {
		n, err := fs.lookup(c)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !n.dir {
			return nil, fmt.Errorf("%s: %w", p, ErrNotDir)
		}
		found = true
		for name, child := range n.children {
			if seen[name] {
				continue
			}
			seen[name] = true
			out = append(out, Info{Name: name, IsDir: child.dir, Size: int64(len(child.data)), ModTime: child.mtime, Gen: genOf(child)})
		}
	}
	if !found {
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", p, ErrNotExist)
		}
		return nil, firstErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Remove deletes the file or empty directory at p.
func (fs *FS) Remove(p string) error {
	fs.lock()
	defer fs.unlock()
	return fs.remove(p)
}

func (fs *FS) remove(p string) error {
	var firstErr error
	for _, c := range fs.resolve(p) {
		dir, base := path.Split(Clean(c))
		parent, err := fs.lookup(Clean(dir))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		child, ok := parent.children[base]
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", p, ErrNotExist)
			}
			continue
		}
		if child.dir && len(child.children) > 0 {
			return fmt.Errorf("%s: directory not empty", p)
		}
		if parent.sealed || child.sealed {
			return sealErr(p)
		}
		wasDevice := child.device != nil
		delete(parent.children, base)
		if !wasDevice {
			fs.mutated(MutRemove, p, nil, "", 0)
		}
		return nil
	}
	return firstErr
}

// Glob expands a shell pattern against the namespace. Patterns use
// path.Match syntax per component ("/usr/rob/src/help/*.c"). A pattern
// with no metacharacters returns itself if it exists, nothing otherwise.
// Results are sorted.
func (fs *FS) Glob(pattern string) []string {
	fs.lock()
	defer fs.unlock()
	pattern = Clean(pattern)
	if !strings.ContainsAny(pattern, "*?[") {
		if fs.exists(pattern) {
			return []string{pattern}
		}
		return nil
	}
	matches := []string{"/"}
	for _, elem := range split(pattern) {
		var next []string
		for _, m := range matches {
			if !strings.ContainsAny(elem, "*?[") {
				cand := Clean(m + "/" + elem)
				if fs.exists(cand) {
					next = append(next, cand)
				}
				continue
			}
			ents, err := fs.readDir(m)
			if err != nil {
				continue
			}
			for _, e := range ents {
				if ok, _ := path.Match(elem, e.Name); ok {
					next = append(next, Clean(m+"/"+e.Name))
				}
			}
		}
		matches = next
	}
	sort.Strings(matches)
	return matches
}
