package vfs

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
)

func TestIsPermanent(t *testing.T) {
	fs := New()
	_, err := fs.ReadFile("/nope")
	if !IsPermanent(err) {
		t.Errorf("ReadFile missing: IsPermanent(%v) = false", err)
	}
	fs.MkdirAll("/d")
	if err := fs.WriteFile("/d", nil); !IsPermanent(err) {
		t.Errorf("write over dir: IsPermanent(%v) = false", err)
	}
	for _, sentinel := range []error{ErrNotExist, ErrExist, ErrIsDir, ErrNotDir, ErrPerm, ErrBadMode} {
		wrapped := fmt.Errorf("/x: %w", sentinel)
		if !IsPermanent(wrapped) {
			t.Errorf("IsPermanent(%v) = false", wrapped)
		}
		if IsRetryable(wrapped) {
			t.Errorf("IsRetryable(%v) = true", wrapped)
		}
	}
	if IsPermanent(nil) || IsPermanent(errors.New("weird")) {
		t.Error("nil/unknown classified permanent")
	}
}

func TestIsRetryable(t *testing.T) {
	transients := []error{
		io.EOF,
		io.ErrUnexpectedEOF,
		net.ErrClosed,
		os.ErrDeadlineExceeded,
		syscall.ECONNRESET,
		syscall.ECONNREFUSED,
		fmt.Errorf("rpc: %w", io.EOF),
	}
	for _, err := range transients {
		if !IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = false", err)
		}
		if IsPermanent(err) {
			t.Errorf("IsPermanent(%v) = true", err)
		}
	}
	if IsRetryable(nil) {
		t.Error("nil classified retryable")
	}
	if IsRetryable(errors.New("weird")) {
		t.Error("unknown error classified retryable")
	}
}

// timeoutErr exercises the net.Error timeout path.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "fake timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestIsRetryableTimeoutInterface(t *testing.T) {
	if !IsRetryable(timeoutErr{}) {
		t.Error("net.Error timeout not retryable")
	}
	if !IsRetryable(fmt.Errorf("op: %w", timeoutErr{})) {
		t.Error("wrapped net.Error timeout not retryable")
	}
}
