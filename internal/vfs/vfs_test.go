package vfs

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMkdirAllAndStat(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/usr/rob/src/help"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/usr/rob/src")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir || info.Name != "src" {
		t.Errorf("info = %+v", info)
	}
	// MkdirAll is idempotent.
	if err := fs.MkdirAll("/usr/rob"); err != nil {
		t.Errorf("re-mkdir: %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := New()
	fs.MkdirAll("/tmp")
	if err := fs.WriteFile("/tmp/a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/tmp/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("data = %q", data)
	}
	// Overwrite truncates.
	fs.WriteFile("/tmp/a.txt", []byte("x"))
	data, _ = fs.ReadFile("/tmp/a.txt")
	if string(data) != "x" {
		t.Errorf("after overwrite = %q", data)
	}
}

func TestReadFileErrors(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v", err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v", err)
	}
}

func TestWriteFileIntoMissingDir(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/no/such/dir/f", []byte("x")); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v", err)
	}
}

func TestAppendFile(t *testing.T) {
	fs := New()
	fs.MkdirAll("/tmp")
	fs.AppendFile("/tmp/log", []byte("a"))
	fs.AppendFile("/tmp/log", []byte("b"))
	data, _ := fs.ReadFile("/tmp/log")
	if string(data) != "ab" {
		t.Errorf("log = %q", data)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d/sub")
	fs.WriteFile("/d/zz", []byte("1"))
	fs.WriteFile("/d/aa", []byte("22"))
	ents, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	if !reflect.DeepEqual(names, []string{"aa", "sub", "zz"}) {
		t.Errorf("names = %v", names)
	}
	if !ents[1].IsDir {
		t.Error("sub should be a dir")
	}
	if ents[0].Size != 2 {
		t.Errorf("aa size = %d", ents[0].Size)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d/sub")
	fs.WriteFile("/d/f", []byte("x"))
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d/f") {
		t.Error("file still exists")
	}
	// Non-empty dir refuses.
	fs.WriteFile("/d/sub/g", []byte("y"))
	if err := fs.Remove("/d/sub"); err == nil {
		t.Error("removing non-empty dir should fail")
	}
	fs.Remove("/d/sub/g")
	if err := fs.Remove("/d/sub"); err != nil {
		t.Errorf("removing empty dir: %v", err)
	}
	if err := fs.Remove("/ghost"); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove missing: %v", err)
	}
}

func TestBindReplace(t *testing.T) {
	fs := New()
	fs.MkdirAll("/real")
	fs.WriteFile("/real/f", []byte("data"))
	fs.MkdirAll("/mnt/x")
	if err := fs.Bind("/real", "/mnt/x", Replace); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/mnt/x/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "data" {
		t.Errorf("data = %q", data)
	}
	// Writes through the bind land in the source.
	fs.WriteFile("/mnt/x/g", []byte("new"))
	if got, _ := fs.ReadFile("/real/g"); string(got) != "new" {
		t.Errorf("write through bind = %q", got)
	}
}

func TestBindUnion(t *testing.T) {
	fs := New()
	fs.MkdirAll("/bin")
	fs.WriteFile("/bin/ls", []byte("ls-main"))
	fs.MkdirAll("/home/bin")
	fs.WriteFile("/home/bin/rc", []byte("rc-home"))
	fs.WriteFile("/home/bin/ls", []byte("ls-home"))

	// bind -a $home/bin /bin, as in the paper's profile: /bin now unions.
	if err := fs.Bind("/home/bin", "/bin", After); err != nil {
		t.Fatal(err)
	}
	// Original /bin entry wins for ls.
	if got, _ := fs.ReadFile("/bin/ls"); string(got) != "ls-main" {
		t.Errorf("ls = %q", got)
	}
	// rc falls through to the after-member.
	if got, _ := fs.ReadFile("/bin/rc"); string(got) != "rc-home" {
		t.Errorf("rc = %q", got)
	}
	// Union ReadDir merges.
	ents, _ := fs.ReadDir("/bin")
	if len(ents) != 2 {
		t.Errorf("union dir entries = %v", ents)
	}
}

func TestBindBefore(t *testing.T) {
	fs := New()
	fs.MkdirAll("/bin")
	fs.WriteFile("/bin/ls", []byte("ls-main"))
	fs.MkdirAll("/override")
	fs.WriteFile("/override/ls", []byte("ls-override"))
	fs.Bind("/override", "/bin", Before)
	if got, _ := fs.ReadFile("/bin/ls"); string(got) != "ls-override" {
		t.Errorf("ls = %q", got)
	}
}

func TestBindMissingSource(t *testing.T) {
	fs := New()
	if err := fs.Bind("/nope", "/mnt", Replace); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v", err)
	}
}

func TestUnbind(t *testing.T) {
	fs := New()
	fs.MkdirAll("/real")
	fs.WriteFile("/real/f", []byte("x"))
	fs.MkdirAll("/mnt")
	fs.Bind("/real", "/mnt", Replace)
	if !fs.Exists("/mnt/f") {
		t.Fatal("bind not effective")
	}
	fs.Unbind("/mnt")
	if fs.Exists("/mnt/f") {
		t.Error("unbind not effective")
	}
}

func TestOpenReadWrite(t *testing.T) {
	fs := New()
	fs.MkdirAll("/t")
	fs.WriteFile("/t/f", []byte("abcdef"))
	f, err := fs.Open("/t/f", OREAD)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	n, _ := f.Read(buf)
	if n != 3 || string(buf) != "abc" {
		t.Errorf("read1 = %d %q", n, buf)
	}
	n, _ = f.Read(buf)
	if n != 3 || string(buf) != "def" {
		t.Errorf("read2 = %d %q", n, buf)
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Errorf("read3 err = %v", err)
	}
	// Read-only handle rejects writes.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPerm) {
		t.Errorf("write on OREAD = %v", err)
	}
	f.Close()
}

func TestOpenTruncAppend(t *testing.T) {
	fs := New()
	fs.MkdirAll("/t")
	fs.WriteFile("/t/f", []byte("old"))
	f, _ := fs.Open("/t/f", OWRITE|OTRUNC)
	f.Write([]byte("new"))
	f.Close()
	if got, _ := fs.ReadFile("/t/f"); string(got) != "new" {
		t.Errorf("after trunc write = %q", got)
	}
	f, _ = fs.Open("/t/f", OWRITE|OAPPEND)
	f.Write([]byte("+more"))
	f.Close()
	if got, _ := fs.ReadFile("/t/f"); string(got) != "new+more" {
		t.Errorf("after append = %q", got)
	}
}

func TestOpenDirectoryListing(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d/sub")
	fs.WriteFile("/d/file.c", []byte("x"))
	f, err := fs.Open("/d", OREAD)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(f)
	want := "file.c\nsub/\n"
	if string(data) != want {
		t.Errorf("listing = %q, want %q", data, want)
	}
	// Directories cannot be opened for writing.
	if _, err := fs.Open("/d", OWRITE); !errors.Is(err, ErrIsDir) {
		t.Errorf("open dir for write = %v", err)
	}
}

func TestCreate(t *testing.T) {
	fs := New()
	fs.MkdirAll("/t")
	f, err := fs.Create("/t/new")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("z"))
	f.Close()
	if got, _ := fs.ReadFile("/t/new"); string(got) != "z" {
		t.Errorf("created = %q", got)
	}
	// Create truncates existing files.
	f, _ = fs.Create("/t/new")
	f.Close()
	if got, _ := fs.ReadFile("/t/new"); len(got) != 0 {
		t.Errorf("after re-create = %q", got)
	}
	if _, err := fs.Create("/t"); !errors.Is(err, ErrIsDir) {
		t.Errorf("create over dir = %v", err)
	}
}

func TestSeek(t *testing.T) {
	fs := New()
	fs.MkdirAll("/t")
	fs.WriteFile("/t/f", []byte("0123456789"))
	f, _ := fs.Open("/t/f", ORDWR)
	if n, _ := f.Seek(4, io.SeekStart); n != 4 {
		t.Errorf("seek = %d", n)
	}
	buf := make([]byte, 2)
	f.Read(buf)
	if string(buf) != "45" {
		t.Errorf("after seek = %q", buf)
	}
	if n, _ := f.Seek(-2, io.SeekEnd); n != 8 {
		t.Errorf("seek end = %d", n)
	}
	if _, err := f.Seek(-99, io.SeekStart); err == nil {
		t.Error("negative seek should fail")
	}
	if _, err := f.Seek(0, 42); err == nil {
		t.Error("bad whence should fail")
	}
}

func TestWriteExtends(t *testing.T) {
	fs := New()
	fs.MkdirAll("/t")
	fs.WriteFile("/t/f", []byte("ab"))
	f, _ := fs.Open("/t/f", ORDWR)
	f.Seek(4, io.SeekStart)
	f.Write([]byte("z"))
	f.Close()
	got, _ := fs.ReadFile("/t/f")
	if len(got) != 5 || got[4] != 'z' {
		t.Errorf("extended = %q", got)
	}
}

func TestClosedFile(t *testing.T) {
	fs := New()
	fs.MkdirAll("/t")
	fs.WriteFile("/t/f", []byte("x"))
	f, _ := fs.Open("/t/f", ORDWR)
	f.Close()
	if _, err := f.Read(make([]byte, 1)); err == nil {
		t.Error("read after close should fail")
	}
	if _, err := f.Write([]byte("y")); err == nil {
		t.Error("write after close should fail")
	}
	if err := f.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestBadOpenMode(t *testing.T) {
	fs := New()
	fs.MkdirAll("/t")
	fs.WriteFile("/t/f", nil)
	if _, err := fs.Open("/t/f", 7); !errors.Is(err, ErrBadMode) {
		t.Errorf("err = %v", err)
	}
}

// testDevice implements Device, counting opens and echoing writes.
type testDevice struct {
	opens int
	last  []byte
	reply string
}

type testHandle struct{ d *testDevice }

func (d *testDevice) OpenDevice(mode int) (DeviceFile, error) {
	d.opens++
	return &testHandle{d}, nil
}

func (h *testHandle) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(h.d.reply)) {
		return 0, io.EOF
	}
	n := copy(p, h.d.reply[off:])
	return n, io.EOF
}

func (h *testHandle) WriteAt(p []byte, off int64) (int, error) {
	h.d.last = append([]byte(nil), p...)
	return len(p), nil
}

func (h *testHandle) Close() error { return nil }

func TestDeviceFile(t *testing.T) {
	fs := New()
	dev := &testDevice{reply: "window 7"}
	if err := fs.RegisterDevice("/mnt/help/new/ctl", dev); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/mnt/help/new/ctl")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "window 7" {
		t.Errorf("device read = %q", data)
	}
	if dev.opens != 1 {
		t.Errorf("opens = %d", dev.opens)
	}
	// Writing through the plain WriteFile API reaches the device.
	if err := fs.WriteFile("/mnt/help/new/ctl", []byte("cmd")); err != nil {
		t.Fatal(err)
	}
	if string(dev.last) != "cmd" {
		t.Errorf("device write = %q", dev.last)
	}
	// Each Open creates a fresh handle.
	f, _ := fs.Open("/mnt/help/new/ctl", OREAD)
	f.Close()
	if dev.opens != 3 {
		t.Errorf("opens = %d", dev.opens)
	}
}

func TestGlob(t *testing.T) {
	fs := New()
	fs.MkdirAll("/src/help")
	for _, f := range []string{"help.c", "exec.c", "dat.h", "mk"} {
		fs.WriteFile("/src/help/"+f, []byte("x"))
	}
	got := fs.Glob("/src/help/*.c")
	want := []string{"/src/help/exec.c", "/src/help/help.c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("glob = %v", got)
	}
	// Literal pattern: returns itself if present.
	if got := fs.Glob("/src/help/mk"); !reflect.DeepEqual(got, []string{"/src/help/mk"}) {
		t.Errorf("literal glob = %v", got)
	}
	if got := fs.Glob("/src/help/ghost"); got != nil {
		t.Errorf("missing literal glob = %v", got)
	}
	// Directory wildcards.
	fs.MkdirAll("/src/other")
	fs.WriteFile("/src/other/main.c", []byte("y"))
	got = fs.Glob("/src/*/*.c")
	if len(got) != 3 {
		t.Errorf("two-level glob = %v", got)
	}
}

func TestCleanPaths(t *testing.T) {
	fs := New()
	fs.MkdirAll("/a/b")
	fs.WriteFile("/a/b/f", []byte("1"))
	for _, p := range []string{"/a/b/f", "/a//b/f", "/a/./b/f", "/a/b/../b/f", "a/b/f"} {
		if !fs.Exists(p) {
			t.Errorf("Exists(%q) = false", p)
		}
	}
}

func TestIsDir(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", nil)
	if !fs.IsDir("/d") || fs.IsDir("/d/f") || fs.IsDir("/nope") {
		t.Error("IsDir misclassifies")
	}
}

// Property: WriteFile then ReadFile round-trips arbitrary bytes.
func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	fs.MkdirAll("/t")
	f := func(data []byte) bool {
		if err := fs.WriteFile("/t/f", data); err != nil {
			return false
		}
		got, err := fs.ReadFile("/t/f")
		if err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after MkdirAll(p), every prefix of p is a directory.
func TestMkdirAllPrefixes(t *testing.T) {
	f := func(parts []string) bool {
		fs := New()
		var clean []string
		for _, p := range parts {
			p = strings.Map(func(r rune) rune {
				if r == '/' || r == 0 || r == '.' {
					return 'x'
				}
				return r
			}, p)
			if p != "" {
				clean = append(clean, p)
			}
			if len(clean) == 4 {
				break
			}
		}
		if len(clean) == 0 {
			return true
		}
		full := "/" + strings.Join(clean, "/")
		if err := fs.MkdirAll(full); err != nil {
			return false
		}
		for i := 1; i <= len(clean); i++ {
			if !fs.IsDir("/" + strings.Join(clean[:i], "/")) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWalkDeep(b *testing.B) {
	fs := New()
	p := "/a/b/c/d/e/f/g/h"
	fs.MkdirAll(p)
	fs.WriteFile(p+"/file", []byte("x"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile(p + "/file"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlob(b *testing.B) {
	fs := New()
	fs.MkdirAll("/src")
	for i := 0; i < 100; i++ {
		name := "/src/file" + string(rune('a'+i%26)) + ".c"
		fs.WriteFile(name, []byte("x"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Glob("/src/*.c")
	}
}

func BenchmarkUnionLookup(b *testing.B) {
	fs := New()
	fs.MkdirAll("/bin")
	fs.MkdirAll("/home/bin")
	fs.WriteFile("/home/bin/tool", []byte("x"))
	fs.Bind("/home/bin", "/bin", After)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile("/bin/tool"); err != nil {
			b.Fatal(err)
		}
	}
}
