package vfs

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
)

// Error classification for remote namespace clients. A file protocol
// carrying this namespace over a network (internal/srvnet) needs to
// distinguish errors the namespace itself produced — which name a
// property of the tree and will recur on retry — from transport
// failures, which a reconnect may cure.

// IsPermanent reports whether err names a namespace condition that
// retrying the same operation cannot fix: a missing file, an existing
// file, a directory where a file was wanted, and so on.
func IsPermanent(err error) bool {
	for _, sentinel := range []error{ErrNotExist, ErrExist, ErrIsDir, ErrNotDir, ErrPerm, ErrBadMode} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// IsRetryable reports whether err looks transient — a timeout, a closed
// or reset connection, a truncated frame — so that a client holding an
// idempotent operation may redial and try again. Errors that are
// neither permanent nor recognizably transient report false from both
// predicates; callers choose their own policy for those.
func IsRetryable(err error) bool {
	if err == nil || IsPermanent(err) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	for _, transient := range []error{
		io.EOF, io.ErrUnexpectedEOF, io.ErrClosedPipe, net.ErrClosed,
		os.ErrDeadlineExceeded, syscall.ECONNRESET, syscall.ECONNREFUSED, syscall.EPIPE,
	} {
		if errors.Is(err, transient) {
			return true
		}
	}
	return false
}
