package vfs

import (
	"path"
	"sort"
)

// MutKind enumerates the namespace mutations the journal hook observes.
type MutKind int

const (
	MutWrite MutKind = iota
	MutAppend
	MutRemove
	MutMkdir
	MutBind
)

// SetOnMutate installs (or, with nil, removes) the mutation observer: a
// callback invoked after every successful non-device namespace mutation.
// For MutWrite/MutAppend, data is the written bytes; for MutBind, aux is
// the mountpoint and flag the bind flag. Device writes are excluded —
// they are messages to live services (window bodies, ctl files), not
// state the namespace owns, and replaying them would double-apply.
func (fs *FS) SetOnMutate(fn func(kind MutKind, p string, data []byte, aux string, flag int)) {
	fs.lock()
	defer fs.unlock()
	fs.st.onMutate = fn
}

func (fs *FS) mutated(kind MutKind, p string, data []byte, aux string, flag int) {
	if fs.st.onMutate != nil {
		fs.st.onMutate(kind, Clean(p), data, aux, flag)
	}
}

// DumpEntry is one file or directory in a namespace snapshot.
type DumpEntry struct {
	Path string
	Dir  bool
	Data []byte // file contents; nil for directories
}

// Dump snapshots every non-device file and directory plus the bind
// table, in sorted path order. Devices are skipped: they are live
// endpoints re-registered by whoever owns them, not persistable state.
// Sealed subtrees are skipped too: they are immutable template state
// grafted from elsewhere, reconstructed by whoever builds the
// namespace, and persisting them would bloat every snapshot with data
// that cannot have changed.
func (fs *FS) Dump() ([]DumpEntry, map[string][]string) {
	fs.lock()
	defer fs.unlock()
	var entries []DumpEntry
	var walk func(p string, n *node)
	walk = func(p string, n *node) {
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := n.children[name]
			cp := path.Join(p, name)
			switch {
			case c.device != nil || c.sealed:
				// skip
			case c.dir:
				entries = append(entries, DumpEntry{Path: cp, Dir: true})
				walk(cp, c)
			default:
				entries = append(entries, DumpEntry{Path: cp, Data: append([]byte(nil), c.data...)})
			}
		}
	}
	walk("/", fs.st.root)
	binds := make(map[string][]string, len(fs.st.binds))
	for mp, srcs := range fs.st.binds {
		binds[mp] = append([]string(nil), srcs...)
	}
	return entries, binds
}

// RestoreDump makes the namespace's non-device contents and bind table
// match a Dump: files and empty directories absent from the snapshot
// are removed, snapshot entries are (re)created, and the bind table is
// replaced wholesale. Device nodes — and the directories that shelter
// them — are left alone, for the same reason Dump skips them. The
// mutation observer is suppressed for the duration.
func (fs *FS) RestoreDump(entries []DumpEntry, binds map[string][]string) error {
	fs.lock()
	defer fs.unlock()
	saved := fs.st.onMutate
	fs.st.onMutate = nil
	defer func() { fs.st.onMutate = saved }()

	keep := make(map[string]bool, len(entries))
	for _, e := range entries {
		keep[e.Path] = true
	}
	// Remove files the snapshot doesn't have, then repeatedly remove
	// newly empty directories (bottom-up via path-length sort).
	var prune func(p string, n *node)
	prune = func(p string, n *node) {
		for name, c := range n.children {
			cp := path.Join(p, name)
			if c.device != nil || c.sealed {
				continue
			}
			if c.dir {
				prune(cp, c)
				if len(c.children) == 0 && !keep[cp] {
					delete(n.children, name)
				}
			} else if !keep[cp] {
				delete(n.children, name)
			}
		}
	}
	prune("/", fs.st.root)

	for _, e := range entries {
		if e.Dir {
			if err := fs.mkdirAll(e.Path); err != nil {
				return err
			}
		}
	}
	for _, e := range entries {
		if !e.Dir {
			if err := fs.writeFile(e.Path, e.Data); err != nil {
				return err
			}
		}
	}
	fs.st.binds = make(map[string][]string, len(binds))
	for mp, srcs := range binds {
		fs.st.binds[mp] = append([]string(nil), srcs...)
	}
	return nil
}
