package vfs

import (
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// Edge and error paths not covered by the main suite.

func TestFileName(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", nil)
	f, _ := fs.Open("/d/../d/f", OREAD)
	if f.Name() != "/d/f" {
		t.Errorf("Name = %q", f.Name())
	}
	f.Close()
}

func TestNowAndTickMonotone(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	t0 := fs.Now()
	fs.WriteFile("/d/a", []byte("1"))
	t1 := fs.Now()
	fs.WriteFile("/d/b", []byte("2"))
	t2 := fs.Now()
	if !(t0 < t1 && t1 < t2) {
		t.Errorf("clock not monotone: %d %d %d", t0, t1, t2)
	}
	a, _ := fs.Stat("/d/a")
	b, _ := fs.Stat("/d/b")
	if a.ModTime >= b.ModTime {
		t.Errorf("mtimes not ordered: %d %d", a.ModTime, b.ModTime)
	}
}

func TestAppendFileErrors(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	if err := fs.AppendFile("/d", []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Errorf("append to dir: %v", err)
	}
	if err := fs.AppendFile("/no/dir/f", []byte("x")); !errors.Is(err, ErrNotExist) {
		t.Errorf("append into missing dir: %v", err)
	}
}

func TestRemoveDevice(t *testing.T) {
	fs := New()
	dev := &testDevice{reply: "x"}
	fs.RegisterDevice("/dev/thing", dev)
	if !fs.Exists("/dev/thing") {
		t.Fatal("device missing")
	}
	fs.RemoveDevice("/dev/thing")
	if fs.Exists("/dev/thing") {
		t.Error("device survives removal")
	}
	// Removing again is harmless.
	fs.RemoveDevice("/dev/thing")
}

func TestDeviceAppendFile(t *testing.T) {
	fs := New()
	dev := &testDevice{}
	fs.RegisterDevice("/dev/sink", dev)
	if err := fs.AppendFile("/dev/sink", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if string(dev.last) != "data" {
		t.Errorf("device got %q", dev.last)
	}
}

func TestReadDirOnFile(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", nil)
	if _, err := fs.ReadDir("/d/f"); !errors.Is(err, ErrNotDir) {
		t.Errorf("err = %v", err)
	}
	if _, err := fs.ReadDir("/ghost"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v", err)
	}
}

func TestWalkThroughFile(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", nil)
	if _, err := fs.ReadFile("/d/f/deeper"); err == nil {
		t.Error("walking through a file should fail")
	}
}

func TestBindChains(t *testing.T) {
	// A bind whose source is itself under a bind resolves transitively.
	fs := New()
	fs.MkdirAll("/real/data")
	fs.WriteFile("/real/data/f", []byte("deep"))
	fs.MkdirAll("/m1")
	fs.MkdirAll("/m2")
	fs.Bind("/real", "/m1", Replace)
	fs.Bind("/m1/data", "/m2", Replace)
	got, err := fs.ReadFile("/m2/f")
	if err != nil || string(got) != "deep" {
		t.Errorf("chained bind read = %q err=%v", got, err)
	}
}

func TestBindBadFlag(t *testing.T) {
	fs := New()
	fs.MkdirAll("/a")
	if err := fs.Bind("/a", "/b", BindFlag(42)); err == nil {
		t.Error("bad flag should error")
	}
}

func TestReadPartialDevice(t *testing.T) {
	fs := New()
	fs.RegisterDevice("/dev/text", &testDevice{reply: "0123456789"})
	f, err := fs.Open("/dev/text", OREAD)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	n, _ := f.Read(buf)
	if n != 4 || string(buf[:n]) != "0123" {
		t.Errorf("read = %d %q", n, buf[:n])
	}
	// Sequential offset advances per handle.
	n, _ = f.Read(buf)
	if string(buf[:n]) != "4567" {
		t.Errorf("read2 = %q", buf[:n])
	}
}

func TestGlobQuestionAndClass(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	for _, n := range []string{"a1", "a2", "b1"} {
		fs.WriteFile("/d/"+n, nil)
	}
	if got := fs.Glob("/d/a?"); len(got) != 2 {
		t.Errorf("a? = %v", got)
	}
	if got := fs.Glob("/d/[ab]1"); len(got) != 2 {
		t.Errorf("[ab]1 = %v", got)
	}
}

func TestSeekThenReadEOF(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("abc"))
	f, _ := fs.Open("/d/f", OREAD)
	f.Seek(0, io.SeekEnd)
	if _, err := f.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("err = %v", err)
	}
}

func TestStatMissing(t *testing.T) {
	fs := New()
	if _, err := fs.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v", err)
	}
}

func TestUnionCreateGoesToFirstMember(t *testing.T) {
	fs := New()
	fs.MkdirAll("/over")
	fs.MkdirAll("/bin")
	fs.Bind("/over", "/bin", Before)
	fs.WriteFile("/bin/newtool", []byte("x"))
	if !fs.Exists("/over/newtool") {
		t.Error("create did not go to the first union member")
	}
}

// TestModelBasedRandomOps runs thousands of random operations against the
// FS and a flat map model in lockstep; contents and existence must agree
// at every step.
func TestModelBasedRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fs := New()
	model := map[string][]byte{} // file path -> contents
	dirs := map[string]bool{"/": true}

	paths := []string{"/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep"}
	files := []string{"f1", "f2", "note.c"}
	randDir := func() string { return paths[rng.Intn(len(paths))] }
	randFile := func() string { return randDir() + "/" + files[rng.Intn(len(files))] }

	for i := 0; i < 5000; i++ {
		switch rng.Intn(6) {
		case 0: // mkdir
			d := randDir()
			if err := fs.MkdirAll(d); err != nil {
				t.Fatalf("mkdir %s: %v", d, err)
			}
			for p := d; p != "/"; p = parentPath(p) {
				dirs[p] = true
			}
		case 1: // write
			f := randFile()
			data := []byte(strings.Repeat("x", rng.Intn(20)))
			err := fs.WriteFile(f, data)
			if dirs[parentPath(f)] {
				if err != nil {
					t.Fatalf("write %s: %v", f, err)
				}
				model[f] = data
			} else if err == nil {
				t.Fatalf("write %s into missing dir succeeded", f)
			}
		case 2: // append
			f := randFile()
			err := fs.AppendFile(f, []byte("+"))
			if dirs[parentPath(f)] {
				if err != nil {
					t.Fatalf("append %s: %v", f, err)
				}
				model[f] = append(model[f], '+')
			} else if err == nil {
				t.Fatalf("append %s into missing dir succeeded", f)
			}
		case 3: // read
			f := randFile()
			data, err := fs.ReadFile(f)
			want, ok := model[f]
			if ok != (err == nil) {
				t.Fatalf("read %s: exist mismatch (model %v, err %v)", f, ok, err)
			}
			if ok && string(data) != string(want) {
				t.Fatalf("read %s: %q != %q", f, data, want)
			}
		case 4: // remove file
			f := randFile()
			err := fs.Remove(f)
			if _, ok := model[f]; ok {
				if err != nil {
					t.Fatalf("remove %s: %v", f, err)
				}
				delete(model, f)
			} else if err == nil && !dirs[f] {
				t.Fatalf("remove of missing %s succeeded", f)
			}
		case 5: // exists cross-check
			f := randFile()
			_, ok := model[f]
			if fs.Exists(f) != (ok || dirs[f]) {
				t.Fatalf("exists %s mismatch", f)
			}
		}
	}
	// Final: every model file is present with identical contents.
	for f, want := range model {
		got, err := fs.ReadFile(f)
		if err != nil || string(got) != string(want) {
			t.Fatalf("final %s: %q/%v vs %q", f, got, err, want)
		}
	}
}

func parentPath(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}
