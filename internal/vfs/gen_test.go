package vfs

import "testing"

// genDev is a device that reports its own edit generation.
type genDev struct {
	testDevice
	gen uint64
}

func (d *genDev) Gen() uint64 { return d.gen }

// Generations: every visible mutation of a regular file must move its
// generation, and Stat/ReadDir/ReadFileGen must agree on the value —
// this is what srvnet's client cache keys on.
func TestGenMovesOnWrite(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	if err := fs.WriteFile("/d/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen == 0 {
		t.Fatal("regular file has no generation")
	}
	g1 := info.Gen
	if got := fs.Gen("/d/f"); got != g1 {
		t.Fatalf("Gen = %d, Stat.Gen = %d", got, g1)
	}
	data, g2, err := fs.ReadFileGen("/d/f")
	if err != nil || string(data) != "v1" || g2 != g1 {
		t.Fatalf("ReadFileGen = %q gen %d err %v, want v1 gen %d", data, g2, err, g1)
	}

	fs.WriteFile("/d/f", []byte("v2"))
	if got := fs.Gen("/d/f"); got == g1 {
		t.Fatal("write did not move the generation")
	}
	g3 := fs.Gen("/d/f")
	fs.AppendFile("/d/f", []byte("+"))
	if got := fs.Gen("/d/f"); got == g3 {
		t.Fatal("append did not move the generation")
	}

	// ReadDir entries carry the same generations as Stat.
	ents, err := fs.ReadDir("/d")
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v %v", ents, err)
	}
	if want := fs.Gen("/d/f"); ents[0].Gen != want {
		t.Fatalf("ReadDir gen = %d, want %d", ents[0].Gen, want)
	}

	// Directories and missing files have no generation.
	if got := fs.Gen("/d"); got != 0 {
		t.Fatalf("directory gen = %d, want 0", got)
	}
	if got := fs.Gen("/nope"); got != 0 {
		t.Fatalf("missing file gen = %d, want 0", got)
	}
}

// Devices only carry a generation when they implement GenDevice; a
// plain device reads as gen 0, which srvnet treats as uncacheable.
func TestGenDevice(t *testing.T) {
	fs := New()
	fs.MkdirAll("/dev")
	plain := &testDevice{reply: "x"}
	if err := fs.RegisterDevice("/dev/plain", plain); err != nil {
		t.Fatal(err)
	}
	if got := fs.Gen("/dev/plain"); got != 0 {
		t.Fatalf("plain device gen = %d, want 0", got)
	}
	gd := &genDev{testDevice: testDevice{reply: "y"}, gen: 41}
	if err := fs.RegisterDevice("/dev/gen", gd); err != nil {
		t.Fatal(err)
	}
	if got := fs.Gen("/dev/gen"); got != 41 {
		t.Fatalf("gen device gen = %d, want 41", got)
	}
	data, g, err := fs.ReadFileGen("/dev/gen")
	if err != nil || string(data) != "y" || g != 41 {
		t.Fatalf("ReadFileGen = %q gen %d err %v", data, g, err)
	}
	gd.gen = 42
	if got := fs.Gen("/dev/gen"); got != 42 {
		t.Fatalf("gen device gen = %d after bump, want 42", got)
	}
}

// ReadFileAt slices the file under the same generation as a full read.
func TestReadFileAt(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("0123456789"))
	want := fs.Gen("/d/f")

	chunk, g, err := fs.ReadFileAt("/d/f", 2, 3)
	if err != nil || string(chunk) != "234" || g != want {
		t.Fatalf("ReadFileAt(2,3) = %q gen %d err %v", chunk, g, err)
	}
	// count <= 0 reads to the end; an offset at or past EOF is empty.
	chunk, _, _ = fs.ReadFileAt("/d/f", 5, 0)
	if string(chunk) != "56789" {
		t.Fatalf("ReadFileAt(5,0) = %q", chunk)
	}
	chunk, _, _ = fs.ReadFileAt("/d/f", 10, 4)
	if len(chunk) != 0 {
		t.Fatalf("ReadFileAt(10,4) = %q, want empty", chunk)
	}
	chunk, _, _ = fs.ReadFileAt("/d/f", 8, 100)
	if string(chunk) != "89" {
		t.Fatalf("ReadFileAt(8,100) = %q", chunk)
	}
}

// ReadFileAt on a device reads at the requested offset through one
// handle instead of draining the whole device and slicing: the range is
// served directly, including the count<=0 drain-from-offset form.
func TestReadFileAtDevice(t *testing.T) {
	fs := New()
	dev := &testDevice{reply: "abcdefghij"}
	if err := fs.RegisterDevice("/dev/echo", dev); err != nil {
		t.Fatal(err)
	}
	chunk, _, err := fs.ReadFileAt("/dev/echo", 3, 4)
	if err != nil || string(chunk) != "defg" {
		t.Fatalf("device ReadFileAt(3,4) = %q err %v", chunk, err)
	}
	chunk, _, err = fs.ReadFileAt("/dev/echo", 6, 0)
	if err != nil || string(chunk) != "ghij" {
		t.Fatalf("device ReadFileAt(6,0) = %q err %v", chunk, err)
	}
	chunk, _, err = fs.ReadFileAt("/dev/echo", 8, 100)
	if err != nil || string(chunk) != "ij" {
		t.Fatalf("device ReadFileAt(8,100) = %q err %v", chunk, err)
	}
	chunk, _, err = fs.ReadFileAt("/dev/echo", 42, 5)
	if err != nil || len(chunk) != 0 {
		t.Fatalf("device ReadFileAt past EOF = %q err %v", chunk, err)
	}
}

// A regular-file range read must not alias the node's backing array: a
// later write replaces the data, and the earlier slice must not see it.
func TestReadFileAtCopies(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", []byte("immutable"))
	chunk, _, err := fs.ReadFileAt("/d/f", 0, 4)
	if err != nil || string(chunk) != "immu" {
		t.Fatalf("ReadFileAt = %q err %v", chunk, err)
	}
	fs.WriteFile("/d/f", []byte("XXXXXXXXX"))
	if string(chunk) != "immu" {
		t.Fatalf("range read aliased file data: %q", chunk)
	}
}
