package vfs

import (
	"errors"
	"fmt"
	"io"
)

// File is an open handle with a sequential offset, the handle type the
// shell's redirections and the help file interface use. Regular files
// read and write the node's data; device files delegate to their per-open
// DeviceFile handle, which is how /mnt/help/new/ctl can return the name of
// the window that this open created.
type File struct {
	fs     *FS
	node   *node
	dev    DeviceFile
	mode   int
	off    int64
	closed bool
	name   string
}

// Open opens the file at p with the given mode (OREAD, OWRITE, ORDWR,
// optionally OR'd with OTRUNC or OAPPEND). Opening a directory is allowed
// only for reading; Read then returns the directory listing, one name per
// line, the way help renders a directory window's body.
func (fs *FS) Open(p string, mode int) (*File, error) {
	fs.lock()
	defer fs.unlock()
	return fs.open(p, mode)
}

func (fs *FS) open(p string, mode int) (*File, error) {
	n, err := fs.find(p)
	if err != nil {
		return nil, err
	}
	rw := mode &^ (OTRUNC | OAPPEND)
	if rw != OREAD && rw != OWRITE && rw != ORDWR {
		return nil, fmt.Errorf("%s: %w", p, ErrBadMode)
	}
	if n.dir {
		if rw != OREAD {
			return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
		}
		listing, err := fs.dirListing(p)
		if err != nil {
			return nil, err
		}
		return &File{fs: fs, node: &node{name: n.name, data: listing}, mode: mode, name: Clean(p)}, nil
	}
	f := &File{fs: fs, node: n, mode: mode, name: Clean(p)}
	if n.device != nil {
		h, err := n.device.OpenDevice(mode)
		if err != nil {
			return nil, err
		}
		f.dev = h
		return f, nil
	}
	if mode&OTRUNC != 0 && rw != OREAD {
		if n.sealed {
			return nil, sealErr(p)
		}
		n.data = n.data[:0]
	}
	if mode&OAPPEND != 0 {
		f.off = int64(len(n.data))
	}
	return f, nil
}

// Create creates (or truncates) a regular file at p and opens it ORDWR.
func (fs *FS) Create(p string) (*File, error) {
	fs.lock()
	defer fs.unlock()
	if n, err := fs.find(p); err == nil {
		if n.dir {
			return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
		}
		return fs.open(p, ORDWR|OTRUNC)
	}
	if err := fs.writeFile(p, nil); err != nil {
		return nil, err
	}
	return fs.open(p, ORDWR)
}

// dirListing renders a directory as text: one entry per line, directories
// suffixed with a slash, exactly how help fills a directory window.
func (fs *FS) dirListing(p string) ([]byte, error) {
	ents, err := fs.readDir(p)
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, e := range ents {
		out = append(out, e.Name...)
		if e.IsDir {
			out = append(out, '/')
		}
		out = append(out, '\n')
	}
	return out, nil
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.name }

// Read reads from the current offset.
func (f *File) Read(p []byte) (int, error) {
	f.fs.lock()
	defer f.fs.unlock()
	if f.closed {
		return 0, errors.New("vfs: read of closed file")
	}
	if f.dev != nil {
		k, err := f.dev.ReadAt(p, f.off)
		f.off += int64(k)
		return k, err
	}
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	k := copy(p, f.node.data[f.off:])
	f.off += int64(k)
	return k, nil
}

// Write writes at the current offset, extending the file as needed. In
// OAPPEND mode every write lands at the end regardless of offset.
func (f *File) Write(p []byte) (int, error) {
	f.fs.lock()
	defer f.fs.unlock()
	if f.closed {
		return 0, errors.New("vfs: write of closed file")
	}
	if rw := f.mode &^ (OTRUNC | OAPPEND); rw == OREAD {
		return 0, fmt.Errorf("%s: %w", f.name, ErrPerm)
	}
	if f.dev != nil {
		off := f.off
		if f.mode&OAPPEND != 0 {
			off = -1
		}
		k, err := f.dev.WriteAt(p, off)
		if off >= 0 {
			f.off += int64(k)
		}
		return k, err
	}
	if f.node.sealed {
		return 0, sealErr(f.name)
	}
	if f.mode&OAPPEND != 0 {
		f.off = int64(len(f.node.data))
	}
	end := f.off + int64(len(p))
	if end > int64(len(f.node.data)) {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[f.off:], p)
	f.node.mtime = f.fs.tick()
	f.off = end
	return len(p), nil
}

// Seek sets the offset for the next Read or Write, interpreted per
// io.SeekStart/Current/End.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.fs.lock()
	defer f.fs.unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = int64(len(f.node.data))
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	n := base + offset
	if n < 0 {
		return 0, errors.New("vfs: negative seek")
	}
	f.off = n
	return n, nil
}

// Close releases the handle. Closing a device file closes its per-open
// handle, which is when devices with open-lifetime side effects clean up.
func (f *File) Close() error {
	f.fs.lock()
	defer f.fs.unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.dev != nil {
		return f.dev.Close()
	}
	return nil
}
