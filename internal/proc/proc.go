// Package proc simulates the Plan 9 process substrate the paper's
// debugging demo rests on: "a new version of help has crashed and a broken
// process lies about waiting to be examined. (This is a property of Plan 9,
// not of help.)"
//
// A Table holds simulated processes. A broken process carries the fault
// that killed it, its register set, and a fully symbolized call stack —
// everything adb needs to print the traceback of Figure 7. The table also
// materializes /proc/<pid>/{status,note} files into the vfs namespace so
// shell tools can discover processes the Plan 9 way.
package proc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vfs"
)

// Process states.
const (
	StateReady  = "Ready"
	StateSleep  = "Sleep"
	StateBroken = "Broken"
)

// Regs is the machine register set the demo displays (a MIPS, as in the
// paper's "user TLB miss" crash).
type Regs struct {
	PC       uint64
	SP       uint64
	Status   uint64
	BadVAddr uint64
}

// Fault describes where a broken process died.
type Fault struct {
	Note  string // e.g. "user TLB miss (load or fetch)"
	File  string // source of the faulting instruction
	Line  int
	Func  string // symbol containing the PC
	Off   uint64 // PC offset within the symbol
	Instr string // disassembly of the faulting instruction
}

// Var is a named value in a stack frame.
type Var struct {
	Name  string
	Value uint64
}

// Frame is one entry of a symbolized call stack. Args describe the
// parameters this function was called with; File:Line is the call site in
// the *caller*, which is what adb's traceback prints after "called from".
type Frame struct {
	Func      string
	Args      []Var
	CallerSym string // caller symbol, e.g. "strlen"
	CallerOff uint64 // return-address offset inside the caller
	File      string // call-site coordinate (caller's source)
	Line      int
	Locals    []Var
}

// ArgString formats the frame's arguments the way adb prints them:
// "textinsert(sel=0x1,t=0x40e60,s=0x0,q0=0xd,full=0x1)".
func (f Frame) ArgString() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = fmt.Sprintf("%s=%#x", a.Name, a.Value)
	}
	return f.Func + "(" + strings.Join(parts, ",") + ")"
}

// Proc is one simulated process.
type Proc struct {
	PID   int
	Cmd   string // command name, e.g. "help"
	State string
	Regs  Regs
	Fault *Fault  // non-nil when State is Broken
	Stack []Frame // innermost first
	// SrcDir is the source directory recorded in the binary's symbol
	// table, which the debugger tools use as the context for the file
	// names in a traceback.
	SrcDir string
}

// Table is the process table.
type Table struct {
	procs   map[int]*Proc
	nextPID int
}

// NewTable returns an empty process table.
func NewTable() *Table {
	return &Table{procs: map[int]*Proc{}, nextPID: 1}
}

// Add inserts p, assigning a PID if p.PID is zero, and returns it.
func (t *Table) Add(p *Proc) *Proc {
	if p.PID == 0 {
		p.PID = t.nextPID
	}
	if p.PID >= t.nextPID {
		t.nextPID = p.PID + 1
	}
	if p.State == "" {
		p.State = StateReady
	}
	t.procs[p.PID] = p
	return p
}

// Get returns the process with the given pid, or nil.
func (t *Table) Get(pid int) *Proc { return t.procs[pid] }

// Remove deletes pid from the table.
func (t *Table) Remove(pid int) { delete(t.procs, pid) }

// List returns all processes ordered by pid.
func (t *Table) List() []*Proc {
	out := make([]*Proc, 0, len(t.procs))
	for _, p := range t.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Broken returns the broken processes ordered by pid.
func (t *Table) Broken() []*Proc {
	var out []*Proc
	for _, p := range t.List() {
		if p.State == StateBroken {
			out = append(out, p)
		}
	}
	return out
}

// Crash marks p broken with the given fault, stack, and registers.
func (p *Proc) Crash(f Fault, regs Regs, stack []Frame) {
	p.State = StateBroken
	p.Fault = &f
	p.Regs = regs
	p.Stack = stack
}

// CrashBanner renders the two-line message a Plan 9 process prints when it
// breaks, as quoted in Sean's mail in the paper:
//
//	help 176153: user TLB miss (load or fetch) badvaddr=0x0
//	help 176153: status=0xfb0c pc=0x18df4 sp=0x3f4e8
func (p *Proc) CrashBanner() string {
	if p.Fault == nil {
		return ""
	}
	return fmt.Sprintf("%s %d: %s badvaddr=%#x\n%s %d: status=%#x pc=%#x sp=%#x\n",
		p.Cmd, p.PID, p.Fault.Note, p.Regs.BadVAddr,
		p.Cmd, p.PID, p.Regs.Status, p.Regs.PC, p.Regs.SP)
}

// Mount materializes the table as /proc files in fs: for each process,
// /proc/<pid>/status holds "cmd pid state" and, for broken processes,
// /proc/<pid>/note holds the fault note. Call again after table changes.
func (t *Table) Mount(fs *vfs.FS) error {
	// Clear any prior materialization so removed processes disappear.
	if ents, err := fs.ReadDir("/proc"); err == nil {
		for _, e := range ents {
			if sub, err := fs.ReadDir("/proc/" + e.Name); err == nil {
				for _, f := range sub {
					fs.Remove("/proc/" + e.Name + "/" + f.Name)
				}
			}
			fs.Remove("/proc/" + e.Name)
		}
	}
	if err := fs.MkdirAll("/proc"); err != nil {
		return err
	}
	for _, p := range t.List() {
		dir := fmt.Sprintf("/proc/%d", p.PID)
		if err := fs.MkdirAll(dir); err != nil {
			return err
		}
		status := fmt.Sprintf("%s %d %s\n", p.Cmd, p.PID, p.State)
		if err := fs.WriteFile(dir+"/status", []byte(status)); err != nil {
			return err
		}
		if p.Fault != nil {
			if err := fs.WriteFile(dir+"/note", []byte(p.Fault.Note+"\n")); err != nil {
				return err
			}
		}
	}
	return nil
}
