package proc

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/vfs"
)

func TestAddAssignsPIDs(t *testing.T) {
	tb := NewTable()
	a := tb.Add(&Proc{Cmd: "help"})
	b := tb.Add(&Proc{Cmd: "rc"})
	if a.PID == 0 || b.PID == 0 || a.PID == b.PID {
		t.Errorf("pids = %d, %d", a.PID, b.PID)
	}
	if a.State != StateReady {
		t.Errorf("default state = %q", a.State)
	}
}

func TestAddExplicitPID(t *testing.T) {
	tb := NewTable()
	tb.Add(&Proc{PID: 176153, Cmd: "help"})
	if tb.Get(176153) == nil {
		t.Fatal("explicit pid not found")
	}
	// Next auto pid must not collide.
	n := tb.Add(&Proc{Cmd: "x"})
	if n.PID <= 176153 {
		t.Errorf("auto pid %d collides", n.PID)
	}
}

func TestGetRemoveList(t *testing.T) {
	tb := NewTable()
	p := tb.Add(&Proc{Cmd: "a"})
	tb.Add(&Proc{Cmd: "b"})
	if got := tb.Get(p.PID); got != p {
		t.Error("Get mismatch")
	}
	if tb.Get(9999) != nil {
		t.Error("Get of missing pid should be nil")
	}
	if len(tb.List()) != 2 {
		t.Errorf("List = %d", len(tb.List()))
	}
	tb.Remove(p.PID)
	if len(tb.List()) != 1 {
		t.Error("Remove ineffective")
	}
}

func TestListSorted(t *testing.T) {
	tb := NewTable()
	tb.Add(&Proc{PID: 30, Cmd: "c"})
	tb.Add(&Proc{PID: 10, Cmd: "a"})
	tb.Add(&Proc{PID: 20, Cmd: "b"})
	l := tb.List()
	if l[0].PID != 10 || l[1].PID != 20 || l[2].PID != 30 {
		t.Errorf("order = %d %d %d", l[0].PID, l[1].PID, l[2].PID)
	}
}

func TestCrashAndBroken(t *testing.T) {
	tb := NewTable()
	p := tb.Add(&Proc{PID: 176153, Cmd: "help"})
	p.Crash(
		Fault{Note: "user TLB miss (load or fetch)", File: "/sys/src/libc/mips/strchr.s", Line: 34, Func: "strchr", Off: 0x68, Instr: "MOVW 0(R3),R5"},
		Regs{PC: 0x18df4, SP: 0x3f4e8, Status: 0xfb0c, BadVAddr: 0},
		[]Frame{{Func: "strchr", Args: []Var{{"c", 0x3c}, {"s", 0}}, CallerSym: "strlen", CallerOff: 0x1c, File: "/sys/src/libc/port/strlen.c", Line: 7}},
	)
	if p.State != StateBroken || p.Fault == nil {
		t.Fatalf("state=%q fault=%v", p.State, p.Fault)
	}
	broken := tb.Broken()
	if len(broken) != 1 || broken[0].PID != 176153 {
		t.Errorf("Broken = %v", broken)
	}
}

func TestCrashBanner(t *testing.T) {
	p := &Proc{PID: 176153, Cmd: "help"}
	if p.CrashBanner() != "" {
		t.Error("banner before crash should be empty")
	}
	p.Crash(
		Fault{Note: "user TLB miss (load or fetch)"},
		Regs{PC: 0x18df4, SP: 0x3f4e8, Status: 0xfb0c, BadVAddr: 0},
		nil,
	)
	banner := p.CrashBanner()
	want := "help 176153: user TLB miss (load or fetch) badvaddr=0x0\n" +
		"help 176153: status=0xfb0c pc=0x18df4 sp=0x3f4e8\n"
	if banner != want {
		t.Errorf("banner = %q\nwant %q", banner, want)
	}
}

func TestFrameArgString(t *testing.T) {
	f := Frame{Func: "textinsert", Args: []Var{
		{"sel", 1}, {"t", 0x40e60}, {"s", 0}, {"q0", 0xd}, {"full", 1},
	}}
	want := "textinsert(sel=0x1,t=0x40e60,s=0x0,q0=0xd,full=0x1)"
	if got := f.ArgString(); got != want {
		t.Errorf("ArgString = %q", got)
	}
	empty := Frame{Func: "Xdie2"}
	if got := empty.ArgString(); got != "Xdie2()" {
		t.Errorf("empty ArgString = %q", got)
	}
}

func TestMount(t *testing.T) {
	fs := vfs.New()
	tb := NewTable()
	p := tb.Add(&Proc{PID: 42, Cmd: "help"})
	if err := tb.Mount(fs); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/proc/42/status")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "help 42 Ready\n" {
		t.Errorf("status = %q", data)
	}
	// Crash, remount: note appears.
	p.Crash(Fault{Note: "sys: bad address"}, Regs{}, nil)
	if err := tb.Mount(fs); err != nil {
		t.Fatal(err)
	}
	note, err := fs.ReadFile("/proc/42/note")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(note), "bad address") {
		t.Errorf("note = %q", note)
	}
	// Remove and remount: directory disappears.
	tb.Remove(42)
	if err := tb.Mount(fs); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/proc/42/status") {
		t.Error("stale /proc entry survives remount")
	}
}

func TestMountRefreshesState(t *testing.T) {
	fs := vfs.New()
	tb := NewTable()
	p := tb.Add(&Proc{PID: 7, Cmd: "worker"})
	tb.Mount(fs)
	data, _ := fs.ReadFile("/proc/7/status")
	if !strings.Contains(string(data), "Ready") {
		t.Fatalf("status = %q", data)
	}
	p.State = StateSleep
	tb.Mount(fs)
	data, _ = fs.ReadFile("/proc/7/status")
	if !strings.Contains(string(data), "Sleep") {
		t.Errorf("refreshed status = %q", data)
	}
}

// TestMountWriteFailurePropagates: when the namespace refuses the
// materialization (here /proc is occupied by a regular file), Mount
// must report the error, not swallow it.
func TestMountWriteFailurePropagates(t *testing.T) {
	fs := vfs.New()
	if err := fs.WriteFile("/proc", []byte("in the way")); err != nil {
		t.Fatal(err)
	}
	tb := NewTable()
	tb.Add(&Proc{PID: 9, Cmd: "help"})
	err := tb.Mount(fs)
	if err == nil {
		t.Fatal("Mount over a file succeeded")
	}
	if !errors.Is(err, vfs.ErrNotDir) {
		t.Errorf("err = %v, want ErrNotDir", err)
	}
}

// TestMountClearsStaleNote: a process that recovers (fault cleared)
// loses its /proc note on remount; re-materialization never leaves
// stale files behind.
func TestMountClearsStaleNote(t *testing.T) {
	fs := vfs.New()
	tb := NewTable()
	p := tb.Add(&Proc{PID: 8, Cmd: "help"})
	p.Crash(Fault{Note: "sys: trap"}, Regs{}, nil)
	if err := tb.Mount(fs); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/proc/8/note") {
		t.Fatal("note not materialized")
	}
	p.Fault = nil
	p.State = StateReady
	if err := tb.Mount(fs); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/proc/8/note") {
		t.Error("stale note survives remount")
	}
	data, _ := fs.ReadFile("/proc/8/status")
	if !strings.Contains(string(data), "Ready") {
		t.Errorf("status = %q", data)
	}
}

// TestMountManyRemovalsRematerialize: /proc tracks the table exactly
// across adds and removals.
func TestMountManyRemovalsRematerialize(t *testing.T) {
	fs := vfs.New()
	tb := NewTable()
	for pid := 1; pid <= 5; pid++ {
		tb.Add(&Proc{PID: pid, Cmd: "w"})
	}
	if err := tb.Mount(fs); err != nil {
		t.Fatal(err)
	}
	tb.Remove(2)
	tb.Remove(4)
	tb.Add(&Proc{PID: 6, Cmd: "w"})
	if err := tb.Mount(fs); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	want := []string{"1", "3", "5", "6"}
	if len(names) != len(want) {
		t.Fatalf("entries = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("entries = %v, want %v", names, want)
		}
	}
}
