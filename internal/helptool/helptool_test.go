package helptool

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/helpfs"
	"repro/internal/shell"
	"repro/internal/vfs"
)

// env wires a help instance with the file service and returns a context
// with $helpsel pointing at a window selection.
func env(t *testing.T) (*core.Help, *shell.Context) {
	t.Helper()
	fs := vfs.New()
	sh := shell.New(fs)
	h := core.New(fs, sh, 60, 24)
	if _, err := helpfs.Attach(h, fs, DefaultRoot); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	return h, ctx
}

func setSel(ctx *shell.Context, win *core.Window, q0, q1 int) {
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:%d,%d", win.ID, q0, q1)})
}

func TestParseHelpsel(t *testing.T) {
	_, ctx := env(t)
	ctx.Set("helpsel", []string{"7:3,9"})
	sel, err := ParseHelpsel(ctx)
	if err != nil || sel.Win != 7 || sel.Q0 != 3 || sel.Q1 != 9 {
		t.Errorf("sel=%+v err=%v", sel, err)
	}
}

func TestParseHelpselErrors(t *testing.T) {
	_, ctx := env(t)
	if _, err := ParseHelpsel(ctx); err == nil {
		t.Error("unset $helpsel should error")
	}
	ctx.Set("helpsel", []string{"garbage"})
	if _, err := ParseHelpsel(ctx); err == nil {
		t.Error("malformed $helpsel should error")
	}
}

func TestReadBodyTagAndFileName(t *testing.T) {
	h, ctx := env(t)
	w := h.NewWindow()
	w.Body.SetString("the body text")
	w.Tag.SetString("/a/file.c\tClose! Get!")

	body, err := ReadBody(ctx, DefaultRoot, w.ID)
	if err != nil || body != "the body text" {
		t.Errorf("body=%q err=%v", body, err)
	}
	tag, err := ReadTag(ctx, DefaultRoot, w.ID)
	if err != nil || !strings.HasPrefix(tag, "/a/file.c") {
		t.Errorf("tag=%q err=%v", tag, err)
	}
	name, err := TagFileName(ctx, DefaultRoot, w.ID)
	if err != nil || name != "/a/file.c" {
		t.Errorf("name=%q err=%v", name, err)
	}
}

func TestReadBodyMissingWindow(t *testing.T) {
	_, ctx := env(t)
	if _, err := ReadBody(ctx, DefaultRoot, 99); err == nil {
		t.Error("missing window should error")
	}
}

func TestNewWindowAndCtl(t *testing.T) {
	h, ctx := env(t)
	id, err := NewWindow(ctx, DefaultRoot)
	if err != nil {
		t.Fatal(err)
	}
	if h.Window(id) == nil {
		t.Fatalf("window %d not created", id)
	}
	if err := Ctl(ctx, DefaultRoot, id, "name /made/by/tool"); err != nil {
		t.Fatal(err)
	}
	if h.Window(id).FileName() != "/made/by/tool" {
		t.Errorf("name = %q", h.Window(id).FileName())
	}
}

func TestAppendAndWriteBody(t *testing.T) {
	h, ctx := env(t)
	w := h.NewWindow()
	if err := WriteBody(ctx, DefaultRoot, w.ID, "base\n"); err != nil {
		t.Fatal(err)
	}
	if err := AppendBody(ctx, DefaultRoot, w.ID, "more\n"); err != nil {
		t.Fatal(err)
	}
	if w.Body.String() != "base\nmore\n" {
		t.Errorf("body = %q", w.Body.String())
	}
}

func TestLineAt(t *testing.T) {
	body := "first\nsecond\nthird"
	cases := []struct {
		q0       int
		line     int
		lineText string
	}{
		{0, 1, "first"},
		{5, 1, "first"},
		{6, 2, "second"},
		{12, 2, "second"},
		{13, 3, "third"},
		{99, 3, "third"}, // clamped past the end
	}
	for _, c := range cases {
		ln, text := LineAt(body, c.q0)
		if ln != c.line || text != c.lineText {
			t.Errorf("LineAt(%d) = %d,%q want %d,%q", c.q0, ln, text, c.line, c.lineText)
		}
	}
}

func TestWordAt(t *testing.T) {
	body := "errs((uchar*)n); fn_2 done"
	cases := []struct {
		q0   int
		want string
	}{
		{0, "errs"},
		{2, "errs"},
		{4, "errs"},  // boundary: end of word
		{13, "n"},    // the n in (uchar*)n
		{17, "fn_2"}, // underscores and digits
		{5, ""},      // between the parens
		{len([]rune(body)), "done"},
	}
	for _, c := range cases {
		if got := WordAt(body, c.q0); got != c.want {
			t.Errorf("WordAt(%d) = %q, want %q", c.q0, got, c.want)
		}
	}
}

func TestSelWindowBody(t *testing.T) {
	h, ctx := env(t)
	w := h.NewWindow()
	w.Body.SetString("content here")
	setSel(ctx, w, 2, 5)
	sel, body, err := SelWindowBody(ctx, DefaultRoot)
	if err != nil || sel.Win != w.ID || body != "content here" {
		t.Errorf("sel=%+v body=%q err=%v", sel, body, err)
	}
	// No helpsel.
	ctx.Set("helpsel", nil)
	if _, _, err := SelWindowBody(ctx, DefaultRoot); err == nil {
		t.Error("missing helpsel should error")
	}
}
