// Package helptool carries the small amount of plumbing every help
// application shares: parsing the $helpsel environment variable ("help
// passes to an application the file and character offset of the mouse
// position") and driving windows through the /mnt/help file interface.
// Tools built on it contain no user-interface code at all, which is the
// paper's point: "We would not need to write any user interface software."
package helptool

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/shell"
	"repro/internal/vfs"
)

// DefaultRoot is the conventional mount point of the help file service.
const DefaultRoot = "/mnt/help"

// Sel is a decoded $helpsel: the window and rune range the user selected.
type Sel struct {
	Win    int
	Q0, Q1 int
}

// ParseHelpsel decodes $helpsel ("windowID:q0,q1") from the context.
func ParseHelpsel(ctx *shell.Context) (Sel, error) {
	raw := ctx.Getenv("helpsel")
	if raw == "" {
		return Sel{}, fmt.Errorf("helptool: $helpsel not set")
	}
	var s Sel
	if _, err := fmt.Sscanf(raw, "%d:%d,%d", &s.Win, &s.Q0, &s.Q1); err != nil {
		return Sel{}, fmt.Errorf("helptool: bad $helpsel %q", raw)
	}
	return s, nil
}

// winFile returns the path of one of a window's interface files.
func winFile(root string, id int, name string) string {
	return fmt.Sprintf("%s/%d/%s", vfs.Clean(root), id, name)
}

// ReadBody reads a window's body through the file interface.
func ReadBody(ctx *shell.Context, root string, id int) (string, error) {
	data, err := ctx.FS.ReadFile(winFile(root, id, "body"))
	return string(data), err
}

// ReadTag reads a window's tag.
func ReadTag(ctx *shell.Context, root string, id int) (string, error) {
	data, err := ctx.FS.ReadFile(winFile(root, id, "tag"))
	return string(data), err
}

// TagFileName extracts the file name (first word) from a window's tag.
func TagFileName(ctx *shell.Context, root string, id int) (string, error) {
	tag, err := ReadTag(ctx, root, id)
	if err != nil {
		return "", err
	}
	if i := strings.IndexAny(tag, " \t\n"); i >= 0 {
		tag = tag[:i]
	}
	return tag, nil
}

// NewWindow creates a window through new/ctl and returns its id.
func NewWindow(ctx *shell.Context, root string) (int, error) {
	f, err := ctx.FS.Open(vfs.Clean(root)+"/new/ctl", vfs.OREAD)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, 32)
	n, _ := f.Read(buf)
	id, err := strconv.Atoi(strings.TrimSpace(string(buf[:n])))
	if err != nil {
		return 0, fmt.Errorf("helptool: bad window id %q", buf[:n])
	}
	return id, nil
}

// Ctl writes one control message to a window.
func Ctl(ctx *shell.Context, root string, id int, msg string) error {
	if !strings.HasSuffix(msg, "\n") {
		msg += "\n"
	}
	return ctx.FS.WriteFile(winFile(root, id, "ctl"), []byte(msg))
}

// AppendBody appends text to a window's body via bodyapp.
func AppendBody(ctx *shell.Context, root string, id int, text string) error {
	f, err := ctx.FS.Open(winFile(root, id, "bodyapp"), vfs.OWRITE)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte(text))
	return err
}

// WriteBody replaces a window's body.
func WriteBody(ctx *shell.Context, root string, id int, text string) error {
	return ctx.FS.WriteFile(winFile(root, id, "body"), []byte(text))
}

// LineAt returns the 1-based line number containing rune offset q0 in
// body, and the text of that line.
func LineAt(body string, q0 int) (int, string) {
	runes := []rune(body)
	if q0 > len(runes) {
		q0 = len(runes)
	}
	line := 1
	start := 0
	for i := 0; i < q0; i++ {
		if runes[i] == '\n' {
			line++
			start = i + 1
		}
	}
	end := start
	for end < len(runes) && runes[end] != '\n' {
		end++
	}
	return line, string(runes[start:end])
}

// WordAt expands rune offset q0 in body to the surrounding identifier-like
// word (letters, digits, underscore).
func WordAt(body string, q0 int) string {
	runes := []rune(body)
	if q0 > len(runes) {
		q0 = len(runes)
	}
	isWord := func(r rune) bool {
		return r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
	}
	a, b := q0, q0
	for a > 0 && isWord(runes[a-1]) {
		a--
	}
	for b < len(runes) && isWord(runes[b]) {
		b++
	}
	return string(runes[a:b])
}

// SelWindowBody resolves $helpsel and reads the selected window's body.
func SelWindowBody(ctx *shell.Context, root string) (Sel, string, error) {
	sel, err := ParseHelpsel(ctx)
	if err != nil {
		return Sel{}, "", err
	}
	body, err := ReadBody(ctx, root, sel.Win)
	return sel, body, err
}
