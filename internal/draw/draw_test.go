package draw

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestNewScreenBlank(t *testing.T) {
	s := NewScreen(4, 2)
	w, h := s.Size()
	if w != 4 || h != 2 {
		t.Fatalf("Size = %d,%d", w, h)
	}
	if got := s.String(); got != "\n\n" {
		t.Errorf("blank screen = %q", got)
	}
	if c := s.At(geom.Pt(1, 1)); c.R != ' ' || c.Attr != Plain {
		t.Errorf("blank cell = %+v", c)
	}
}

func TestSetAtClipping(t *testing.T) {
	s := NewScreen(3, 3)
	s.SetRune(geom.Pt(1, 1), 'x', Reverse)
	if c := s.At(geom.Pt(1, 1)); c.R != 'x' || c.Attr != Reverse {
		t.Errorf("cell = %+v", c)
	}
	// Out-of-bounds writes are dropped, reads return blank.
	s.SetRune(geom.Pt(-1, 0), 'q', Plain)
	s.SetRune(geom.Pt(3, 0), 'q', Plain)
	s.SetRune(geom.Pt(0, 3), 'q', Plain)
	if got := s.At(geom.Pt(99, 99)); got.R != ' ' {
		t.Errorf("OOB read = %+v", got)
	}
	if strings.Contains(s.String(), "q") {
		t.Error("out-of-bounds write landed on screen")
	}
}

func TestText(t *testing.T) {
	s := NewScreen(5, 1)
	end := s.Text(geom.Pt(2, 0), "abcdef", Plain)
	if got := s.Line(0); got != "  abc" {
		t.Errorf("Line = %q", got)
	}
	if end.X != 5 {
		t.Errorf("end.X = %d, want clipped at 5", end.X)
	}
}

func TestFillAndAttr(t *testing.T) {
	s := NewScreen(4, 3)
	s.Fill(geom.Rt(1, 1, 3, 3), '#', TabCell)
	if got := s.Line(1); got != " ##" {
		t.Errorf("Line(1) = %q", got)
	}
	s.SetAttr(geom.Rt(0, 0, 4, 1), Reverse)
	attrs := strings.Split(s.AttrString(), "\n")
	if attrs[0] != "RRRR" {
		t.Errorf("attr row 0 = %q", attrs[0])
	}
	if attrs[1] != " ##"[0:0]+"."+"##" && attrs[1] != ".##" {
		t.Errorf("attr row 1 = %q", attrs[1])
	}
}

func TestLineTrimsTrailingBlanks(t *testing.T) {
	s := NewScreen(10, 1)
	s.Text(geom.Pt(0, 0), "hi", Plain)
	if got := s.Line(0); got != "hi" {
		t.Errorf("Line = %q", got)
	}
	if got := s.Line(-1); got != "" {
		t.Errorf("Line(-1) = %q", got)
	}
	if got := s.Line(5); got != "" {
		t.Errorf("Line(5) = %q", got)
	}
}

func TestRegion(t *testing.T) {
	s := NewScreen(6, 3)
	s.Text(geom.Pt(0, 0), "abcdef", Plain)
	s.Text(geom.Pt(0, 1), "ghijkl", Plain)
	got := s.Region(geom.Rt(1, 0, 4, 2))
	want := "bcd\nhij\n"
	if got != want {
		t.Errorf("Region = %q, want %q", got, want)
	}
}

func TestCopyIndependence(t *testing.T) {
	s := NewScreen(3, 1)
	s.Text(geom.Pt(0, 0), "abc", Plain)
	c := s.Copy()
	s.SetRune(geom.Pt(0, 0), 'z', Plain)
	if c.Line(0) != "abc" {
		t.Errorf("copy mutated: %q", c.Line(0))
	}
	if s.Line(0) != "zbc" {
		t.Errorf("original = %q", s.Line(0))
	}
}

func TestAttrStringCodes(t *testing.T) {
	all := []Attr{Plain, Reverse, Outline, Underline, Tag, Border, TabCell}
	codes := map[string]bool{}
	for _, a := range all {
		c := a.String()
		if len(c) != 1 {
			t.Errorf("Attr %d code %q not one byte", a, c)
		}
		if codes[c] {
			t.Errorf("duplicate attr code %q", c)
		}
		codes[c] = true
	}
	if Attr(200).String() != "?" {
		t.Error("unknown attr should render ?")
	}
}

// Property: Set then At round-trips inside the screen.
func TestSetAtRoundTrip(t *testing.T) {
	s := NewScreen(16, 16)
	f := func(x, y uint8, r rune, a uint8) bool {
		p := geom.Pt(int(x%16), int(y%16))
		if r < ' ' || r > 0x10FFFF {
			r = 'x'
		}
		c := Cell{R: r, Attr: Attr(a % 7)}
		s.Set(p, c)
		return s.At(p) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fill never touches cells outside the given rect.
func TestFillClipsProperty(t *testing.T) {
	f := func(x0, y0, x1, y1 uint8) bool {
		s := NewScreen(8, 8)
		r := geom.Rect{Min: geom.Pt(int(x0%10), int(y0%10)), Max: geom.Pt(int(x1%10), int(y1%10))}.Canon()
		s.Fill(r, '#', TabCell)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				in := geom.Pt(x, y).In(r)
				got := s.At(geom.Pt(x, y)).R == '#'
				if got != in {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
