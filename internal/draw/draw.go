// Package draw provides the display substrate for the help reproduction: a
// character-cell screen with per-cell attributes.
//
// The original help ran on a Plan 9 bitmap display. Because help is purely
// textual, all of its user-interface semantics survive on a cell grid: each
// cell holds one rune plus an attribute describing how the original would
// have painted it (reverse video for the current selection, outline for
// selections in other subwindows, and so on). The grid renders to plain
// text, which is how the repository regenerates the paper's figures and
// runs golden-screenshot tests.
package draw

import (
	"strings"

	"repro/internal/geom"
)

// Attr describes how a cell is painted.
type Attr uint8

const (
	// Plain is ordinary text on the background.
	Plain Attr = iota
	// Reverse is reverse video: the current selection.
	Reverse
	// Outline marks a selection in a subwindow other than the current one.
	Outline
	// Underline marks text being swept for execution with the middle button.
	Underline
	// Tag is the background tint of tag lines.
	Tag
	// Border paints window borders and column structure.
	Border
	// TabCell paints the small black squares along the column edge.
	TabCell
)

// String returns a one-letter code for the attribute, used in attribute
// dumps by tests.
func (a Attr) String() string {
	switch a {
	case Plain:
		return "."
	case Reverse:
		return "R"
	case Outline:
		return "O"
	case Underline:
		return "U"
	case Tag:
		return "T"
	case Border:
		return "B"
	case TabCell:
		return "#"
	}
	return "?"
}

// Cell is one character cell of the display.
type Cell struct {
	R    rune
	Attr Attr
}

// Screen is a rectangular grid of cells rooted at (0,0).
type Screen struct {
	w, h  int
	cells []Cell
}

// NewScreen returns a screen of the given size with every cell blank.
func NewScreen(w, h int) *Screen {
	if w < 0 || h < 0 {
		panic("draw: negative screen size")
	}
	s := &Screen{w: w, h: h, cells: make([]Cell, w*h)}
	s.Clear()
	return s
}

// Size returns the width and height of the screen in cells.
func (s *Screen) Size() (w, h int) { return s.w, s.h }

// Bounds returns the screen rectangle.
func (s *Screen) Bounds() geom.Rect { return geom.Rt(0, 0, s.w, s.h) }

// Clear resets every cell to a blank plain space.
func (s *Screen) Clear() {
	for i := range s.cells {
		s.cells[i] = Cell{R: ' ', Attr: Plain}
	}
}

// At returns the cell at p, or a blank cell if p is off screen.
func (s *Screen) At(p geom.Point) Cell {
	if !p.In(s.Bounds()) {
		return Cell{R: ' ', Attr: Plain}
	}
	return s.cells[p.Y*s.w+p.X]
}

// Set writes the cell at p; writes outside the screen are clipped.
func (s *Screen) Set(p geom.Point, c Cell) {
	if !p.In(s.Bounds()) {
		return
	}
	s.cells[p.Y*s.w+p.X] = c
}

// SetRune writes rune r with attribute a at p.
func (s *Screen) SetRune(p geom.Point, r rune, a Attr) {
	s.Set(p, Cell{R: r, Attr: a})
}

// Fill paints every cell of r with rune ch and attribute a, clipped to the
// screen.
func (s *Screen) Fill(r geom.Rect, ch rune, a Attr) {
	r = r.Intersect(s.Bounds())
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			s.cells[y*s.w+x] = Cell{R: ch, Attr: a}
		}
	}
}

// Text writes a string starting at p with attribute a, clipping at the
// screen edge, and returns the position one past the final rune written.
// Newlines are not interpreted; use higher layers for layout.
func (s *Screen) Text(p geom.Point, text string, a Attr) geom.Point {
	for _, r := range text {
		if p.X >= s.w {
			break
		}
		s.SetRune(p, r, a)
		p.X++
	}
	return p
}

// SetAttr rewrites the attribute of every cell in r without touching the
// runes, used to paint selections over already-laid-out text.
func (s *Screen) SetAttr(r geom.Rect, a Attr) {
	r = r.Intersect(s.Bounds())
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			s.cells[y*s.w+x].Attr = a
		}
	}
}

// Line returns the text of row y with trailing blanks trimmed.
func (s *Screen) Line(y int) string {
	if y < 0 || y >= s.h {
		return ""
	}
	var b strings.Builder
	for x := 0; x < s.w; x++ {
		b.WriteRune(s.cells[y*s.w+x].R)
	}
	return strings.TrimRight(b.String(), " ")
}

// String renders the screen as h lines of text, trailing blanks trimmed.
// Attributes are dropped; see AttrString for the attribute plane.
func (s *Screen) String() string {
	var b strings.Builder
	for y := 0; y < s.h; y++ {
		b.WriteString(s.Line(y))
		b.WriteByte('\n')
	}
	return b.String()
}

// AttrString renders the attribute plane, one code letter per cell, used by
// golden tests that check selection painting.
func (s *Screen) AttrString() string {
	var b strings.Builder
	for y := 0; y < s.h; y++ {
		line := make([]byte, 0, s.w)
		for x := 0; x < s.w; x++ {
			line = append(line, s.cells[y*s.w+x].Attr.String()[0])
		}
		b.WriteString(strings.TrimRight(string(line), "."))
		b.WriteByte('\n')
	}
	return b.String()
}

// Region extracts the rows of r as rendered text, used to screenshot a
// single window for figures.
func (s *Screen) Region(r geom.Rect) string {
	r = r.Intersect(s.Bounds())
	var b strings.Builder
	for y := r.Min.Y; y < r.Max.Y; y++ {
		var row strings.Builder
		for x := r.Min.X; x < r.Max.X; x++ {
			row.WriteRune(s.cells[y*s.w+x].R)
		}
		b.WriteString(strings.TrimRight(row.String(), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// Copy returns an independent deep copy of the screen, used by session
// recorders that keep per-step snapshots.
func (s *Screen) Copy() *Screen {
	n := &Screen{w: s.w, h: s.h, cells: make([]Cell, len(s.cells))}
	copy(n.cells, s.cells)
	return n
}
