package cc

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

func TestKindAndRefStrings(t *testing.T) {
	kinds := map[SymKind]string{
		KindVar: "var", KindFunc: "func", KindTypedef: "typedef",
		KindParam: "param", KindLocal: "local", KindTag: "tag",
		KindEnumConst: "enum", KindExtern: "extern",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v != %q", k, want)
		}
	}
	if SymKind(99).String() != "?" {
		t.Error("unknown kind")
	}
	refs := map[RefKind]string{RefDecl: "decl", RefRead: "read", RefWrite: "write"}
	for k, want := range refs {
		if k.String() != want {
			t.Errorf("%v != %q", k, want)
		}
	}
	if RefKind(99).String() != "?" {
		t.Error("unknown ref kind")
	}
}

func TestCoordString(t *testing.T) {
	c := Coord{File: "a.c", Line: 7}
	if c.String() != "a.c:7" {
		t.Errorf("String = %q", c.String())
	}
	if !(Coord{}).IsZero() || c.IsZero() {
		t.Error("IsZero misbehaves")
	}
}

func TestParseFSOrdersHeadersFirst(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/p")
	// The .c uses a typedef the .h defines; lexical order would parse
	// main.c first and mis-scope it, so ParseFS must do headers first.
	fs.WriteFile("/p/main.c", []byte("Obj *o;\n"))
	fs.WriteFile("/p/defs.h", []byte("typedef struct Obj Obj;\n"))
	b := NewBrowser()
	if err := b.ParseFS(fs, []string{"/p/main.c", "/p/defs.h"}); err != nil {
		t.Fatal(err)
	}
	o := b.Lookup("o")
	if o == nil || o.Kind != KindVar {
		t.Fatalf("o = %+v", o)
	}
	files := b.Files()
	if len(files) != 2 || !strings.HasSuffix(files[0], ".h") {
		t.Errorf("parse order = %v", files)
	}
}

func TestParseFSMissingFile(t *testing.T) {
	fs := vfs.New()
	b := NewBrowser()
	if err := b.ParseFS(fs, []string{"/ghost.c"}); err == nil {
		t.Error("missing file should error")
	}
}

func TestLexErrError(t *testing.T) {
	_, err := lex("t.c", "/* unterminated")
	if err == nil || !strings.Contains(err.Error(), "t.c:1") {
		t.Errorf("err = %v", err)
	}
}

func TestFunctionPointerDeclarator(t *testing.T) {
	b := parseOne(t, "void (*handler)(int);\nvoid f(void){ handler(1); }\n")
	h := b.Lookup("handler")
	if h == nil {
		t.Fatal("handler missing")
	}
	uses := b.Uses(h, nil)
	if len(uses) < 2 {
		t.Errorf("handler refs = %+v", uses)
	}
}

func TestTypedefWithArrayAndPointer(t *testing.T) {
	b := parseOne(t, "typedef char Name[32];\ntypedef int (*Cmp)(int, int);\nName buf;\n")
	if td := b.Lookup("Name"); td == nil || td.Kind != KindTypedef {
		t.Errorf("Name = %+v", td)
	}
	if td := b.Lookup("Cmp"); td == nil || td.Kind != KindTypedef {
		t.Errorf("Cmp = %+v", td)
	}
	if v := b.Lookup("buf"); v == nil || v.Kind != KindVar {
		t.Errorf("buf = %+v", v)
	}
}

func TestMalformedDeclarationRecovers(t *testing.T) {
	// Junk between declarations must not derail the following ones.
	b := parseOne(t, "int a;\nint = ;\nint b;\n")
	if b.Lookup("a") == nil || b.Lookup("b") == nil {
		t.Error("recovery failed")
	}
}

func TestStructVariableDeclaration(t *testing.T) {
	b := parseOne(t, "struct Point { int x; int y; } origin;\nvoid f(void){ use(origin); }\n")
	o := b.Lookup("origin")
	if o == nil || o.Kind != KindVar {
		t.Fatalf("origin = %+v", o)
	}
	if tag := b.LookupTag("Point"); tag == nil {
		t.Error("tag Point missing")
	}
}

func TestNestedBlockScopes(t *testing.T) {
	b := parseOne(t, `
int v;
void f(void)
{
	{
		int v;
		v = 1;
	}
	v = 2;
}
`)
	g := b.Lookup("v")
	writes := 0
	for _, r := range g.Refs {
		if r.Kind == RefWrite {
			writes++
		}
	}
	if writes != 1 {
		t.Errorf("global writes = %d (inner-block local must shadow): %+v", writes, g.Refs)
	}
}

func TestSizeofAndCasts(t *testing.T) {
	b := parseOne(t, "int n;\nvoid f(void){ g(sizeof(n)); h((char)n); }\n")
	g := b.Lookup("n")
	reads := 0
	for _, r := range g.Refs {
		if r.Kind == RefRead {
			reads++
		}
	}
	if reads != 2 {
		t.Errorf("reads = %d: %+v", reads, g.Refs)
	}
}

func TestStringAndCharLiteralsIgnored(t *testing.T) {
	b := parseOne(t, "int n;\nvoid f(void){ puts(\"n = n\"); g('n'); }\n")
	g := b.Lookup("n")
	for _, r := range g.Refs {
		if r.Kind != RefDecl {
			t.Errorf("literal text counted as use: %+v", g.Refs)
		}
	}
}

func TestContinuationPreprocessorLine(t *testing.T) {
	toks, err := lex("t.c", "#define LONG \\\n more\nint after;\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "int" || toks[0].line != 3 {
		t.Errorf("tok0 = %+v", toks[0])
	}
}

func TestUsesNilSymbol(t *testing.T) {
	b := NewBrowser()
	if got := b.Uses(nil, nil); got != nil {
		t.Errorf("Uses(nil) = %v", got)
	}
}

func TestStaticLinkagePerFile(t *testing.T) {
	b := NewBrowser()
	b.ParseFile("a.c", "static int hidden;\nvoid fa(void){ hidden = 1; }\n")
	b.ParseFile("b.c", "static int hidden;\nvoid fb(void){ hidden = 2; }\n")
	// Neither static becomes a global of that name.
	if g := b.Lookup("hidden"); g != nil && g.Kind != KindExtern {
		t.Errorf("statics leaked to global linkage: %+v", g)
	}
	// Each file's uses bind to its own symbol.
	sa := b.SymbolAt("a.c", 2, "hidden")
	sb := b.SymbolAt("b.c", 2, "hidden")
	if sa == nil || sb == nil {
		t.Fatal("statics not resolvable at their use sites")
	}
	if sa == sb {
		t.Error("two files' statics merged into one symbol")
	}
	for _, r := range sa.Refs {
		if r.File == "b.c" {
			t.Errorf("a.c's static has refs in b.c: %+v", sa.Refs)
		}
	}
}

func TestStaticFunctionPerFile(t *testing.T) {
	b := NewBrowser()
	b.ParseFile("a.c", "static void helper(void) { }\nvoid fa(void){ helper(); }\n")
	b.ParseFile("b.c", "void fb(void){ helper(); }\n")
	// b.c's call binds to an implicit extern, not a.c's static.
	sb := b.SymbolAt("b.c", 1, "helper")
	if sb == nil {
		t.Fatal("helper unresolvable in b.c")
	}
	if !sb.Decl.IsZero() {
		t.Errorf("b.c's helper bound to a declaration: %+v", sb.Decl)
	}
}
