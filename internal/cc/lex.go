// Package cc is the stripped C compiler behind the paper's browser tools:
// "This compiler has no code generator: it parses the program and manages
// the symbol table, and when it sees the declaration for the indicated
// identifier on the appropriate line of the file, it prints the file
// coordinates of that declaration."
//
// The package lexes and parses a pragmatic subset of C sufficient for the
// help source tree the paper browses: file-scope variables and functions,
// typedefs, struct/union/enum declarations, parameters, block-scoped
// locals, and identifier references classified as reads or writes. A
// Browser aggregates translation units and answers the queries the
// /help/cbr tools need — decl (where is this symbol declared), uses
// (every reference resolving to the same symbol, the precise alternative
// to grep), and src (where is this function's definition).
package cc

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokChar
	tokPunct
)

// token is one C token with its source coordinate.
type token struct {
	kind tokKind
	text string
	file string
	line int
}

// keywords is the C keyword set; type keywords are additionally listed in
// typeKeywords.
var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true,
	"else": true, "enum": true, "extern": true, "float": true, "for": true,
	"goto": true, "if": true, "int": true, "long": true, "register": true,
	"return": true, "short": true, "signed": true, "sizeof": true,
	"static": true, "struct": true, "switch": true, "typedef": true,
	"union": true, "unsigned": true, "void": true, "volatile": true,
	"while": true,
	// Plan 9 C conveniences used throughout the help sources.
	"uchar": true, "ushort": true, "uint": true, "ulong": true,
	"vlong": true, "uvlong": true, "Rune": true,
}

// typeKeywords begin a declaration.
var typeKeywords = map[string]bool{
	"char": true, "double": true, "float": true, "int": true, "long": true,
	"short": true, "signed": true, "unsigned": true, "void": true,
	"struct": true, "union": true, "enum": true,
	"uchar": true, "ushort": true, "uint": true, "ulong": true,
	"vlong": true, "uvlong": true, "Rune": true,
}

// qualifiers may precede a declaration without changing its shape.
var qualifiers = map[string]bool{
	"auto": true, "const": true, "extern": true, "register": true,
	"static": true, "volatile": true,
}

// lexErr reports a lexical error with its coordinate.
type lexErr struct {
	file string
	line int
	msg  string
}

func (e lexErr) Error() string { return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.msg) }

// lex tokenizes one C source file. Preprocessor lines are skipped whole
// (the browser pipeline runs cpp first, and our cpp is an identity filter,
// so #include and #define lines simply don't produce symbols).
func lex(file, src string) ([]token, error) {
	var toks []token
	rs := []rune(src)
	line := 1
	i := 0
	atLineStart := true
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
			atLineStart = true
			continue
		case r == ' ' || r == '\t' || r == '\r':
			i++
			continue
		case r == '#' && atLineStart:
			// Preprocessor directive: skip to unescaped end of line.
			for i < len(rs) && rs[i] != '\n' {
				if rs[i] == '\\' && i+1 < len(rs) && rs[i+1] == '\n' {
					line++
					i += 2
					continue
				}
				i++
			}
			continue
		case r == '/' && i+1 < len(rs) && rs[i+1] == '*':
			i += 2
			for i+1 < len(rs) && !(rs[i] == '*' && rs[i+1] == '/') {
				if rs[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(rs) {
				return nil, lexErr{file, line, "unterminated comment"}
			}
			i += 2
			continue
		case r == '/' && i+1 < len(rs) && rs[i+1] == '/':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
			continue
		case r == '"':
			start := line
			i++
			var b strings.Builder
			for i < len(rs) && rs[i] != '"' {
				if rs[i] == '\\' && i+1 < len(rs) {
					b.WriteRune(rs[i])
					b.WriteRune(rs[i+1])
					if rs[i+1] == '\n' {
						line++
					}
					i += 2
					continue
				}
				if rs[i] == '\n' {
					return nil, lexErr{file, start, "newline in string"}
				}
				b.WriteRune(rs[i])
				i++
			}
			if i >= len(rs) {
				return nil, lexErr{file, start, "unterminated string"}
			}
			i++
			toks = append(toks, token{tokString, b.String(), file, start})
		case r == '\'':
			start := line
			i++
			var b strings.Builder
			for i < len(rs) && rs[i] != '\'' {
				if rs[i] == '\\' && i+1 < len(rs) {
					b.WriteRune(rs[i])
					b.WriteRune(rs[i+1])
					i += 2
					continue
				}
				b.WriteRune(rs[i])
				i++
			}
			if i >= len(rs) {
				return nil, lexErr{file, start, "unterminated character constant"}
			}
			i++
			toks = append(toks, token{tokChar, b.String(), file, start})
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '_') {
				i++
			}
			text := string(rs[start:i])
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, text, file, line})
		case unicode.IsDigit(r):
			start := i
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '.' ||
				((rs[i] == '+' || rs[i] == '-') && i > start && (rs[i-1] == 'e' || rs[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, string(rs[start:i]), file, line})
		default:
			// Multi-character operators that matter for read/write
			// classification and skipping.
			two := ""
			if i+1 < len(rs) {
				two = string(rs[i : i+2])
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||", "++", "--", "->",
				"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>":
				if two == "<<" || two == ">>" {
					if i+2 < len(rs) && rs[i+2] == '=' {
						toks = append(toks, token{tokPunct, two + "=", file, line})
						i += 3
						continue
					}
				}
				toks = append(toks, token{tokPunct, two, file, line})
				i += 2
				continue
			}
			toks = append(toks, token{tokPunct, string(r), file, line})
			i++
		}
		atLineStart = false
	}
	toks = append(toks, token{tokEOF, "", file, line})
	return toks, nil
}
