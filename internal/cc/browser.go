package cc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vfs"
)

// Coord is a source coordinate in the "file.c:27" currency help trades in.
type Coord struct {
	File string
	Line int
}

// IsZero reports whether the coordinate is unset (implicit externals).
func (c Coord) IsZero() bool { return c.File == "" && c.Line == 0 }

// String renders "file:line".
func (c Coord) String() string { return fmt.Sprintf("%s:%d", c.File, c.Line) }

// SymKind classifies a symbol.
type SymKind int

const (
	KindVar       SymKind = iota // file-scope variable
	KindFunc                     // function
	KindTypedef                  // typedef name
	KindParam                    // function parameter
	KindLocal                    // block-scoped variable
	KindTag                      // struct/union/enum tag
	KindEnumConst                // enumeration constant
	KindExtern                   // implicit: referenced but never declared in the tree
)

// String names the kind for tool output.
func (k SymKind) String() string {
	switch k {
	case KindVar:
		return "var"
	case KindFunc:
		return "func"
	case KindTypedef:
		return "typedef"
	case KindParam:
		return "param"
	case KindLocal:
		return "local"
	case KindTag:
		return "tag"
	case KindEnumConst:
		return "enum"
	case KindExtern:
		return "extern"
	}
	return "?"
}

// RefKind classifies one reference.
type RefKind int

const (
	RefDecl  RefKind = iota // the declaration itself
	RefRead                 // a read of the value
	RefWrite                // an assignment or increment/decrement
)

// String names the reference kind.
func (k RefKind) String() string {
	switch k {
	case RefDecl:
		return "decl"
	case RefRead:
		return "read"
	case RefWrite:
		return "write"
	}
	return "?"
}

// Ref is one occurrence of a symbol.
type Ref struct {
	Coord
	Kind RefKind
}

// Symbol is one named program object with its declaration and references.
type Symbol struct {
	Name   string
	Kind   SymKind
	Decl   Coord
	HasDef bool // functions: a definition (not just prototype) was seen
	Refs   []Ref
}

func (s *Symbol) addRef(r Ref) {
	// Declarations deduplicate (a header conceptually included twice
	// stays single); uses do not — two reads of the same variable on one
	// line are two references.
	if r.Kind == RefDecl {
		for _, e := range s.Refs {
			if e == r {
				return
			}
		}
	}
	s.Refs = append(s.Refs, r)
}

// Browser aggregates parsed translation units and answers decl/uses/src
// queries.
type Browser struct {
	typedefs map[string]bool
	globals  map[string]*Symbol
	tags     map[string]*Symbol
	all      []*Symbol
	files    []string
}

// NewBrowser returns an empty browser.
func NewBrowser() *Browser {
	return &Browser{
		typedefs: map[string]bool{},
		globals:  map[string]*Symbol{},
		tags:     map[string]*Symbol{},
	}
}

// newSymbol records a fresh (scoped) symbol.
func (b *Browser) newSymbol(name string, kind SymKind, at Coord) *Symbol {
	s := &Symbol{Name: name, Kind: kind, Decl: at}
	b.all = append(b.all, s)
	return s
}

// declareGlobal declares (or re-declares) a file-scope symbol with C
// linkage: the same name across translation units is one object.
func (b *Browser) declareGlobal(name string, kind SymKind, at Coord) *Symbol {
	if s, ok := b.globals[name]; ok {
		if s.Decl.IsZero() {
			s.Decl = at
			s.Kind = kind
		}
		return s
	}
	s := b.newSymbol(name, kind, at)
	b.globals[name] = s
	return s
}

// declareTag records a struct/union/enum tag.
func (b *Browser) declareTag(name string, at Coord) *Symbol {
	if s, ok := b.tags[name]; ok {
		s.addRef(Ref{Coord: at, Kind: RefRead})
		return s
	}
	s := b.newSymbol(name, KindTag, at)
	s.addRef(Ref{Coord: at, Kind: RefDecl})
	b.tags[name] = s
	return s
}

// globalOrImplicit resolves a file-scope name, creating an implicit
// external on first reference.
func (b *Browser) globalOrImplicit(name string) *Symbol {
	if s, ok := b.globals[name]; ok {
		return s
	}
	s := b.newSymbol(name, KindExtern, Coord{})
	b.globals[name] = s
	return s
}

// ParseFile parses one source file into the browser.
func (b *Browser) ParseFile(file, src string) error {
	toks, err := lex(file, src)
	if err != nil {
		return err
	}
	p := &parser{b: b, toks: toks}
	p.pushScope() // the file scope: static declarations land here
	p.parseUnit()
	b.files = append(b.files, file)
	return nil
}

// ParseFS parses the named vfs files, headers first so typedefs are known
// before the sources that use them.
func (b *Browser) ParseFS(fs *vfs.FS, paths []string) error {
	ordered := append([]string(nil), paths...)
	sort.SliceStable(ordered, func(i, j int) bool {
		hi := strings.HasSuffix(ordered[i], ".h")
		hj := strings.HasSuffix(ordered[j], ".h")
		if hi != hj {
			return hi
		}
		return ordered[i] < ordered[j]
	})
	for _, p := range ordered {
		data, err := fs.ReadFile(p)
		if err != nil {
			return err
		}
		if err := b.ParseFile(p, string(data)); err != nil {
			return err
		}
	}
	return nil
}

// Files returns the files parsed so far, in parse order.
func (b *Browser) Files() []string { return append([]string(nil), b.files...) }

// Lookup returns the file-scope symbol with the given name, or nil.
func (b *Browser) Lookup(name string) *Symbol { return b.globals[name] }

// LookupTag returns the struct/union/enum tag symbol, or nil.
func (b *Browser) LookupTag(name string) *Symbol { return b.tags[name] }

// SymbolAt finds the symbol that the identifier name at file:line binds
// to: the symbol owning a reference at exactly that coordinate, preferring
// scoped symbols over globals, else the global of that name. This is what
// help/parse feeds the tools — "the application can then examine the text
// in the window to see what the user is pointing at".
func (b *Browser) SymbolAt(file string, line int, name string) *Symbol {
	var global *Symbol
	for _, s := range b.all {
		if s.Name != name {
			continue
		}
		for _, r := range s.Refs {
			if r.File == file && r.Line == line {
				if s.Kind == KindParam || s.Kind == KindLocal {
					return s // scoped binding wins
				}
				global = s
			}
		}
	}
	if global != nil {
		return global
	}
	return b.globals[name]
}

// Uses returns every reference of sym restricted to files matching any of
// the given paths (exact match; empty list means all), sorted by file then
// line — the output of the uses tool, "all references to the variable n in
// the files /usr/rob/src/help/*.c indicated by file name and line number".
func (b *Browser) Uses(sym *Symbol, files []string) []Ref {
	if sym == nil {
		return nil
	}
	allowed := map[string]bool{}
	for _, f := range files {
		allowed[f] = true
	}
	var out []Ref
	for _, r := range sym.Refs {
		if len(allowed) > 0 && !allowed[r.File] {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Functions returns the file-scope functions with definitions, sorted by
// name — the src tool's index.
func (b *Browser) Functions() []*Symbol {
	var out []*Symbol
	for _, s := range b.globals {
		if s.Kind == KindFunc && s.HasDef {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Globals returns file-scope variables sorted by name.
func (b *Browser) Globals() []*Symbol {
	var out []*Symbol
	for _, s := range b.globals {
		if s.Kind == KindVar {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
