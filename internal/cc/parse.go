package cc

// The parser walks one translation unit's token stream, maintaining a
// scope stack and recording declarations and identifier references. It is
// a deliberately pragmatic C front end: it understands the declaration
// forms the help sources use (file-scope variables, functions with ANSI
// parameter lists, typedefs, struct/union/enum with bodies, block-scoped
// locals) and classifies every other identifier occurrence as a read or a
// write. It does not build expressions — the browser only needs names and
// coordinates.

type parser struct {
	b      *Browser
	toks   []token
	i      int
	scopes []*scope
}

type scope struct {
	syms map[string]*Symbol
}

func (p *parser) pushScope() { p.scopes = append(p.scopes, &scope{syms: map[string]*Symbol{}}) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

// declareScoped declares name in the innermost scope (params/locals).
func (p *parser) declareScoped(name string, kind SymKind, at Coord) *Symbol {
	sym := p.b.newSymbol(name, kind, at)
	p.scopes[len(p.scopes)-1].syms[name] = sym
	return sym
}

// resolve finds name through the scope stack, then file-scope linkage,
// creating an implicit external symbol on a miss (library functions like
// strlen have no declaration in the tree but their uses must still link).
func (p *parser) resolve(name string) *Symbol {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if s, ok := p.scopes[i].syms[name]; ok {
			return s
		}
	}
	return p.b.globalOrImplicit(name)
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) prev() token {
	if p.i == 0 {
		return token{}
	}
	return p.toks[p.i-1]
}
func (p *parser) advance() { p.i = min(p.i+1, len(p.toks)-1) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) coord() Coord { t := p.cur(); return Coord{File: t.file, Line: t.line} }

// atEOF reports end of tokens.
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

// skipBalanced consumes from an opening delimiter to its match, recording
// identifier uses along the way when record is true.
func (p *parser) skipBalanced(open, close string, record bool) {
	depth := 0
	for !p.atEOF() {
		t := p.cur()
		if t.kind == tokPunct && t.text == open {
			depth++
		} else if t.kind == tokPunct && t.text == close {
			depth--
			if depth == 0 {
				p.advance()
				return
			}
		} else if record && t.kind == tokIdent {
			p.recordUseHere()
			continue
		}
		p.advance()
	}
}

// parseUnit parses a whole file at file scope.
func (p *parser) parseUnit() {
	for !p.atEOF() {
		t := p.cur()
		switch {
		case t.kind == tokKeyword && t.text == "typedef":
			p.parseTypedef()
		case p.startsDeclaration():
			p.parseDeclaration(true)
		case t.kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "(":
			// Old-style definition with implicit int return, or a macro-ish
			// construct; treat as a function definition attempt.
			p.parseDeclarators(true, p.coord())
		default:
			p.advance()
		}
	}
}

// startsDeclaration reports whether the current token begins a declaration:
// a qualifier, a type keyword, or a known typedef name followed by a
// declarator shape.
func (p *parser) startsDeclaration() bool {
	t := p.cur()
	if t.kind == tokKeyword && (typeKeywords[t.text] || qualifiers[t.text]) {
		return true
	}
	if t.kind == tokIdent && p.b.typedefs[t.text] {
		n := p.peek()
		if n.kind == tokIdent {
			return true
		}
		if n.kind == tokPunct && n.text == "*" {
			return true
		}
	}
	return false
}

// parseTypedef handles "typedef <type-spec> name[, name...];", declaring
// each name as a typedef. Function-pointer typedefs like
// "typedef int (*Cmp)(int, int);" declare the wrapped name: parens before
// the declarator's identifier are entered, parens after it (the parameter
// list) are skipped.
func (p *parser) parseTypedef() {
	p.advance()           // typedef
	_ = p.parseTypeSpec() // typedefs don't carry linkage
	sawIdent := false
	for !p.atEOF() {
		t := p.cur()
		if t.kind == tokIdent && !sawIdent {
			at := p.coord()
			sym := p.b.declareGlobal(t.text, KindTypedef, at)
			sym.addRef(Ref{Coord: at, Kind: RefDecl})
			p.b.typedefs[t.text] = true
			sawIdent = true
			p.advance()
			continue
		}
		if t.kind == tokPunct {
			switch t.text {
			case "*":
				p.advance()
				continue
			case ",":
				sawIdent = false
				p.advance()
				continue
			case "[":
				p.skipBalanced("[", "]", false)
				continue
			case "(":
				if sawIdent {
					// Parameter list: skip whole.
					p.skipBalanced("(", ")", false)
					continue
				}
				// Function-pointer wrapper: look inside for the name.
				p.advance()
				continue
			case ")":
				p.advance()
				continue
			case ";":
				p.advance()
				return
			}
		}
		p.advance()
	}
}

// parseTypeSpec consumes the type part of a declaration: qualifiers, base
// type keywords or a typedef name, and struct/union/enum heads with
// optional tags and bodies. Enum bodies declare their constants. It
// reports whether the static qualifier appeared, which switches a
// file-scope declaration to internal linkage.
func (p *parser) parseTypeSpec() (isStatic bool) {
	for !p.atEOF() {
		t := p.cur()
		switch {
		case t.kind == tokKeyword && qualifiers[t.text]:
			if t.text == "static" {
				isStatic = true
			}
			p.advance()
		case t.kind == tokKeyword && (t.text == "struct" || t.text == "union" || t.text == "enum"):
			isEnum := t.text == "enum"
			p.advance()
			if p.cur().kind == tokIdent {
				tag := p.cur().text
				at := p.coord()
				p.b.declareTag(tag, at)
				p.advance()
			}
			if p.cur().kind == tokPunct && p.cur().text == "{" {
				if isEnum {
					p.parseEnumBody()
				} else {
					p.parseAggregateBody()
				}
			}
			return
		case t.kind == tokKeyword && typeKeywords[t.text]:
			p.advance()
			// Multi-word types: unsigned long, long long, ...
			for p.cur().kind == tokKeyword && typeKeywords[p.cur().text] {
				p.advance()
			}
			return
		case t.kind == tokIdent && p.b.typedefs[t.text]:
			// A typedef name used as a type is still a reference to it.
			p.resolve(t.text).addRef(Ref{Coord: p.coord(), Kind: RefRead})
			p.advance()
			return
		default:
			return
		}
	}
	return
}

// parseEnumBody declares the constants of "enum { A, B = expr, ... }".
func (p *parser) parseEnumBody() {
	p.advance() // {
	for !p.atEOF() {
		t := p.cur()
		if t.kind == tokPunct && t.text == "}" {
			p.advance()
			return
		}
		if t.kind == tokIdent {
			at := p.coord()
			sym := p.b.declareGlobal(t.text, KindEnumConst, at)
			sym.addRef(Ref{Coord: at, Kind: RefDecl})
			p.advance()
			// Skip an optional = expr up to , or }.
			if p.cur().kind == tokPunct && p.cur().text == "=" {
				for !p.atEOF() {
					c := p.cur()
					if c.kind == tokPunct && (c.text == "," || c.text == "}") {
						break
					}
					if c.kind == tokIdent {
						p.recordUseHere()
						continue
					}
					p.advance()
				}
			}
			continue
		}
		p.advance()
	}
}

// parseAggregateBody skips a struct/union body. Field names live in a
// member namespace the browser does not model, so nothing inside is
// declared or counted as a use — exactly why "p->n" later must not count
// against the global n.
func (p *parser) parseAggregateBody() {
	p.skipBalanced("{", "}", false)
}

// parseDeclaration parses "<type-spec> declarator[, declarator...];" or a
// function definition. fileScope selects linkage for the declared names;
// the static qualifier demotes file-scope names to internal (per-file)
// linkage, so two files' statics of the same name stay distinct.
func (p *parser) parseDeclaration(fileScope bool) {
	at := p.coord()
	isStatic := p.parseTypeSpec()
	// A bare "struct X { ... };" has no declarators.
	if p.cur().kind == tokPunct && p.cur().text == ";" {
		p.advance()
		return
	}
	p.parseDeclarators(fileScope && !isStatic, at)
}

// parseDeclarators handles the declarator list after a type specifier.
func (p *parser) parseDeclarators(fileScope bool, declStart Coord) {
	for !p.atEOF() {
		// Pointer stars and function-pointer parens.
		for p.cur().kind == tokPunct && (p.cur().text == "*" || p.cur().text == "(") {
			if p.cur().text == "(" {
				p.advance() // tolerate (*name) declarators
				continue
			}
			p.advance()
		}
		if p.cur().kind != tokIdent {
			// Malformed or unsupported declarator: bail to ';'.
			p.skipToSemi()
			return
		}
		name := p.cur().text
		at := p.coord()
		p.advance()
		// Close a function-pointer declarator "(*name)".
		if p.cur().kind == tokPunct && p.cur().text == ")" {
			p.advance()
		}
		// Arrays.
		for p.cur().kind == tokPunct && p.cur().text == "[" {
			p.skipBalanced("[", "]", true)
		}
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			// Function declarator.
			if p.parseFunction(name, at, fileScope) {
				return // definition consumed the body
			}
			// Prototype: continue with , or ;.
		} else {
			kind := KindLocal
			if fileScope {
				kind = KindVar
			}
			var sym *Symbol
			if fileScope {
				sym = p.b.declareGlobal(name, kind, at)
			} else {
				sym = p.declareScoped(name, kind, at)
			}
			sym.addRef(Ref{Coord: at, Kind: RefDecl})
			if p.cur().kind == tokPunct && p.cur().text == "=" {
				p.advance()
				p.scanInitializer()
			}
		}
		switch {
		case p.cur().kind == tokPunct && p.cur().text == ",":
			p.advance()
		case p.cur().kind == tokPunct && p.cur().text == ";":
			p.advance()
			return
		default:
			p.skipToSemi()
			return
		}
	}
	_ = declStart
}

// parseFunction parses "name( params )" and, if a body follows, the whole
// definition. It reports whether a body was consumed.
func (p *parser) parseFunction(name string, at Coord, fileScope bool) bool {
	params := p.parseParams()
	isDef := p.cur().kind == tokPunct && p.cur().text == "{"
	if fileScope {
		sym := p.b.declareGlobal(name, KindFunc, at)
		if isDef {
			// The definition coordinate wins over an earlier prototype.
			sym.Decl = at
			sym.HasDef = true
		}
		sym.addRef(Ref{Coord: at, Kind: RefDecl})
	} else {
		p.declareScoped(name, KindFunc, at).addRef(Ref{Coord: at, Kind: RefDecl})
	}
	if !isDef {
		return false
	}
	p.pushScope()
	for _, prm := range params {
		p.declareScoped(prm.name, KindParam, prm.at).addRef(Ref{Coord: prm.at, Kind: RefDecl})
	}
	p.parseBlock()
	p.popScope()
	return true
}

type param struct {
	name string
	at   Coord
}

// parseParams consumes "( ... )" returning the parameter names: for each
// comma-separated chunk, the last plain identifier that is not a type name.
func (p *parser) parseParams() []param {
	var out []param
	if !(p.cur().kind == tokPunct && p.cur().text == "(") {
		return nil
	}
	p.advance()
	depth := 1
	var last *param
	flush := func() {
		if last != nil {
			out = append(out, *last)
			last = nil
		}
	}
	for !p.atEOF() {
		t := p.cur()
		if t.kind == tokPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
				if depth == 0 {
					flush()
					p.advance()
					return out
				}
			case ",":
				if depth == 1 {
					flush()
				}
			case "[":
				p.skipBalanced("[", "]", false)
				continue
			}
		}
		if t.kind == tokIdent && depth == 1 && !p.b.typedefs[t.text] {
			last = &param{name: t.text, at: Coord{File: t.file, Line: t.line}}
		}
		p.advance()
	}
	return out
}

// scanInitializer records uses inside "= expr" up to an unnested , or ;.
func (p *parser) scanInitializer() {
	depth := 0
	for !p.atEOF() {
		t := p.cur()
		if t.kind == tokPunct {
			switch t.text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				depth--
			case ",", ";":
				if depth <= 0 {
					return
				}
			}
		}
		if t.kind == tokIdent {
			p.recordUseHere()
			continue
		}
		p.advance()
	}
}

// parseBlock walks a { } function or compound body: nested scopes, local
// declarations at statement starts, labels, and identifier references.
func (p *parser) parseBlock() {
	if !(p.cur().kind == tokPunct && p.cur().text == "{") {
		return
	}
	p.advance()
	p.pushScope()
	atStmtStart := true
	for !p.atEOF() {
		t := p.cur()
		if t.kind == tokPunct {
			switch t.text {
			case "{":
				p.parseBlock()
				atStmtStart = true
				continue
			case "}":
				p.advance()
				p.popScope()
				return
			case ";":
				p.advance()
				atStmtStart = true
				continue
			}
		}
		if t.kind == tokKeyword && t.text == "goto" {
			p.advance()
			if p.cur().kind == tokIdent {
				p.advance() // label, not a variable use
			}
			continue
		}
		// Labels: "Again:" at statement start.
		if atStmtStart && t.kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == ":" &&
			!p.b.typedefs[t.text] {
			p.advance()
			p.advance()
			atStmtStart = true
			continue
		}
		// Local declarations (static locals stay scoped too).
		if atStmtStart && p.startsDeclaration() {
			p.parseDeclaration(false)
			atStmtStart = true
			continue
		}
		if t.kind == tokIdent {
			p.recordUseHere()
			atStmtStart = false
			continue
		}
		// case/default labels re-open statement position after ':'.
		if t.kind == tokPunct && t.text == ":" {
			atStmtStart = true
			p.advance()
			continue
		}
		atStmtStart = false
		p.advance()
	}
	p.popScope()
}

// assignOps classify a following operator as a write to the identifier.
var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
	"++": true, "--": true,
}

// recordUseHere records the current identifier token as a read or write
// reference and advances past it. Member accesses (after '.' or '->') are
// in the member namespace and are skipped.
func (p *parser) recordUseHere() {
	t := p.cur()
	if prev := p.prev(); prev.kind == tokPunct && (prev.text == "." || prev.text == "->") {
		p.advance()
		return
	}
	kind := RefRead
	n := p.peek()
	if n.kind == tokPunct && assignOps[n.text] && n.text != "==" {
		kind = RefWrite
	}
	if prev := p.prev(); prev.kind == tokPunct && (prev.text == "++" || prev.text == "--") {
		kind = RefWrite
	}
	p.resolve(t.text).addRef(Ref{Coord: Coord{File: t.file, Line: t.line}, Kind: kind})
	p.advance()
}

// skipToSemi recovers from an unparseable declarator.
func (p *parser) skipToSemi() {
	for !p.atEOF() {
		t := p.cur()
		if t.kind == tokPunct && t.text == ";" {
			p.advance()
			return
		}
		if t.kind == tokPunct && t.text == "{" {
			p.skipBalanced("{", "}", false)
			return
		}
		p.advance()
	}
}
