package cc

import "testing"

// FuzzParseFile throws arbitrary text at the C front end; lexing may
// reject it, but nothing may panic and accepted inputs must produce a
// queryable browser.
func FuzzParseFile(f *testing.F) {
	for _, seed := range []string{
		"int n;\nvoid f(void){ n = 1; }\n",
		"typedef struct T T;\nstruct T { int x; };\nT *p;\n",
		"enum { A, B = 2 };\n",
		"typedef int (*Fn)(int);\n",
		"int a[10], *b, c;\n",
		"/* comment */ #define X 1\nchar *s = \"str\";\n",
		"void g(int, char**);\nint g2(int argc, char *argv[]) { goto L; L: return argc; }\n",
		"struct { int anon; } v;\n",
		"x y z ( ) { } ; ; ;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			return
		}
		b := NewBrowser()
		if err := b.ParseFile("fuzz.c", src); err != nil {
			return
		}
		// Queries on whatever was parsed must be safe.
		for _, s := range b.Globals() {
			b.Uses(s, nil)
		}
		b.Functions()
		b.SymbolAt("fuzz.c", 1, "n")
	})
}
