package cc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/shell"
	"repro/internal/vfs"
)

// Install registers the rcc builtin: the stripped compiler the /help/cbr
// scripts pipe into. Usage:
//
//	rcc [-w] [-g] -d -i<id> [-n<line>] [-f<file>] [-D<dir>] files...  declaration
//	rcc [-w] [-g] -u -i<id> [-n<line>] [-f<file>] [-D<dir>] files...  uses
//	rcc [-w] [-g] -s -i<id> [-D<dir>] files...                        function source
//
// -D names the directory relative file arguments resolve against (the
// source directory from help/parse), so query output keeps the relative
// spelling the figures show.
//
// The -w and -g flags are accepted for fidelity with the paper's pipeline
// ("help/rcc -w -g -i$id -n$line") and ignored. File arguments are parsed
// as one program; -f/-n give the coordinate of the identifier the user
// pointed at so scoped symbols resolve correctly. Query results print as
// "file:line" coordinates, one per line, ready for Open to consume.
func Install(sh *shell.Shell) {
	sh.Register("rcc", func(ctx *shell.Context, args []string) int {
		var (
			id, file string
			baseDir  string
			line     int
			mode     byte
			files    []string
		)
		for _, a := range args[1:] {
			switch {
			case a == "-w" || a == "-g":
				// no code generator; nothing to warn about
			case a == "-d" || a == "-u" || a == "-s":
				mode = a[1]
			case strings.HasPrefix(a, "-i"):
				id = a[2:]
			case strings.HasPrefix(a, "-n"):
				n, err := strconv.Atoi(a[2:])
				if err != nil {
					ctx.Errorf("rcc: bad line %q", a)
					return 1
				}
				line = n
			case strings.HasPrefix(a, "-f"):
				file = a[2:]
			case strings.HasPrefix(a, "-D"):
				baseDir = a[2:]
			case strings.HasPrefix(a, "-"):
				ctx.Errorf("rcc: unknown flag %q", a)
				return 1
			default:
				files = append(files, a)
			}
		}
		if id == "" || mode == 0 {
			ctx.Errorf("usage: rcc -d|-u|-s -i<id> [-n<line>] [-f<file>] files...")
			return 1
		}
		if len(files) == 0 {
			ctx.Errorf("rcc: no source files")
			return 1
		}
		b := NewBrowser()
		// Parse with the names as given, so query output keeps the
		// caller's (usually directory-relative) spelling.
		ordered := orderHeadersFirst(files)
		dir := ctx.Dir
		if baseDir != "" {
			dir = baseDir
		}
		for _, f := range ordered {
			full := f
			if !strings.HasPrefix(full, "/") {
				full = vfs.Clean(dir + "/" + full)
			}
			data, err := ctx.FS.ReadFile(full)
			if err != nil {
				ctx.Errorf("rcc: %v", err)
				return 1
			}
			if err := b.ParseFile(f, string(data)); err != nil {
				ctx.Errorf("rcc: %v", err)
				return 1
			}
		}
		var sym *Symbol
		if file != "" && line > 0 {
			sym = b.SymbolAt(file, line, id)
		} else {
			sym = b.Lookup(id)
		}
		if sym == nil {
			ctx.Errorf("rcc: %s: no such symbol", id)
			return 1
		}
		switch mode {
		case 'd':
			if sym.Decl.IsZero() {
				ctx.Errorf("rcc: %s: declared outside these files", id)
				return 1
			}
			fmt.Fprintln(ctx.Stdout, sym.Decl.String())
		case 'u':
			refs := b.Uses(sym, nil)
			if len(refs) == 0 {
				ctx.Errorf("rcc: %s: no references", id)
				return 1
			}
			// Several references on one line print as one coordinate.
			seen := map[string]bool{}
			for _, r := range refs {
				c := r.Coord.String()
				if seen[c] {
					continue
				}
				seen[c] = true
				fmt.Fprintln(ctx.Stdout, c)
			}
		case 's':
			if sym.Kind != KindFunc || !sym.HasDef {
				ctx.Errorf("rcc: %s: not a defined function", id)
				return 1
			}
			fmt.Fprintln(ctx.Stdout, sym.Decl.String())
		}
		return 0
	})
}

// orderHeadersFirst sorts .h files before .c files, preserving relative
// order otherwise, so typedefs are known before use.
func orderHeadersFirst(files []string) []string {
	var hs, cs []string
	for _, f := range files {
		if strings.HasSuffix(f, ".h") {
			hs = append(hs, f)
		} else {
			cs = append(cs, f)
		}
	}
	return append(hs, cs...)
}
