package cc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/shell"
	"repro/internal/vfs"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("t.c", "int x = 42; /* c */ // line\nchar *s = \"hi\\n\";\n")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"int", "x", "=", "42", ";", "char", "*", "s", "=", "hi\\n", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v", texts)
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, _ := lex("t.c", "a\nb\n\nc\n")
	if toks[0].line != 1 || toks[1].line != 2 || toks[2].line != 4 {
		t.Errorf("lines = %d %d %d", toks[0].line, toks[1].line, toks[2].line)
	}
}

func TestLexSkipsPreprocessor(t *testing.T) {
	toks, _ := lex("t.c", "#include <u.h>\n#define X 1\nint y;\n")
	if toks[0].text != "int" || toks[0].line != 3 {
		t.Errorf("first token = %+v", toks[0])
	}
}

func TestLexComments(t *testing.T) {
	toks, _ := lex("t.c", "/* multi\nline */ x // tail\ny\n")
	if toks[0].text != "x" || toks[0].line != 2 {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].text != "y" || toks[1].line != 3 {
		t.Errorf("tok1 = %+v", toks[1])
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("t.c", "/* unterminated"); err == nil {
		t.Error("unterminated comment should fail")
	}
	if _, err := lex("t.c", `"unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lex("t.c", "'x"); err == nil {
		t.Error("unterminated char should fail")
	}
}

func TestLexOperators(t *testing.T) {
	toks, _ := lex("t.c", "a==b; c+=d; e++; f->g; h<<=2;")
	var ops []string
	for _, tk := range toks {
		if tk.kind == tokPunct {
			ops = append(ops, tk.text)
		}
	}
	joined := strings.Join(ops, " ")
	for _, want := range []string{"==", "+=", "++", "->", "<<="} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing op %q in %v", want, ops)
		}
	}
}

func parseOne(t *testing.T, src string) *Browser {
	t.Helper()
	b := NewBrowser()
	if err := b.ParseFile("t.c", src); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGlobalVarDecl(t *testing.T) {
	b := parseOne(t, "int counter;\n")
	s := b.Lookup("counter")
	if s == nil || s.Kind != KindVar {
		t.Fatalf("sym = %+v", s)
	}
	if s.Decl.File != "t.c" || s.Decl.Line != 1 {
		t.Errorf("decl = %v", s.Decl)
	}
}

func TestMultipleDeclarators(t *testing.T) {
	b := parseOne(t, "int a, *b, c[10];\n")
	for _, name := range []string{"a", "b", "c"} {
		if s := b.Lookup(name); s == nil || s.Kind != KindVar {
			t.Errorf("%s = %+v", name, s)
		}
	}
}

func TestFunctionDefinition(t *testing.T) {
	b := parseOne(t, `
int
add(int x, int y)
{
	return x + y;
}
`)
	f := b.Lookup("add")
	if f == nil || f.Kind != KindFunc || !f.HasDef {
		t.Fatalf("add = %+v", f)
	}
	if f.Decl.Line != 3 {
		t.Errorf("decl line = %d", f.Decl.Line)
	}
	// Params are scoped symbols, not globals.
	if b.Lookup("x") != nil && b.Lookup("x").Kind == KindParam {
		t.Error("param leaked to globals")
	}
}

func TestPrototypeThenDefinition(t *testing.T) {
	b := parseOne(t, "int f(int);\nint f(int v) { return v; }\n")
	f := b.Lookup("f")
	if f == nil || !f.HasDef {
		t.Fatalf("f = %+v", f)
	}
	if f.Decl.Line != 2 {
		t.Errorf("definition coordinate should win: %v", f.Decl)
	}
}

func TestTypedef(t *testing.T) {
	b := parseOne(t, "typedef struct Text Text;\nText *t;\n")
	td := b.Lookup("Text")
	if td == nil || td.Kind != KindTypedef {
		t.Fatalf("Text = %+v", td)
	}
	if v := b.Lookup("t"); v == nil || v.Kind != KindVar {
		t.Errorf("t = %+v", v)
	}
	// The use of Text as a type on line 2 is recorded.
	found := false
	for _, r := range td.Refs {
		if r.Line == 2 && r.Kind == RefRead {
			found = true
		}
	}
	if !found {
		t.Errorf("typedef use not recorded: %+v", td.Refs)
	}
}

func TestEnumConstants(t *testing.T) {
	b := parseOne(t, "enum { Alpha, Beta = 2, Gamma };\nint x = Beta;\n")
	be := b.Lookup("Beta")
	if be == nil || be.Kind != KindEnumConst {
		t.Fatalf("Beta = %+v", be)
	}
	uses := b.Uses(be, nil)
	if len(uses) != 2 {
		t.Errorf("Beta refs = %+v", uses)
	}
}

func TestLocalShadowsGlobal(t *testing.T) {
	b := parseOne(t, `
int n;
void f(void)
{
	int n;
	n = 1;
}
void g(void)
{
	n = 2;
}
`)
	g := b.Lookup("n")
	if g == nil {
		t.Fatal("global n missing")
	}
	// The write on line 6 belongs to the local, the one on line 10 to the
	// global.
	for _, r := range g.Refs {
		if r.Line == 6 {
			t.Errorf("local write attributed to global: %+v", g.Refs)
		}
	}
	hit := false
	for _, r := range g.Refs {
		if r.Line == 10 && r.Kind == RefWrite {
			hit = true
		}
	}
	if !hit {
		t.Errorf("global write missing: %+v", g.Refs)
	}
}

func TestParamShadows(t *testing.T) {
	b := parseOne(t, `
int s;
int len(char *s)
{
	return use(s);
}
`)
	g := b.Lookup("s")
	for _, r := range g.Refs {
		if r.Line == 5 {
			t.Errorf("param use attributed to global: %+v", g.Refs)
		}
	}
}

func TestMemberAccessNotAUse(t *testing.T) {
	b := parseOne(t, `
typedef struct P P;
struct P { int n; };
int n;
void f(P *p)
{
	p->n = 1;
	n = 2;
}
`)
	g := b.Lookup("n")
	writes := 0
	for _, r := range g.Refs {
		if r.Kind == RefWrite {
			writes++
		}
	}
	if writes != 1 {
		t.Errorf("global n writes = %d, want 1 (p->n must not count): %+v", writes, g.Refs)
	}
}

func TestReadWriteClassification(t *testing.T) {
	b := parseOne(t, `
int v;
void f(void)
{
	v = 1;
	g(v);
	v += 2;
	v++;
	if(v == 3)
		h();
}
`)
	s := b.Lookup("v")
	var reads, writes int
	for _, r := range s.Refs {
		switch r.Kind {
		case RefRead:
			reads++
		case RefWrite:
			writes++
		}
	}
	if writes != 3 {
		t.Errorf("writes = %d, want 3 (=, +=, ++): %+v", writes, s.Refs)
	}
	if reads != 2 {
		t.Errorf("reads = %d, want 2 (g(v), v==3): %+v", reads, s.Refs)
	}
}

func TestImplicitExtern(t *testing.T) {
	b := parseOne(t, "void f(void) { strlen(\"x\"); }\n")
	s := b.Lookup("strlen")
	if s == nil || s.Kind != KindExtern || !s.Decl.IsZero() {
		t.Fatalf("strlen = %+v", s)
	}
	if len(s.Refs) != 1 {
		t.Errorf("refs = %+v", s.Refs)
	}
}

func TestCrossFileLinkage(t *testing.T) {
	b := NewBrowser()
	if err := b.ParseFile("dat.h", "int shared;\n"); err != nil {
		t.Fatal(err)
	}
	if err := b.ParseFile("a.c", "void f(void) { shared = 1; }\n"); err != nil {
		t.Fatal(err)
	}
	if err := b.ParseFile("b.c", "int g(void) { return shared; }\n"); err != nil {
		t.Fatal(err)
	}
	s := b.Lookup("shared")
	if s == nil {
		t.Fatal("shared missing")
	}
	files := map[string]bool{}
	for _, r := range s.Refs {
		files[r.File] = true
	}
	if !files["dat.h"] || !files["a.c"] || !files["b.c"] {
		t.Errorf("refs span %v", files)
	}
}

func TestSymbolAt(t *testing.T) {
	b := parseOne(t, `
int n;
void f(void)
{
	int n;
	n = 1;
}
`)
	local := b.SymbolAt("t.c", 6, "n")
	if local == nil || local.Kind != KindLocal {
		t.Errorf("SymbolAt line 6 = %+v, want local", local)
	}
	global := b.SymbolAt("t.c", 2, "n")
	if global == nil || global.Kind != KindVar {
		t.Errorf("SymbolAt line 2 = %+v, want global", global)
	}
	// Unknown coordinates fall back to the global.
	fallback := b.SymbolAt("other.c", 99, "n")
	if fallback == nil || fallback.Kind != KindVar {
		t.Errorf("fallback = %+v", fallback)
	}
}

func TestUsesSortedAndFiltered(t *testing.T) {
	b := NewBrowser()
	b.ParseFile("b.c", "int q;\nvoid f(void){ q=1; }\n")
	b.ParseFile("a.c", "extern int q;\nvoid g(void){ use(q); }\n")
	s := b.Lookup("q")
	all := b.Uses(s, nil)
	if len(all) < 3 {
		t.Fatalf("refs = %+v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].File > all[i].File {
			t.Errorf("not sorted: %+v", all)
		}
	}
	only := b.Uses(s, []string{"a.c"})
	for _, r := range only {
		if r.File != "a.c" {
			t.Errorf("filter leaked %v", r)
		}
	}
}

func TestFunctionsAndGlobals(t *testing.T) {
	b := parseOne(t, `
int gv;
int decl_only(void);
int defined(void) { return 0; }
`)
	fns := b.Functions()
	if len(fns) != 1 || fns[0].Name != "defined" {
		t.Errorf("Functions = %+v", fns)
	}
	gs := b.Globals()
	if len(gs) != 1 || gs[0].Name != "gv" {
		t.Errorf("Globals = %+v", gs)
	}
}

func TestLabelsNotUses(t *testing.T) {
	b := parseOne(t, `
int Again;
void f(void)
{
Again:
	goto Again;
}
`)
	s := b.Lookup("Again")
	for _, r := range s.Refs {
		if r.Kind != RefDecl {
			t.Errorf("label counted as use: %+v", s.Refs)
		}
	}
}

func TestStructBodySkipped(t *testing.T) {
	b := parseOne(t, `
struct Addr {
	int type;
	int pos;
};
int type;
`)
	s := b.Lookup("type")
	if s == nil {
		t.Fatal("global type missing")
	}
	if s.Decl.Line != 6 {
		t.Errorf("decl = %v (field must not be the declaration)", s.Decl)
	}
	if tag := b.LookupTag("Addr"); tag == nil {
		t.Error("tag Addr missing")
	}
}

func TestSwitchCaseStatementPositions(t *testing.T) {
	b := parseOne(t, `
int mode;
void f(int x)
{
	switch(x){
	case 1:
		mode = 1;
		break;
	default:
		mode = 2;
	}
}
`)
	s := b.Lookup("mode")
	writes := 0
	for _, r := range s.Refs {
		if r.Kind == RefWrite {
			writes++
		}
	}
	if writes != 2 {
		t.Errorf("writes = %d: %+v", writes, s.Refs)
	}
}

// TestPaperUsesScenario reproduces the structure of Figure 10: the global
// n declared in dat.h, initialized in help.c, written in exec.c (Xdie1),
// read in exec.c (Xdie2's errs call) — exactly four coordinates, while
// grep would match every occurrence of the letter n.
func TestPaperUsesScenario(t *testing.T) {
	b := NewBrowser()
	datH := strings.Repeat("/* padding */\n", 135) + "uchar *n;\n"
	b.ParseFile("./dat.h", datH)
	helpC := strings.Repeat("\n", 33) + "void main(void)\n{\n\tn = \"a test string\";\n}\n"
	b.ParseFile("help.c", helpC)
	execC := strings.Repeat("\n", 210) + `void
Xdie1(int argc)
{
	n = 0;
}
` + strings.Repeat("\n", 35) + `void
Xdie2(int argc)
{
	errs(n);
}
`
	b.ParseFile("exec.c", execC)

	s := b.Lookup("n")
	if s == nil {
		t.Fatal("n missing")
	}
	refs := b.Uses(s, nil)
	if len(refs) != 4 {
		t.Fatalf("uses = %d, want 4: %+v", len(refs), refs)
	}
	wantFiles := []string{"./dat.h", "exec.c", "exec.c", "help.c"}
	for i, r := range refs {
		if r.File != wantFiles[i] {
			t.Errorf("ref %d file = %s, want %s", i, r.File, wantFiles[i])
		}
	}
	if refs[0].Line != 136 || refs[0].Kind != RefDecl {
		t.Errorf("decl ref = %+v", refs[0])
	}
	// exec.c:214 is the write (inside Xdie1), the other exec.c ref a read.
	if refs[1].Kind != RefWrite {
		t.Errorf("Xdie1 ref = %+v, want write", refs[1])
	}
	if refs[2].Kind != RefRead {
		t.Errorf("Xdie2 ref = %+v, want read", refs[2])
	}
	if refs[3].Kind != RefWrite {
		t.Errorf("help.c init = %+v, want write", refs[3])
	}
}

func TestRccBuiltin(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/src")
	fs.WriteFile("/src/dat.h", []byte("int n;\n"))
	fs.WriteFile("/src/main.c", []byte("void f(void){ n = 1; }\n"))
	sh := shell.New(fs)
	Install(sh)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = "/src"

	if status := sh.Run(ctx, "rcc -w -g -d -in dat.h main.c"); status != 0 {
		t.Fatalf("rcc -d: %s", out.String())
	}
	if out.String() != "dat.h:1\n" {
		t.Errorf("decl out = %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "rcc -u -in dat.h main.c"); status != 0 {
		t.Fatalf("rcc -u: %s", out.String())
	}
	if out.String() != "dat.h:1\nmain.c:1\n" {
		t.Errorf("uses out = %q", out.String())
	}
	out.Reset()
	if status := sh.Run(ctx, "rcc -s -if dat.h main.c"); status != 0 {
		t.Fatalf("rcc -s: %s", out.String())
	}
	if out.String() != "main.c:1\n" {
		t.Errorf("src out = %q", out.String())
	}
}

func TestRccErrors(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/src")
	fs.WriteFile("/src/a.c", []byte("int x;\n"))
	sh := shell.New(fs)
	Install(sh)
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = "/src"
	for _, bad := range []string{
		"rcc",                     // no mode/id
		"rcc -d -ix",              // no files
		"rcc -d -ighost a.c",      // unknown symbol (implicit extern, no decl)
		"rcc -u -ighost2 a.c",     // no references at all? creates none
		"rcc -s -ix a.c",          // x is not a function
		"rcc -d -ix -nNaN a.c",    // bad line
		"rcc -q -ix a.c",          // unknown flag
		"rcc -d -ix /src/ghost.c", // missing file
	} {
		out.Reset()
		if status := sh.Run(ctx, bad); status == 0 {
			t.Errorf("%q should fail (out=%q)", bad, out.String())
		}
	}
}

func BenchmarkParseHelpSource(b *testing.B) {
	src := `
#include <u.h>
typedef struct Text Text;
struct Text { int n; };
int nwindows;
Text *current;
static int
layout(Text *t, int q0, int q1)
{
	int i, sum;
	sum = 0;
	for(i = q0; i < q1; i++)
		sum += width(t, i);
	return sum;
}
void
render(Text *t)
{
	nwindows++;
	if(layout(t, 0, t->n) > 80)
		wrap(t);
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br := NewBrowser()
		if err := br.ParseFile("t.c", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUsesQuery(b *testing.B) {
	br := NewBrowser()
	var sb strings.Builder
	sb.WriteString("int target;\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("void f")
		sb.WriteString(strings.Repeat("x", i%5+1))
		sb.WriteString("(void){ target = 1; use(target); }\n")
	}
	br.ParseFile("big.c", sb.String())
	sym := br.Lookup("target")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Uses(sym, nil)
	}
}
