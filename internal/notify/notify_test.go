package notify

import (
	"strings"
	"testing"
	"time"
)

func TestPublishSubscribeOrder(t *testing.T) {
	b := New()
	s := b.Subscribe(0, 0, 0)
	defer s.Close()
	b.Publish(1, "new", "")
	b.Publish(1, "body", "gen 2")
	b.Publish(2, "new", "")

	want := []Event{
		{Seq: 1, Window: 1, Kind: "new"},
		{Seq: 2, Window: 1, Kind: "body", Detail: "gen 2"},
		{Seq: 3, Window: 2, Kind: "new"},
	}
	for i, w := range want {
		ev, ok := s.TryNext()
		if !ok || ev != w {
			t.Fatalf("event %d = %+v ok=%v, want %+v", i, ev, ok, w)
		}
	}
	if _, ok := s.TryNext(); ok {
		t.Error("extra event after the published three")
	}
}

func TestWindowFilter(t *testing.T) {
	b := New()
	s := b.Subscribe(2, 0, 0)
	defer s.Close()
	b.Publish(1, "new", "")
	b.Publish(2, "new", "")
	b.Publish(0, "exec", "date") // session-wide events are filtered too
	ev, ok := s.TryNext()
	if !ok || ev.Window != 2 {
		t.Fatalf("ev = %+v ok=%v", ev, ok)
	}
	if _, ok := s.TryNext(); ok {
		t.Error("filtered subscription saw another window's event")
	}
}

// TestRingOverflowMarksGap: a slow reader's ring overflows newest-wins;
// the next read sees one synthesized gap marker counting the losses,
// then the retained (newest) tail in order.
func TestRingOverflowMarksGap(t *testing.T) {
	b := New()
	s := b.Subscribe(0, 4, 0)
	defer s.Close()
	for i := 0; i < 10; i++ {
		b.Publish(1, "body", "")
	}
	ev, ok := s.TryNext()
	if !ok || ev.Kind != KindGap || ev.Seq != 0 {
		t.Fatalf("first = %+v, want gap marker", ev)
	}
	if ev.Detail != "6 missed" {
		t.Errorf("gap detail = %q, want \"6 missed\"", ev.Detail)
	}
	// The tail is the newest 4, contiguous.
	for want := uint64(7); want <= 10; want++ {
		ev, ok := s.TryNext()
		if !ok || ev.Seq != want {
			t.Fatalf("after gap: seq %d ok=%v, want %d", ev.Seq, ok, want)
		}
	}
}

// TestResumeFromSeq: a subscriber that remembers its last seq is
// backfilled from history with nothing duplicated or lost.
func TestResumeFromSeq(t *testing.T) {
	b := New()
	for i := 0; i < 5; i++ {
		b.Publish(1, "body", "")
	}
	s := b.Subscribe(0, 0, 3)
	defer s.Close()
	for want := uint64(4); want <= 5; want++ {
		ev, ok := s.TryNext()
		if !ok || ev.Seq != want {
			t.Fatalf("seq %d ok=%v, want %d", ev.Seq, ok, want)
		}
	}
	if _, ok := s.TryNext(); ok {
		t.Error("resume delivered more than the missing tail")
	}
}

// TestResumePastHistoryGetsGap: resuming from a seq the bounded history
// has already dropped yields a gap marker, then everything retained.
func TestResumePastHistoryGetsGap(t *testing.T) {
	b := NewSized(4)
	for i := 0; i < 10; i++ {
		b.Publish(1, "body", "")
	}
	s := b.Subscribe(0, 0, 2) // events 3..6 are gone (history holds 7..10)
	defer s.Close()
	ev, ok := s.TryNext()
	if !ok || ev.Kind != KindGap || ev.Detail != "4 missed" {
		t.Fatalf("first = %+v ok=%v, want 4-missed gap", ev, ok)
	}
	for want := uint64(7); want <= 10; want++ {
		ev, ok := s.TryNext()
		if !ok || ev.Seq != want {
			t.Fatalf("seq %d ok=%v, want %d", ev.Seq, ok, want)
		}
	}
}

func TestNextBlocksUntilPublish(t *testing.T) {
	b := New()
	s := b.Subscribe(0, 0, 0)
	defer s.Close()
	got := make(chan Event, 1)
	go func() {
		ev, err := s.Next(nil, 2*time.Second)
		if err != nil {
			t.Errorf("Next: %v", err)
		}
		got <- ev
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish(3, "new", "")
	select {
	case ev := <-got:
		if ev.Window != 3 || ev.Kind != "new" {
			t.Errorf("ev = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next never woke")
	}
}

func TestNextUnblocksOnStopAndClose(t *testing.T) {
	b := New()
	s := b.Subscribe(0, 0, 0)
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() { _, err := s.Next(stop, 0); errs <- err }()
	close(stop)
	if err := <-errs; err != ErrStopped {
		t.Errorf("stop: err = %v, want ErrStopped", err)
	}

	go func() { _, err := s.Next(nil, 0); errs <- err }()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	if err := <-errs; err != ErrClosed {
		t.Errorf("close: err = %v, want ErrClosed", err)
	}
}

func TestNextTimeout(t *testing.T) {
	b := New()
	s := b.Subscribe(0, 0, 0)
	defer s.Close()
	if _, err := s.Next(nil, 5*time.Millisecond); err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

// TestReadSince covers the long-poll primitive: batched delivery, the
// resume seq, and the empty-timeout poll.
func TestReadSince(t *testing.T) {
	b := New()
	for i := 0; i < 3; i++ {
		b.Publish(1, "body", "")
	}
	evs, next, err := b.ReadSince(0, 1, 0, nil, time.Second)
	if err != nil || len(evs) != 2 || next != 3 {
		t.Fatalf("evs=%v next=%d err=%v", evs, next, err)
	}
	// Nothing new: the poll times out empty, resume seq intact.
	evs, next, err = b.ReadSince(0, next, 0, nil, 5*time.Millisecond)
	if err != nil || len(evs) != 0 || next != 3 {
		t.Fatalf("empty poll: evs=%v next=%d err=%v", evs, next, err)
	}
	// And resuming from it picks up exactly the next event.
	b.Publish(2, "new", "")
	evs, next, err = b.ReadSince(0, next, 0, nil, time.Second)
	if err != nil || len(evs) != 1 || evs[0].Seq != 4 || next != 4 {
		t.Fatalf("resume: evs=%v next=%d err=%v", evs, next, err)
	}
}

func TestLineRoundTrip(t *testing.T) {
	cases := []Event{
		{Seq: 7, Window: 2, Kind: "body", Detail: "gen 9"},
		{Seq: 1, Window: 0, Kind: "exec", Detail: "date -u"},
		{Seq: 3, Window: 1, Kind: "new"},
	}
	for _, ev := range cases {
		got, ok := ParseLine(ev.Line())
		if !ok || got != ev {
			t.Errorf("round trip %+v -> %q -> %+v ok=%v", ev, ev.Line(), got, ok)
		}
	}
	if _, ok := ParseLine("not an event"); ok {
		t.Error("garbage parsed")
	}
	if _, ok := ParseLine(""); ok {
		t.Error("empty line parsed")
	}
}

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	if seq := b.Publish(1, "new", ""); seq != 0 {
		t.Errorf("nil publish = %d", seq)
	}
	if b.Seq() != 0 {
		t.Error("nil Seq != 0")
	}
	b.SetObs(nil)
}

func TestSinkPublishesTraceEvents(t *testing.T) {
	b := New()
	s := b.Subscribe(0, 0, 0)
	defer s.Close()
	b.Publish(0, "trace", "exec 12us date")
	ev, ok := s.TryNext()
	if !ok || ev.Kind != "trace" || !strings.Contains(ev.Detail, "exec") {
		t.Errorf("ev = %+v ok=%v", ev, ok)
	}
}
