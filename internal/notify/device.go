package notify

import (
	"fmt"
	"io"
	"time"

	"repro/internal/vfs"
)

// Device adapts a Bus to a vfs.Device: an event file. helpfs registers
// one per window (/mnt/help/<n>/event) and one global (/mnt/help/log);
// sessiond serves the daemon-level stream the same way.
//
// A plain open reads the events published after the open, one line
// each, without ever blocking — vfs drains device reads under the
// namespace lock, so a read that parked there would stall the whole
// session. When nothing new is buffered the handle reports EOF; `cat`
// sees an empty file, not a hang. Blocking arrives through the
// vfs.WaitDevice extension, which vfs calls outside the namespace lock.
type Device struct {
	Bus *Bus
	Win int // > 0: only this window's events; 0: everything
}

// OpenDevice opens the stream for reading. Event files are read-only.
func (d Device) OpenDevice(mode int) (vfs.DeviceFile, error) {
	if mode&(vfs.OWRITE|vfs.ORDWR) != 0 {
		return nil, fmt.Errorf("event file is read-only: %w", vfs.ErrPerm)
	}
	return &eventFile{sub: d.Bus.Subscribe(d.Win, 0, 0)}, nil
}

// ReadWait implements vfs.WaitDevice: the blocking, resumable read the
// srvnet readwait op and local watchers use. It is called without the
// namespace lock held and parks on the bus itself.
func (d Device) ReadWait(since uint64, stop <-chan struct{}, timeout time.Duration) ([]byte, uint64, error) {
	evs, next, err := d.Bus.ReadSince(d.Win, since, 0, stop, timeout)
	if err != nil {
		return nil, next, err
	}
	var buf []byte
	for _, ev := range evs {
		buf = append(buf, ev.Line()...)
		buf = append(buf, '\n')
	}
	return buf, next, nil
}

// eventFile is one open handle: a subscription drained sequentially.
// Reads ignore the byte offset — the stream has no random access.
type eventFile struct {
	sub     *Sub
	pending []byte
}

func (f *eventFile) ReadAt(p []byte, off int64) (int, error) {
	if len(f.pending) == 0 {
		for {
			ev, ok := f.sub.TryNext()
			if !ok {
				break
			}
			f.pending = append(f.pending, ev.Line()...)
			f.pending = append(f.pending, '\n')
		}
		if len(f.pending) == 0 {
			return 0, io.EOF
		}
	}
	n := copy(p, f.pending)
	f.pending = f.pending[n:]
	return n, nil
}

func (f *eventFile) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("event file is read-only: %w", vfs.ErrPerm)
}

func (f *eventFile) Close() error {
	f.sub.Close()
	return nil
}
