// Package notify is the event bus behind the session's event files. It
// inverts the polling the paper's tools rely on (the mail watcher stats
// a mailbox on a timer; stf re-reads directories) into blocking reads:
// the core actor publishes one event per observable state change, and
// readers — /mnt/help/<n>/event, /mnt/help/log, the srvnet readwait op,
// the Watch built-in — park until something happens.
//
// The cardinal rule is that a slow reader can never block the core
// actor. Publish never waits: each subscriber owns a bounded ring, and
// when a ring fills the oldest entry is discarded (newest wins) and the
// subscriber is marked; on its next read it sees a synthesized "gap"
// event before the retained tail, so it knows to resync. The bus also
// keeps a bounded history of recent events, which is what makes streams
// resumable: a reader that remembers the last sequence number it saw
// can subscribe from there and be backfilled, with the same gap marking
// if the history has already wrapped past it.
//
// Events are one line each on the wire: "<seq> <window> <kind> <detail>".
// Seq is a bus-wide monotonic counter (never 0 for a real event), window
// is the help window concerned (0 for session-wide events), kind is a
// single word, detail free text to end of line.
package notify

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Event is one bus event. Seq 0 marks a synthesized event (a gap
// marker), never a published one.
type Event struct {
	Seq    uint64
	Window int
	Kind   string
	Detail string
}

// KindGap is the kind of the synthesized discontinuity marker a reader
// sees after its ring (or the bus history) overflowed: its detail is
// "<n> missed", and the events it replaces are gone. A reader that
// needs coherent state re-reads it from the files and resumes from the
// seqs that follow.
const KindGap = "gap"

// Line renders the event in its one-line wire form, without a newline.
func (e Event) Line() string {
	if e.Detail == "" {
		return fmt.Sprintf("%d %d %s", e.Seq, e.Window, e.Kind)
	}
	return fmt.Sprintf("%d %d %s %s", e.Seq, e.Window, e.Kind, e.Detail)
}

// ParseLine parses the wire form back into an Event. The second result
// is false if the line is not an event line.
func ParseLine(line string) (Event, bool) {
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 4)
	if len(parts) < 3 {
		return Event{}, false
	}
	seq, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return Event{}, false
	}
	win, err := strconv.Atoi(parts[1])
	if err != nil {
		return Event{}, false
	}
	ev := Event{Seq: seq, Window: win, Kind: parts[2]}
	if len(parts) == 4 {
		ev.Detail = parts[3]
	}
	return ev, true
}

// Errors returned by blocking reads.
var (
	// ErrClosed means the subscription was closed under the reader.
	ErrClosed = errors.New("notify: subscription closed")
	// ErrTimeout means the wait deadline passed with no event; for a
	// long poll this is the normal empty result.
	ErrTimeout = errors.New("notify: wait timed out")
	// ErrStopped means the caller's stop channel closed (connection
	// went away, handle closed).
	ErrStopped = errors.New("notify: wait stopped")
)

const (
	// DefaultHistory is the bus's resume window: how many recent events
	// survive for late subscribers to be backfilled from.
	DefaultHistory = 512
	// DefaultRing is the per-subscriber buffer between publish and read.
	DefaultRing = 256
)

// Bus is the event bus: one per session (plus one daemon-level bus in
// sessiond). All methods are safe for concurrent use; Publish never
// blocks on readers.
type Bus struct {
	mu   sync.Mutex
	seq  uint64
	hist []Event // ring of the last len(hist) events, indexed by seq
	subs map[*Sub]struct{}
	tap  func(Event)

	// armed flips true on the first Subscribe or SetTap and never
	// resets: before anyone has ever listened, publishers may skip
	// building expensive detail strings (see Armed), so a session
	// nobody watches pays nothing for the event layer.
	armed atomic.Bool

	cPublished *obs.Counter
	cDropped   *obs.Counter
	cWaits     *obs.Counter
}

// New returns a Bus with the default history capacity.
func New() *Bus { return NewSized(DefaultHistory) }

// NewSized returns a Bus whose resume history holds hist events.
func NewSized(hist int) *Bus {
	if hist < 1 {
		hist = 1
	}
	return &Bus{
		hist: make([]Event, hist),
		subs: map[*Sub]struct{}{},
	}
}

// SetObs installs bus counters on r: notify.published, notify.dropped
// (ring overflow discards), notify.waits (blocking reads entered), and
// the notify.subs gauge. Nil removes them.
func (b *Bus) SetObs(r *obs.Registry) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if r == nil {
		b.cPublished, b.cDropped, b.cWaits = nil, nil, nil
		return
	}
	b.cPublished = r.Counter("notify.published")
	b.cDropped = r.Counter("notify.dropped")
	b.cWaits = r.Counter("notify.waits")
	r.Gauge("notify.subs", func() int64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return int64(len(b.subs))
	})
}

// SetTap installs a function called once per published event, after
// delivery, outside the bus lock (nil removes it). sessiond uses it to
// aggregate per-session buses into the daemon-level stream; the tap
// must not block and must not publish back into this bus.
func (b *Bus) SetTap(fn func(Event)) {
	b.mu.Lock()
	b.tap = fn
	b.mu.Unlock()
	if fn != nil {
		b.armed.Store(true)
	}
}

// Armed reports whether anyone has ever subscribed (or tapped) this
// bus. Publishers of events with costly-to-format details may publish
// them with an empty detail while unarmed — the seq/window/kind
// skeleton is still recorded for resume — and consumers must treat a
// detail-less event conservatively (a body event with no generation
// means "assume stale"). Once armed, always armed: there is no race
// where a new subscriber sees half-formatted live events.
func (b *Bus) Armed() bool {
	return b != nil && b.armed.Load()
}

// Publish appends one event to the bus and returns its seq. It never
// blocks: a full subscriber ring discards its oldest entry and marks
// the gap.
func (b *Bus) Publish(win int, kind, detail string) uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	b.seq++
	ev := Event{Seq: b.seq, Window: win, Kind: kind, Detail: detail}
	b.hist[int((ev.Seq-1)%uint64(len(b.hist)))] = ev
	for s := range b.subs {
		s.push(ev)
	}
	tap := b.tap
	b.mu.Unlock()
	b.cPublished.Inc()
	if tap != nil {
		tap(ev)
	}
	return ev.Seq
}

// Seq returns the seq of the most recently published event (0 if none
// yet): the resume point for a subscriber that wants only the future.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// oldestLocked is the seq of the oldest event still in history; 0 when
// the bus has published nothing.
func (b *Bus) oldestLocked() uint64 {
	if b.seq <= uint64(len(b.hist)) {
		return min(b.seq, 1)
	}
	return b.seq - uint64(len(b.hist)) + 1
}

// Subscribe registers a reader. win > 0 filters to that window's events;
// win <= 0 sees everything. ringCap bounds the unread backlog (<= 0 for
// the default). since is the last seq the reader has already seen: 0
// means "from now", anything else backfills from the bus history, with
// a gap recorded if the history has wrapped past it.
func (b *Bus) Subscribe(win, ringCap int, since uint64) *Sub {
	if ringCap <= 0 {
		ringCap = DefaultRing
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.armed.Store(true)
	s := &Sub{
		b:    b,
		win:  win,
		ring: make([]Event, ringCap),
		wake: make(chan struct{}, 1),
	}
	if since == 0 || since > b.seq {
		since = b.seq
	}
	s.base = since
	if oldest := b.oldestLocked(); since+1 < oldest {
		s.missed = oldest - 1 - since
		since = oldest - 1
	}
	for q := since + 1; q <= b.seq; q++ {
		s.push(b.hist[int((q-1)%uint64(len(b.hist)))])
	}
	b.subs[s] = struct{}{}
	return s
}

// ReadSince is the long-poll primitive srvnet's readwait op and the
// event devices build on: collect the events after seq since (0 = from
// now), blocking until at least one arrives, stop closes, or timeout
// expires. It returns the batch, capped at max, plus the seq to resume
// from next time. A timeout returns an empty batch and no error — the
// normal empty poll; the returned seq is still valid to resume from.
func (b *Bus) ReadSince(win int, since uint64, max int, stop <-chan struct{}, timeout time.Duration) ([]Event, uint64, error) {
	if max <= 0 {
		max = DefaultRing
	}
	s := b.Subscribe(win, max, since)
	defer s.Close()
	next := s.base
	first, err := s.Next(stop, timeout)
	if err == ErrTimeout {
		return nil, next, nil
	}
	if err != nil {
		return nil, next, err
	}
	evs := make([]Event, 1, 8)
	evs[0] = first
	if first.Seq > next {
		next = first.Seq
	}
	for len(evs) < max {
		ev, ok := s.TryNext()
		if !ok {
			break
		}
		evs = append(evs, ev)
		if ev.Seq > next {
			next = ev.Seq
		}
	}
	return evs, next, nil
}

// Sub is one subscription: a bounded ring the bus pushes into and the
// reader drains. All fields are guarded by the bus lock.
type Sub struct {
	b      *Bus
	win    int
	ring   []Event
	r, n   int
	missed uint64 // events discarded since the reader last looked
	base   uint64 // resolved "since" seq at subscribe time
	closed bool
	wake   chan struct{} // capacity 1: a wake token, not a queue
}

// push delivers ev to the ring, discarding the oldest entry when full
// (newest wins). Runs under the bus lock.
func (s *Sub) push(ev Event) {
	if s.win > 0 && ev.Window != s.win {
		return
	}
	if s.n == len(s.ring) {
		s.ring[s.r] = Event{}
		s.r = (s.r + 1) % len(s.ring)
		s.n--
		s.missed++
		s.b.cDropped.Inc()
	}
	s.ring[(s.r+s.n)%len(s.ring)] = ev
	s.n++
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// tryNext pops the next event. Discarded events surface as a gap marker
// exactly where they were lost: drops always take the oldest retained
// entry, so everything still in the ring is newer than the gap.
func (s *Sub) tryNext() (Event, bool, error) {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.missed > 0 {
		ev := Event{Kind: KindGap, Detail: strconv.FormatUint(s.missed, 10) + " missed"}
		s.missed = 0
		return ev, true, nil
	}
	if s.n == 0 {
		if s.closed {
			return Event{}, false, ErrClosed
		}
		return Event{}, false, nil
	}
	ev := s.ring[s.r]
	s.ring[s.r] = Event{} // don't pin the strings
	s.r = (s.r + 1) % len(s.ring)
	s.n--
	return ev, true, nil
}

// TryNext pops the next buffered event without blocking.
func (s *Sub) TryNext() (Event, bool) {
	ev, ok, _ := s.tryNext()
	return ev, ok
}

// Next blocks until an event is available and returns it. It unblocks
// with ErrStopped when stop closes, ErrTimeout when timeout (if > 0)
// expires, and ErrClosed when the subscription is closed under it.
func (s *Sub) Next(stop <-chan struct{}, timeout time.Duration) (Event, error) {
	s.b.cWaits.Inc()
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	for {
		ev, ok, err := s.tryNext()
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
		select {
		case <-s.wake:
		case <-stop: // nil stop blocks forever, as intended
			return Event{}, ErrStopped
		case <-tc:
			return Event{}, ErrTimeout
		}
	}
}

// Close unregisters the subscription and unblocks any parked Next.
func (s *Sub) Close() {
	s.b.mu.Lock()
	if s.closed {
		s.b.mu.Unlock()
		return
	}
	s.closed = true
	delete(s.b.subs, s)
	s.b.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Sink adapts the bus to obs.Sink so the registry's trace spans and
// fault events stream into the event feed alongside state changes:
// every published span becomes a window-0 "trace" event whose detail
// is "<name> <dur>us <attrs>".
func (b *Bus) Sink() obs.Sink {
	return obs.FuncSink(func(sp obs.Span) {
		detail := sp.Name + " " + strconv.FormatInt(sp.Dur.Microseconds(), 10) + "us"
		if sp.Attrs != "" {
			detail += " " + sp.Attrs
		}
		b.Publish(0, "trace", detail)
	})
}
