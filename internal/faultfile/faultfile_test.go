package faultfile

import (
	"strings"
	"testing"

	"repro/internal/journal"
)

func TestScriptedWriteErr(t *testing.T) {
	mem := journal.NewMemFS()
	fs := Wrap(mem, NewScript(Fault{Op: "write", After: 1, Kind: WriteErr}))
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("write 0 should pass: %v", err)
	}
	if _, err := f.Write([]byte("second")); err == nil {
		t.Fatal("write 1 should fail")
	}
	if fs.script.Fired() != 1 {
		t.Fatalf("fired %d, want 1", fs.script.Fired())
	}
	b, _ := mem.ReadFile("x")
	if string(b) != "first" {
		t.Fatalf("persisted %q", b)
	}
}

func TestScriptedShortAndTorn(t *testing.T) {
	mem := journal.NewMemFS()
	fs := Wrap(mem, NewScript(
		Fault{Op: "write", After: 0, Kind: ShortWrite},
		Fault{Op: "write", After: 1, Kind: TornWrite},
	))
	f, _ := fs.Create("x")
	n, err := f.Write([]byte("abcdefgh"))
	if err == nil || n != 4 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	n, err = f.Write([]byte("ijklmnop"))
	if err != nil || n != 8 {
		t.Fatalf("torn write must report success: n=%d err=%v", n, err)
	}
	b, _ := mem.ReadFile("x")
	if string(b) != "abcd"+"ijkl" {
		t.Fatalf("persisted %q", b)
	}
}

func TestScriptedSyncErr(t *testing.T) {
	mem := journal.NewMemFS()
	fs := Wrap(mem, NewScript(Fault{Op: "sync", After: 0, Kind: SyncErr}))
	f, _ := fs.Create("x")
	if err := f.Sync(); err == nil {
		t.Fatal("sync 0 should fail")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 should pass: %v", err)
	}
}

func TestCrashAfterBytes(t *testing.T) {
	mem := journal.NewMemFS()
	fs := CrashAfterBytes(mem, 10)
	f, _ := fs.Create("x")
	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("pre-crash write: n=%d err=%v", n, err)
	}
	// This write crosses the limit at byte 10: 2 bytes land, the rest
	// vanish, and the caller is told everything succeeded.
	if n, err := f.Write([]byte("abcdefgh")); n != 8 || err != nil {
		t.Fatalf("crossing write must lie: n=%d err=%v", n, err)
	}
	if !fs.Crashed() {
		t.Fatal("crash not triggered")
	}
	// Post-crash: everything reports success, nothing persists.
	if n, err := f.Write([]byte("MORE")); n != 4 || err != nil {
		t.Fatalf("post-crash write: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("post-crash sync: %v", err)
	}
	g, err := fs.Create("y")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := g.Write([]byte("ghost")); n != 5 || err != nil {
		t.Fatalf("post-crash create+write: n=%d err=%v", n, err)
	}
	if err := fs.Rename("x", "z"); err != nil {
		t.Fatalf("post-crash rename: %v", err)
	}

	b, _ := mem.ReadFile("x")
	if string(b) != "12345678ab" {
		t.Fatalf("persisted %q, want the first 10 bytes", b)
	}
	if _, err := mem.ReadFile("y"); err == nil {
		t.Fatal("ghost file reached the medium")
	}
	if _, err := mem.ReadFile("z"); err == nil {
		t.Fatal("post-crash rename reached the medium")
	}
}

// The injector must compose with a real Writer: a journal written
// through CrashAfterBytes loads as a clean prefix of the full journal.
func TestWriterThroughCrash(t *testing.T) {
	// First, a full run to learn the total size.
	full := journal.NewMemFS()
	w, err := journal.Open(full, journal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w.Append(&journal.Op{Kind: journal.OpSplice, Win: 1, Sub: 1, P0: i, Str1: strings.Repeat("x", i)})
	}
	w.Flush()
	w.Close()
	seg, err := full.ReadFile("wal-00000000000000000000.log")
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int64{0, 1, 16, 17, int64(len(seg)) / 2, int64(len(seg)) - 1} {
		mem := journal.NewMemFS()
		ffs := CrashAfterBytes(mem, cut)
		w, err := journal.Open(ffs, journal.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			w.Append(&journal.Op{Kind: journal.OpSplice, Win: 1, Sub: 1, P0: i, Str1: strings.Repeat("x", i)})
		}
		w.Flush()
		w.Close()

		st, err := journal.Load(mem)
		if cut < 16 {
			// Not even the segment header landed.
			if err == nil && len(st.Ops) != 0 {
				t.Fatalf("cut %d: ops from a headerless journal", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Prefix consistency: ops 0..k replayed in order, none invented.
		for i, op := range st.Ops {
			if op.P0 != i || op.Str1 != strings.Repeat("x", i) {
				t.Fatalf("cut %d: op %d is %+v, not the %d'th written", cut, i, op, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 5, 100)
	b := Generate(42, 5, 100)
	if len(a.faults) != 5 || len(b.faults) != 5 {
		t.Fatal("wrong fault count")
	}
	for i := range a.faults {
		if a.faults[i] != b.faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a.faults[i], b.faults[i])
		}
	}
}

// A Writer over a scripted-fault FS must degrade, not wedge or panic.
func TestWriterDegradesUnderScript(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		mem := journal.NewMemFS()
		ffs := Wrap(mem, Generate(seed, 3, 10))
		w, err := journal.Open(ffs, journal.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			w.Append(&journal.Op{Kind: journal.OpScroll, Win: 1, P0: i})
		}
		w.Flush()
		w.Close()
		// Whatever happened, Load must not panic; errors are fine (a
		// scripted mid-file torn write is indistinguishable from real
		// corruption, which is exactly what Load must refuse).
		journal.Load(mem)
	}
}
