// Package faultfile wraps a journal.Fsys with scripted fault
// injection, the storage-side sibling of internal/faultnet. A
// crash-safe journal is only crash-safe if it survives the ways disks
// actually fail: short writes, fsync errors, and — the important one —
// torn writes, where a power cut persists an arbitrary prefix of the
// last append while the process believed it succeeded. This package
// makes those failures reproducible and deterministic.
//
// Two modes:
//
//   - A Script of Faults (same idiom as faultnet: the After'th
//     operation matching Op misbehaves per Kind), hand-written or
//     derived from a seed with Generate.
//   - CrashAfterBytes(n): a simulated power cut after the n'th written
//     byte. Writes up to the limit are persisted, the write that
//     crosses it is torn mid-buffer, and everything after vanishes —
//     all while reporting success to the writer, exactly like a dying
//     machine with a volatile write cache.
package faultfile

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/journal"
)

// Kind enumerates the sabotage a Fault applies.
type Kind int

const (
	// WriteErr fails the write with an error; nothing is persisted.
	WriteErr Kind = iota
	// ShortWrite persists half the buffer and reports an error with
	// the short count, like a disk-full mid-write.
	ShortWrite
	// TornWrite persists half the buffer but reports success: a lying
	// write cache ahead of a crash.
	TornWrite
	// SyncErr fails the fsync, persisting nothing extra.
	SyncErr
)

// String names the kind for test output.
func (k Kind) String() string {
	switch k {
	case WriteErr:
		return "writeerr"
	case ShortWrite:
		return "shortwrite"
	case TornWrite:
		return "tornwrite"
	case SyncErr:
		return "syncerr"
	}
	return "unknown"
}

// Fault is one scripted failure: the After'th operation matching Op
// misbehaves per Kind. Op is "write", "sync", or "" for either.
type Fault struct {
	Op    string
	After int
	Kind  Kind
}

// Script is a consumable fault plan, safe for concurrent use (the
// journal's writer goroutine is the usual caller).
type Script struct {
	mu     sync.Mutex
	faults []Fault
	used   []bool
	writes int
	syncs  int
	total  int
	fired  int
}

// NewScript builds a script from explicit faults.
func NewScript(faults ...Fault) *Script {
	return &Script{faults: faults, used: make([]bool, len(faults))}
}

// Generate derives a reproducible script from a seed: n faults spread
// over roughly span operations.
func Generate(seed int64, n, span int) *Script {
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	ops := []string{"write", "sync", ""}
	for i := range faults {
		faults[i] = Fault{
			Op:    ops[rng.Intn(len(ops))],
			After: rng.Intn(span),
			Kind:  Kind(rng.Intn(4)),
		}
	}
	return NewScript(faults...)
}

// Fired reports how many faults have fired so far.
func (s *Script) Fired() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// next consumes the first unfired fault matching op at the current
// operation count, if any.
func (s *Script) next(op string) (Fault, bool) {
	if s == nil {
		return Fault{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var idx int
	switch op {
	case "write":
		idx = s.writes
		s.writes++
	case "sync":
		idx = s.syncs
		s.syncs++
	}
	anyIdx := s.total
	s.total++
	for i, f := range s.faults {
		if s.used[i] {
			continue
		}
		if (f.Op == op && f.After == idx) || (f.Op == "" && f.After == anyIdx) {
			s.used[i] = true
			s.fired++
			return f, true
		}
	}
	return Fault{}, false
}

// FS wraps a journal.Fsys, applying a Script and/or a byte-limit
// crash to every file opened through it.
type FS struct {
	inner  journal.Fsys
	script *Script

	mu      sync.Mutex
	limit   int64 // -1: no limit
	written int64
	crashed bool
}

// Wrap applies script to every write/sync through inner.
func Wrap(inner journal.Fsys, script *Script) *FS {
	return &FS{inner: inner, script: script, limit: -1}
}

// CrashAfterBytes simulates a power cut after n bytes have been
// written through the wrapper (across all files): the crossing write
// is torn, subsequent writes and syncs silently vanish. Reads pass
// through, so the same wrapper can serve recovery assertions.
func CrashAfterBytes(inner journal.Fsys, n int64) *FS {
	return &FS{inner: inner, limit: n}
}

// Crashed reports whether the byte-limit crash has triggered.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

func (fs *FS) Create(name string) (journal.File, error) {
	fs.mu.Lock()
	dead := fs.crashed
	fs.mu.Unlock()
	if dead {
		// After the "power cut" the file never reaches the medium, but
		// the process sees success.
		return deadFile{}, nil
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, inner: f}, nil
}

func (fs *FS) ReadFile(name string) ([]byte, error) { return fs.inner.ReadFile(name) }

func (fs *FS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	dead := fs.crashed
	fs.mu.Unlock()
	if dead {
		return nil
	}
	return fs.inner.Rename(oldname, newname)
}

func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	dead := fs.crashed
	fs.mu.Unlock()
	if dead {
		return nil
	}
	return fs.inner.Remove(name)
}

func (fs *FS) List() ([]string, error) { return fs.inner.List() }

type faultFile struct {
	fs    *FS
	inner journal.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return len(p), nil
	}
	if fs.limit >= 0 {
		remain := fs.limit - fs.written
		if remain < int64(len(p)) {
			// The crossing write: persist the prefix, lose the rest,
			// report success. This is the torn final record.
			fs.crashed = true
			fs.written = fs.limit
			fs.mu.Unlock()
			if remain > 0 {
				f.inner.Write(p[:remain])
			}
			return len(p), nil
		}
		fs.written += int64(len(p))
	}
	fs.mu.Unlock()

	if fault, ok := fs.script.next("write"); ok {
		switch fault.Kind {
		case WriteErr:
			return 0, fmt.Errorf("faultfile: injected write error")
		case ShortWrite:
			n, _ := f.inner.Write(p[:len(p)/2])
			return n, fmt.Errorf("faultfile: injected short write (%d of %d)", n, len(p))
		case TornWrite:
			f.inner.Write(p[:len(p)/2])
			return len(p), nil
		case SyncErr:
			// A sync fault landing on a write slot: apply on the next
			// sync instead by re-arming is overkill; treat as no-op.
		}
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	dead := fs.crashed
	fs.mu.Unlock()
	if dead {
		return nil
	}
	if fault, ok := fs.script.next("sync"); ok && fault.Kind == SyncErr {
		return fmt.Errorf("faultfile: injected fsync error")
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	fs := f.fs
	fs.mu.Lock()
	dead := fs.crashed
	fs.mu.Unlock()
	if dead {
		return nil
	}
	return f.inner.Close()
}

// deadFile swallows everything after the crash point.
type deadFile struct{}

func (deadFile) Write(p []byte) (int, error) { return len(p), nil }
func (deadFile) Sync() error                 { return nil }
func (deadFile) Close() error                { return nil }
