package sessiond

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/shell"
	"repro/internal/vfs"
	"repro/internal/world"
)

func bodyPath(id int) string { return fmt.Sprintf("%s/%d/body", world.MountRoot, id) }

// One session loading a huge body hits its own cap (MaxSessionBytes)
// with a typed busy error, and the refused load leaves the window's
// prior content intact.
func TestSessionMemCapRefusesLargeLoad(t *testing.T) {
	m, rec := newManager(t, func(c *Config) { c.MaxSessionBytes = 64 * 1024 })
	fs, detach, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	w := rec.world("a").Help.NewWindow()

	if err := fs.WriteFile(bodyPath(w.ID), bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatalf("small load refused: %v", err)
	}
	err = fs.WriteFile(bodyPath(w.ID), bytes.Repeat([]byte("y"), 32*1024))
	if !errors.Is(err, vfs.ErrBusy) {
		t.Fatalf("oversized load: err = %v, want vfs.ErrBusy", err)
	}
	got, err := fs.ReadFile(bodyPath(w.ID))
	if err != nil || len(got) != 4096 {
		t.Fatalf("refused load damaged the body: len=%d err=%v", len(got), err)
	}
}

// The daemon-wide memory budget refuses a load in one session once the
// total across sessions is spent, stamping the configured retry-after
// hint and counting the refusal.
func TestDaemonMemBudgetRefusesAcrossSessions(t *testing.T) {
	r := obs.New()
	m, rec := newManager(t, func(c *Config) {
		c.MaxBytes = 64 * 1024
		c.RetryAfter = 50 * time.Millisecond
		c.Obs = r
	})
	fsA, detachA, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detachA()
	wa := rec.world("a").Help.NewWindow()
	if err := fsA.WriteFile(bodyPath(wa.ID), bytes.Repeat([]byte("x"), 10*1024)); err != nil {
		t.Fatalf("first session's load refused: %v", err)
	}
	if got := m.MemBytes(); got < 40*1024 {
		t.Fatalf("daemon.budget.bytes = %d, want >= %d", got, 40*1024)
	}

	fsB, detachB, err := m.AttachSession("b")
	if err != nil {
		t.Fatalf("attach under budget refused: %v", err)
	}
	defer detachB()
	wb := rec.world("b").Help.NewWindow()
	err = fsB.WriteFile(bodyPath(wb.ID), bytes.Repeat([]byte("y"), 10*1024))
	if !errors.Is(err, vfs.ErrBusy) {
		t.Fatalf("over-budget load: err = %v, want vfs.ErrBusy", err)
	}
	if d, ok := vfs.RetryAfter(err); !ok || d != 50*time.Millisecond {
		t.Fatalf("retry-after hint = %v,%v, want 50ms", d, ok)
	}
	if r.Counter("daemon.budget.refused.mem").Load() == 0 {
		t.Fatal("daemon.budget.refused.mem not counted")
	}
}

// While the daemon's memory budget is spent, brand-new sessions are
// refused admission (spawning a world costs memory) but attaching to an
// existing session still works.
func TestAttachRefusedWhileMemBudgetSpent(t *testing.T) {
	r := obs.New()
	m, rec := newManager(t, func(c *Config) {
		c.MaxBytes = 4000
		c.Obs = r
	})
	fsA, detachA, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detachA()
	w := rec.world("a").Help.NewWindow()
	// 1023 runes stays under the gate-consult threshold, but its 4092
	// accounted bytes exceed the 4000-byte daemon budget.
	if err := fsA.WriteFile(bodyPath(w.ID), bytes.Repeat([]byte("x"), 1023)); err != nil {
		t.Fatalf("sub-threshold load refused: %v", err)
	}

	_, _, err = m.AttachSession("b")
	if !errors.Is(err, vfs.ErrBusy) {
		t.Fatalf("new-session attach over budget: err = %v, want vfs.ErrBusy", err)
	}
	if r.Counter("daemon.budget.refused.attach").Load() == 0 {
		t.Fatal("daemon.budget.refused.attach not counted")
	}
	// The resident session is still reachable.
	if _, detach2, err := m.AttachSession("a"); err != nil {
		t.Fatalf("re-attach to resident session refused: %v", err)
	} else {
		detach2()
	}
}

// The daemon-wide command budget refuses a launch in one session while
// another session holds the last slot, and admits it again once the
// slot frees.
func TestDaemonProcBudgetRefusesAcrossSessions(t *testing.T) {
	r := obs.New()
	m, rec := newManager(t, func(c *Config) {
		c.MaxTotalProcs = 1
		c.Obs = r
	})
	if _, detach, err := m.AttachSession("a"); err != nil {
		t.Fatal(err)
	} else {
		defer detach()
	}
	if _, detach, err := m.AttachSession("b"); err != nil {
		t.Fatal(err)
	} else {
		defer detach()
	}

	blockA, blockB := make(chan struct{}), make(chan struct{})
	closeOnce := func(ch chan struct{}) {
		select {
		case <-ch:
		default:
			close(ch)
		}
	}
	defer closeOnce(blockA)
	defer closeOnce(blockB)
	ha, hb := rec.world("a").Help, rec.world("b").Help
	rec.world("a").Shell.Register("blocknow", func(ctx *shell.Context, args []string) int {
		<-blockA
		return 0
	})
	rec.world("b").Shell.Register("blocknow", func(ctx *shell.Context, args []string) int {
		<-blockB
		return 0
	})
	winA, winB := ha.NewWindow(), hb.NewWindow()

	ha.Start(winA, "blocknow")
	waitUntil(t, "session a's command to start", func() bool { return ha.ProcCount() == 1 })

	// Session b's launch is refused: the daemon budget is spent.
	hb.Start(winB, "blocknow")
	waitUntil(t, "the refusal to be counted", func() bool {
		return r.Counter("daemon.budget.refused.proc").Load() > 0
	})
	if n := hb.ProcCount(); n != 0 {
		t.Fatalf("refused command still started: ProcCount = %d", n)
	}

	// Free the slot; session b is admitted again.
	closeOnce(blockA)
	waitUntil(t, "session a's command to finish", func() bool { return ha.ProcCount() == 0 })
	hb.Start(winB, "blocknow")
	waitUntil(t, "session b's command to start", func() bool { return hb.ProcCount() == 1 })
}

// A hosted session's /mnt/help/stats carries the daemon's own
// instruments — the budget gauges and refusal counters live on the
// Manager's registry, and the manual documents them as readable from
// any session's stats file.
func TestSessionStatsIncludesDaemonBudget(t *testing.T) {
	r := obs.New()
	m, _ := newManager(t, func(c *Config) {
		c.MaxBytes = 64 * 1024
		c.Obs = r
	})
	fs, detach, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	got, err := fs.ReadFile(world.MountRoot + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"daemon.budget.sessions 1", "daemon.budget.bytes", "daemon.budget.procs"} {
		if !bytes.Contains(got, []byte(key)) {
			t.Errorf("session stats missing daemon line %q:\n%s", key, got)
		}
	}
	// The session's own instruments still serve from the same file.
	if !bytes.Contains(got, []byte("core.")) {
		t.Errorf("session stats lost the session's own lines:\n%s", got)
	}
}
