package sessiond

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfile"
	"repro/internal/journal"
	"repro/internal/shell"
	"repro/internal/srvnet"
	"repro/internal/world"
)

// The template costs one full world build; every test stamps sessions
// from the same one.
var (
	tmplOnce sync.Once
	tmpl     *world.Template
	tmplErr  error
)

func sharedTemplate(t *testing.T) *world.Template {
	t.Helper()
	tmplOnce.Do(func() { tmpl, tmplErr = world.NewTemplate() })
	if tmplErr != nil {
		t.Fatal(tmplErr)
	}
	return tmpl
}

// waitUntil polls cond with a deadline, the pattern the world
// concurrency tests use.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// recorder captures the worlds a Manager builds, keyed by session
// name, so tests can reach inside sessions the daemon API hides.
type recorder struct {
	mu     sync.Mutex
	worlds map[string]*world.World
}

func (r *recorder) build(tmpl *world.Template) func(string, int, int) (*world.World, error) {
	return func(name string, w, h int) (*world.World, error) {
		ww, err := tmpl.NewSession(w, h)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.worlds[name] = ww
		r.mu.Unlock()
		return ww, nil
	}
}

func (r *recorder) world(name string) *world.World {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.worlds[name]
}

// newManager builds a Manager over the shared template, recording
// worlds, and drains it at cleanup so no goroutines leak.
func newManager(t *testing.T, mod func(*Config)) (*Manager, *recorder) {
	t.Helper()
	rec := &recorder{worlds: map[string]*world.World{}}
	cfg := Config{Width: 60, Height: 20, Build: rec.build(sharedTemplate(t))}
	if mod != nil {
		mod(&cfg)
	}
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return m, rec
}

// memJournals hands every session its own MemFS, retained for
// post-drain inspection.
type memJournals struct {
	mu   sync.Mutex
	dirs map[string]*journal.MemFS
}

func newMemJournals() *memJournals {
	return &memJournals{dirs: map[string]*journal.MemFS{}}
}

func (j *memJournals) open(name string) (journal.Fsys, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if d, ok := j.dirs[name]; ok {
		return d, nil
	}
	d := journal.NewMemFS()
	j.dirs[name] = d
	return d, nil
}

func (j *memJournals) dir(name string) *journal.MemFS {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dirs[name]
}

func TestAttachSpawnsIsolatedSessions(t *testing.T) {
	before := runtime.NumGoroutine()
	m, _ := newManager(t, nil)

	fsA, detachA, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	fsB, detachB, err := m.AttachSession("b")
	if err != nil {
		t.Fatal(err)
	}
	if m.SessionCount() != 2 {
		t.Fatalf("SessionCount = %d, want 2", m.SessionCount())
	}

	// Private writes stay private.
	if err := fsA.WriteFile("/tmp/only-a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if fsB.Exists("/tmp/only-a") {
		t.Fatal("session a's write leaked into session b")
	}
	// Both sessions share the sealed userland.
	if !fsB.Exists("/bin/help/parse") {
		t.Fatal("session b is missing the shared userland")
	}

	// The sessions table is served inside every session's namespace,
	// and reading it takes the session lock then the manager lock —
	// the sanctioned order.
	table, err := fsA.ReadFile(world.MountRoot + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a active attached=1", "b active attached=1"} {
		if !strings.Contains(string(table), want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}

	// A second attach to a live session shares it.
	fsA2, detachA2, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	if !fsA2.Exists("/tmp/only-a") {
		t.Fatal("re-attach did not land in the same session")
	}
	if got := m.Attached("a"); got != 2 {
		t.Fatalf("Attached(a) = %d, want 2", got)
	}
	detachA2()
	detachA()
	detachB()
	if got := m.Attached("a"); got != 0 {
		t.Fatalf("Attached(a) = %d after detach, want 0", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitUntil(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

func TestBadSessionNames(t *testing.T) {
	m, _ := newManager(t, nil)
	for _, name := range []string{"", ".", "..", "a/b", "a b", "x\n", strings.Repeat("z", 65)} {
		if _, _, err := m.AttachSession(name); !errors.Is(err, ErrBadName) {
			t.Fatalf("AttachSession(%q): err = %v, want ErrBadName", name, err)
		}
	}
}

func TestMaxSessionsRefusedAsBusy(t *testing.T) {
	m, _ := newManager(t, func(c *Config) { c.MaxSessions = 1 })
	_, detach, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	_, _, err = m.AttachSession("b")
	if !errors.Is(err, ErrMaxSessions) || !errors.Is(err, srvnet.ErrBusy) {
		t.Fatalf("err = %v, want ErrMaxSessions wrapping srvnet.ErrBusy", err)
	}
}

func TestReapIdleAndRespawn(t *testing.T) {
	m, _ := newManager(t, func(c *Config) { c.TTL = 30 * time.Millisecond })
	fs, detach, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/tmp/mark", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Attached sessions are never reaped, however idle.
	time.Sleep(50 * time.Millisecond)
	if n := m.ReapIdle(); n != 0 {
		t.Fatalf("reaped %d attached sessions", n)
	}
	detach()

	waitUntil(t, "idle session to be reaped", func() bool { return m.SessionCount() == 0 })

	// Re-attach spawns a fresh world: the old private state is gone.
	fs2, detach2, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detach2()
	if fs2.Exists("/tmp/mark") {
		t.Fatal("reaped session's state survived into the respawn")
	}
}

// A panic inside one session is contained: that session is marked
// crashed and refuses new attaches, every other session keeps serving.
func TestCrashedSessionIsContained(t *testing.T) {
	before := runtime.NumGoroutine()
	m, rec := newManager(t, nil)

	_, detachA, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detachA()
	fsB, detachB, err := m.AttachSession("b")
	if err != nil {
		t.Fatal(err)
	}
	defer detachB()

	wa := rec.world("a")
	wa.Shell.Register("panicnow", func(ctx *shell.Context, args []string) int {
		panic("injected session fault")
	})
	win := wa.Help.NewWindow()
	wa.Help.Execute(win, "panicnow")

	waitUntil(t, "session a to be marked crashed", func() bool {
		return m.countState(stateCrashed) == 1
	})

	// Session b never noticed.
	if err := fsB.WriteFile("/tmp/alive", []byte("x")); err != nil {
		t.Fatalf("session b stopped serving: %v", err)
	}
	table, err := fsB.ReadFile(world.MountRoot + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(table), "a crashed") ||
		!strings.Contains(string(table), "injected session fault") {
		t.Fatalf("table does not show the crash:\n%s", table)
	}
	if !strings.Contains(string(table), "b active") {
		t.Fatalf("table lost the healthy session:\n%s", table)
	}

	// New attaches to the crashed session are refused with the reason.
	_, _, err = m.AttachSession("a")
	if !errors.Is(err, ErrCrashed) || !strings.Contains(err.Error(), "injected session fault") {
		t.Fatalf("attach to crashed session: err = %v, want ErrCrashed with reason", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain with a crashed session: %v", err)
	}
	waitUntil(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// A journal write error in one session crashes only that session.
func TestJournalFaultCrashesOnlyItsSession(t *testing.T) {
	mems := newMemJournals()
	m, rec := newManager(t, func(c *Config) {
		c.JournalFS = func(name string) (journal.Fsys, error) {
			fsys, _ := mems.open(name)
			if name == "a" {
				// A journal write a few operations in fails; the writer
				// degrades. (The lockfile and the attach checkpoint also
				// count as writes, so the fault fires once the session
				// is up and mutating.)
				return faultfile.Wrap(fsys.(*journal.MemFS),
					faultfile.NewScript(faultfile.Fault{Op: "write", After: 5, Kind: faultfile.WriteErr})), nil
			}
			return fsys, nil
		}
	})

	_, detachA, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detachA()
	fsB, detachB, err := m.AttachSession("b")
	if err != nil {
		t.Fatal(err)
	}
	defer detachB()

	// Journaled mutations eventually trip the scripted fault.
	waitUntil(t, "journal fault to crash session a", func() bool {
		rec.world("a").Help.NewWindow()
		return m.countState(stateCrashed) == 1
	})
	if err := fsB.WriteFile("/tmp/alive", []byte("x")); err != nil {
		t.Fatalf("session b stopped serving: %v", err)
	}
	table, _ := fsB.ReadFile(world.MountRoot + "/sessions")
	if !strings.Contains(string(table), "a crashed") || !strings.Contains(string(table), "journal") {
		t.Fatalf("table does not blame the journal:\n%s", table)
	}
}

// fingerprint summarizes the session state a drain must preserve.
// Rendering is explicit in core (and RecoverSession renders), so render
// before comparing screens.
func fingerprint(h *core.Help) string {
	h.Render()
	var b strings.Builder
	for _, w := range h.Windows() {
		b.WriteString(w.Tag.String())
		b.WriteByte('\n')
		b.WriteString(w.Body.String())
		b.WriteByte('\n')
	}
	b.WriteString(h.Screen().String())
	return b.String()
}

// Drain must leave every session's journal checkpointed, flushed,
// unlocked, and recoverable byte for byte.
func TestDrainCheckpointsEverySession(t *testing.T) {
	mems := newMemJournals()
	m, rec := newManager(t, func(c *Config) {
		c.JournalFS = func(name string) (journal.Fsys, error) { return mems.open(name) }
	})

	names := []string{"a", "b", "c"}
	for _, n := range names {
		_, detach, err := m.AttachSession(n)
		if err != nil {
			t.Fatal(err)
		}
		defer detach()
		w := rec.world(n)
		if _, err := w.Help.OpenFile("/usr/rob/lib/profile", ""); err != nil {
			t.Fatal(err)
		}
		win := w.Help.NewWindow()
		win.Body.SetString("state private to " + n)
	}

	want := map[string]string{}
	for _, n := range names {
		rec.world(n).Help.WaitIdle()
		want[n] = fingerprint(rec.world(n).Help)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	for _, n := range names {
		dir := mems.dir(n)
		// The drain released the directory lock.
		l, err := journal.AcquireLock(dir)
		if err != nil {
			t.Fatalf("%s: journal still locked after drain: %v", n, err)
		}
		l.Release()
		// The journal recovers into an identical session.
		fresh, err := sharedTemplate(t).NewSession(60, 20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RecoverSession(fresh.Help, dir); err != nil {
			t.Fatalf("%s: recovery after drain: %v", n, err)
		}
		if got := fingerprint(fresh.Help); got != want[n] {
			t.Fatalf("%s: recovered state differs from pre-drain state:\n-- got --\n%s\n-- want --\n%s",
				n, got, want[n])
		}
	}
}

func TestDrainRefusesNewAttaches(t *testing.T) {
	m, _ := newManager(t, nil)
	if _, detach, err := m.AttachSession("a"); err != nil {
		t.Fatal(err)
	} else {
		detach()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.AttachSession("b")
	if !errors.Is(err, ErrDraining) || !errors.Is(err, srvnet.ErrDraining) {
		t.Fatalf("attach during drain: err = %v, want ErrDraining wrapping srvnet.ErrDraining", err)
	}
}

// Two managers over one journal directory: the lockfile keeps the
// second from opening the same session state.
func TestSecondManagerLockedOut(t *testing.T) {
	mems := newMemJournals()
	jfs := func(name string) (journal.Fsys, error) { return mems.open(name) }
	m1, _ := newManager(t, func(c *Config) { c.JournalFS = jfs })
	m2, _ := newManager(t, func(c *Config) { c.JournalFS = jfs })

	_, detach, err := m1.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	if _, _, err := m2.AttachSession("a"); !errors.Is(err, journal.ErrLocked) {
		t.Fatalf("second manager attach: err = %v, want journal.ErrLocked", err)
	}
}

// A new manager over a drained manager's journals recovers the
// sessions on first attach.
func TestSpawnRecoversFromPriorJournal(t *testing.T) {
	mems := newMemJournals()
	jfs := func(name string) (journal.Fsys, error) { return mems.open(name) }

	m1, rec1 := newManager(t, func(c *Config) { c.JournalFS = jfs })
	_, detach, err := m1.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	w1 := rec1.world("a")
	win := w1.Help.NewWindow()
	win.Body.SetString("survives the restart")
	w1.Help.WaitIdle()
	want := fingerprint(w1.Help)
	detach()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	m2, rec2 := newManager(t, func(c *Config) { c.JournalFS = jfs })
	_, detach2, err := m2.AttachSession("a")
	if err != nil {
		t.Fatalf("attach after restart: %v", err)
	}
	defer detach2()
	if got := fingerprint(rec2.world("a").Help); got != want {
		t.Fatalf("restarted session differs:\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// Concurrent attaches to the same new session build one world, not N.
func TestConcurrentAttachSpawnsOnce(t *testing.T) {
	var builds int32
	m, _ := newManager(t, func(c *Config) {
		inner := c.Build
		c.Build = func(name string, w, h int) (*world.World, error) {
			atomic.AddInt32(&builds, 1)
			return inner(name, w, h)
		}
	})
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, detach, err := m.AttachSession("shared")
			errs[i] = err
			if err == nil {
				detach()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt32(&builds); got != 1 {
		t.Fatalf("spawned %d worlds for one session name", got)
	}
	if m.SessionCount() != 1 {
		t.Fatalf("SessionCount = %d, want 1", m.SessionCount())
	}
}
